(* Tridirectional synchronisation of a UML class model, a relational
   schema and a documentation index — the kind of "more realistic
   example" the paper's future work calls for.

   Three metamodels, nested domain patterns through containment
   references, a non-top relation invoked from a where clause (§2.3:
   the call directions are statically checked against the callee's
   dependency set), and a genuinely multidirectional constraint: an
   index entry must exist exactly for entities present in BOTH the
   class model and the schema (the same shape as the paper's MF).

   Run with: dune exec examples/class_db_sync.exe *)

let metamodels_src =
  {|
metamodel UML {
  class Class {
    attr name : string key;
    ref attrs : Attribute [0..*] containment;
  }
  class Attribute {
    attr name : string;
  }
}

metamodel RDB {
  class Table {
    attr name : string key;
    ref cols : Column [0..*] containment;
  }
  class Column {
    attr name : string;
  }
}

metamodel IDX {
  class Entry {
    attr name : string key;
  }
}
|}

let transformation_src =
  {|
transformation ClassDb(uml : UML, rdb : RDB, idx : IDX) {
  // classes and tables correspond by name, attributes and columns too
  top relation ClassTable {
    n : String;
    domain uml c : Class { name = n };
    domain rdb t : Table { name = n };
    where { AttrColumn(c, t); }
    dependencies { uml -> rdb; rdb -> uml; }
  }

  // invoked per class/table pair; its own dependencies make it
  // runnable in both directions the caller needs
  relation AttrColumn {
    an : String;
    domain uml c : Class { attrs = a : Attribute { name = an } };
    domain rdb t : Table { cols = col : Column { name = an } };
    dependencies { uml -> rdb; rdb -> uml; }
  }

  // an index entry exists exactly for entities in BOTH models —
  // the paper's MF shape, inexpressible in standard QVT-R
  top relation Documented {
    n : String;
    domain uml k : Class { name = n };
    domain rdb u : Table { name = n };
    domain idx e : Entry { name = n };
    dependencies { uml rdb -> idx; idx -> uml; idx -> rdb; }
  }
}
|}

module I = Mdl.Ident

let parse_mms () =
  match Mdl.Serialize.parse_metamodels metamodels_src with
  | Ok mms -> List.map (fun mm -> (Mdl.Metamodel.name mm, mm)) mms
  | Error e -> failwith e

let find_mm mms n = List.assoc (I.make n) mms

(* Builders *)
let uml_model mms ~name classes =
  let mm = find_mm mms "UML" in
  List.fold_left
    (fun m (cname, attrs) ->
      let m, cid = Mdl.Model.add_object m ~cls:(I.make "Class") in
      let m = Mdl.Model.set_attr1 m cid (I.make "name") (Mdl.Value.Str cname) in
      List.fold_left
        (fun m aname ->
          let m, aid = Mdl.Model.add_object m ~cls:(I.make "Attribute") in
          let m = Mdl.Model.set_attr1 m aid (I.make "name") (Mdl.Value.Str aname) in
          Mdl.Model.add_ref m ~src:cid ~ref_:(I.make "attrs") ~dst:aid)
        m attrs)
    (Mdl.Model.empty ~name mm)
    classes

let rdb_model mms ~name tables =
  let mm = find_mm mms "RDB" in
  List.fold_left
    (fun m (tname, cols) ->
      let m, tid = Mdl.Model.add_object m ~cls:(I.make "Table") in
      let m = Mdl.Model.set_attr1 m tid (I.make "name") (Mdl.Value.Str tname) in
      List.fold_left
        (fun m cname ->
          let m, cid = Mdl.Model.add_object m ~cls:(I.make "Column") in
          let m = Mdl.Model.set_attr1 m cid (I.make "name") (Mdl.Value.Str cname) in
          Mdl.Model.add_ref m ~src:tid ~ref_:(I.make "cols") ~dst:cid)
        m cols)
    (Mdl.Model.empty ~name mm)
    tables

let idx_model mms ~name entries =
  let mm = find_mm mms "IDX" in
  List.fold_left
    (fun m e ->
      let m, id = Mdl.Model.add_object m ~cls:(I.make "Entry") in
      Mdl.Model.set_attr1 m id (I.make "name") (Mdl.Value.Str e))
    (Mdl.Model.empty ~name mm)
    entries

(* Rendering *)
let describe_rdb m =
  Mdl.Model.instances_of m (I.make "Table")
  |> List.map (fun tid ->
         let tname =
           match Mdl.Model.get_attr1 m tid (I.make "name") with
           | Some (Mdl.Value.Str s) -> s
           | _ -> "?"
         in
         let cols =
           Mdl.Model.get_refs m tid (I.make "cols")
           |> List.filter_map (fun cid ->
                  match Mdl.Model.get_attr1 m cid (I.make "name") with
                  | Some (Mdl.Value.Str s) -> Some s
                  | _ -> None)
         in
         Printf.sprintf "%s(%s)" tname (String.concat ", " cols))
  |> String.concat "  "

let describe_idx m =
  Mdl.Model.instances_of m (I.make "Entry")
  |> List.filter_map (fun id ->
         match Mdl.Model.get_attr1 m id (I.make "name") with
         | Some (Mdl.Value.Str s) -> Some s
         | _ -> None)
  |> String.concat ", "

let () =
  let metamodels = parse_mms () in
  let trans = Qvtr.Parser.parse_exn transformation_src in
  (* A consistent state... *)
  let uml =
    uml_model metamodels ~name:"uml" [ ("Customer", [ "id"; "email" ]) ]
  in
  let rdb = rdb_model metamodels ~name:"rdb" [ ("Customer", [ "id"; "email" ]) ] in
  let idx = idx_model metamodels ~name:"idx" [ "Customer" ] in
  let models = [ (I.make "uml", uml); (I.make "rdb", rdb); (I.make "idx", idx) ] in
  let report = Qvtr.Check.run_exn trans ~metamodels ~models in
  Format.printf "initial state consistent: %b@." report.Qvtr.Check.consistent;

  (* ... the architect adds a class: Order with an "id" attribute. *)
  let uml' =
    uml_model metamodels ~name:"uml"
      [ ("Customer", [ "id"; "email" ]); ("Order", [ "id" ]) ]
  in
  let models =
    [ (I.make "uml", uml'); (I.make "rdb", rdb); (I.make "idx", idx) ]
  in
  let report = Qvtr.Check.run_exn trans ~metamodels ~models in
  Format.printf "after adding class Order: consistent: %b@."
    report.Qvtr.Check.consistent;

  (* Propagate to BOTH the schema and the index in one repair — the
     multidirectional target set {rdb, idx}. *)
  (match
     Echo.Engine.enforce trans ~metamodels ~models ~slack_objects:2
       ~targets:(Echo.Target.of_list [ "rdb"; "idx" ])
   with
  | Ok (Echo.Engine.Enforced r) ->
    Format.printf "repair (rdb, idx): %a@." Echo.Engine.pp_outcome
      (Echo.Engine.Enforced r);
    List.iter
      (fun (p, m) ->
        match I.name p with
        | "rdb" -> Format.printf "  schema: %s@." (describe_rdb m)
        | "idx" -> Format.printf "  index:  %s@." (describe_idx m)
        | _ -> ())
      r.Echo.Engine.repaired
  | Ok o -> Format.printf "repair (rdb, idx): %a@." Echo.Engine.pp_outcome o
  | Error e -> Format.printf "error: %s@." e);

  (* Alternatively, reject the change: repair the UML model back. *)
  match
    Echo.Engine.enforce trans ~metamodels ~models ~targets:(Echo.Target.single "uml")
  with
  | Ok (Echo.Engine.Enforced r) ->
    Format.printf "repair (uml): %a@." Echo.Engine.pp_outcome
      (Echo.Engine.Enforced r);
    List.iter
      (fun (p, m) ->
        if I.name p = "uml" then
          Format.printf "  classes: %s@."
            (String.concat ", "
               (Mdl.Model.instances_of m (I.make "Class")
               |> List.filter_map (fun id ->
                      match Mdl.Model.get_attr1 m id (I.make "name") with
                      | Some (Mdl.Value.Str s) -> Some s
                      | _ -> None))))
      r.Echo.Engine.repaired
  | Ok o -> Format.printf "repair (uml): %a@." Echo.Engine.pp_outcome o
  | Error e -> Format.printf "error: %s@." e
