(* Feature-model co-evolution with prioritised targets.

   The paper's §3 closes with two refinements it leaves open: weighted
   distance aggregation ("changes to configurations could be
   prioritized over those to feature models") and the k-configuration
   shapes. This example exercises both: a rename lands in one
   configuration, and we repair with the ->Fi_FMxCF^(k-1) shape under
   different model weights, observing how the optimum moves.

   Run with: dune exec examples/coevolution.exe *)

let show_state models =
  List.iter
    (fun (p, m) ->
      let pn = Mdl.Ident.name p in
      if pn = "fm" then
        Format.printf "  fm  = {%s}@."
          (String.concat ","
             (List.map
                (fun (n, mand) -> if mand then n ^ "!" else n)
                (Featuremodel.Fm.fm_features m)))
      else
        Format.printf "  %s = {%s}@." pn
          (String.concat "," (Featuremodel.Fm.cf_features m)))
    models

let () =
  let k = 3 in
  let trans = Featuremodel.Fm.transformation ~k in
  let metamodels = Featuremodel.Fm.metamodels in
  (* The product line had mandatory "net"; cf1 was renamed to "network"
     during an upgrade. *)
  let cfs =
    [
      Featuremodel.Fm.configuration ~name:"cf1" [ "network"; "gui" ];
      Featuremodel.Fm.configuration ~name:"cf2" [ "net"; "gui" ];
      Featuremodel.Fm.configuration ~name:"cf3" [ "net" ];
    ]
  in
  let fm =
    Featuremodel.Fm.feature_model ~name:"fm" [ ("net", true); ("gui", false) ]
  in
  let models = Featuremodel.Fm.bind ~cfs ~fm in
  Format.printf "initial (inconsistent) state:@.";
  show_state models;

  (* Shape ->F1_FMxCF^(k-1): cf1 is authoritative, everything else may
     change. Unweighted least change REVERTS the rename inside the
     smaller repairs, so first watch what happens: *)
  let enforce ?model_weights label targets =
    match
      Echo.Engine.enforce ?model_weights trans ~metamodels ~models
        ~targets:(Echo.Target.of_list targets)
    with
    | Ok (Echo.Engine.Enforced r) ->
      Format.printf "@.%s: Δ=%d@." label r.Echo.Engine.relational_distance;
      show_state r.Echo.Engine.repaired
    | Ok o -> Format.printf "@.%s: %a@." label Echo.Engine.pp_outcome o
    | Error e -> Format.printf "@.%s: error %s@." label e
  in
  (* cf1 itself: least change reverts the rename (cheapest repair). *)
  enforce "repair cf1 (revert the rename)" [ "cf1" ];
  (* Everything but cf1: the rename propagates to fm, cf2, cf3. *)
  enforce "repair fm,cf2,cf3 (propagate the rename)" [ "fm"; "cf2"; "cf3" ];
  (* Weighted: make feature-model edits five times as expensive as
     configuration edits — the paper's suggested prioritisation. The
     optimum still must change fm (the name lives there) but avoids
     any unnecessary fm churn. *)
  enforce
    ~model_weights:[ (Mdl.Ident.make "fm", 5) ]
    "repair fm,cf2,cf3 with fm changes weighted 5x" [ "fm"; "cf2"; "cf3" ]
