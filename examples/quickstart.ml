(* Quickstart: the paper's running example end to end.

   Build the Figure 1 metamodels and models, write the MF/OF
   transformation in QVT-R concrete syntax (with the paper's checking
   dependencies), check consistency, and repair in two different
   directions.

   Run with: dune exec examples/quickstart.exe *)

let transformation_src =
  {|
transformation FeatureConfig(cf1 : CF, cf2 : CF, fm : FM) {
  // MF: mandatory features are exactly those selected in every configuration
  top relation MF {
    n : String;
    domain cf1 s1 : Feature { name = n };
    domain cf2 s2 : Feature { name = n };
    domain fm f : Feature { name = n, mandatory = true };
    dependencies { cf1 cf2 -> fm; fm -> cf1; fm -> cf2; }
  }
  // OF: every selected feature exists in the feature model
  top relation OF {
    n : String;
    domain cf1 t1 : Feature { name = n };
    domain cf2 t2 : Feature { name = n };
    domain fm g : Feature { name = n };
    dependencies { cf1 -> fm; cf2 -> fm; }
  }
}
|}

let () =
  (* 1. Parse the transformation. *)
  let trans = Qvtr.Parser.parse_exn transformation_src in
  Format.printf "== transformation ==@.%s@.@." (Qvtr.Parser.to_string trans);

  (* 2. Models: two configurations and a feature model that disagree —
     the FM has a new mandatory feature "N" nobody selected yet. *)
  let cf1 = Featuremodel.Fm.configuration ~name:"cf1" [ "A" ] in
  let cf2 = Featuremodel.Fm.configuration ~name:"cf2" [ "A" ] in
  let fm = Featuremodel.Fm.feature_model ~name:"fm" [ ("A", true); ("N", true) ] in
  let models = Featuremodel.Fm.bind ~cfs:[ cf1; cf2 ] ~fm in
  let metamodels = Featuremodel.Fm.metamodels in

  (* 3. Checkonly. *)
  let report = Qvtr.Check.run_exn trans ~metamodels ~models in
  Format.printf "== check ==@.%a@.@." Qvtr.Check.pp_report report;

  (* 4. Enforce towards the configurations (the ->F_CF^k shape): both
     configurations gain "N". *)
  (match
     Echo.Engine.enforce trans ~metamodels ~models
       ~targets:(Echo.Target.of_list [ "cf1"; "cf2" ])
   with
  | Ok (Echo.Engine.Enforced r) ->
    Format.printf "== enforce cf1,cf2 == %a@." Echo.Engine.pp_outcome
      (Echo.Engine.Enforced r);
    List.iter
      (fun (p, m) ->
        if Mdl.Ident.name p <> "fm" then
          Format.printf "  %s selects {%s}@." (Mdl.Ident.name p)
            (String.concat ", " (Featuremodel.Fm.cf_features m)))
      r.Echo.Engine.repaired
  | Ok o -> Format.printf "== enforce cf1,cf2 == %a@." Echo.Engine.pp_outcome o
  | Error e -> Format.printf "error: %s@." e);

  (* 5. Enforce towards a single configuration: impossible, as the
     paper warns (cf2 would still miss "N"). *)
  (match
     Echo.Engine.enforce trans ~metamodels ~models
       ~targets:(Echo.Target.single "cf1")
   with
  | Ok o -> Format.printf "== enforce cf1 only == %a@." Echo.Engine.pp_outcome o
  | Error e -> Format.printf "error: %s@." e);

  (* 6. Enforce towards the feature model (the ->F_FM shape). *)
  match
    Echo.Engine.enforce trans ~metamodels ~models ~targets:(Echo.Target.single "fm")
  with
  | Ok (Echo.Engine.Enforced r) ->
    Format.printf "== enforce fm == %a@." Echo.Engine.pp_outcome
      (Echo.Engine.Enforced r);
    List.iter
      (fun (p, m) ->
        if Mdl.Ident.name p = "fm" then
          Format.printf "  fm declares {%s}@."
            (String.concat ", "
               (List.map
                  (fun (n, mand) -> if mand then n ^ "!" else n)
                  (Featuremodel.Fm.fm_features m))))
      r.Echo.Engine.repaired
  | Ok o -> Format.printf "== enforce fm == %a@." Echo.Engine.pp_outcome o
  | Error e -> Format.printf "error: %s@." e
