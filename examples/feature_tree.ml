(* Feature TREES: the "more realistic examples of feature model
   synchronization" the paper's future work (§4) calls for.

   The feature model now carries a parent hierarchy (child features
   require their parent). Besides MF and OF, a third top relation per
   configuration enforces the hierarchy across models:

     if a configuration selects a feature whose FM parent is p,
     it must also select p

   expressed with a when-guard using allInstances ("n in
   Feature@cf1.name") and the dependency {fm -> cf1}. Violations have
   two natural minimal repairs — select the parent or drop the child —
   and enforce_all surfaces both.

   Run with: dune exec examples/feature_tree.exe *)

module I = Mdl.Ident

let metamodels_src =
  {|
metamodel FMT {
  class Feature {
    attr name : string key;
    attr mandatory : bool;
    ref parent : Feature [0..1];
  }
}

metamodel CF {
  class Feature {
    attr name : string key;
  }
}
|}

let transformation_src =
  {|
transformation TreeConfig(cf1 : CF, cf2 : CF, fm : FMT) {
  top relation MF {
    n : String;
    domain cf1 s1 : Feature { name = n };
    domain cf2 s2 : Feature { name = n };
    domain fm f : Feature { name = n, mandatory = true };
    dependencies { cf1 cf2 -> fm; fm -> cf1; fm -> cf2; }
  }
  top relation OF {
    n : String;
    domain cf1 t1 : Feature { name = n };
    domain cf2 t2 : Feature { name = n };
    domain fm g : Feature { name = n };
    dependencies { cf1 -> fm; cf2 -> fm; }
  }
  // hierarchy: a selected child requires its parent (per configuration)
  top relation Parent1 {
    n : String;
    pn : String;
    domain fm c : Feature { name = n, parent = p : Feature { name = pn } };
    domain cf1 q : Feature { name = pn };
    when { n in Feature@cf1.name }
    dependencies { fm -> cf1; }
  }
  top relation Parent2 {
    n : String;
    pn : String;
    domain fm c : Feature { name = n, parent = p : Feature { name = pn } };
    domain cf2 q : Feature { name = pn };
    when { n in Feature@cf2.name }
    dependencies { fm -> cf2; }
  }
}
|}

let mms =
  match Mdl.Serialize.parse_metamodels metamodels_src with
  | Ok l -> List.map (fun mm -> (Mdl.Metamodel.name mm, mm)) l
  | Error e -> failwith e

let fmt_mm = List.assoc (I.make "FMT") mms
let cf_mm = List.assoc (I.make "CF") mms

(* features: (name, mandatory, parent name option) *)
let feature_tree ~name features =
  let m, ids =
    List.fold_left
      (fun (m, ids) (n, mand, _) ->
        let m, id = Mdl.Model.add_object m ~cls:(I.make "Feature") in
        let m = Mdl.Model.set_attr1 m id (I.make "name") (Mdl.Value.Str n) in
        let m = Mdl.Model.set_attr1 m id (I.make "mandatory") (Mdl.Value.Bool mand) in
        (m, (n, id) :: ids))
      (Mdl.Model.empty ~name fmt_mm, [])
      features
  in
  List.fold_left
    (fun m (n, _, parent) ->
      match parent with
      | None -> m
      | Some p ->
        Mdl.Model.add_ref m ~src:(List.assoc n ids) ~ref_:(I.make "parent")
          ~dst:(List.assoc p ids))
    m features

let configuration ~name selected =
  List.fold_left
    (fun m n ->
      let m, id = Mdl.Model.add_object m ~cls:(I.make "Feature") in
      Mdl.Model.set_attr1 m id (I.make "name") (Mdl.Value.Str n))
    (Mdl.Model.empty ~name cf_mm)
    selected

let show_cf m =
  Mdl.Model.objects m
  |> List.filter_map (fun id ->
         match Mdl.Model.get_attr1 m id (I.make "name") with
         | Some (Mdl.Value.Str s) -> Some s
         | _ -> None)
  |> List.sort compare |> String.concat ","

let () =
  let trans = Qvtr.Parser.parse_exn transformation_src in
  (* base! ── net ── wifi   (wifi requires net requires base) *)
  let fm =
    feature_tree ~name:"fm"
      [ ("base", true, None); ("net", false, Some "base"); ("wifi", false, Some "net") ]
  in
  (* cf1 skipped "net" although it selected "wifi" *)
  let cf1 = configuration ~name:"cf1" [ "base"; "wifi" ] in
  let cf2 = configuration ~name:"cf2" [ "base" ] in
  let models = [ (I.make "cf1", cf1); (I.make "cf2", cf2); (I.make "fm", fm) ] in
  let report = Qvtr.Check.run_exn trans ~metamodels:mms ~models in
  Format.printf "== check ==@.%a@.@." Qvtr.Check.pp_report report;
  (* repair cf1: both minimal repairs are legitimate product decisions *)
  match
    Echo.Engine.enforce_all trans ~metamodels:mms ~models
      ~targets:(Echo.Target.single "cf1")
  with
  | Error e -> Format.printf "error: %s@." e
  | Ok outcomes ->
    let repairs =
      List.filter_map
        (function Echo.Engine.Enforced r -> Some r | _ -> None)
        outcomes
    in
    Format.printf "== %d minimal repairs of cf1 ==@." (List.length repairs);
    List.iteri
      (fun i r ->
        Format.printf "  %d) cf1 = {%s}  (Δ=%d)@." (i + 1)
          (show_cf (List.assoc (I.make "cf1") r.Echo.Engine.repaired))
          r.Echo.Engine.relational_distance)
      repairs;
    (* sanity: each repaired state is consistent *)
    List.iter
      (fun r ->
        let rep = Qvtr.Check.run_exn trans ~metamodels:mms ~models:r.Echo.Engine.repaired in
        assert rep.Qvtr.Check.consistent)
      repairs;
    Format.printf "all repaired states re-check consistent@."
