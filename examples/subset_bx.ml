(* Bidirectional subset: the paper's §2.2 remark that checking
   dependencies improve expressiveness already for k = 2 models.

   "How to express a plain subset relationship?" — under the standard
   semantics one cannot: the two directional checks force mutual
   inclusion wherever patterns fire. With one dependency [src -> dst]
   the relation means exactly "every task in src appears in dst"
   (e.g. a personal todo list must be included in the team backlog,
   but the backlog may contain more).

   Run with: dune exec examples/subset_bx.exe *)

let mm_src =
  {|
metamodel Todo {
  class Task {
    attr title : string key;
  }
}
|}

let transformation_src =
  {|
transformation Sync(mine : Todo, team : Todo) {
  top relation Included {
    t : String;
    domain mine a : Task { title = t };
    domain team b : Task { title = t };
    dependencies { mine -> team; }
  }
}
|}

let task_list name titles =
  let mm =
    match Mdl.Serialize.parse_metamodel mm_src with
    | Ok mm -> mm
    | Error e -> failwith e
  in
  List.fold_left
    (fun m t ->
      let m, id = Mdl.Model.add_object m ~cls:(Mdl.Ident.make "Task") in
      Mdl.Model.set_attr1 m id (Mdl.Ident.make "title") (Mdl.Value.Str t))
    (Mdl.Model.empty ~name mm)
    titles

let titles m =
  Mdl.Model.objects m
  |> List.filter_map (fun id ->
         match Mdl.Model.get_attr1 m id (Mdl.Ident.make "title") with
         | Some (Mdl.Value.Str s) -> Some s
         | _ -> None)
  |> List.sort compare

let () =
  let trans = Qvtr.Parser.parse_exn transformation_src in
  let mm =
    match Mdl.Serialize.parse_metamodel mm_src with Ok mm -> mm | Error e -> failwith e
  in
  let metamodels = [ (Mdl.Ident.make "Todo", mm) ] in
  let run mine team =
    let models =
      [ (Mdl.Ident.make "mine", task_list "mine" mine);
        (Mdl.Ident.make "team", task_list "team" team) ]
    in
    let report = Qvtr.Check.run_exn trans ~metamodels ~models in
    let standard =
      Qvtr.Check.run_exn ~mode:Qvtr.Semantics.Standard trans ~metamodels ~models
    in
    Format.printf "mine={%s} team={%s}: subset-check %b, standard-QVT-R %b@."
      (String.concat "," mine) (String.concat "," team)
      report.Qvtr.Check.consistent standard.Qvtr.Check.consistent;
    models
  in
  (* A proper subset: intended = consistent; the standard semantics
     wrongly demands equality and rejects it. *)
  let _ = run [ "write-report" ] [ "write-report"; "review-budget" ] in
  (* Violation: a private task missing from the backlog. *)
  let models = run [ "write-report"; "buy-milk" ] [ "write-report" ] in
  (* Repair towards the team backlog: least change adds the task. *)
  (match
     Echo.Engine.enforce trans ~metamodels ~models ~targets:(Echo.Target.single "team")
   with
  | Ok (Echo.Engine.Enforced r) ->
    List.iter
      (fun (p, m) ->
        if Mdl.Ident.name p = "team" then
          Format.printf "repaired team backlog: {%s} (Δ=%d)@."
            (String.concat "," (titles m))
            r.Echo.Engine.relational_distance)
      r.Echo.Engine.repaired
  | Ok o -> Format.printf "%a@." Echo.Engine.pp_outcome o
  | Error e -> Format.printf "error: %s@." e);
  (* Repair towards my list: least change drops the private task. *)
  match
    Echo.Engine.enforce trans ~metamodels ~models ~targets:(Echo.Target.single "mine")
  with
  | Ok (Echo.Engine.Enforced r) ->
    List.iter
      (fun (p, m) ->
        if Mdl.Ident.name p = "mine" then
          Format.printf "repaired my list: {%s} (Δ=%d)@."
            (String.concat "," (titles m))
            r.Echo.Engine.relational_distance)
      r.Echo.Engine.repaired
  | Ok o -> Format.printf "%a@." Echo.Engine.pp_outcome o
  | Error e -> Format.printf "error: %s@." e
