(* The §4 workflow of the paper's planned multidirectional Echo:
   "users write multidirectional relations between models and, when
   inconsistencies are found, select which models are to be updated".

   This example runs that loop on a state with several equally-minimal
   repairs: the checker reports each violated directional check with a
   witness (which objects/values break it), and the engine enumerates
   every least-change repair so a user — here, stdout — can pick.

   Run with: dune exec examples/repair_menu.exe *)

module F = Featuremodel.Fm
module I = Mdl.Ident

let show_fm m =
  String.concat ","
    (List.map (fun (n, b) -> if b then n ^ "!" else n) (F.fm_features m))

let show_cf m = String.concat "," (F.cf_features m)

let () =
  let trans = F.transformation ~k:2 in
  let metamodels = F.metamodels in
  (* Both configurations selected optional feature "dark-mode": MF now
     demands it become mandatory — or stop being selected somewhere. *)
  let cfs =
    [
      F.configuration ~name:"cf1" [ "core"; "dark-mode" ];
      F.configuration ~name:"cf2" [ "core"; "dark-mode" ];
    ]
  in
  let fm =
    F.feature_model ~name:"fm" [ ("core", true); ("dark-mode", false) ]
  in
  let models = F.bind ~cfs ~fm in

  (* 1. Check: the report carries witnesses for the violations. *)
  let report = Qvtr.Check.run_exn trans ~metamodels ~models in
  Format.printf "== check ==@.%a@.@." Qvtr.Check.pp_report report;

  (* 2. Enumerate every minimal repair over the full target set. *)
  match
    Echo.Engine.enforce_all trans ~metamodels ~models
      ~targets:(Echo.Target.of_list [ "cf1"; "cf2"; "fm" ])
  with
  | Error e -> Format.printf "error: %s@." e
  | Ok outcomes ->
    let repairs =
      List.filter_map
        (function Echo.Engine.Enforced r -> Some r | _ -> None)
        outcomes
    in
    Format.printf "== %d minimal repairs (Δ = %d each) ==@." (List.length repairs)
      (match repairs with
      | r :: _ -> r.Echo.Engine.relational_distance
      | [] -> 0);
    List.iteri
      (fun i r ->
        let get p = List.assoc (I.make p) r.Echo.Engine.repaired in
        Format.printf "  %d) cf1={%s}  cf2={%s}  fm={%s}@." (i + 1)
          (show_cf (get "cf1")) (show_cf (get "cf2")) (show_fm (get "fm")))
      repairs;
    (* 3. "The user selects": pick the promotion repair, re-check. *)
    let promoted =
      List.find_opt
        (fun r ->
          List.exists
            (fun (n, b) -> n = "dark-mode" && b)
            (F.fm_features (List.assoc (I.make "fm") r.Echo.Engine.repaired)))
        repairs
    in
    match promoted with
    | None -> Format.printf "no promotion repair found@."
    | Some r ->
      let report =
        Qvtr.Check.run_exn trans ~metamodels ~models:r.Echo.Engine.repaired
      in
      Format.printf "@.selected the promotion repair; consistent afterwards: %b@."
        report.Qvtr.Check.consistent
