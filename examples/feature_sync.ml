(* Feature-model synchronisation: every scenario from the paper run
   against every transformation shape of §1/§3.

   For each scenario (a perturbed multi-model state) and each target
   set Θ, the engine either produces a least-change repair or proves
   that Θ cannot restore consistency — reproducing the paper's
   discussion of which update directions make sense when.

   Run with: dune exec examples/feature_sync.exe *)

let shapes =
  (* the paper's catalogue over k = 2 configurations *)
  [
    ("->F_FM        (CF^k -> FM)", [ "fm" ]);
    ("->F1_CF       (FM x CF -> CF)", [ "cf1" ]);
    ("->F2_CF       (FM x CF -> CF)", [ "cf2" ]);
    ("->F_CF^k      (FM -> CF^k)", [ "cf1"; "cf2" ]);
    ("->F1_FMxCF    (CF -> FM x CF)", [ "fm"; "cf2" ]);
    ("->everything", [ "cf1"; "cf2"; "fm" ]);
  ]

let () =
  let trans = Featuremodel.Fm.transformation ~k:2 in
  let metamodels = Featuremodel.Fm.metamodels in
  List.iter
    (fun (s : Featuremodel.Scenarios.t) ->
      Format.printf "@.=== scenario: %s ===@.%s@."
        s.Featuremodel.Scenarios.s_name s.Featuremodel.Scenarios.s_description;
      let models =
        Featuremodel.Fm.bind ~cfs:s.Featuremodel.Scenarios.cfs
          ~fm:s.Featuremodel.Scenarios.fm
      in
      Format.printf "  state: cf1={%s} cf2={%s} fm={%s}@."
        (String.concat ","
           (Featuremodel.Fm.cf_features (List.nth s.Featuremodel.Scenarios.cfs 0)))
        (String.concat ","
           (Featuremodel.Fm.cf_features (List.nth s.Featuremodel.Scenarios.cfs 1)))
        (String.concat ","
           (List.map
              (fun (n, m) -> if m then n ^ "!" else n)
              (Featuremodel.Fm.fm_features s.Featuremodel.Scenarios.fm)));
      List.iter
        (fun (label, targets) ->
          match
            Echo.Engine.enforce trans ~metamodels ~models
              ~targets:(Echo.Target.of_list targets)
          with
          | Ok (Echo.Engine.Enforced r) ->
            let summary =
              List.filter_map
                (fun (p, m) ->
                  let pn = Mdl.Ident.name p in
                  if not (List.mem pn targets) then None
                  else if pn = "fm" then
                    Some
                      (Printf.sprintf "%s={%s}" pn
                         (String.concat ","
                            (List.map
                               (fun (n, mand) -> if mand then n ^ "!" else n)
                               (Featuremodel.Fm.fm_features m))))
                  else
                    Some
                      (Printf.sprintf "%s={%s}" pn
                         (String.concat "," (Featuremodel.Fm.cf_features m))))
                r.Echo.Engine.repaired
            in
            Format.printf "  %-32s Δ=%d  %s@." label r.Echo.Engine.relational_distance
              (String.concat "  " summary)
          | Ok Echo.Engine.Already_consistent ->
            Format.printf "  %-32s already consistent@." label
          | Ok Echo.Engine.Cannot_restore ->
            Format.printf "  %-32s CANNOT RESTORE@." label
          | Error e -> Format.printf "  %-32s error: %s@." label e)
        shapes)
    Featuremodel.Scenarios.all
