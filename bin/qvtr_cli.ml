(* Command-line front end: check / enforce / lint / fmt / demo.

   File conventions:
   - transformation: QVT-R concrete syntax (Qvtr.Parser);
   - metamodels: one file with several `metamodel ... { }` blocks;
   - models: one file with several `model <param> : <MM> { }` blocks,
     one per transformation parameter, named after the parameter. *)

let read_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  s

let ( let* ) = Result.bind

let load_inputs ~trans_file ~mm_file ~models_file =
  let* trans = Qvtr.Parser.parse ~file:trans_file (read_file trans_file) in
  let* mms = Mdl.Serialize.parse_metamodels (read_file mm_file) in
  let* models = Mdl.Serialize.parse_models mms (read_file models_file) in
  let metamodels = List.map (fun mm -> (Mdl.Metamodel.name mm, mm)) mms in
  let bound =
    List.map (fun m -> (Mdl.Model.name m, m)) models
  in
  Ok (trans, metamodels, bound)

let mode_of_standard standard =
  if standard then Qvtr.Semantics.Standard else Qvtr.Semantics.Extended

(* --trace FILE: record spans for the whole command and write a
   Chrome/Perfetto trace on the way out, success or failure. *)
let with_trace trace f =
  match trace with
  | None -> f ()
  | Some path ->
    Obs.Trace.set_enabled true;
    Fun.protect
      ~finally:(fun () ->
        Obs.Trace.set_enabled false;
        Obs.Trace.export_chrome path;
        Format.eprintf "trace written to %s@." path)
      f

let pp_metrics stats = if stats then Format.printf "%a@." Obs.Metrics.dump ()

(* Advisory lint on check/enforce: print warnings to stderr, never
   block the run (errors surface from the command itself). *)
let advisory_lint ~no_lint ~trans_file trans ~metamodels ~models =
  if not no_lint then begin
    let src = read_file trans_file in
    Lint.Driver.lint_ast ~models trans ~metamodels
    |> List.filter (fun (d : Lint.Diagnostic.t) ->
           d.Lint.Diagnostic.severity = Lint.Diagnostic.Warning)
    |> List.iter (fun d ->
           Format.eprintf "%s@." (Lint.Diagnostic.render ~src d))
  end

(* ------------------------------------------------------------------ *)
(* check                                                               *)

let run_check trans_file mm_file models_file standard no_lint stats trace =
  with_trace trace @@ fun () ->
  match
    let* trans, metamodels, models =
      load_inputs ~trans_file ~mm_file ~models_file
    in
    advisory_lint ~no_lint ~trans_file trans ~metamodels ~models;
    let* report =
      Qvtr.Check.run ~mode:(mode_of_standard standard) trans ~metamodels ~models
    in
    Ok report
  with
  | Ok report ->
    Format.printf "%a@." Qvtr.Check.pp_report report;
    if stats then
      Format.printf "stats: %d directional checks evaluated in %.3f ms@."
        (List.length report.Qvtr.Check.verdicts)
        (report.Qvtr.Check.elapsed *. 1000.);
    pp_metrics stats;
    if report.Qvtr.Check.consistent then 0 else 1
  | Error msg ->
    Format.eprintf "error: %s@." msg;
    2

(* ------------------------------------------------------------------ *)
(* enforce                                                             *)

let pp_stats_block stats r =
  if stats then begin
    Format.printf "@.--- stats ---@.%a@." Echo.Telemetry.pp
      r.Echo.Engine.stats;
    pp_metrics stats
  end

(* --jobs 0/auto resolves at dispatch time; library defaults stay
   serial (jobs = 1) so embedders opt into parallelism explicitly. *)
let resolve_jobs n = if n <= 0 then Parallel.Pool.default_jobs () else n

let run_enforce_all trans_file mm_file models_file targets standard slack jobs
    stats =
  match
    let* trans, metamodels, models =
      load_inputs ~trans_file ~mm_file ~models_file
    in
    Echo.Engine.enforce_all ~mode:(mode_of_standard standard)
      ~slack_objects:slack ~jobs trans ~metamodels ~models
      ~targets:(Echo.Target.of_list targets)
  with
  | Error msg ->
    Format.eprintf "error: %s@." msg;
    2
  | Ok outcomes ->
    let repairs =
      List.filter_map
        (function Echo.Engine.Enforced r -> Some r | _ -> None)
        outcomes
    in
    if repairs = [] then begin
      List.iter (fun o -> Format.printf "%a@." Echo.Engine.pp_outcome o) outcomes;
      match outcomes with [ Echo.Engine.Already_consistent ] -> 0 | _ -> 1
    end
    else begin
      Format.printf "%d minimal repair(s):@." (List.length repairs);
      List.iteri
        (fun i r ->
          Format.printf "@.--- repair %d: %a ---@." (i + 1) Echo.Engine.pp_outcome
            (Echo.Engine.Enforced r);
          List.iter
            (fun (p, m) ->
              if List.mem (Mdl.Ident.name p) targets then
                Format.printf "%s@." (Mdl.Serialize.model_to_string m))
            r.Echo.Engine.repaired)
        repairs;
      (* the enumeration shares one encoding: every repair carries the
         same cumulative roll-up, print it once *)
      (match repairs with r :: _ -> pp_stats_block stats r | [] -> ());
      0
    end

let run_enforce trans_file mm_file models_file targets standard backend
    slack jobs all no_lint stats out_file trace =
  with_trace trace @@ fun () ->
  let jobs = resolve_jobs jobs in
  if all then
    run_enforce_all trans_file mm_file models_file targets standard slack jobs
      stats
  else
  match
    let* trans, metamodels, models =
      load_inputs ~trans_file ~mm_file ~models_file
    in
    advisory_lint ~no_lint ~trans_file trans ~metamodels ~models;
    let backend =
      match backend with
      | "maxsat" -> Echo.Engine.Maxsat
      | "portfolio" -> Echo.Engine.Portfolio
      | _ -> Echo.Engine.Iterative
    in
    let* outcome =
      Echo.Engine.enforce ~backend ~mode:(mode_of_standard standard)
        ~slack_objects:slack ~jobs trans ~metamodels ~models
        ~targets:(Echo.Target.of_list targets)
    in
    Ok outcome
  with
  | Ok (Echo.Engine.Enforced r) ->
    Format.printf "%a@." Echo.Engine.pp_outcome (Echo.Engine.Enforced r);
    let rendered =
      String.concat "\n\n"
        (List.map (fun (_, m) -> Mdl.Serialize.model_to_string m) r.Echo.Engine.repaired)
    in
    (match out_file with
    | Some path ->
      let oc = open_out path in
      output_string oc (rendered ^ "\n");
      close_out oc;
      Format.printf "repaired models written to %s@." path
    | None -> Format.printf "%s@." rendered);
    pp_stats_block stats r;
    0
  | Ok Echo.Engine.Cannot_restore ->
    Format.printf "%a@." Echo.Engine.pp_outcome Echo.Engine.Cannot_restore;
    (* explain which directional checks obstruct the target set *)
    (match
       let* trans, metamodels, models =
         load_inputs ~trans_file ~mm_file ~models_file
       in
       Echo.Engine.diagnose ~mode:(mode_of_standard standard)
         ~slack_objects:slack trans ~metamodels ~models
         ~targets:(Echo.Target.of_list targets)
     with
    | Ok ds ->
      List.iter
        (fun d ->
          if not d.Echo.Engine.d_satisfiable then
            Format.printf "  obstruction: %a@." Echo.Engine.pp_diagnosis d)
        ds
    | Error _ -> ());
    1
  | Ok outcome ->
    Format.printf "%a@." Echo.Engine.pp_outcome outcome;
    (match outcome with Echo.Engine.Already_consistent -> 0 | _ -> 1)
  | Error msg ->
    Format.eprintf "error: %s@." msg;
    2

(* ------------------------------------------------------------------ *)
(* session: replay an edit script on a long-lived incremental session *)

let run_session trans_file mm_file models_file edits_file targets standard
    slack headroom stats trace =
  with_trace trace @@ fun () ->
  match
    let* trans = Qvtr.Parser.parse (read_file trans_file) in
    let* mms = Mdl.Serialize.parse_metamodels (read_file mm_file) in
    let* models = Mdl.Serialize.parse_models mms (read_file models_file) in
    let metamodels = List.map (fun mm -> (Mdl.Metamodel.name mm, mm)) mms in
    let bound = List.map (fun m -> (Mdl.Model.name m, m)) models in
    let targets =
      match targets with
      | [] ->
        (* default: the fully multidirectional shape — every parameter
           may change *)
        Echo.Target.of_list
          (List.map
             (fun (p : Qvtr.Ast.param) -> Mdl.Ident.name p.Qvtr.Ast.par_name)
             trans.Qvtr.Ast.t_params)
      | ts -> Echo.Target.of_list ts
    in
    let* steps =
      Incr.Replay.parse ~metamodels:mms ~base:bound (read_file edits_file)
    in
    Incr.Replay.run ~mode:(mode_of_standard standard) ~slack_budget:slack
      ~headroom ~transformation:trans ~metamodels ~models:bound ~targets steps
  with
  | Error msg ->
    Format.eprintf "error: %s@." msg;
    2
  | Ok records ->
    Format.printf "%-28s %5s %6s %6s %5s  %-26s %-26s@." "step" "edits"
      "re-enc" "consis" "match" "session (ms/confl/props)"
      "scratch (ms/confl/props)";
    let pp_side (s : Incr.Session.step_stats) =
      Printf.sprintf "%8.2f %6d %9d" (s.Incr.Session.wall *. 1000.)
        s.Incr.Session.conflicts s.Incr.Session.propagations
    in
    List.iter
      (fun (r : Incr.Replay.step_record) ->
        Format.printf "%-28s %5d %6s %6s %5s  %-26s %-26s@."
          r.Incr.Replay.sr_label r.Incr.Replay.sr_edits
          (if r.Incr.Replay.sr_rebuilt then "yes" else "-")
          (if r.Incr.Replay.sr_session_consistent then "yes" else "no")
          (if r.Incr.Replay.sr_verdicts_match then "yes" else "NO")
          (pp_side r.Incr.Replay.sr_session)
          (pp_side r.Incr.Replay.sr_scratch))
      records;
    if stats then begin
      let sum f =
        List.fold_left (fun (a, b) r -> (a + f r.Incr.Replay.sr_session, b + f r.Incr.Replay.sr_scratch)) (0, 0) records
      in
      let c_s, c_c = sum (fun s -> s.Incr.Session.conflicts) in
      let p_s, p_c = sum (fun s -> s.Incr.Session.propagations) in
      Format.printf
        "totals: session %d conflicts / %d propagations; from-scratch %d / %d@."
        c_s p_s c_c p_c;
      pp_metrics stats
    end;
    if List.for_all (fun r -> r.Incr.Replay.sr_verdicts_match) records then 0
    else 1

(* ------------------------------------------------------------------ *)
(* traces                                                              *)

let run_traces trans_file mm_file models_file standard =
  match
    let* trans, metamodels, models =
      load_inputs ~trans_file ~mm_file ~models_file
    in
    Qvtr.Check.traces ~mode:(mode_of_standard standard) trans ~metamodels ~models
  with
  | Ok [] ->
    Format.printf "no relation matches@.";
    0
  | Ok traces ->
    List.iter (fun t -> Format.printf "%a@." Qvtr.Check.pp_trace t) traces;
    0
  | Error msg ->
    Format.eprintf "error: %s@." msg;
    2

(* ------------------------------------------------------------------ *)
(* lint: static analysis with source-located diagnostics               *)

let run_lint trans_file mm_file models_file json werror suppress =
  let src = read_file trans_file in
  match
    let* mms = Mdl.Serialize.parse_metamodels (read_file mm_file) in
    let metamodels = List.map (fun mm -> (Mdl.Metamodel.name mm, mm)) mms in
    let* models =
      match models_file with
      | None -> Ok None
      | Some f ->
        let* ms = Mdl.Serialize.parse_models mms (read_file f) in
        Ok (Some (List.map (fun m -> (Mdl.Model.name m, m)) ms))
    in
    Ok (metamodels, models)
  with
  | Error msg ->
    Format.eprintf "error: %s@." msg;
    2
  | Ok (metamodels, models) ->
    let config = { Lint.Driver.default_config with werror; suppress } in
    let diags =
      Lint.Driver.lint_source ~config ~file:trans_file ?models src ~metamodels
    in
    if json then
      print_endline (Obs.Json.to_string (Lint.Diagnostic.list_to_json diags))
    else begin
      List.iter (fun d -> print_endline (Lint.Diagnostic.render ~src d)) diags;
      Format.printf "%s@." (Lint.Driver.summary diags)
    end;
    if Lint.Driver.error_count diags > 0 then 1 else 0

(* ------------------------------------------------------------------ *)
(* fmt: parse and pretty-print a transformation                        *)

let run_fmt trans_file =
  match Qvtr.Parser.parse (read_file trans_file) with
  | Ok t ->
    print_endline (Qvtr.Parser.to_string t);
    0
  | Error msg ->
    Format.eprintf "error: %s@." msg;
    2

(* ------------------------------------------------------------------ *)
(* demo: generate the paper's example inputs into a directory          *)

let run_demo dir =
  let () = try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> () in
  let write name contents =
    let oc = open_out (Filename.concat dir name) in
    output_string oc contents;
    close_out oc
  in
  write "featureconfig.qvtr" (Featuremodel.Fm.source ~k:2);
  write "metamodels.mdl"
    (Mdl.Serialize.metamodel_to_string Featuremodel.Fm.cf_metamodel
    ^ "\n\n"
    ^ Mdl.Serialize.metamodel_to_string Featuremodel.Fm.fm_metamodel
    ^ "\n");
  let s = Featuremodel.Scenarios.new_mandatory_feature in
  let models =
    Featuremodel.Fm.bind ~cfs:s.Featuremodel.Scenarios.cfs
      ~fm:s.Featuremodel.Scenarios.fm
  in
  write "models.mdl"
    (String.concat "\n\n"
       (List.map (fun (_, m) -> Mdl.Serialize.model_to_string m) models)
    ^ "\n");
  (* an edit-replay script for `qvtr session`: demote every feature to
     optional, then restore the original feature model *)
  let fm_bound =
    match
      List.find_opt
        (fun (p, _) -> Mdl.Ident.equal p (Mdl.Ident.make "fm"))
        models
    with
    | Some (_, m) -> m
    | None -> assert false
  in
  let all_optional =
    Featuremodel.Fm.feature_model ~name:"fm"
      (List.map
         (fun (n, _) -> (n, false))
         (Featuremodel.Fm.fm_features fm_bound))
  in
  write "edits.replay"
    ("== all features optional\n"
    ^ Mdl.Serialize.model_to_string all_optional
    ^ "\n\n== restore the feature model\n"
    ^ Mdl.Serialize.model_to_string fm_bound
    ^ "\n");
  Format.printf
    "wrote %s/{featureconfig.qvtr, metamodels.mdl, models.mdl, edits.replay}@.try:@.  qvtr check -t \
     %s/featureconfig.qvtr -M %s/metamodels.mdl -m %s/models.mdl@.  qvtr enforce -t \
     %s/featureconfig.qvtr -M %s/metamodels.mdl -m %s/models.mdl --target cf1 \
     --target cf2@.  qvtr session -t %s/featureconfig.qvtr -M %s/metamodels.mdl \
     -m %s/models.mdl --edits %s/edits.replay@."
    dir dir dir dir dir dir dir dir dir dir dir;
  0

(* ------------------------------------------------------------------ *)
(* cmdliner plumbing                                                   *)

open Cmdliner

let trans_arg =
  Arg.(
    required
    & opt (some file) None
    & info [ "t"; "transformation" ] ~docv:"FILE" ~doc:"QVT-R transformation file.")

let mm_arg =
  Arg.(
    required
    & opt (some file) None
    & info [ "M"; "metamodels" ] ~docv:"FILE" ~doc:"Metamodels file.")

let models_arg =
  Arg.(
    required
    & opt (some file) None
    & info [ "m"; "models" ] ~docv:"FILE" ~doc:"Models file.")

let standard_arg =
  Arg.(
    value & flag
    & info [ "standard" ]
        ~doc:
          "Use the standard OMG checking semantics (ignore dependencies blocks).")

let stats_arg =
  Arg.(
    value & flag
    & info [ "stats" ]
        ~doc:
          "Print per-phase telemetry: translation size (vars/clauses), solver \
           counters, distance iterations, wall-clock timings.")

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Record a structured trace of the run and write it to FILE in \
           Chrome trace-event JSON (open in Perfetto or about://tracing). \
           One track per worker domain; spans cover parse, translate, CNF \
           build and every solver call.")

let no_lint_arg =
  Arg.(
    value & flag
    & info [ "no-lint" ]
        ~doc:"Skip the advisory lint warnings printed before the run.")

let check_cmd =
  let doc = "check consistency of models under a QVT-R transformation" in
  Cmd.v
    (Cmd.info "check" ~doc)
    Term.(
      const run_check $ trans_arg $ mm_arg $ models_arg $ standard_arg
      $ no_lint_arg $ stats_arg $ trace_arg)

let targets_arg =
  Arg.(
    non_empty & opt_all string []
    & info [ "target" ] ~docv:"PARAM"
        ~doc:"Model parameter to repair (repeatable — the paper's multidirectional \
              target sets).")

let backend_arg =
  Arg.(
    value
    & opt
        (enum
           [ ("iterative", "iterative");
             ("maxsat", "maxsat");
             ("portfolio", "portfolio") ])
        "iterative"
    & info [ "backend" ]
        ~doc:
          "Repair backend: iterative (Echo), maxsat, or portfolio (race both \
           on worker domains; needs --jobs >= 2).")

let jobs_arg =
  Arg.(
    value & opt int 0
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Parallelism budget: the iterative backend probes N distance levels \
           speculatively on worker domains; the portfolio races its lanes. \
           The repair distance is identical for every N. N = 0 (the default) \
           auto-sizes from the available cores \
           (Domain.recommended_domain_count); an explicit N is always \
           honoured as given.")

let slack_arg =
  Arg.(
    value & opt int 2
    & info [ "slack" ] ~doc:"Fresh objects available per target model.")

let out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Write repaired models to FILE.")

let all_arg =
  Arg.(
    value & flag
    & info [ "all" ]
        ~doc:"Enumerate every minimal repair instead of returning one.")

let enforce_cmd =
  let doc = "repair the target models to restore consistency (least change)" in
  Cmd.v
    (Cmd.info "enforce" ~doc)
    Term.(
      const run_enforce $ trans_arg $ mm_arg $ models_arg $ targets_arg
      $ standard_arg $ backend_arg $ slack_arg $ jobs_arg $ all_arg
      $ no_lint_arg $ stats_arg $ out_arg $ trace_arg)

let edits_arg =
  Arg.(
    required
    & opt (some file) None
    & info [ "edits" ] ~docv:"FILE"
        ~doc:
          "Edit-replay script: blocks of models separated by `== <label>' \
           lines; each block is diffed against the running state to form \
           one edit batch.")

let session_targets_arg =
  Arg.(
    value & opt_all string []
    & info [ "target" ] ~docv:"PARAM"
        ~doc:
          "Model parameter the session may repair (repeatable; default: all \
           parameters).")

let headroom_arg =
  Arg.(
    value & opt int 6
    & info [ "headroom" ]
        ~doc:
          "Object creations absorbed by edits before the universe is \
           re-encoded.")

let session_cmd =
  let doc =
    "replay an edit script on a long-lived incremental session, comparing \
     every re-check against a from-scratch run"
  in
  Cmd.v
    (Cmd.info "session" ~doc)
    Term.(
      const run_session $ trans_arg $ mm_arg $ models_arg $ edits_arg
      $ session_targets_arg $ standard_arg $ slack_arg $ headroom_arg
      $ stats_arg $ trace_arg)

let lint_models_arg =
  Arg.(
    value
    & opt (some file) None
    & info [ "m"; "models" ] ~docv:"FILE"
        ~doc:
          "Models file (optional). When given, lint also runs the \
           model-bounded vacuity pass (W009).")

let json_arg =
  Arg.(
    value & flag
    & info [ "json" ] ~doc:"Emit diagnostics as a JSON array on stdout.")

let werror_arg =
  Arg.(
    value & flag
    & info [ "werror" ] ~doc:"Treat warnings as errors (exit non-zero).")

let suppress_arg =
  Arg.(
    value & opt_all string []
    & info [ "suppress" ] ~docv:"CODE"
        ~doc:"Suppress a diagnostic code, e.g. --suppress W004 (repeatable).")

let lint_cmd =
  let doc = "statically analyze a QVT-R transformation" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Parses and typechecks the transformation, then runs \
         static-analysis passes: unreachable relations, redundant \
         checking dependencies, unenforceable model parameters, \
         unused and single-domain variables, shadowing, abstract \
         classes in enforce targets, multiplicity conflicts, and — \
         with $(b,--models) — directional checks that are constant \
         under the given models.";
      `P
        "Every diagnostic carries a stable code (E0xx errors, W0xx \
         warnings) and a file:line:col anchor with a source excerpt.";
    ]
  in
  Cmd.v
    (Cmd.info "lint" ~doc ~man)
    Term.(
      const run_lint $ trans_arg $ mm_arg $ lint_models_arg $ json_arg
      $ werror_arg $ suppress_arg)

let fmt_cmd =
  let doc = "parse and pretty-print a QVT-R transformation" in
  Cmd.v (Cmd.info "fmt" ~doc) Term.(const run_fmt $ trans_arg)

let traces_cmd =
  let doc = "list relation matches (QVT trace links) on the models" in
  Cmd.v
    (Cmd.info "traces" ~doc)
    Term.(const run_traces $ trans_arg $ mm_arg $ models_arg $ standard_arg)

let demo_dir_arg =
  Arg.(value & pos 0 string "demo" & info [] ~docv:"DIR" ~doc:"Output directory.")

let demo_cmd =
  let doc = "write the paper's running example (metamodels, models, QVT-R)" in
  Cmd.v (Cmd.info "demo" ~doc) Term.(const run_demo $ demo_dir_arg)

let main =
  let doc = "multidirectional QVT-R transformations (EDBT'14 reproduction)" in
  Cmd.group
    (Cmd.info "qvtr" ~version:"1.0.0" ~doc)
    [ check_cmd; enforce_cmd; session_cmd; traces_cmd; lint_cmd; fmt_cmd; demo_cmd ]

let () = exit (Cmd.eval' main)
