(* Command-line front end: check / enforce / lint / fmt / demo.

   File conventions:
   - transformation: QVT-R concrete syntax (Qvtr.Parser);
   - metamodels: one file with several `metamodel ... { }` blocks;
   - models: one file with several `model <param> : <MM> { }` blocks,
     one per transformation parameter, named after the parameter. *)

let read_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  s

let ( let* ) = Result.bind

let load_inputs ~trans_file ~mm_file ~models_file =
  let* trans = Qvtr.Parser.parse ~file:trans_file (read_file trans_file) in
  let* mms = Mdl.Serialize.parse_metamodels (read_file mm_file) in
  let* models = Mdl.Serialize.parse_models mms (read_file models_file) in
  let metamodels = List.map (fun mm -> (Mdl.Metamodel.name mm, mm)) mms in
  let bound =
    List.map (fun m -> (Mdl.Model.name m, m)) models
  in
  Ok (trans, metamodels, bound)

let mode_of_standard standard =
  if standard then Qvtr.Semantics.Standard else Qvtr.Semantics.Extended

(* --trace FILE: record spans for the whole command and write a
   Chrome/Perfetto trace on the way out, success or failure. *)
let with_trace trace f =
  match trace with
  | None -> f ()
  | Some path ->
    Obs.Trace.set_enabled true;
    Fun.protect
      ~finally:(fun () ->
        Obs.Trace.set_enabled false;
        Obs.Trace.export_chrome path;
        Format.eprintf "trace written to %s@." path)
      f

let pp_metrics stats = if stats then Format.printf "%a@." Obs.Metrics.dump ()

(* Advisory lint on check/enforce: print warnings to stderr, never
   block the run (errors surface from the command itself). *)
let advisory_lint ~no_lint ~trans_file trans ~metamodels ~models =
  if not no_lint then begin
    let src = read_file trans_file in
    Lint.Driver.lint_ast ~models trans ~metamodels
    |> List.filter (fun (d : Lint.Diagnostic.t) ->
           d.Lint.Diagnostic.severity = Lint.Diagnostic.Warning)
    |> List.iter (fun d ->
           Format.eprintf "%s@." (Lint.Diagnostic.render ~src d))
  end

(* ------------------------------------------------------------------ *)
(* check                                                               *)

let run_check trans_file mm_file models_file standard no_lint stats trace =
  with_trace trace @@ fun () ->
  match
    let* trans, metamodels, models =
      load_inputs ~trans_file ~mm_file ~models_file
    in
    advisory_lint ~no_lint ~trans_file trans ~metamodels ~models;
    let* report =
      Qvtr.Check.run ~mode:(mode_of_standard standard) trans ~metamodels ~models
    in
    Ok report
  with
  | Ok report ->
    Format.printf "%a@." Qvtr.Check.pp_report report;
    if stats then
      Format.printf "stats: %d directional checks evaluated in %.3f ms@."
        (List.length report.Qvtr.Check.verdicts)
        (report.Qvtr.Check.elapsed *. 1000.);
    pp_metrics stats;
    if report.Qvtr.Check.consistent then 0 else 1
  | Error msg ->
    Format.eprintf "error: %s@." msg;
    2

(* ------------------------------------------------------------------ *)
(* enforce                                                             *)

let pp_stats_block stats r =
  if stats then begin
    Format.printf "@.--- stats ---@.%a@." Echo.Telemetry.pp
      r.Echo.Engine.stats;
    pp_metrics stats
  end

(* --jobs 0/auto resolves at dispatch time; library defaults stay
   serial (jobs = 1) so embedders opt into parallelism explicitly. *)
let resolve_jobs n = if n <= 0 then Parallel.Pool.default_jobs () else n

let run_enforce_all trans_file mm_file models_file targets standard slack jobs
    sbp stats =
  match
    let* trans, metamodels, models =
      load_inputs ~trans_file ~mm_file ~models_file
    in
    Echo.Engine.enforce_all ~mode:(mode_of_standard standard)
      ~slack_objects:slack ~jobs ~sbp trans ~metamodels ~models
      ~targets:(Echo.Target.of_list targets)
  with
  | Error msg ->
    Format.eprintf "error: %s@." msg;
    2
  | Ok outcomes ->
    let repairs =
      List.filter_map
        (function Echo.Engine.Enforced r -> Some r | _ -> None)
        outcomes
    in
    if repairs = [] then begin
      List.iter (fun o -> Format.printf "%a@." Echo.Engine.pp_outcome o) outcomes;
      match outcomes with [ Echo.Engine.Already_consistent ] -> 0 | _ -> 1
    end
    else begin
      Format.printf "%d minimal repair(s):@." (List.length repairs);
      List.iteri
        (fun i r ->
          Format.printf "@.--- repair %d: %a ---@." (i + 1) Echo.Engine.pp_outcome
            (Echo.Engine.Enforced r);
          List.iter
            (fun (p, m) ->
              if List.mem (Mdl.Ident.name p) targets then
                Format.printf "%s@." (Mdl.Serialize.model_to_string m))
            r.Echo.Engine.repaired)
        repairs;
      (* the enumeration shares one encoding: every repair carries the
         same cumulative roll-up, print it once *)
      (match repairs with r :: _ -> pp_stats_block stats r | [] -> ());
      0
    end

let run_enforce trans_file mm_file models_file targets standard backend
    slack jobs all no_lint no_sbp stats out_file trace =
  with_trace trace @@ fun () ->
  let jobs = resolve_jobs jobs in
  let sbp = not no_sbp in
  if all then
    run_enforce_all trans_file mm_file models_file targets standard slack jobs
      sbp stats
  else
  match
    let* trans, metamodels, models =
      load_inputs ~trans_file ~mm_file ~models_file
    in
    advisory_lint ~no_lint ~trans_file trans ~metamodels ~models;
    let backend =
      match backend with
      | "maxsat" -> Echo.Engine.Maxsat
      | "portfolio" -> Echo.Engine.Portfolio
      | _ -> Echo.Engine.Iterative
    in
    let* outcome =
      Echo.Engine.enforce ~backend ~mode:(mode_of_standard standard)
        ~slack_objects:slack ~jobs ~sbp trans ~metamodels ~models
        ~targets:(Echo.Target.of_list targets)
    in
    Ok outcome
  with
  | Ok (Echo.Engine.Enforced r) ->
    Format.printf "%a@." Echo.Engine.pp_outcome (Echo.Engine.Enforced r);
    let rendered =
      String.concat "\n\n"
        (List.map (fun (_, m) -> Mdl.Serialize.model_to_string m) r.Echo.Engine.repaired)
    in
    (match out_file with
    | Some path ->
      let oc = open_out path in
      output_string oc (rendered ^ "\n");
      close_out oc;
      Format.printf "repaired models written to %s@." path
    | None -> Format.printf "%s@." rendered);
    pp_stats_block stats r;
    0
  | Ok Echo.Engine.Cannot_restore ->
    Format.printf "%a@." Echo.Engine.pp_outcome Echo.Engine.Cannot_restore;
    (* explain which directional checks obstruct the target set *)
    (match
       let* trans, metamodels, models =
         load_inputs ~trans_file ~mm_file ~models_file
       in
       Echo.Engine.diagnose ~mode:(mode_of_standard standard)
         ~slack_objects:slack trans ~metamodels ~models
         ~targets:(Echo.Target.of_list targets)
     with
    | Ok ds ->
      List.iter
        (fun d ->
          if not d.Echo.Engine.d_satisfiable then
            Format.printf "  obstruction: %a@." Echo.Engine.pp_diagnosis d)
        ds
    | Error _ -> ());
    1
  | Ok outcome ->
    Format.printf "%a@." Echo.Engine.pp_outcome outcome;
    (match outcome with Echo.Engine.Already_consistent -> 0 | _ -> 1)
  | Error msg ->
    Format.eprintf "error: %s@." msg;
    2

(* ------------------------------------------------------------------ *)
(* session: replay an edit script on a long-lived incremental session.

   The replay is driven through Server.Engine — the same
   request-handling core `qvtr serve` exposes over a socket — so the
   CLI and the wire protocol cannot drift: every step is an
   apply_edits + recheck request against a persistent "main" session,
   compared with an open + recheck + close of a from-scratch session
   over the same post-edit models. *)

module SP = Server.Protocol

type session_step_record = {
  ss_label : string;
  ss_edits : int;
  ss_rebuilt : bool;
  ss_consistent : bool;
  ss_match : bool;
  ss_warm : Incr.Session.step_stats;
  ss_scratch : Incr.Session.step_stats;
}

let run_session trans_file mm_file models_file edits_file targets standard
    slack headroom stats trace =
  with_trace trace @@ fun () ->
  let mm_text = read_file mm_file in
  let models_text = read_file models_file in
  let prep =
    let* mms = Mdl.Serialize.parse_metamodels mm_text in
    let* models = Mdl.Serialize.parse_models mms models_text in
    let* bs = Incr.Replay.blocks (read_file edits_file) in
    (* validate every block up front so malformed scripts fail with
       their replay-file line numbers before any solver work *)
    let* snapshots =
      List.fold_left
        (fun acc (label, line, body) ->
          let* acc = acc in
          match Mdl.Serialize.parse_models mms body with
          | Ok ms -> Ok ((label, body, ms) :: acc)
          | Error e ->
            Error
              (Printf.sprintf "replay script: step %S (marker at line %d): %s"
                 label line e))
        (Ok []) bs
    in
    Ok (models, List.rev snapshots)
  in
  match prep with
  | Error msg ->
    Format.eprintf "error: %s@." msg;
    2
  | Ok (models, snapshots) -> (
    let engine = Server.Engine.create ~jobs:1 () in
    let spec =
      {
        SP.o_transformation = read_file trans_file;
        o_metamodels = mm_text;
        o_models = models_text;
        o_targets = targets;
        o_standard = standard;
        o_slack = slack;
        o_headroom = headroom;
      }
    in
    let next_id = ref 0 in
    let call session q_req =
      incr next_id;
      let resp =
        Server.Engine.call engine
          { SP.q_id = !next_id; q_session = session; q_req }
      in
      resp.SP.s_result
    in
    let checked = function
      | SP.Checked { consistent; verdicts; stats } ->
        Ok (consistent, verdicts, stats)
      | _ -> Error "unexpected reply to recheck"
    in
    let replay =
      let* _ = call "main" (SP.Open spec) in
      (* warm-up: pay the session's translation before step 1, as
         Incr.Replay.run does *)
      let* _ = call "main" (SP.Recheck { blame = false }) in
      let projected =
        ref (List.map (fun m -> (Mdl.Model.name m, m)) models)
      in
      let step (label, body, ms) =
        List.iter
          (fun m ->
            let p = Mdl.Model.name m in
            projected :=
              List.map
                (fun (q, old) ->
                  if Mdl.Ident.equal q p then (q, m) else (q, old))
                !projected)
          ms;
        let* applied = call "main" (SP.Apply_edits { models = body }) in
        let* edits =
          match applied with
          | SP.Applied { edits } -> Ok edits
          | _ -> Error "unexpected reply to apply_edits"
        in
        let* consistent, warm_vs, warm_stats =
          Result.bind (call "main" (SP.Recheck { blame = false })) checked
        in
        let scratch_models =
          String.concat "\n"
            (List.map
               (fun (_, m) -> Mdl.Serialize.model_to_string m)
               !projected)
        in
        let* _ =
          call "scratch" (SP.Open { spec with SP.o_models = scratch_models })
        in
        let* _, scratch_vs, scratch_stats =
          Result.bind (call "scratch" (SP.Recheck { blame = false })) checked
        in
        let* _ = call "scratch" SP.Close in
        Ok
          {
            ss_label = label;
            ss_edits = edits;
            ss_rebuilt = warm_stats.Incr.Session.translated;
            ss_consistent = consistent;
            ss_match = warm_vs = scratch_vs;
            ss_warm = warm_stats;
            ss_scratch = scratch_stats;
          }
      in
      List.fold_left
        (fun acc snap ->
          let* acc = acc in
          let* r = step snap in
          Ok (r :: acc))
        (Ok []) snapshots
      |> Result.map List.rev
    in
    let result = replay in
    Server.Engine.shutdown engine;
    match result with
    | Error msg ->
      Format.eprintf "error: %s@." msg;
      2
    | Ok records ->
      Format.printf "%-28s %5s %6s %6s %5s  %-26s %-26s@." "step" "edits"
        "re-enc" "consis" "match" "session (ms/confl/props)"
        "scratch (ms/confl/props)";
      let pp_side (s : Incr.Session.step_stats) =
        Printf.sprintf "%8.2f %6d %9d" (s.Incr.Session.wall *. 1000.)
          s.Incr.Session.conflicts s.Incr.Session.propagations
      in
      List.iter
        (fun r ->
          Format.printf "%-28s %5d %6s %6s %5s  %-26s %-26s@." r.ss_label
            r.ss_edits
            (if r.ss_rebuilt then "yes" else "-")
            (if r.ss_consistent then "yes" else "no")
            (if r.ss_match then "yes" else "NO")
            (pp_side r.ss_warm) (pp_side r.ss_scratch))
        records;
      if stats then begin
        let sum f =
          List.fold_left
            (fun (a, b) r -> (a + f r.ss_warm, b + f r.ss_scratch))
            (0, 0) records
        in
        let c_s, c_c = sum (fun s -> s.Incr.Session.conflicts) in
        let p_s, p_c = sum (fun s -> s.Incr.Session.propagations) in
        Format.printf
          "totals: session %d conflicts / %d propagations; from-scratch %d / \
           %d@."
          c_s p_s c_c p_c;
        pp_metrics stats
      end;
      if List.for_all (fun r -> r.ss_match) records then 0 else 1)

(* ------------------------------------------------------------------ *)
(* serve: long-lived multi-session daemon                              *)

let run_serve socket tcp admin_tcp jobs max_live snapshot_dir slow_ms
    reqlog_path sample_interval no_sbp =
  match (socket, tcp) with
  | None, None ->
    Format.eprintf "error: one of --socket PATH or --tcp PORT is required@.";
    2
  | Some _, Some _ ->
    Format.eprintf "error: --socket and --tcp are mutually exclusive@.";
    2
  | _ ->
    let addr, pretty =
      match (socket, tcp) with
      | Some path, None -> (Server.Net.Unix_sock path, "unix:" ^ path)
      | None, Some port -> (Server.Net.Tcp port, Printf.sprintf "tcp:127.0.0.1:%d" port)
      | _ -> assert false
    in
    let reqlog =
      Option.map (fun p -> Server.Reqlog.create ~path:p ()) reqlog_path
    in
    let engine =
      Server.Engine.create ~jobs:(resolve_jobs jobs) ~max_live ~snapshot_dir
        ?slow_ms ?reqlog ~symmetry:(not no_sbp) ()
    in
    (* the sampler keeps scrape-visible gauges fresh between requests:
       GC stats from Obs.Runtime itself, engine queue/session gauges
       and the domain count from these hooks *)
    Obs.Runtime.on_sample "server.gauges" (fun () ->
        ignore (Server.Engine.stats_json engine));
    let g_domains = Obs.Metrics.gauge "runtime.domains" in
    Obs.Runtime.on_sample "server.domains" (fun () ->
        Obs.Metrics.set_gauge g_domains
          (float_of_int (Server.Engine.jobs engine + 1)));
    Obs.Runtime.start ~interval_s:sample_interval ();
    let ready () =
      Format.eprintf "qvtr serve: listening on %s%s@." pretty
        (match admin_tcp with
        | Some p -> Printf.sprintf " (admin http on 127.0.0.1:%d)" p
        | None -> "")
    in
    (match Server.Net.serve ~ready ?admin:admin_tcp ~engine addr with
    | Ok () -> 0
    | Error msg ->
      Format.eprintf "error: %s@." msg;
      2)

(* ------------------------------------------------------------------ *)
(* top: live terminal view over the admin plane's /metrics             *)

let find_substring hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i =
    if i + nn > nh then None
    else if String.sub hay i nn = needle then Some i
    else go (i + 1)
  in
  go 0

let http_get ~port path =
  match Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 with
  | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)
  | fd -> (
    let finally () = try Unix.close fd with Unix.Unix_error _ -> () in
    match
      Fun.protect ~finally @@ fun () ->
      Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
      let req = Printf.sprintf "GET %s HTTP/1.0\r\n\r\n" path in
      let b = Bytes.of_string req in
      ignore (Unix.write fd b 0 (Bytes.length b));
      let buf = Buffer.create 8192 in
      let chunk = Bytes.create 8192 in
      let rec rd () =
        match Unix.read fd chunk 0 (Bytes.length chunk) with
        | 0 -> ()
        | n ->
          Buffer.add_subbytes buf chunk 0 n;
          rd ()
      in
      rd ();
      Buffer.contents buf
    with
    | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)
    | raw -> (
      match find_substring raw "\r\n\r\n" with
      | None -> Error "malformed HTTP response (no header/body separator)"
      | Some i ->
        let body = String.sub raw (i + 4) (String.length raw - i - 4) in
        let status_line =
          match find_substring raw "\r\n" with
          | Some e -> String.sub raw 0 e
          | None -> raw
        in
        if find_substring status_line "200" = None then
          Error (Printf.sprintf "admin plane answered %S" status_line)
        else Ok body))

(* Verbs present in the scrape: every histogram named
   server_queue_wait_<verb>_s contributes one row. *)
let top_verbs (m : Obs.Prom.t) =
  List.filter_map
    (fun (name, kind) ->
      let prefix = "server_queue_wait_" and suffix = "_s" in
      let np = String.length prefix and ns = String.length suffix in
      let n = String.length name in
      if
        kind = "histogram"
        && n > np + ns
        && String.sub name 0 np = prefix
        && String.sub name (n - ns) ns = suffix
      then Some (String.sub name np (n - np - ns))
      else None)
    m.Obs.Prom.types

let render_top (m : Obs.Prom.t) =
  let buf = Buffer.create 2048 in
  let gauge name = Option.value ~default:0. (Obs.Prom.gauge_value m name) in
  let cnt name = Option.value ~default:0 (Obs.Prom.counter_value m name) in
  let pf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  pf "qvtr top — uptime %.0fs  sessions %g live / %g cold  conns %g  \
      domains %g\n"
    (gauge "runtime_uptime_s")
    (gauge "server_sessions_live")
    (gauge "server_sessions_cold")
    (gauge "server_connections")
    (gauge "runtime_domains");
  pf "queues: depth %g (worst session %g, oldest head %.3fs)   requests %d  \
      errors %d (protocol %d)  slow %d\n"
    (gauge "server_queue_depth")
    (gauge "server_queue_depth_max")
    (gauge "server_queue_age_max_s")
    (cnt "server_requests") (cnt "server_errors")
    (cnt "server_protocol_errors")
    (cnt "server_slow_requests");
  let warm =
    Option.value ~default:0 (Obs.Prom.histogram_count m "server_recheck_warm_s")
  in
  let scratch =
    Option.value ~default:0
      (Obs.Prom.histogram_count m "server_recheck_scratch_s")
  in
  let total_recheck = warm + scratch in
  pf "rechecks: %d warm / %d scratch (%.0f%% warm)   churn: %d opened  %d \
      evicted  %d revived  %d closed  %d edits coalesced\n"
    warm scratch
    (if total_recheck = 0 then 0.
     else 100. *. float_of_int warm /. float_of_int total_recheck)
    (cnt "server_sessions_opened")
    (cnt "server_sessions_evicted")
    (cnt "server_sessions_revived")
    (cnt "server_sessions_closed")
    (cnt "server_edits_coalesced");
  pf "gc: heap %.1f MB  minor %g  major %g  compactions %g\n"
    (gauge "runtime_gc_heap_words" *. 8. /. 1048576.)
    (gauge "runtime_gc_minor_collections")
    (gauge "runtime_gc_major_collections")
    (gauge "runtime_gc_compactions");
  pf "symmetry: %d orbits  %d sbp clauses  %d dedup discards   sat: %d phase \
      flips  %d minimized lits\n"
    (cnt "relog_symmetry_orbits")
    (cnt "relog_symmetry_sbp_clauses")
    (cnt "echo_repair_dedup_discards")
    (cnt "sat_phase_flips")
    (cnt "sat_minimized_lits");
  pf "\n%-12s %8s  %9s %9s  %9s %9s  %9s %9s\n" "verb" "count" "wait p50"
    "wait p99" "serve p50" "serve p99" "total p50" "total p99";
  let ms name q =
    match Obs.Prom.percentile m name q with
    | Some v -> Printf.sprintf "%.2f" (v *. 1000.)
    | None -> "-"
  in
  List.iter
    (fun verb ->
      let count =
        Option.value ~default:0
          (Obs.Prom.histogram_count m ("server_queue_wait_" ^ verb ^ "_s"))
      in
      let qw = "server_queue_wait_" ^ verb ^ "_s" in
      let sv = "server_service_" ^ verb ^ "_s" in
      let lt = "server_latency_" ^ verb ^ "_s" in
      pf "%-12s %8d  %9s %9s  %9s %9s  %9s %9s\n" verb count (ms qw 0.5)
        (ms qw 0.99) (ms sv 0.5) (ms sv 0.99) (ms lt 0.5) (ms lt 0.99))
    (List.sort compare (top_verbs m));
  Buffer.contents buf

let run_top admin_tcp iterations interval no_clear =
  let rec loop remaining code =
    if remaining = 0 then code
    else begin
      let code =
        match http_get ~port:admin_tcp "/metrics" with
        | Error msg ->
          Format.printf "qvtr top: %s@." msg;
          1
        | Ok body -> (
          match Obs.Prom.parse body with
          | Error msg ->
            Format.printf "qvtr top: bad /metrics payload: %s@." msg;
            1
          | Ok m ->
            if not no_clear then print_string "\027[2J\027[H";
            print_string (render_top m);
            flush stdout;
            0)
      in
      let remaining = if remaining > 0 then remaining - 1 else remaining in
      if remaining <> 0 then Unix.sleepf interval;
      loop remaining code
    end
  in
  (* iterations <= 0 means run until interrupted *)
  loop (if iterations <= 0 then -1 else iterations) 0

(* ------------------------------------------------------------------ *)
(* traces                                                              *)

let run_traces trans_file mm_file models_file standard =
  match
    let* trans, metamodels, models =
      load_inputs ~trans_file ~mm_file ~models_file
    in
    Qvtr.Check.traces ~mode:(mode_of_standard standard) trans ~metamodels ~models
  with
  | Ok [] ->
    Format.printf "no relation matches@.";
    0
  | Ok traces ->
    List.iter (fun t -> Format.printf "%a@." Qvtr.Check.pp_trace t) traces;
    0
  | Error msg ->
    Format.eprintf "error: %s@." msg;
    2

(* ------------------------------------------------------------------ *)
(* lint: static analysis with source-located diagnostics               *)

let run_lint trans_file mm_file models_file json werror suppress =
  let src = read_file trans_file in
  match
    let* mms = Mdl.Serialize.parse_metamodels (read_file mm_file) in
    let metamodels = List.map (fun mm -> (Mdl.Metamodel.name mm, mm)) mms in
    let* models =
      match models_file with
      | None -> Ok None
      | Some f ->
        let* ms = Mdl.Serialize.parse_models mms (read_file f) in
        Ok (Some (List.map (fun m -> (Mdl.Model.name m, m)) ms))
    in
    Ok (metamodels, models)
  with
  | Error msg ->
    Format.eprintf "error: %s@." msg;
    2
  | Ok (metamodels, models) ->
    let config = { Lint.Driver.default_config with werror; suppress } in
    let diags =
      Lint.Driver.lint_source ~config ~file:trans_file ?models src ~metamodels
    in
    if json then
      print_endline (Obs.Json.to_string (Lint.Diagnostic.list_to_json diags))
    else begin
      List.iter (fun d -> print_endline (Lint.Diagnostic.render ~src d)) diags;
      Format.printf "%s@." (Lint.Driver.summary diags)
    end;
    if Lint.Driver.error_count diags > 0 then 1 else 0

(* ------------------------------------------------------------------ *)
(* fmt: parse and pretty-print a transformation                        *)

let run_fmt trans_file =
  match Qvtr.Parser.parse (read_file trans_file) with
  | Ok t ->
    print_endline (Qvtr.Parser.to_string t);
    0
  | Error msg ->
    Format.eprintf "error: %s@." msg;
    2

(* ------------------------------------------------------------------ *)
(* demo: generate the paper's example inputs into a directory          *)

let run_demo dir =
  let () = try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> () in
  let write name contents =
    let oc = open_out (Filename.concat dir name) in
    output_string oc contents;
    close_out oc
  in
  write "featureconfig.qvtr" (Featuremodel.Fm.source ~k:2);
  write "metamodels.mdl"
    (Mdl.Serialize.metamodel_to_string Featuremodel.Fm.cf_metamodel
    ^ "\n\n"
    ^ Mdl.Serialize.metamodel_to_string Featuremodel.Fm.fm_metamodel
    ^ "\n");
  let s = Featuremodel.Scenarios.new_mandatory_feature in
  let models =
    Featuremodel.Fm.bind ~cfs:s.Featuremodel.Scenarios.cfs
      ~fm:s.Featuremodel.Scenarios.fm
  in
  write "models.mdl"
    (String.concat "\n\n"
       (List.map (fun (_, m) -> Mdl.Serialize.model_to_string m) models)
    ^ "\n");
  (* an edit-replay script for `qvtr session`: demote every feature to
     optional, then restore the original feature model *)
  let fm_bound =
    match
      List.find_opt
        (fun (p, _) -> Mdl.Ident.equal p (Mdl.Ident.make "fm"))
        models
    with
    | Some (_, m) -> m
    | None -> assert false
  in
  let all_optional =
    Featuremodel.Fm.feature_model ~name:"fm"
      (List.map
         (fun (n, _) -> (n, false))
         (Featuremodel.Fm.fm_features fm_bound))
  in
  write "edits.replay"
    ("== all features optional\n"
    ^ Mdl.Serialize.model_to_string all_optional
    ^ "\n\n== restore the feature model\n"
    ^ Mdl.Serialize.model_to_string fm_bound
    ^ "\n");
  Format.printf
    "wrote %s/{featureconfig.qvtr, metamodels.mdl, models.mdl, edits.replay}@.try:@.  qvtr check -t \
     %s/featureconfig.qvtr -M %s/metamodels.mdl -m %s/models.mdl@.  qvtr enforce -t \
     %s/featureconfig.qvtr -M %s/metamodels.mdl -m %s/models.mdl --target cf1 \
     --target cf2@.  qvtr session -t %s/featureconfig.qvtr -M %s/metamodels.mdl \
     -m %s/models.mdl --edits %s/edits.replay@."
    dir dir dir dir dir dir dir dir dir dir dir;
  0

(* ------------------------------------------------------------------ *)
(* cmdliner plumbing                                                   *)

open Cmdliner

let trans_arg =
  Arg.(
    required
    & opt (some file) None
    & info [ "t"; "transformation" ] ~docv:"FILE" ~doc:"QVT-R transformation file.")

let mm_arg =
  Arg.(
    required
    & opt (some file) None
    & info [ "M"; "metamodels" ] ~docv:"FILE" ~doc:"Metamodels file.")

let models_arg =
  Arg.(
    required
    & opt (some file) None
    & info [ "m"; "models" ] ~docv:"FILE" ~doc:"Models file.")

let standard_arg =
  Arg.(
    value & flag
    & info [ "standard" ]
        ~doc:
          "Use the standard OMG checking semantics (ignore dependencies blocks).")

let stats_arg =
  Arg.(
    value & flag
    & info [ "stats" ]
        ~doc:
          "Print per-phase telemetry: translation size (vars/clauses), solver \
           counters, distance iterations, wall-clock timings.")

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Record a structured trace of the run and write it to FILE in \
           Chrome trace-event JSON (open in Perfetto or about://tracing). \
           One track per worker domain; spans cover parse, translate, CNF \
           build and every solver call.")

let no_lint_arg =
  Arg.(
    value & flag
    & info [ "no-lint" ]
        ~doc:"Skip the advisory lint warnings printed before the run.")

let no_sbp_arg =
  Arg.(
    value & flag
    & info [ "no-sbp" ]
        ~doc:
          "Disable symmetry breaking. For $(b,enforce): skip the bounds-level \
           orbit analysis and its lex-leader predicates, enumerating every \
           symmetric variant of each repair (answers and distances are \
           unchanged; searches are larger and --all menus may contain \
           isomorphic duplicates). For $(b,serve): drop the guarded \
           slack-symmetry chains from session repairs.")

let check_cmd =
  let doc = "check consistency of models under a QVT-R transformation" in
  Cmd.v
    (Cmd.info "check" ~doc)
    Term.(
      const run_check $ trans_arg $ mm_arg $ models_arg $ standard_arg
      $ no_lint_arg $ stats_arg $ trace_arg)

let targets_arg =
  Arg.(
    non_empty & opt_all string []
    & info [ "target" ] ~docv:"PARAM"
        ~doc:"Model parameter to repair (repeatable — the paper's multidirectional \
              target sets).")

let backend_arg =
  Arg.(
    value
    & opt
        (enum
           [ ("iterative", "iterative");
             ("maxsat", "maxsat");
             ("portfolio", "portfolio") ])
        "iterative"
    & info [ "backend" ]
        ~doc:
          "Repair backend: iterative (Echo), maxsat, or portfolio (race both \
           on worker domains; needs --jobs >= 2).")

let jobs_arg =
  Arg.(
    value & opt int 0
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Parallelism budget: the iterative backend probes N distance levels \
           speculatively on worker domains; the portfolio races its lanes. \
           The repair distance is identical for every N. N = 0 (the default) \
           auto-sizes from the available cores \
           (Domain.recommended_domain_count); an explicit N is always \
           honoured as given.")

let slack_arg =
  Arg.(
    value & opt int 2
    & info [ "slack" ] ~doc:"Fresh objects available per target model.")

let out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Write repaired models to FILE.")

let all_arg =
  Arg.(
    value & flag
    & info [ "all" ]
        ~doc:"Enumerate every minimal repair instead of returning one.")

let enforce_cmd =
  let doc = "repair the target models to restore consistency (least change)" in
  Cmd.v
    (Cmd.info "enforce" ~doc)
    Term.(
      const run_enforce $ trans_arg $ mm_arg $ models_arg $ targets_arg
      $ standard_arg $ backend_arg $ slack_arg $ jobs_arg $ all_arg
      $ no_lint_arg $ no_sbp_arg $ stats_arg $ out_arg $ trace_arg)

let edits_arg =
  Arg.(
    required
    & opt (some file) None
    & info [ "edits" ] ~docv:"FILE"
        ~doc:
          "Edit-replay script: blocks of models separated by `== <label>' \
           lines; each block is diffed against the running state to form \
           one edit batch.")

let session_targets_arg =
  Arg.(
    value & opt_all string []
    & info [ "target" ] ~docv:"PARAM"
        ~doc:
          "Model parameter the session may repair (repeatable; default: all \
           parameters).")

let headroom_arg =
  Arg.(
    value & opt int 6
    & info [ "headroom" ]
        ~doc:
          "Object creations absorbed by edits before the universe is \
           re-encoded.")

let session_cmd =
  let doc =
    "replay an edit script on a long-lived incremental session, comparing \
     every re-check against a from-scratch run"
  in
  Cmd.v
    (Cmd.info "session" ~doc)
    Term.(
      const run_session $ trans_arg $ mm_arg $ models_arg $ edits_arg
      $ session_targets_arg $ standard_arg $ slack_arg $ headroom_arg
      $ stats_arg $ trace_arg)

let socket_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "socket" ] ~docv:"PATH"
        ~doc:"Listen on a Unix domain socket at PATH.")

let tcp_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "tcp" ] ~docv:"PORT" ~doc:"Listen on loopback TCP at PORT.")

let max_live_arg =
  Arg.(
    value & opt int 64
    & info [ "max-live" ] ~docv:"N"
        ~doc:
          "Keep at most N sessions (and their solver state) in memory; the \
           least-recently-used idle session beyond that is evicted to a \
           durable snapshot and transparently revived on its next request.")

let snapshot_dir_arg =
  Arg.(
    value & opt string "./qvtr-sessions"
    & info [ "snapshot-dir" ] ~docv:"DIR"
        ~doc:"Directory for eviction/snapshot files (created on demand).")

let admin_tcp_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "admin-tcp" ] ~docv:"PORT"
        ~doc:
          "Also serve a read-only HTTP admin plane on loopback TCP at PORT: \
           GET /metrics (Prometheus text format), /healthz, /sessions.")

let slow_ms_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "slow-ms" ] ~docv:"MS"
        ~doc:
          "Flag replies slower than MS milliseconds end-to-end: bump the \
           server.slow_requests counter and mark the request-log record \
           slow:true.")

let reqlog_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "reqlog" ] ~docv:"FILE"
        ~doc:
          "Append one JSON record per answered protocol frame to FILE \
           (request id, session, verb, queue-wait and service seconds, \
           outcome, slow flag).")

let sample_interval_arg =
  Arg.(
    value & opt float 5.0
    & info [ "sample-interval" ] ~docv:"SECS"
        ~doc:
          "Cadence of the runtime sampler thread that refreshes GC, \
           session and queue gauges for scrapes (default 5s).")

let serve_cmd =
  let doc = "run the long-lived multi-session transformation server" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Hosts many concurrent incremental sessions, one per editor or \
         client, and answers newline-framed JSON requests (verbs: open, \
         apply_edits, recheck, rerepair, commit, snapshot, close, stats) \
         over a Unix or loopback TCP socket. Work is scheduled on a worker \
         pool, one in-flight request per session and fair across sessions; \
         bursts of apply_edits coalesce into one re-pin. $(b,qvtr session) \
         drives the same engine in-process.";
    ]
  in
  Cmd.v
    (Cmd.info "serve" ~doc ~man)
    Term.(
      const run_serve $ socket_arg $ tcp_arg $ admin_tcp_arg $ jobs_arg
      $ max_live_arg $ snapshot_dir_arg $ slow_ms_arg $ reqlog_arg
      $ sample_interval_arg $ no_sbp_arg)

let top_admin_arg =
  Arg.(
    required
    & opt (some int) None
    & info [ "admin-tcp" ] ~docv:"PORT"
        ~doc:"Admin-plane port of the qvtr serve to watch (its --admin-tcp).")

let top_iterations_arg =
  Arg.(
    value & opt int 0
    & info [ "n"; "iterations" ] ~docv:"N"
        ~doc:"Render N frames then exit (0 = run until interrupted).")

let top_interval_arg =
  Arg.(
    value & opt float 2.0
    & info [ "interval" ] ~docv:"SECS" ~doc:"Refresh interval (default 2s).")

let no_clear_arg =
  Arg.(
    value & flag
    & info [ "no-clear" ]
        ~doc:
          "Do not clear the terminal between frames (append them instead — \
           for logs and CI).")

let top_cmd =
  let doc = "live terminal view of a running qvtr serve" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Polls GET /metrics on the server's admin plane and renders a \
         refreshing dashboard: per-verb request counts with queue-wait, \
         service and end-to-end p50/p99 latencies, total and worst-session \
         queue depth and age, warm/scratch recheck split, session churn \
         (opened/evicted/revived/closed), connection count and GC headline \
         numbers. The server must be started with $(b,--admin-tcp PORT).";
    ]
  in
  Cmd.v
    (Cmd.info "top" ~doc ~man)
    Term.(
      const run_top $ top_admin_arg $ top_iterations_arg $ top_interval_arg
      $ no_clear_arg)

let lint_models_arg =
  Arg.(
    value
    & opt (some file) None
    & info [ "m"; "models" ] ~docv:"FILE"
        ~doc:
          "Models file (optional). When given, lint also runs the \
           model-bounded vacuity pass (W009).")

let json_arg =
  Arg.(
    value & flag
    & info [ "json" ] ~doc:"Emit diagnostics as a JSON array on stdout.")

let werror_arg =
  Arg.(
    value & flag
    & info [ "werror" ] ~doc:"Treat warnings as errors (exit non-zero).")

let suppress_arg =
  Arg.(
    value & opt_all string []
    & info [ "suppress" ] ~docv:"CODE"
        ~doc:"Suppress a diagnostic code, e.g. --suppress W004 (repeatable).")

let lint_cmd =
  let doc = "statically analyze a QVT-R transformation" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Parses and typechecks the transformation, then runs \
         static-analysis passes: unreachable relations, redundant \
         checking dependencies, unenforceable model parameters, \
         unused and single-domain variables, shadowing, abstract \
         classes in enforce targets, multiplicity conflicts, and — \
         with $(b,--models) — directional checks that are constant \
         under the given models.";
      `P
        "Every diagnostic carries a stable code (E0xx errors, W0xx \
         warnings) and a file:line:col anchor with a source excerpt.";
    ]
  in
  Cmd.v
    (Cmd.info "lint" ~doc ~man)
    Term.(
      const run_lint $ trans_arg $ mm_arg $ lint_models_arg $ json_arg
      $ werror_arg $ suppress_arg)

let fmt_cmd =
  let doc = "parse and pretty-print a QVT-R transformation" in
  Cmd.v (Cmd.info "fmt" ~doc) Term.(const run_fmt $ trans_arg)

let traces_cmd =
  let doc = "list relation matches (QVT trace links) on the models" in
  Cmd.v
    (Cmd.info "traces" ~doc)
    Term.(const run_traces $ trans_arg $ mm_arg $ models_arg $ standard_arg)

let demo_dir_arg =
  Arg.(value & pos 0 string "demo" & info [] ~docv:"DIR" ~doc:"Output directory.")

let demo_cmd =
  let doc = "write the paper's running example (metamodels, models, QVT-R)" in
  Cmd.v (Cmd.info "demo" ~doc) Term.(const run_demo $ demo_dir_arg)

let main =
  let doc = "multidirectional QVT-R transformations (EDBT'14 reproduction)" in
  Cmd.group
    (Cmd.info "qvtr" ~version:"1.0.0" ~doc)
    [
      check_cmd;
      enforce_cmd;
      session_cmd;
      serve_cmd;
      top_cmd;
      traces_cmd;
      lint_cmd;
      fmt_cmd;
      demo_cmd;
    ]

let () = exit (Cmd.eval' main)
