(* Experiment and benchmark driver.

   `dune exec bench/main.exe` runs every experiment E1..E8 and prints
   the tables recorded in EXPERIMENTS.md. A single experiment can be
   selected by id (`... e3`), and `... bench` runs the bechamel
   microbenchmark suite (one Test.make per timed table).

   `--json` additionally writes a machine-readable benchmark record
   file (default `BENCH_6.json`, override with `--out FILE`): one
   record per executed experiment *per jobs value* with its wall-clock
   time (min over `--reps` runs, with max and the rep count recorded
   alongside), the process-wide SAT-solver counter deltas
   (`Sat.Solver.global_stats`) it caused, the `jobs` value it ran at,
   and its `speedup` relative to the same experiment at the sweep's
   baseline (jobs = 1) — suppressed (JSON null, with a note) when the
   walls involved sit below a noise floor, so sub-millisecond
   experiments stop reporting 3x "speedups" that are pure timer
   noise — plus a process-wide `Obs.Metrics` snapshot. This file is
   the perf-regression trajectory: commit one per optimization PR and
   diff the counters.

   `--trace FILE` records an `Obs.Trace` of the whole run and writes
   Chrome trace-event JSON on exit (open in Perfetto).

   `--jobs SPEC` sets the sweep: a comma list (`--jobs 1,2,4`) is used
   verbatim; a bare N expands to powers of two up to N (`--jobs 4` =
   `1,2,4`). Default sweep: 1,2,4 in `--json` mode; plain runs use the
   largest value (default 1). Only E6/E7/E8 drive the parallel
   enforcement paths; the other experiments ignore jobs and are
   re-measured per sweep point anyway so the record set is uniform.

   The paper (an EDBT'14 workshop paper) has one figure (Figure 1, the
   CF/FM metamodels) and no measurement tables; its "evaluation" is a
   set of semantic claims. Each claim is reified here as a numbered
   experiment — see DESIGN.md for the index. *)

module F = Featuremodel.Fm
module G = Featuremodel.Gen
module S = Featuremodel.Scenarios
module I = Mdl.Ident

let section id title =
  Format.printf "@.==== %s: %s ====@." id title

let consistent ?mode trans cfs fm =
  (Qvtr.Check.run_exn ?mode trans ~metamodels:F.metamodels ~models:(F.bind ~cfs ~fm))
    .Qvtr.Check.consistent

let time_it f =
  let t0 = Obs.Clock.now () in
  let r = f () in
  (r, Obs.Clock.now () -. t0)

(* ------------------------------------------------------------------ *)
(* E1: Figure 1 — the CF and FM metamodels, instances conform          *)

let e1 () =
  section "E1" "Figure 1 metamodels and conformance";
  Format.printf "%s@.@.%s@."
    (Mdl.Serialize.metamodel_to_string F.cf_metamodel)
    (Mdl.Serialize.metamodel_to_string F.fm_metamodel);
  let fm = F.feature_model ~name:"fm" [ ("A", true); ("B", false) ] in
  let cf = F.configuration ~name:"cf1" [ "A" ] in
  Format.printf "sample fm conforms: %b; sample cf conforms: %b@."
    (Mdl.Conformance.conforms fm) (Mdl.Conformance.conforms cf)

(* ------------------------------------------------------------------ *)
(* E2: §2.1 — the standard semantics cannot express MF                 *)

let exhaustive_states pool =
  let cfs = G.all_cfs pool in
  let fms = G.all_fms pool in
  List.concat_map
    (fun c1 -> List.concat_map (fun c2 -> List.map (fun fm -> (c1, c2, fm)) fms) cfs)
    cfs

let e2 () =
  section "E2" "standard QVT-R checking semantics cannot express MF (2.1)";
  let std = F.transformation_standard ~k:2 in
  let ext = F.transformation ~k:2 in
  let states = exhaustive_states [ "A"; "B" ] in
  let total = List.length states in
  let count p = List.length (List.filter p states) in
  let std_ok (c1, c2, fm) = consistent ~mode:Qvtr.Semantics.Standard std [ c1; c2 ] fm in
  let ext_ok (c1, c2, fm) = consistent ext [ c1; c2 ] fm in
  let oracle (c1, c2, fm) = F.consistent ~cfs:[ c1; c2 ] ~fm in
  Format.printf
    "scope: all (cf1, cf2, fm) over feature names {A, B} — %d states@." total;
  Format.printf "  semantics          | agrees with intended MF-and-OF@.";
  Format.printf "  standard (OMG)     | %d/%d@."
    (count (fun s -> std_ok s = oracle s)) total;
  Format.printf "  extended (paper)   | %d/%d@."
    (count (fun s -> ext_ok s = oracle s)) total;
  Format.printf "  standard false-accepts: %d, false-rejects: %d@."
    (count (fun s -> std_ok s && not (oracle s)))
    (count (fun s -> (not (std_ok s)) && oracle s));
  (* the paper's concrete counterexample *)
  let cfs = [ F.configuration ~name:"cf1" []; F.configuration ~name:"cf2" [] ] in
  let fm = F.feature_model ~name:"fm" [ ("A", true) ] in
  Format.printf
    "counterexample (mandatory A, empty configs): standard=%b extended=%b intended=%b@."
    (consistent ~mode:Qvtr.Semantics.Standard std cfs fm)
    (consistent ext cfs fm) (F.consistent ~cfs ~fm)

(* ------------------------------------------------------------------ *)
(* E3: §2.2 — the extension realises MF and OF exactly                 *)

let e3 () =
  section "E3" "checking dependencies realise the intended MF and OF (2.2)";
  let only rel_name trans =
    {
      trans with
      Qvtr.Ast.t_relations =
        List.filter
          (fun (r : Qvtr.Ast.relation) -> I.name r.Qvtr.Ast.r_name = rel_name)
          trans.Qvtr.Ast.t_relations;
    }
  in
  let ext = F.transformation ~k:2 in
  let states = exhaustive_states [ "A"; "B" ] in
  let agree name trans oracle =
    let n =
      List.length
        (List.filter
           (fun (c1, c2, fm) -> consistent trans [ c1; c2 ] fm = oracle c1 c2 fm)
           states)
    in
    Format.printf "  %-4s with deps %-38s | %d/%d states agree@." name
      (match name with
      | "MF" -> "{cf1 cf2 -> fm, fm -> cf1, fm -> cf2}"
      | _ -> "{cf1 -> fm, cf2 -> fm}")
      n (List.length states)
  in
  agree "MF" (only "MF" ext) (fun c1 c2 fm -> F.consistent_mf ~cfs:[ c1; c2 ] ~fm);
  agree "OF" (only "OF" ext) (fun c1 c2 fm -> F.consistent_of ~cfs:[ c1; c2 ] ~fm)

(* ------------------------------------------------------------------ *)
(* E4: §2.2 — conservativity                                           *)

let e4 () =
  section "E4" "conservativity: full dependency set = standard semantics (2.2)";
  let std = F.transformation_standard ~k:2 in
  let states = exhaustive_states [ "A"; "B" ] in
  let mismatches =
    List.filter
      (fun (c1, c2, fm) ->
        consistent ~mode:Qvtr.Semantics.Standard std [ c1; c2 ] fm
        <> consistent ~mode:Qvtr.Semantics.Extended std [ c1; c2 ] fm)
      states
  in
  Format.printf
    "  standard mode vs extended mode on a deps-free program: %d/%d states equal \
     (%d mismatches)@."
    (List.length states - List.length mismatches)
    (List.length states) (List.length mismatches)

(* ------------------------------------------------------------------ *)
(* E5: §2.3 — Horn entailment, linear time                             *)

let chain_deps n =
  List.init n (fun i ->
      Qvtr.Dependency.make
        ~sources:[ Printf.sprintf "M%d" i ]
        ~target:(Printf.sprintf "M%d" (i + 1)))

let e5 () =
  section "E5" "call-direction checking is Horn entailment, linear time (2.3)";
  let deps =
    [ Qvtr.Dependency.make ~sources:[ "M1" ] ~target:"M2";
      Qvtr.Dependency.make ~sources:[ "M2" ] ~target:"M3" ]
  in
  Format.printf "  {M1->M2, M2->M3} |- M1->M3 : %b (paper's example)@."
    (Qvtr.Dependency.entails deps (Qvtr.Dependency.make ~sources:[ "M1" ] ~target:"M3"));
  Format.printf "  {M1->M2, M1->M3} |- M1->M2 M3 : %b (derived multi-head)@."
    (Qvtr.Dependency.entails_multi
       [ Qvtr.Dependency.make ~sources:[ "M1" ] ~target:"M2";
         Qvtr.Dependency.make ~sources:[ "M1" ] ~target:"M3" ]
       ~sources:[ I.make "M1" ]
       ~targets:[ I.make "M2"; I.make "M3" ]);
  Format.printf "  scaling (chain of n dependencies, goal M0 -> Mn):@.";
  Format.printf "  %8s | %10s | %12s@." "n" "time (ms)" "ns per dep";
  List.iter
    (fun n ->
      let deps = chain_deps n in
      let goal = Qvtr.Dependency.make ~sources:[ "M0" ] ~target:(Printf.sprintf "M%d" n) in
      ignore (Qvtr.Dependency.entails deps goal);
      let reps = max 1 (20000 / n) in
      let ok, dt =
        time_it (fun () ->
            let ok = ref true in
            for _ = 1 to reps do
              ok := !ok && Qvtr.Dependency.entails deps goal
            done;
            !ok)
      in
      let per_call = dt /. float_of_int reps in
      Format.printf "  %8d | %10.3f | %12.1f%s@." n (per_call *. 1000.)
        (per_call *. 1e9 /. float_of_int n)
        (if ok then "" else "  (!)"))
    [ 1000; 2000; 4000; 8000; 16000; 32000 ]

(* ------------------------------------------------------------------ *)
(* E6: §3 — transformation shapes                                      *)

let shapes =
  [
    ("CF^k -> FM", [ "fm" ]);
    ("FMxCF -> CF1", [ "cf1" ]);
    ("FMxCF -> CF2", [ "cf2" ]);
    ("FM -> CF^k", [ "cf1"; "cf2" ]);
    ("CF1 -> FMxCF", [ "fm"; "cf2" ]);
  ]

let e6 ~jobs =
  section "E6" "enforcement shapes: who can restore consistency (3)";
  let trans = F.transformation ~k:2 in
  Format.printf "  %-26s" "scenario";
  List.iter (fun (label, _) -> Format.printf " | %-14s" label) shapes;
  Format.printf "@.";
  List.iter
    (fun (s : S.t) ->
      Format.printf "  %-26s" s.S.s_name;
      List.iter
        (fun (_, targets) ->
          let cell =
            match
              Echo.Engine.enforce ~jobs trans ~metamodels:F.metamodels
                ~models:(F.bind ~cfs:s.S.cfs ~fm:s.S.fm)
                ~targets:(Echo.Target.of_list targets)
            with
            | Ok (Echo.Engine.Enforced r) ->
              Printf.sprintf "d=%d" r.Echo.Engine.relational_distance
            | Ok Echo.Engine.Already_consistent -> "consistent"
            | Ok Echo.Engine.Cannot_restore -> "CANNOT"
            | Error _ -> "error"
          in
          Format.printf " | %-14s" cell)
        shapes;
      Format.printf "@.")
    S.all;
  Format.printf
    "  (paper 3: a new mandatory feature cannot be handled by a single-target \
     ->Fi_CF, only by ->F_CF^k — first row.)@.";
  (* diagnosis of the paper's CANNOT case *)
  let s = S.new_mandatory_feature in
  (match
     Echo.Engine.diagnose trans ~metamodels:F.metamodels
       ~models:(F.bind ~cfs:s.S.cfs ~fm:s.S.fm)
       ~targets:(Echo.Target.single "cf1")
   with
  | Ok ds ->
    List.iter
      (fun d ->
        if not d.Echo.Engine.d_satisfiable then
          Format.printf "  diagnosis for ->F1_CF: %a@." Echo.Engine.pp_diagnosis d)
      ds
  | Error e -> Format.printf "  diagnosis error: %s@." e)

(* ------------------------------------------------------------------ *)
(* E7: §3 — least change, backend agreement                            *)

let e7 ~jobs =
  section "E7" "least-change optimality and backend agreement (3)";
  let trans = F.transformation ~k:2 in
  let rng = G.rng 42 in
  Format.printf "  %-34s | %-10s | %-11s | %-8s@." "perturbed state (cf1+cf2 | fm)"
    "iter d/it" "maxsat d/it" "agree";
  let agreements = ref 0 and cases = ref 0 in
  for _ = 1 to 10 do
    let state = G.consistent_state rng ~k:2 ~n_features:3 in
    match G.random_perturbation rng state with
    | None -> ()
    | Some p ->
      let cfs, fm = G.apply_perturbation state p in
      if not (F.consistent ~cfs ~fm) then begin
        incr cases;
        let run backend =
          match
            Echo.Engine.enforce ~backend ~jobs trans ~metamodels:F.metamodels
              ~models:(F.bind ~cfs ~fm)
              ~targets:(Echo.Target.of_list [ "cf1"; "cf2"; "fm" ])
          with
          | Ok (Echo.Engine.Enforced r) ->
            Some (r.Echo.Engine.relational_distance, r.Echo.Engine.iterations)
          | _ -> None
        in
        let it = run Echo.Engine.Iterative and mx = run Echo.Engine.Maxsat in
        let show = function
          | Some (d, i) -> Printf.sprintf "%d/%d" d i
          | None -> "-"
        in
        let agree =
          match (it, mx) with
          | Some (d1, _), Some (d2, _) -> d1 = d2
          | None, None -> true
          | _ -> false
        in
        if agree then incr agreements;
        Format.printf "  %-34s | %-10s | %-11s | %-8b@."
          (Printf.sprintf "%s | %s"
             (String.concat "+"
                (List.map (fun c -> String.concat "," (F.cf_features c)) cfs))
             (String.concat ","
                (List.map (fun (n, m) -> if m then n ^ "!" else n) (F.fm_features fm))))
          (show it) (show mx) agree
      end
  done;
  Format.printf "  backends agree on the optimum: %d/%d cases@." !agreements !cases;
  (* A deep repair: m new mandatory features force a distance-4m
     optimum. This is the regime the speculative distance ladder
     targets — one high-level UNSAT retires [jobs] levels at once —
     so the iterative column shrinks as jobs grows while the
     (inherently sequential) MaxSAT descent is the jobs-invariant
     reference it must still agree with. *)
  let deep_m = 3 in
  let pool = G.feature_names 4 in
  let cfs = [ F.configuration ~name:"cf1" pool; F.configuration ~name:"cf2" pool ] in
  let fm =
    F.feature_model ~name:"fm"
      (List.map (fun f -> (f, true)) pool
      @ List.init deep_m (fun i -> (Printf.sprintf "N%d" i, true)))
  in
  let run backend =
    let r, dt =
      time_it (fun () ->
          Echo.Engine.enforce ~backend ~jobs ~slack_objects:deep_m trans
            ~metamodels:F.metamodels ~models:(F.bind ~cfs ~fm)
            ~targets:(Echo.Target.of_list [ "cf1"; "cf2" ]))
    in
    match r with
    | Ok (Echo.Engine.Enforced r) ->
      (Some (r.Echo.Engine.relational_distance, r.Echo.Engine.iterations), dt)
    | _ -> (None, dt)
  in
  let it, it_dt = run Echo.Engine.Iterative in
  let mx, mx_dt = run Echo.Engine.Maxsat in
  let show = function Some (d, i) -> Printf.sprintf "d=%d it=%d" d i | None -> "-" in
  Format.printf
    "  deep case (%d new mandatory features): iter %s (%.0f ms) | maxsat %s (%.0f ms) | agree %b@."
    deep_m (show it) (it_dt *. 1000.) (show mx) (mx_dt *. 1000.)
    (match (it, mx) with
    | Some (d1, _), Some (d2, _) -> d1 = d2
    | None, None -> true
    | _ -> false)

(* E7's deep case raced as a portfolio. Runs OUTSIDE the measured
   records — on a 1-core box the losing lane timeshares the core and
   roughly doubles the wall (DESIGN's portfolio caveat), which would
   poison the e7 sweep it rode in — but it still feeds the cumulative
   metrics snapshot. This is what keeps the portfolio win-accounting
   honest in the BENCH files: no experiment drove a real race before
   BENCH_5 ([enforce ~backend:Portfolio] degrades to the ladder at
   jobs = 1, Engine's default, and E7/E8 only ever named the two
   concrete backends), which is why the win counters sat at zero for
   three releases while looking broken. *)
let e7_portfolio () =
  section "E7b" "portfolio race on the deep case (unmeasured)";
  let trans = F.transformation ~k:2 in
  let deep_m = 3 in
  let pool = G.feature_names 4 in
  let cfs = [ F.configuration ~name:"cf1" pool; F.configuration ~name:"cf2" pool ] in
  let fm =
    F.feature_model ~name:"fm"
      (List.map (fun f -> (f, true)) pool
      @ List.init deep_m (fun i -> (Printf.sprintf "N%d" i, true)))
  in
  let r, dt =
    time_it (fun () ->
        Echo.Engine.enforce ~backend:Echo.Engine.Portfolio ~jobs:2
          ~slack_objects:deep_m trans ~metamodels:F.metamodels
          ~models:(F.bind ~cfs ~fm)
          ~targets:(Echo.Target.of_list [ "cf1"; "cf2" ]))
  in
  match r with
  | Ok (Echo.Engine.Enforced r) ->
    Format.printf "  portfolio on the deep case: d=%d via the %s lane (%.0f ms)@."
      r.Echo.Engine.relational_distance
      (match r.Echo.Engine.backend with
      | Echo.Engine.Iterative -> "iterative"
      | Echo.Engine.Maxsat -> "maxsat"
      | Echo.Engine.Portfolio -> "portfolio")
      (dt *. 1000.)
  | Ok _ -> Format.printf "  portfolio on the deep case: no repair needed@."
  | Error e -> Format.printf "  portfolio on the deep case: error: %s@." e

(* ------------------------------------------------------------------ *)
(* E8: scaling                                                         *)

let e8 ~jobs =
  section "E8" "scaling: checkonly and enforcement wall time";
  let trans = F.transformation ~k:2 in
  Format.printf "  checkonly (direct evaluation), k = 2:@.";
  Format.printf "  %10s | %12s@." "features" "check (ms)";
  List.iter
    (fun n ->
      let pool = G.feature_names n in
      let cfs =
        [ F.configuration ~name:"cf1" pool; F.configuration ~name:"cf2" pool ]
      in
      let fm = F.feature_model ~name:"fm" (List.map (fun f -> (f, true)) pool) in
      let _, dt = time_it (fun () -> consistent trans cfs fm) in
      Format.printf "  %10d | %12.2f@." n (dt *. 1000.))
    [ 10; 20; 40; 80 ];
  Format.printf "  checkonly vs k (10 features):@.";
  Format.printf "  %10s | %12s@." "k" "check (ms)";
  List.iter
    (fun k ->
      let pool = G.feature_names 10 in
      let trans = F.transformation ~k in
      let cfs =
        List.init k (fun i -> F.configuration ~name:(Printf.sprintf "cf%d" (i + 1)) pool)
      in
      let fm = F.feature_model ~name:"fm" (List.map (fun f -> (f, true)) pool) in
      let _, dt = time_it (fun () -> consistent trans cfs fm) in
      Format.printf "  %10d | %12.2f@." k (dt *. 1000.))
    [ 1; 2; 3; 4 ];
  Format.printf "  enforcement (new-mandatory-feature scenario, targets = all CFs):@.";
  Format.printf "  %10s | %12s | %12s@." "features" "iter (ms)" "maxsat (ms)";
  List.iter
    (fun n ->
      let pool = G.feature_names n in
      let cfs =
        [ F.configuration ~name:"cf1" pool; F.configuration ~name:"cf2" pool ]
      in
      let fm =
        F.feature_model ~name:"fm" (List.map (fun f -> (f, true)) pool @ [ ("N", true) ])
      in
      let run backend =
        let _, dt =
          time_it (fun () ->
              Echo.Engine.enforce ~backend ~jobs trans ~metamodels:F.metamodels
                ~models:(F.bind ~cfs ~fm)
                ~targets:(Echo.Target.of_list [ "cf1"; "cf2" ]))
        in
        dt *. 1000.
      in
      Format.printf "  %10d | %12.1f | %12.1f@." n (run Echo.Engine.Iterative)
        (run Echo.Engine.Maxsat))
    [ 2; 4; 6; 8 ];
  (* Deep repairs (distance 4m): the speculative ladder's home turf.
     With jobs levels probed per window, one high UNSAT replaces a run
     of cheap low-level UNSATs, and solver-call count drops from
     d* + 1 towards d*/jobs — the per-jobs walls of this table are
     the speedup the BENCH records track. *)
  Format.printf
    "  deep repair (m new mandatory features, 4-feature pool, iterative, jobs=%d):@."
    jobs;
  Format.printf "  %10s | %10s | %10s | %12s@." "m" "distance" "solves" "iter (ms)";
  List.iter
    (fun m ->
      let pool = G.feature_names 4 in
      let cfs =
        [ F.configuration ~name:"cf1" pool; F.configuration ~name:"cf2" pool ]
      in
      let fm =
        F.feature_model ~name:"fm"
          (List.map (fun f -> (f, true)) pool
          @ List.init m (fun i -> (Printf.sprintf "N%d" i, true)))
      in
      let r, dt =
        time_it (fun () ->
            Echo.Engine.enforce ~jobs ~slack_objects:(max 2 m) trans
              ~metamodels:F.metamodels ~models:(F.bind ~cfs ~fm)
              ~targets:(Echo.Target.of_list [ "cf1"; "cf2" ]))
      in
      match r with
      | Ok (Echo.Engine.Enforced r) ->
        Format.printf "  %10d | %10d | %10d | %12.1f@." m
          r.Echo.Engine.relational_distance r.Echo.Engine.iterations (dt *. 1000.)
      | _ -> Format.printf "  %10d | %10s | %10s | %12.1f@." m "-" "-" (dt *. 1000.))
    [ 1; 2; 3 ];
  (* ablation: direct evaluation vs SAT-based checking *)
  Format.printf "  ablation: checkonly via evaluation vs via model finder (8 features):@.";
  let pool = G.feature_names 8 in
  let cfs = [ F.configuration ~name:"cf1" pool; F.configuration ~name:"cf2" pool ] in
  let fm = F.feature_model ~name:"fm" (List.map (fun f -> (f, true)) pool) in
  let _, dt_eval = time_it (fun () -> consistent trans cfs fm) in
  let _, dt_finder =
    time_it (fun () ->
        (* encode exactly and ask the finder whether the consistency
           formula holds within the exact bounds *)
        match Qvtr.Typecheck.check trans ~metamodels:F.metamodels with
        | Error _ -> false
        | Ok info -> (
          match
            Qvtr.Encode.create ~transformation:trans ~metamodels:F.metamodels
              ~models:(F.bind ~cfs ~fm) ~slack_objects:0 ()
          with
          | Error _ -> false
          | Ok enc -> (
            let sem = Qvtr.Semantics.create enc info in
            let bounds = Qvtr.Encode.bounds enc ~targets:I.Set.empty in
            let fd =
              Relog.Finder.prepare bounds [ Qvtr.Semantics.consistency_formula sem ]
            in
            match Relog.Finder.solve fd with
            | Relog.Finder.Sat _ -> true
            | Relog.Finder.Unsat -> false)))
  in
  Format.printf "  evaluation: %.2f ms;  finder: %.2f ms@." (dt_eval *. 1000.)
    (dt_finder *. 1000.);
  (* ablation: pattern-driven quantifier narrowing *)
  Format.printf
    "  ablation: checkonly with vs without pattern-driven narrowing:@.";
  Format.printf "  %10s | %14s | %14s@." "features" "narrowed (ms)" "full (ms)";
  List.iter
    (fun n ->
      let pool = G.feature_names n in
      let cfs =
        [ F.configuration ~name:"cf1" pool; F.configuration ~name:"cf2" pool ]
      in
      let fm = F.feature_model ~name:"fm" (List.map (fun f -> (f, true)) pool) in
      let run narrow =
        match Qvtr.Typecheck.check trans ~metamodels:F.metamodels with
        | Error _ -> 0.0
        | Ok info -> (
          match
            Qvtr.Encode.create ~transformation:trans ~metamodels:F.metamodels
              ~models:(F.bind ~cfs ~fm) ~slack_objects:0 ()
          with
          | Error _ -> 0.0
          | Ok enc ->
            let sem = Qvtr.Semantics.create ~narrow enc info in
            let inst = Qvtr.Encode.check_instance enc in
            let _, dt =
              time_it (fun () ->
                  Relog.Eval.holds inst (Qvtr.Semantics.consistency_formula sem))
            in
            dt *. 1000.)
      in
      Format.printf "  %10d | %14.2f | %14.2f@." n (run true) (run false))
    [ 10; 20; 40 ]

(* ------------------------------------------------------------------ *)
(* Bechamel microbenchmarks: one Test.make per timed table             *)

let bechamel_suite () =
  let open Bechamel in
  let open Toolkit in
  let pool10 = G.feature_names 10 in
  let trans2 = F.transformation ~k:2 in
  let check_models =
    let cfs = [ F.configuration ~name:"cf1" pool10; F.configuration ~name:"cf2" pool10 ] in
    let fm = F.feature_model ~name:"fm" (List.map (fun f -> (f, true)) pool10) in
    F.bind ~cfs ~fm
  in
  let scenario = Featuremodel.Scenarios.new_mandatory_feature in
  let scenario_models =
    F.bind ~cfs:scenario.Featuremodel.Scenarios.cfs
      ~fm:scenario.Featuremodel.Scenarios.fm
  in
  let deps4k = chain_deps 4096 in
  let goal4k = Qvtr.Dependency.make ~sources:[ "M0" ] ~target:"M4096" in
  let tests =
    Test.make_grouped ~name:"mdqvtr"
      [
        Test.make ~name:"e5-entailment-chain-4096"
          (Staged.stage (fun () -> Qvtr.Dependency.entails deps4k goal4k));
        Test.make ~name:"e8-check-10-features"
          (Staged.stage (fun () ->
               Qvtr.Check.run_exn trans2 ~metamodels:F.metamodels ~models:check_models));
        Test.make ~name:"e6-enforce-iterative"
          (Staged.stage (fun () ->
               Echo.Engine.enforce ~backend:Echo.Engine.Iterative trans2
                 ~metamodels:F.metamodels ~models:scenario_models
                 ~targets:(Echo.Target.of_list [ "cf1"; "cf2" ])));
        Test.make ~name:"e7-enforce-maxsat"
          (Staged.stage (fun () ->
               Echo.Engine.enforce ~backend:Echo.Engine.Maxsat trans2
                 ~metamodels:F.metamodels ~models:scenario_models
                 ~targets:(Echo.Target.of_list [ "cf1"; "cf2" ])));
        Test.make ~name:"sat-pigeonhole-6-5"
          (Staged.stage (fun () ->
               let s = Sat.Solver.create () in
               let v =
                 Array.init 6 (fun _ -> Array.init 5 (fun _ -> Sat.Solver.new_var s))
               in
               for i = 0 to 5 do
                 Sat.Solver.add_clause s (List.init 5 (fun j -> Sat.Lit.pos v.(i).(j)))
               done;
               for j = 0 to 4 do
                 for i = 0 to 5 do
                   for k = i + 1 to 5 do
                     Sat.Solver.add_clause s
                       [ Sat.Lit.neg_of v.(i).(j); Sat.Lit.neg_of v.(k).(j) ]
                   done
                 done
               done;
               Sat.Solver.solve s));
        Test.make ~name:"e2-exhaustive-check-144"
          (Staged.stage (fun () ->
               List.for_all
                 (fun (c1, c2, fm) ->
                   let _ = consistent trans2 [ c1; c2 ] fm in
                   true)
                 (exhaustive_states [ "A"; "B" ])));
      ]
  in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 1.0) ~kde:(Some 1000) () in
  let raw = Benchmark.all cfg Instance.[ monotonic_clock ] tests in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  Format.printf "@.==== bechamel microbenchmarks (monotonic clock) ====@.";
  Format.printf "  %-28s | %14s@." "benchmark" "ns/run";
  let rows = ref [] in
  Hashtbl.iter
    (fun name result ->
      let est =
        match Analyze.OLS.estimates result with
        | Some [ est ] -> Printf.sprintf "%14.1f" est
        | _ -> Printf.sprintf "%14s" "-"
      in
      rows := (name, est) :: !rows)
    results;
  List.iter
    (fun (name, est) -> Format.printf "  %-28s | %s@." name est)
    (List.sort compare !rows)

(* ------------------------------------------------------------------ *)
(* E9/E10: incremental sessions (lib/incr) vs from-scratch runs.
   These two emit the per-step records of BENCH_3.json: E9 replays an
   edit script and compares every warm recheck against a cold one; E10
   runs the repair loop (edit -> rerepair -> commit) and compares each
   rerepair against a fresh Engine.enforce_all over the same state. *)

module Sess = Incr.Session

let step_stats_json (s : Sess.step_stats) =
  Echo.Telemetry.Obj
    [
      ("wall_time_s", Echo.Telemetry.Float s.Sess.wall);
      ("solver_calls", Echo.Telemetry.Int s.Sess.solver_calls);
      ("conflicts", Echo.Telemetry.Int s.Sess.conflicts);
      ("propagations", Echo.Telemetry.Int s.Sess.propagations);
      ("decisions", Echo.Telemetry.Int s.Sess.decisions);
      ("translated", Echo.Telemetry.Bool s.Sess.translated);
      ("translate_s", Echo.Telemetry.Float s.Sess.translate_s);
    ]

(* The E9/E10 base state: ten features, three mandatory, two
   configurations agreeing exactly on the mandatory core. Both truth
   values and every feature name appear in the initial state, so
   single-attribute edits never force a re-encode. *)
let incr_pool = G.feature_names 10
let incr_mandatory = [ "F1"; "F2"; "F3" ]

let incr_base () =
  let fm =
    F.feature_model ~name:"fm"
      (List.map (fun n -> (n, List.mem n incr_mandatory)) incr_pool)
  in
  let cfs =
    [
      F.configuration ~name:"cf1" (incr_mandatory @ [ "F4" ]);
      F.configuration ~name:"cf2" (incr_mandatory @ [ "F5" ]);
    ]
  in
  (cfs, fm)

let e9 () =
  section "E9" "incremental recheck: edit replay, warm vs from-scratch";
  let cfs, fm = incr_base () in
  let base = F.bind ~cfs ~fm in
  (* snapshots keep the pool's object order, so a single flag flip
     diffs to a single Set_attr edit *)
  let fm_with flips =
    F.feature_model ~name:"fm"
      (List.map
         (fun n ->
           let m = List.mem n incr_mandatory in
           (n, if List.mem n flips then not m else m))
         incr_pool)
  in
  let fm_key = I.make "fm" in
  let snapshots =
    [
      ("flip F4 mandatory", [ (fm_key, fm_with [ "F4" ]) ]);
      ("flip F4 back", [ (fm_key, fm_with []) ]);
      ("flip F10 mandatory", [ (fm_key, fm_with [ "F10" ]) ]);
      ("flip F10 back", [ (fm_key, fm_with []) ]);
      ("flip F5 mandatory", [ (fm_key, fm_with [ "F5" ]) ]);
      ("flip F5 back", [ (fm_key, fm_with []) ]);
      (* the honest counterpoint: a bulk rewrite flips every flag, so
         almost no assumption prefix survives and warm ~ scratch *)
      ("bulk flip all", [ (fm_key, fm_with incr_pool) ]);
    ]
  in
  let steps = Incr.Replay.steps_of_snapshots ~base snapshots in
  let records =
    match
      Incr.Replay.run ~transformation:(F.transformation ~k:2)
        ~metamodels:F.metamodels ~models:base
        ~targets:(Echo.Target.of_list [ "cf1"; "cf2" ])
        steps
    with
    | Ok rs -> rs
    | Error e -> failwith ("E9: " ^ e)
  in
  Format.printf "%-20s %5s %5s  %10s %10s %10s %10s@." "step" "edits" "match"
    "warm c+p" "cold c+p" "warm ms" "cold ms";
  List.iter
    (fun (r : Incr.Replay.step_record) ->
      let cp (s : Sess.step_stats) = s.Sess.conflicts + s.Sess.propagations in
      Format.printf "%-20s %5d %5s  %10d %10d %10.2f %10.2f@."
        r.Incr.Replay.sr_label r.Incr.Replay.sr_edits
        (if r.Incr.Replay.sr_verdicts_match then "yes" else "NO")
        (cp r.Incr.Replay.sr_session)
        (cp r.Incr.Replay.sr_scratch)
        (r.Incr.Replay.sr_session.Sess.wall *. 1000.)
        (r.Incr.Replay.sr_scratch.Sess.wall *. 1000.))
    records;
  (* State recurrence: with zero headroom every unknown object id
     forces a re-encode, so cycling cf1 through base+#50, base+#51 and
     back to base+#50 re-encodes three times — the third state
     fingerprints exactly as the first rebuild's, so its generation is
     revived from the translation cache instead of translated again
     (`incr.translation_cache_hits` in the metrics snapshot; CI
     asserts it stays nonzero). Metrics-only: no BENCH_3 records. *)
  let () =
    let cfs, fm = incr_base () in
    let sess =
      match
        Sess.open_session ~headroom:0 ~transformation:(F.transformation ~k:2)
          ~metamodels:F.metamodels ~models:(F.bind ~cfs ~fm)
          ~targets:(Echo.Target.of_list [ "cf1"; "cf2" ])
          ()
      with
      | Ok s -> s
      | Error e -> failwith ("E9 recurrence: " ^ e)
    in
    let feature = I.make "Feature" in
    let name_attr = I.make "name" in
    let add_feature ~id name =
      [
        Mdl.Edit.Add_object { id; cls = feature };
        Mdl.Edit.Set_attr
          { id; attr = name_attr; before = []; after = [ Mdl.Value.Str name ] };
      ]
    in
    let cf1 = I.make "cf1" in
    let batches =
      [
        [ (cf1, add_feature ~id:50 "F9") ];
        [ (cf1, Mdl.Edit.Delete_object { id = 50 } :: add_feature ~id:51 "F9") ];
        [ (cf1, Mdl.Edit.Delete_object { id = 51 } :: add_feature ~id:50 "F9") ];
      ]
    in
    let last =
      List.fold_left
        (fun _ batch ->
          (match Sess.apply_edits sess batch with
          | Ok () -> ()
          | Error e -> failwith ("E9 recurrence: " ^ e));
          match Sess.recheck sess with
          | Ok r -> r.Sess.check_stats.Sess.translated
          | Error e -> failwith ("E9 recurrence: " ^ e))
        true batches
    in
    Format.printf
      "  state recurrence: %d re-encodes over the id cycle, last %s@."
      (Sess.rebuilds sess)
      (if last then "RETRANSLATED (cache miss!)" else "served from cache")
  in
  List.map
    (fun (r : Incr.Replay.step_record) ->
      Echo.Telemetry.Obj
        [
          ("experiment", Echo.Telemetry.String "E9");
          ("step", Echo.Telemetry.String r.Incr.Replay.sr_label);
          ("edits", Echo.Telemetry.Int r.Incr.Replay.sr_edits);
          ("rebuilt", Echo.Telemetry.Bool r.Incr.Replay.sr_rebuilt);
          ("verdict_match", Echo.Telemetry.Bool r.Incr.Replay.sr_verdicts_match);
          ("session", step_stats_json r.Incr.Replay.sr_session);
          ("scratch", step_stats_json r.Incr.Replay.sr_scratch);
        ])
    records

(* Canonical serialization of a repair menu restricted to the target
   models, for cross-checking session and engine menus. *)
let menu_keys tgts model_lists =
  List.map
    (fun models ->
      models
      |> List.filter (fun (p, _) -> Mdl.Ident.Set.mem p tgts)
      |> List.map (fun (p, m) -> (I.name p, Mdl.Serialize.model_to_string m))
      |> List.sort compare
      |> List.concat_map (fun (n, s) -> [ n; s ])
      |> String.concat "\x00")
    model_lists
  |> List.sort_uniq compare

let e10 ~jobs =
  section "E10" "incremental rerepair: repair loop vs fresh enforce_all";
  let cfs, fm = incr_base () in
  let trans = F.transformation ~k:2 in
  let targets = Echo.Target.of_list [ "cf1"; "cf2" ] in
  let sess =
    match
      Sess.open_session ~transformation:trans ~metamodels:F.metamodels
        ~models:(F.bind ~cfs ~fm) ~targets ()
    with
    | Ok s -> s
    | Error e -> failwith ("E10: " ^ e)
  in
  let feature = I.make "Feature" in
  let name_attr = I.make "name" in
  let mand_attr = I.make "mandatory" in
  let set_mand id v =
    Mdl.Edit.Set_attr
      {
        id;
        attr = mand_attr;
        before = [ Mdl.Value.Bool (not v) ];
        after = [ Mdl.Value.Bool v ];
      }
  in
  (* cf objects are positional: mandatory core first, extra last; fm
     objects follow the F1..F10 pool order *)
  let steps =
    [
      ("cf2 drops F1", [ (I.make "cf2", [ Mdl.Edit.Delete_object { id = 0 } ]) ]);
      ("F6 made mandatory", [ (I.make "fm", [ set_mand 5 true ]) ]);
      ( "cf1 selects unknown G1",
        [
          ( I.make "cf1",
            [
              Mdl.Edit.Add_object { id = 9; cls = feature };
              Mdl.Edit.Set_attr
                {
                  id = 9;
                  attr = name_attr;
                  before = [];
                  after = [ Mdl.Value.Str "G1" ];
                };
            ] );
        ] );
      ("cf2 drops F2", [ (I.make "cf2", [ Mdl.Edit.Delete_object { id = 1 } ]) ]);
    ]
  in
  Format.printf "%-22s %5s %6s %6s  %10s %10s@." "step" "menu" "match" "dist"
    "warm ms" "engine ms";
  List.map
    (fun (label, batch) ->
      (match Sess.apply_edits sess batch with
      | Ok () -> ()
      | Error e -> failwith ("E10 " ^ label ^ ": " ^ e));
      let rebuilds0 = Sess.rebuilds sess in
      let rep =
        match Sess.rerepair ~limit:16 sess with
        | Ok r -> r
        | Error e -> failwith ("E10 " ^ label ^ ": " ^ e)
      in
      let outcomes, engine_wall =
        time_it (fun () ->
            match
              Echo.Engine.enforce_all ~limit:16 ~jobs
                ~slack_objects:(Sess.slack_budget sess)
                ~extra_values:(Sess.value_universe sess) trans
                ~metamodels:F.metamodels ~models:(Sess.models sess) ~targets
            with
            | Ok o -> o
            | Error e -> failwith ("E10 " ^ label ^ ": " ^ e))
      in
      let menu_sess, menu_eng, distance =
        match (rep.Sess.outcome, outcomes) with
        | Sess.Repaired reps, outs ->
          ( menu_keys targets (List.map (fun r -> r.Sess.r_models) reps),
            menu_keys targets
              (List.filter_map
                 (function
                   | Echo.Engine.Enforced r -> Some r.Echo.Engine.repaired
                   | _ -> None)
                 outs),
            (match reps with
            | r :: _ -> r.Sess.r_relational_distance
            | [] -> -1) )
        | Sess.Already_consistent, [ Echo.Engine.Already_consistent ] ->
          ([], [], 0)
        | Sess.Cannot_restore, [ Echo.Engine.Cannot_restore ] -> ([], [], -1)
        | _ -> failwith ("E10 " ^ label ^ ": outcome shapes disagree")
      in
      let menus_match = menu_sess = menu_eng in
      Format.printf "%-22s %5d %6s %6d  %10.2f %10.2f@." label
        (List.length menu_sess)
        (if menus_match then "yes" else "NO")
        distance
        (rep.Sess.repair_stats.Sess.wall *. 1000.)
        (engine_wall *. 1000.);
      (* land the first repair so the next step edits a consistent
         state, as an editor session would *)
      (match rep.Sess.outcome with
      | Sess.Repaired (r :: _) -> (
        match Sess.commit sess r with
        | Ok () -> ()
        | Error e -> failwith ("E10 " ^ label ^ ": " ^ e))
      | _ -> ());
      Echo.Telemetry.Obj
        [
          ("experiment", Echo.Telemetry.String "E10");
          ("step", Echo.Telemetry.String label);
          ("rebuilt", Echo.Telemetry.Bool (Sess.rebuilds sess > rebuilds0));
          ("menu_match", Echo.Telemetry.Bool menus_match);
          ("menu_size", Echo.Telemetry.Int (List.length menu_sess));
          ("relational_distance", Echo.Telemetry.Int distance);
          ("session", step_stats_json rep.Sess.repair_stats);
          ("engine_wall_s", Echo.Telemetry.Float engine_wall);
        ])
    steps

(* ------------------------------------------------------------------ *)
(* E11: the transformation server under concurrent load.

   An in-process load generator drives Server.Engine — the exact core
   `qvtr serve` exposes over a socket — with N clients, each a
   reply-callback state machine chaining its own request stream
   (open, M x [apply_edits; recheck], rerepair, close) against its
   own session. The engine runs its pool at >= 2 workers so replies
   arrive off the submitting thread, and max_live is set below N so
   the run continuously evicts and revives sessions while serving.
   Latency percentiles are read off the server's own
   `server.latency.<verb>_s` histograms plus the queue-wait/service
   split (`server.queue_wait.<verb>_s` / `server.service.<verb>_s`),
   all reset at the start of the run so they cover this load only;
   the engine runs with a counting Reqlog and a 50ms slow threshold
   so the run can assert frames submitted == served == logged. A
   separate deterministic phase checks the revival contract
   end-to-end: an evicted-then-revived session must answer recheck
   and rerepair exactly like a never-evicted control. The records
   land in BENCH_8.json (schema mdqvtr-bench/8). *)

module SrvE = Server.Engine
module SrvP = Server.Protocol

let e11_clients = 8
let e11_steps = 6

let e11_spec models_text =
  {
    SrvP.o_transformation = F.source ~k:2;
    o_metamodels =
      Mdl.Serialize.metamodel_to_string F.fm_metamodel
      ^ "\n"
      ^ Mdl.Serialize.metamodel_to_string F.cf_metamodel;
    o_models = models_text;
    o_targets = [ "cf1"; "cf2" ];
    o_standard = false;
    o_slack = 2;
    o_headroom = 6;
  }

let e11_base_text () =
  let cfs, fm = incr_base () in
  String.concat "\n" (List.map Mdl.Serialize.model_to_string (fm :: cfs))

(* the step's fm snapshot: base flags with [flips] toggled (same
   convention as E9, so each step diffs to one Set_attr edit) *)
let e11_fm_text flips =
  Mdl.Serialize.model_to_string
    (F.feature_model ~name:"fm"
       (List.map
          (fun n ->
            let m = List.mem n incr_mandatory in
            (n, if List.mem n flips then not m else m))
          incr_pool))

let e11 ~jobs =
  section "E11" "transformation server: concurrent clients, LRU eviction";
  let engine_jobs = max 2 jobs in
  let max_live = max 2 (e11_clients / 2) in
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "mdqvtr-e11-%d" (Unix.getpid ()))
  in
  let verbs =
    [ "open"; "apply_edits"; "recheck"; "rerepair"; "commit"; "snapshot";
      "close"; "stats" ]
  in
  List.iter
    (fun v ->
      List.iter
        (fun family ->
          Obs.Metrics.reset_histogram
            (Obs.Metrics.histogram ("server." ^ family ^ "." ^ v ^ "_s")))
        [ "latency"; "queue_wait"; "service" ])
    verbs;
  Obs.Metrics.reset_histogram (Obs.Metrics.histogram "server.recheck.warm_s");
  Obs.Metrics.reset_histogram (Obs.Metrics.histogram "server.recheck.scratch_s");
  let counter0 n = Obs.Metrics.counter_value (Obs.Metrics.counter n) in
  let evicted0 = counter0 "server.sessions_evicted" in
  let revived0 = counter0 "server.sessions_revived" in
  let coalesced0 = counter0 "server.edits_coalesced" in
  let slow0 = counter0 "server.slow_requests" in
  (* counting request log + a 50ms slow threshold: the acceptance
     contract is reqlog records == frames served, 0 lost or doubled *)
  let reqlog = Server.Reqlog.create () in
  let engine =
    SrvE.create ~jobs:engine_jobs ~max_live ~snapshot_dir:dir ~slow_ms:50.0
      ~reqlog ()
  in
  let base_text = e11_base_text () in
  let next_id = Atomic.make 1 in
  let rechecks = Atomic.make 0 in
  let failures = Atomic.make 0 in
  (* Each client chains its burst through reply callbacks ("send the
     next request when the previous one answers"); the replies never
     influence the edits, so the streams are precomputed. The load
     runs in rounds with a drain between them: inside a round all
     clients hammer the engine concurrently, and at the boundary the
     sessions go idle, which is when the LRU sweep can evict — so a
     cap below the client count forces continuous eviction/revival
     churn under load, the behaviour a long-lived daemon sees. *)
  let burst k reqs =
    let sname = Printf.sprintf "c%d" k in
    let rec send = function
      | [] -> ()
      | q_req :: rest ->
        SrvE.submit engine
          {
            SrvP.q_id = Atomic.fetch_and_add next_id 1;
            q_session = sname;
            q_req;
          }
          (fun resp ->
            (match resp.SrvP.s_result with
            | Ok (SrvP.Checked _) -> Atomic.incr rechecks
            | Ok _ -> ()
            | Error _ -> Atomic.incr failures);
            send rest)
    in
    send reqs
  in
  (* an editor firing saves: the frames go out back-to-back with no
     wait, so they queue on the session and the engine coalesces the
     consecutive apply_edits into one re-pin *)
  let pipeline k reqs =
    let sname = Printf.sprintf "c%d" k in
    List.iter
      (fun q_req ->
        SrvE.submit engine
          {
            SrvP.q_id = Atomic.fetch_and_add next_id 1;
            q_session = sname;
            q_req;
          }
          (fun resp ->
            match resp.SrvP.s_result with
            | Ok (SrvP.Checked _) -> Atomic.incr rechecks
            | Ok _ -> ()
            | Error _ -> Atomic.incr failures))
      reqs
  in
  let clients = List.init e11_clients (fun k -> k) in
  let round i k =
    let f j = List.nth incr_pool ((k + i + j) mod List.length incr_pool) in
    let final = if i mod 2 = 1 then [ f 0 ] else [] in
    [
      SrvP.Apply_edits { models = e11_fm_text [ f 0 ] };
      SrvP.Apply_edits { models = e11_fm_text [ f 0; f 1 ] };
      SrvP.Apply_edits { models = e11_fm_text final };
      SrvP.Recheck { blame = false };
    ]
  in
  let (), wall =
    time_it (fun () ->
        List.iter (fun k -> burst k [ SrvP.Open (e11_spec base_text) ]) clients;
        SrvE.drain engine;
        for i = 1 to e11_steps do
          List.iter (fun k -> pipeline k (round i k)) clients;
          SrvE.drain engine
        done;
        List.iter
          (fun k -> burst k [ SrvP.Rerepair { limit = 4 }; SrvP.Close ])
          clients;
        SrvE.drain engine)
  in
  (* exercise the stats verb once, on the drained engine *)
  let stats_ok =
    match (SrvE.call engine { SrvP.q_id = 0; q_session = ""; q_req = SrvP.Stats }).SrvP.s_result with
    | Ok (SrvP.Stats_snapshot _) -> true
    | _ -> false
  in
  SrvE.shutdown engine;
  let evicted = counter0 "server.sessions_evicted" - evicted0 in
  let revived = counter0 "server.sessions_revived" - revived0 in
  let coalesced = counter0 "server.edits_coalesced" - coalesced0 in
  let slow = counter0 "server.slow_requests" - slow0 in
  (* accounting must close exactly: every submitted frame was answered
     once, and every answer produced one request-log record *)
  let frames_submitted = Atomic.get next_id - 1 + 1 (* + the stats call *) in
  let frames_served = SrvE.frames_served engine in
  let reqlog_records = Server.Reqlog.count reqlog in
  let reqlog_complete =
    frames_served = reqlog_records && frames_served = frames_submitted
  in
  (* ---- deterministic revival-contract check ---------------------- *)
  (* Engine A (no eviction pressure) is the control; engine B runs at
     max_live 1, so opening a bystander session forcibly evicts the
     victim, whose next requests revive it from the snapshot. Both
     must produce identical recheck verdicts and repair menus. *)
  let run_sequence ~evict =
    let eng =
      SrvE.create ~jobs:1
        ~max_live:(if evict then 1 else 8)
        ~snapshot_dir:dir ()
    in
    let rid = ref 0 in
    let call session q_req =
      incr rid;
      (SrvE.call eng { SrvP.q_id = !rid; q_session = session; q_req }).SrvP.s_result
    in
    let expect label = function
      | Ok p -> p
      | Error e -> failwith ("E11 revival check, " ^ label ^ ": " ^ e)
    in
    let _ = expect "open" (call "victim" (SrvP.Open (e11_spec base_text))) in
    let _ =
      expect "edit"
        (call "victim" (SrvP.Apply_edits { models = e11_fm_text [ "F4" ] }))
    in
    let first = expect "recheck" (call "victim" (SrvP.Recheck { blame = false })) in
    if evict then begin
      (* the bystander pushes the victim over the cap *)
      let _ =
        expect "bystander" (call "bystander" (SrvP.Open (e11_spec base_text)))
      in
      ()
    end;
    let menu = expect "rerepair" (call "victim" (SrvP.Rerepair { limit = 4 })) in
    let again = expect "recheck2" (call "victim" (SrvP.Recheck { blame = false })) in
    SrvE.shutdown eng;
    (first, menu, again)
  in
  let revived_before_check = counter0 "server.sessions_revived" in
  let control = run_sequence ~evict:false in
  let victim = run_sequence ~evict:true in
  let revival_revived = counter0 "server.sessions_revived" > revived_before_check in
  let strip = function
    | SrvP.Checked { consistent; verdicts; _ } -> `Check (consistent, verdicts)
    | SrvP.Repaired { outcome; menu; _ } -> `Repair (outcome, menu)
    | _ -> `Other
  in
  let triple (a, b, c) = (strip a, strip b, strip c) in
  let revival_equivalent = triple control = triple victim && revival_revived in
  (* ---- report ---------------------------------------------------- *)
  let h name = Obs.Metrics.histogram name in
  let p50 name = Obs.Metrics.percentile (h name) 0.5 in
  let p99 name = Obs.Metrics.percentile (h name) 0.99 in
  let count name = Obs.Metrics.histogram_count (h name) in
  Format.printf "%-14s %8s %10s %10s %10s %10s %10s %10s@." "verb" "count"
    "wait p50" "wait p99" "serve p50" "serve p99" "total p50" "total p99";
  List.iter
    (fun v ->
      let name = "server.latency." ^ v ^ "_s" in
      let qw = "server.queue_wait." ^ v ^ "_s" in
      let sv = "server.service." ^ v ^ "_s" in
      if count name > 0 then
        Format.printf "%-14s %8d %10.3f %10.3f %10.3f %10.3f %10.3f %10.3f@." v
          (count name) (p50 qw *. 1000.) (p99 qw *. 1000.) (p50 sv *. 1000.)
          (p99 sv *. 1000.) (p50 name *. 1000.) (p99 name *. 1000.))
    verbs;
  Format.printf
    "clients %d, steps %d, engine jobs %d, max_live %d: %.2fs wall, %.1f \
     rechecks/s, %d evicted, %d revived, %d coalesced, failures %d@."
    e11_clients e11_steps engine_jobs max_live wall
    (float_of_int (Atomic.get rechecks) /. wall)
    evicted revived coalesced (Atomic.get failures);
  Format.printf "warm recheck p50 %.3f ms / scratch p50 %.3f ms; revival %s@."
    (p50 "server.recheck.warm_s" *. 1000.)
    (p50 "server.recheck.scratch_s" *. 1000.)
    (if revival_equivalent then "equivalent" else "DIVERGED");
  Format.printf
    "request accounting: %d submitted, %d served, %d logged (%s), %d slow \
     (>50ms)@."
    frames_submitted frames_served reqlog_records
    (if reqlog_complete then "complete" else "INCOMPLETE")
    slow;
  let verb_records =
    List.filter_map
      (fun v ->
        let name = "server.latency." ^ v ^ "_s" in
        let qw = "server.queue_wait." ^ v ^ "_s" in
        let sv = "server.service." ^ v ^ "_s" in
        if count name = 0 then None
        else
          Some
            (Echo.Telemetry.Obj
               [
                 ("experiment", Echo.Telemetry.String "E11");
                 ("verb", Echo.Telemetry.String v);
                 ("count", Echo.Telemetry.Int (count name));
                 ("p50_s", Echo.Telemetry.Float (p50 name));
                 ("p99_s", Echo.Telemetry.Float (p99 name));
                 ("queue_wait_p50_s", Echo.Telemetry.Float (p50 qw));
                 ("queue_wait_p99_s", Echo.Telemetry.Float (p99 qw));
                 ("service_p50_s", Echo.Telemetry.Float (p50 sv));
                 ("service_p99_s", Echo.Telemetry.Float (p99 sv));
               ]))
      verbs
  in
  let summary =
    Echo.Telemetry.Obj
      [
        ("experiment", Echo.Telemetry.String "E11");
        ("clients", Echo.Telemetry.Int e11_clients);
        ("steps_per_client", Echo.Telemetry.Int e11_steps);
        ("engine_jobs", Echo.Telemetry.Int engine_jobs);
        ("max_live", Echo.Telemetry.Int max_live);
        ("wall_time_s", Echo.Telemetry.Float wall);
        ( "rechecks_per_s",
          Echo.Telemetry.Float (float_of_int (Atomic.get rechecks) /. wall) );
        ("rechecks", Echo.Telemetry.Int (Atomic.get rechecks));
        ("sessions_evicted", Echo.Telemetry.Int evicted);
        ("sessions_revived", Echo.Telemetry.Int revived);
        ("edits_coalesced", Echo.Telemetry.Int coalesced);
        ("failures", Echo.Telemetry.Int (Atomic.get failures));
        ("frames_submitted", Echo.Telemetry.Int frames_submitted);
        ("frames_served", Echo.Telemetry.Int frames_served);
        ("reqlog_records", Echo.Telemetry.Int reqlog_records);
        ("reqlog_complete", Echo.Telemetry.Bool reqlog_complete);
        ("slow_requests", Echo.Telemetry.Int slow);
        ("slow_ms_threshold", Echo.Telemetry.Float 50.0);
        ("stats_verb_ok", Echo.Telemetry.Bool stats_ok);
        ( "recheck_warm_p50_s",
          Echo.Telemetry.Float (p50 "server.recheck.warm_s") );
        ( "recheck_scratch_p50_s",
          Echo.Telemetry.Float (p50 "server.recheck.scratch_s") );
        ("revival_equivalent", Echo.Telemetry.Bool revival_equivalent);
      ]
  in
  summary :: verb_records

(* ------------------------------------------------------------------ *)
(* JSON records (the BENCH_*.json perf trajectory)                     *)

let stats_delta (a : Sat.Solver.stats) (b : Sat.Solver.stats) =
  {
    Sat.Solver.decisions = b.Sat.Solver.decisions - a.Sat.Solver.decisions;
    propagations = b.Sat.Solver.propagations - a.Sat.Solver.propagations;
    conflicts = b.Sat.Solver.conflicts - a.Sat.Solver.conflicts;
    restarts = b.Sat.Solver.restarts - a.Sat.Solver.restarts;
    learnt = b.Sat.Solver.learnt - a.Sat.Solver.learnt;
    reduces = b.Sat.Solver.reduces - a.Sat.Solver.reduces;
    solves = b.Sat.Solver.solves - a.Sat.Solver.solves;
    solve_time = b.Sat.Solver.solve_time -. a.Sat.Solver.solve_time;
  }

(* ------------------------------------------------------------------ *)
(* E12: bounds-level symmetry breaking on enumeration workloads        *)

(* A maximally symmetric menu enumeration: an empty configuration
   against n interchangeable mandatory features. Every repair creates
   one object per feature out of the slack pool, so without SBPs the
   menu carries one variant per slack-to-feature content assignment
   (n! once slack >= n — the legacy slack chain only orders slack
   *usage*, not which feature lands on which atom); the orbit
   lex-leader SBPs keep one canonical representative per isomorphism
   class. The fingerprint — the sorted distinct (relational, edit)
   distance pairs — is the modulo-isomorphism content of the menu and
   must not move when SBPs toggle. *)
let e12_with_workers n f =
  let old = Sys.getenv_opt "MDQVTR_WORKERS" in
  Unix.putenv "MDQVTR_WORKERS" (string_of_int n);
  Fun.protect f
    ~finally:(fun () ->
      Unix.putenv "MDQVTR_WORKERS" (Option.value old ~default:""))

let e12_arm ~features ~slack ~jobs ~split_after ~sbp =
  let trans = F.transformation ~k:1 in
  let cfs = [ F.configuration ~name:"cf1" [] ] in
  let fm =
    F.feature_model ~name:"fm"
      (List.init features (fun i -> (Printf.sprintf "F%d" i, true)))
  in
  let cval n = Obs.Metrics.counter_value (Obs.Metrics.counter n) in
  let discards0 = cval "echo.repair.dedup_discards" in
  let clauses0 = cval "relog.symmetry.sbp_clauses" in
  let orbits0 = cval "relog.symmetry.orbits" in
  let before = Sat.Solver.global_stats () in
  let r, wall =
    time_it (fun () ->
        Echo.Engine.enforce_all ~sbp ~jobs ?split_after ~limit:32
          ~slack_objects:slack trans ~metamodels:F.metamodels
          ~models:(F.bind ~cfs ~fm)
          ~targets:(Echo.Target.single "cf1"))
  in
  let after = Sat.Solver.global_stats () in
  match r with
  | Error e -> failwith ("E12: " ^ e)
  | Ok outcomes ->
    let menu =
      List.filter_map
        (function Echo.Engine.Enforced r -> Some r | _ -> None)
        outcomes
    in
    let fingerprint =
      List.sort_uniq compare
        (List.map
           (fun r ->
             (r.Echo.Engine.relational_distance, r.Echo.Engine.edit_distance))
           menu)
      |> List.map (fun (rd, ed) -> Printf.sprintf "%d:%d" rd ed)
      |> String.concat ","
    in
    ( List.length menu,
      fingerprint,
      stats_delta before after,
      cval "echo.repair.dedup_discards" - discards0,
      cval "relog.symmetry.sbp_clauses" - clauses0,
      cval "relog.symmetry.orbits" - orbits0,
      wall )

let e12 ~jobs:_ =
  section "E12" "symmetry breaking: menu enumeration with SBPs off/on";
  Format.printf "  %-22s | %-3s | %18s | %18s | %-5s@." "case" "sbp"
    "menu / fingerprint" "solves / discards" "sbp clauses";
  (* jobs = 1 exercises the serial dedup path; the cube case forces a
     genuinely concurrent sharded enumeration (split_after 0 splits
     eagerly) even on a single-core box via MDQVTR_WORKERS. *)
  let cases =
    [
      ("sym3 (3 features)", 3, 4, 1, None);
      ("sym4 (4 features)", 4, 5, 1, None);
      ("cube4 (4 features, jobs=4)", 4, 5, 4, Some 0.0);
    ]
  in
  List.map
    (fun (name, features, slack, jobs, split_after) ->
      let arm sbp () = e12_arm ~features ~slack ~jobs ~split_after ~sbp in
      let run sbp =
        if jobs > 1 then e12_with_workers jobs (arm sbp) else arm sbp ()
      in
      let m_off, fp_off, st_off, disc_off, _, _, w_off = run false in
      let m_on, fp_on, st_on, disc_on, clauses_on, orbits_on, w_on = run true in
      let row sbp m fp (st : Sat.Solver.stats) disc clauses =
        Format.printf "  %-22s | %-3s | %4d  %-12s | %6d / %8d | %d@." name
          (if sbp then "on" else "off")
          m fp st.Sat.Solver.solves disc clauses
      in
      row false m_off fp_off st_off disc_off 0;
      row true m_on fp_on st_on disc_on clauses_on;
      Format.printf
        "  %-22s   fingerprints %s, menu %dx smaller, %d fewer solves, wall \
         %.0f -> %.0f ms@."
        ""
        (if fp_off = fp_on then "EQUAL" else "DIVERGED")
        (if m_on = 0 then 0 else m_off / m_on)
        (st_off.Sat.Solver.solves - st_on.Sat.Solver.solves)
        (w_off *. 1000.) (w_on *. 1000.);
      let arm_json m fp (st : Sat.Solver.stats) disc clauses orbits w =
        Echo.Telemetry.Obj
          [
            ("menu_size", Echo.Telemetry.Int m);
            ("fingerprint", Echo.Telemetry.String fp);
            ("dedup_discards", Echo.Telemetry.Int disc);
            ("sbp_clauses", Echo.Telemetry.Int clauses);
            ("orbits", Echo.Telemetry.Int orbits);
            ("wall_time_s", Echo.Telemetry.Float w);
            ("solver", Echo.Telemetry.solver_json st);
          ]
      in
      Echo.Telemetry.Obj
        [
          ("experiment", Echo.Telemetry.String "E12");
          ("case", Echo.Telemetry.String name);
          ("features", Echo.Telemetry.Int features);
          ("slack", Echo.Telemetry.Int slack);
          ("jobs", Echo.Telemetry.Int jobs);
          ("off", arm_json m_off fp_off st_off disc_off 0 0 w_off);
          ("on", arm_json m_on fp_on st_on disc_on clauses_on orbits_on w_on);
          ("fingerprints_equal", Echo.Telemetry.Bool (fp_off = fp_on));
          ( "solves_saved",
            Echo.Telemetry.Int
              (st_off.Sat.Solver.solves - st_on.Sat.Solver.solves) );
        ])
    cases

(* Below this wall time a speedup ratio is timer noise, not signal:
   on this class of box two back-to-back runs of the same sub-10ms
   experiment routinely differ by 2-3x (scheduler quantum, cache
   state), so BENCH_4's "3.2x speedup at jobs=4" on E9 was an artifact
   of dividing two tiny numbers. Records whose own wall or whose
   baseline wall sits under the floor get [speedup: null] plus a note
   instead of a misleading ratio. *)
let speedup_floor_s = 0.010

(* Run one experiment at one jobs value and measure it: wall time plus
   the process-wide solver-counter delta it caused (experiments create
   solvers internally, so instance-level stats are unreachable from
   here; the global counters are atomic, so worker-domain solves are
   included). [speedup] is wall at the sweep baseline / this wall. *)
let run_measured ~jobs ~reps ?baseline (id, title, f) =
  (* Measurement isolation: records run back-to-back in one process,
     and a heap grown by earlier records slows later allocation-heavy
     solves by 2-3x. Compact before each record so the sweep measures
     the experiment, not the GC state it inherited. *)
  Gc.compact ();
  let before = Sat.Solver.global_stats () in
  let (), wall0 = time_it (fun () -> f ~jobs) in
  let after = Sat.Solver.global_stats () in
  (* Wall is the minimum over [reps] runs: CDCL solve times are
     heavy-tailed and the box shares its core, so the minimum is the
     standard noise-robust estimator for deterministic workloads. The
     maximum rides along so readers can judge the spread. The
     solver-counter delta covers the first run only. *)
  let wall_min = ref wall0 and wall_max = ref wall0 in
  for _ = 2 to max 1 reps do
    let (), w = time_it (fun () -> f ~jobs) in
    if w < !wall_min then wall_min := w;
    if w > !wall_max then wall_max := w
  done;
  let wall = !wall_min in
  let speedup =
    let reliable = wall >= speedup_floor_s in
    match baseline with
    | None when reliable -> [ ("speedup", Echo.Telemetry.Float 1.0) ]
    | Some b when reliable && b >= speedup_floor_s ->
      [ ("speedup", Echo.Telemetry.Float (b /. wall)) ]
    | _ ->
      [
        ("speedup", Echo.Telemetry.Null);
        ( "speedup_note",
          Echo.Telemetry.String
            (Printf.sprintf
               "suppressed: wall below the %.0f ms noise floor; the ratio would \
                be timer noise"
               (speedup_floor_s *. 1000.)) );
      ]
  in
  ( Echo.Telemetry.Obj
      ([
         ("experiment", Echo.Telemetry.String id);
         ("title", Echo.Telemetry.String title);
         ("jobs", Echo.Telemetry.Int jobs);
         ("wall_time_s", Echo.Telemetry.Float wall);
         ("wall_max_s", Echo.Telemetry.Float !wall_max);
         ("reps", Echo.Telemetry.Int (max 1 reps));
       ]
      @ speedup
      @ [ ("solver", Echo.Telemetry.solver_json (stats_delta before after)) ]),
    wall )

(* Measure one experiment across the whole jobs sweep; the first sweep
   point is the speedup baseline (the default sweep starts at 1). *)
let measure_sweep ~reps sweep exp =
  let rec go baseline acc = function
    | [] -> List.rev acc
    | j :: rest ->
      let record, wall = run_measured ~jobs:j ~reps ?baseline exp in
      let baseline = Some (Option.value baseline ~default:wall) in
      go baseline (record :: acc) rest
  in
  go None [] sweep

let write_json ?(schema = "mdqvtr-bench/6") ?(extra = []) path records =
  let body =
    Echo.Telemetry.json_to_string
      (Echo.Telemetry.Obj
         ([
            ("schema", Echo.Telemetry.String schema);
            ("records", Echo.Telemetry.List records);
          ]
         @ extra))
  in
  match open_out path with
  | oc ->
    output_string oc body;
    output_string oc "\n";
    close_out oc;
    Format.printf "@.wrote %d benchmark record(s) to %s@." (List.length records)
      path
  | exception Sys_error msg ->
    Format.eprintf "cannot write benchmark records: %s@." msg;
    exit 2

let () =
  let fixed f ~jobs:_ = f () in
  let experiments =
    [ ("e1", "Figure 1 metamodels and conformance", fixed e1);
      ("e2", "standard semantics cannot express MF (2.1)", fixed e2);
      ("e3", "checking dependencies realise MF and OF (2.2)", fixed e3);
      ("e4", "conservativity (2.2)", fixed e4);
      ("e5", "Horn entailment, linear time (2.3)", fixed e5);
      ("e6", "enforcement shapes (3)", fun ~jobs -> e6 ~jobs);
      ("e7", "least change and backend agreement (3)", fun ~jobs -> e7 ~jobs);
      ("e8", "scaling", fun ~jobs -> e8 ~jobs);
      ("e9", "incremental recheck vs from-scratch", fun ~jobs:_ -> ignore (e9 ()));
      ("e10", "incremental rerepair vs enforce_all", fun ~jobs -> ignore (e10 ~jobs));
      ("e11", "transformation server under concurrent load", fun ~jobs -> ignore (e11 ~jobs));
      ("e12", "symmetry breaking: SBPs off/on", fun ~jobs -> ignore (e12 ~jobs)) ]
  in
  let args = List.tl (Array.to_list Sys.argv) in
  let json = List.mem "--json" args in
  let rec out_file = function
    | "--out" :: path :: _ -> path
    | _ :: rest -> out_file rest
    | [] -> "BENCH_6.json"
  in
  let out = out_file args in
  let rec trace_file = function
    | "--trace" :: path :: _ -> Some path
    | _ :: rest -> trace_file rest
    | [] -> None
  in
  let trace = trace_file args in
  Option.iter (fun _ -> Obs.Trace.set_enabled true) trace;
  let usage () =
    Format.eprintf
      "usage: main.exe [e1..e12|bench] [--json] [--out FILE] [--jobs SPEC] \
       [--reps N] [--trace FILE]@.";
    exit 2
  in
  let parse_jobs spec =
    let int s = match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 -> n
      | _ -> usage ()
    in
    if String.contains spec ',' then
      List.map int (String.split_on_char ',' spec)
    else
      (* bare N: powers of two up to N, e.g. 4 -> 1,2,4 *)
      let n = int spec in
      let rec pows p acc = if p >= n then List.rev (n :: acc) else pows (2 * p) (p :: acc) in
      pows 1 []
  in
  let rec jobs_spec = function
    | "--jobs" :: spec :: _ -> Some (parse_jobs spec)
    | _ :: rest -> jobs_spec rest
    | [] -> None
  in
  let sweep = Option.value (jobs_spec args) ~default:[ 1; 2; 4 ] in
  let rec reps_spec = function
    | "--reps" :: n :: _ -> (
      match int_of_string_opt (String.trim n) with
      | Some r when r >= 1 -> r
      | _ -> usage ())
    | _ :: rest -> reps_spec rest
    | [] -> 1
  in
  let reps = reps_spec args in
  (* plain (non-JSON) runs execute once, at the largest requested jobs *)
  let run_jobs =
    match jobs_spec args with
    | Some js -> List.fold_left max 1 js
    | None -> 1
  in
  let rec drop_flags = function
    | "--json" :: rest -> drop_flags rest
    | "--out" :: _ :: rest -> drop_flags rest
    | "--jobs" :: _ :: rest -> drop_flags rest
    | "--reps" :: _ :: rest -> drop_flags rest
    | "--trace" :: _ :: rest -> drop_flags rest
    | a :: rest -> a :: drop_flags rest
    | [] -> []
  in
  (* the per-step incremental-session records live in their own file,
     BENCH_3.json (schema mdqvtr-bench/3), next to the --out target *)
  let write_bench3 () =
    let path = Filename.concat (Filename.dirname out) "BENCH_3.json" in
    write_json ~schema:"mdqvtr-bench/3" path (e9 () @ e10 ~jobs:run_jobs)
  in
  (* the server load records likewise: BENCH_8.json (mdqvtr-bench/8 —
     bench/7 plus the queue-wait/service split and reqlog accounting) *)
  let write_bench8 () =
    let path = Filename.concat (Filename.dirname out) "BENCH_8.json" in
    write_json ~schema:"mdqvtr-bench/8" path (e11 ~jobs:run_jobs)
  in
  (* the symmetry-breaking off/on comparison: BENCH_9.json
     (mdqvtr-bench/9), with its own cumulative metrics snapshot so the
     relog.symmetry.* and sat.* counters land in the committed file *)
  let write_bench9 () =
    let path = Filename.concat (Filename.dirname out) "BENCH_9.json" in
    write_json ~schema:"mdqvtr-bench/9" path
      ~extra:[ ("metrics", Obs.Metrics.to_json ()) ]
      (e12 ~jobs:run_jobs)
  in
  (* the metrics snapshot is cumulative over the whole run, so it is
     attached once per file, after every record has executed *)
  let metrics () = [ ("metrics", Obs.Metrics.to_json ()) ] in
  (* run after every measured record (it perturbs wall-clock on small
     boxes) but before the metrics snapshot is taken *)
  let maybe_portfolio selected =
    if List.exists (fun (eid, _, _) -> eid = "e7") selected then e7_portfolio ()
  in
  let run () =
    match drop_flags args with
    | [] ->
      if json then begin
        let records = List.concat_map (measure_sweep ~reps sweep) experiments in
        maybe_portfolio experiments;
        write_json ~extra:(metrics ()) out records;
        write_bench3 ();
        write_bench8 ();
        write_bench9 ()
      end
      else begin
        List.iter (fun (_, _, f) -> f ~jobs:run_jobs) experiments;
        maybe_portfolio experiments;
        bechamel_suite ()
      end
    | [ "bench" ] -> bechamel_suite ()
    | ids ->
      let selected =
        List.map
          (fun id ->
            match
              List.find_opt
                (fun (eid, _, _) -> eid = String.lowercase_ascii id)
                experiments
            with
            | Some exp -> exp
            | None ->
              Format.eprintf "unknown experiment %s (e1..e12 or bench)@." id;
              exit 2)
          ids
      in
      if json then begin
        let records = List.concat_map (measure_sweep ~reps sweep) selected in
        maybe_portfolio selected;
        write_json ~extra:(metrics ()) out records;
        if List.exists (fun (eid, _, _) -> eid = "e9" || eid = "e10") selected
        then write_bench3 ();
        if List.exists (fun (eid, _, _) -> eid = "e11") selected then
          write_bench8 ();
        if List.exists (fun (eid, _, _) -> eid = "e12") selected then
          write_bench9 ()
      end
      else begin
        List.iter (fun (_, _, f) -> f ~jobs:run_jobs) selected;
        maybe_portfolio selected
      end
  in
  match trace with
  | None -> run ()
  | Some path ->
    Fun.protect
      ~finally:(fun () ->
        Obs.Trace.set_enabled false;
        Obs.Trace.export_chrome path;
        Format.eprintf "trace written to %s@." path)
      run
