(* Tests for Relog.Hc: exact import/export roundtrip, node sharing,
   evaluator equivalence of the hash-consed pipeline, idempotence of
   the memoized simplifier, and the translation-layer memo/rebind
   behaviour built on node ids. Random formulas come from the
   generators of {!Test_simplify}. *)

module A = Relog.Ast
module Hc = Relog.Hc
module S = Relog.Simplify
module I = Mdl.Ident
module R = Relog.Rel
module TS = R.Tupleset
module B = Relog.Bounds
module T = Relog.Translate

let universe n =
  R.Universe.make (List.init n (fun i -> I.make (Printf.sprintf "a%d" i)))

(* --- sharing -------------------------------------------------------- *)

let test_sharing () =
  let st = Hc.store () in
  let f = A.And [ A.Some_ (A.rel "R"); A.Some_ (A.rel "R") ] in
  let h = Hc.of_ast st f in
  (match h.Hc.f_view with
  | Hc.And [ a; b ] ->
    Alcotest.(check bool) "equal subtrees share one node" true (a == b);
    Alcotest.(check int) "one id" a.Hc.f_id b.Hc.f_id
  | _ -> Alcotest.fail "expected a binary And");
  let n = Hc.nodes st in
  let h' = Hc.of_ast st f in
  Alcotest.(check bool) "re-import is physically equal" true (h == h');
  Alcotest.(check int) "re-import interns nothing" n (Hc.nodes st)

let test_derived_attrs () =
  let st = Hc.store () in
  let f =
    A.Forall
      ( [ (I.make "x", A.Univ) ],
        A.in_ (A.var "x") (A.Union (A.rel "R", A.rel "S")) )
  in
  let h = Hc.of_ast st f in
  Alcotest.(check bool) "closed formula" true (I.Set.is_empty h.Hc.f_free_vars);
  Alcotest.(check bool) "rels collected" true
    (I.Set.equal h.Hc.f_rels (I.Set.of_list [ I.make "R"; I.make "S" ]));
  Alcotest.(check bool) "univ binder detected" true h.Hc.f_univ;
  let g = Hc.of_ast st (A.Some_ (A.rel "R")) in
  Alcotest.(check bool) "no universe dependence" false g.Hc.f_univ

(* --- random properties ---------------------------------------------- *)

let prop_roundtrip =
  QCheck.Test.make ~name:"to_ast (of_ast f) = f" ~count:500 QCheck.small_int
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      let f = Test_simplify.random_formula rng 4 [] in
      let st = Hc.store () in
      Hc.to_ast (Hc.of_ast st f) = f)

let prop_eval_equivalence =
  QCheck.Test.make
    ~name:"hc-simplified formula evaluates like the plain AST" ~count:500
    QCheck.small_int (fun seed ->
      let rng = Random.State.make [| seed |] in
      let f = Test_simplify.random_formula rng 4 [] in
      let inst = Test_simplify.random_instance rng in
      let st = Hc.store () in
      let h = Hc.of_ast st f in
      let before = Relog.Eval.holds inst f in
      let round = Relog.Eval.holds inst (Hc.to_ast h) in
      let simplified =
        Relog.Eval.holds inst (Hc.to_ast (S.hc_formula st h))
      in
      if before = round && before = simplified then true
      else
        QCheck.Test.fail_reportf "disagree on %s"
          (Format.asprintf "%a" A.pp f))

let prop_simplify_idempotent =
  QCheck.Test.make ~name:"hc simplify is a physical fixpoint" ~count:500
    QCheck.small_int (fun seed ->
      let rng = Random.State.make [| seed |] in
      let f = Test_simplify.random_formula rng 4 [] in
      let st = Hc.store () in
      let s = S.hc_formula st (Hc.of_ast st f) in
      S.hc_formula st s == s)

(* --- translation memo and delta rebind ------------------------------ *)

let bounds_st u =
  let b = B.make u in
  let b = B.bound b (I.make "S") ~lower:TS.empty ~upper:(TS.univ u) in
  B.bound b (I.make "T") ~lower:TS.empty ~upper:(TS.univ u)

let test_translate_memo () =
  let t = T.create (bounds_st (universe 3)) in
  T.materialize t (I.make "S");
  T.materialize t (I.make "T");
  let f =
    A.Forall ([ (I.make "x", A.rel "S") ], A.in_ (A.var "x") (A.rel "T"))
  in
  let l1 = T.formula_lit t f in
  let hits0 = Obs.Metrics.counter_value (Obs.Metrics.counter "relog.memo_hits") in
  let l2 = T.formula_lit t f in
  Alcotest.(check int) "same guard literal" l1 l2;
  Alcotest.(check bool) "second lowering is a memo hit" true
    (Obs.Metrics.counter_value (Obs.Metrics.counter "relog.memo_hits") > hits0)

let test_rebind_delta () =
  let u = universe 3 in
  let t = T.create (bounds_st u) in
  T.materialize t (I.make "S");
  T.materialize t (I.make "T");
  let f = A.Some_ (A.rel "S") in
  let l1 = T.formula_lit t f in
  (* tighten T only: S's circuits must survive the rebind *)
  let b' = B.make u in
  let b' = B.bound b' (I.make "S") ~lower:TS.empty ~upper:(TS.univ u) in
  let b' =
    B.bound b' (I.make "T") ~lower:TS.empty ~upper:(TS.of_list [ [| 0 |] ])
  in
  let changed = T.rebind t b' in
  Alcotest.(check int) "only T changed" 1 changed;
  T.materialize t (I.make "S");
  T.materialize t (I.make "T");
  let l2 = T.formula_lit t f in
  Alcotest.(check int) "guard stable across unrelated rebind" l1 l2

let suite =
  [
    Alcotest.test_case "node sharing" `Quick test_sharing;
    Alcotest.test_case "derived attributes" `Quick test_derived_attrs;
    QCheck_alcotest.to_alcotest prop_roundtrip;
    QCheck_alcotest.to_alcotest prop_eval_equivalence;
    QCheck_alcotest.to_alcotest prop_simplify_idempotent;
    Alcotest.test_case "translation memo" `Quick test_translate_memo;
    Alcotest.test_case "delta rebind keeps guards" `Quick test_rebind_delta;
  ]
