(* Tests for Mdl.Edit / Mdl.Diff / Mdl.Distance: edit scripts, the
   diff/apply round-trip, and the metric laws of Δ. *)

module MM = Mdl.Metamodel
module Model = Mdl.Model
module I = Mdl.Ident
module V = Mdl.Value

let mm =
  MM.make_exn ~name:"G"
    [
      MM.cls "N"
        ~attrs:[ MM.attr ~mult:MM.mult_opt "tag" MM.P_string ]
        ~refs:[ MM.ref_ "out" ~target:"N" ];
    ]

let n_cls = I.make "N"
let tag = I.make "tag"
let out = I.make "out"

(* Random model generator over a fixed id space 0..n-1. *)
let random_model rng n =
  let m = ref (Model.empty ~name:"m" mm) in
  let present = Array.init n (fun _ -> Random.State.bool rng) in
  Array.iteri
    (fun i p -> if p then m := Model.add_object_with_id !m ~id:i ~cls:n_cls)
    present;
  for i = 0 to n - 1 do
    if present.(i) then begin
      if Random.State.bool rng then
        m :=
          Model.set_attr1 !m i tag
            (V.str (String.make 1 (Char.chr (97 + Random.State.int rng 3))));
      for j = 0 to n - 1 do
        if present.(j) && Random.State.int rng 3 = 0 then
          m := Model.add_ref !m ~src:i ~ref_:out ~dst:j
      done
    end
  done;
  !m

let test_identical_models_empty_script () =
  let rng = Random.State.make [| 1 |] in
  let m = random_model rng 4 in
  Alcotest.(check int) "no edits" 0 (List.length (Mdl.Diff.script m m));
  Alcotest.(check int) "delta 0" 0 (Mdl.Distance.delta m m)

let test_simple_edits () =
  let m = Model.empty ~name:"m" mm in
  let m, a = Model.add_object m ~cls:n_cls in
  let m2 = Model.set_attr1 m a tag (V.str "x") in
  Alcotest.(check int) "one attr edit" 1 (List.length (Mdl.Diff.script m m2));
  let m3, b = Model.add_object m2 ~cls:n_cls in
  let m3 = Model.add_ref m3 ~src:a ~ref_:out ~dst:b in
  (* add object + add edge *)
  Alcotest.(check int) "object + edge" 2 (List.length (Mdl.Diff.script m2 m3));
  Alcotest.(check int) "delta counts both" 2 (Mdl.Distance.delta m2 m3)

let test_apply_roundtrip_random =
  QCheck.Test.make ~name:"apply (script a b) a = b" ~count:200 QCheck.small_int
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      let a = random_model rng 5 in
      let b = random_model rng 5 in
      let script = Mdl.Diff.script a b in
      match Mdl.Edit.apply_script a script with
      | Ok b' -> Model.equal b' b
      | Error msg -> QCheck.Test.fail_reportf "apply failed: %s" msg)

let test_metric_laws =
  QCheck.Test.make ~name:"Δ is a metric (identity, symmetry, triangle)" ~count:100
    (QCheck.triple QCheck.small_int QCheck.small_int QCheck.small_int)
    (fun (s1, s2, s3) ->
      let m1 = random_model (Random.State.make [| s1 |]) 4 in
      let m2 = random_model (Random.State.make [| s2 |]) 4 in
      let m3 = random_model (Random.State.make [| s3 |]) 4 in
      let d = Mdl.Distance.delta in
      d m1 m1 = 0
      && (d m1 m2 = 0) = Model.equal m1 m2
      && d m1 m2 = d m2 m1
      && d m1 m3 <= d m1 m2 + d m2 m3)

let test_invert_roundtrip =
  QCheck.Test.make ~name:"inverse script undoes slot edits" ~count:200 QCheck.small_int
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      let a = random_model rng 5 in
      let b = random_model rng 5 in
      (* restrict to states with equal object sets so inversion is
         well-defined without class bookkeeping *)
      let objs_equal = Model.objects a = Model.objects b in
      QCheck.assume objs_equal;
      let script = Mdl.Diff.script a b in
      match Mdl.Edit.apply_script a script with
      | Error msg -> QCheck.Test.fail_reportf "apply failed: %s" msg
      | Ok b' -> (
        match Mdl.Edit.apply_script b' (Mdl.Edit.invert_script script) with
        | Ok a' -> Model.equal a a'
        | Error msg -> QCheck.Test.fail_reportf "inverse apply failed: %s" msg))

let test_weights () =
  let w =
    { Mdl.Distance.uniform with Mdl.Distance.w_set_attr = 10; w_add_ref = 3 }
  in
  let m = Model.empty ~name:"m" mm in
  let m, a = Model.add_object m ~cls:n_cls in
  let m2 = Model.set_attr1 m a tag (V.str "x") in
  Alcotest.(check int) "weighted attr edit" 10 (Mdl.Distance.delta ~weights:w m m2);
  let m3 = Model.add_ref m2 ~src:a ~ref_:out ~dst:a in
  Alcotest.(check int) "weighted edge edit" 3 (Mdl.Distance.delta ~weights:w m2 m3)

let test_tuple_aggregation () =
  let m0 = Model.empty ~name:"m" mm in
  let m1, a = Model.add_object m0 ~cls:n_cls in
  let m2 = Model.set_attr1 m1 a tag (V.str "x") in
  (* Σ Δ over positions: (m0→m1) = 1, (m1→m2) = 1 *)
  Alcotest.(check int) "summed tuple distance" 2
    (Mdl.Distance.delta_tuple [ m0; m1 ] [ m1; m2 ]);
  Alcotest.(check int) "weighted tuple distance" 12
    (Mdl.Distance.delta_weighted_tuple [ 2; 10 ] [ m0; m1 ] [ m1; m2 ]);
  match Mdl.Distance.delta_tuple [ m0 ] [ m0; m1 ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "length mismatch must raise"

let test_reclassification () =
  let mm2 = MM.make_exn ~name:"Z" [ MM.cls "A"; MM.cls "B" ] in
  let a = Model.add_object_with_id (Model.empty ~name:"m" mm2) ~id:0 ~cls:(I.make "A") in
  let b = Model.add_object_with_id (Model.empty ~name:"m" mm2) ~id:0 ~cls:(I.make "B") in
  let script = Mdl.Diff.script a b in
  (match Mdl.Edit.apply_script a script with
  | Ok b' -> Alcotest.(check bool) "reclassification handled" true (Model.equal b b')
  | Error msg -> Alcotest.failf "apply failed: %s" msg);
  Alcotest.(check int) "delete + create" 2 (List.length script)

let suite =
  [
    Alcotest.test_case "identical models" `Quick test_identical_models_empty_script;
    Alcotest.test_case "simple edits" `Quick test_simple_edits;
    Alcotest.test_case "weights" `Quick test_weights;
    Alcotest.test_case "tuple aggregation" `Quick test_tuple_aggregation;
    Alcotest.test_case "reclassification" `Quick test_reclassification;
    QCheck_alcotest.to_alcotest test_apply_roundtrip_random;
    QCheck_alcotest.to_alcotest test_metric_laws;
    QCheck_alcotest.to_alcotest test_invert_roundtrip;
  ]
