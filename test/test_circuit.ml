(* Tests for Sat.Circuit (hash-consing and simplification) and
   Sat.Tseitin (CNF encoding equisatisfiability). *)

module C = Sat.Circuit
module S = Sat.Solver
module L = Sat.Lit

let test_hash_consing () =
  let b = C.builder () in
  let x = C.input b (L.pos 0) and y = C.input b (L.pos 1) in
  let a1 = C.and_ b [ x; y ] and a2 = C.and_ b [ y; x ] in
  Alcotest.(check bool) "commutative and shares" true (a1 == a2);
  let o1 = C.or_ b [ x; y; x ] and o2 = C.or_ b [ y; x ] in
  Alcotest.(check bool) "duplicates removed before interning" true (o1 == o2)

let test_constant_folding () =
  let b = C.builder () in
  let x = C.input b (L.pos 0) in
  Alcotest.(check bool) "and [] = true" true (C.is_true (C.and_ b []));
  Alcotest.(check bool) "or [] = false" true (C.is_false (C.or_ b []));
  Alcotest.(check bool) "and [false; x] = false" true (C.is_false (C.and_ b [ C.fls b; x ]));
  Alcotest.(check bool) "or [true; x] = true" true (C.is_true (C.or_ b [ C.tru b; x ]));
  Alcotest.(check bool) "and [true; x] = x" true (C.and_ b [ C.tru b; x ] == x);
  Alcotest.(check bool) "not not x = x" true (C.not_ b (C.not_ b x) == x);
  Alcotest.(check bool) "x & !x = false" true
    (C.is_false (C.and_ b [ x; C.not_ b x ]));
  Alcotest.(check bool) "x | !x = true" true (C.is_true (C.or_ b [ x; C.not_ b x ]))

let test_negated_input () =
  let b = C.builder () in
  let x = C.input b (L.pos 0) in
  (* not over an input becomes the complementary input *)
  match C.view (C.not_ b x) with
  | C.Input l -> Alcotest.(check int) "complement literal" (L.neg_of 0) l
  | _ -> Alcotest.fail "expected Input view"

let test_flattening () =
  let b = C.builder () in
  let x = C.input b (L.pos 0)
  and y = C.input b (L.pos 1)
  and z = C.input b (L.pos 2) in
  let nested = C.and_ b [ x; C.and_ b [ y; z ] ] in
  match C.view nested with
  | C.And cs -> Alcotest.(check int) "flattened to 3 children" 3 (Array.length cs)
  | _ -> Alcotest.fail "expected And view"

(* Evaluate a circuit under an assignment (ground truth). *)
let rec eval assign node =
  match C.view node with
  | C.True -> true
  | C.False -> false
  | C.Input l -> if L.sign l then assign.(L.var l) else not assign.(L.var l)
  | C.Not n -> not (eval assign n)
  | C.And cs -> Array.for_all (eval assign) cs
  | C.Or cs -> Array.exists (eval assign) cs

(* Random circuit generator over nv input variables. *)
let rec random_circuit rng b nv depth =
  if depth = 0 || Random.State.int rng 3 = 0 then
    C.input b (L.make (Random.State.int rng nv) (Random.State.bool rng))
  else
    match Random.State.int rng 4 with
    | 0 -> C.not_ b (random_circuit rng b nv (depth - 1))
    | 1 ->
      C.and_ b
        (List.init
           (1 + Random.State.int rng 3)
           (fun _ -> random_circuit rng b nv (depth - 1)))
    | 2 ->
      C.or_ b
        (List.init
           (1 + Random.State.int rng 3)
           (fun _ -> random_circuit rng b nv (depth - 1)))
    | _ ->
      C.iff b (random_circuit rng b nv (depth - 1)) (random_circuit rng b nv (depth - 1))

let models_of_circuit node nv =
  (* brute-force count of satisfying assignments *)
  let count = ref 0 in
  let assign = Array.make nv false in
  let rec go v =
    if v = nv then begin
      if eval assign node then incr count
    end
    else begin
      assign.(v) <- true;
      go (v + 1);
      assign.(v) <- false;
      go (v + 1)
    end
  in
  go 0;
  !count

let test_tseitin_equisat =
  QCheck.Test.make ~name:"tseitin assert_true preserves satisfiability" ~count:300
    QCheck.small_int (fun seed ->
      let rng = Random.State.make [| seed |] in
      let nv = 4 in
      let b = C.builder () in
      let node = random_circuit rng b nv 3 in
      let sat_expected = models_of_circuit node nv > 0 in
      let s = S.create () in
      for _ = 1 to nv do
        ignore (S.new_var s)
      done;
      let ctx = Sat.Tseitin.create s in
      Sat.Tseitin.assert_true ctx node;
      let got = S.solve s = S.Sat in
      if got <> sat_expected then false
      else if got then
        (* model projected on the inputs satisfies the circuit *)
        eval (Array.init nv (fun v -> S.value s v)) node
      else true)

let test_tseitin_assert_false =
  QCheck.Test.make ~name:"tseitin assert_false encodes negation" ~count:200
    QCheck.small_int (fun seed ->
      let rng = Random.State.make [| seed |] in
      let nv = 4 in
      let b = C.builder () in
      let node = random_circuit rng b nv 3 in
      let falsifiable = models_of_circuit node nv < 16 in
      let s = S.create () in
      for _ = 1 to nv do
        ignore (S.new_var s)
      done;
      let ctx = Sat.Tseitin.create s in
      Sat.Tseitin.assert_false ctx node;
      (S.solve s = S.Sat) = falsifiable)

let test_lit_of_shared () =
  (* encoding the same node twice must not duplicate definitions *)
  let b = C.builder () in
  let x = C.input b (L.pos 0) and y = C.input b (L.pos 1) in
  let node = C.and_ b [ x; y ] in
  let s = S.create () in
  ignore (S.new_var s);
  ignore (S.new_var s);
  let ctx = Sat.Tseitin.create s in
  let l1 = Sat.Tseitin.lit_of ctx node in
  let n_after_first = S.nb_vars s in
  let l2 = Sat.Tseitin.lit_of ctx node in
  Alcotest.(check int) "same literal" l1 l2;
  Alcotest.(check int) "no new variables" n_after_first (S.nb_vars s)

let test_size () =
  let b = C.builder () in
  let x = C.input b (L.pos 0) and y = C.input b (L.pos 1) in
  let shared = C.and_ b [ x; y ] in
  let top = C.or_ b [ shared; C.not_ b shared ] in
  (* or of complement simplifies to true, so build differently *)
  ignore top;
  let top2 = C.and_ b [ C.or_ b [ shared; x ]; C.or_ b [ shared; y ] ] in
  Alcotest.(check bool) "size counts distinct nodes once" true (C.size top2 <= 6)

let suite =
  [
    Alcotest.test_case "hash consing" `Quick test_hash_consing;
    Alcotest.test_case "constant folding" `Quick test_constant_folding;
    Alcotest.test_case "negated input" `Quick test_negated_input;
    Alcotest.test_case "flattening" `Quick test_flattening;
    Alcotest.test_case "lit_of shares definitions" `Quick test_lit_of_shared;
    Alcotest.test_case "size" `Quick test_size;
    QCheck_alcotest.to_alcotest test_tseitin_equisat;
    QCheck_alcotest.to_alcotest test_tseitin_assert_false;
  ]
