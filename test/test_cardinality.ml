(* Tests for the totalizer encoding: outputs reflect input counts,
   at-most-k assumptions behave, and counting is exact against brute
   force. *)

module S = Sat.Solver
module L = Sat.Lit
module Card = Sat.Cardinality

let setup n =
  let s = S.create () in
  let vars = Array.init n (fun _ -> S.new_var s) in
  let card = Card.build s (Array.to_list (Array.map L.pos vars)) in
  (s, vars, card)

let force s vars bits =
  Array.iteri
    (fun i b -> S.add_clause s [ (if b then L.pos vars.(i) else L.neg_of vars.(i)) ])
    bits

let test_outputs_track_count () =
  (* set exactly 3 of 5 inputs; o1..o3 must be forced, o4, o5 must be
     refutable *)
  let s, vars, card = setup 5 in
  force s vars [| true; false; true; true; false |];
  Alcotest.(check bool) "sat" true (S.solve s = S.Sat);
  for k = 1 to 3 do
    Alcotest.(check bool)
      (Printf.sprintf "o%d forced" k)
      true
      (S.lit_value s (Card.output card k))
  done;
  (* at_most 3 consistent, at_most 2 not *)
  Alcotest.(check bool) "at_most 3 sat" true (S.solve ~assumptions:(Card.at_most card 3) s = S.Sat);
  Alcotest.(check bool) "at_most 2 unsat" true
    (S.solve ~assumptions:(Card.at_most card 2) s = S.Unsat)

let test_at_most_zero () =
  let s, vars, card = setup 4 in
  S.add_clause s [ L.pos vars.(0); L.pos vars.(1) ];
  (* at least one input true -> at_most 0 unsat *)
  Alcotest.(check bool) "at_most 0 unsat" true
    (S.solve ~assumptions:(Card.at_most card 0) s = S.Unsat);
  Alcotest.(check bool) "at_most 1 sat" true
    (S.solve ~assumptions:(Card.at_most card 1) s = S.Sat)

let test_at_most_bounds () =
  let _, _, card = setup 3 in
  Alcotest.(check int) "count" 3 (Card.count card);
  Alcotest.(check (list int)) "k >= n needs no assumption" [] (Card.at_most card 3);
  match Card.at_most card (-1) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "negative k must raise"

let test_assert_at_most () =
  let s, vars, card = setup 4 in
  Card.assert_at_most s card 1;
  S.add_clause s [ L.pos vars.(0) ];
  S.add_clause s [ L.pos vars.(1) ];
  Alcotest.(check bool) "two forced trues vs cap 1 = unsat" true (S.solve s = S.Unsat)

let prop_exact_counting =
  QCheck.Test.make ~name:"at_most k sat iff forced count <= k" ~count:200
    (QCheck.pair QCheck.small_int (QCheck.int_bound 7))
    (fun (seed, k) ->
      let rng = Random.State.make [| seed |] in
      let n = 1 + Random.State.int rng 7 in
      let s, vars, card = setup n in
      let bits = Array.init n (fun _ -> Random.State.bool rng) in
      force s vars bits;
      let true_count = Array.fold_left (fun acc b -> acc + Bool.to_int b) 0 bits in
      let sat = S.solve ~assumptions:(Card.at_most card k) s = S.Sat in
      sat = (true_count <= k))

let prop_free_inputs_counting =
  QCheck.Test.make ~name:"at_most k leaves exactly sum_{i<=k} C(n,i) models" ~count:50
    (QCheck.pair (QCheck.int_range 1 5) (QCheck.int_bound 5))
    (fun (n, k) ->
      let s, vars, card = setup n in
      (* enumerate all models of the inputs under at_most k *)
      let binom n r =
        if r > n then 0
        else begin
          let num = ref 1 and den = ref 1 in
          for i = 1 to r do
            num := !num * (n - r + i);
            den := !den * i
          done;
          !num / !den
        end
      in
      let expected = List.fold_left (fun acc i -> acc + binom n i) 0 (List.init (min k n + 1) Fun.id) in
      let count = ref 0 in
      let rec enumerate () =
        match S.solve ~assumptions:(Card.at_most card k) s with
        | S.Unsat -> ()
        | S.Sat ->
          incr count;
          if !count > 64 then ()  (* safety net; n <= 5 keeps this small *)
          else begin
            (* block this input assignment *)
            let clause =
              Array.to_list
                (Array.map
                   (fun v -> if S.value s v then L.neg_of v else L.pos v)
                   vars)
            in
            S.add_clause s clause;
            enumerate ()
          end
      in
      enumerate ();
      !count = expected)

(* ------------------------------------------------------------------ *)
(* k-bounded build: outputs truncated at cap + 1                       *)

let setup_capped n cap =
  let s = S.create () in
  let vars = Array.init n (fun _ -> S.new_var s) in
  let card = Card.build ~cap s (Array.to_list (Array.map L.pos vars)) in
  (s, vars, card)

let test_capped_accounting () =
  let _, _, card = setup_capped 6 2 in
  Alcotest.(check int) "cap recorded" 2 (Card.cap card);
  Alcotest.(check bool) "vars saved vs full build" true (Card.saved_vars card > 0);
  Alcotest.(check bool) "clauses saved vs full build" true
    (Card.saved_clauses card > 0);
  (match Card.at_most card 3 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "bound beyond cap must raise");
  (match Card.output card 4 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "output beyond cap + 1 must raise");
  let s, _, card = setup_capped 5 1 in
  (match Card.assert_at_most s card 2 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "assert beyond cap must raise");
  (* the default build saves nothing *)
  let _, _, full = setup 5 in
  Alcotest.(check int) "full build saves no vars" 0 (Card.saved_vars full);
  Alcotest.(check int) "full build saves no clauses" 0 (Card.saved_clauses full)

let test_capped_detects_overflow () =
  (* 4 of 6 inputs true, cap 2: the encoding cannot count to 4 but must
     still refute every bound it can express *)
  let s, vars, card = setup_capped 6 2 in
  force s vars [| true; true; false; true; true; false |];
  Alcotest.(check bool) "at_most 2 unsat" true
    (S.solve ~assumptions:(Card.at_most card 2) s = S.Unsat);
  Alcotest.(check bool) "at_most 0 unsat" true
    (S.solve ~assumptions:(Card.at_most card 0) s = S.Unsat);
  Alcotest.(check bool) "unconstrained sat" true (S.solve s = S.Sat)

let prop_capped_counting =
  QCheck.Test.make ~name:"capped at_most k sat iff forced count <= k (k <= cap)"
    ~count:200 QCheck.small_int (fun seed ->
      let rng = Random.State.make [| seed |] in
      let n = 2 + Random.State.int rng 6 in
      let cap = Random.State.int rng n in
      let k = Random.State.int rng (cap + 1) in
      let s, vars, card = setup_capped n cap in
      let bits = Array.init n (fun _ -> Random.State.bool rng) in
      force s vars bits;
      let true_count = Array.fold_left (fun acc b -> acc + Bool.to_int b) 0 bits in
      let sat = S.solve ~assumptions:(Card.at_most card k) s = S.Sat in
      sat = (true_count <= k))

let suite =
  [
    Alcotest.test_case "outputs track count" `Quick test_outputs_track_count;
    Alcotest.test_case "capped accounting and bounds" `Quick
      test_capped_accounting;
    Alcotest.test_case "capped overflow detection" `Quick
      test_capped_detects_overflow;
    QCheck_alcotest.to_alcotest prop_capped_counting;
    Alcotest.test_case "at_most zero" `Quick test_at_most_zero;
    Alcotest.test_case "bounds" `Quick test_at_most_bounds;
    Alcotest.test_case "assert_at_most" `Quick test_assert_at_most;
    QCheck_alcotest.to_alcotest prop_exact_counting;
    QCheck_alcotest.to_alcotest prop_free_inputs_counting;
  ]
