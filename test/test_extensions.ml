(* Tests for the extensions beyond the paper's running example:
   integer comparisons in OCL-lite, counterexample witnesses in check
   reports, and enumeration of all minimal repairs. *)

module F = Featuremodel.Fm
module I = Mdl.Ident
module MM = Mdl.Metamodel

(* ------------------------------------------------------------------ *)
(* Integer comparisons                                                 *)

let prio_mm =
  MM.make_exn ~name:"P"
    [
      MM.cls "Task"
        ~attrs:[ MM.attr ~key:true "name" MM.P_string; MM.attr "prio" MM.P_int ];
    ]

let prio_metamodels = [ (I.make "P", prio_mm) ]

(* team priority must dominate the personal one for same-named tasks *)
let prio_trans =
  Qvtr.Parser.parse_exn
    {|
transformation Prio(mine : P, team : P) {
  top relation Dominates {
    n : String;
    a : Integer;
    b : Integer;
    domain mine x : Task { name = n, prio = a };
    domain team y : Task { name = n, prio = b };
    where { a <= b }
    dependencies { mine -> team; }
  }
}
|}

let task_list mm name tasks =
  List.fold_left
    (fun m (n, p) ->
      let m, id = Mdl.Model.add_object m ~cls:(I.make "Task") in
      let m = Mdl.Model.set_attr1 m id (I.make "name") (Mdl.Value.Str n) in
      Mdl.Model.set_attr1 m id (I.make "prio") (Mdl.Value.Int p))
    (Mdl.Model.empty ~name mm)
    tasks

let prio_check mine team =
  let models =
    [ (I.make "mine", task_list prio_mm "mine" mine);
      (I.make "team", task_list prio_mm "team" team) ]
  in
  (Qvtr.Check.run_exn prio_trans ~metamodels:prio_metamodels ~models)
    .Qvtr.Check.consistent

let test_int_comparison_semantics () =
  (* the when-clause guards the source side: only tasks with a <= b
     demand a counterpart. Here every (a,b) pair of prios is related
     when a <= b, so the check requires: for all my tasks x and
     priorities b with x.prio <= b there is a team task named x.name
     with prio b... — instead keep it simple: equal names, and the
     pair is only consistent when some team prio >= mine exists. *)
  Alcotest.(check bool) "dominating team passes" true
    (prio_check [ ("t", 1) ] [ ("t", 2) ]);
  Alcotest.(check bool) "equal passes" true (prio_check [ ("t", 2) ] [ ("t", 2) ]);
  Alcotest.(check bool) "undominated fails" false
    (prio_check [ ("t", 3) ] [ ("t", 2) ])

let test_int_comparison_parsing () =
  let r = List.hd prio_trans.Qvtr.Ast.t_relations in
  (match Qvtr.Ast.preds r.Qvtr.Ast.r_where with
  | [ Qvtr.Ast.P_le (Qvtr.Ast.O_var _, Qvtr.Ast.O_var _) ] -> ()
  | _ -> Alcotest.fail "expected P_le in where clause");
  (* > and >= flip into P_lt / P_le *)
  let t2 =
    Qvtr.Parser.parse_exn
      {|
transformation T(mine : P, team : P) {
  top relation R {
    n : String; a : Integer; b : Integer;
    domain mine x : Task { name = n, prio = a };
    domain team y : Task { name = n, prio = b };
    when { a > b; a >= b; a < b }
  }
}
|}
  in
  let r2 = List.hd t2.Qvtr.Ast.t_relations in
  (match Qvtr.Ast.preds r2.Qvtr.Ast.r_when with
  | [ Qvtr.Ast.P_lt (Qvtr.Ast.O_var b1, _); Qvtr.Ast.P_le (Qvtr.Ast.O_var b2, _);
      Qvtr.Ast.P_lt (Qvtr.Ast.O_var a1, _) ] ->
    Alcotest.(check string) "> flips" "b" (I.name b1);
    Alcotest.(check string) ">= flips" "b" (I.name b2);
    Alcotest.(check string) "< direct" "a" (I.name a1)
  | _ -> Alcotest.fail "unexpected comparison structure");
  (* round-trip through the printer *)
  let printed = Qvtr.Parser.to_string prio_trans in
  match Qvtr.Parser.parse printed with
  | Ok t ->
    Alcotest.(check bool) "round-trip" true
      (Qvtr.Ast.strip_locs t = Qvtr.Ast.strip_locs prio_trans)
  | Error e -> Alcotest.failf "round-trip: %s" e

let test_int_comparison_typing () =
  let bad =
    Qvtr.Parser.parse_exn
      {|
transformation T(mine : P, team : P) {
  top relation R {
    n : String;
    domain mine x : Task { name = n };
    domain team y : Task { name = n };
    when { n < n }
  }
}
|}
  in
  match Qvtr.Typecheck.check bad ~metamodels:prio_metamodels with
  | Ok _ -> Alcotest.fail "string comparison must be rejected"
  | Error errs ->
    Alcotest.(check bool) "mentions integer comparison" true
      (List.exists
         (fun e ->
           let s = Format.asprintf "%a" Qvtr.Typecheck.pp_error e in
           String.length s > 0)
         errs)

let test_int_comparison_repair () =
  (* repair the team model so that it dominates: prio must rise to an
     int available in the bounded universe *)
  let models =
    [ (I.make "mine", task_list prio_mm "mine" [ ("t", 3) ]);
      (I.make "team", task_list prio_mm "team" [ ("t", 2) ]) ]
  in
  match
    Echo.Engine.enforce prio_trans ~metamodels:prio_metamodels ~models
      ~targets:(Echo.Target.single "team")
  with
  | Ok (Echo.Engine.Enforced r) ->
    let team = List.assoc (I.make "team") r.Echo.Engine.repaired in
    let prio =
      match
        Mdl.Model.get_attr1 team
          (List.hd (Mdl.Model.objects team))
          (I.make "prio")
      with
      | Some (Mdl.Value.Int p) -> p
      | _ -> -1
    in
    Alcotest.(check bool) "team prio raised to >= 3" true (prio >= 3)
  | Ok o ->
    Alcotest.failf "expected repair, got %s"
      (Format.asprintf "%a" Echo.Engine.pp_outcome o)
  | Error e -> Alcotest.fail e

(* ------------------------------------------------------------------ *)
(* Witnesses                                                           *)

let test_witness_in_report () =
  let trans = F.transformation ~k:2 in
  let cfs = [ F.configuration ~name:"cf1" [ "A" ]; F.configuration ~name:"cf2" [ "A" ] ] in
  let fm = F.feature_model ~name:"fm" [ ("A", true); ("N", true) ] in
  let report =
    Qvtr.Check.run_exn trans ~metamodels:F.metamodels ~models:(F.bind ~cfs ~fm)
  in
  let violated =
    List.filter (fun v -> not v.Qvtr.Check.v_holds) report.Qvtr.Check.verdicts
  in
  Alcotest.(check int) "two violated directions" 2 (List.length violated);
  List.iter
    (fun v ->
      Alcotest.(check bool) "witness present" true (v.Qvtr.Check.v_witness <> []);
      (* the failing feature is N: its atom (the fm object or the name
         value) appears in the witness *)
      let atoms = List.map (fun (_, a) -> I.name a) v.Qvtr.Check.v_witness in
      Alcotest.(check bool) "witness names the culprit" true
        (List.exists (fun a -> a = "s~N" || a = "fm#1") atoms))
    violated;
  let rendered = Format.asprintf "%a" Qvtr.Check.pp_report report in
  Alcotest.(check bool) "report renders witnesses" true
    (String.length rendered > 0)

let test_witness_none_when_consistent () =
  let trans = F.transformation ~k:2 in
  let cfs = [ F.configuration ~name:"cf1" [ "A" ]; F.configuration ~name:"cf2" [ "A" ] ] in
  let fm = F.feature_model ~name:"fm" [ ("A", true) ] in
  let report =
    Qvtr.Check.run_exn trans ~metamodels:F.metamodels ~models:(F.bind ~cfs ~fm)
  in
  Alcotest.(check bool) "all hold, no witnesses" true
    (List.for_all
       (fun v -> v.Qvtr.Check.v_holds && v.Qvtr.Check.v_witness = [])
       report.Qvtr.Check.verdicts)

let test_counterexample_direct () =
  (* relog-level: a failing forall yields its binding *)
  let u = Relog.Rel.Universe.make [ I.make "a"; I.make "b" ] in
  let inst =
    Relog.Instance.set (Relog.Instance.make u) (I.make "S")
      (Relog.Rel.Tupleset.of_list [ [| 0 |] ])
  in
  let f =
    Relog.Ast.forall
      [ ("x", Relog.Ast.Univ) ]
      (Relog.Ast.in_ (Relog.Ast.var "x") (Relog.Ast.rel "S"))
  in
  (match Relog.Eval.counterexample inst f with
  | Some [ (v, atom) ] ->
    Alcotest.(check string) "variable" "x" (I.name v);
    Alcotest.(check string) "failing atom" "b" (I.name atom)
  | Some _ | None -> Alcotest.fail "expected a one-variable witness");
  Alcotest.(check bool) "holds -> None" true
    (Relog.Eval.counterexample inst
       (Relog.Ast.in_ (Relog.Ast.rel "S") Relog.Ast.Univ)
    = None)

(* ------------------------------------------------------------------ *)
(* All minimal repairs                                                 *)

let test_enforce_all_three_minima () =
  (* cf1 = {A}, cf2 = {A}, fm = {A optional}: the three minimal repairs
     are (a) make A mandatory, (b) drop A from cf1, (c) drop A from
     cf2 — all at relational distance 2 *)
  let trans = F.transformation ~k:2 in
  let cfs = [ F.configuration ~name:"cf1" [ "A" ]; F.configuration ~name:"cf2" [ "A" ] ] in
  let fm = F.feature_model ~name:"fm" [ ("A", false) ] in
  match
    Echo.Engine.enforce_all trans ~metamodels:F.metamodels ~models:(F.bind ~cfs ~fm)
      ~targets:(Echo.Target.of_list [ "cf1"; "cf2"; "fm" ])
  with
  | Error e -> Alcotest.fail e
  | Ok outcomes ->
    let repairs =
      List.filter_map
        (function Echo.Engine.Enforced r -> Some r | _ -> None)
        outcomes
    in
    Alcotest.(check int) "three minimal repairs" 3 (List.length repairs);
    List.iter
      (fun r ->
        Alcotest.(check int) "each at distance 2" 2 r.Echo.Engine.relational_distance;
        let rep = Qvtr.Check.run_exn trans ~metamodels:F.metamodels ~models:r.Echo.Engine.repaired in
        Alcotest.(check bool) "each consistent" true rep.Qvtr.Check.consistent)
      repairs;
    (* the three repairs are pairwise distinct *)
    let states =
      List.map
        (fun r ->
          List.map
            (fun (p, m) ->
              if I.name p = "fm" then
                (I.name p, List.map (fun (n, b) -> n ^ string_of_bool b) (F.fm_features m))
              else (I.name p, F.cf_features m))
            r.Echo.Engine.repaired)
        repairs
    in
    Alcotest.(check int) "pairwise distinct" 3
      (List.length (List.sort_uniq compare states))

let test_enforce_all_cannot () =
  let trans = F.transformation ~k:2 in
  let s = Featuremodel.Scenarios.new_mandatory_feature in
  match
    Echo.Engine.enforce_all trans ~metamodels:F.metamodels
      ~models:
        (F.bind ~cfs:s.Featuremodel.Scenarios.cfs ~fm:s.Featuremodel.Scenarios.fm)
      ~targets:(Echo.Target.single "cf1")
  with
  | Ok [ Echo.Engine.Cannot_restore ] -> ()
  | Ok _ -> Alcotest.fail "expected Cannot_restore singleton"
  | Error e -> Alcotest.fail e

let test_enforce_all_consistent () =
  let trans = F.transformation ~k:2 in
  let cfs = [ F.configuration ~name:"cf1" [ "A" ]; F.configuration ~name:"cf2" [ "A" ] ] in
  let fm = F.feature_model ~name:"fm" [ ("A", true) ] in
  match
    Echo.Engine.enforce_all trans ~metamodels:F.metamodels ~models:(F.bind ~cfs ~fm)
      ~targets:(Echo.Target.single "fm")
  with
  | Ok [ Echo.Engine.Already_consistent ] -> ()
  | Ok _ -> Alcotest.fail "expected Already_consistent singleton"
  | Error e -> Alcotest.fail e

let test_enforce_all_limit () =
  let trans = F.transformation ~k:2 in
  let cfs = [ F.configuration ~name:"cf1" [ "A" ]; F.configuration ~name:"cf2" [ "A" ] ] in
  let fm = F.feature_model ~name:"fm" [ ("A", false) ] in
  match
    Echo.Engine.enforce_all ~limit:2 trans ~metamodels:F.metamodels
      ~models:(F.bind ~cfs ~fm)
      ~targets:(Echo.Target.of_list [ "cf1"; "cf2"; "fm" ])
  with
  | Ok outcomes -> Alcotest.(check int) "limit respected" 2 (List.length outcomes)
  | Error e -> Alcotest.fail e

let test_enforce_all_symmetry_dedup () =
  (* object creation draws from interchangeable slack atoms; symmetry
     breaking + decoded-state dedup must collapse the isomorphic SAT
     assignments into a single repair *)
  let trans = F.transformation ~k:2 in
  let s = Featuremodel.Scenarios.new_mandatory_feature in
  match
    Echo.Engine.enforce_all trans ~metamodels:F.metamodels
      ~models:
        (F.bind ~cfs:s.Featuremodel.Scenarios.cfs ~fm:s.Featuremodel.Scenarios.fm)
      ~targets:(Echo.Target.of_list [ "cf1"; "cf2" ])
  with
  | Error e -> Alcotest.fail e
  | Ok outcomes ->
    let repairs =
      List.filter_map
        (function Echo.Engine.Enforced r -> Some r | _ -> None)
        outcomes
    in
    Alcotest.(check int) "one repair up to isomorphism" 1 (List.length repairs)

let test_repair_idempotent () =
  (* hippocraticness: enforcing an already-repaired state is a no-op *)
  let trans = F.transformation ~k:2 in
  let rng = Featuremodel.Gen.rng 23 in
  let exercised = ref 0 in
  for _ = 1 to 6 do
    let state = Featuremodel.Gen.consistent_state rng ~k:2 ~n_features:3 in
    match Featuremodel.Gen.random_perturbation rng state with
    | None -> ()
    | Some p ->
      let cfs, fm = Featuremodel.Gen.apply_perturbation state p in
      if not (F.consistent ~cfs ~fm) then begin
        let targets = Echo.Target.of_list [ "cf1"; "cf2"; "fm" ] in
        match
          Echo.Engine.enforce trans ~metamodels:F.metamodels
            ~models:(F.bind ~cfs ~fm) ~targets
        with
        | Ok (Echo.Engine.Enforced r) -> (
          incr exercised;
          match
            Echo.Engine.enforce trans ~metamodels:F.metamodels
              ~models:r.Echo.Engine.repaired ~targets
          with
          | Ok Echo.Engine.Already_consistent -> ()
          | Ok o ->
            Alcotest.failf "second enforce not a no-op: %s"
              (Format.asprintf "%a" Echo.Engine.pp_outcome o)
          | Error e -> Alcotest.fail e)
        | Ok o ->
          Alcotest.failf "expected repair: %s"
            (Format.asprintf "%a" Echo.Engine.pp_outcome o)
        | Error e -> Alcotest.fail e
      end
  done;
  Alcotest.(check bool) "exercised at least one state" true (!exercised > 0)

(* ------------------------------------------------------------------ *)
(* Primitive domains (QVT-R spec)                                      *)

let prim_trans =
  Qvtr.Parser.parse_exn
    {|
transformation T(cf1 : CF, fm : FM) {
  top relation R {
    n : String;
    domain cf1 x : Feature { name = n };
    domain fm y : Feature { };
    where { Flagged(y, n); }
    dependencies { cf1 -> fm; }
  }
  // a relation with one model domain and one primitive (value) domain:
  // checks that the fm feature carries the passed name
  relation Flagged {
    m : String;
    primitive domain v : String;
    domain fm z : Feature { name = m };
    where { m = v }
  }
}
|}

let test_primitive_domain_parse () =
  let flagged = List.nth prim_trans.Qvtr.Ast.t_relations 1 in
  Alcotest.(check int) "one primitive domain" 1 (List.length flagged.Qvtr.Ast.r_prims);
  (match flagged.Qvtr.Ast.r_prims with
  | [ { Qvtr.Ast.v_name = v; v_type = Qvtr.Ast.T_string; v_loc = _ } ] ->
    Alcotest.(check string) "named v" "v" (I.name v)
  | _ -> Alcotest.fail "unexpected primitive domain");
  (* printer round-trip *)
  match Qvtr.Parser.parse (Qvtr.Parser.to_string prim_trans) with
  | Ok t ->
    Alcotest.(check bool) "round-trip" true
      (Qvtr.Ast.strip_locs t = Qvtr.Ast.strip_locs prim_trans)
  | Error e -> Alcotest.failf "round-trip: %s" e

let test_primitive_domain_typecheck () =
  (match Qvtr.Typecheck.check prim_trans ~metamodels:F.metamodels with
  | Ok _ -> ()
  | Error errs ->
    Alcotest.failf "should typecheck: %s"
      (String.concat "; "
         (List.map (fun e -> Format.asprintf "%a" Qvtr.Typecheck.pp_error e) errs)));
  (* top relation with primitive domain is rejected *)
  let bad_top =
    Qvtr.Parser.parse_exn
      {|
transformation T(cf1 : CF, fm : FM) {
  top relation R {
    n : String;
    primitive domain v : String;
    domain cf1 x : Feature { name = n };
    domain fm y : Feature { name = n };
  }
}
|}
  in
  (match Qvtr.Typecheck.check bad_top ~metamodels:F.metamodels with
  | Ok _ -> Alcotest.fail "top relation with primitive domain must be rejected"
  | Error _ -> ());
  (* wrong arity: missing the primitive argument *)
  let bad_arity =
    Qvtr.Parser.parse_exn
      {|
transformation T(cf1 : CF, fm : FM) {
  top relation R {
    n : String;
    domain cf1 x : Feature { name = n };
    domain fm y : Feature { };
    where { Flagged(y); }
    dependencies { cf1 -> fm; }
  }
  relation Flagged {
    m : String;
    primitive domain v : String;
    domain fm z : Feature { name = m };
    where { m = v }
  }
}
|}
  in
  match Qvtr.Typecheck.check bad_arity ~metamodels:F.metamodels with
  | Ok _ -> Alcotest.fail "missing primitive argument must be rejected"
  | Error _ -> ()

let test_primitive_domain_semantics () =
  (* R says: every cf feature has an fm counterpart whose name equals
     the passed value (= the cf feature's name) *)
  let run cf_names fm_names =
    let models =
      F.bind
        ~cfs:[ F.configuration ~name:"cf1" cf_names ]
        ~fm:(F.feature_model ~name:"fm" (List.map (fun n -> (n, false)) fm_names))
    in
    (Qvtr.Check.run_exn prim_trans ~metamodels:F.metamodels ~models)
      .Qvtr.Check.consistent
  in
  Alcotest.(check bool) "matching names pass" true (run [ "A" ] [ "A" ]);
  Alcotest.(check bool) "superset fm passes" true (run [ "A" ] [ "A"; "B" ]);
  Alcotest.(check bool) "missing name fails" false (run [ "A" ] [ "B" ])

let suite =
  [
    Alcotest.test_case "int comparison semantics" `Quick test_int_comparison_semantics;
    Alcotest.test_case "int comparison parsing" `Quick test_int_comparison_parsing;
    Alcotest.test_case "int comparison typing" `Quick test_int_comparison_typing;
    Alcotest.test_case "int comparison repair" `Quick test_int_comparison_repair;
    Alcotest.test_case "witnesses in reports" `Quick test_witness_in_report;
    Alcotest.test_case "no witnesses when consistent" `Quick test_witness_none_when_consistent;
    Alcotest.test_case "relog counterexample" `Quick test_counterexample_direct;
    Alcotest.test_case "all minimal repairs" `Quick test_enforce_all_three_minima;
    Alcotest.test_case "enforce_all cannot restore" `Quick test_enforce_all_cannot;
    Alcotest.test_case "enforce_all already consistent" `Quick test_enforce_all_consistent;
    Alcotest.test_case "enforce_all limit" `Quick test_enforce_all_limit;
    Alcotest.test_case "symmetry dedup" `Quick test_enforce_all_symmetry_dedup;
    Alcotest.test_case "repair idempotent (hippocratic)" `Slow test_repair_idempotent;
    Alcotest.test_case "primitive domain parsing" `Quick test_primitive_domain_parse;
    Alcotest.test_case "primitive domain typechecking" `Quick
      test_primitive_domain_typecheck;
    Alcotest.test_case "primitive domain semantics" `Quick
      test_primitive_domain_semantics;
  ]

(* ------------------------------------------------------------------ *)
(* Traces                                                              *)

let test_traces () =
  let trans = F.transformation ~k:2 in
  let cfs =
    [ F.configuration ~name:"cf1" [ "A"; "B" ]; F.configuration ~name:"cf2" [ "A" ] ]
  in
  let fm = F.feature_model ~name:"fm" [ ("A", true); ("B", false) ] in
  match Qvtr.Check.traces trans ~metamodels:F.metamodels ~models:(F.bind ~cfs ~fm) with
  | Error e -> Alcotest.fail e
  | Ok ts ->
    let mf = List.filter (fun t -> I.name t.Qvtr.Check.tr_relation = "MF") ts in
    let of_ = List.filter (fun t -> I.name t.Qvtr.Check.tr_relation = "OF") ts in
    (* MF matches: the shared mandatory feature A across (cf1#A, cf2#A, fm#A) *)
    Alcotest.(check int) "one MF match" 1 (List.length mf);
    (match mf with
    | [ t ] ->
      let atoms = List.map (fun (_, a) -> I.name a) t.Qvtr.Check.tr_roots in
      Alcotest.(check (list string)) "MF roots"
        [ "cf1#0"; "cf2#0"; "fm#0" ] atoms
    | _ -> Alcotest.fail "expected one MF trace");
    (* OF matches: (cf1#A, cf2#A, fm#A). B is only in cf1, so no pair
       (s1, s2) shares it; the rendered traces parse as text too *)
    Alcotest.(check int) "one OF match" 1 (List.length of_);
    List.iter
      (fun t ->
        let rendered = Format.asprintf "%a" Qvtr.Check.pp_trace t in
        Alcotest.(check bool) "renders" true (String.length rendered > 0))
      ts

let test_traces_empty_when_inconsistent_parts () =
  (* traces are matches, independent of overall consistency *)
  let trans = F.transformation ~k:2 in
  let cfs = [ F.configuration ~name:"cf1" []; F.configuration ~name:"cf2" [] ] in
  let fm = F.feature_model ~name:"fm" [ ("A", true) ] in
  match Qvtr.Check.traces trans ~metamodels:F.metamodels ~models:(F.bind ~cfs ~fm) with
  | Error e -> Alcotest.fail e
  | Ok ts -> Alcotest.(check int) "no matches" 0 (List.length ts)

let suite =
  suite
  @ [
      Alcotest.test_case "traces" `Quick test_traces;
      Alcotest.test_case "traces on empty models" `Quick
        test_traces_empty_when_inconsistent_parts;
    ]

(* ------------------------------------------------------------------ *)
(* Multi-valued attribute patterns                                     *)

let test_multivalued_attr_pattern () =
  (* a pattern on a [0..*] attribute is membership, not equality *)
  let mm =
    MM.make_exn ~name:"TagDb"
      [
        MM.cls "Item"
          ~attrs:
            [ MM.attr ~key:true "id" MM.P_string;
              MM.attr ~mult:MM.mult_many "tags" MM.P_string ];
      ]
  in
  let mms = [ (I.make "TagDb", mm) ] in
  let trans =
    Qvtr.Parser.parse_exn
      {|
transformation T(a : TagDb, b : TagDb) {
  top relation SharedTag {
    i : String;
    t : String;
    domain a x : Item { id = i, tags = t };
    domain b y : Item { id = i, tags = t };
    dependencies { a -> b; }
  }
}
|}
  in
  let item name tags m =
    let m, id = Mdl.Model.add_object m ~cls:(I.make "Item") in
    let m = Mdl.Model.set_attr1 m id (I.make "id") (Mdl.Value.Str name) in
    Mdl.Model.set_attr m id (I.make "tags") (List.map (fun t -> Mdl.Value.Str t) tags)
  in
  let db name items =
    List.fold_left (fun m (n, tags) -> item n tags m) (Mdl.Model.empty ~name mm) items
  in
  let check a b =
    (Qvtr.Check.run_exn trans ~metamodels:mms
       ~models:[ (I.make "a", db "a" a); (I.make "b", db "b" b) ])
      .Qvtr.Check.consistent
  in
  (* direction a -> b: every (item, tag) of a must appear on the
     same-id item in b; b may have extra tags *)
  Alcotest.(check bool) "subset of tags passes" true
    (check [ ("i1", [ "x" ]) ] [ ("i1", [ "x"; "y" ]) ]);
  Alcotest.(check bool) "missing tag fails" false
    (check [ ("i1", [ "x"; "z" ]) ] [ ("i1", [ "x" ]) ]);
  Alcotest.(check bool) "no tags trivially passes" true
    (check [ ("i1", []) ] [ ("i1", [ "q" ]) ])

let suite =
  suite
  @ [ Alcotest.test_case "multi-valued attribute patterns" `Quick
        test_multivalued_attr_pattern ]

(* ------------------------------------------------------------------ *)
(* Diagnosis                                                           *)

let test_diagnose_cannot_restore () =
  (* new-mandatory-feature, repairing cf1 only: the MF fm->cf2
     direction is unsatisfiable (cf2 frozen, missing N), which is
     exactly why enforcement reports Cannot_restore *)
  let trans = F.transformation ~k:2 in
  let s = Featuremodel.Scenarios.new_mandatory_feature in
  match
    Echo.Engine.diagnose trans ~metamodels:F.metamodels
      ~models:
        (F.bind ~cfs:s.Featuremodel.Scenarios.cfs ~fm:s.Featuremodel.Scenarios.fm)
      ~targets:(Echo.Target.single "cf1")
  with
  | Error e -> Alcotest.fail e
  | Ok ds ->
    let unsat =
      List.filter (fun d -> not d.Echo.Engine.d_satisfiable) ds
    in
    Alcotest.(check int) "exactly one obstruction" 1 (List.length unsat);
    (match unsat with
    | [ d ] ->
      Alcotest.(check string) "it is MF" "MF" (I.name d.Echo.Engine.d_relation);
      Alcotest.(check string) "towards the frozen cf2" "cf2"
        (I.name d.Echo.Engine.d_direction.Qvtr.Ast.dep_target)
    | _ -> Alcotest.fail "expected one diagnosis");
    (* rendering *)
    List.iter
      (fun d ->
        Alcotest.(check bool) "renders" true
          (String.length (Format.asprintf "%a" Echo.Engine.pp_diagnosis d) > 0))
      ds

let test_diagnose_all_satisfiable () =
  (* with all models mutable, every direction is individually fine *)
  let trans = F.transformation ~k:2 in
  let s = Featuremodel.Scenarios.new_mandatory_feature in
  match
    Echo.Engine.diagnose trans ~metamodels:F.metamodels
      ~models:
        (F.bind ~cfs:s.Featuremodel.Scenarios.cfs ~fm:s.Featuremodel.Scenarios.fm)
      ~targets:(Echo.Target.of_list [ "cf1"; "cf2"; "fm" ])
  with
  | Error e -> Alcotest.fail e
  | Ok ds ->
    Alcotest.(check bool) "all satisfiable" true
      (List.for_all (fun d -> d.Echo.Engine.d_satisfiable) ds)

let suite =
  suite
  @ [
      Alcotest.test_case "diagnose cannot-restore" `Quick test_diagnose_cannot_restore;
      Alcotest.test_case "diagnose all-satisfiable" `Quick test_diagnose_all_satisfiable;
    ]

(* ------------------------------------------------------------------ *)
(* Hierarchy (feature-tree) relations with allInstances guards         *)

let tree_mms =
  match
    Mdl.Serialize.parse_metamodels
      {|
metamodel FMT {
  class Feature {
    attr name : string key;
    attr mandatory : bool;
    ref parent : Feature [0..1];
  }
}
metamodel CFT { class Feature { attr name : string key; } }
|}
  with
  | Ok l -> List.map (fun mm -> (Mdl.Metamodel.name mm, mm)) l
  | Error e -> failwith e

let tree_trans =
  Qvtr.Parser.parse_exn
    {|
transformation T(cf1 : CFT, fm : FMT) {
  top relation Parent1 {
    n : String;
    pn : String;
    domain fm c : Feature { name = n, parent = p : Feature { name = pn } };
    domain cf1 q : Feature { name = pn };
    when { n in Feature@cf1.name }
    dependencies { fm -> cf1; }
  }
}
|}

let tree_fm features =
  let fmt = List.assoc (I.make "FMT") tree_mms in
  let m, ids =
    List.fold_left
      (fun (m, ids) (n, parent) ->
        let m, id = Mdl.Model.add_object m ~cls:(I.make "Feature") in
        let m = Mdl.Model.set_attr1 m id (I.make "name") (Mdl.Value.Str n) in
        let m = Mdl.Model.set_attr1 m id (I.make "mandatory") (Mdl.Value.Bool false) in
        (m, (n, id, parent) :: ids))
      (Mdl.Model.empty ~name:"fm" fmt, [])
      features
  in
  List.fold_left
    (fun m (_, id, parent) ->
      match parent with
      | None -> m
      | Some p ->
        let pid =
          match List.find_opt (fun (n, _, _) -> n = p) ids with
          | Some (_, pid, _) -> pid
          | None -> failwith "parent not declared"
        in
        Mdl.Model.add_ref m ~src:id ~ref_:(I.make "parent") ~dst:pid)
    m ids

let tree_cf selected =
  let cft = List.assoc (I.make "CFT") tree_mms in
  List.fold_left
    (fun m n ->
      let m, id = Mdl.Model.add_object m ~cls:(I.make "Feature") in
      Mdl.Model.set_attr1 m id (I.make "name") (Mdl.Value.Str n))
    (Mdl.Model.empty ~name:"cf1" cft)
    selected

let tree_check fm cf =
  (Qvtr.Check.run_exn tree_trans ~metamodels:tree_mms
     ~models:[ (I.make "cf1", tree_cf cf); (I.make "fm", tree_fm fm) ])
    .Qvtr.Check.consistent

let test_hierarchy_relation () =
  let fm = [ ("base", None); ("net", Some "base"); ("wifi", Some "net") ] in
  Alcotest.(check bool) "closed selection passes" true
    (tree_check fm [ "base"; "net"; "wifi" ]);
  Alcotest.(check bool) "parent-only passes" true (tree_check fm [ "base" ]);
  Alcotest.(check bool) "empty passes" true (tree_check fm []);
  Alcotest.(check bool) "child without parent fails" false
    (tree_check fm [ "base"; "wifi" ]);
  Alcotest.(check bool) "mid-level child without root fails" false
    (tree_check fm [ "net" ]);
  (* features unknown to the fm cannot violate the hierarchy *)
  Alcotest.(check bool) "foreign selection ignored by Parent1" true
    (tree_check fm [ "alien" ])

let suite =
  suite
  @ [ Alcotest.test_case "hierarchy via allInstances guard" `Quick
        test_hierarchy_relation ]
