(* Tests for Qvtr.Typecheck: pattern/predicate typing and the §2.3
   call-direction compatibility rules. *)

module P = Qvtr.Parser
module TC = Qvtr.Typecheck
module A = Qvtr.Ast
module MM = Mdl.Metamodel
module I = Mdl.Ident

let mma =
  MM.make_exn ~name:"A"
    ~enums:[ MM.enum_decl "Color" [ "red"; "blue" ] ]
    [
      MM.cls "C"
        ~attrs:
          [
            MM.attr "name" MM.P_string;
            MM.attr "count" MM.P_int;
            MM.attr "color" (MM.P_enum (I.make "Color"));
          ]
        ~refs:[ MM.ref_ "child" ~target:"K" ];
      MM.cls "K" ~attrs:[ MM.attr "age" MM.P_int ];
    ]

let mmb =
  MM.make_exn ~name:"B"
    [ MM.cls "D" ~attrs:[ MM.attr "name" MM.P_string ] ]

let metamodels = [ (I.make "A", mma); (I.make "B", mmb) ]

let check src = TC.check (P.parse_exn src) ~metamodels

let expect_ok src =
  match check src with
  | Ok _ -> ()
  | Error errs ->
    Alcotest.failf "unexpected errors: %s"
      (String.concat "; " (List.map (fun e -> Format.asprintf "%a" TC.pp_error e) errs))

let expect_err ~containing src =
  match check src with
  | Ok _ -> Alcotest.failf "expected error containing %S" containing
  | Error errs ->
    let all = String.concat "; " (List.map (fun e -> Format.asprintf "%a" TC.pp_error e) errs) in
    let n = String.length containing and m = String.length all in
    let rec go i = i + n <= m && (String.sub all i n = containing || go (i + 1)) in
    if not (go 0) then
      Alcotest.failf "errors %S do not mention %S" all containing

let test_well_typed () =
  expect_ok
    {|
transformation T(a : A, b : B) {
  top relation R {
    n : String;
    domain a x : C { name = n, count = 3, color = #red, child = y : K { age = 1 } };
    domain b z : D { name = n };
    where { x.name = z.name }
  }
}
|}

let test_unknown_metamodel () =
  expect_err ~containing:"unknown metamodel"
    {|
transformation T(a : Nope, b : B) {
  top relation R {
    n : String;
    domain a x : C { name = n };
    domain b z : D { name = n };
  }
}
|}

let test_unknown_class () =
  expect_err ~containing:"unknown class"
    {|
transformation T(a : A, b : B) {
  top relation R {
    n : String;
    domain a x : Ghost { name = n };
    domain b z : D { name = n };
  }
}
|}

let test_unknown_feature () =
  expect_err ~containing:"no feature"
    {|
transformation T(a : A, b : B) {
  top relation R {
    n : String;
    domain a x : C { ghost = n };
    domain b z : D { name = n };
  }
}
|}

let test_attr_type_mismatch () =
  expect_err ~containing:"expects"
    {|
transformation T(a : A, b : B) {
  top relation R {
    n : String;
    domain a x : C { count = n };
    domain b z : D { name = n };
  }
}
|}

let test_unbound_var () =
  expect_err ~containing:"unbound variable"
    {|
transformation T(a : A, b : B) {
  top relation R {
    n : String;
    domain a x : C { name = n };
    domain b z : D { name = n };
    where { ghost.name = n }
  }
}
|}

let test_nav_through_ref () =
  expect_ok
    {|
transformation T(a : A, b : B) {
  top relation R {
    n : String;
    k : Integer;
    domain a x : C { name = n };
    domain b z : D { name = n };
    where { x.child.age = k }
  }
}
|}

let test_nav_on_prim () =
  expect_err ~containing:"non-object"
    {|
transformation T(a : A, b : B) {
  top relation R {
    n : String;
    domain a x : C { name = n };
    domain b z : D { name = n };
    where { x.name.huh = n }
  }
}
|}

let test_incompatible_comparison () =
  expect_err ~containing:"incompatible"
    {|
transformation T(a : A, b : B) {
  top relation R {
    n : String;
    domain a x : C { name = n };
    domain b z : D { name = n };
    where { x.count = x.name }
  }
}
|}

let test_call_arity_and_types () =
  expect_err ~containing:"expects 2 arguments"
    {|
transformation T(a : A, b : B) {
  top relation R {
    n : String;
    domain a x : C { name = n };
    domain b z : D { name = n };
    where { H(x) }
  }
  relation H {
    s : String;
    domain a p : C { name = s };
    domain b q : D { name = s };
  }
}
|};
  expect_err ~containing:"expected"
    {|
transformation T(a : A, b : B) {
  top relation R {
    n : String;
    domain a x : C { name = n };
    domain b z : D { name = n };
    where { H(z, x) }
  }
  relation H {
    s : String;
    domain a p : C { name = s };
    domain b q : D { name = s };
  }
}
|}

let test_call_direction_ok () =
  (* callee runnable in both directions the caller needs *)
  expect_ok
    {|
transformation T(a : A, b : B) {
  top relation R {
    n : String;
    domain a x : C { name = n };
    domain b z : D { name = n };
    where { H(x, z) }
    dependencies { a -> b; b -> a; }
  }
  relation H {
    s : String;
    domain a p : C { name = s };
    domain b q : D { name = s };
    dependencies { a -> b; b -> a; }
  }
}
|}

let test_call_direction_violation () =
  (* caller needs b -> a but callee only supports a -> b: the paper's
     §2.3 typing error *)
  expect_err ~containing:"cannot run in direction"
    {|
transformation T(a : A, b : B) {
  top relation R {
    n : String;
    domain a x : C { name = n };
    domain b z : D { name = n };
    where { H(x, z) }
    dependencies { a -> b; b -> a; }
  }
  relation H {
    s : String;
    domain a p : C { name = s };
    domain b q : D { name = s };
    dependencies { a -> b; }
  }
}
|}

let test_call_direction_entailed () =
  (* the callee entails the projected direction through a chain (§2.3:
     {M1->M2, M2->M3} |- M1->M3 with three domains) *)
  expect_ok
    {|
transformation T(a : A, b : B, c : B) {
  top relation R {
    n : String;
    domain a x : C { name = n };
    domain b z : D { name = n };
    domain c w : D { name = n };
    where { H(x, z, w) }
    dependencies { a -> c; }
  }
  relation H {
    s : String;
    domain a p : C { name = s };
    domain b q : D { name = s };
    domain c r : D { name = s };
    dependencies { a -> b; b -> c; }
  }
}
|}

let test_when_call_reads_targets () =
  expect_err ~containing:"when-call"
    {|
transformation T(a : A, b : B) {
  top relation R {
    n : String;
    domain a x : C { name = n };
    domain b z : D { name = n };
    when { H(x, z) }
    dependencies { a -> b; }
  }
  relation H {
    s : String;
    domain a p : C { name = s };
    domain b q : D { name = s };
    dependencies { a -> b; b -> a; }
  }
}
|}

let test_recursion_rejected () =
  expect_err ~containing:"recursively"
    {|
transformation T(a : A, b : B) {
  top relation R {
    n : String;
    domain a x : C { name = n };
    domain b z : D { name = n };
    where { R(x, z) }
  }
}
|}

let test_recursion_allowed_flag () =
  let src =
    {|
transformation T(a : A, b : B) {
  top relation R {
    n : String;
    domain a x : C { name = n };
    domain b z : D { name = n };
    where { R(x, z) }
  }
}
|}
  in
  match TC.check ~allow_recursion:true (P.parse_exn src) ~metamodels with
  | Ok _ -> ()
  | Error errs ->
    Alcotest.failf "allow_recursion should pass: %s"
      (String.concat "; " (List.map (fun e -> Format.asprintf "%a" TC.pp_error e) errs))

let test_duplicate_domain () =
  expect_err ~containing:"duplicate domain"
    {|
transformation T(a : A, b : B) {
  top relation R {
    n : String;
    domain a x : C { name = n };
    domain a y : C { name = n };
  }
}
|}

let test_single_domain_rejected () =
  expect_err ~containing:"at least two"
    {|
transformation T(a : A, b : B) {
  top relation R {
    n : String;
    domain a x : C { name = n };
  }
}
|}

let test_bad_dependency () =
  expect_err ~containing:"not a domain"
    {|
transformation T(a : A, b : B) {
  top relation R {
    n : String;
    domain a x : C { name = n };
    domain b z : D { name = n };
    dependencies { a -> zz; }
  }
}
|}

let test_infer_oexpr () =
  let src =
    {|
transformation T(a : A, b : B) {
  top relation R {
    n : String;
    domain a x : C { name = n };
    domain b z : D { name = n };
  }
}
|}
  in
  match TC.check (P.parse_exn src) ~metamodels with
  | Error _ -> Alcotest.fail "should type-check"
  | Ok info ->
    let infer e = TC.infer_oexpr info (I.make "R") e in
    Alcotest.(check bool) "var type" true (infer (A.O_var (I.make "x")) = Ok (A.T_class (I.make "a", I.make "C")));
    Alcotest.(check bool) "nav attr" true
      (infer (A.O_nav (A.O_var (I.make "x"), I.make "count")) = Ok A.T_int);
    Alcotest.(check bool) "nav ref" true
      (infer (A.O_nav (A.O_var (I.make "x"), I.make "child"))
      = Ok (A.T_class (I.make "a", I.make "K")));
    Alcotest.(check bool) "enum literal" true
      (infer (A.O_enum (I.make "red")) = Ok (A.T_enum (I.make "Color")));
    Alcotest.(check bool) "unknown literal" true
      (Result.is_error (infer (A.O_enum (I.make "magenta"))))

let suite =
  [
    Alcotest.test_case "well-typed" `Quick test_well_typed;
    Alcotest.test_case "unknown metamodel" `Quick test_unknown_metamodel;
    Alcotest.test_case "unknown class" `Quick test_unknown_class;
    Alcotest.test_case "unknown feature" `Quick test_unknown_feature;
    Alcotest.test_case "attribute type mismatch" `Quick test_attr_type_mismatch;
    Alcotest.test_case "unbound variable" `Quick test_unbound_var;
    Alcotest.test_case "navigation through reference" `Quick test_nav_through_ref;
    Alcotest.test_case "navigation on primitive" `Quick test_nav_on_prim;
    Alcotest.test_case "incompatible comparison" `Quick test_incompatible_comparison;
    Alcotest.test_case "call arity and arg types" `Quick test_call_arity_and_types;
    Alcotest.test_case "call direction ok" `Quick test_call_direction_ok;
    Alcotest.test_case "call direction violation (paper 2.3)" `Quick test_call_direction_violation;
    Alcotest.test_case "call direction entailed" `Quick test_call_direction_entailed;
    Alcotest.test_case "when-call reading targets" `Quick test_when_call_reads_targets;
    Alcotest.test_case "recursion rejected" `Quick test_recursion_rejected;
    Alcotest.test_case "recursion allowed by flag" `Quick test_recursion_allowed_flag;
    Alcotest.test_case "duplicate domain" `Quick test_duplicate_domain;
    Alcotest.test_case "single domain rejected" `Quick test_single_domain_rejected;
    Alcotest.test_case "bad dependency" `Quick test_bad_dependency;
    Alcotest.test_case "infer_oexpr" `Quick test_infer_oexpr;
  ]
