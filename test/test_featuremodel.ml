(* Tests for the featuremodel domain library: builders, oracles,
   generators, scenarios, and the generated QVT-R source. *)

module F = Featuremodel.Fm
module G = Featuremodel.Gen
module S = Featuremodel.Scenarios

let test_builders_roundtrip () =
  let fm = F.feature_model ~name:"fm" [ ("A", true); ("B", false) ] in
  Alcotest.(check (list (pair string bool))) "fm features"
    [ ("A", true); ("B", false) ]
    (F.fm_features fm);
  let cf = F.configuration ~name:"cf" [ "B"; "A" ] in
  Alcotest.(check (list string)) "cf features sorted" [ "A"; "B" ] (F.cf_features cf);
  Alcotest.(check bool) "models conform" true
    (Mdl.Conformance.conforms fm && Mdl.Conformance.conforms cf)

let test_oracles () =
  let c = F.configuration ~name:"c" in
  let fm = F.feature_model ~name:"fm" [ ("A", true); ("B", false) ] in
  Alcotest.(check bool) "consistent case" true
    (F.consistent ~cfs:[ c [ "A"; "B" ]; c [ "A" ] ] ~fm);
  Alcotest.(check bool) "mandatory missing in one cf" false
    (F.consistent_mf ~cfs:[ c [ "A" ]; c [] ] ~fm);
  Alcotest.(check bool) "shared optional must be mandatory" false
    (F.consistent_mf ~cfs:[ c [ "A"; "B" ]; c [ "A"; "B" ] ] ~fm);
  Alcotest.(check bool) "unknown selection violates OF" false
    (F.consistent_of ~cfs:[ c [ "Z" ]; c [] ] ~fm);
  Alcotest.(check bool) "OF allows subset" true
    (F.consistent_of ~cfs:[ c [ "B" ]; c [] ] ~fm)

let test_transformation_shape () =
  let t = F.transformation ~k:3 in
  Alcotest.(check int) "k+1 parameters" 4 (List.length t.Qvtr.Ast.t_params);
  Alcotest.(check int) "two relations" 2 (List.length t.Qvtr.Ast.t_relations);
  let mf = List.hd t.Qvtr.Ast.t_relations in
  Alcotest.(check int) "MF deps: 1 + k" 4 (List.length mf.Qvtr.Ast.r_deps);
  let std = F.transformation_standard ~k:3 in
  Alcotest.(check bool) "standard variant drops deps" true
    (List.for_all (fun r -> r.Qvtr.Ast.r_deps = []) std.Qvtr.Ast.t_relations);
  match F.transformation ~k:0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "k = 0 must raise"

let test_transformation_typechecks () =
  List.iter
    (fun k ->
      match Qvtr.Typecheck.check (F.transformation ~k) ~metamodels:F.metamodels with
      | Ok _ -> ()
      | Error errs ->
        Alcotest.failf "k=%d: %s" k
          (String.concat "; "
             (List.map (fun e -> Format.asprintf "%a" Qvtr.Typecheck.pp_error e) errs)))
    [ 1; 2; 5 ]

let test_generators_consistent () =
  let rng = G.rng 11 in
  for _ = 1 to 30 do
    let cfs, fm = G.consistent_state rng ~k:3 ~n_features:4 in
    if not (F.consistent ~cfs ~fm) then
      Alcotest.failf "generator produced inconsistent state: %s | %s"
        (String.concat " + " (List.map (fun c -> String.concat "," (F.cf_features c)) cfs))
        (String.concat ","
           (List.map (fun (n, m) -> if m then n ^ "!" else n) (F.fm_features fm)))
  done

let test_perturbations_break_consistency () =
  let rng = G.rng 13 in
  let broke = ref 0 and total = ref 0 in
  for _ = 1 to 30 do
    let state = G.consistent_state rng ~k:2 ~n_features:4 in
    match G.random_perturbation rng state with
    | None -> ()
    | Some p ->
      incr total;
      let cfs, fm = G.apply_perturbation state p in
      if not (F.consistent ~cfs ~fm) then incr broke
  done;
  (* Drop_selection of a feature may keep consistency only if the
     intersection stays equal — impossible since the dropped feature is
     mandatory; all four perturbations must break consistency. *)
  Alcotest.(check int) "every perturbation breaks consistency" !total !broke

let test_all_generators_exhaustive () =
  Alcotest.(check int) "2^2 subsets" 4 (List.length (G.all_subsets [ 1; 2 ]));
  Alcotest.(check int) "all cfs over 2 names" 4 (List.length (G.all_cfs [ "A"; "B" ]));
  (* fms: each subset with each flag assignment: sum C(2,i) 2^i = 1+4+4 = 9 *)
  Alcotest.(check int) "all fms over 2 names" 9 (List.length (G.all_fms [ "A"; "B" ]))

let test_scenarios_are_inconsistent () =
  List.iter
    (fun (s : S.t) ->
      Alcotest.(check bool)
        (s.S.s_name ^ " starts inconsistent")
        false
        (F.consistent ~cfs:s.S.cfs ~fm:s.S.fm))
    S.all

let test_scenarios_check_agree () =
  (* the compiled checking semantics agrees with the oracle on every
     scenario state *)
  let trans = F.transformation ~k:2 in
  List.iter
    (fun (s : S.t) ->
      let report =
        Qvtr.Check.run_exn trans ~metamodels:F.metamodels
          ~models:(F.bind ~cfs:s.S.cfs ~fm:s.S.fm)
      in
      Alcotest.(check bool) (s.S.s_name ^ " check = oracle")
        (F.consistent ~cfs:s.S.cfs ~fm:s.S.fm)
        report.Qvtr.Check.consistent)
    S.all

let test_source_generator () =
  let src = F.source ~k:2 in
  match Qvtr.Parser.parse src with
  | Ok t ->
    Alcotest.(check bool) "parses to builder AST" true
      (Qvtr.Ast.strip_locs t = F.transformation ~k:2)
  | Error e -> Alcotest.failf "generated source does not parse: %s\n%s" e src

let prop_random_states_check_equals_oracle =
  QCheck.Test.make ~name:"compiled check = set oracle on random states" ~count:60
    QCheck.small_int (fun seed ->
      let rng = G.rng seed in
      let pool = G.feature_names 3 in
      let cfs =
        [ Mdl.Model.set_name (G.random_cf rng ~pool) "cf1";
          Mdl.Model.set_name (G.random_cf rng ~pool) "cf2" ]
      in
      let fm = G.random_fm rng ~pool in
      let trans = F.transformation ~k:2 in
      let report =
        Qvtr.Check.run_exn trans ~metamodels:F.metamodels ~models:(F.bind ~cfs ~fm)
      in
      report.Qvtr.Check.consistent = F.consistent ~cfs ~fm)

let suite =
  [
    Alcotest.test_case "builders round-trip" `Quick test_builders_roundtrip;
    Alcotest.test_case "set-level oracles" `Quick test_oracles;
    Alcotest.test_case "transformation shape" `Quick test_transformation_shape;
    Alcotest.test_case "transformation typechecks" `Quick test_transformation_typechecks;
    Alcotest.test_case "generated states consistent" `Quick test_generators_consistent;
    Alcotest.test_case "perturbations break consistency" `Quick
      test_perturbations_break_consistency;
    Alcotest.test_case "exhaustive generators" `Quick test_all_generators_exhaustive;
    Alcotest.test_case "scenarios inconsistent" `Quick test_scenarios_are_inconsistent;
    Alcotest.test_case "scenarios check = oracle" `Quick test_scenarios_check_agree;
    Alcotest.test_case "source generator" `Quick test_source_generator;
    QCheck_alcotest.to_alcotest prop_random_states_check_equals_oracle;
  ]
