(* Tests for Qvtr.Encode: the relational encoding of models, bounds
   construction, structural constraints and decoding. *)

module E = Qvtr.Encode
module F = Featuremodel.Fm
module I = Mdl.Ident
module TS = Relog.Rel.Tupleset

let setup ?(slack = 2) cfs fm =
  let trans = F.transformation ~k:(List.length cfs) in
  match
    E.create ~transformation:trans ~metamodels:F.metamodels ~models:(F.bind ~cfs ~fm)
      ~slack_objects:slack ()
  with
  | Ok enc -> enc
  | Error e -> Alcotest.failf "encode: %s" e

let test_universe_contents () =
  let cfs = [ F.configuration ~name:"cf1" [ "A" ]; F.configuration ~name:"cf2" [] ] in
  let fm = F.feature_model ~name:"fm" [ ("A", true) ] in
  let enc = setup ~slack:1 cfs fm in
  let u = E.universe enc in
  (* objects: 1 + 0 + 1; slack: 3 (one per model); values: "A", true,
     false *)
  Alcotest.(check int) "universe size" 8 (Relog.Rel.Universe.size u);
  Alcotest.(check bool) "object atom named" true
    (Relog.Rel.Universe.mem u (E.obj_atom_name (I.make "cf1") 0))

let test_check_instance () =
  let cfs =
    [ F.configuration ~name:"cf1" [ "A"; "B" ]; F.configuration ~name:"cf2" [ "A" ] ]
  in
  let fm = F.feature_model ~name:"fm" [ ("A", true) ] in
  let enc = setup cfs fm in
  let inst = E.check_instance enc in
  let get n = Relog.Instance.get inst (I.make n) in
  Alcotest.(check int) "cf1 extent" 2 (TS.cardinal (get "cf1$cls$Feature"));
  Alcotest.(check int) "cf2 extent" 1 (TS.cardinal (get "cf2$cls$Feature"));
  Alcotest.(check int) "fm extent" 1 (TS.cardinal (get "fm$cls$Feature"));
  Alcotest.(check int) "cf1 names" 2 (TS.cardinal (get "cf1$ft$name"));
  Alcotest.(check int) "fm mandatory" 1 (TS.cardinal (get "fm$ft$mandatory"));
  (* value relations *)
  Alcotest.(check bool) "strings tracked" true (TS.cardinal (get "val$string") >= 2);
  Alcotest.(check int) "bools" 2 (TS.cardinal (get "val$bool"))

let test_eval_on_encoding () =
  (* the encoding + extent expressions cooperate with the evaluator *)
  let cfs = [ F.configuration ~name:"cf1" [ "A" ]; F.configuration ~name:"cf2" [ "A" ] ] in
  let fm = F.feature_model ~name:"fm" [ ("A", true) ] in
  let enc = setup cfs fm in
  let inst = E.check_instance enc in
  let ext = E.extent_expr enc ~param:(I.make "cf1") ~cls:(I.make "Feature") in
  Alcotest.(check int) "extent expr evaluates" 1
    (TS.cardinal (Relog.Eval.expr inst Relog.Eval.empty_env ext))

let test_bounds_frozen_vs_target () =
  let cfs = [ F.configuration ~name:"cf1" [ "A" ]; F.configuration ~name:"cf2" [] ] in
  let fm = F.feature_model ~name:"fm" [ ("A", true) ] in
  let enc = setup ~slack:1 cfs fm in
  let bounds = E.bounds enc ~targets:(I.Set.singleton (I.make "cf1")) in
  (* frozen model: exact bounds *)
  (match Relog.Bounds.get bounds (I.make "cf2$cls$Feature") with
  | Some (l, u) -> Alcotest.(check bool) "cf2 exact" true (TS.equal l u)
  | None -> Alcotest.fail "cf2 relation missing");
  (* target model: lower empty, upper covers existing + slack *)
  match Relog.Bounds.get bounds (I.make "cf1$cls$Feature") with
  | Some (l, u) ->
    Alcotest.(check bool) "cf1 lower empty" true (TS.is_empty l);
    Alcotest.(check int) "cf1 upper = existing + slack" 2 (TS.cardinal u)
  | None -> Alcotest.fail "cf1 relation missing"

let test_structural_formulas_accept_current () =
  (* the current (conforming) model satisfies its own structural
     constraints *)
  let cfs = [ F.configuration ~name:"cf1" [ "A" ]; F.configuration ~name:"cf2" [ "B" ] ] in
  let fm = F.feature_model ~name:"fm" [ ("A", true); ("B", false) ] in
  let enc = setup cfs fm in
  let inst = E.check_instance enc in
  List.iter
    (fun p ->
      List.iter
        (fun f ->
          if not (Relog.Eval.holds inst f) then
            Alcotest.failf "structural formula violated for %s: %s" (I.name p)
              (Format.asprintf "%a" Relog.Ast.pp f))
        (E.structural_formulas enc ~param:p))
    (E.params enc)

let test_decode_roundtrip () =
  let cfs = [ F.configuration ~name:"cf1" [ "A"; "B" ]; F.configuration ~name:"cf2" [] ] in
  let fm = F.feature_model ~name:"fm" [ ("A", true) ] in
  let enc = setup cfs fm in
  let inst = E.check_instance enc in
  List.iter
    (fun (p, original) ->
      match E.decode_model enc inst ~param:p with
      | Ok decoded ->
        Alcotest.(check bool)
          (Printf.sprintf "%s decodes to an equal model" (I.name p))
          true
          (Mdl.Model.equal (Mdl.Model.set_name decoded (I.name p)) original)
      | Error e -> Alcotest.failf "decode %s: %s" (I.name p) e)
    (List.map (fun p -> (p, E.model_of_param enc p)) (E.params enc))

let test_binding_errors () =
  let trans = F.transformation ~k:2 in
  let cf = F.configuration ~name:"cf1" [ "A" ] in
  let fm = F.feature_model ~name:"fm" [] in
  (* missing parameter *)
  (match
     E.create ~transformation:trans ~metamodels:F.metamodels
       ~models:[ (I.make "cf1", cf); (I.make "fm", fm) ]
       ()
   with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "missing binding must fail");
  (* model of the wrong metamodel *)
  match
    E.create ~transformation:trans ~metamodels:F.metamodels
      ~models:
        [ (I.make "cf1", cf); (I.make "cf2", Mdl.Model.set_name fm "cf2"); (I.make "fm", fm) ]
      ()
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "mistyped binding must fail"

let test_value_atom_and_types () =
  let cfs = [ F.configuration ~name:"cf1" [ "A" ]; F.configuration ~name:"cf2" [] ] in
  let fm = F.feature_model ~name:"fm" [ ("A", true) ] in
  let enc = setup cfs fm in
  let inst = E.check_instance enc in
  let eval e = Relog.Eval.expr inst Relog.Eval.empty_env e in
  Alcotest.(check int) "literal is singleton" 1
    (TS.cardinal (eval (E.value_atom enc (Mdl.Value.Str "A"))));
  Alcotest.(check int) "bool type set" 2
    (TS.cardinal (eval (E.type_expr enc Qvtr.Ast.T_bool)));
  match E.value_atom enc (Mdl.Value.Str "not-in-universe") with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "foreign value must raise"

let test_extra_values_enlarge_universe () =
  let trans = F.transformation ~k:1 in
  let cf = F.configuration ~name:"cf1" [] in
  let fm = F.feature_model ~name:"fm" [] in
  match
    E.create ~transformation:trans ~metamodels:F.metamodels
      ~models:(F.bind ~cfs:[ cf ] ~fm)
      ~extra_values:[ Mdl.Value.Str "fresh" ] ()
  with
  | Error e -> Alcotest.fail e
  | Ok enc -> (
    match E.value_atom enc (Mdl.Value.Str "fresh") with
    | _ -> ())

let suite =
  [
    Alcotest.test_case "universe contents" `Quick test_universe_contents;
    Alcotest.test_case "check instance" `Quick test_check_instance;
    Alcotest.test_case "eval on encoding" `Quick test_eval_on_encoding;
    Alcotest.test_case "bounds frozen vs target" `Quick test_bounds_frozen_vs_target;
    Alcotest.test_case "structural formulas accept current" `Quick
      test_structural_formulas_accept_current;
    Alcotest.test_case "decode round-trip" `Quick test_decode_roundtrip;
    Alcotest.test_case "binding errors" `Quick test_binding_errors;
    Alcotest.test_case "value atoms and type sets" `Quick test_value_atom_and_types;
    Alcotest.test_case "extra values" `Quick test_extra_values_enlarge_universe;
  ]
