(* Tests for Qvtr.Dependency: Horn entailment (§2.3), derived
   dependency laws (§2.2), validation, and a brute-force cross-check
   of the unit-propagation closure. *)

module D = Qvtr.Dependency
module I = Mdl.Ident

let m1 = I.make "M1"
let m2 = I.make "M2"
let m3 = I.make "M3"
let m4 = I.make "M4"

let test_paper_example () =
  (* {M1->M2, M2->M3} |- M1->M3  (§2.3's example call direction) *)
  let deps = [ D.make ~sources:[ "M1" ] ~target:"M2"; D.make ~sources:[ "M2" ] ~target:"M3" ] in
  Alcotest.(check bool) "transitivity" true
    (D.entails deps (D.make ~sources:[ "M1" ] ~target:"M3"));
  Alcotest.(check bool) "no reverse" false
    (D.entails deps (D.make ~sources:[ "M3" ] ~target:"M1"))

let test_multi_head_law () =
  (* {M1->M2, M1->M3} |- M1 -> M2 M3 (conjunctive heads, §2.2) *)
  let deps = [ D.make ~sources:[ "M1" ] ~target:"M2"; D.make ~sources:[ "M1" ] ~target:"M3" ] in
  Alcotest.(check bool) "conjunctive head" true
    (D.entails_multi deps ~sources:[ m1 ] ~targets:[ m2; m3 ]);
  Alcotest.(check bool) "missing head" false
    (D.entails_multi deps ~sources:[ m1 ] ~targets:[ m2; m4 ])

let test_union_body_law () =
  (* {M1->M3, M2->M3} means M1|M2 -> M3: each disjunct entails *)
  let deps = [ D.make ~sources:[ "M1" ] ~target:"M3"; D.make ~sources:[ "M2" ] ~target:"M3" ] in
  Alcotest.(check bool) "left disjunct" true
    (D.entails deps (D.make ~sources:[ "M1" ] ~target:"M3"));
  Alcotest.(check bool) "right disjunct" true
    (D.entails deps (D.make ~sources:[ "M2" ] ~target:"M3"))

let test_conjunctive_body () =
  let deps = [ D.make ~sources:[ "M1"; "M2" ] ~target:"M3" ] in
  Alcotest.(check bool) "both sources needed" true
    (D.entails deps (D.make ~sources:[ "M1"; "M2" ] ~target:"M3"));
  Alcotest.(check bool) "one source insufficient" false
    (D.entails deps (D.make ~sources:[ "M1" ] ~target:"M3"));
  (* weakening: extra sources are fine *)
  Alcotest.(check bool) "weakening" true
    (D.entails deps (D.make ~sources:[ "M1"; "M2"; "M4" ] ~target:"M3"))

let test_chained_conjunctions () =
  let deps =
    [
      D.make ~sources:[ "M1" ] ~target:"M2";
      D.make ~sources:[ "M1"; "M2" ] ~target:"M3";
      D.make ~sources:[ "M2"; "M3" ] ~target:"M4";
    ]
  in
  Alcotest.(check bool) "cascade" true (D.entails deps (D.make ~sources:[ "M1" ] ~target:"M4"));
  let closure = D.closure deps ~sources:[ m1 ] in
  Alcotest.(check int) "closure covers all" 4 (I.Set.cardinal closure)

let test_standard_set () =
  let deps = D.standard [ m1; m2; m3 ] in
  Alcotest.(check int) "n dependencies" 3 (List.length deps);
  (* every model derivable from the other two *)
  Alcotest.(check bool) "full exchange" true
    (List.for_all
       (fun d -> D.entails deps d)
       [
         D.make ~sources:[ "M1"; "M2" ] ~target:"M3";
         D.make ~sources:[ "M2"; "M3" ] ~target:"M1";
         D.make ~sources:[ "M1"; "M3" ] ~target:"M2";
       ]);
  Alcotest.(check bool) "single source insufficient" false
    (D.entails deps (D.make ~sources:[ "M1" ] ~target:"M3"))

let test_validate () =
  let domains = [ m1; m2 ] in
  Alcotest.(check bool) "ok dependency" true
    (Result.is_ok (D.validate ~domains [ D.make ~sources:[ "M1" ] ~target:"M2" ]));
  Alcotest.(check bool) "empty sources rejected" true
    (Result.is_error
       (D.validate ~domains
          [ { Qvtr.Ast.dep_sources = []; dep_target = m2; dep_loc = Qvtr.Loc.none } ]));
  Alcotest.(check bool) "unknown target rejected" true
    (Result.is_error (D.validate ~domains [ D.make ~sources:[ "M1" ] ~target:"M9" ]));
  Alcotest.(check bool) "unknown source rejected" true
    (Result.is_error (D.validate ~domains [ D.make ~sources:[ "M9" ] ~target:"M2" ]));
  Alcotest.(check bool) "target in sources rejected" true
    (Result.is_error (D.validate ~domains [ D.make ~sources:[ "M1"; "M2" ] ~target:"M2" ]))

let errors_of = function Ok () -> [] | Error errs -> List.map snd errs

let test_validate_duplicates () =
  let domains = [ m1; m2; m3 ] in
  (* exact repetition *)
  let dup =
    [ D.make ~sources:[ "M1" ] ~target:"M2"; D.make ~sources:[ "M1" ] ~target:"M2" ]
  in
  Alcotest.(check int) "exact duplicate rejected" 1 (List.length (errors_of (D.validate ~domains dup)));
  (* source sets compare as sets: order and repetition don't matter *)
  let dup_unordered =
    [
      D.make ~sources:[ "M1"; "M2" ] ~target:"M3";
      D.make ~sources:[ "M2"; "M1"; "M2" ] ~target:"M3";
    ]
  in
  Alcotest.(check int) "unordered duplicate rejected" 1
    (List.length (errors_of (D.validate ~domains dup_unordered)));
  (* same sources, different target: not a duplicate *)
  let ok =
    [ D.make ~sources:[ "M1" ] ~target:"M2"; D.make ~sources:[ "M1" ] ~target:"M3" ]
  in
  Alcotest.(check bool) "different targets ok" true (Result.is_ok (D.validate ~domains ok))

let test_validate_reports_all () =
  let domains = [ m1; m2 ] in
  let deps =
    [
      { Qvtr.Ast.dep_sources = []; dep_target = m2; dep_loc = Qvtr.Loc.none };
      D.make ~sources:[ "M9" ] ~target:"M2";
      D.make ~sources:[ "M1" ] ~target:"M9";
      D.make ~sources:[ "M1"; "M2" ] ~target:"M2";
      D.make ~sources:[ "M1" ] ~target:"M2" (* valid *);
    ]
  in
  let msgs = errors_of (D.validate ~domains deps) in
  Alcotest.(check int) "all four invalid deps reported" 4 (List.length msgs);
  let has affix =
    List.exists
      (fun m ->
        let n = String.length affix and l = String.length m in
        let rec go i = i + n <= l && (String.sub m i n = affix || go (i + 1)) in
        go 0)
      msgs
  in
  Alcotest.(check bool) "empty-source message" true (has "empty source set");
  Alcotest.(check bool) "non-domain source message" true (has "non-domain source");
  Alcotest.(check bool) "unknown-target message" true (has "not a domain");
  Alcotest.(check bool) "target-in-sources message" true (has "among its sources")

let test_effective () =
  let dom m =
    {
      Qvtr.Ast.d_model = m;
      d_template =
        {
          Qvtr.Ast.t_var = I.make "x";
          t_class = I.make "C";
          t_props = [];
          t_loc = Qvtr.Loc.none;
        };
      d_enforceable = true;
      d_loc = Qvtr.Loc.none;
    }
  in
  let rel deps =
    {
      Qvtr.Ast.r_name = I.make "R";
      r_top = true;
      r_vars = [];
      r_prims = [];
      r_domains = [ dom m1; dom m2 ];
      r_when = [];
      r_where = [];
      r_deps = deps;
      r_loc = Qvtr.Loc.none;
    }
  in
  Alcotest.(check int) "empty block -> standard set" 2
    (List.length (D.effective (rel [])));
  Alcotest.(check int) "explicit block kept" 1
    (List.length (D.effective (rel [ D.make ~sources:[ "M1" ] ~target:"M2" ])))

(* brute-force Horn entailment over a 4-atom alphabet *)
let brute_entails deps goal =
  (* D |- S->T iff every superset of S closed under deps contains T;
     equivalently the least fixpoint from S contains T *)
  let atoms = [ m1; m2; m3; m4 ] in
  let holds set d =
    (not (List.for_all (fun s -> List.mem s set) d.Qvtr.Ast.dep_sources))
    || List.mem d.Qvtr.Ast.dep_target set
  in
  let rec fix set =
    let next =
      List.fold_left
        (fun acc d -> if holds acc d then acc else d.Qvtr.Ast.dep_target :: acc)
        set deps
    in
    if List.length next = List.length set then set else fix next
  in
  ignore atoms;
  List.mem goal.Qvtr.Ast.dep_target (fix goal.Qvtr.Ast.dep_sources)

let prop_entailment_vs_brute =
  QCheck.Test.make ~name:"unit propagation matches fixpoint semantics" ~count:300
    QCheck.small_int (fun seed ->
      let rng = Random.State.make [| seed |] in
      let atoms = [| "M1"; "M2"; "M3"; "M4" |] in
      let rand_dep () =
        let target = atoms.(Random.State.int rng 4) in
        let sources =
          List.filter (fun a -> a <> target && Random.State.bool rng) (Array.to_list atoms)
        in
        let sources = if sources = [] then [ List.find (fun a -> a <> target) (Array.to_list atoms) ] else sources in
        D.make ~sources ~target
      in
      let deps = List.init (Random.State.int rng 6) (fun _ -> rand_dep ()) in
      let goal = rand_dep () in
      D.entails deps goal = brute_entails deps goal)

let suite =
  [
    Alcotest.test_case "paper transitivity example" `Quick test_paper_example;
    Alcotest.test_case "multi-head law" `Quick test_multi_head_law;
    Alcotest.test_case "union-body law" `Quick test_union_body_law;
    Alcotest.test_case "conjunctive bodies" `Quick test_conjunctive_body;
    Alcotest.test_case "chained conjunctions" `Quick test_chained_conjunctions;
    Alcotest.test_case "standard dependency set" `Quick test_standard_set;
    Alcotest.test_case "validation" `Quick test_validate;
    Alcotest.test_case "validation: duplicates" `Quick test_validate_duplicates;
    Alcotest.test_case "validation reports all errors" `Quick test_validate_reports_all;
    Alcotest.test_case "effective dependencies" `Quick test_effective;
    QCheck_alcotest.to_alcotest prop_entailment_vs_brute;
  ]
