(* lib/obs: canonical JSON round-trips, metrics registry percentiles,
   span recording, Chrome trace export structure, parent-context
   handoff across Parallel.Pool domains, and the disabled fast path. *)

module J = Obs.Json
module T = Obs.Trace
module M = Obs.Metrics

(* Every recording test owns the global trace state for its duration:
   clear, enable, run, then disable and clear again so the rest of the
   suite (and the bench-style tests) see tracing off. *)
let with_tracing f =
  T.clear ();
  T.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      T.set_enabled false;
      T.clear ())
    f

(* ------------------------------------------------------------------ *)
(* Json                                                                *)

let test_json_roundtrip () =
  let v =
    J.Obj
      [
        ("s", J.String "a\"b\\c\n\t\b\012\r plus \001 control");
        ("l", J.List [ J.Int 1; J.Float 2.5; J.Bool true; J.Null ]);
        ("n", J.Int (-42));
        ("empty", J.Obj []);
      ]
  in
  match J.of_string (J.to_string v) with
  | Ok v' -> Alcotest.(check bool) "round-trips" true (v = v')
  | Error e -> Alcotest.fail ("parse failed: " ^ e)

let test_json_control_escapes () =
  (* \b and \f get their named escapes (the pre-obs emitter forgot
     them); other control chars become \uXXXX. *)
  Alcotest.(check string)
    "escapes" "a\\u0001\\b\\f\\n\\r\\t\\\"\\\\"
    (J.escape_string "a\001\b\012\n\r\t\"\\");
  match J.of_string "\"a\\u0001\\b\\f\"" with
  | Ok (J.String s) -> Alcotest.(check string) "parses back" "a\001\b\012" s
  | Ok _ -> Alcotest.fail "expected a string"
  | Error e -> Alcotest.fail e

let test_json_rejects_garbage () =
  let bad s =
    match J.of_string s with
    | Ok _ -> Alcotest.fail (Printf.sprintf "accepted %S" s)
    | Error _ -> ()
  in
  bad "{";
  bad "[1,]";
  bad "{\"a\":1} trailing";
  bad "'single'"

(* ------------------------------------------------------------------ *)
(* Metrics                                                             *)

let test_histogram_percentiles () =
  let h = M.histogram "test.obs.hist" in
  M.reset_histogram h;
  for _ = 1 to 50 do
    M.observe h 1.0
  done;
  for _ = 1 to 30 do
    M.observe h 2.0
  done;
  for _ = 1 to 20 do
    M.observe h 4.0
  done;
  Alcotest.(check int) "count" 100 (M.histogram_count h);
  Alcotest.(check (float 1e-9)) "sum" 190.0 (M.histogram_sum h);
  (* 1, 2 and 4 are bucket representatives (powers of 2), so the
     percentiles are exact: sorted order is 50x1, 30x2, 20x4. *)
  Alcotest.(check (float 1e-9)) "p50" 1.0 (M.percentile h 0.50);
  Alcotest.(check (float 1e-9)) "p80" 2.0 (M.percentile h 0.80);
  Alcotest.(check (float 1e-9)) "p90" 4.0 (M.percentile h 0.90);
  Alcotest.(check (float 1e-9)) "p99" 4.0 (M.percentile h 0.99);
  M.reset_histogram h;
  Alcotest.(check int) "reset count" 0 (M.histogram_count h);
  Alcotest.(check (float 1e-9)) "empty percentile" 0.0 (M.percentile h 0.5)

let test_metrics_registry () =
  let c = M.counter "test.obs.counter" in
  M.set_counter c 0;
  M.incr c;
  M.add c 4;
  Alcotest.(check int) "counter" 5 (M.counter_value c);
  Alcotest.(check int) "get-or-create shares state" 5
    (M.counter_value (M.counter "test.obs.counter"));
  (match M.gauge "test.obs.counter" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "kind clash must raise");
  let g = M.gauge "test.obs.gauge" in
  M.set_gauge g 3.5;
  Alcotest.(check (float 1e-9)) "gauge" 3.5 (M.gauge_value g)

(* ------------------------------------------------------------------ *)
(* Prometheus exposition                                               *)

let test_prometheus_name () =
  Alcotest.(check string)
    "dots to underscores" "server_latency_check_s"
    (M.prometheus_name "server.latency.check_s");
  Alcotest.(check string)
    "leading digit prefixed" "_9lives" (M.prometheus_name "9lives");
  Alcotest.(check string)
    "colons survive" "a:b_c" (M.prometheus_name "a:b-c");
  Alcotest.(check string) "empty name" "_" (M.prometheus_name "")

let test_prometheus_exposition () =
  (* dotted names of all three kinds, so sanitization and every series
     shape are exercised *)
  let c = M.counter "test.prom.counter" in
  M.set_counter c 7;
  let g = M.gauge "test.prom.gauge" in
  M.set_gauge g 2.5;
  let h = M.histogram "test.prom.hist" in
  M.reset_histogram h;
  for _ = 1 to 5 do
    M.observe h 1.0
  done;
  for _ = 1 to 3 do
    M.observe h 4.0
  done;
  M.observe h (-1.0);
  let body = M.to_prometheus () in
  let p =
    match Obs.Prom.parse body with
    | Ok p -> p
    | Error e -> Alcotest.fail ("exposition does not strict-parse: " ^ e)
  in
  (* every registry entry appears exactly once as a # TYPE line, under
     its sanitized name with the declared kind *)
  let expect_kind name kind =
    Alcotest.(check int)
      (name ^ " appears exactly once")
      1
      (List.length (List.filter (fun (n, _) -> n = name) p.Obs.Prom.types));
    Alcotest.(check (option string))
      (name ^ " kind") (Some kind)
      (List.assoc_opt name p.Obs.Prom.types)
  in
  expect_kind "test_prom_counter" "counter";
  expect_kind "test_prom_gauge" "gauge";
  expect_kind "test_prom_hist" "histogram";
  Alcotest.(check int)
    "registry and exposition agree on entry count"
    (List.length (String.split_on_char '\n' body
                 |> List.filter (fun l ->
                        String.length l > 7 && String.sub l 0 7 = "# TYPE ")))
    (List.length p.Obs.Prom.types);
  Alcotest.(check (option int))
    "counter value" (Some 7)
    (Obs.Prom.counter_value p "test_prom_counter");
  Alcotest.(check (option (float 1e-9)))
    "gauge value" (Some 2.5)
    (Obs.Prom.gauge_value p "test_prom_gauge");
  (* histogram series: cumulative buckets are monotone, +Inf equals
     _count, _sum matches, percentile recovers the representatives *)
  let bs = Obs.Prom.buckets p "test_prom_hist" in
  Alcotest.(check bool) "has buckets" true (List.length bs >= 3);
  let rec monotone = function
    | (_, a) :: ((_, b) :: _ as rest) ->
      Alcotest.(check bool) "cumulative counts non-decreasing" true (a <= b);
      monotone rest
    | _ -> ()
  in
  monotone bs;
  let rec ubs_sorted = function
    | (a, _) :: ((b, _) :: _ as rest) ->
      Alcotest.(check bool) "upper bounds increase" true (a < b);
      ubs_sorted rest
    | _ -> ()
  in
  ubs_sorted bs;
  (match List.rev bs with
  | (ub, last) :: _ ->
    Alcotest.(check bool) "last bucket is +Inf" true (ub = infinity);
    Alcotest.(check (option int))
      "+Inf bucket equals _count" (Some last)
      (Obs.Prom.histogram_count p "test_prom_hist")
  | [] -> Alcotest.fail "no buckets parsed");
  Alcotest.(check (option int))
    "count covers all observations incl. underflow" (Some 9)
    (Obs.Prom.histogram_count p "test_prom_hist");
  Alcotest.(check (option (float 1e-6)))
    "sum" (Some 16.0)
    (Obs.Prom.histogram_sum p "test_prom_hist");
  Alcotest.(check (option (float 1e-9)))
    "p50 from the scrape" (Some 1.0)
    (Obs.Prom.percentile p "test_prom_hist" 0.5);
  Alcotest.(check (option (float 1e-9)))
    "p99 from the scrape" (Some 4.0)
    (Obs.Prom.percentile p "test_prom_hist" 0.99)

let test_prom_parse_rejects () =
  let bad body =
    match Obs.Prom.parse body with
    | Ok _ -> Alcotest.failf "accepted %S" body
    | Error _ -> ()
  in
  bad "metric_without_value\n";
  bad "name value_is_not_a_number\n";
  bad "# TYPE only_two\n";
  bad "# TYPE m sideways\n";
  bad "# COMMENT unknown\n";
  bad "m{unterminated=\"v} 1\n";
  bad "{no_name} 1\n";
  (* the shapes we emit all parse *)
  match
    Obs.Prom.parse
      "# HELP free text is fine\n\
       # TYPE m histogram\n\
       m_bucket{le=\"0.5\"} 1\n\
       m_bucket{le=\"+Inf\"} 2\n\
       m_sum 1.5\n\
       m_count 2\n"
  with
  | Ok p -> Alcotest.(check int) "samples" 4 (List.length p.Obs.Prom.samples)
  | Error e -> Alcotest.fail e

(* The symmetry/solver-modernization counters scrape under stable
   Prometheus names: the registry lookup below is idempotent (the
   library modules already created them), and the strict parser must
   see each exactly once with kind counter. [qvtr top] keys its
   symmetry line off these exact names. *)
let test_symmetry_counter_prom_names () =
  List.iter
    (fun dotted -> ignore (M.counter dotted))
    [
      "relog.symmetry.orbits";
      "relog.symmetry.sbp_clauses";
      "sat.phase_flips";
      "sat.minimized_lits";
      "echo.repair.dedup_discards";
    ];
  let p =
    match Obs.Prom.parse (M.to_prometheus ()) with
    | Ok p -> p
    | Error e -> Alcotest.fail ("exposition does not strict-parse: " ^ e)
  in
  List.iter
    (fun prom ->
      Alcotest.(check int)
        (prom ^ " appears exactly once")
        1
        (List.length (List.filter (fun (n, _) -> n = prom) p.Obs.Prom.types));
      Alcotest.(check (option string))
        (prom ^ " kind") (Some "counter")
        (List.assoc_opt prom p.Obs.Prom.types);
      Alcotest.(check bool)
        (prom ^ " has a sample") true
        (Obs.Prom.counter_value p prom <> None))
    [
      "relog_symmetry_orbits";
      "relog_symmetry_sbp_clauses";
      "sat_phase_flips";
      "sat_minimized_lits";
      "echo_repair_dedup_discards";
    ]

(* Satellite: the drain-based reset must keep count == bucket totals
   with observers racing it at jobs = 4 (3 observers + 1 resetter). *)
let test_histogram_concurrent_reset () =
  let h = M.histogram "test.prom.reset_race" in
  M.reset_histogram h;
  let per_domain = 20_000 in
  let observers =
    List.init 3 (fun _ ->
        Domain.spawn (fun () ->
            for _ = 1 to per_domain do
              M.observe h 4.0
            done))
  in
  let resetter =
    Domain.spawn (fun () ->
        for _ = 1 to 200 do
          M.reset_histogram h;
          Domain.cpu_relax ()
        done)
  in
  List.iter Domain.join observers;
  Domain.join resetter;
  (* quiescent now: whatever survived the resets, the invariant holds *)
  Alcotest.(check int)
    "count equals bucket total after racing resets"
    (M.histogram_bucket_total h) (M.histogram_count h);
  Alcotest.(check bool)
    "count within bounds" true
    (M.histogram_count h >= 0 && M.histogram_count h <= 3 * per_domain);
  M.reset_histogram h;
  Alcotest.(check int) "final reset zeroes count" 0 (M.histogram_count h);
  Alcotest.(check int)
    "final reset zeroes buckets" 0
    (M.histogram_bucket_total h)

(* ------------------------------------------------------------------ *)
(* Runtime sampler                                                     *)

let test_runtime_sampler () =
  let samples0 =
    M.counter_value (M.counter "runtime.samples")
  in
  let hook_hits = Atomic.make 0 in
  Obs.Runtime.on_sample "test.hook" (fun () ->
      Atomic.incr hook_hits);
  Obs.Runtime.on_sample "test.bad_hook" (fun () -> failwith "must not kill");
  Obs.Runtime.start ~interval_s:0.01 ();
  Alcotest.(check bool) "running" true (Obs.Runtime.running ());
  Unix.sleepf 0.15;
  Obs.Runtime.stop ();
  Alcotest.(check bool) "stopped" false (Obs.Runtime.running ());
  let ticks =
    M.counter_value (M.counter "runtime.samples") - samples0
  in
  Alcotest.(check bool)
    (Printf.sprintf "sampled repeatedly (%d ticks)" ticks)
    true (ticks >= 2);
  Alcotest.(check bool)
    "hooks ran every tick, raising hook tolerated" true
    (Atomic.get hook_hits >= ticks);
  Alcotest.(check bool)
    "gc gauges are fresh" true
    (M.gauge_value (M.gauge "runtime.gc.heap_words") > 0.);
  Alcotest.(check bool)
    "uptime advanced" true
    (M.gauge_value (M.gauge "runtime.uptime_s") > 0.);
  Obs.Runtime.remove_sample "test.hook";
  Obs.Runtime.remove_sample "test.bad_hook";
  (* one synchronous tick still works without the thread *)
  let before = M.counter_value (M.counter "runtime.samples") in
  Obs.Runtime.sample_now ();
  Alcotest.(check int)
    "sample_now ticks once" (before + 1)
    (M.counter_value (M.counter "runtime.samples"))

(* ------------------------------------------------------------------ *)
(* Trace recording                                                     *)

let begins evs = List.filter (fun (e : T.event) -> e.ph = `Begin) evs
let ends evs = List.filter (fun (e : T.event) -> e.ph = `End) evs

let find_begin name evs =
  match
    List.find_opt (fun (e : T.event) -> e.ph = `Begin && e.name = name) evs
  with
  | Some e -> e
  | None -> Alcotest.fail ("no Begin event named " ^ name)

let test_span_nesting () =
  with_tracing @@ fun () ->
  T.with_span ~name:"outer"
    ~args:(fun () -> [ ("k", J.Int 7) ])
    (fun () ->
      T.with_span ~name:"inner" (fun () -> ());
      T.instant "mark");
  let evs = T.events () in
  let outer = find_begin "outer" evs in
  let inner = find_begin "inner" evs in
  Alcotest.(check int) "two begins" 2 (List.length (begins evs));
  Alcotest.(check int) "two ends" 2 (List.length (ends evs));
  Alcotest.(check bool) "outer is a root" true (outer.parent = 0);
  Alcotest.(check bool) "inner nests under outer" true
    (inner.parent = outer.id);
  Alcotest.(check bool) "outer carries args" true
    (outer.args = [ ("k", J.Int 7) ]);
  let mark =
    List.find (fun (e : T.event) -> e.ph = `Instant && e.name = "mark") evs
  in
  Alcotest.(check bool) "instant attaches to the open span" true
    (mark.parent = outer.id)

let test_span_survives_raise () =
  with_tracing @@ fun () ->
  (try T.with_span ~name:"boom" (fun () -> failwith "boom") with
  | Failure _ -> ());
  let evs = T.events () in
  Alcotest.(check int) "begin recorded" 1 (List.length (begins evs));
  Alcotest.(check int) "end recorded despite raise" 1
    (List.length (ends evs))

(* Span nesting must survive the pool handoff: children submitted from
   inside a span attach to it while recording on the worker's own
   track. *)
let test_pool_handoff () =
  with_tracing @@ fun () ->
  let pool = Parallel.Pool.create ~jobs:4 in
  let futures = ref [] in
  T.with_span ~name:"submit" (fun () ->
      futures :=
        List.init 4 (fun _ ->
            Parallel.Pool.submit pool (fun _ ->
                T.with_span ~name:"child" (fun () -> Domain.cpu_relax ()))));
  List.iter
    (fun f ->
      match Parallel.Pool.result f with
      | Ok () -> ()
      | Error e -> raise e)
    !futures;
  Parallel.Pool.shutdown pool;
  let evs = T.events () in
  let submit = find_begin "submit" evs in
  let children =
    List.filter
      (fun (e : T.event) -> e.ph = `Begin && e.name = "child")
      evs
  in
  Alcotest.(check int) "all four children recorded" 4 (List.length children);
  List.iter
    (fun (c : T.event) ->
      Alcotest.(check bool) "child attaches to the submitting span" true
        (c.parent = submit.id))
    children;
  Alcotest.(check bool) "children record on worker tracks" true
    (List.exists (fun (c : T.event) -> c.tid <> submit.tid) children)

(* ------------------------------------------------------------------ *)
(* Chrome export                                                       *)

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let test_chrome_export () =
  with_tracing @@ fun () ->
  T.with_span ~name:"a" (fun () ->
      T.with_span ~name:"b" (fun () -> ());
      T.counter "search" [ ("conflicts", 3.0) ];
      T.instant "tick");
  let path = Filename.temp_file "mdqvtr-obs" ".json" in
  Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
  T.export_chrome path;
  let v =
    match J.of_string (read_file path) with
    | Ok v -> v
    | Error e -> Alcotest.fail ("trace is not valid JSON: " ^ e)
  in
  let evs = J.to_list (J.member "traceEvents" v) in
  Alcotest.(check bool) "has events" true (List.length evs > 0);
  (* Every non-metadata event carries pid 1 and an integer tid, and
     B/E events balance per tid. *)
  let balance = Hashtbl.create 8 in
  let bump tid d =
    Hashtbl.replace balance tid (d + Option.value ~default:0 (Hashtbl.find_opt balance tid))
  in
  List.iter
    (fun e ->
      match (J.member "ph" e, J.member "tid" e) with
      | J.String "M", _ -> ()
      | J.String ph, J.Int tid ->
        Alcotest.(check bool) "pid is 1" true (J.member "pid" e = J.Int 1);
        if ph = "B" then begin
          bump tid 1;
          Alcotest.(check bool) "B has a span id" true
            (match J.member "span" (J.member "args" e) with
            | J.Int _ -> true
            | _ -> false)
        end
        else if ph = "E" then bump tid (-1)
      | _ -> Alcotest.fail "event without ph/tid")
    evs;
  Hashtbl.iter
    (fun tid d ->
      Alcotest.(check int) (Printf.sprintf "B/E balance on tid %d" tid) 0 d)
    balance;
  (* Counter samples survive as C events with float series. *)
  Alcotest.(check bool) "counter event exported" true
    (List.exists
       (fun e ->
         J.member "ph" e = J.String "C"
         && J.member "name" e = J.String "search")
       evs)

let test_jsonl_export () =
  with_tracing @@ fun () ->
  T.with_span ~name:"one" (fun () -> T.instant "two");
  let path = Filename.temp_file "mdqvtr-obs" ".jsonl" in
  Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
  T.export_jsonl path;
  let lines =
    String.split_on_char '\n' (String.trim (read_file path))
  in
  Alcotest.(check int) "one line per event" 3 (List.length lines);
  List.iter
    (fun line ->
      match J.of_string line with
      | Ok (J.Obj _) -> ()
      | Ok _ -> Alcotest.fail "line is not an object"
      | Error e -> Alcotest.fail ("line is not valid JSON: " ^ e))
    lines

(* ------------------------------------------------------------------ *)
(* Disabled fast path                                                  *)

let nop () = ()

let test_disabled_no_alloc () =
  T.set_enabled false;
  (* Warm up the domain-local buffer and any one-time setup. *)
  T.with_span ~name:"warm" nop;
  T.instant "warm";
  let series = [ ("x", 1.0) ] in
  T.counter "warm" series;
  ignore (T.current ());
  let n = 10_000 in
  let before = Gc.minor_words () in
  for _ = 1 to n do
    T.with_span ~name:"hot" nop;
    T.instant "hot";
    T.counter "hot" series;
    ignore (T.current ())
  done;
  let after = Gc.minor_words () in
  let delta = int_of_float (after -. before) in
  (* The loop runs 40k entry points; any per-call allocation would cost
     >= 2 words each. Allow a small constant for the measurement
     itself. *)
  Alcotest.(check bool)
    (Printf.sprintf "disabled path allocated %d minor words" delta)
    true (delta < 256)

let test_clock_monotonic () =
  let a = Obs.Clock.now () in
  let b = Obs.Clock.now () in
  Alcotest.(check bool) "positive" true (a > 0.);
  Alcotest.(check bool) "monotonic" true (b >= a);
  Alcotest.(check bool) "telemetry shim agrees" true
    (Sat.Telemetry.now () -. Obs.Clock.now () < 1.0)

let suite =
  [
    Alcotest.test_case "json round-trip" `Quick test_json_roundtrip;
    Alcotest.test_case "json control-char escapes" `Quick
      test_json_control_escapes;
    Alcotest.test_case "json rejects garbage" `Quick test_json_rejects_garbage;
    Alcotest.test_case "histogram percentiles exact" `Quick
      test_histogram_percentiles;
    Alcotest.test_case "metrics registry" `Quick test_metrics_registry;
    Alcotest.test_case "prometheus name sanitization" `Quick
      test_prometheus_name;
    Alcotest.test_case "prometheus exposition strict-parses" `Quick
      test_prometheus_exposition;
    Alcotest.test_case "prometheus parser rejects malformed" `Quick
      test_prom_parse_rejects;
    Alcotest.test_case "symmetry/solver counter prometheus names" `Quick
      test_symmetry_counter_prom_names;
    Alcotest.test_case "histogram reset races observers (jobs=4)" `Quick
      test_histogram_concurrent_reset;
    Alcotest.test_case "runtime sampler ticks and survives bad hooks" `Quick
      test_runtime_sampler;
    Alcotest.test_case "span nesting and args" `Quick test_span_nesting;
    Alcotest.test_case "span end survives raise" `Quick
      test_span_survives_raise;
    Alcotest.test_case "nesting survives pool handoff (jobs=4)" `Quick
      test_pool_handoff;
    Alcotest.test_case "chrome export: valid JSON, balanced B/E" `Quick
      test_chrome_export;
    Alcotest.test_case "jsonl export: one object per line" `Quick
      test_jsonl_export;
    Alcotest.test_case "disabled fast path allocates nothing" `Quick
      test_disabled_no_alloc;
    Alcotest.test_case "monotonic clock" `Quick test_clock_monotonic;
  ]
