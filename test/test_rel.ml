(* Tests for Relog.Rel: universes, tuples, and the tuple-set algebra
   (relational laws checked by qcheck). *)

module R = Relog.Rel
module I = Mdl.Ident
module TS = R.Tupleset

let universe n = R.Universe.make (List.init n (fun i -> I.make (Printf.sprintf "a%d" i)))

let test_universe () =
  let u = universe 3 in
  Alcotest.(check int) "size" 3 (R.Universe.size u);
  Alcotest.(check string) "atom by index" "a1" (I.name (R.Universe.atom u 1));
  Alcotest.(check int) "index by atom" 2 (R.Universe.index u (I.make "a2"));
  Alcotest.(check bool) "mem" true (R.Universe.mem u (I.make "a0"));
  Alcotest.(check bool) "foreign atom" false (R.Universe.mem u (I.make "zz"));
  match R.Universe.make [ I.make "x"; I.make "x" ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "duplicate atoms must raise"

let ts l = TS.of_list l

let test_basic_ops () =
  let a = ts [ [| 0 |]; [| 1 |] ] and b = ts [ [| 1 |]; [| 2 |] ] in
  Alcotest.(check int) "union" 3 (TS.cardinal (TS.union a b));
  Alcotest.(check int) "inter" 1 (TS.cardinal (TS.inter a b));
  Alcotest.(check int) "diff" 1 (TS.cardinal (TS.diff a b));
  Alcotest.(check bool) "subset" true (TS.subset (TS.inter a b) a);
  Alcotest.(check bool) "mem" true (TS.mem [| 1 |] a)

let test_arity_checks () =
  let unary = ts [ [| 0 |] ] and binary = ts [ [| 0; 1 |] ] in
  (match TS.union unary binary with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "arity mismatch in union must raise");
  (match TS.of_list [ [| 0 |]; [| 0; 1 |] ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "mixed arity of_list must raise");
  match TS.transpose (ts [ [| 0; 1; 2 |] ]) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "transpose of ternary must raise"

let test_product_join () =
  let a = ts [ [| 0 |]; [| 1 |] ] and r = ts [ [| 0; 5 |]; [| 1; 6 |]; [| 2; 7 |] ] in
  let p = TS.product a a in
  Alcotest.(check int) "product size" 4 (TS.cardinal p);
  Alcotest.(check (option int)) "product arity" (Some 2) (TS.arity p);
  let j = TS.join a r in
  Alcotest.(check int) "join selects matching rows" 2 (TS.cardinal j);
  Alcotest.(check bool) "join drops inner columns" true (TS.mem [| 5 |] j && TS.mem [| 6 |] j);
  (* binary . binary *)
  let r2 = ts [ [| 5; 9 |] ] in
  let jj = TS.join r r2 in
  Alcotest.(check bool) "relational composition" true (TS.mem [| 0; 9 |] jj);
  Alcotest.(check int) "composition size" 1 (TS.cardinal jj)

let test_transpose_closure () =
  let r = ts [ [| 0; 1 |]; [| 1; 2 |] ] in
  Alcotest.(check bool) "transpose flips" true (TS.mem [| 1; 0 |] (TS.transpose r));
  let c = TS.closure r in
  Alcotest.(check int) "closure adds 0->2" 3 (TS.cardinal c);
  Alcotest.(check bool) "0 reaches 2" true (TS.mem [| 0; 2 |] c);
  let u = universe 3 in
  let rc = TS.reflexive_closure u r in
  Alcotest.(check int) "reflexive closure" 6 (TS.cardinal rc)

let test_iden_univ () =
  let u = universe 4 in
  Alcotest.(check int) "iden size" 4 (TS.cardinal (TS.iden u));
  Alcotest.(check int) "univ size" 4 (TS.cardinal (TS.univ u))

(* -------- qcheck: algebra laws on random binary relations ---------- *)

let arb_rel n =
  QCheck.map
    (fun pairs ->
      TS.of_list (List.map (fun (a, b) -> [| a mod n; b mod n |]) pairs))
    (QCheck.small_list (QCheck.pair QCheck.small_nat QCheck.small_nat))

let n = 4

let prop_union_commutes =
  QCheck.Test.make ~name:"union commutative" ~count:200
    (QCheck.pair (arb_rel n) (arb_rel n))
    (fun (a, b) -> TS.equal (TS.union a b) (TS.union b a))

let prop_join_assoc =
  QCheck.Test.make ~name:"join associative on binaries" ~count:200
    (QCheck.triple (arb_rel n) (arb_rel n) (arb_rel n))
    (fun (a, b, c) ->
      TS.equal (TS.join (TS.join a b) c) (TS.join a (TS.join b c)))

let prop_transpose_involution =
  QCheck.Test.make ~name:"transpose involutive" ~count:200 (arb_rel n) (fun r ->
      TS.equal (TS.transpose (TS.transpose r)) r)

let prop_transpose_antihom =
  QCheck.Test.make ~name:"~(a.b) = ~b.~a" ~count:200
    (QCheck.pair (arb_rel n) (arb_rel n))
    (fun (a, b) ->
      TS.equal (TS.transpose (TS.join a b)) (TS.join (TS.transpose b) (TS.transpose a)))

let prop_closure_fixpoint =
  QCheck.Test.make ~name:"closure is a transitive fixpoint containing r" ~count:200
    (arb_rel n) (fun r ->
      let c = TS.closure r in
      TS.subset r c
      && TS.subset (TS.join c c) c
      && TS.equal (TS.closure c) c)

let prop_iden_join_neutral =
  QCheck.Test.make ~name:"iden is a join identity" ~count:200 (arb_rel n) (fun r ->
      let u = universe n in
      TS.equal (TS.join (TS.iden u) r) r && TS.equal (TS.join r (TS.iden u)) r)

let prop_distributivity =
  QCheck.Test.make ~name:"join distributes over union" ~count:200
    (QCheck.triple (arb_rel n) (arb_rel n) (arb_rel n))
    (fun (a, b, c) ->
      TS.equal (TS.join a (TS.union b c)) (TS.union (TS.join a b) (TS.join a c)))

let suite =
  [
    Alcotest.test_case "universe" `Quick test_universe;
    Alcotest.test_case "basic set ops" `Quick test_basic_ops;
    Alcotest.test_case "arity checks" `Quick test_arity_checks;
    Alcotest.test_case "product and join" `Quick test_product_join;
    Alcotest.test_case "transpose and closure" `Quick test_transpose_closure;
    Alcotest.test_case "iden and univ" `Quick test_iden_univ;
    QCheck_alcotest.to_alcotest prop_union_commutes;
    QCheck_alcotest.to_alcotest prop_join_assoc;
    QCheck_alcotest.to_alcotest prop_transpose_involution;
    QCheck_alcotest.to_alcotest prop_transpose_antihom;
    QCheck_alcotest.to_alcotest prop_closure_fixpoint;
    QCheck_alcotest.to_alcotest prop_iden_join_neutral;
    QCheck_alcotest.to_alcotest prop_distributivity;
  ]
