(* Tests for lib/server: the wire codec, durable snapshots, and the
   multi-session engine behind `qvtr serve`.

   The load-bearing properties:
   - protocol frames round-trip through the codec, and malformed
     frames are rejected naming the offending field;
   - an evicted-then-revived session answers with verdicts, menus and
     distances identical to one that never left memory (the snapshot
     round-trip guarantee), and corrupted/mis-versioned snapshot files
     are rejected with explicit errors;
   - request handling is jobs-invariant (a pool of workers computes
     exactly what the inline jobs=1 path does), requests to one
     session serialize in arrival order, and an LRU cap far below the
     client count never loses edits. *)

module P = Server.Protocol
module E = Server.Engine
module Snap = Server.Snapshot
module S = Incr.Session
module F = Featuremodel.Fm
module Ident = Mdl.Ident

let contains ~sub s =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let check_contains ctx ~sub s =
  if not (contains ~sub s) then
    Alcotest.failf "%s: expected %S inside %S" ctx sub s

let replace ~sub ~by s =
  let n = String.length s and m = String.length sub in
  let rec find i =
    if i + m > n then None
    else if String.sub s i m = sub then Some i
    else find (i + 1)
  in
  match find 0 with
  | None -> Alcotest.failf "substring %S not found" sub
  | Some i -> String.sub s 0 i ^ by ^ String.sub s (i + m) (n - i - m)

let tmpdir tag =
  Filename.concat
    (Filename.get_temp_dir_name ())
    (Printf.sprintf "mdqvtr-test-%s-%d" tag (Unix.getpid ()))

(* ------------------------------------------------------------------ *)
(* Fixtures: the paper's feature-model/configuration transformation    *)

let base_fm = [ ("A", true); ("B", false) ]

let models_text ~cf1 ~cf2 ~fm =
  String.concat "\n"
    (List.map Mdl.Serialize.model_to_string
       [
         F.feature_model ~name:"fm" fm;
         F.configuration ~name:"cf1" cf1;
         F.configuration ~name:"cf2" cf2;
       ])

let spec models =
  {
    P.o_transformation = F.source ~k:2;
    o_metamodels =
      Mdl.Serialize.metamodel_to_string F.fm_metamodel
      ^ "\n"
      ^ Mdl.Serialize.metamodel_to_string F.cf_metamodel;
    o_models = models;
    o_targets = [ "cf1"; "cf2" ];
    o_standard = false;
    o_slack = 2;
    o_headroom = 6;
  }

let base_spec () = spec (models_text ~cf1:[ "A" ] ~cf2:[ "A" ] ~fm:base_fm)

let next_id = Atomic.make 1

let call eng ?(session = "s") req =
  E.call eng
    { P.q_id = Atomic.fetch_and_add next_id 1; q_session = session; q_req = req }

let ok ctx (resp : P.resp) =
  match resp.P.s_result with
  | Ok p -> p
  | Error e -> Alcotest.failf "%s: unexpected error: %s" ctx e

let err ctx (resp : P.resp) =
  match resp.P.s_result with
  | Error e -> e
  | Ok _ -> Alcotest.failf "%s: expected an error reply" ctx

let checked ctx resp =
  match ok ctx resp with
  | P.Checked { consistent; verdicts; _ } -> (consistent, verdicts)
  | _ -> Alcotest.failf "%s: expected a Checked payload" ctx

let repaired ctx resp =
  match ok ctx resp with
  | P.Repaired { outcome; menu; _ } ->
    ( outcome,
      List.sort compare
        (List.map
           (fun (m : P.menu_entry) ->
             ( m.P.m_relational_distance,
               m.P.m_edit_distance,
               List.sort compare m.P.m_models ))
           menu) )
  | _ -> Alcotest.failf "%s: expected a Repaired payload" ctx

(* ------------------------------------------------------------------ *)
(* Protocol codec                                                      *)

let test_codec_round_trip () =
  let reqs =
    [
      { P.q_id = 1; q_session = "s1"; q_req = P.Open (base_spec ()) };
      {
        P.q_id = 2;
        q_session = "s1";
        q_req = P.Apply_edits { models = "model cf1 : CF {\n}" };
      };
      { P.q_id = 3; q_session = "s1"; q_req = P.Recheck { blame = true } };
      { P.q_id = 4; q_session = "s1"; q_req = P.Rerepair { limit = 8 } };
      { P.q_id = 5; q_session = "s1"; q_req = P.Commit { choice = 2 } };
      { P.q_id = 6; q_session = "s1"; q_req = P.Snapshot };
      { P.q_id = 7; q_session = "s1"; q_req = P.Close };
      { P.q_id = 8; q_session = ""; q_req = P.Stats };
    ]
  in
  List.iter
    (fun r ->
      match P.parse_request (P.request_to_string r) with
      | Ok r' ->
        Alcotest.(check bool)
          (P.verb_of_request r.P.q_req ^ " round-trips")
          true (r = r')
      | Error e -> Alcotest.fail e)
    reqs;
  let stats =
    {
      S.wall = 0.5;
      solver_calls = 3;
      conflicts = 7;
      propagations = 41;
      decisions = 11;
      translated = true;
      translate_s = 0.25;
    }
  in
  let resps =
    [
      ("open", { P.s_id = 1; s_result = Ok (P.Opened { revived = true }) });
      ("apply_edits", { P.s_id = 2; s_result = Ok (P.Applied { edits = 4 }) });
      ( "recheck",
        {
          P.s_id = 3;
          s_result =
            Ok
              (P.Checked
                 {
                   consistent = false;
                   verdicts =
                     [
                       {
                         P.w_relation = "MandatoryFeatures";
                         w_sources = [ "fm" ];
                         w_target = "cf1";
                         w_holds = false;
                         w_blame = [ ("Feature", [ "fm"; "A" ]) ];
                       };
                     ];
                   stats;
                 });
        } );
      ( "rerepair",
        {
          P.s_id = 4;
          s_result =
            Ok
              (P.Repaired
                 {
                   outcome = "repaired";
                   menu =
                     [
                       {
                         P.m_relational_distance = 1;
                         m_edit_distance = 2;
                         m_models = [ ("cf1", "model cf1 : CF {\n}") ];
                       };
                     ];
                   stats;
                 });
        } );
      ("commit", { P.s_id = 5; s_result = Ok P.Committed });
      ( "snapshot",
        {
          P.s_id = 6;
          s_result = Ok (P.Snapshotted { path = "/tmp/s1.snap"; fingerprint = "abcd" });
        } );
      ("close", { P.s_id = 7; s_result = Ok P.Closed });
      ("recheck", { P.s_id = 9; s_result = Error "unknown session \"x\"" });
    ]
  in
  List.iter
    (fun (verb, r) ->
      match P.parse_response (P.response_to_string ~verb r) with
      | Ok r' ->
        Alcotest.(check bool) (verb ^ " response round-trips") true (r = r')
      | Error e -> Alcotest.fail e)
    resps

let test_codec_rejects_malformed () =
  let bad =
    [
      ("not json", "{");
      ("not an object", "[1,2]");
      ("missing verb", {|{"id":1,"session":"s"}|});
      ("unknown verb", {|{"id":1,"verb":"zap","session":"s"}|});
      ("missing session", {|{"id":1,"verb":"recheck"}|});
      ("missing models", {|{"id":1,"verb":"apply_edits","session":"s"}|});
      ( "mistyped field",
        {|{"id":1,"verb":"recheck","session":"s","blame":"yes"}|} );
      ( "mistyped id",
        {|{"id":"one","verb":"recheck","session":"s"}|} );
    ]
  in
  List.iter
    (fun (ctx, line) ->
      match P.parse_request line with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "%s: frame %S must be rejected" ctx line)
    bad

(* ------------------------------------------------------------------ *)
(* Snapshot round-trip                                                 *)

let hydrate_exn ?extra_values sp =
  match Snap.hydrate ?extra_values sp with
  | Ok (sess, _) -> sess
  | Error e -> Alcotest.fail e

let recheck_exn sess =
  match S.recheck sess with Ok r -> r | Error e -> Alcotest.fail e

let rerepair_exn sess =
  match S.rerepair ~limit:16 sess with Ok r -> r | Error e -> Alcotest.fail e

let edit_to sess ~cf1 ~cf2 ~fm =
  let desired =
    F.bind
      ~cfs:[ F.configuration ~name:"cf1" cf1; F.configuration ~name:"cf2" cf2 ]
      ~fm:(F.feature_model ~name:"fm" fm)
  in
  let batch =
    List.filter_map
      (fun (p, after) ->
        match List.assoc_opt p (S.models sess) with
        | None -> None
        | Some before -> (
          match Mdl.Diff.script before after with
          | [] -> None
          | edits -> Some (p, edits)))
      desired
  in
  match S.apply_edits sess batch with
  | Ok () -> ()
  | Error e -> Alcotest.fail e

let verdict_keys (r : S.check_report) =
  List.map
    (fun (v : S.verdict) ->
      (Ident.name v.S.v_relation, v.S.v_direction, v.S.v_holds))
    r.S.verdicts

let repair_key tgts models =
  models
  |> List.filter (fun (p, _) -> Ident.Set.mem p tgts)
  |> List.map (fun (p, m) -> (Ident.name p, Mdl.Serialize.model_to_string m))
  |> List.sort compare

let menu_keys tgts (r : S.repair_report) =
  match r.S.outcome with
  | S.Already_consistent -> `Consistent
  | S.Cannot_restore -> `Cannot
  | S.Repaired reps ->
    `Menu
      (List.sort compare
         (List.map
            (fun (rp : S.repair) ->
              ( rp.S.r_relational_distance,
                rp.S.r_edit_distance,
                repair_key tgts rp.S.r_models ))
            reps))

let test_snapshot_round_trip () =
  let sp = base_spec () in
  let sess = hydrate_exn sp in
  (* grow the value universe past the spec's own text: a brand-new
     feature name arrives through an edit, not through o_models *)
  edit_to sess ~cf1:[ "A"; "C" ] ~cf2:[] ~fm:base_fm;
  let live_check = recheck_exn sess in
  let live_rep = rerepair_exn sess in
  let snap = Snap.of_session ~spec:sp sess in
  Alcotest.(check bool) "fingerprint non-empty" true (snap.Snap.fingerprint <> "");
  let text = Snap.to_string snap in
  let snap' =
    match Snap.of_string text with Ok s -> s | Error e -> Alcotest.fail e
  in
  Alcotest.(check string)
    "fingerprint survives to_string/of_string" snap.Snap.fingerprint
    snap'.Snap.fingerprint;
  Alcotest.(check bool) "spec survives" true (snap.Snap.spec = snap'.Snap.spec);
  (* file round-trip too: save + load *)
  let dir = tmpdir "snap" in
  let path =
    match Snap.save ~dir ~name:"victim" snap with
    | Ok p -> p
    | Error e -> Alcotest.fail e
  in
  let snap'' =
    match Snap.load path with Ok s -> s | Error e -> Alcotest.fail e
  in
  Alcotest.(check string)
    "fingerprint survives save/load" snap.Snap.fingerprint
    snap''.Snap.fingerprint;
  let sess' =
    match Snap.revive snap'' with
    | Ok (s, _) -> s
    | Error e -> Alcotest.fail e
  in
  let rev_check = recheck_exn sess' in
  Alcotest.(check bool)
    "revived consistency verdict" live_check.S.consistent
    rev_check.S.consistent;
  Alcotest.(check bool)
    "revived per-direction verdicts" true
    (verdict_keys live_check = verdict_keys rev_check);
  let rev_rep = rerepair_exn sess' in
  Alcotest.(check bool)
    "revived repair menu, distances included" true
    (menu_keys (S.targets sess) live_rep = menu_keys (S.targets sess') rev_rep)

let test_snapshot_rejects_corruption () =
  let sess = hydrate_exn (base_spec ()) in
  let snap = Snap.of_session ~spec:(base_spec ()) sess in
  let text = Snap.to_string snap in
  (match Snap.of_string (replace ~sub:Snap.format_version ~by:"mdqvtr-snapshot/9" text) with
  | Error e ->
    check_contains "version mismatch names the format" ~sub:"not supported" e
  | Ok _ -> Alcotest.fail "unknown format version must be rejected");
  let flipped =
    let f = snap.Snap.fingerprint in
    let c = if f.[0] = '0' then "1" else "0" in
    c ^ String.sub f 1 (String.length f - 1)
  in
  (match Snap.of_string (replace ~sub:snap.Snap.fingerprint ~by:flipped text) with
  | Error e ->
    check_contains "bad digest names the mismatch" ~sub:"fingerprint mismatch" e
  | Ok _ -> Alcotest.fail "a wrong fingerprint must be rejected");
  match Snap.of_string "not a snapshot" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "garbage must be rejected"

(* ------------------------------------------------------------------ *)
(* Engine: eviction transparency                                       *)

(* The same request sequence with and without LRU pressure: a cap of 1
   forces the victim to be evicted by the bystander and revived by its
   own next request; the payloads must not change. *)
let eviction_sequence ~evict =
  let evicted0 =
    Obs.Metrics.counter_value (Obs.Metrics.counter "server.sessions_evicted")
  in
  let eng =
    E.create ~jobs:1
      ~max_live:(if evict then 1 else 8)
      ~snapshot_dir:(tmpdir (if evict then "ev1" else "ev8"))
      ()
  in
  let r = ref [] in
  let push x = r := x :: !r in
  ignore (ok "open victim" (call eng ~session:"victim" (P.Open (base_spec ()))));
  (match
     ok "apply"
       (call eng ~session:"victim"
          (P.Apply_edits
             { models = models_text ~cf1:[ "A" ] ~cf2:[] ~fm:base_fm }))
   with
  | P.Applied { edits } -> push (`Edits edits)
  | _ -> Alcotest.fail "expected Applied");
  push (`Check (checked "recheck 1" (call eng ~session:"victim" (P.Recheck { blame = false }))));
  if evict then
    ignore
      (ok "open bystander"
         (call eng ~session:"bystander" (P.Open (base_spec ()))));
  push (`Repair (repaired "rerepair" (call eng ~session:"victim" (P.Rerepair { limit = 8 }))));
  (match ok "commit" (call eng ~session:"victim" (P.Commit { choice = 0 })) with
  | P.Committed -> ()
  | _ -> Alcotest.fail "expected Committed");
  push (`Check (checked "recheck 2" (call eng ~session:"victim" (P.Recheck { blame = false }))));
  E.shutdown eng;
  let evicted =
    Obs.Metrics.counter_value (Obs.Metrics.counter "server.sessions_evicted")
    - evicted0
  in
  if evict then
    Alcotest.(check bool) "LRU pressure actually evicted" true (evicted > 0)
  else Alcotest.(check int) "no eviction without pressure" 0 evicted;
  List.rev !r

let test_eviction_is_transparent () =
  let plain = eviction_sequence ~evict:false in
  let churned = eviction_sequence ~evict:true in
  Alcotest.(check bool)
    "evicted-then-revived payloads identical to never-evicted" true
    (plain = churned)

(* ------------------------------------------------------------------ *)
(* Engine: jobs invariance                                             *)

(* Four clients, each with its own session and target state; replies
   gathered through async submit. Payloads must not depend on the
   worker-pool size. *)
let client_states =
  [
    ("c0", ([ "A" ], ([] : string list), base_fm));
    ("c1", ([ "A" ], [ "A" ], [ ("A", true); ("B", true) ]));
    ("c2", ([ "A"; "B" ], [ "A"; "B" ], base_fm));
    ("c3", ([ "A" ], [ "A" ], base_fm));
  ]

let run_clients ~jobs =
  let eng =
    E.create ~jobs ~max_live:8
      ~snapshot_dir:(tmpdir (Printf.sprintf "inv%d" jobs))
      ()
  in
  let mu = Mutex.create () in
  let replies = Hashtbl.create 16 in
  let submit session req =
    let id = Atomic.fetch_and_add next_id 1 in
    E.submit eng
      { P.q_id = id; q_session = session; q_req = req }
      (fun resp ->
        Mutex.lock mu;
        Hashtbl.replace replies (session, P.verb_of_request req) resp;
        Mutex.unlock mu);
  in
  List.iter (fun (c, _) -> submit c (P.Open (base_spec ()))) client_states;
  E.drain eng;
  List.iter
    (fun (c, (cf1, cf2, fm)) ->
      submit c (P.Apply_edits { models = models_text ~cf1 ~cf2 ~fm });
      submit c (P.Recheck { blame = true });
      submit c (P.Rerepair { limit = 4 }))
    client_states;
  E.drain eng;
  let out =
    List.map
      (fun (c, _) ->
        let get verb = Hashtbl.find replies (c, verb) in
        ( c,
          checked (c ^ " recheck") (get "recheck"),
          repaired (c ^ " rerepair") (get "rerepair") ))
      client_states
  in
  E.shutdown eng;
  out

let test_parallel_clients_jobs_invariant () =
  let serial = run_clients ~jobs:1 in
  let pooled = run_clients ~jobs:4 in
  List.iter2
    (fun (c, chk1, rep1) (_, chk2, rep2) ->
      Alcotest.(check bool) (c ^ ": recheck jobs-invariant") true (chk1 = chk2);
      Alcotest.(check bool) (c ^ ": rerepair jobs-invariant") true (rep1 = rep2))
    serial pooled

(* ------------------------------------------------------------------ *)
(* Engine: per-session serialization                                   *)

let test_interleaved_requests_serialize () =
  let eng = E.create ~jobs:4 ~max_live:4 ~snapshot_dir:(tmpdir "ser") () in
  ignore (ok "open" (call eng ~session:"s" (P.Open (base_spec ()))));
  let mu = Mutex.create () in
  let arrivals = ref [] in
  let submit req =
    let id = Atomic.fetch_and_add next_id 1 in
    E.submit eng
      { P.q_id = id; q_session = "s"; q_req = req }
      (fun resp ->
        Mutex.lock mu;
        arrivals := resp :: !arrivals;
        Mutex.unlock mu);
    id
  in
  (* a burst the engine is free to coalesce: edit -> recheck -> edit ->
     recheck, all in flight at once; the first recheck must see the
     inconsistent state, the second the repaired-by-hand state *)
  let i1 = submit (P.Apply_edits { models = models_text ~cf1:[ "A" ] ~cf2:[] ~fm:base_fm }) in
  let i2 = submit (P.Recheck { blame = false }) in
  let i3 = submit (P.Apply_edits { models = models_text ~cf1:[ "A" ] ~cf2:[ "A" ] ~fm:base_fm }) in
  let i4 = submit (P.Recheck { blame = false }) in
  E.drain eng;
  let replies = List.rev !arrivals in
  Alcotest.(check (list int))
    "replies arrive in request order" [ i1; i2; i3; i4 ]
    (List.map (fun (r : P.resp) -> r.P.s_id) replies);
  let find id = List.find (fun (r : P.resp) -> r.P.s_id = id) replies in
  let c1, _ = checked "first recheck" (find i2) in
  let c2, _ = checked "second recheck" (find i4) in
  Alcotest.(check bool) "first recheck sees its own edit" false c1;
  Alcotest.(check bool) "second recheck sees the restore" true c2;
  E.shutdown eng

(* ------------------------------------------------------------------ *)
(* Engine: LRU cap far below the client count                          *)

let test_lru_never_loses_edits () =
  let evicted0 =
    Obs.Metrics.counter_value (Obs.Metrics.counter "server.sessions_evicted")
  in
  let revived0 =
    Obs.Metrics.counter_value (Obs.Metrics.counter "server.sessions_revived")
  in
  let eng = E.create ~jobs:1 ~max_live:2 ~snapshot_dir:(tmpdir "lru") () in
  let clients = List.init 5 (fun i -> Printf.sprintf "c%d" i) in
  (* every client walks through three distinct states; interleaving the
     clients round-robin keeps evicting whoever went idle last *)
  let state i r =
    let cf1 = if r >= 2 then [ "A"; "B" ] else [ "A" ] in
    let cf2 = if r >= 1 && i < 3 then [] else [ "A" ] in
    let fm = if r >= 3 && i mod 2 = 0 then [ ("A", true); ("B", true) ] else base_fm in
    (cf1, cf2, fm)
  in
  List.iter
    (fun c -> ignore (ok ("open " ^ c) (call eng ~session:c (P.Open (base_spec ())))))
    clients;
  for r = 1 to 3 do
    List.iteri
      (fun i c ->
        let cf1, cf2, fm = state i r in
        match
          ok
            (Printf.sprintf "%s round %d" c r)
            (call eng ~session:c
               (P.Apply_edits { models = models_text ~cf1 ~cf2 ~fm }))
        with
        | P.Applied _ -> ()
        | _ -> Alcotest.fail "expected Applied")
      clients
  done;
  (* no edit was lost: each session's durable snapshot restates exactly
     the client's final models, and its verdicts equal a fresh
     session's over that state *)
  List.iteri
    (fun i c ->
      let cf1, cf2, fm = state i 3 in
      let expected =
        List.sort compare
          (List.map
             (fun m -> (Ident.name (Mdl.Model.name m), Mdl.Serialize.model_to_string m))
             [
               F.feature_model ~name:"fm" fm;
               F.configuration ~name:"cf1" cf1;
               F.configuration ~name:"cf2" cf2;
             ])
      in
      let path =
        match ok (c ^ " snapshot") (call eng ~session:c P.Snapshot) with
        | P.Snapshotted { path; _ } -> path
        | _ -> Alcotest.fail "expected Snapshotted"
      in
      let snap =
        match Snap.load path with Ok s -> s | Error e -> Alcotest.fail e
      in
      let stored =
        match
          Mdl.Serialize.parse_models [ F.fm_metamodel; F.cf_metamodel ]
            snap.Snap.spec.P.o_models
        with
        | Ok ms ->
          List.sort compare
            (List.map
               (fun m ->
                 (Ident.name (Mdl.Model.name m), Mdl.Serialize.model_to_string m))
               ms)
        | Error e -> Alcotest.fail e
      in
      Alcotest.(check bool) (c ^ ": snapshot restates every edit") true
        (stored = expected);
      let consistent, verdicts =
        checked (c ^ " final recheck") (call eng ~session:c (P.Recheck { blame = false }))
      in
      let control = hydrate_exn (spec (models_text ~cf1 ~cf2 ~fm)) in
      let control_rep = recheck_exn control in
      Alcotest.(check bool) (c ^ ": consistency equals fresh control")
        control_rep.S.consistent consistent;
      Alcotest.(check bool) (c ^ ": verdicts equal fresh control") true
        (List.map
           (fun (v : S.verdict) -> (Ident.name v.S.v_relation, v.S.v_holds))
           control_rep.S.verdicts
        = List.map (fun (w : P.verdict) -> (w.P.w_relation, w.P.w_holds)) verdicts))
    clients;
  E.shutdown eng;
  let evicted =
    Obs.Metrics.counter_value (Obs.Metrics.counter "server.sessions_evicted")
    - evicted0
  in
  let revived =
    Obs.Metrics.counter_value (Obs.Metrics.counter "server.sessions_revived")
    - revived0
  in
  Alcotest.(check bool) "cap 2 with 5 clients churned" true
    (evicted > 0 && revived > 0)

(* ------------------------------------------------------------------ *)
(* Engine: addressing errors and stats                                 *)

let test_engine_addressing () =
  let eng = E.create ~jobs:1 ~max_live:4 ~snapshot_dir:(tmpdir "addr") () in
  check_contains "unknown session" ~sub:"unknown session"
    (err "recheck nowhere" (call eng ~session:"nope" (P.Recheck { blame = false })));
  ignore (ok "open s" (call eng ~session:"s" (P.Open (base_spec ()))));
  check_contains "double open" ~sub:"already open"
    (err "reopen s" (call eng ~session:"s" (P.Open (base_spec ()))));
  check_contains "commit without menu" ~sub:"rerepair first"
    (err "stale commit" (call eng ~session:"s" (P.Commit { choice = 0 })));
  (match ok "close" (call eng ~session:"s" P.Close) with
  | P.Closed -> ()
  | _ -> Alcotest.fail "expected Closed");
  check_contains "closed sessions are forgotten" ~sub:"unknown session"
    (err "recheck closed" (call eng ~session:"s" (P.Recheck { blame = false })));
  (match ok "stats" (call eng ~session:"" P.Stats) with
  | P.Stats_snapshot j ->
    (match Obs.Json.to_int_opt (Obs.Json.member "sessions_live" j) with
    | Some n -> Alcotest.(check int) "no sessions left live" 0 n
    | None -> Alcotest.fail "stats payload must carry sessions_live")
  | _ -> Alcotest.fail "expected Stats_snapshot");
  E.shutdown eng

(* ------------------------------------------------------------------ *)
(* Telemetry plane: queue-wait accounting, request log, slow counter   *)

let test_queue_accounting_and_reqlog () =
  let m = Obs.Metrics.counter in
  let slow0 = Obs.Metrics.counter_value (m "server.slow_requests") in
  let qw_recheck = Obs.Metrics.histogram "server.queue_wait.recheck_s" in
  let sv_recheck = Obs.Metrics.histogram "server.service.recheck_s" in
  let qw0 = Obs.Metrics.histogram_count qw_recheck in
  let sv0 = Obs.Metrics.histogram_count sv_recheck in
  let dir = tmpdir "reqlog" in
  (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  let log_path = Filename.concat dir "req.jsonl" in
  (try Sys.remove log_path with Sys_error _ -> ());
  let reqlog = Server.Reqlog.create ~path:log_path () in
  (* slow_ms 0: every reply crosses the threshold, so the slow counter
     must advance once per frame — exactly like the record count *)
  let eng = E.create ~jobs:1 ~max_live:4 ~snapshot_dir:dir ~slow_ms:0.0 ~reqlog () in
  ignore (ok "open" (call eng ~session:"q" (P.Open (base_spec ()))));
  (match
     ok "apply"
       (call eng ~session:"q"
          (P.Apply_edits { models = models_text ~cf1:[ "A" ] ~cf2:[] ~fm:base_fm }))
   with
  | P.Applied _ -> ()
  | _ -> Alcotest.fail "expected Applied");
  ignore (checked "recheck 1" (call eng ~session:"q" (P.Recheck { blame = false })));
  ignore (checked "recheck 2" (call eng ~session:"q" (P.Recheck { blame = false })));
  ignore (err "unknown session" (call eng ~session:"ghost" (P.Recheck { blame = false })));
  (match ok "stats" (call eng ~session:"" P.Stats) with
  | P.Stats_snapshot _ -> ()
  | _ -> Alcotest.fail "expected Stats_snapshot");
  E.shutdown eng;
  Server.Reqlog.close reqlog;
  (* zero lost, zero double-counted: engine counter == reqlog count ==
     frames submitted *)
  Alcotest.(check int) "frames served" 6 (E.frames_served eng);
  Alcotest.(check int) "reqlog counted every reply" 6 (Server.Reqlog.count reqlog);
  Alcotest.(check int) "every frame was slow at slow_ms=0" 6
    (Obs.Metrics.counter_value (m "server.slow_requests") - slow0);
  (* the two queued rechecks split into queue-wait + service samples;
     the unknown-session recheck was answered inline and contributes to
     the same verb histograms, so +3 each *)
  Alcotest.(check int) "queue-wait samples per verb" 3
    (Obs.Metrics.histogram_count qw_recheck - qw0);
  Alcotest.(check int) "service samples per verb" 3
    (Obs.Metrics.histogram_count sv_recheck - sv0);
  (* the JSONL file strict-parses, one record per frame, schema intact *)
  let ic = open_in log_path in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> ());
  close_in ic;
  let lines = List.rev !lines in
  Alcotest.(check int) "one JSONL record per frame" 6 (List.length lines);
  let verbs =
    List.map
      (fun line ->
        match Obs.Json.of_string line with
        | Error e -> Alcotest.failf "record is not strict JSON: %s" e
        | Ok j ->
          List.iter
            (fun field ->
              if Obs.Json.member field j = Obs.Json.Null then
                Alcotest.failf "record %s lacks %s" line field)
            [ "ts"; "id"; "session"; "verb"; "queue_wait_s"; "service_s";
              "outcome"; "slow" ];
          (match Obs.Json.to_bool_opt (Obs.Json.member "slow" j) with
          | Some true -> ()
          | _ -> Alcotest.fail "slow_ms=0 must flag every record slow");
          Option.get (Obs.Json.to_string_opt (Obs.Json.member "verb" j)))
      lines
  in
  Alcotest.(check (list string))
    "verbs in reply order"
    [ "open"; "apply_edits"; "recheck"; "recheck"; "recheck"; "stats" ]
    verbs

let test_sessions_json () =
  let eng = E.create ~jobs:1 ~max_live:4 ~snapshot_dir:(tmpdir "sess") () in
  ignore (ok "open a" (call eng ~session:"alpha" (P.Open (base_spec ()))));
  ignore (ok "open b" (call eng ~session:"beta" (P.Open (base_spec ()))));
  let j = E.sessions_json eng in
  let rows = Obs.Json.to_list (Obs.Json.member "sessions" j) in
  Alcotest.(check int) "two sessions listed" 2 (List.length rows);
  Alcotest.(check (list (option string)))
    "sorted by name"
    [ Some "alpha"; Some "beta" ]
    (List.map (fun r -> Obs.Json.to_string_opt (Obs.Json.member "session" r)) rows);
  List.iter
    (fun r ->
      Alcotest.(check (option string))
        "state is live" (Some "live")
        (Obs.Json.to_string_opt (Obs.Json.member "state" r));
      Alcotest.(check (option int))
        "idle queue" (Some 0)
        (Obs.Json.to_int_opt (Obs.Json.member "queue_depth" r));
      Alcotest.(check (option bool))
        "not busy" (Some false)
        (Obs.Json.to_bool_opt (Obs.Json.member "busy" r)))
    rows;
  E.shutdown eng

(* Satellite: malformed frames are counted globally and per connection,
   and never reach the engine. Driven through Net.feed — the exact
   code path a live connection's drain loop runs. *)
let test_net_feed_protocol_errors () =
  let proto0 =
    Obs.Metrics.counter_value (Obs.Metrics.counter "server.protocol_errors")
  in
  let eng = E.create ~jobs:1 ~max_live:4 ~snapshot_dir:(tmpdir "feed") () in
  let served0 = E.frames_served eng in
  let replies = ref [] in
  let send line = replies := line :: !replies in
  let proto_errors = ref 0 in
  let feed = Server.Net.feed ~engine:eng ~proto_errors ~send in
  feed "this is not json";
  feed "";
  feed "   ";
  feed {|{"id":41,"verb":"recheck"}|};
  feed {|{"id":42,"session":"","verb":"stats"}|};
  E.drain eng;
  E.shutdown eng;
  let replies = List.rev !replies in
  Alcotest.(check int) "per-connection tally" 2 !proto_errors;
  Alcotest.(check int) "global protocol_errors counter" 2
    (Obs.Metrics.counter_value (Obs.Metrics.counter "server.protocol_errors")
    - proto0);
  (* blank lines are ignored; malformed frames never reach the engine *)
  Alcotest.(check int) "only the valid frame reached the engine" 1
    (E.frames_served eng - served0);
  Alcotest.(check int) "every non-blank frame got a reply" 3
    (List.length replies);
  (match replies with
  | [ r1; r2; r3 ] ->
    check_contains "first error reply carries the tally"
      ~sub:"protocol error 1 on this connection" r1;
    check_contains "second error reply carries the tally"
      ~sub:"protocol error 2 on this connection" r2;
    check_contains "the valid stats frame is answered" ~sub:"\"ok\":true" r3
  | _ -> Alcotest.fail "expected exactly three replies")

let suite =
  [
    Alcotest.test_case "protocol frames round-trip" `Quick test_codec_round_trip;
    Alcotest.test_case "protocol rejects malformed frames" `Quick
      test_codec_rejects_malformed;
    Alcotest.test_case "snapshot round-trip revives verdicts and menus" `Quick
      test_snapshot_round_trip;
    Alcotest.test_case "snapshot rejects corruption" `Quick
      test_snapshot_rejects_corruption;
    Alcotest.test_case "eviction is transparent" `Quick
      test_eviction_is_transparent;
    Alcotest.test_case "parallel clients are jobs-invariant" `Slow
      test_parallel_clients_jobs_invariant;
    Alcotest.test_case "interleaved requests serialize" `Quick
      test_interleaved_requests_serialize;
    Alcotest.test_case "LRU cap 2, 5 clients: no edit lost" `Slow
      test_lru_never_loses_edits;
    Alcotest.test_case "addressing errors and stats" `Quick
      test_engine_addressing;
    Alcotest.test_case "queue-wait accounting and request log" `Quick
      test_queue_accounting_and_reqlog;
    Alcotest.test_case "sessions_json lists every session" `Quick
      test_sessions_json;
    Alcotest.test_case "net feed counts protocol errors" `Quick
      test_net_feed_protocol_errors;
  ]
