(* Tests for the CDCL solver: hand-picked instances, pigeonhole,
   random 3-SAT cross-checked against a brute-force oracle,
   assumptions and unsat cores, incrementality. *)

module S = Sat.Solver
module L = Sat.Lit

let lit_tests () =
  let v = 5 in
  Alcotest.(check int) "var of pos" v (L.var (L.pos v));
  Alcotest.(check int) "var of neg" v (L.var (L.neg_of v));
  Alcotest.(check bool) "sign pos" true (L.sign (L.pos v));
  Alcotest.(check bool) "sign neg" false (L.sign (L.neg_of v));
  Alcotest.(check int) "double negation" (L.pos v) (L.neg (L.neg (L.pos v)));
  Alcotest.(check int) "dimacs round-trip pos" (L.pos v) (L.of_int (L.to_int (L.pos v)));
  Alcotest.(check int) "dimacs round-trip neg" (L.neg_of v) (L.of_int (L.to_int (L.neg_of v)))

let new_vars s n = Array.init n (fun _ -> S.new_var s)

let test_trivial_sat () =
  let s = S.create () in
  let v = new_vars s 2 in
  S.add_clause s [ L.pos v.(0); L.pos v.(1) ];
  S.add_clause s [ L.neg_of v.(0) ];
  Alcotest.(check bool) "sat" true (S.solve s = S.Sat);
  Alcotest.(check bool) "model satisfies" true (S.value s v.(1));
  Alcotest.(check bool) "forced false" false (S.value s v.(0))

let test_trivial_unsat () =
  let s = S.create () in
  let v = new_vars s 1 in
  S.add_clause s [ L.pos v.(0) ];
  S.add_clause s [ L.neg_of v.(0) ];
  Alcotest.(check bool) "unsat" true (S.solve s = S.Unsat)

let test_empty_clause () =
  let s = S.create () in
  S.add_clause s [];
  Alcotest.(check bool) "empty clause unsat" true (S.solve s = S.Unsat)

let test_no_clauses () =
  let s = S.create () in
  let _ = new_vars s 3 in
  Alcotest.(check bool) "vacuous sat" true (S.solve s = S.Sat)

let test_tautology_dropped () =
  let s = S.create () in
  let v = new_vars s 1 in
  S.add_clause s [ L.pos v.(0); L.neg_of v.(0) ];
  Alcotest.(check int) "tautology not stored" 0 (S.nb_clauses s);
  Alcotest.(check bool) "sat" true (S.solve s = S.Sat)

let pigeonhole n m =
  (* n pigeons into m holes *)
  let s = S.create () in
  let v = Array.init n (fun _ -> Array.init m (fun _ -> S.new_var s)) in
  for i = 0 to n - 1 do
    S.add_clause s (List.init m (fun j -> L.pos v.(i).(j)))
  done;
  for j = 0 to m - 1 do
    for i = 0 to n - 1 do
      for k = i + 1 to n - 1 do
        S.add_clause s [ L.neg_of v.(i).(j); L.neg_of v.(k).(j) ]
      done
    done
  done;
  s

let test_pigeonhole_unsat () =
  Alcotest.(check bool) "php(5,4) unsat" true (S.solve (pigeonhole 5 4) = S.Unsat)

let test_pigeonhole_sat () =
  Alcotest.(check bool) "php(4,4) sat" true (S.solve (pigeonhole 4 4) = S.Sat)

(* brute force over <= 16 vars *)
let brute_force nv clauses =
  let rec go assign v =
    if v = nv then
      List.for_all
        (fun c ->
          List.exists
            (fun l -> if L.sign l then assign.(L.var l) else not assign.(L.var l))
            c)
        clauses
    else begin
      assign.(v) <- true;
      go assign (v + 1)
      ||
      (assign.(v) <- false;
       go assign (v + 1))
    end
  in
  go (Array.make nv false) 0

let random_clauses rng nv nc len =
  List.init nc (fun _ ->
      List.init len (fun _ ->
          L.make (Random.State.int rng nv) (Random.State.bool rng)))

let test_random_vs_brute =
  QCheck.Test.make ~name:"solver agrees with brute force on random 3-SAT" ~count:300
    QCheck.small_int (fun seed ->
      let rng = Random.State.make [| seed |] in
      let nv = 6 + Random.State.int rng 4 in
      let nc = 5 + Random.State.int rng 40 in
      let clauses = random_clauses rng nv nc 3 in
      let s = S.create () in
      let _ = new_vars s nv in
      List.iter (S.add_clause s) clauses;
      let got = S.solve s = S.Sat in
      let want = brute_force nv clauses in
      if got <> want then false
      else if got then
        (* the model really satisfies every clause *)
        List.for_all (fun c -> List.exists (S.lit_value s) c) clauses
      else true)

let test_assumptions () =
  let s = S.create () in
  let v = new_vars s 3 in
  (* v0 -> v1 -> v2 *)
  S.add_clause s [ L.neg_of v.(0); L.pos v.(1) ];
  S.add_clause s [ L.neg_of v.(1); L.pos v.(2) ];
  Alcotest.(check bool) "sat under v0" true
    (S.solve ~assumptions:[ L.pos v.(0) ] s = S.Sat);
  Alcotest.(check bool) "propagation under assumption" true (S.value s v.(2));
  Alcotest.(check bool) "unsat under v0 & !v2" true
    (S.solve ~assumptions:[ L.pos v.(0); L.neg_of v.(2) ] s = S.Unsat);
  let core = S.unsat_core s in
  Alcotest.(check bool) "core non-empty" true (core <> []);
  Alcotest.(check bool) "core within assumptions" true
    (List.for_all (fun l -> l = L.pos v.(0) || l = L.neg_of v.(2)) core);
  (* the solver is reusable afterwards *)
  Alcotest.(check bool) "still sat without assumptions" true (S.solve s = S.Sat)

let test_incremental () =
  let s = S.create () in
  let v = new_vars s 2 in
  S.add_clause s [ L.pos v.(0); L.pos v.(1) ];
  Alcotest.(check bool) "sat" true (S.solve s = S.Sat);
  (* add clauses after solving *)
  S.add_clause s [ L.neg_of v.(0) ];
  S.add_clause s [ L.neg_of v.(1) ];
  Alcotest.(check bool) "now unsat" true (S.solve s = S.Unsat);
  (* fresh variables can still be added *)
  let s2 = S.create () in
  let a = S.new_var s2 in
  S.add_clause s2 [ L.pos a ];
  Alcotest.(check bool) "sat" true (S.solve s2 = S.Sat);
  let b = S.new_var s2 in
  S.add_clause s2 [ L.neg_of b ];
  Alcotest.(check bool) "extended instance sat" true (S.solve s2 = S.Sat);
  Alcotest.(check bool) "b false" false (S.value s2 b)

let test_stats () =
  let s = pigeonhole 5 4 in
  let _ = S.solve s in
  let st = S.stats s in
  Alcotest.(check bool) "conflicts happened" true (st.S.conflicts > 0);
  Alcotest.(check bool) "clauses learnt" true (st.S.learnt > 0)

let test_unit_chain_propagation () =
  (* long implication chain solved by propagation alone *)
  let s = S.create () in
  let n = 200 in
  let v = new_vars s n in
  for i = 0 to n - 2 do
    S.add_clause s [ L.neg_of v.(i); L.pos v.(i + 1) ]
  done;
  S.add_clause s [ L.pos v.(0) ];
  Alcotest.(check bool) "sat" true (S.solve s = S.Sat);
  Alcotest.(check bool) "chain end forced" true (S.value s v.(n - 1));
  let st = S.stats s in
  Alcotest.(check bool) "no search needed" true (st.S.conflicts = 0)

let test_core_dedup () =
  let s = S.create () in
  let v = new_vars s 3 in
  S.add_clause s [ L.neg_of v.(0); L.neg_of v.(1) ];
  (* duplicated assumptions must not duplicate core literals *)
  let a = [ L.pos v.(0); L.pos v.(0); L.pos v.(1); L.pos v.(1); L.pos v.(2) ] in
  Alcotest.(check bool) "unsat" true (S.solve ~assumptions:a s = S.Unsat);
  let core = S.unsat_core s in
  Alcotest.(check bool) "sorted and duplicate-free" true
    (core = List.sort_uniq compare core);
  Alcotest.(check bool) "within assumptions" true
    (List.for_all (fun l -> List.mem l a) core)

let test_minimize_core_order_invariant () =
  let s = S.create () in
  let v = new_vars s 6 in
  (* unique minimal core {v0, v1} among six assumed literals *)
  S.add_clause s [ L.neg_of v.(0); L.neg_of v.(1) ];
  let runs =
    List.map
      (fun perm ->
        let a = List.map (fun i -> L.pos v.(i)) perm in
        Alcotest.(check bool) "unsat" true (S.solve ~assumptions:a s = S.Unsat);
        S.minimize_core s)
      [ [ 0; 1; 2; 3; 4; 5 ]; [ 5; 4; 3; 2; 1; 0 ]; [ 2; 0; 4; 1; 5; 3 ] ]
  in
  List.iter
    (fun m ->
      Alcotest.(check bool) "minimal core found" true
        (List.sort compare m = List.sort compare [ L.pos v.(0); L.pos v.(1) ]);
      let mm = S.minimize_core ~core:m s in
      Alcotest.(check bool) "unsat_core returns the minimized core" true
        (S.unsat_core s = mm))
    runs

let test_assumption_trail_reuse () =
  let s = S.create () in
  let n = 200 in
  let v = new_vars s n in
  (* implication chain: the first assumption propagates everything *)
  for i = 0 to n - 2 do
    S.add_clause s [ L.neg_of v.(i); L.pos v.(i + 1) ]
  done;
  let pins = List.init (n - 1) (fun i -> L.pos v.(i)) in
  Alcotest.(check bool) "sat" true (S.solve ~assumptions:pins s = S.Sat);
  let p0 = (S.stats s).S.propagations in
  Alcotest.(check bool) "sat with extended assumptions" true
    (S.solve ~assumptions:(pins @ [ L.pos v.(n - 1) ]) s = S.Sat);
  let p1 = (S.stats s).S.propagations in
  Alcotest.(check bool) "shared prefix not re-propagated" true (p1 - p0 < 20);
  (* a diverging first assumption falls back to a full re-solve and
     still answers correctly (nothing forces v0 from above) *)
  Alcotest.(check bool) "sat under flipped head" true
    (S.solve ~assumptions:[ L.neg_of v.(0) ] s = S.Sat);
  Alcotest.(check bool) "v0 false" false (S.value s v.(0));
  (* adding a clause invalidates the frozen trail; answers stay right *)
  S.add_clause s [ L.pos v.(0) ];
  Alcotest.(check bool) "pins still sat" true (S.solve ~assumptions:pins s = S.Sat);
  Alcotest.(check bool) "flipped head now unsat" true
    (S.solve ~assumptions:[ L.neg_of v.(0) ] s = S.Unsat)

let suite =
  [
    Alcotest.test_case "literals" `Quick lit_tests;
    Alcotest.test_case "trivial sat" `Quick test_trivial_sat;
    Alcotest.test_case "trivial unsat" `Quick test_trivial_unsat;
    Alcotest.test_case "empty clause" `Quick test_empty_clause;
    Alcotest.test_case "no clauses" `Quick test_no_clauses;
    Alcotest.test_case "tautology dropped" `Quick test_tautology_dropped;
    Alcotest.test_case "pigeonhole unsat" `Quick test_pigeonhole_unsat;
    Alcotest.test_case "pigeonhole sat" `Quick test_pigeonhole_sat;
    Alcotest.test_case "assumptions and core" `Quick test_assumptions;
    Alcotest.test_case "core dedup" `Quick test_core_dedup;
    Alcotest.test_case "minimize_core order-invariance" `Quick
      test_minimize_core_order_invariant;
    Alcotest.test_case "assumption trail reuse" `Quick
      test_assumption_trail_reuse;
    Alcotest.test_case "incremental solving" `Quick test_incremental;
    Alcotest.test_case "stats" `Quick test_stats;
    Alcotest.test_case "unit chain" `Quick test_unit_chain_propagation;
    QCheck_alcotest.to_alcotest test_random_vs_brute;
  ]

let test_reduce_db_stress () =
  (* hard enough to trigger learnt-database reductions; correctness is
     the point, the reduce counter proves the path ran *)
  let s = pigeonhole 8 7 in
  Alcotest.(check bool) "php(8,7) unsat" true (S.solve s = S.Unsat);
  let st = S.stats s in
  Alcotest.(check bool) "database was reduced" true (st.S.reduces > 0)

let test_reduce_db_preserves_models () =
  (* a satisfiable instance solved across reductions still yields a
     correct model *)
  let rng = Random.State.make [| 99 |] in
  let nv = 120 in
  let s = S.create () in
  let _ = new_vars s nv in
  (* under-constrained 3-SAT (ratio ~3.5): satisfiable w.h.p. and
     big enough to restart a few times *)
  let clauses = random_clauses rng nv (7 * nv / 2) 3 in
  List.iter (S.add_clause s) clauses;
  match S.solve s with
  | S.Unsat -> ()  (* unlikely but legal; nothing to verify *)
  | S.Sat ->
    Alcotest.(check bool) "model satisfies all clauses" true
      (List.for_all (fun c -> List.exists (S.lit_value s) c) clauses)

let test_modernization_counters () =
  (* a conflict-heavy instance exercises both phase saving and
     learnt-clause minimization; the counters prove the paths ran *)
  let s = pigeonhole 6 5 in
  Alcotest.(check bool) "php(6,5) unsat" true (S.solve s = S.Unsat);
  Alcotest.(check bool) "phases flipped during search" true (S.phase_flips s > 0);
  Alcotest.(check bool) "learnt clauses were minimized" true
    (S.minimized_lits s > 0)

let test_minimization_preserves_answers =
  (* denser random CNFs than the base corpus (more conflicts, so the
     minimizer actually fires) still agree with the brute-force
     oracle — minimization only ever shrinks learnt clauses and must
     not change any answer *)
  QCheck.Test.make ~name:"answers unchanged under learnt-clause minimization"
    ~count:200 QCheck.small_int (fun seed ->
      let rng = Random.State.make [| 1000 + seed |] in
      let nv = 8 + Random.State.int rng 5 in
      let nc = (4 * nv) + Random.State.int rng (2 * nv) in
      let clauses = random_clauses rng nv nc 3 in
      let s = S.create () in
      let _ = new_vars s nv in
      List.iter (S.add_clause s) clauses;
      let got = S.solve s = S.Sat in
      let want = brute_force nv clauses in
      got = want
      && ((not got) || List.for_all (fun c -> List.exists (S.lit_value s) c) clauses))

let test_phase_saving_preserved () =
  (* a Sat answer saves the model's polarities; clone and interrupt
     must both preserve them *)
  let s = S.create () in
  let n = 12 in
  let v = new_vars s n in
  (* force a specific model: odd vars true, even vars false *)
  Array.iteri
    (fun i vi ->
      S.add_clause s [ (if i mod 2 = 1 then L.pos vi else L.neg_of vi) ])
    v;
  Alcotest.(check bool) "sat" true (S.solve s = S.Sat);
  Array.iteri
    (fun i vi ->
      Alcotest.(check bool)
        (Printf.sprintf "saved phase of v%d follows the model" i)
        (i mod 2 = 1) (S.saved_phase s vi))
    v;
  let before = Array.map (S.saved_phase s) v in
  (* clone: phases carry over *)
  let c = S.clone s in
  Array.iteri
    (fun i vi ->
      Alcotest.(check bool)
        (Printf.sprintf "clone preserves phase of v%d" i)
        before.(i) (S.saved_phase c vi))
    v;
  (* interrupt: the flag makes the next solve raise; the backtrack to
     root must not erase the saved phases *)
  S.interrupt s;
  (match S.solve s with
  | exception S.Interrupted -> ()
  | _ -> Alcotest.fail "pending interrupt must raise");
  Array.iteri
    (fun i vi ->
      Alcotest.(check bool)
        (Printf.sprintf "interrupt preserves phase of v%d" i)
        before.(i) (S.saved_phase s vi))
    v;
  (* and the solver is still usable with the same answer *)
  Alcotest.(check bool) "still sat after interrupt" true (S.solve s = S.Sat)

let suite =
  suite
  @ [
      Alcotest.test_case "reduce_db stress" `Slow test_reduce_db_stress;
      Alcotest.test_case "reduce_db preserves models" `Quick
        test_reduce_db_preserves_models;
      Alcotest.test_case "modernization counters" `Quick
        test_modernization_counters;
      Alcotest.test_case "phase saving preserved by clone/interrupt" `Quick
        test_phase_saving_preserved;
      QCheck_alcotest.to_alcotest test_minimization_preserves_answers;
    ]
