(* Property tests: random transformation ASTs survive a
   print → parse round-trip unchanged. This pins down the concrete
   syntax against printer/parser drift for the whole grammar, not just
   the hand-written cases in test_parser. *)

module A = Qvtr.Ast
module I = Mdl.Ident

(* --- generators ---------------------------------------------------- *)

let gen_lower = QCheck.Gen.oneofl [ "x"; "y"; "z"; "foo"; "bar"; "v1"; "v2" ]
let gen_upper = QCheck.Gen.oneofl [ "C"; "D"; "Klass"; "Thing" ]
let gen_feature = QCheck.Gen.oneofl [ "name"; "size"; "label"; "kids" ]
let gen_param = QCheck.Gen.oneofl [ "m1"; "m2"; "m3" ]

let gen_oexpr : A.oexpr QCheck.Gen.t =
  QCheck.Gen.sized (fun n ->
      QCheck.Gen.fix
        (fun self n ->
          let open QCheck.Gen in
          let leaf =
            oneof
              [
                map (fun v -> A.O_var (I.make v)) gen_lower;
                map (fun s -> A.O_str s) (oneofl [ "a"; "hello"; "x y" ]);
                map (fun i -> A.O_int i) (int_range (-5) 20);
                map (fun b -> A.O_bool b) bool;
                map (fun l -> A.O_enum (I.make l)) (oneofl [ "red"; "blue" ]);
                map2 (fun p c -> A.O_all (I.make p, I.make c)) gen_param gen_upper;
              ]
          in
          if n <= 0 then leaf
          else
            oneof
              [
                leaf;
                map2 (fun e f -> A.O_nav (e, I.make f)) (self (n - 1)) gen_feature;
                map2 (fun a b -> A.O_union (a, b)) (self (n / 2)) (self (n / 2));
                map2 (fun a b -> A.O_inter (a, b)) (self (n / 2)) (self (n / 2));
                map2 (fun a b -> A.O_diff (a, b)) (self (n / 2)) (self (n / 2));
              ])
        (min n 4))

let gen_pred : A.pred QCheck.Gen.t =
  QCheck.Gen.sized (fun n ->
      QCheck.Gen.fix
        (fun self n ->
          let open QCheck.Gen in
          let atom =
            oneof
              [
                map2 (fun a b -> A.P_eq (a, b)) gen_oexpr gen_oexpr;
                map2 (fun a b -> A.P_neq (a, b)) gen_oexpr gen_oexpr;
                map2 (fun a b -> A.P_in (a, b)) gen_oexpr gen_oexpr;
                map2 (fun a b -> A.P_lt (a, b)) gen_oexpr gen_oexpr;
                map2 (fun a b -> A.P_le (a, b)) gen_oexpr gen_oexpr;
                map (fun a -> A.P_empty a) gen_oexpr;
                map (fun a -> A.P_nonempty a) gen_oexpr;
                map2
                  (fun r args -> A.P_call (I.make r, List.map I.make args))
                  (oneofl [ "Rel"; "Helper" ])
                  (oneofl [ [ "x"; "y" ]; [ "x"; "y"; "z" ] ]);
              ]
          in
          if n <= 0 then atom
          else
            oneof
              [
                atom;
                map (fun p -> A.P_not p) (self (n - 1));
                map2 (fun a b -> A.P_and (a, b)) (self (n / 2)) (self (n / 2));
                map2 (fun a b -> A.P_or (a, b)) (self (n / 2)) (self (n / 2));
                map2 (fun a b -> A.P_implies (a, b)) (self (n / 2)) (self (n / 2));
              ])
        (min n 4))

let gen_template : A.template QCheck.Gen.t =
  let open QCheck.Gen in
  (* distinct variable names per nesting level keep the AST printable *)
  let rec gen depth var =
    let* cls = gen_upper in
    let* props =
      list_size (int_bound 3)
        (let* f = gen_feature in
         let* value =
           if depth <= 0 then map (fun e -> A.PV_expr e) gen_oexpr
           else
             frequency
               [
                 (3, map (fun e -> A.PV_expr e) gen_oexpr);
                 (1, map (fun t -> A.PV_template t) (gen (depth - 1) (var ^ "n")));
               ]
         in
         return { A.p_feature = I.make f; p_value = value; p_loc = Qvtr.Loc.none })
    in
    return
      {
        A.t_var = I.make var;
        t_class = I.make cls;
        t_props = props;
        t_loc = Qvtr.Loc.none;
      }
  in
  let* root = oneofl [ "a"; "b"; "c" ] in
  gen 2 root

let gen_var_type : A.var_type QCheck.Gen.t =
  QCheck.Gen.oneof
    [
      QCheck.Gen.return A.T_string;
      QCheck.Gen.return A.T_int;
      QCheck.Gen.return A.T_bool;
      QCheck.Gen.map (fun e -> A.T_enum (I.make e)) (QCheck.Gen.oneofl [ "Color"; "Size" ]);
      QCheck.Gen.map2
        (fun p c -> A.T_class (I.make p, I.make c))
        gen_param gen_upper;
    ]

let gen_relation : A.relation QCheck.Gen.t =
  let open QCheck.Gen in
  let* name = oneofl [ "R"; "S"; "Sync" ] in
  let* top = bool in
  let* vars =
    list_size (int_bound 2)
      (let* v = oneofl [ "n"; "k"; "w" ] in
       let* ty = gen_var_type in
       return { A.v_name = I.make v; v_type = ty; v_loc = Qvtr.Loc.none })
  in
  (* deduplicate variable names (the printer would emit clashes) *)
  let vars =
    List.fold_left
      (fun acc (vd : A.vardecl) ->
        if List.exists (fun (wd : A.vardecl) -> I.equal vd.A.v_name wd.A.v_name) acc
        then acc
        else vd :: acc)
      [] vars
    |> List.rev
  in
  let* d1 = gen_template in
  let* d2 = gen_template in
  let d2 = { d2 with A.t_var = I.make (I.name d2.A.t_var ^ "2") } in
  let* enforceable = bool in
  let domains =
    [
      {
        A.d_model = I.make "m1";
        d_template = d1;
        d_enforceable = enforceable;
        d_loc = Qvtr.Loc.none;
      };
      {
        A.d_model = I.make "m2";
        d_template = d2;
        d_enforceable = true;
        d_loc = Qvtr.Loc.none;
      };
    ]
  in
  let* when_ = list_size (int_bound 2) gen_pred in
  let* where = list_size (int_bound 2) gen_pred in
  let dep srcs tgt =
    {
      A.dep_sources = List.map I.make srcs;
      dep_target = I.make tgt;
      dep_loc = Qvtr.Loc.none;
    }
  in
  let* deps =
    oneofl
      [
        [];
        [ dep [ "m1" ] "m2" ];
        [ dep [ "m1" ] "m2"; dep [ "m2" ] "m1" ];
      ]
  in
  return
    {
      A.r_name = I.make name;
      r_top = top;
      r_vars = vars;
      r_prims = [];
      r_domains = domains;
      r_when = A.clauses when_;
      r_where = A.clauses where;
      r_deps = deps;
      r_loc = Qvtr.Loc.none;
    }

let gen_transformation : A.transformation QCheck.Gen.t =
  let open QCheck.Gen in
  let* rel = gen_relation in
  let* rel2 = gen_relation in
  let rel2 = { rel2 with A.r_name = I.make (I.name rel2.A.r_name ^ "2") } in
  let* n = int_bound 1 in
  return
    {
      A.t_name = I.make "T";
      t_params =
        [
          { A.par_name = I.make "m1"; par_mm = I.make "MMA"; par_loc = Qvtr.Loc.none };
          { A.par_name = I.make "m2"; par_mm = I.make "MMB"; par_loc = Qvtr.Loc.none };
        ];
      t_relations = (if n = 0 then [ rel ] else [ rel; rel2 ]);
      t_loc = Qvtr.Loc.none;
    }

let arb_transformation =
  QCheck.make ~print:(fun t -> Qvtr.Parser.to_string t) gen_transformation

(* Variable-name sanity: nested templates generated above may reuse a
   root variable name; the parser does not care (it is Typecheck's
   job), so the round-trip must still hold. *)

let prop_roundtrip =
  QCheck.Test.make ~name:"print/parse round-trip on random transformations"
    ~count:500 arb_transformation (fun t ->
      let printed = Qvtr.Parser.to_string t in
      match Qvtr.Parser.parse printed with
      | Ok t' ->
        if t = A.strip_locs t' then true
        else QCheck.Test.fail_reportf "reparse differs for:\n%s" printed
      | Error e -> QCheck.Test.fail_reportf "reparse failed (%s) for:\n%s" e printed)

let prop_oexpr_roundtrip =
  (* expressions alone, via a minimal wrapper relation *)
  QCheck.Test.make ~name:"oexpr round-trip" ~count:500
    (QCheck.make gen_oexpr ~print:(fun e -> Format.asprintf "%a" A.pp_oexpr e))
    (fun e ->
      let tpl v c =
        { A.t_var = I.make v; t_class = I.make c; t_props = []; t_loc = Qvtr.Loc.none }
      in
      let wrap =
        {
          A.t_name = I.make "W";
          t_params =
            [
              { A.par_name = I.make "m1"; par_mm = I.make "MMA"; par_loc = Qvtr.Loc.none };
              { A.par_name = I.make "m2"; par_mm = I.make "MMB"; par_loc = Qvtr.Loc.none };
            ];
          t_relations =
            [
              {
                A.r_name = I.make "R";
                r_top = true;
                r_vars = [];
                r_prims = [];
                r_domains =
                  [
                    {
                      A.d_model = I.make "m1";
                      d_template = tpl "x" "C";
                      d_enforceable = true;
                      d_loc = Qvtr.Loc.none;
                    };
                    {
                      A.d_model = I.make "m2";
                      d_template = tpl "y" "D";
                      d_enforceable = true;
                      d_loc = Qvtr.Loc.none;
                    };
                  ];
                r_when = [];
                r_where = A.clauses [ A.P_nonempty e ];
                r_deps = [];
                r_loc = Qvtr.Loc.none;
              };
            ];
          t_loc = Qvtr.Loc.none;
        }
      in
      match Qvtr.Parser.parse (Qvtr.Parser.to_string wrap) with
      | Ok t' -> A.strip_locs t' = wrap
      | Error msg ->
        QCheck.Test.fail_reportf "parse failed: %s for %s" msg
          (Format.asprintf "%a" A.pp_oexpr e))

let suite =
  [
    QCheck_alcotest.to_alcotest prop_roundtrip;
    QCheck_alcotest.to_alcotest prop_oexpr_roundtrip;
  ]

(* --- pipeline robustness fuzz ---------------------------------------- *)

(* Metamodels giving the random ASTs a chance to typecheck: all class
   and feature names the generators draw from exist. Random programs
   that still fail to typecheck must be REJECTED (Error), never crash;
   programs that typecheck must check cleanly on models. *)
let fuzz_mma =
  Mdl.Metamodel.make_exn ~name:"MMA"
    [
      Mdl.Metamodel.cls "C"
        ~attrs:
          [
            Mdl.Metamodel.attr "name" Mdl.Metamodel.P_string;
            Mdl.Metamodel.attr "size" Mdl.Metamodel.P_int;
            Mdl.Metamodel.attr "label" Mdl.Metamodel.P_string;
          ]
        ~refs:[ Mdl.Metamodel.ref_ "kids" ~target:"Klass" ];
      Mdl.Metamodel.cls "Klass" ~attrs:[ Mdl.Metamodel.attr "name" Mdl.Metamodel.P_string ];
    ]

let fuzz_mmb =
  Mdl.Metamodel.make_exn ~name:"MMB"
    [
      Mdl.Metamodel.cls "D"
        ~attrs:
          [
            Mdl.Metamodel.attr "name" Mdl.Metamodel.P_string;
            Mdl.Metamodel.attr "size" Mdl.Metamodel.P_int;
            Mdl.Metamodel.attr "label" Mdl.Metamodel.P_string;
          ]
        ~refs:[ Mdl.Metamodel.ref_ "kids" ~target:"Thing" ];
      Mdl.Metamodel.cls "Thing" ~attrs:[ Mdl.Metamodel.attr "name" Mdl.Metamodel.P_string ];
    ]

let fuzz_metamodels = [ (I.make "MMA", fuzz_mma); (I.make "MMB", fuzz_mmb) ]

let fuzz_models () =
  let m1 = Mdl.Model.empty ~name:"m1" fuzz_mma in
  let m1, c = Mdl.Model.add_object m1 ~cls:(I.make "C") in
  let m1 = Mdl.Model.set_attr1 m1 c (I.make "name") (Mdl.Value.Str "a") in
  let m1 = Mdl.Model.set_attr1 m1 c (I.make "size") (Mdl.Value.Int 1) in
  let m1 = Mdl.Model.set_attr1 m1 c (I.make "label") (Mdl.Value.Str "l") in
  let m2 = Mdl.Model.empty ~name:"m2" fuzz_mmb in
  let m2, d = Mdl.Model.add_object m2 ~cls:(I.make "D") in
  let m2 = Mdl.Model.set_attr1 m2 d (I.make "name") (Mdl.Value.Str "a") in
  let m2 = Mdl.Model.set_attr1 m2 d (I.make "size") (Mdl.Value.Int 1) in
  let m2 = Mdl.Model.set_attr1 m2 d (I.make "label") (Mdl.Value.Str "l") in
  [ (I.make "m1", m1); (I.make "m2", m2) ]

let prop_pipeline_no_crash =
  QCheck.Test.make ~name:"typecheck/check never crash on random ASTs" ~count:500
    arb_transformation (fun t ->
      match Qvtr.Typecheck.check t ~metamodels:fuzz_metamodels with
      | Error _ -> true  (* cleanly rejected *)
      | Ok _ -> (
        match Qvtr.Check.run t ~metamodels:fuzz_metamodels ~models:(fuzz_models ()) with
        | Ok _ | Error _ -> true)
      | exception e ->
        QCheck.Test.fail_reportf "raised %s on:\n%s" (Printexc.to_string e)
          (Qvtr.Parser.to_string t))

let suite =
  suite @ [ QCheck_alcotest.to_alcotest prop_pipeline_no_crash ]
