(* Coverage for internal plumbing not exercised directly elsewhere:
   the repair search space (Echo.Space), relational instances, and the
   QVT-R lexer. *)

module F = Featuremodel.Fm
module I = Mdl.Ident
module TS = Relog.Rel.Tupleset

(* --- Echo.Space ----------------------------------------------------- *)

let build_space ?model_weights targets =
  let trans = F.transformation ~k:2 in
  let cfs = [ F.configuration ~name:"cf1" [ "A" ]; F.configuration ~name:"cf2" [] ] in
  let fm = F.feature_model ~name:"fm" [ ("A", true) ] in
  match
    Echo.Space.build ?model_weights ~transformation:trans
      ~metamodels:F.metamodels ~models:(F.bind ~cfs ~fm)
      ~targets:(Echo.Target.of_list targets) ()
  with
  | Ok s -> s
  | Error e -> Alcotest.failf "space: %s" e

let test_space_change_literals_scope () =
  let space = build_space [ "cf1" ] in
  let finder = Relog.Finder.prepare (Echo.Space.bounds space) (Echo.Space.formulas space) in
  let trans = Relog.Finder.translation finder in
  let changes = Echo.Space.change_literals space trans in
  Alcotest.(check bool) "some change literals" true (changes <> []);
  (* only cf1's relations are mutable: every primary belongs to cf1 *)
  let all_cf1 =
    Relog.Translate.fold_primaries trans
      (fun r _ _ acc ->
        acc
        && String.length (I.name r) > 4
        && String.sub (I.name r) 0 4 = "cf1$")
      true
  in
  Alcotest.(check bool) "primaries confined to the target model" true all_cf1

let test_space_weights () =
  let unweighted = build_space [ "cf1" ] in
  let weighted = build_space ~model_weights:[ (I.make "cf1", 3) ] [ "cf1" ] in
  let total s =
    let finder = Relog.Finder.prepare (Echo.Space.bounds s) (Echo.Space.formulas s) in
    Echo.Space.total_weight s (Relog.Finder.translation finder)
  in
  Alcotest.(check int) "weights scale the total" (3 * total unweighted) (total weighted)

let test_space_rejects_bad_weights () =
  let trans = F.transformation ~k:2 in
  let cfs = [ F.configuration ~name:"cf1" []; F.configuration ~name:"cf2" [] ] in
  let fm = F.feature_model ~name:"fm" [] in
  match
    Echo.Space.build
      ~model_weights:[ (I.make "cf1", 0) ]
      ~transformation:trans ~metamodels:F.metamodels ~models:(F.bind ~cfs ~fm)
      ~targets:(Echo.Target.single "cf1") ()
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "zero weight must be rejected"

let test_space_relational_distance () =
  let space = build_space [ "cf1" ] in
  (* the original instance is at distance 0 from itself *)
  let enc = Echo.Space.encoding space in
  let inst = Qvtr.Encode.check_instance enc in
  Alcotest.(check int) "distance to self" 0 (Echo.Space.relational_distance space inst)

(* --- Relog.Instance -------------------------------------------------- *)

let test_instance_union_all () =
  let u = Relog.Rel.Universe.make [ I.make "a"; I.make "b" ] in
  let i1 = Relog.Instance.set (Relog.Instance.make u) (I.make "R") (TS.of_list [ [| 0 |] ]) in
  let i2 = Relog.Instance.set (Relog.Instance.make u) (I.make "S") (TS.of_list [ [| 1 |] ]) in
  let merged = Relog.Instance.union_all i1 i2 in
  Alcotest.(check int) "both relations present" 2
    (List.length (Relog.Instance.relations merged));
  (* same relation with same value is accepted *)
  let i3 = Relog.Instance.set (Relog.Instance.make u) (I.make "R") (TS.of_list [ [| 0 |] ]) in
  Alcotest.(check bool) "idempotent merge" true
    (Relog.Instance.union_all i1 i3 |> fun m -> Relog.Instance.mem m (I.make "R"));
  (* conflicting values are rejected *)
  let i4 = Relog.Instance.set (Relog.Instance.make u) (I.make "R") (TS.of_list [ [| 1 |] ]) in
  match Relog.Instance.union_all i1 i4 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "conflicting relation values must be rejected"

(* --- Qvtr.Lexer ------------------------------------------------------ *)

let tokens_of src =
  let lx = Qvtr.Lexer.make src in
  let rec go acc =
    match Qvtr.Lexer.token lx with
    | Qvtr.Lexer.Eof -> List.rev acc
    | t ->
      Qvtr.Lexer.next lx;
      go (t :: acc)
  in
  go []

let test_lexer_tokens () =
  let open Qvtr.Lexer in
  Alcotest.(check int) "idents and puncts" 5
    (List.length (tokens_of "foo ( bar , baz"));
  (match tokens_of "x -> y <> z <= w" with
  | [ Ident "x"; Punct "->"; Ident "y"; Punct "<>"; Ident "z"; Punct "<="; Ident "w" ]
    -> ()
  | _ -> Alcotest.fail "multi-char operators");
  (match tokens_of "\"hi\\nthere\" 42 -7" with
  | [ String "hi\nthere"; Int 42; Int (-7) ] -> ()
  | _ -> Alcotest.fail "literals");
  (match tokens_of "a // gone\nb /* also\ngone */ c" with
  | [ Ident "a"; Ident "b"; Ident "c" ] -> ()
  | _ -> Alcotest.fail "comments")

let test_lexer_errors () =
  (match tokens_of "\"unterminated" with
  | exception Qvtr.Lexer.Error _ -> ()
  | _ -> Alcotest.fail "unterminated string must raise");
  match tokens_of "/* unterminated" with
  | exception Qvtr.Lexer.Error _ -> ()
  | _ -> Alcotest.fail "unterminated comment must raise"

let test_lexer_positions () =
  let lx = Qvtr.Lexer.make "a\n  b" in
  Alcotest.(check (pair int int)) "first token position" (1, 1)
    (Qvtr.Lexer.position lx);
  Qvtr.Lexer.next lx;
  Alcotest.(check (pair int int)) "second token position" (2, 3)
    (Qvtr.Lexer.position lx)

let suite =
  [
    Alcotest.test_case "space: change literals confined" `Quick
      test_space_change_literals_scope;
    Alcotest.test_case "space: weights" `Quick test_space_weights;
    Alcotest.test_case "space: bad weights" `Quick test_space_rejects_bad_weights;
    Alcotest.test_case "space: distance to self" `Quick test_space_relational_distance;
    Alcotest.test_case "instance: union_all" `Quick test_instance_union_all;
    Alcotest.test_case "lexer: tokens" `Quick test_lexer_tokens;
    Alcotest.test_case "lexer: errors" `Quick test_lexer_errors;
    Alcotest.test_case "lexer: positions" `Quick test_lexer_positions;
  ]
