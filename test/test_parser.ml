(* Tests for the QVT-R lexer and parser: positive cases, operator
   precedence, error positions, and print/parse round-trips. *)

module P = Qvtr.Parser
module A = Qvtr.Ast
module I = Mdl.Ident

let minimal =
  {|
transformation T(a : MMA, b : MMB) {
  top relation R {
    n : String;
    domain a x : C { name = n };
    domain b y : D { name = n };
  }
}
|}

let test_minimal () =
  let t = P.parse_exn minimal in
  Alcotest.(check string) "name" "T" (I.name t.A.t_name);
  Alcotest.(check int) "params" 2 (List.length t.A.t_params);
  let r = List.hd t.A.t_relations in
  Alcotest.(check bool) "top" true r.A.r_top;
  Alcotest.(check int) "domains" 2 (List.length r.A.r_domains);
  Alcotest.(check int) "vars" 1 (List.length r.A.r_vars);
  Alcotest.(check int) "no deps" 0 (List.length r.A.r_deps)

let full =
  {|
// a transformation exercising every construct
transformation Full(m1 : A, m2 : B, m3 : C) {
  top relation R {
    n : String;
    k : Integer;
    flag : Boolean;
    col : Color;
    other : Klass@m1;
    checkonly domain m1 x : Klass { name = n, child = y : Kid { age = k } };
    enforce domain m2 z : Thing { label = n };
    domain m3 w : Entry { key = n, active = true, size = 3, color = #red };
    when { n <> "reserved"; Helper(x, z) }
    where { z.label = x.name; nonempty w.key; (flag = true or k = 0) and not (empty x.child) }
    dependencies { m1 m2 -> m3; m3 -> m1; }
  }
  relation Helper {
    s : String;
    domain m1 x : Klass { name = s };
    domain m2 z : Thing { label = s };
    dependencies { m1 -> m2; m2 -> m1; }
  }
}
|}

let test_full_parse () =
  let t = P.parse_exn full in
  let r = List.hd t.A.t_relations in
  Alcotest.(check int) "vars incl typed" 5 (List.length r.A.r_vars);
  Alcotest.(check int) "3 domains" 3 (List.length r.A.r_domains);
  let d1 = List.hd r.A.r_domains in
  Alcotest.(check bool) "checkonly flag" false d1.A.d_enforceable;
  (* nested template *)
  (match d1.A.d_template.A.t_props with
  | [ _; { A.p_value = A.PV_template nested; _ } ] ->
    Alcotest.(check string) "nested var" "y" (I.name nested.A.t_var)
  | _ -> Alcotest.fail "expected nested template");
  Alcotest.(check int) "when preds" 2 (List.length r.A.r_when);
  Alcotest.(check int) "where preds" 3 (List.length r.A.r_where);
  Alcotest.(check int) "deps" 2 (List.length r.A.r_deps);
  let dep = List.hd r.A.r_deps in
  Alcotest.(check int) "two sources" 2 (List.length dep.A.dep_sources);
  (* non-top relation *)
  let h = List.nth t.A.t_relations 1 in
  Alcotest.(check bool) "helper not top" false h.A.r_top

let test_var_types () =
  let t = P.parse_exn full in
  let r = List.hd t.A.t_relations in
  let types = List.map (fun (vd : A.vardecl) -> vd.A.v_type) r.A.r_vars in
  Alcotest.(check bool) "String" true (List.mem A.T_string types);
  Alcotest.(check bool) "Integer" true (List.mem A.T_int types);
  Alcotest.(check bool) "Boolean" true (List.mem A.T_bool types);
  Alcotest.(check bool) "enum type" true (List.mem (A.T_enum (I.make "Color")) types);
  Alcotest.(check bool) "class type" true
    (List.mem (A.T_class (I.make "m1", I.make "Klass")) types)

let test_pred_structure () =
  let t = P.parse_exn full in
  let r = List.hd t.A.t_relations in
  (match A.preds r.A.r_when with
  | [ A.P_neq (A.O_var _, A.O_str "reserved"); A.P_call (h, args) ] ->
    Alcotest.(check string) "call name" "Helper" (I.name h);
    Alcotest.(check int) "call args" 2 (List.length args)
  | _ -> Alcotest.fail "unexpected when structure");
  match (List.nth r.A.r_where 2).A.c_pred with
  | A.P_and (A.P_or _, A.P_not _) -> ()
  | p -> Alcotest.failf "unexpected precedence: %s" (Format.asprintf "%a" A.pp_pred p)

let test_set_operators () =
  let src =
    {|
transformation T(a : A, b : B) {
  top relation R {
    n : String;
    domain a x : C { name = n };
    domain b y : D { name = n };
    where { x.p ++ x.q = y.r ** y.s -- y.t }
  }
}
|}
  in
  let t = P.parse_exn src in
  let r = List.hd t.A.t_relations in
  match A.preds r.A.r_where with
  | [ A.P_eq (A.O_union _, rhs) ] -> (
    (* ** and -- associate left: (r ** s) -- t *)
    match rhs with
    | A.O_diff (A.O_inter _, _) -> ()
    | _ -> Alcotest.fail "wrong rhs associativity")
  | _ -> Alcotest.fail "unexpected where structure"

let test_allinstances () =
  let src =
    {|
transformation T(a : A, b : B) {
  top relation R {
    n : String;
    domain a x : C { name = n };
    domain b y : D { name = n };
    when { x in C@a }
  }
}
|}
  in
  let t = P.parse_exn src in
  let r = List.hd t.A.t_relations in
  match A.preds r.A.r_when with
  | [ A.P_in (A.O_var _, A.O_all (m, c)) ] ->
    Alcotest.(check string) "model" "a" (I.name m);
    Alcotest.(check string) "class" "C" (I.name c)
  | _ -> Alcotest.fail "expected allInstances"

let test_errors_positions () =
  let contains ~affix s =
    let n = String.length affix and m = String.length s in
    let rec go i = i + n <= m && (String.sub s i n = affix || go (i + 1)) in
    go 0
  in
  (match P.parse "transformation T(a : A) {\n  top relation R {\n    domain ;\n  }\n}" with
  | Ok _ -> Alcotest.fail "expected error"
  | Error e -> Alcotest.(check bool) "line reported" true (contains ~affix:"line 3" e));
  match P.parse "transformation T(a : A) { trailing" with
  | Ok _ -> Alcotest.fail "expected error"
  | Error _ -> ()

let test_comments () =
  let src =
    "transformation T(a : A, b : B) { /* block\ncomment */ top relation R { n : \
     String; domain a x : C { name = n }; // line\n domain b y : D { name = n }; } }"
  in
  Alcotest.(check bool) "comments skipped" true (Result.is_ok (P.parse src))

let test_roundtrip_cases () =
  List.iteri
    (fun i src ->
      let t = P.parse_exn src in
      let printed = P.to_string t in
      match P.parse printed with
      | Ok t2 ->
        if A.strip_locs t <> A.strip_locs t2 then
          Alcotest.failf "case %d: round-trip not equal:\n%s" i printed
      | Error e -> Alcotest.failf "case %d: round-trip parse failed: %s\n%s" i e printed)
    [ minimal; full; Featuremodel.Fm.source ~k:2; Featuremodel.Fm.source ~k:4 ]

let test_fm_source_equals_builder () =
  (* the generated concrete syntax parses to the programmatic AST *)
  List.iter
    (fun k ->
      let parsed = A.strip_locs (P.parse_exn (Featuremodel.Fm.source ~k)) in
      let built = Featuremodel.Fm.transformation ~k in
      if parsed <> built then
        Alcotest.failf "k=%d: parsed source differs from built AST" k)
    [ 1; 2; 3 ]

let suite =
  [
    Alcotest.test_case "minimal" `Quick test_minimal;
    Alcotest.test_case "full syntax" `Quick test_full_parse;
    Alcotest.test_case "variable types" `Quick test_var_types;
    Alcotest.test_case "predicate structure" `Quick test_pred_structure;
    Alcotest.test_case "set operators" `Quick test_set_operators;
    Alcotest.test_case "allInstances" `Quick test_allinstances;
    Alcotest.test_case "error positions" `Quick test_errors_positions;
    Alcotest.test_case "comments" `Quick test_comments;
    Alcotest.test_case "round-trips" `Quick test_roundtrip_cases;
    Alcotest.test_case "generated source = built AST" `Quick test_fm_source_equals_builder;
  ]
