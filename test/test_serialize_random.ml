(* Property tests: random metamodels and random conforming models
   survive the print → parse round-trip, and the encoder round-trips
   them through the relational representation. *)

module MM = Mdl.Metamodel
module Model = Mdl.Model
module I = Mdl.Ident
module V = Mdl.Value

(* --- random metamodels --------------------------------------------- *)

(* A family of valid metamodels: an abstract root, two concrete
   classes with random features, an enum. Randomness covers feature
   shapes rather than arbitrary graphs (validity is Metamodel.make's
   job, tested separately). *)
let gen_metamodel : MM.t QCheck.Gen.t =
  let open QCheck.Gen in
  let* with_enum = bool in
  let* a_attrs = int_bound 3 in
  let* b_refs = int_bound 2 in
  let* key_first = bool in
  let* containment = bool in
  let enum = MM.enum_decl "Hue" [ "red"; "green"; "blue" ] in
  let attr i =
    let name = Printf.sprintf "a%d" i in
    match i mod 4 with
    | 0 -> MM.attr ~key:(key_first && i = 0) name MM.P_string
    | 1 -> MM.attr name MM.P_int
    | 2 -> MM.attr ~mult:MM.mult_opt name MM.P_bool
    | _ ->
      if with_enum then MM.attr name (MM.P_enum (I.make "Hue"))
      else MM.attr name MM.P_string
  in
  let a_cls =
    MM.cls "Alpha" ~supers:[ "Root" ]
      ~attrs:(List.init (a_attrs + 1) attr)
  in
  let b_cls =
    MM.cls "Beta" ~supers:[ "Root" ]
      ~attrs:[ MM.attr ~mult:MM.mult_many "tags" MM.P_string ]
      ~refs:
        (List.init b_refs (fun i ->
             MM.ref_ ~containment:(containment && i = 0)
               (Printf.sprintf "r%d" i) ~target:"Root"))
  in
  let root = MM.cls "Root" ~abstract:true in
  return
    (MM.make_exn ~name:"Rand"
       ~enums:(if with_enum then [ enum ] else [])
       [ root; a_cls; b_cls ])

(* --- random models over a metamodel -------------------------------- *)

let random_value rng mm (a : MM.attribute) =
  match a.MM.attr_type with
  | MM.P_string -> V.Str (Printf.sprintf "s%d" (Random.State.int rng 5))
  | MM.P_int -> V.Int (Random.State.int rng 10)
  | MM.P_bool -> V.Bool (Random.State.bool rng)
  | MM.P_enum e -> (
    match MM.find_enum mm e with
    | Some en ->
      V.Enum
        (List.nth en.MM.enum_literals
           (Random.State.int rng (List.length en.MM.enum_literals)))
    | None -> V.Str "?")

let random_model rng mm =
  let n = 1 + Random.State.int rng 5 in
  let m = ref (Model.empty ~name:"m" mm) in
  let ids = ref [] in
  for _ = 1 to n do
    let cls = if Random.State.bool rng then "Alpha" else "Beta" in
    let m', id = Model.add_object !m ~cls:(I.make cls) in
    m := m';
    ids := id :: !ids;
    List.iter
      (fun (a : MM.attribute) ->
        if Random.State.int rng 3 > 0 then
          m := Model.set_attr1 !m id a.MM.attr_name (random_value rng mm a))
      (MM.all_attributes mm (I.make cls))
  done;
  (* random reference edges between Beta objects and anything *)
  List.iter
    (fun src ->
      if I.name (Model.class_of !m src) = "Beta" then
        List.iter
          (fun (r : MM.reference) ->
            List.iter
              (fun dst ->
                if Random.State.int rng 4 = 0 then
                  m := Model.add_ref !m ~src ~ref_:r.MM.ref_name ~dst)
              !ids)
          (MM.all_references mm (I.make "Beta")))
    !ids;
  !m

let prop_metamodel_roundtrip =
  QCheck.Test.make ~name:"random metamodel print/parse round-trip" ~count:200
    (QCheck.make gen_metamodel ~print:Mdl.Serialize.metamodel_to_string)
    (fun mm ->
      match Mdl.Serialize.parse_metamodel (Mdl.Serialize.metamodel_to_string mm) with
      | Ok mm' -> MM.equal mm mm'
      | Error e -> QCheck.Test.fail_reportf "parse failed: %s" e)

let prop_model_roundtrip =
  QCheck.Test.make ~name:"random model print/parse round-trip" ~count:200
    (QCheck.pair (QCheck.make gen_metamodel) QCheck.small_int)
    (fun (mm, seed) ->
      let rng = Random.State.make [| seed |] in
      let m = random_model rng mm in
      match Mdl.Serialize.parse_model mm (Mdl.Serialize.model_to_string m) with
      | Ok m' -> Model.equal m m'
      | Error e ->
        QCheck.Test.fail_reportf "parse failed: %s\n%s" e
          (Mdl.Serialize.model_to_string m))

let prop_diff_random_metamodels =
  (* diff/apply round-trip also holds over the random metamodel family
     (test_diff uses a fixed metamodel) *)
  QCheck.Test.make ~name:"diff/apply on random-metamodel models" ~count:200
    (QCheck.pair (QCheck.make gen_metamodel) (QCheck.pair QCheck.small_int QCheck.small_int))
    (fun (mm, (s1, s2)) ->
      let a = random_model (Random.State.make [| s1 |]) mm in
      let b = random_model (Random.State.make [| s2 |]) mm in
      match Mdl.Edit.apply_script a (Mdl.Diff.script a b) with
      | Ok b' -> Model.equal b b'
      | Error e -> QCheck.Test.fail_reportf "apply failed: %s" e)

let suite =
  [
    QCheck_alcotest.to_alcotest prop_metamodel_roundtrip;
    QCheck_alcotest.to_alcotest prop_model_roundtrip;
    QCheck_alcotest.to_alcotest prop_diff_random_metamodels;
  ]
