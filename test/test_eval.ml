(* Tests for Relog.Eval: direct evaluation of expressions and
   formulas against concrete instances. *)

module I = Mdl.Ident
module R = Relog.Rel
module TS = R.Tupleset
module A = Relog.Ast

let universe = R.Universe.make (List.init 4 (fun i -> I.make (Printf.sprintf "a%d" i)))

let inst_with rels =
  List.fold_left
    (fun inst (name, tuples) -> Relog.Instance.set inst (I.make name) (TS.of_list tuples))
    (Relog.Instance.make universe)
    rels

let eval_f inst f = Relog.Eval.holds inst f
let eval_e inst e = Relog.Eval.expr inst Relog.Eval.empty_env e

let test_expr_basics () =
  let inst = inst_with [ ("S", [ [| 0 |]; [| 1 |] ]); ("R", [ [| 0; 1 |]; [| 1; 2 |] ]) ] in
  Alcotest.(check int) "rel lookup" 2 (TS.cardinal (eval_e inst (A.rel "S")));
  Alcotest.(check int) "unknown rel is empty" 0 (TS.cardinal (eval_e inst (A.rel "Nope")));
  Alcotest.(check int) "univ" 4 (TS.cardinal (eval_e inst A.Univ));
  Alcotest.(check int) "iden" 4 (TS.cardinal (eval_e inst A.Iden));
  Alcotest.(check int) "none" 0 (TS.cardinal (eval_e inst A.None_));
  Alcotest.(check int) "atom is singleton" 1 (TS.cardinal (eval_e inst (A.atom "a2")));
  Alcotest.(check int) "join S.R" 2 (TS.cardinal (eval_e inst (A.Join (A.rel "S", A.rel "R"))));
  Alcotest.(check int) "closure" 3 (TS.cardinal (eval_e inst (A.Closure (A.rel "R"))));
  Alcotest.(check int) "rclosure includes iden" 7
    (TS.cardinal (eval_e inst (A.RClosure (A.rel "R"))))

let test_formula_basics () =
  let inst = inst_with [ ("S", [ [| 0 |]; [| 1 |] ]); ("T", [ [| 0 |]; [| 1 |]; [| 2 |] ]) ] in
  Alcotest.(check bool) "subset" true (eval_f inst (A.in_ (A.rel "S") (A.rel "T")));
  Alcotest.(check bool) "not superset" false (eval_f inst (A.in_ (A.rel "T") (A.rel "S")));
  Alcotest.(check bool) "equal reflexive" true (eval_f inst (A.eq (A.rel "S") (A.rel "S")));
  Alcotest.(check bool) "some" true (eval_f inst (A.Some_ (A.rel "S")));
  Alcotest.(check bool) "no none" true (eval_f inst (A.No A.None_));
  Alcotest.(check bool) "lone singleton" true (eval_f inst (A.Lone (A.atom "a0")));
  Alcotest.(check bool) "lone fails on S" false (eval_f inst (A.Lone (A.rel "S")));
  Alcotest.(check bool) "one atom" true (eval_f inst (A.One (A.atom "a0")));
  Alcotest.(check bool) "connectives" true
    (eval_f inst
       (A.conj
          [ A.Some_ (A.rel "S"); A.not_ (A.Some_ A.None_);
            A.implies A.False A.True; A.disj [ A.False; A.True ] ]))

let test_quantifiers () =
  let inst = inst_with [ ("S", [ [| 0 |]; [| 1 |] ]); ("R", [ [| 0; 1 |]; [| 1; 0 |] ]) ] in
  (* all x : S | some x.R *)
  Alcotest.(check bool) "forall holds" true
    (eval_f inst (A.forall [ ("x", A.rel "S") ] (A.Some_ (A.dot (A.var "x") (A.rel "R")))));
  (* all x : univ | some x.R — fails for a2, a3 *)
  Alcotest.(check bool) "forall over univ fails" false
    (eval_f inst (A.forall [ ("x", A.Univ) ] (A.Some_ (A.dot (A.var "x") (A.rel "R")))));
  (* some x : univ | x.R = S - x  (a0.R = {a1}) *)
  Alcotest.(check bool) "exists witness" true
    (eval_f inst
       (A.exists [ ("x", A.Univ) ]
          (A.eq (A.dot (A.var "x") (A.rel "R")) (A.Diff (A.rel "S", A.var "x")))));
  (* empty domain: forall vacuously true, exists false *)
  Alcotest.(check bool) "forall over empty domain" true
    (eval_f inst (A.forall [ ("x", A.None_) ] A.False));
  Alcotest.(check bool) "exists over empty domain" false
    (eval_f inst (A.exists [ ("x", A.None_) ] A.True))

let test_nested_quantifiers () =
  (* R is symmetric: all x, y | x->y in R => y->x in R *)
  let sym = inst_with [ ("R", [ [| 0; 1 |]; [| 1; 0 |]; [| 2; 2 |] ]) ] in
  let f =
    A.forall [ ("x", A.Univ); ("y", A.Univ) ]
      (A.implies
         (A.in_ (A.Product (A.var "x", A.var "y")) (A.rel "R"))
         (A.in_ (A.Product (A.var "y", A.var "x")) (A.rel "R")))
  in
  Alcotest.(check bool) "symmetric relation passes" true (eval_f sym f);
  let asym = inst_with [ ("R", [ [| 0; 1 |] ]) ] in
  Alcotest.(check bool) "asymmetric relation fails" false (eval_f asym f)

let test_dependent_domains () =
  (* later domains can mention earlier variables:
     all x : S, y : x.R | y in T *)
  let inst =
    inst_with
      [ ("S", [ [| 0 |] ]); ("R", [ [| 0; 1 |]; [| 0; 2 |] ]); ("T", [ [| 1 |]; [| 2 |] ]) ]
  in
  let f =
    A.forall
      [ ("x", A.rel "S"); ("y", A.dot (A.var "x") (A.rel "R")) ]
      (A.in_ (A.var "y") (A.rel "T"))
  in
  Alcotest.(check bool) "dependent domain" true (eval_f inst f)

let test_errors () =
  let inst = inst_with [] in
  (match Relog.Eval.formula inst Relog.Eval.empty_env (A.Some_ (A.var "ghost")) with
  | exception Relog.Eval.Eval_error _ -> ()
  | _ -> Alcotest.fail "unbound variable must raise");
  match Relog.Eval.formula inst Relog.Eval.empty_env (A.Some_ (A.atom "zz")) with
  | exception Relog.Eval.Eval_error _ -> ()
  | _ -> Alcotest.fail "unknown atom must raise"

let test_free_rels_and_vars () =
  let f =
    A.forall [ ("x", A.rel "S") ]
      (A.in_ (A.dot (A.var "x") (A.rel "R")) (A.var "y"))
  in
  let rels = A.free_rels f in
  Alcotest.(check int) "two free relations" 2 (I.Set.cardinal rels);
  let vars = A.free_vars f in
  Alcotest.(check bool) "y free, x bound" true
    (I.Set.mem (I.make "y") vars && not (I.Set.mem (I.make "x") vars))

let test_expr_arity () =
  let lookup r = if I.name r = "R" then Some 2 else if I.name r = "S" then Some 1 else None in
  Alcotest.(check bool) "S.R has arity 1" true
    (A.expr_arity lookup (A.Join (A.rel "S", A.rel "R")) = Ok 1);
  Alcotest.(check bool) "product adds" true
    (A.expr_arity lookup (A.Product (A.rel "R", A.rel "S")) = Ok 3);
  Alcotest.(check bool) "transpose of unary is error" true
    (Result.is_error (A.expr_arity lookup (A.Transpose (A.rel "S"))));
  Alcotest.(check bool) "union arity mismatch is error" true
    (Result.is_error (A.expr_arity lookup (A.Union (A.rel "S", A.rel "R"))));
  Alcotest.(check bool) "unknown relation is error" true
    (Result.is_error (A.expr_arity lookup (A.rel "Nope")))

let suite =
  [
    Alcotest.test_case "expression basics" `Quick test_expr_basics;
    Alcotest.test_case "formula basics" `Quick test_formula_basics;
    Alcotest.test_case "quantifiers" `Quick test_quantifiers;
    Alcotest.test_case "nested quantifiers" `Quick test_nested_quantifiers;
    Alcotest.test_case "dependent domains" `Quick test_dependent_domains;
    Alcotest.test_case "evaluation errors" `Quick test_errors;
    Alcotest.test_case "free rels and vars" `Quick test_free_rels_and_vars;
    Alcotest.test_case "expression arity" `Quick test_expr_arity;
  ]
