(* Unit and property tests for Mdl.Value. *)

module V = Mdl.Value

let arb_value =
  QCheck.oneof
    [
      QCheck.map (fun s -> V.Str s) QCheck.small_string;
      QCheck.map (fun i -> V.Int i) QCheck.small_signed_int;
      QCheck.map (fun b -> V.Bool b) QCheck.bool;
      QCheck.map (fun s -> V.enum ("lit_" ^ s)) (QCheck.string_of_size (QCheck.Gen.return 3));
    ]

let test_constructors () =
  Alcotest.(check bool) "str" true (V.equal (V.str "a") (V.Str "a"));
  Alcotest.(check bool) "int" true (V.equal (V.int 3) (V.Int 3));
  Alcotest.(check bool) "bool" true (V.equal (V.bool true) (V.Bool true));
  Alcotest.(check bool) "enum" true (V.equal (V.enum "red") (V.Enum (Mdl.Ident.make "red")))

let test_cross_kind_inequality () =
  Alcotest.(check bool) "Str vs Int" false (V.equal (V.str "1") (V.int 1));
  Alcotest.(check bool) "Bool vs Enum" false (V.equal (V.bool true) (V.enum "true"));
  Alcotest.(check bool) "Int vs Bool" false (V.equal (V.int 0) (V.bool false))

let test_to_string () =
  Alcotest.(check string) "string quoted" "\"a b\"" (V.to_string (V.str "a b"));
  Alcotest.(check string) "int bare" "42" (V.to_string (V.int 42));
  Alcotest.(check string) "bool bare" "false" (V.to_string (V.bool false));
  Alcotest.(check string) "enum bare" "red" (V.to_string (V.enum "red"))

let prop_equal_consistent_with_compare =
  QCheck.Test.make ~name:"equal iff compare = 0" ~count:1000
    (QCheck.pair arb_value arb_value)
    (fun (a, b) -> V.equal a b = (V.compare a b = 0))

let prop_compare_antisym =
  QCheck.Test.make ~name:"compare antisymmetric" ~count:1000
    (QCheck.pair arb_value arb_value)
    (fun (a, b) -> Int.compare (V.compare a b) 0 = -Int.compare (V.compare b a) 0)

let prop_hash_respects_equal =
  QCheck.Test.make ~name:"equal values hash equally" ~count:1000 arb_value (fun v ->
      V.hash v = V.hash v)

let test_set_map () =
  let s = V.Set.of_list [ V.int 1; V.int 1; V.str "1" ] in
  Alcotest.(check int) "set dedups by compare" 2 (V.Set.cardinal s);
  let m = V.Map.add (V.bool true) "yes" V.Map.empty in
  Alcotest.(check (option string)) "map lookup" (Some "yes") (V.Map.find_opt (V.bool true) m)

let suite =
  [
    Alcotest.test_case "constructors" `Quick test_constructors;
    Alcotest.test_case "cross-kind inequality" `Quick test_cross_kind_inequality;
    Alcotest.test_case "to_string" `Quick test_to_string;
    Alcotest.test_case "set and map" `Quick test_set_map;
    QCheck_alcotest.to_alcotest prop_equal_consistent_with_compare;
    QCheck_alcotest.to_alcotest prop_compare_antisym;
    QCheck_alcotest.to_alcotest prop_hash_respects_equal;
  ]
