(* Unit and property tests for Mdl.Ident (interning). *)

module I = Mdl.Ident

let test_interning () =
  let a = I.make "hello" and b = I.make "hello" in
  Alcotest.(check bool) "same string interns to equal idents" true (I.equal a b);
  Alcotest.(check bool) "physical equality" true (a == b);
  Alcotest.(check string) "name round-trips" "hello" (I.name a)

let test_distinct () =
  let a = I.make "x" and b = I.make "y" in
  Alcotest.(check bool) "distinct strings differ" false (I.equal a b);
  Alcotest.(check bool) "compare is consistent" true (I.compare a b <> 0)

let test_compare_name () =
  (* compare_name is lexicographic regardless of interning order *)
  let z = I.make "zzz" and a = I.make "aaa" in
  Alcotest.(check bool) "compare_name is lexicographic" true (I.compare_name a z < 0);
  Alcotest.(check int) "compare_name reflexive" 0 (I.compare_name a (I.make "aaa"))

let test_map_set () =
  let open I in
  let s = Set.of_list [ make "a"; make "b"; make "a" ] in
  Alcotest.(check int) "set deduplicates" 2 (Set.cardinal s);
  let m = Map.add (make "k") 1 Map.empty in
  Alcotest.(check (option int)) "map lookup" (Some 1) (Map.find_opt (make "k") m)

let prop_equal_iff_same_string =
  QCheck.Test.make ~name:"ident equality reflects string equality" ~count:500
    (QCheck.pair QCheck.string QCheck.string)
    (fun (s1, s2) ->
      I.equal (I.make s1) (I.make s2) = String.equal s1 s2)

let prop_compare_total_order =
  QCheck.Test.make ~name:"ident compare antisymmetric" ~count:500
    (QCheck.pair QCheck.small_string QCheck.small_string)
    (fun (s1, s2) ->
      let a = I.make s1 and b = I.make s2 in
      Int.compare (I.compare a b) 0 = -Int.compare (I.compare b a) 0)

let suite =
  [
    Alcotest.test_case "interning" `Quick test_interning;
    Alcotest.test_case "distinct" `Quick test_distinct;
    Alcotest.test_case "compare_name" `Quick test_compare_name;
    Alcotest.test_case "map and set" `Quick test_map_set;
    QCheck_alcotest.to_alcotest prop_equal_iff_same_string;
    QCheck_alcotest.to_alcotest prop_compare_total_order;
  ]
