(* Tests for Relog.Simplify: NNF shape, unit cases, and equivalence
   with the evaluator on random formulas over random instances. *)

module A = Relog.Ast
module S = Relog.Simplify
module I = Mdl.Ident
module TS = Relog.Rel.Tupleset

let universe =
  Relog.Rel.Universe.make (List.init 3 (fun i -> I.make (Printf.sprintf "a%d" i)))

(* --- unit cases ----------------------------------------------------- *)

let test_constants () =
  Alcotest.(check bool) "not true" true (S.formula (A.Not A.True) = A.False);
  Alcotest.(check bool) "implies false" true
    (S.formula (A.Implies (A.False, A.Some_ (A.rel "R"))) = A.True);
  Alcotest.(check bool) "double negation" true
    (S.formula (A.Not (A.Not (A.Some_ (A.rel "R")))) = A.Some_ (A.rel "R"));
  Alcotest.(check bool) "some none" true (S.formula (A.Some_ A.None_) = A.False);
  Alcotest.(check bool) "no none" true (S.formula (A.No A.None_) = A.True);
  Alcotest.(check bool) "equal reflexive" true
    (S.formula (A.eq (A.rel "R") (A.rel "R")) = A.True)

let test_nnf_negation_pushing () =
  let f =
    A.Not
      (A.Forall
         ( [ (I.make "x", A.Univ) ],
           A.Or [ A.in_ (A.var "x") (A.rel "S"); A.Not (A.No (A.rel "R")) ] ))
  in
  let s = S.formula f in
  (* must become Exists x | not-some x ∧ no R — with Not only on atoms *)
  let rec nnf_ok (f : A.formula) =
    match f with
    | A.Not (A.Subset _ | A.Equal _ | A.Some_ _ | A.No _ | A.Lone _ | A.One _) -> true
    | A.Not _ -> false
    | A.And fs | A.Or fs -> List.for_all nnf_ok fs
    | A.Implies (a, b) | A.Iff (a, b) -> nnf_ok a && nnf_ok b
    | A.Forall (_, g) | A.Exists (_, g) -> nnf_ok g
    | A.True | A.False | A.Subset _ | A.Equal _ | A.Some_ _ | A.No _ | A.Lone _
    | A.One _ -> true
  in
  Alcotest.(check bool) "negations pushed to atoms" true (nnf_ok s);
  match s with
  | A.Exists _ -> ()
  | _ -> Alcotest.failf "expected an Exists, got %s" (Format.asprintf "%a" A.pp s)

let test_quantifier_empty_domain () =
  Alcotest.(check bool) "forall over none" true
    (S.formula (A.Forall ([ (I.make "x", A.None_) ], A.False)) = A.True);
  Alcotest.(check bool) "exists over none" true
    (S.formula (A.Exists ([ (I.make "x", A.None_) ], A.True)) = A.False)

let test_exists_true_not_collapsed () =
  (* ∃ x : R | true means R non-empty: must NOT become True *)
  let f = A.Exists ([ (I.make "x", A.rel "R") ], A.True) in
  let s = S.formula f in
  let inst = Relog.Instance.make universe in
  Alcotest.(check bool) "kept the emptiness content" false (Relog.Eval.holds inst s)

let test_expr_simplification () =
  Alcotest.(check bool) "union none" true (S.expr (A.Union (A.None_, A.rel "R")) = A.rel "R");
  Alcotest.(check bool) "inter none" true (S.expr (A.Inter (A.rel "R", A.None_)) = A.None_);
  Alcotest.(check bool) "diff self" true (S.expr (A.Diff (A.rel "R", A.rel "R")) = A.None_);
  Alcotest.(check bool) "join none" true (S.expr (A.Join (A.None_, A.rel "R")) = A.None_);
  Alcotest.(check bool) "transpose transpose" true
    (S.expr (A.Transpose (A.Transpose (A.rel "R"))) = A.rel "R");
  Alcotest.(check bool) "transpose iden" true (S.expr (A.Transpose A.Iden) = A.Iden)

(* --- random equivalence --------------------------------------------- *)

(* Random binary relation R and unary S over the 3-atom universe. *)
let random_instance rng =
  let pairs =
    List.concat_map
      (fun i -> List.filter_map (fun j -> if Random.State.bool rng then Some [| i; j |] else None) [ 0; 1; 2 ])
      [ 0; 1; 2 ]
  in
  let singles =
    List.filter_map (fun i -> if Random.State.bool rng then Some [| i |] else None) [ 0; 1; 2 ]
  in
  Relog.Instance.make universe
  |> fun inst ->
  Relog.Instance.set inst (I.make "R") (TS.of_list pairs)
  |> fun inst -> Relog.Instance.set inst (I.make "S") (TS.of_list singles)

let rec random_expr rng depth : A.expr =
  if depth = 0 then
    match Random.State.int rng 4 with
    | 0 -> A.rel "S"
    | 1 -> A.Univ
    | 2 -> A.None_
    | _ -> A.atom (Printf.sprintf "a%d" (Random.State.int rng 3))
  else
    match Random.State.int rng 5 with
    | 0 -> A.Union (random_expr rng (depth - 1), random_expr rng (depth - 1))
    | 1 -> A.Inter (random_expr rng (depth - 1), random_expr rng (depth - 1))
    | 2 -> A.Diff (random_expr rng (depth - 1), random_expr rng (depth - 1))
    | 3 -> A.Join (random_expr rng (depth - 1), A.rel "R")
    | _ -> random_expr rng 0

let rec random_formula rng depth bound_vars : A.formula =
  let e () =
    (* sometimes mention a bound variable *)
    if bound_vars <> [] && Random.State.bool rng then
      A.Var (List.nth bound_vars (Random.State.int rng (List.length bound_vars)))
    else random_expr rng (min depth 2)
  in
  if depth = 0 then
    match Random.State.int rng 6 with
    | 0 -> A.Subset (e (), e ())
    | 1 -> A.Equal (e (), e ())
    | 2 -> A.Some_ (e ())
    | 3 -> A.No (e ())
    | 4 -> A.Lone (e ())
    | _ -> A.One (e ())
  else
    match Random.State.int rng 8 with
    | 0 -> A.Not (random_formula rng (depth - 1) bound_vars)
    | 1 ->
      A.And
        (List.init (1 + Random.State.int rng 2) (fun _ ->
             random_formula rng (depth - 1) bound_vars))
    | 2 ->
      A.Or
        (List.init (1 + Random.State.int rng 2) (fun _ ->
             random_formula rng (depth - 1) bound_vars))
    | 3 ->
      A.Implies
        (random_formula rng (depth - 1) bound_vars, random_formula rng (depth - 1) bound_vars)
    | 4 ->
      A.Iff
        (random_formula rng (depth - 1) bound_vars, random_formula rng (depth - 1) bound_vars)
    | 5 ->
      let v = I.make (Printf.sprintf "v%d" (List.length bound_vars)) in
      A.Forall ([ (v, A.Univ) ], random_formula rng (depth - 1) (v :: bound_vars))
    | 6 ->
      let v = I.make (Printf.sprintf "v%d" (List.length bound_vars)) in
      A.Exists ([ (v, A.rel "S") ], random_formula rng (depth - 1) (v :: bound_vars))
    | _ -> random_formula rng 0 bound_vars

let prop_equivalence =
  QCheck.Test.make ~name:"simplify preserves truth on random formulas" ~count:1000
    QCheck.small_int (fun seed ->
      let rng = Random.State.make [| seed |] in
      let f = random_formula rng 4 [] in
      let inst = random_instance rng in
      let before = Relog.Eval.holds inst f in
      let after = Relog.Eval.holds inst (S.formula f) in
      if before = after then true
      else
        QCheck.Test.fail_reportf "disagree on %s (simplified: %s)"
          (Format.asprintf "%a" A.pp f)
          (Format.asprintf "%a" A.pp (S.formula f)))

let prop_idempotent =
  QCheck.Test.make ~name:"simplify idempotent" ~count:500 QCheck.small_int
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      let f = random_formula rng 4 [] in
      let s = S.formula f in
      S.formula s = s)

let prop_nnf =
  QCheck.Test.make ~name:"simplify yields NNF" ~count:500 QCheck.small_int
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      let f = random_formula rng 4 [] in
      let rec nnf_ok (f : A.formula) =
        match f with
        | A.Not (A.Subset _ | A.Equal _ | A.Some_ _ | A.No _ | A.Lone _ | A.One _)
          -> true
        | A.Not _ -> false
        | A.And fs | A.Or fs -> List.for_all nnf_ok fs
        | A.Implies (a, b) | A.Iff (a, b) -> nnf_ok a && nnf_ok b
        | A.Forall (_, g) | A.Exists (_, g) -> nnf_ok g
        | A.True | A.False | A.Subset _ | A.Equal _ | A.Some_ _ | A.No _
        | A.Lone _ | A.One _ -> true
      in
      nnf_ok (S.formula f))

let suite =
  [
    Alcotest.test_case "constants" `Quick test_constants;
    Alcotest.test_case "negation pushing" `Quick test_nnf_negation_pushing;
    Alcotest.test_case "empty quantifier domains" `Quick test_quantifier_empty_domain;
    Alcotest.test_case "exists-true not collapsed" `Quick test_exists_true_not_collapsed;
    Alcotest.test_case "expression simplification" `Quick test_expr_simplification;
    QCheck_alcotest.to_alcotest prop_equivalence;
    QCheck_alcotest.to_alcotest prop_idempotent;
    QCheck_alcotest.to_alcotest prop_nnf;
  ]
