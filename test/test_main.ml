(* Test entry point: one alcotest run covering every library. *)

let () =
  Alcotest.run "mdqvtr"
    [
      ("mdl.ident", Test_ident.suite);
      ("mdl.value", Test_value.suite);
      ("mdl.metamodel", Test_metamodel.suite);
      ("mdl.model", Test_model.suite);
      ("mdl.conformance", Test_conformance.suite);
      ("mdl.diff", Test_diff.suite);
      ("mdl.serialize", Test_serialize.suite);
      ("mdl.serialize_random", Test_serialize_random.suite);
      ("obs", Test_obs.suite);
      ("sat.solver", Test_sat.suite);
      ("parallel", Test_parallel.suite);
      ("sat.circuit", Test_circuit.suite);
      ("sat.cardinality", Test_cardinality.suite);
      ("sat.maxsat", Test_maxsat.suite);
      ("sat.dimacs", Test_dimacs.suite);
      ("relog.rel", Test_rel.suite);
      ("relog.eval", Test_eval.suite);
      ("relog.simplify", Test_simplify.suite);
      ("relog.hc", Test_hc.suite);
      ("relog.finder", Test_finder.suite);
      ("relog.symmetry", Test_symmetry.suite);
      ("qvtr.dependency", Test_dependency.suite);
      ("qvtr.parser", Test_parser.suite);
      ("qvtr.parser_random", Test_parser_random.suite);
      ("qvtr.typecheck", Test_typecheck.suite);
      ("qvtr.encode", Test_encode.suite);
      ("qvtr.semantics", Test_semantics.suite);
      ("lint", Test_lint.suite);
      ("echo.engine", Test_echo.suite);
      ("echo.telemetry", Test_telemetry.suite);
      ("incr.session", Test_incr.suite);
      ("server", Test_server.suite);
      ("featuremodel", Test_featuremodel.suite);
      ("extensions", Test_extensions.suite);
      ("internals", Test_internals.suite);
    ]
