(* Tests for Mdl.Metamodel: validation, inheritance, feature lookup. *)

module MM = Mdl.Metamodel
module I = Mdl.Ident

let library_mm () =
  MM.make_exn ~name:"Library"
    ~enums:[ MM.enum_decl "Genre" [ "fiction"; "science"; "poetry" ] ]
    [
      MM.cls "Named" ~abstract:true ~attrs:[ MM.attr ~key:true "name" MM.P_string ];
      MM.cls "Library" ~supers:[ "Named" ]
        ~refs:[ MM.ref_ "books" ~target:"Book" ~containment:true ];
      MM.cls "Book" ~supers:[ "Named" ]
        ~attrs:[ MM.attr "genre" (MM.P_enum (I.make "Genre")); MM.attr "pages" MM.P_int ]
        ~refs:[ MM.ref_ ~mult:MM.mult_opt "sequel" ~target:"Book" ];
      MM.cls "Comic" ~supers:[ "Book" ] ~attrs:[ MM.attr "color" MM.P_bool ];
    ]

let test_valid_build () =
  let mm = library_mm () in
  Alcotest.(check int) "4 classes" 4 (List.length (MM.classes mm));
  Alcotest.(check int) "1 enum" 1 (List.length (MM.enums mm))

let expect_error what builder =
  match builder () with
  | Ok _ -> Alcotest.failf "expected validation error: %s" what
  | Error _ -> ()

let test_rejects_duplicate_class () =
  expect_error "duplicate class" (fun () ->
      MM.make ~name:"X" [ MM.cls "A"; MM.cls "A" ])

let test_rejects_unknown_super () =
  expect_error "unknown super" (fun () ->
      MM.make ~name:"X" [ MM.cls "A" ~supers:[ "Ghost" ] ])

let test_rejects_inheritance_cycle () =
  expect_error "cycle" (fun () ->
      MM.make ~name:"X" [ MM.cls "A" ~supers:[ "B" ]; MM.cls "B" ~supers:[ "A" ] ])

let test_rejects_unknown_ref_target () =
  expect_error "unknown target" (fun () ->
      MM.make ~name:"X" [ MM.cls "A" ~refs:[ MM.ref_ "r" ~target:"Ghost" ] ])

let test_rejects_unknown_enum () =
  expect_error "unknown enum" (fun () ->
      MM.make ~name:"X" [ MM.cls "A" ~attrs:[ MM.attr "e" (MM.P_enum (I.make "Ghost")) ] ])

let test_rejects_bad_mult () =
  expect_error "upper below lower" (fun () ->
      MM.make ~name:"X"
        [ MM.cls "A" ~refs:[ MM.ref_ ~mult:{ MM.lower = 3; upper = Some 1 } "r" ~target:"A" ] ])

let test_rejects_empty_enum () =
  expect_error "empty enum" (fun () ->
      MM.make ~name:"X" ~enums:[ MM.enum_decl "E" [] ] [ MM.cls "A" ])

let test_rejects_bad_opposite () =
  expect_error "asymmetric opposite" (fun () ->
      MM.make ~name:"X"
        [
          MM.cls "A" ~refs:[ MM.ref_ "r" ~target:"B" ~opposite:"s" ];
          MM.cls "B" ~refs:[ MM.ref_ "s" ~target:"B" ];
        ])

let test_accepts_good_opposite () =
  let mm =
    MM.make ~name:"X"
      [
        MM.cls "A" ~refs:[ MM.ref_ "r" ~target:"B" ~opposite:"s" ];
        MM.cls "B" ~refs:[ MM.ref_ "s" ~target:"A" ~opposite:"r" ];
      ]
  in
  Alcotest.(check bool) "symmetric opposite accepted" true (Result.is_ok mm)

let test_subclassing () =
  let mm = library_mm () in
  let sub c s = MM.is_subclass mm ~sub:(I.make c) ~super:(I.make s) in
  Alcotest.(check bool) "Comic <= Book" true (sub "Comic" "Book");
  Alcotest.(check bool) "Comic <= Named (transitive)" true (sub "Comic" "Named");
  Alcotest.(check bool) "reflexive" true (sub "Book" "Book");
  Alcotest.(check bool) "not Book <= Comic" false (sub "Book" "Comic");
  Alcotest.(check bool) "not Library <= Book" false (sub "Library" "Book")

let test_concrete_subclasses () =
  let mm = library_mm () in
  let cs = MM.concrete_subclasses mm (I.make "Named") in
  Alcotest.(check int) "3 concrete under abstract Named" 3 (I.Set.cardinal cs);
  Alcotest.(check bool) "abstract class itself excluded" false
    (I.Set.mem (I.make "Named") cs);
  let cs_book = MM.concrete_subclasses mm (I.make "Book") in
  Alcotest.(check int) "Book and Comic" 2 (I.Set.cardinal cs_book)

let test_inherited_features () =
  let mm = library_mm () in
  let attrs = MM.all_attributes mm (I.make "Comic") in
  Alcotest.(check (list string)) "inherited attrs, superclass first"
    [ "name"; "genre"; "pages"; "color" ]
    (List.map (fun (a : MM.attribute) -> I.name a.attr_name) attrs);
  let a = MM.find_attribute mm (I.make "Comic") (I.make "name") in
  Alcotest.(check bool) "inherited key flag survives" true
    (match a with Some a -> a.MM.attr_key | None -> false);
  let r = MM.find_reference mm (I.make "Comic") (I.make "sequel") in
  Alcotest.(check bool) "inherited reference found" true (r <> None);
  Alcotest.(check bool) "missing feature is None" true
    (MM.find_attribute mm (I.make "Comic") (I.make "ghost") = None)

let test_mult_admits () =
  Alcotest.(check bool) "one admits 1" true (MM.mult_admits MM.mult_one 1);
  Alcotest.(check bool) "one rejects 0" false (MM.mult_admits MM.mult_one 0);
  Alcotest.(check bool) "one rejects 2" false (MM.mult_admits MM.mult_one 2);
  Alcotest.(check bool) "opt admits 0" true (MM.mult_admits MM.mult_opt 0);
  Alcotest.(check bool) "many admits 7" true (MM.mult_admits MM.mult_many 7);
  Alcotest.(check bool) "some rejects 0" false (MM.mult_admits MM.mult_some 0)

let test_pp_parses_back () =
  let mm = library_mm () in
  let printed = Mdl.Serialize.metamodel_to_string mm in
  match Mdl.Serialize.parse_metamodel printed with
  | Ok mm' -> Alcotest.(check bool) "pp/parse round-trip" true (MM.equal mm mm')
  | Error e -> Alcotest.failf "round-trip parse failed: %s\n%s" e printed

let suite =
  [
    Alcotest.test_case "valid build" `Quick test_valid_build;
    Alcotest.test_case "rejects duplicate class" `Quick test_rejects_duplicate_class;
    Alcotest.test_case "rejects unknown super" `Quick test_rejects_unknown_super;
    Alcotest.test_case "rejects inheritance cycle" `Quick test_rejects_inheritance_cycle;
    Alcotest.test_case "rejects unknown ref target" `Quick test_rejects_unknown_ref_target;
    Alcotest.test_case "rejects unknown enum" `Quick test_rejects_unknown_enum;
    Alcotest.test_case "rejects bad multiplicity" `Quick test_rejects_bad_mult;
    Alcotest.test_case "rejects empty enum" `Quick test_rejects_empty_enum;
    Alcotest.test_case "rejects asymmetric opposite" `Quick test_rejects_bad_opposite;
    Alcotest.test_case "accepts symmetric opposite" `Quick test_accepts_good_opposite;
    Alcotest.test_case "subclassing" `Quick test_subclassing;
    Alcotest.test_case "concrete subclasses" `Quick test_concrete_subclasses;
    Alcotest.test_case "inherited features" `Quick test_inherited_features;
    Alcotest.test_case "mult_admits" `Quick test_mult_admits;
    Alcotest.test_case "pp parses back" `Quick test_pp_parses_back;
  ]
