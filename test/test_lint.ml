(* Golden-file and property tests for the lint diagnostics engine.

   The corpus in examples/lint/ has one broken transformation per
   diagnostic code plus a .expected file holding the exact rendered
   output (same format as `qvtr lint`: one rendered diagnostic per
   line with its source excerpt, then a summary line). *)

module D = Lint.Diagnostic
module Dr = Lint.Driver

let corpus_dir = "../examples/lint"

let read_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  s

let raw_metamodels =
  lazy
    (match
       Mdl.Serialize.parse_metamodels
         (read_file (Filename.concat corpus_dir "metamodels.mdl"))
     with
    | Ok mms -> mms
    | Error e -> Alcotest.failf "corpus metamodels: %s" e)

let metamodels () =
  List.map (fun mm -> (Mdl.Metamodel.name mm, mm)) (Lazy.force raw_metamodels)

(* The W009 corpus entry is the only one needing bound models. *)
let corpus_models name =
  if name <> "w009_constant" then None
  else
    match
      Mdl.Serialize.parse_models (Lazy.force raw_metamodels)
        (read_file (Filename.concat corpus_dir "w009_models.mdl"))
    with
    | Ok ms -> Some (List.map (fun m -> (Mdl.Model.name m, m)) ms)
    | Error e -> Alcotest.failf "corpus models: %s" e

let corpus_cases () =
  Sys.readdir corpus_dir |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f ".qvtr")
  |> List.map (fun f -> Filename.chop_suffix f ".qvtr")
  |> List.sort compare

let lint_corpus name =
  (* [~file] uses the repo-relative path so rendered locations match
     the goldens byte-for-byte. *)
  let src = read_file (Filename.concat corpus_dir (name ^ ".qvtr")) in
  let diags =
    Dr.lint_source
      ~file:("examples/lint/" ^ name ^ ".qvtr")
      ?models:(corpus_models name) src ~metamodels:(metamodels ())
  in
  (src, diags)

(* Mirror of the CLI's non-JSON output. *)
let rendered ~src diags =
  String.concat "" (List.map (fun d -> D.render ~src d ^ "\n") diags)
  ^ Dr.summary diags ^ "\n"

let test_golden name () =
  let src, diags = lint_corpus name in
  let want = read_file (Filename.concat corpus_dir (name ^ ".expected")) in
  Alcotest.(check string) (name ^ " golden") want (rendered ~src diags)

let test_registry_covered () =
  let cases = corpus_cases () in
  List.iter
    (fun (code, _, _) ->
      let prefix = String.lowercase_ascii code in
      match
        List.find_opt
          (fun c -> String.length c >= 4 && String.sub c 0 4 = prefix)
          cases
      with
      | None -> Alcotest.failf "no corpus entry for %s" code
      | Some c ->
        let expected = read_file (Filename.concat corpus_dir (c ^ ".expected")) in
        let tag = "[" ^ code ^ "]" in
        let mentions =
          let n = String.length expected and m = String.length tag in
          let rec go i = i + m <= n && (String.sub expected i m = tag || go (i + 1)) in
          go 0
        in
        if not mentions then
          Alcotest.failf "golden for %s does not mention %s" c code)
    D.registry

let test_locations_known () =
  (* every corpus diagnostic carries a real file:line:col anchor *)
  List.iter
    (fun name ->
      let _, diags = lint_corpus name in
      Alcotest.(check bool) (name ^ " has diagnostics") true (diags <> []);
      List.iter
        (fun (d : D.t) ->
          if Qvtr.Loc.is_none d.D.loc then
            Alcotest.failf "%s: diagnostic %s has no location" name d.D.code)
        diags)
    (corpus_cases ())

let test_json_roundtrip () =
  List.iter
    (fun name ->
      let _, diags = lint_corpus name in
      let json = D.list_to_json diags in
      match Obs.Json.of_string (Obs.Json.to_string json) with
      | Ok parsed ->
        Alcotest.(check bool) (name ^ " json round-trips") true (parsed = json)
      | Error e -> Alcotest.failf "%s: emitted JSON does not parse: %s" name e)
    (corpus_cases ())

let test_werror_and_suppress () =
  let _, diags = lint_corpus "w004_unused_var" in
  Alcotest.(check int) "one warning" 1 (Dr.warning_count diags);
  let src = read_file (Filename.concat corpus_dir "w004_unused_var.qvtr") in
  let werror = { Dr.default_config with Dr.werror = true } in
  let promoted =
    Dr.lint_source ~config:werror src ~metamodels:(metamodels ())
  in
  Alcotest.(check int) "werror promotes" 1 (Dr.error_count promoted);
  let off = { Dr.default_config with Dr.suppress = [ "W004" ] } in
  let suppressed =
    Dr.lint_source ~config:off src ~metamodels:(metamodels ())
  in
  Alcotest.(check int) "suppressed" 0 (List.length suppressed)

let test_parse_error_caret () =
  let src = "transformation T(m : MM) {\n  top relation R {\n    domain m x : C { a = } ;\n  }\n}\n" in
  match Qvtr.Parser.parse_located ~file:"t.qvtr" src with
  | Ok _ -> Alcotest.fail "must not parse"
  | Error (loc, _) ->
    let d = Dr.of_parse_error (loc, "boom") in
    Alcotest.(check string) "code" "E001" d.D.code;
    Alcotest.(check int) "line" 3 loc.Qvtr.Loc.line;
    let r = D.render ~src d in
    Alcotest.(check bool) "caret present" true (String.contains r '^');
    Alcotest.(check bool) "file prefix" true
      (String.length r > 7 && String.sub r 0 7 = "t.qvtr:")

let test_unterminated_comment_position () =
  let src = "transformation T(m : MM) {\n  /* never closed\n" in
  match Qvtr.Parser.parse_located src with
  | Ok _ -> Alcotest.fail "must not parse"
  | Error (loc, msg) ->
    Alcotest.(check string) "message" "unterminated comment" msg;
    (* reported at the opening '/*', not at EOF *)
    Alcotest.(check int) "line" 2 loc.Qvtr.Loc.line;
    Alcotest.(check int) "col" 3 loc.Qvtr.Loc.col

let test_clean_examples () =
  (* the shipped Fig. 1 transformation lints clean, warnings included *)
  let t = Featuremodel.Fm.source ~k:2 in
  let diags =
    Dr.lint_source t ~metamodels:Featuremodel.Fm.metamodels
  in
  Alcotest.(check (list string)) "no diagnostics" []
    (List.map (fun (d : D.t) -> d.D.code) diags)

(* Lint is observation only: running it must not change checking
   verdicts. Same fuzz pipeline as test_parser_random. *)
let prop_lint_preserves_verdicts =
  QCheck.Test.make ~name:"lint never changes Check.run verdicts" ~count:200
    Test_parser_random.arb_transformation (fun t ->
      let metamodels = Test_parser_random.fuzz_metamodels in
      let models = Test_parser_random.fuzz_models () in
      let verdict () =
        match Qvtr.Check.run t ~metamodels ~models with
        | Ok report -> Some report.Qvtr.Check.consistent
        | Error _ -> None
      in
      let before = verdict () in
      let _ = Dr.lint_ast ~models t ~metamodels in
      let after = verdict () in
      before = after)

let suite =
  List.map
    (fun name -> Alcotest.test_case (name ^ " golden") `Quick (test_golden name))
    (corpus_cases ())
  @ [
      Alcotest.test_case "registry covered by corpus" `Quick test_registry_covered;
      Alcotest.test_case "all diagnostics located" `Quick test_locations_known;
      Alcotest.test_case "json output parses strictly" `Quick test_json_roundtrip;
      Alcotest.test_case "werror and suppress" `Quick test_werror_and_suppress;
      Alcotest.test_case "parse errors carry caret" `Quick test_parse_error_caret;
      Alcotest.test_case "unterminated comment at opening" `Quick
        test_unterminated_comment_position;
      Alcotest.test_case "shipped example lints clean" `Quick test_clean_examples;
      QCheck_alcotest.to_alcotest prop_lint_preserves_verdicts;
    ]
