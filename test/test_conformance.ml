(* Tests for Mdl.Conformance: multiplicities, containment, opposites,
   key attributes. *)

module MM = Mdl.Metamodel
module Model = Mdl.Model
module C = Mdl.Conformance
module I = Mdl.Ident
module V = Mdl.Value

let mm () =
  MM.make_exn ~name:"Org"
    [
      MM.cls "Dept"
        ~attrs:[ MM.attr ~key:true "code" MM.P_string ]
        ~refs:
          [
            MM.ref_ ~mult:MM.mult_some "staff" ~target:"Emp" ~containment:true;
            MM.ref_ ~mult:MM.mult_opt "head" ~target:"Emp";
          ];
      MM.cls "Emp" ~attrs:[ MM.attr "name" MM.P_string ];
    ]

let dept = I.make "Dept"
let emp = I.make "Emp"
let code = I.make "code"
let name_ = I.make "name"
let staff = I.make "staff"
let head = I.make "head"

let dept_with_staff () =
  let m = Model.empty ~name:"m" (mm ()) in
  let m, d = Model.add_object m ~cls:dept in
  let m = Model.set_attr1 m d code (V.str "D1") in
  let m, e = Model.add_object m ~cls:emp in
  let m = Model.set_attr1 m e name_ (V.str "ann") in
  let m = Model.add_ref m ~src:d ~ref_:staff ~dst:e in
  (m, d, e)

let test_conforming () =
  let m, _, _ = dept_with_staff () in
  Alcotest.(check bool) "conforms" true (C.conforms m);
  Alcotest.(check int) "no violations" 0 (List.length (C.check m))

let test_missing_mandatory_attr () =
  let m, _, e = dept_with_staff () in
  let m = Model.set_attr m e name_ [] in
  let vs = C.check m in
  Alcotest.(check bool) "attr multiplicity violation" true
    (List.exists (function C.Attr_multiplicity _ -> true | _ -> false) vs)

let test_lower_bound_ref () =
  let m = Model.empty ~name:"m" (mm ()) in
  let m, d = Model.add_object m ~cls:dept in
  let m = Model.set_attr1 m d code (V.str "D1") in
  let vs = C.check m in
  Alcotest.(check bool) "staff 1..* violated when empty" true
    (List.exists
       (function C.Ref_multiplicity { ref_; _ } -> I.equal ref_ staff | _ -> false)
       vs)

let test_upper_bound_ref () =
  let m, d, e = dept_with_staff () in
  let m, e2 = Model.add_object m ~cls:emp in
  let m = Model.set_attr1 m e2 name_ (V.str "bob") in
  let m = Model.add_ref m ~src:d ~ref_:staff ~dst:e2 in
  let m = Model.add_ref m ~src:d ~ref_:head ~dst:e in
  let m = Model.add_ref m ~src:d ~ref_:head ~dst:e2 in
  let vs = C.check m in
  Alcotest.(check bool) "head 0..1 violated with two targets" true
    (List.exists
       (function C.Ref_multiplicity { ref_; _ } -> I.equal ref_ head | _ -> false)
       vs)

let test_two_containers () =
  let m, d, e = dept_with_staff () in
  ignore d;
  let m, d2 = Model.add_object m ~cls:dept in
  let m = Model.set_attr1 m d2 code (V.str "D2") in
  let m = Model.add_ref m ~src:d2 ~ref_:staff ~dst:e in
  let vs = C.check m in
  Alcotest.(check bool) "double containment flagged" true
    (List.exists (function C.Multiple_containers _ -> true | _ -> false) vs)

let test_containment_cycle () =
  let mm =
    MM.make_exn ~name:"T"
      [ MM.cls "N" ~refs:[ MM.ref_ "kids" ~target:"N" ~containment:true ] ]
  in
  let m = Model.empty ~name:"m" mm in
  let m, a = Model.add_object m ~cls:(I.make "N") in
  let m, b = Model.add_object m ~cls:(I.make "N") in
  let m = Model.add_ref m ~src:a ~ref_:(I.make "kids") ~dst:b in
  let m = Model.add_ref m ~src:b ~ref_:(I.make "kids") ~dst:a in
  let vs = C.check m in
  Alcotest.(check bool) "containment cycle flagged" true
    (List.exists (function C.Containment_cycle _ -> true | _ -> false) vs)

let test_opposites () =
  let mm =
    MM.make_exn ~name:"G"
      [
        MM.cls "A" ~refs:[ MM.ref_ "to_b" ~target:"B" ~opposite:"to_a" ];
        MM.cls "B" ~refs:[ MM.ref_ "to_a" ~target:"A" ~opposite:"to_b" ];
      ]
  in
  let m = Model.empty ~name:"m" mm in
  let m, a = Model.add_object m ~cls:(I.make "A") in
  let m, b = Model.add_object m ~cls:(I.make "B") in
  let m = Model.add_ref m ~src:a ~ref_:(I.make "to_b") ~dst:b in
  let vs = C.check m in
  Alcotest.(check bool) "missing opposite edge flagged" true
    (List.exists (function C.Opposite_mismatch _ -> true | _ -> false) vs);
  let m = Model.add_ref m ~src:b ~ref_:(I.make "to_a") ~dst:a in
  Alcotest.(check bool) "symmetric edges conform" true (C.conforms m)

let test_key_violation () =
  let m, _, _ = dept_with_staff () in
  let m, d2 = Model.add_object m ~cls:dept in
  let m = Model.set_attr1 m d2 code (V.str "D1") in
  (* reuse! *)
  let m, e2 = Model.add_object m ~cls:emp in
  let m = Model.set_attr1 m e2 name_ (V.str "zoe") in
  let m = Model.add_ref m ~src:d2 ~ref_:staff ~dst:e2 in
  let vs = C.check m in
  Alcotest.(check bool) "duplicate key flagged" true
    (List.exists (function C.Key_violation _ -> true | _ -> false) vs)

let test_key_ok_across_classes () =
  (* key uniqueness is per class extent: same value on different
     classes is fine (name is not a key on Emp anyway; use two Depts
     with distinct codes) *)
  let m, _, _ = dept_with_staff () in
  let m, d2 = Model.add_object m ~cls:dept in
  let m = Model.set_attr1 m d2 code (V.str "D2") in
  let m, e2 = Model.add_object m ~cls:emp in
  let m = Model.set_attr1 m e2 name_ (V.str "ann") in
  let m = Model.add_ref m ~src:d2 ~ref_:staff ~dst:e2 in
  Alcotest.(check bool) "distinct keys conform" true (C.conforms m)

let test_report_rendering () =
  let m = Model.empty ~name:"m" (mm ()) in
  let m, d = Model.add_object m ~cls:dept in
  ignore d;
  let vs = C.check m in
  let rendered = Format.asprintf "%a" C.pp_report vs in
  Alcotest.(check bool) "report mentions violations" true
    (String.length rendered > 0 && vs <> [])

let suite =
  [
    Alcotest.test_case "conforming model" `Quick test_conforming;
    Alcotest.test_case "missing mandatory attribute" `Quick test_missing_mandatory_attr;
    Alcotest.test_case "reference lower bound" `Quick test_lower_bound_ref;
    Alcotest.test_case "reference upper bound" `Quick test_upper_bound_ref;
    Alcotest.test_case "two containers" `Quick test_two_containers;
    Alcotest.test_case "containment cycle" `Quick test_containment_cycle;
    Alcotest.test_case "opposites" `Quick test_opposites;
    Alcotest.test_case "key violation" `Quick test_key_violation;
    Alcotest.test_case "keys scoped per extent" `Quick test_key_ok_across_classes;
    Alcotest.test_case "report rendering" `Quick test_report_rendering;
  ]
