(* Tests for Relog.Bounds / Translate / Finder: the bounded model
   finder, cross-validated against brute-force enumeration with the
   evaluator. *)

module I = Mdl.Ident
module R = Relog.Rel
module TS = R.Tupleset
module A = Relog.Ast
module B = Relog.Bounds
module F = Relog.Finder

let universe n = R.Universe.make (List.init n (fun i -> I.make (Printf.sprintf "a%d" i)))

let test_bounds_validation () =
  let u = universe 2 in
  let b = B.make u in
  let unary = TS.of_list [ [| 0 |] ] in
  let b = B.bound b (I.make "S") ~lower:unary ~upper:(TS.univ u) in
  Alcotest.(check (option int)) "arity recorded" (Some 1) (B.arity b (I.make "S"));
  (match B.bound b (I.make "S") ~lower:TS.empty ~upper:TS.empty with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "rebinding must raise");
  (match B.bound b (I.make "T") ~lower:(TS.univ u) ~upper:unary with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "lower ⊄ upper must raise");
  let b = B.loosen b (I.make "S") ~lower:TS.empty ~upper:(TS.univ u) in
  Alcotest.(check bool) "loosen replaces" true
    (match B.get b (I.make "S") with Some (l, _) -> TS.is_empty l | None -> false)

let test_exact_bounds_are_constant () =
  let u = universe 3 in
  let v = TS.of_list [ [| 0 |]; [| 2 |] ] in
  let b = B.exact (B.make u) (I.make "S") v in
  let fd = F.prepare b [ A.Some_ (A.rel "S") ] in
  (match F.solve fd with
  | F.Sat inst -> Alcotest.(check bool) "decoded equals bound" true (TS.equal (Relog.Instance.get inst (I.make "S")) v)
  | F.Unsat -> Alcotest.fail "constant instance must satisfy");
  (* blocking the only instance exhausts the space *)
  F.block fd;
  Alcotest.(check bool) "no second instance" true (F.solve fd = F.Unsat)

let count_sat ~n formulas =
  (* brute-force count of unary S ⊆ univ over n atoms satisfying the
     formulas, via the evaluator *)
  let u = universe n in
  let atoms = List.init n (fun i -> [| i |]) in
  let rec subsets = function
    | [] -> [ [] ]
    | t :: rest ->
      let rs = subsets rest in
      rs @ List.map (fun s -> t :: s) rs
  in
  List.length
    (List.filter
       (fun sub ->
         let inst = Relog.Instance.set (Relog.Instance.make u) (I.make "S") (TS.of_list sub) in
         List.for_all (Relog.Eval.holds inst) formulas)
       (subsets atoms))

let finder_count ~n formulas =
  let u = universe n in
  let b = B.bound (B.make u) (I.make "S") ~lower:TS.empty ~upper:(TS.univ u) in
  F.count (F.prepare b formulas)

let test_enumeration_matches_eval () =
  let cases =
    [
      [ A.Some_ (A.rel "S") ];
      [ A.No (A.rel "S") ];
      [ A.Lone (A.rel "S") ];
      [ A.One (A.rel "S") ];
      [ A.in_ (A.atom "a0") (A.rel "S") ];
      [ A.forall [ ("x", A.rel "S") ] (A.eq (A.var "x") (A.atom "a1")) ];
      [ A.exists [ ("x", A.Univ) ] (A.not_ (A.in_ (A.var "x") (A.rel "S"))) ];
    ]
  in
  List.iteri
    (fun i formulas ->
      Alcotest.(check int)
        (Printf.sprintf "case %d count matches" i)
        (count_sat ~n:3 formulas) (finder_count ~n:3 formulas))
    cases

let test_functions_count () =
  (* total functions over n atoms: n^n *)
  let u = universe 3 in
  let all_pairs = TS.product (TS.univ u) (TS.univ u) in
  let b = B.bound (B.make u) (I.make "R") ~lower:TS.empty ~upper:all_pairs in
  let f = A.forall [ ("x", A.Univ) ] (A.One (A.dot (A.var "x") (A.rel "R"))) in
  Alcotest.(check int) "27 functions" 27 (F.count (F.prepare b [ f ]));
  (* permutations: functions with injectivity *)
  let inj =
    A.forall [ ("x", A.Univ); ("y", A.Univ) ]
      (A.implies
         (A.eq (A.dot (A.var "x") (A.rel "R")) (A.dot (A.var "y") (A.rel "R")))
         (A.eq (A.var "x") (A.var "y")))
  in
  let b = B.bound (B.make u) (I.make "R") ~lower:TS.empty ~upper:all_pairs in
  Alcotest.(check int) "6 permutations" 6 (F.count (F.prepare b [ f; inj ]))

let test_closure_translation () =
  (* strict linear orders over 4 atoms: 24 *)
  let u = universe 4 in
  let all_pairs = TS.product (TS.univ u) (TS.univ u) in
  let b = B.bound (B.make u) (I.make "R") ~lower:TS.empty ~upper:all_pairs in
  let r = A.rel "R" in
  let irrefl = A.No (A.Inter (r, A.Iden)) in
  let trans = A.in_ (A.Join (r, r)) r in
  let total =
    A.forall [ ("x", A.Univ); ("y", A.Univ) ]
      (A.disj
         [
           A.eq (A.var "x") (A.var "y");
           A.in_ (A.Product (A.var "x", A.var "y")) r;
           A.in_ (A.Product (A.var "y", A.var "x")) r;
         ])
  in
  Alcotest.(check int) "24 linear orders" 24 (F.count (F.prepare b [ irrefl; trans; total ]));
  (* closure consistency: ^R = R for transitive relations *)
  let b = B.bound (B.make u) (I.make "R") ~lower:TS.empty ~upper:all_pairs in
  let fd = F.prepare b [ trans; A.Some_ r; A.not_ (A.eq (A.Closure r) r) ] in
  Alcotest.(check bool) "^R = R under transitivity" true (F.solve fd = F.Unsat)

let test_decoded_instances_satisfy () =
  let u = universe 3 in
  let all_pairs = TS.product (TS.univ u) (TS.univ u) in
  let b = B.bound (B.make u) (I.make "R") ~lower:TS.empty ~upper:all_pairs in
  let f =
    A.conj
      [
        A.Some_ (A.rel "R");
        A.in_ (A.Join (A.rel "R", A.rel "R")) (A.rel "R");
        A.No (A.Inter (A.rel "R", A.Iden));
      ]
  in
  let fd = F.prepare b [ f ] in
  let insts = F.enumerate ~limit:50 fd in
  Alcotest.(check bool) "non-empty" true (insts <> []);
  Alcotest.(check bool) "every decoded instance satisfies the formula" true
    (List.for_all (fun inst -> Relog.Eval.holds inst f) insts)

let test_lower_bound_respected () =
  let u = universe 3 in
  let lower = TS.of_list [ [| 0 |] ] in
  let b = B.bound (B.make u) (I.make "S") ~lower ~upper:(TS.univ u) in
  let fd = F.prepare b [] in
  let insts = F.enumerate fd in
  Alcotest.(check int) "2 free atoms -> 4 instances" 4 (List.length insts);
  Alcotest.(check bool) "lower bound everywhere" true
    (List.for_all
       (fun inst -> TS.subset lower (Relog.Instance.get inst (I.make "S")))
       insts)

let test_unsupported () =
  let u = universe 2 in
  let b = B.make u in
  (* unbound relation *)
  match F.prepare b [ A.Some_ (A.rel "Ghost") ] with
  | exception Relog.Translate.Unsupported _ -> ()
  | _ -> Alcotest.fail "unbound relation must raise"

let test_assumption_solving () =
  let u = universe 2 in
  let b = B.bound (B.make u) (I.make "S") ~lower:TS.empty ~upper:(TS.univ u) in
  let fd = F.prepare b [] in
  let trans = F.translation fd in
  (* find the primary variable of atom a0 and force it by assumption *)
  let v =
    match Relog.Translate.primary_var trans (I.make "S") [| 0 |] with
    | Some v -> v
    | None -> Alcotest.fail "expected a primary variable"
  in
  (match F.solve ~assumptions:[ Sat.Lit.pos v ] fd with
  | F.Sat inst ->
    Alcotest.(check bool) "assumed tuple present" true
      (TS.mem [| 0 |] (Relog.Instance.get inst (I.make "S")))
  | F.Unsat -> Alcotest.fail "assumption should be satisfiable");
  match F.solve ~assumptions:[ Sat.Lit.neg_of v ] fd with
  | F.Sat inst ->
    Alcotest.(check bool) "negated assumption excludes tuple" false
      (TS.mem [| 0 |] (Relog.Instance.get inst (I.make "S")))
  | F.Unsat -> Alcotest.fail "negated assumption should be satisfiable"

let test_scoped_blocks_independent () =
  (* guarded finder over S ⊆ {a0, a1} with guard g ⇔ some S; blocks
     added under one assumption context must not leak into another *)
  let u = universe 2 in
  let b = B.bound (B.make u) (I.make "S") ~lower:TS.empty ~upper:(TS.univ u) in
  let fd, guards = F.prepare_guarded b [ A.Some_ (A.rel "S") ] in
  let g = match guards with [ g ] -> g | _ -> Alcotest.fail "one guard" in
  let trans = F.translation fd in
  let pv i =
    match Relog.Translate.primary_var trans (I.make "S") [| i |] with
    | Some v -> v
    | None -> Alcotest.fail "expected a primary variable"
  in
  (* enumerate a context to exhaustion under a scope literal *)
  let exhaust assumptions =
    let scope = F.new_scope fd in
    let rec go n =
      match F.solve ~assumptions:(assumptions @ [ scope ]) fd with
      | F.Sat _ ->
        F.block ~scope fd;
        go (n + 1)
      | F.Unsat -> n
    in
    go 0
  in
  (* context A: a0 pinned in — instances {a0} and {a0, a1} *)
  let ctx_a = [ Sat.Lit.pos (pv 0); g ] in
  Alcotest.(check int) "context A exhausts at 2" 2 (exhaust ctx_a);
  (* context B: a0 pinned out — its single instance {a1} must still be
     reachable even though a block of A has a1 ∉ S baked... it must
     NOT: scoped blocks omit assumed primaries and carry ¬scope *)
  let ctx_b = [ Sat.Lit.neg_of (pv 0); g ] in
  Alcotest.(check int) "context B unaffected by A's blocks" 1 (exhaust ctx_b);
  (* back to context A under a fresh scope: its blocks were retracted
     when the old scope literal was dropped *)
  Alcotest.(check int) "context A enumerable again" 2 (exhaust ctx_a);
  (* the solver itself stays usable without any scope *)
  match F.solve ~assumptions:[ g ] fd with
  | F.Sat _ -> ()
  | F.Unsat -> Alcotest.fail "unscoped solve must still be satisfiable"

let suite =
  [
    Alcotest.test_case "bounds validation" `Quick test_bounds_validation;
    Alcotest.test_case "exact bounds constant" `Quick test_exact_bounds_are_constant;
    Alcotest.test_case "enumeration matches eval" `Quick test_enumeration_matches_eval;
    Alcotest.test_case "function counting" `Quick test_functions_count;
    Alcotest.test_case "closure translation" `Quick test_closure_translation;
    Alcotest.test_case "decoded instances satisfy" `Quick test_decoded_instances_satisfy;
    Alcotest.test_case "lower bounds respected" `Quick test_lower_bound_respected;
    Alcotest.test_case "unsupported inputs" `Quick test_unsupported;
    Alcotest.test_case "assumption solving" `Quick test_assumption_solving;
    Alcotest.test_case "scoped blocks independent" `Quick
      test_scoped_blocks_independent;
  ]
