(* Tests for DIMACS I/O. *)

module D = Sat.Dimacs
module L = Sat.Lit
module S = Sat.Solver

let test_print () =
  let out = D.to_string ~nvars:3 [ [ L.pos 0; L.neg_of 2 ]; [ L.pos 1 ] ] in
  Alcotest.(check string) "rendering" "p cnf 3 2\n1 -3 0\n2 0\n" out

let test_parse () =
  let src = "c a comment\np cnf 3 2\n1 -3 0\n2 0\n" in
  match D.parse src with
  | Error e -> Alcotest.failf "parse: %s" e
  | Ok (nvars, clauses) ->
    Alcotest.(check int) "nvars" 3 nvars;
    Alcotest.(check int) "clauses" 2 (List.length clauses);
    Alcotest.(check (list int)) "first clause"
      [ L.pos 0; L.neg_of 2 ]
      (List.hd clauses)

let test_roundtrip () =
  let clauses = [ [ L.pos 0; L.pos 1 ]; [ L.neg_of 1; L.pos 2 ]; [ L.neg_of 0 ] ] in
  match D.parse (D.to_string ~nvars:3 clauses) with
  | Ok (_, clauses') -> Alcotest.(check bool) "round-trip" true (clauses = clauses')
  | Error e -> Alcotest.failf "round-trip: %s" e

let test_multiline_clause () =
  match D.parse "p cnf 2 1\n1\n2 0\n" with
  | Ok (_, [ clause ]) -> Alcotest.(check int) "clause spans lines" 2 (List.length clause)
  | Ok _ -> Alcotest.fail "expected one clause"
  | Error e -> Alcotest.failf "parse: %s" e

let test_load_into () =
  let s = S.create () in
  (match D.load_into s "p cnf 2 2\n1 2 0\n-1 0\n" with
  | Ok () -> ()
  | Error e -> Alcotest.failf "load: %s" e);
  Alcotest.(check bool) "solvable" true (S.solve s = S.Sat);
  Alcotest.(check bool) "v1 forced" true (S.value s 1)

let test_bad_input () =
  (match D.parse "p cnf x 1\n1 0\n" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bad header accepted");
  match D.parse "p cnf 1 1\nfoo 0\n" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bad token accepted"

let suite =
  [
    Alcotest.test_case "print" `Quick test_print;
    Alcotest.test_case "parse" `Quick test_parse;
    Alcotest.test_case "roundtrip" `Quick test_roundtrip;
    Alcotest.test_case "multiline clause" `Quick test_multiline_clause;
    Alcotest.test_case "load into solver" `Quick test_load_into;
    Alcotest.test_case "bad input" `Quick test_bad_input;
  ]
