(* Tests for DIMACS I/O. *)

module D = Sat.Dimacs
module L = Sat.Lit
module S = Sat.Solver

let test_print () =
  let out = D.to_string ~nvars:3 [ [ L.pos 0; L.neg_of 2 ]; [ L.pos 1 ] ] in
  Alcotest.(check string) "rendering" "p cnf 3 2\n1 -3 0\n2 0\n" out

let test_parse () =
  let src = "c a comment\np cnf 3 2\n1 -3 0\n2 0\n" in
  match D.parse src with
  | Error e -> Alcotest.failf "parse: %s" e
  | Ok (nvars, clauses) ->
    Alcotest.(check int) "nvars" 3 nvars;
    Alcotest.(check int) "clauses" 2 (List.length clauses);
    Alcotest.(check (list int)) "first clause"
      [ L.pos 0; L.neg_of 2 ]
      (List.hd clauses)

let test_roundtrip () =
  let clauses = [ [ L.pos 0; L.pos 1 ]; [ L.neg_of 1; L.pos 2 ]; [ L.neg_of 0 ] ] in
  match D.parse (D.to_string ~nvars:3 clauses) with
  | Ok (_, clauses') -> Alcotest.(check bool) "round-trip" true (clauses = clauses')
  | Error e -> Alcotest.failf "round-trip: %s" e

let test_multiline_clause () =
  match D.parse "p cnf 2 1\n1\n2 0\n" with
  | Ok (_, [ clause ]) -> Alcotest.(check int) "clause spans lines" 2 (List.length clause)
  | Ok _ -> Alcotest.fail "expected one clause"
  | Error e -> Alcotest.failf "parse: %s" e

let test_load_into () =
  let s = S.create () in
  (match D.load_into s "p cnf 2 2\n1 2 0\n-1 0\n" with
  | Ok () -> ()
  | Error e -> Alcotest.failf "load: %s" e);
  Alcotest.(check bool) "solvable" true (S.solve s = S.Sat);
  Alcotest.(check bool) "v1 forced" true (S.value s 1)

let test_bad_input () =
  (match D.parse "p cnf x 1\n1 0\n" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bad header accepted");
  match D.parse "p cnf 1 1\nfoo 0\n" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bad token accepted"

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  go 0

let expect_error ~msg ~sub src =
  match D.parse src with
  | Ok _ -> Alcotest.failf "%s: accepted" msg
  | Error e ->
    Alcotest.(check bool)
      (Printf.sprintf "%s: %S mentions %S" msg e sub)
      true (contains ~sub e)

let test_bare_p_line () =
  (* a bare "p" (or truncated header) is a malformed problem line, not
     a clause token *)
  expect_error ~msg:"bare p" ~sub:"p header" "p\n1 0\n";
  expect_error ~msg:"truncated header" ~sub:"p header" "p cnf 2\n1 0\n";
  expect_error ~msg:"duplicate header" ~sub:"duplicate"
    "p cnf 1 1\np cnf 1 1\n1 0\n"

let test_unterminated_clause () =
  expect_error ~msg:"unterminated clause" ~sub:"unterminated"
    "p cnf 2 1\n1 2\n";
  (* terminating 0 on a later line is fine *)
  match D.parse "p cnf 2 1\n1 2\n0\n" with
  | Ok (_, [ [ _; _ ] ]) -> ()
  | Ok _ -> Alcotest.fail "expected one binary clause"
  | Error e -> Alcotest.failf "split terminator rejected: %s" e

let test_header_count_validation () =
  expect_error ~msg:"too few clauses" ~sub:"declares 2 clauses"
    "p cnf 2 2\n1 0\n";
  expect_error ~msg:"too many clauses" ~sub:"declares 1 clauses"
    "p cnf 2 1\n1 0\n2 0\n";
  expect_error ~msg:"variable overflow" ~sub:"declares only 2"
    "p cnf 2 1\n1 3 0\n";
  expect_error ~msg:"negative counts" ~sub:"negative" "p cnf -1 1\n1 0\n"

let test_headerless () =
  (* without a header the variable count is inferred from the body *)
  match D.parse "1 -3 0\n2 0\n" with
  | Ok (nvars, clauses) ->
    Alcotest.(check int) "inferred nvars" 3 nvars;
    Alcotest.(check int) "clauses" 2 (List.length clauses)
  | Error e -> Alcotest.failf "headerless parse: %s" e

let suite =
  [
    Alcotest.test_case "print" `Quick test_print;
    Alcotest.test_case "parse" `Quick test_parse;
    Alcotest.test_case "roundtrip" `Quick test_roundtrip;
    Alcotest.test_case "multiline clause" `Quick test_multiline_clause;
    Alcotest.test_case "load into solver" `Quick test_load_into;
    Alcotest.test_case "bad input" `Quick test_bad_input;
    Alcotest.test_case "bare p line" `Quick test_bare_p_line;
    Alcotest.test_case "unterminated clause" `Quick test_unterminated_clause;
    Alcotest.test_case "header count validation" `Quick
      test_header_count_validation;
    Alcotest.test_case "headerless input" `Quick test_headerless;
  ]
