(* Tests for lib/incr: incremental consistency-maintenance sessions.

   The load-bearing property is *equivalence*: after any edit
   sequence, a session's recheck verdicts and rerepair menu must be
   exactly what a from-scratch run (Qvtr.Check / Echo.Engine over the
   current models, with the universe aligned via value_universe and
   slack_budget) computes. On top of that: blame sets, the
   translation cache (rebuild triggers and cache hits), commit
   round-trips, and the warm path's strict cost advantage over
   from-scratch — the property experiment E9 measures. *)

module S = Incr.Session
module Rp = Incr.Replay
module F = Featuremodel.Fm
module Sc = Featuremodel.Scenarios
module Eng = Echo.Engine
module Edit = Mdl.Edit
module Model = Mdl.Model
module Ident = Mdl.Ident

(* CI runs the suite at several MDQVTR_JOBS values; jobs only feeds
   the from-scratch engine runs — sessions themselves are serial. *)
let jobs =
  match Sys.getenv_opt "MDQVTR_JOBS" with
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some n when n >= 1 -> n
    | _ -> 2)
  | None -> 2

let metamodels = F.metamodels
let trans = F.transformation ~k:2

let open_exn ?slack_budget ?headroom ~cfs ~fm targets =
  match
    S.open_session ?slack_budget ?headroom ~transformation:trans ~metamodels
      ~models:(F.bind ~cfs ~fm) ~targets:(Echo.Target.of_list targets) ()
  with
  | Ok s -> s
  | Error e -> Alcotest.fail e

let recheck_exn ?blame sess =
  match S.recheck ?blame sess with Ok r -> r | Error e -> Alcotest.fail e

let model_of sess p =
  match List.find_opt (fun (q, _) -> Ident.equal q p) (S.models sess) with
  | Some (_, m) -> m
  | None -> Alcotest.failf "no parameter %s in session" (Ident.name p)

(* Diff the session's current models against a desired state and hand
   the scripts to apply_edits — the editor-save workflow. *)
let edit_to sess ~cfs ~fm =
  let batch =
    List.filter_map
      (fun (p, m') ->
        match Mdl.Diff.script (model_of sess p) m' with
        | [] -> None
        | edits -> Some (p, edits))
      (F.bind ~cfs ~fm)
  in
  match S.apply_edits sess batch with
  | Ok () -> ()
  | Error e -> Alcotest.fail e

(* ------------------------------------------------------------------ *)
(* Equivalence helpers                                                 *)

let check_agrees ~ctx sess =
  let rep = recheck_exn sess in
  let scratch =
    Qvtr.Check.run_exn trans ~metamodels ~models:(S.models sess)
  in
  Alcotest.(check bool)
    (ctx ^ ": consistency agrees with Check.run")
    scratch.Qvtr.Check.consistent rep.S.consistent;
  Alcotest.(check int)
    (ctx ^ ": verdict count")
    (List.length scratch.Qvtr.Check.verdicts)
    (List.length rep.S.verdicts);
  List.iter2
    (fun (v : S.verdict) (w : Qvtr.Check.verdict) ->
      Alcotest.(check string)
        (ctx ^ ": verdict relation")
        (Ident.name w.Qvtr.Check.v_relation)
        (Ident.name v.S.v_relation);
      Alcotest.(check bool)
        (ctx ^ ": directions align")
        true
        (v.S.v_direction = w.Qvtr.Check.v_direction);
      Alcotest.(check bool)
        (ctx ^ ": verdict agrees")
        w.Qvtr.Check.v_holds v.S.v_holds)
    rep.S.verdicts scratch.Qvtr.Check.verdicts;
  rep

(* Canonical serialization of a repair's target models, for comparing
   menus as sets. *)
let repair_key tgts models =
  models
  |> List.filter (fun (p, _) -> Ident.Set.mem p tgts)
  |> List.map (fun (p, m) -> (Ident.name p, Mdl.Serialize.model_to_string m))
  |> List.sort compare
  |> List.map (fun (n, s) -> n ^ ":" ^ s)
  |> String.concat "\n--\n"

let rerepair_exn ?limit sess =
  match S.rerepair ?limit sess with Ok r -> r | Error e -> Alcotest.fail e

let repair_agrees ~ctx sess =
  let rep = rerepair_exn ~limit:64 sess in
  let outcomes =
    match
      Eng.enforce_all ~limit:64 ~jobs ~slack_objects:(S.slack_budget sess)
        ~extra_values:(S.value_universe sess) trans ~metamodels
        ~models:(S.models sess) ~targets:(S.targets sess)
    with
    | Ok o -> o
    | Error e -> Alcotest.fail e
  in
  (match (rep.S.outcome, outcomes) with
  | S.Already_consistent, [ Eng.Already_consistent ] -> ()
  | S.Cannot_restore, [ Eng.Cannot_restore ] -> ()
  | S.Repaired reps, outs ->
    let engine =
      List.map
        (function
          | Eng.Enforced r -> r
          | Eng.Already_consistent ->
            Alcotest.failf "%s: session repaired, engine consistent" ctx
          | Eng.Cannot_restore ->
            Alcotest.failf "%s: session repaired, engine cannot" ctx)
        outs
    in
    let tgts = S.targets sess in
    (match (reps, engine) with
    | r :: _, e :: _ ->
      Alcotest.(check int)
        (ctx ^ ": relational distance")
        e.Eng.relational_distance r.S.r_relational_distance;
      Alcotest.(check bool)
        (ctx ^ ": session menu at a single distance")
        true
        (List.for_all
           (fun r' ->
             r'.S.r_relational_distance = r.S.r_relational_distance)
           reps)
    | _ -> Alcotest.failf "%s: empty repair menu" ctx);
    (* the menus, as canonically serialized target-model sets, must
       coincide — including per-repair edit distances *)
    let key_sess =
      List.map
        (fun r -> (repair_key tgts r.S.r_models, r.S.r_edit_distance))
        reps
      |> List.sort_uniq compare
    in
    let key_eng =
      List.map
        (fun r -> (repair_key tgts r.Eng.repaired, r.Eng.edit_distance))
        engine
      |> List.sort_uniq compare
    in
    Alcotest.(check (list (pair string int)))
      (ctx ^ ": repair menu and edit distances")
      key_eng key_sess
  | S.Already_consistent, _ ->
    Alcotest.failf "%s: session consistent, engine disagrees" ctx
  | S.Cannot_restore, _ ->
    Alcotest.failf "%s: session cannot-restore, engine disagrees" ctx);
  rep

(* ------------------------------------------------------------------ *)
(* The directed walk: rechecks along an edit history                   *)

(* Each state is (cf1 features, cf2 features, fm features); the walk
   crosses consistent and inconsistent states, object creation through
   slack, deletion, re-creation under a stale id, and one genuine
   universe rebuild (a brand-new attribute value). *)
let walk =
  [
    ("s1 drop cf2 selection", [ "A" ], [], [ ("A", true); ("B", false) ]);
    ("s2 A made optional", [ "A" ], [], [ ("A", false); ("B", false) ]);
    ("s3 select B", [ "A"; "B" ], [ "B" ], [ ("A", false); ("B", false) ]);
    ("s4 B made mandatory", [ "A"; "B" ], [ "B" ], [ ("A", false); ("B", true) ]);
    ("s5 rename to unknown C", [ "A"; "C" ], [ "B" ], [ ("A", false); ("B", true) ]);
    ( "s6 adopt C everywhere",
      [ "A"; "C" ],
      [ "C" ],
      [ ("A", false); ("B", false); ("C", true) ] );
  ]

let state ~cf1 ~cf2 ~fm =
  ( [ F.configuration ~name:"cf1" cf1; F.configuration ~name:"cf2" cf2 ],
    F.feature_model ~name:"fm" fm )

let test_walk_check_equivalence () =
  let cfs, fm = state ~cf1:[ "A" ] ~cf2:[ "A" ] ~fm:[ ("A", true); ("B", false) ] in
  let sess = open_exn ~cfs ~fm [ "cf1"; "cf2" ] in
  let rep0 = check_agrees ~ctx:"s0" sess in
  Alcotest.(check bool) "s0 consistent" true rep0.S.consistent;
  Alcotest.(check bool) "s0 pays translation" true rep0.S.check_stats.S.translated;
  List.iter
    (fun (ctx, cf1, cf2, fm) ->
      let cfs, fm = state ~cf1 ~cf2 ~fm in
      edit_to sess ~cfs ~fm;
      let rep = check_agrees ~ctx sess in
      (* the session must agree with the set-level oracle too *)
      Alcotest.(check bool)
        (ctx ^ ": matches Fm.consistent oracle")
        (F.consistent ~cfs ~fm) rep.S.consistent)
    walk;
  (* only the brand-new value "C" at s5 forced a re-encode *)
  Alcotest.(check int) "one rebuild over the walk" 1 (S.rebuilds sess)

let test_blame_names_facts () =
  (* s5 of the walk violates both MF and OF; every violated direction
     must blame a non-empty, minimal set of model facts *)
  let cfs, fm =
    state ~cf1:[ "A"; "C" ] ~cf2:[ "B" ] ~fm:[ ("A", false); ("B", true) ]
  in
  let sess = open_exn ~cfs ~fm [ "cf1"; "cf2" ] in
  let rep = recheck_exn ~blame:true sess in
  Alcotest.(check bool) "state is inconsistent" false rep.S.consistent;
  List.iter
    (fun (v : S.verdict) ->
      if not v.S.v_holds then begin
        Alcotest.(check bool)
          (Printf.sprintf "%s blame non-empty" (Ident.name v.S.v_relation))
          true (v.S.v_blame <> []);
        List.iter
          (fun (f : S.fact) ->
            Alcotest.(check bool) "fact relation named" true
              (Ident.name f.S.f_rel <> "");
            Alcotest.(check bool) "fact tuple non-empty" true
              (Array.length f.S.f_atoms > 0))
          v.S.v_blame
      end
      else
        Alcotest.(check bool) "holding direction carries no blame" true
          (v.S.v_blame = []))
    rep.S.verdicts

(* ------------------------------------------------------------------ *)
(* Repair equivalence                                                  *)

let test_repair_walk () =
  let cfs, fm = state ~cf1:[ "A" ] ~cf2:[ "A" ] ~fm:[ ("A", true); ("B", false) ] in
  let sess = open_exn ~cfs ~fm [ "cf1"; "cf2" ] in
  let rep = repair_agrees ~ctx:"consistent state" sess in
  (match rep.S.outcome with
  | S.Already_consistent -> ()
  | _ -> Alcotest.fail "expected Already_consistent");
  (* break it: cf2 drops the mandatory A *)
  let cfs, fm = state ~cf1:[ "A" ] ~cf2:[] ~fm:[ ("A", true); ("B", false) ] in
  edit_to sess ~cfs ~fm;
  let rep1 = repair_agrees ~ctx:"after drop" sess in
  let first =
    match rep1.S.outcome with
    | S.Repaired (r :: _) -> r
    | _ -> Alcotest.fail "expected a repair menu"
  in
  (* warm repeat: a second rerepair on the untouched session sees the
     same state — scoped blocks from the first call must have been
     retracted *)
  let rep2 = rerepair_exn ~limit:64 sess in
  (match (rep1.S.outcome, rep2.S.outcome) with
  | S.Repaired a, S.Repaired b ->
    let tgts = S.targets sess in
    Alcotest.(check (list string))
      "rerepair is stable across warm repeats"
      (List.map (fun r -> repair_key tgts r.S.r_models) a)
      (List.map (fun r -> repair_key tgts r.S.r_models) b);
    Alcotest.(check bool) "warm repeat does not retranslate" false
      rep2.S.repair_stats.S.translated
  | _ -> Alcotest.fail "outcomes diverged across warm repeats");
  (* committing a repair routes through apply_edits and lands in a
     consistent state *)
  (match S.commit sess first with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  let rep = check_agrees ~ctx:"after commit" sess in
  Alcotest.(check bool) "committed repair is consistent" true rep.S.consistent

let test_scenarios_repair_equivalence () =
  (* every paper scenario, every restorable and non-restorable target
     set: the session's menu equals the engine's *)
  List.iter
    (fun (s : Sc.t) ->
      List.iter
        (fun targets ->
          let sess = open_exn ~cfs:s.Sc.cfs ~fm:s.Sc.fm targets in
          ignore
            (repair_agrees
               ~ctx:
                 (Printf.sprintf "%s -> %s" s.Sc.s_name
                    (String.concat "," targets))
               sess))
        (s.Sc.restorable @ s.Sc.not_restorable))
    Sc.all

(* ------------------------------------------------------------------ *)
(* The translation cache                                               *)

let feature = Ident.make "Feature"
let name_attr = Ident.make "name"

let add_feature ~id name =
  [
    Edit.Add_object { id; cls = feature };
    Edit.Set_attr
      { id; attr = name_attr; before = []; after = [ Mdl.Value.Str name ] };
  ]

let test_translation_cache_hit () =
  (* headroom 0: every unknown object id forces a re-encode, so
     cycling cf1 through base+#1, base+#2 and back to base+#1 must
     re-encode three times — and the third, whose (models, values)
     state equals the first, revives the cached generation instead of
     translating again *)
  let cfs, fm = state ~cf1:[ "A" ] ~cf2:[ "A" ] ~fm:[ ("A", true); ("B", false) ] in
  let hits0 =
    Obs.Metrics.counter_value (Obs.Metrics.counter "incr.translation_cache_hits")
  in
  let deltas0 =
    Obs.Metrics.counter_value (Obs.Metrics.counter "relog.delta_retranslations")
  in
  let sess = open_exn ~headroom:0 ~cfs ~fm [ "fm" ] in
  let r0 = recheck_exn sess in
  Alcotest.(check bool) "initial recheck translates" true
    r0.S.check_stats.S.translated;
  Alcotest.(check int) "no rebuild yet" 0 (S.rebuilds sess);
  let apply batch =
    match S.apply_edits sess [ (Ident.make "cf1", batch) ] with
    | Ok () -> ()
    | Error e -> Alcotest.fail e
  in
  (* #1 appears: unknown id, zero headroom -> rebuild *)
  apply (add_feature ~id:1 "B");
  let r1 = check_agrees ~ctx:"cache +#1" sess in
  Alcotest.(check bool) "rebuild 1 translates" true r1.S.check_stats.S.translated;
  Alcotest.(check int) "rebuild count 1" 1 (S.rebuilds sess);
  (* #1 replaced by #2 with identical content: new id -> rebuild *)
  apply (Edit.Delete_object { id = 1 } :: add_feature ~id:2 "B");
  let r2 = check_agrees ~ctx:"cache +#2" sess in
  Alcotest.(check bool) "rebuild 2 translates" true r2.S.check_stats.S.translated;
  Alcotest.(check int) "rebuild count 2" 2 (S.rebuilds sess);
  (* back to #1: the state (models and value universe) now fingerprints
     exactly as after the first rebuild — cache hit, no translation *)
  apply (Edit.Delete_object { id = 2 } :: add_feature ~id:1 "B");
  let r3 = check_agrees ~ctx:"cache back to +#1" sess in
  Alcotest.(check bool) "third re-encode hits the cache" false
    r3.S.check_stats.S.translated;
  Alcotest.(check int) "re-encode count 3" 3 (S.rebuilds sess);
  (* counter-level regression guard: the revival must register as a
     translation-cache hit, and the two genuine re-encodes must have
     gone through delta retranslation (not a from-scratch lowering) *)
  Alcotest.(check bool) "incr.translation_cache_hits advanced" true
    (Obs.Metrics.counter_value
       (Obs.Metrics.counter "incr.translation_cache_hits")
    > hits0);
  Alcotest.(check bool) "relog.delta_retranslations advanced" true
    (Obs.Metrics.counter_value
       (Obs.Metrics.counter "relog.delta_retranslations")
    > deltas0)

(* ------------------------------------------------------------------ *)
(* Warm vs from-scratch cost (the E9 property)                         *)

let fm_block features =
  "== "
  ^ String.concat " / "
      (List.map (fun (n, m) -> n ^ (if m then "!" else "")) features)
  ^ "\n"
  ^ Mdl.Serialize.model_to_string (F.feature_model ~name:"fm" features)
  ^ "\n"

let test_warm_beats_scratch () =
  (* single-attribute flips on the feature model, replayed against a
     from-scratch baseline: identical verdicts, and the warm path must
     cost strictly fewer conflicts+propagations at every step *)
  let cfs, fm = state ~cf1:[ "A" ] ~cf2:[ "A" ] ~fm:[ ("A", true); ("B", false) ] in
  let base = F.bind ~cfs ~fm in
  let script =
    String.concat ""
      (List.map fm_block
         [
           [ ("A", true); ("B", true) ];
           [ ("A", true); ("B", false) ];
           [ ("A", false); ("B", false) ];
           [ ("A", true); ("B", false) ];
           [ ("A", true); ("B", true) ];
         ])
  in
  let steps =
    match
      Rp.parse ~metamodels:[ F.cf_metamodel; F.fm_metamodel ] ~base script
    with
    | Ok steps -> steps
    | Error e -> Alcotest.fail e
  in
  Alcotest.(check int) "five steps" 5 (List.length steps);
  let records =
    match
      Rp.run ~transformation:trans ~metamodels ~models:base
        ~targets:(Echo.Target.of_list [ "cf1"; "cf2" ])
        steps
    with
    | Ok rs -> rs
    | Error e -> Alcotest.fail e
  in
  List.iter
    (fun (r : Rp.step_record) ->
      Alcotest.(check bool)
        (r.Rp.sr_label ^ ": one edit") true (r.Rp.sr_edits = 1);
      Alcotest.(check bool)
        (r.Rp.sr_label ^ ": verdicts match") true r.Rp.sr_verdicts_match;
      Alcotest.(check bool)
        (r.Rp.sr_label ^ ": warm path stays warm")
        false
        (r.Rp.sr_rebuilt || r.Rp.sr_session.S.translated);
      Alcotest.(check bool)
        (r.Rp.sr_label ^ ": scratch pays translation")
        true r.Rp.sr_scratch.S.translated;
      Alcotest.(check bool)
        (r.Rp.sr_label ^ ": warm path spends no translation wall")
        true
        (r.Rp.sr_session.S.translate_s = 0.
        && r.Rp.sr_scratch.S.translate_s > 0.);
      let warm =
        r.Rp.sr_session.S.conflicts + r.Rp.sr_session.S.propagations
      in
      let cold =
        r.Rp.sr_scratch.S.conflicts + r.Rp.sr_scratch.S.propagations
      in
      if warm >= cold then
        Alcotest.failf "%s: warm %d >= scratch %d conflicts+propagations"
          r.Rp.sr_label warm cold)
    records

let contains ~sub s =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let check_error_mentions ctx ~sub = function
  | Error e ->
    if not (contains ~sub e) then
      Alcotest.failf "%s: expected %S in error %S" ctx sub e
  | Ok _ -> Alcotest.failf "%s: malformed script must be rejected" ctx

let test_replay_parse_errors () =
  let mms = [ F.cf_metamodel; F.fm_metamodel ] in
  let cfs, fm = state ~cf1:[ "A" ] ~cf2:[ "A" ] ~fm:[ ("A", true) ] in
  let base = F.bind ~cfs ~fm in
  (* every rejection must name the script line it comes from *)
  check_error_mentions "text before the first marker" ~sub:"line 1"
    (Rp.parse ~metamodels:mms ~base "model x {}\n== late marker\n");
  check_error_mentions "stray text after blank lines" ~sub:"line 3"
    (Rp.parse ~metamodels:mms ~base "\n\nstray text\n== step\n");
  (* a model-syntax error inside a block reports the step, its marker
     line, and the absolute line of the offending token — bodies are
     newline-padded to their file position *)
  let bad = Rp.parse ~metamodels:mms ~base "== s1 bad block\nnot a model\n" in
  check_error_mentions "malformed block names its step" ~sub:{|step "s1 bad block"|} bad;
  check_error_mentions "malformed block names its marker" ~sub:"marker at line 1" bad;
  check_error_mentions "model error keeps absolute lines" ~sub:"line 2" bad;
  let prefix = "== ok\n" ^ Mdl.Serialize.model_to_string fm ^ "\n" in
  let marker_line =
    1 + String.fold_left (fun n c -> if c = '\n' then n + 1 else n) 0 prefix
  in
  check_error_mentions "later block, later marker line"
    ~sub:(Printf.sprintf "marker at line %d" marker_line)
    (Rp.parse ~metamodels:mms ~base (prefix ^ "== broken\nmodel cf1 : CF {\n"));
  (* unknown declaration keywords are model-syntax errors too *)
  check_error_mentions "unknown keyword" ~sub:"marker at line 1"
    (Rp.parse ~metamodels:mms ~base "== kw\nwidget w : W {}\n");
  (* blocks: labels, marker lines, and bodies in file coordinates *)
  (match Rp.blocks "== a\nbody\n\n== b\nmore\n" with
  | Ok [ ("a", 1, ba); ("b", 4, bb) ] ->
    Alcotest.(check string) "body a" "body" (String.trim ba);
    Alcotest.(check string) "body b" "more" (String.trim bb)
  | Ok bs -> Alcotest.failf "unexpected blocks (%d)" (List.length bs)
  | Error e -> Alcotest.fail e);
  (* a block restating the current state yields a step with no edits *)
  match
    Rp.parse ~metamodels:mms ~base
      ("== noop\n" ^ Mdl.Serialize.model_to_string fm ^ "\n")
  with
  | Ok [ { Rp.s_label = "noop"; s_batch = []; _ } ] -> ()
  | Ok _ -> Alcotest.fail "expected one empty step"
  | Error e -> Alcotest.fail e

let suite =
  [
    Alcotest.test_case "walk: recheck equals Check.run" `Quick
      test_walk_check_equivalence;
    Alcotest.test_case "blame names model facts" `Quick test_blame_names_facts;
    Alcotest.test_case "repair walk: rerepair equals enforce_all" `Slow
      test_repair_walk;
    Alcotest.test_case "scenario sweep: menus equal (E10)" `Slow
      test_scenarios_repair_equivalence;
    Alcotest.test_case "translation cache revives generations" `Quick
      test_translation_cache_hit;
    Alcotest.test_case "warm recheck beats from-scratch (E9)" `Quick
      test_warm_beats_scratch;
    Alcotest.test_case "replay script parsing" `Quick test_replay_parse_errors;
  ]
