(* Tests for Mdl.Model: object graphs, slots, typing discipline. *)

module MM = Mdl.Metamodel
module Model = Mdl.Model
module I = Mdl.Ident
module V = Mdl.Value

let mm () =
  MM.make_exn ~name:"Net"
    [
      MM.cls "Node" ~attrs:[ MM.attr "label" MM.P_string ]
        ~refs:[ MM.ref_ "next" ~target:"Node" ];
      MM.cls "Special" ~supers:[ "Node" ] ~attrs:[ MM.attr "level" MM.P_int ];
      MM.cls "Ghostless" ~abstract:true;
    ]

let node = I.make "Node"
let special = I.make "Special"
let label = I.make "label"
let next = I.make "next"

let test_add_and_query () =
  let m = Model.empty ~name:"m" (mm ()) in
  let m, a = Model.add_object m ~cls:node in
  let m, b = Model.add_object m ~cls:special in
  Alcotest.(check int) "two objects" 2 (Model.size m);
  Alcotest.(check bool) "ids distinct" true (a <> b);
  Alcotest.(check string) "class_of" "Node" (I.name (Model.class_of m a));
  Alcotest.(check (list int)) "exact extent of Node" [ a ] (Model.class_extent m node);
  Alcotest.(check (list int)) "instances_of includes subclasses" [ a; b ]
    (Model.instances_of m node)

let test_abstract_rejected () =
  let m = Model.empty ~name:"m" (mm ()) in
  Alcotest.check_raises "abstract class"
    (Model.Type_error "model m: class Ghostless is abstract") (fun () ->
      ignore (Model.add_object m ~cls:(I.make "Ghostless")))

let test_unknown_class_rejected () =
  let m = Model.empty ~name:"m" (mm ()) in
  (match Model.add_object m ~cls:(I.make "Nope") with
  | exception Model.Type_error _ -> ()
  | _ -> Alcotest.fail "expected Type_error")

let test_attrs () =
  let m = Model.empty ~name:"m" (mm ()) in
  let m, a = Model.add_object m ~cls:node in
  let m = Model.set_attr1 m a label (V.str "hello") in
  Alcotest.(check (option string)) "get_attr1"
    (Some "hello")
    (match Model.get_attr1 m a label with Some (V.Str s) -> Some s | _ -> None);
  (* unset *)
  let m = Model.set_attr m a label [] in
  Alcotest.(check bool) "unset slot" true (Model.get_attr m a label = []);
  (* ill-typed *)
  (match Model.set_attr1 m a label (V.int 3) with
  | exception Model.Type_error _ -> ()
  | _ -> Alcotest.fail "expected type error for int into string slot");
  (* unknown attribute *)
  match Model.set_attr1 m a (I.make "ghost") (V.int 3) with
  | exception Model.Type_error _ -> ()
  | _ -> Alcotest.fail "expected type error for unknown attribute"

let test_inherited_attr () =
  let m = Model.empty ~name:"m" (mm ()) in
  let m, s = Model.add_object m ~cls:special in
  let m = Model.set_attr1 m s label (V.str "sp") in
  let m = Model.set_attr1 m s (I.make "level") (V.int 2) in
  Alcotest.(check int) "both slots set" 2
    (List.length (Model.get_attr m s label) + List.length (Model.get_attr m s (I.make "level")))

let test_refs () =
  let m = Model.empty ~name:"m" (mm ()) in
  let m, a = Model.add_object m ~cls:node in
  let m, b = Model.add_object m ~cls:special in
  let m = Model.add_ref m ~src:a ~ref_:next ~dst:b in
  Alcotest.(check (list int)) "edge added" [ b ] (Model.get_refs m a next);
  Alcotest.(check bool) "has_ref" true (Model.has_ref m ~src:a ~ref_:next ~dst:b);
  (* duplicate add is a no-op *)
  let m = Model.add_ref m ~src:a ~ref_:next ~dst:b in
  Alcotest.(check int) "no duplicate edges" 1 (List.length (Model.get_refs m a next));
  let m = Model.del_ref m ~src:a ~ref_:next ~dst:b in
  Alcotest.(check (list int)) "edge removed" [] (Model.get_refs m a next)

let test_ref_target_typing () =
  (* a reference to Node accepts a Special (subclass) but the model
     layer rejects targets of unrelated classes *)
  let mm2 =
    MM.make_exn ~name:"Z"
      [
        MM.cls "A" ~refs:[ MM.ref_ "r" ~target:"B" ];
        MM.cls "B";
        MM.cls "C";
      ]
  in
  let m = Model.empty ~name:"m" mm2 in
  let m, a = Model.add_object m ~cls:(I.make "A") in
  let m, c = Model.add_object m ~cls:(I.make "C") in
  match Model.add_ref m ~src:a ~ref_:(I.make "r") ~dst:c with
  | exception Model.Type_error _ -> ()
  | _ -> Alcotest.fail "expected type error for non-conforming target"

let test_delete_removes_incoming () =
  let m = Model.empty ~name:"m" (mm ()) in
  let m, a = Model.add_object m ~cls:node in
  let m, b = Model.add_object m ~cls:node in
  let m = Model.add_ref m ~src:a ~ref_:next ~dst:b in
  let m = Model.delete_object m b in
  Alcotest.(check bool) "object gone" false (Model.mem m b);
  Alcotest.(check (list int)) "incoming edge cleaned" [] (Model.get_refs m a next)

let test_stable_ids () =
  let m = Model.empty ~name:"m" (mm ()) in
  let m, a = Model.add_object m ~cls:node in
  let m, b = Model.add_object m ~cls:node in
  let m = Model.delete_object m a in
  let m, c = Model.add_object m ~cls:node in
  Alcotest.(check bool) "deleted ids are not reused" true (c <> a && c <> b);
  Alcotest.(check bool) "b kept its id" true (Model.mem m b)

let test_add_with_id () =
  let m = Model.empty ~name:"m" (mm ()) in
  let m = Model.add_object_with_id m ~id:7 ~cls:node in
  Alcotest.(check bool) "id honoured" true (Model.mem m 7);
  (match Model.add_object_with_id m ~id:7 ~cls:node with
  | exception Model.Type_error _ -> ()
  | _ -> Alcotest.fail "duplicate id must be rejected");
  let m, next_id = Model.add_object m ~cls:node in
  ignore m;
  Alcotest.(check bool) "fresh ids skip past explicit ones" true (next_id > 7)

let test_equal () =
  let build order =
    let m = Model.empty ~name:"m" (mm ()) in
    let m, a = Model.add_object m ~cls:node in
    let m, b = Model.add_object m ~cls:node in
    let m, c = Model.add_object m ~cls:node in
    let edges = if order then [ b; c ] else [ c; b ] in
    List.fold_left (fun m dst -> Model.add_ref m ~src:a ~ref_:next ~dst) m edges
  in
  Alcotest.(check bool) "equality ignores reference order" true
    (Model.equal (build true) (build false))

let test_all_values () =
  let m = Model.empty ~name:"m" (mm ()) in
  let m, a = Model.add_object m ~cls:special in
  let m = Model.set_attr1 m a label (V.str "x") in
  let m = Model.set_attr1 m a (I.make "level") (V.int 5) in
  Alcotest.(check int) "two values" 2 (V.Set.cardinal (Model.all_values m))

let test_pp_parses_back () =
  let m = Model.empty ~name:"m" (mm ()) in
  let m, a = Model.add_object m ~cls:node in
  let m, b = Model.add_object m ~cls:special in
  let m = Model.set_attr1 m a label (V.str "root") in
  let m = Model.set_attr1 m b label (V.str "leaf") in
  let m = Model.set_attr1 m b (I.make "level") (V.int 1) in
  let m = Model.add_ref m ~src:a ~ref_:next ~dst:b in
  let printed = Mdl.Serialize.model_to_string m in
  match Mdl.Serialize.parse_model (mm ()) printed with
  | Ok m' -> Alcotest.(check bool) "round-trip equal" true (Model.equal m m')
  | Error e -> Alcotest.failf "parse failed: %s\n%s" e printed

let suite =
  [
    Alcotest.test_case "add and query" `Quick test_add_and_query;
    Alcotest.test_case "abstract rejected" `Quick test_abstract_rejected;
    Alcotest.test_case "unknown class rejected" `Quick test_unknown_class_rejected;
    Alcotest.test_case "attributes" `Quick test_attrs;
    Alcotest.test_case "inherited attribute slots" `Quick test_inherited_attr;
    Alcotest.test_case "references" `Quick test_refs;
    Alcotest.test_case "reference target typing" `Quick test_ref_target_typing;
    Alcotest.test_case "delete removes incoming edges" `Quick test_delete_removes_incoming;
    Alcotest.test_case "ids stable across deletes" `Quick test_stable_ids;
    Alcotest.test_case "add with explicit id" `Quick test_add_with_id;
    Alcotest.test_case "equality up to edge order" `Quick test_equal;
    Alcotest.test_case "all_values" `Quick test_all_values;
    Alcotest.test_case "pp parses back" `Quick test_pp_parses_back;
  ]
