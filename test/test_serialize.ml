(* Tests for Mdl.Serialize: parsing, error reporting, round-trips. *)

module MM = Mdl.Metamodel
module Model = Mdl.Model
module S = Mdl.Serialize

let mm_src =
  {|
metamodel Shop {
  enum Size { small, medium, large }
  class Item {
    attr sku : string key;
    attr size : Size;
    attr price : int;
    attr tags : string [0..*];
  }
  class Bundle extends Item {
    ref parts : Item [1..*] containment;
  }
}
|}

let test_parse_metamodel () =
  match S.parse_metamodel mm_src with
  | Error e -> Alcotest.failf "parse failed: %s" e
  | Ok mm ->
    Alcotest.(check string) "name" "Shop" (Mdl.Ident.name (MM.name mm));
    Alcotest.(check int) "2 classes" 2 (List.length (MM.classes mm));
    let item = MM.find_class_exn mm (Mdl.Ident.make "Item") in
    Alcotest.(check int) "4 attrs" 4 (List.length item.MM.cls_attrs);
    let sku = MM.find_attribute mm (Mdl.Ident.make "Item") (Mdl.Ident.make "sku") in
    Alcotest.(check bool) "sku is key" true
      (match sku with Some a -> a.MM.attr_key | None -> false);
    let tags = MM.find_attribute mm (Mdl.Ident.make "Item") (Mdl.Ident.make "tags") in
    Alcotest.(check bool) "tags multi-valued" true
      (match tags with Some a -> a.MM.attr_mult = MM.mult_many | None -> false)

let model_src =
  {|
model stock : Shop {
  obj b : Bundle {
    sku = "B1";
    size = large;
    price = 30;
    parts -> i1, i2;
  }
  obj i1 : Item {
    sku = "I1";
    size = small;
    price = 10;
    tags = "red", "sale";
  }
  obj i2 : Item {
    sku = "I2";
    size = medium;
    price = 20;
  }
}
|}

let parse_both () =
  match S.parse_metamodel mm_src with
  | Error e -> Alcotest.failf "metamodel: %s" e
  | Ok mm -> (
    match S.parse_model mm model_src with
    | Error e -> Alcotest.failf "model: %s" e
    | Ok m -> (mm, m))

let test_parse_model () =
  let _, m = parse_both () in
  Alcotest.(check int) "3 objects" 3 (Model.size m);
  let bundles = Model.class_extent m (Mdl.Ident.make "Bundle") in
  Alcotest.(check int) "one bundle" 1 (List.length bundles);
  let b = List.hd bundles in
  Alcotest.(check int) "2 parts" 2
    (List.length (Model.get_refs m b (Mdl.Ident.make "parts")));
  Alcotest.(check int) "multivalued attr" 2
    (List.length
       (Model.get_attr m (List.hd (Model.class_extent m (Mdl.Ident.make "Item")))
          (Mdl.Ident.make "tags")))

let test_enum_values () =
  let _, m = parse_both () in
  let b = List.hd (Model.class_extent m (Mdl.Ident.make "Bundle")) in
  Alcotest.(check bool) "enum literal parsed" true
    (match Model.get_attr1 m b (Mdl.Ident.make "size") with
    | Some (Mdl.Value.Enum e) -> Mdl.Ident.name e = "large"
    | _ -> false)

let test_model_roundtrip () =
  let mm, m = parse_both () in
  let printed = S.model_to_string m in
  match S.parse_model mm printed with
  | Ok m' -> Alcotest.(check bool) "round-trip equal" true (Model.equal m m')
  | Error e -> Alcotest.failf "round-trip: %s\n%s" e printed

let contains ~affix s =
  let n = String.length affix and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = affix || go (i + 1)) in
  go 0

let test_error_position () =
  match S.parse_metamodel "metamodel X {\n  class A {\n    attr ; }\n}" with
  | Ok _ -> Alcotest.fail "expected parse error"
  | Error e ->
    Alcotest.(check bool) "error mentions line 3" true (contains ~affix:"line 3" e)

let test_bad_enum_value () =
  match S.parse_metamodel mm_src with
  | Error e -> Alcotest.failf "metamodel: %s" e
  | Ok mm -> (
    let bad = {| model m : Shop { obj i : Item { sku = "I"; size = gigantic; price = 1; } } |} in
    match S.parse_model mm bad with
    | Ok _ -> Alcotest.fail "expected bad enum literal to fail"
    | Error _ -> ())

let test_unknown_label () =
  match S.parse_metamodel mm_src with
  | Error e -> Alcotest.failf "metamodel: %s" e
  | Ok mm -> (
    let bad = {| model m : Shop { obj b : Bundle { sku = "B"; size = small; price = 1; parts -> ghost; } } |} in
    match S.parse_model mm bad with
    | Ok _ -> Alcotest.fail "expected unknown label to fail"
    | Error _ -> ())

let test_parse_models_multi () =
  match S.parse_metamodels (mm_src ^ "\nmetamodel Other { class O { } }") with
  | Error e -> Alcotest.failf "metamodels: %s" e
  | Ok mms -> (
    Alcotest.(check int) "two metamodels" 2 (List.length mms);
    let src = model_src ^ "\nmodel o : Other { obj x : O { } }" in
    match S.parse_models mms src with
    | Ok models -> Alcotest.(check int) "two models" 2 (List.length models)
    | Error e -> Alcotest.failf "models: %s" e)

let test_comments_ignored () =
  let src = "// leading comment\nmetamodel X { class A { } } // trailing" in
  match S.parse_metamodel src with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "comments should be ignored: %s" e

let suite =
  [
    Alcotest.test_case "parse metamodel" `Quick test_parse_metamodel;
    Alcotest.test_case "parse model" `Quick test_parse_model;
    Alcotest.test_case "enum values" `Quick test_enum_values;
    Alcotest.test_case "model round-trip" `Quick test_model_roundtrip;
    Alcotest.test_case "error positions" `Quick test_error_position;
    Alcotest.test_case "bad enum value" `Quick test_bad_enum_value;
    Alcotest.test_case "unknown ref label" `Quick test_unknown_label;
    Alcotest.test_case "multiple decls" `Quick test_parse_models_multi;
    Alcotest.test_case "comments ignored" `Quick test_comments_ignored;
  ]
