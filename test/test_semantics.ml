(* Tests for Qvtr.Semantics + Qvtr.Check — the paper's core claims:

   - E2 (§2.1): the standard checking semantics cannot express MF
     (it wrongly accepts states violating mandatory ⊆ ⋂ selected);
   - E3 (§2.2): with checking dependencies the compiled semantics
     coincides with the intended set-level relation, exhaustively over
     a small scope;
   - E4 (§2.2): conservativity — attaching the full dependency set
     reproduces the standard semantics exactly;
   - relation invocation (§2.3) in both when and where clauses. *)

module F = Featuremodel.Fm
module G = Featuremodel.Gen
module Sem = Qvtr.Semantics
module Check = Qvtr.Check
module I = Mdl.Ident

let consistent ?mode trans cfs fm =
  (Check.run_exn ?mode trans ~metamodels:F.metamodels ~models:(F.bind ~cfs ~fm))
    .Check.consistent

let test_paper_counterexample () =
  (* empty configurations, FM with a mandatory feature: standard
     semantics bogusly accepts, extended rejects (paper §2.1) *)
  let cfs = [ F.configuration ~name:"cf1" []; F.configuration ~name:"cf2" [] ] in
  let fm = F.feature_model ~name:"fm" [ ("A", true) ] in
  Alcotest.(check bool) "standard accepts (the paper's bug)" true
    (consistent ~mode:Sem.Standard (F.transformation_standard ~k:2) cfs fm);
  Alcotest.(check bool) "extended rejects" false
    (consistent (F.transformation ~k:2) cfs fm);
  Alcotest.(check bool) "intended semantics rejects" false (F.consistent ~cfs ~fm)

let test_one_sided_counterexample () =
  (* a mandatory feature absent from every configuration: all standard
     directional checks are vacuous for it (the empty ranges of §2.1),
     even though the configurations are non-empty *)
  let cfs =
    [ F.configuration ~name:"cf1" [ "B" ]; F.configuration ~name:"cf2" [ "B" ] ]
  in
  let fm = F.feature_model ~name:"fm" [ ("A", true); ("B", true) ] in
  Alcotest.(check bool) "standard accepts" true
    (consistent ~mode:Sem.Standard (F.transformation_standard ~k:2) cfs fm);
  Alcotest.(check bool) "extended rejects (fm -> cf_i fails)" false
    (consistent (F.transformation ~k:2) cfs fm)

(* Exhaustive small-scope comparison over all (cf1, cf2, fm) with
   features drawn from a 2-name pool. *)
let exhaustive_states () =
  let pool = [ "A"; "B" ] in
  let cfs = G.all_cfs pool in
  let fms = G.all_fms pool in
  List.concat_map
    (fun c1 -> List.concat_map (fun c2 -> List.map (fun fm -> (c1, c2, fm)) fms) cfs)
    cfs

let test_extended_matches_oracle_exhaustively () =
  let trans = F.transformation ~k:2 in
  let mismatches =
    List.filter
      (fun (c1, c2, fm) ->
        consistent trans [ c1; c2 ] fm <> F.consistent ~cfs:[ c1; c2 ] ~fm)
      (exhaustive_states ())
  in
  Alcotest.(check int) "no mismatches over 144 states" 0 (List.length mismatches)

let test_conservativity_exhaustively () =
  (* E4: the Standard mode and the Extended mode with full dependency
     sets are the same function, over every state *)
  let std = F.transformation_standard ~k:2 in
  let mismatches =
    List.filter
      (fun (c1, c2, fm) ->
        consistent ~mode:Sem.Standard std [ c1; c2 ] fm
        <> consistent ~mode:Sem.Extended std [ c1; c2 ] fm)
      (exhaustive_states ())
  in
  Alcotest.(check int) "standard = extended-with-full-deps" 0 (List.length mismatches)

let test_standard_incomparable () =
  (* E2, sharpened: over the exhaustive scope the standard semantics is
     INCOMPARABLE to the intended relation — it both accepts states the
     intended relation rejects (the §2.1 vacuous-quantification bug)
     and rejects states the intended relation accepts (its directional
     checks force spurious mutual inclusions). Hence no reading of the
     standard semantics realises MF/OF, which is the paper's point. *)
  let std = F.transformation_standard ~k:2 in
  let ext = F.transformation ~k:2 in
  let states = exhaustive_states () in
  let false_accepts =
    List.exists
      (fun (c1, c2, fm) ->
        consistent ~mode:Sem.Standard std [ c1; c2 ] fm
        && not (consistent ext [ c1; c2 ] fm))
      states
  in
  let false_rejects =
    List.exists
      (fun (c1, c2, fm) ->
        (not (consistent ~mode:Sem.Standard std [ c1; c2 ] fm))
        && consistent ext [ c1; c2 ] fm)
      states
  in
  Alcotest.(check bool) "standard accepts some intended-inconsistent state" true
    false_accepts;
  Alcotest.(check bool) "standard rejects some intended-consistent state" true
    false_rejects

let test_narrowing_equivalence () =
  (* the pattern-driven quantifier narrowing is semantics-preserving:
     narrowed and full compilations agree on every exhaustive state *)
  let trans = F.transformation ~k:2 in
  match Qvtr.Typecheck.check trans ~metamodels:F.metamodels with
  | Error _ -> Alcotest.fail "typecheck"
  | Ok info ->
    let mismatches =
      List.filter
        (fun (c1, c2, fm) ->
          match
            Qvtr.Encode.create ~transformation:trans ~metamodels:F.metamodels
              ~models:(F.bind ~cfs:[ c1; c2 ] ~fm) ~slack_objects:0 ()
          with
          | Error _ -> true
          | Ok enc ->
            let inst = Qvtr.Encode.check_instance enc in
            let check narrow =
              let sem = Sem.create ~narrow enc info in
              Relog.Eval.holds inst (Sem.consistency_formula sem)
            in
            check true <> check false)
        (exhaustive_states ())
    in
    Alcotest.(check int) "narrowed = full on all states" 0 (List.length mismatches)

let test_k3 () =
  (* three configurations: the intersection is over all of them *)
  let trans = F.transformation ~k:3 in
  let fm = F.feature_model ~name:"fm" [ ("A", true); ("B", false) ] in
  let c a = F.configuration ~name:"c" a in
  Alcotest.(check bool) "consistent k=3" true
    (consistent trans [ c [ "A"; "B" ]; c [ "A" ]; c [ "A"; "B" ] ] fm);
  Alcotest.(check bool) "B in all three -> must be mandatory" false
    (consistent trans [ c [ "A"; "B" ]; c [ "A"; "B" ]; c [ "A"; "B" ] ] fm);
  Alcotest.(check bool) "A missing in one -> mandatory violated" false
    (consistent trans [ c [ "A" ]; c [] ; c [ "A" ] ] fm)

let test_where_call_inlining () =
  (* ClassTable calling AttrColumn (see examples/class_db_sync): the
     callee constrains attribute/column correspondence per pair *)
  let mms_src =
    {|
metamodel UML { class Class { attr name : string key; ref attrs : Attribute [0..*] containment; } class Attribute { attr name : string; } }
metamodel RDB { class Table { attr name : string key; ref cols : Column [0..*] containment; } class Column { attr name : string; } }
|}
  in
  let mms =
    match Mdl.Serialize.parse_metamodels mms_src with
    | Ok l -> List.map (fun mm -> (Mdl.Metamodel.name mm, mm)) l
    | Error e -> Alcotest.failf "metamodels: %s" e
  in
  let trans =
    Qvtr.Parser.parse_exn
      {|
transformation CT(uml : UML, rdb : RDB) {
  top relation ClassTable {
    n : String;
    domain uml c : Class { name = n };
    domain rdb t : Table { name = n };
    where { AttrColumn(c, t); }
    dependencies { uml -> rdb; rdb -> uml; }
  }
  relation AttrColumn {
    an : String;
    domain uml c : Class { attrs = a : Attribute { name = an } };
    domain rdb t : Table { cols = col : Column { name = an } };
    dependencies { uml -> rdb; rdb -> uml; }
  }
}
|}
  in
  let uml classes =
    let mm = List.assoc (I.make "UML") mms in
    List.fold_left
      (fun m (cn, ats) ->
        let m, cid = Mdl.Model.add_object m ~cls:(I.make "Class") in
        let m = Mdl.Model.set_attr1 m cid (I.make "name") (Mdl.Value.Str cn) in
        List.fold_left
          (fun m an ->
            let m, aid = Mdl.Model.add_object m ~cls:(I.make "Attribute") in
            let m = Mdl.Model.set_attr1 m aid (I.make "name") (Mdl.Value.Str an) in
            Mdl.Model.add_ref m ~src:cid ~ref_:(I.make "attrs") ~dst:aid)
          m ats)
      (Mdl.Model.empty ~name:"uml" mm)
      classes
  in
  let rdb tables =
    let mm = List.assoc (I.make "RDB") mms in
    List.fold_left
      (fun m (tn, cs) ->
        let m, tid = Mdl.Model.add_object m ~cls:(I.make "Table") in
        let m = Mdl.Model.set_attr1 m tid (I.make "name") (Mdl.Value.Str tn) in
        List.fold_left
          (fun m cn ->
            let m, cid = Mdl.Model.add_object m ~cls:(I.make "Column") in
            let m = Mdl.Model.set_attr1 m cid (I.make "name") (Mdl.Value.Str cn) in
            Mdl.Model.add_ref m ~src:tid ~ref_:(I.make "cols") ~dst:cid)
          m cs)
      (Mdl.Model.empty ~name:"rdb" mm)
      tables
  in
  let check u r =
    (Check.run_exn trans ~metamodels:mms
       ~models:[ (I.make "uml", uml u); (I.make "rdb", rdb r) ])
      .Check.consistent
  in
  Alcotest.(check bool) "matching attrs/cols consistent" true
    (check [ ("P", [ "x"; "y" ]) ] [ ("P", [ "x"; "y" ]) ]);
  Alcotest.(check bool) "missing column detected through the call" false
    (check [ ("P", [ "x"; "y" ]) ] [ ("P", [ "x" ]) ]);
  Alcotest.(check bool) "extra column detected in reverse direction" false
    (check [ ("P", [ "x" ]) ] [ ("P", [ "x"; "z" ]) ]);
  Alcotest.(check bool) "missing table detected" false
    (check [ ("P", [ "x" ]); ("Q", []) ] [ ("P", [ "x" ]) ])

let test_when_call () =
  (* a when-call acts as a precondition over source models only *)
  let trans =
    Qvtr.Parser.parse_exn
      {|
transformation T(cf1 : CF, cf2 : CF, fm : FM) {
  top relation MandatoryPair {
    n : String;
    domain cf1 s1 : Feature { name = n };
    domain cf2 s2 : Feature { name = n };
    domain fm f : Feature { name = n, mandatory = true };
    when { SameName(s1, s2); }
    dependencies { cf1 cf2 -> fm; }
  }
  relation SameName {
    m : String;
    domain cf1 p : Feature { name = m };
    domain cf2 q : Feature { name = m };
    dependencies { cf1 -> cf2; cf2 -> cf1; }
  }
}
|}
  in
  (* the when-call requires the two configurations to agree entirely;
     if they do not, the relation is vacuous and anything passes *)
  let c a = F.configuration ~name:"c" a in
  let fm_a = F.feature_model ~name:"fm" [ ("A", true) ] in
  let fm_none = F.feature_model ~name:"fm" [ ("A", false) ] in
  let run cfs fm =
    (Check.run_exn trans ~metamodels:F.metamodels ~models:(F.bind ~cfs ~fm))
      .Check.consistent
  in
  Alcotest.(check bool) "agreeing configs, mandatory present" true
    (run [ c [ "A" ]; c [ "A" ] ] fm_a);
  Alcotest.(check bool) "agreeing configs, mandatory missing" false
    (run [ c [ "A" ]; c [ "A" ] ] fm_none);
  Alcotest.(check bool) "disagreeing configs vacuously pass" true
    (run [ c [ "A" ]; c [ "B" ] ] fm_none)

let test_directional_consistency_split () =
  let trans = F.transformation ~k:2 in
  match Qvtr.Typecheck.check trans ~metamodels:F.metamodels with
  | Error _ -> Alcotest.fail "typecheck"
  | Ok info -> (
    let cfs = [ F.configuration ~name:"cf1" [ "A" ]; F.configuration ~name:"cf2" [ "A" ] ] in
    let fm = F.feature_model ~name:"fm" [ ("A", true); ("N", true) ] in
    match
      Qvtr.Encode.create ~transformation:trans ~metamodels:F.metamodels
        ~models:(F.bind ~cfs ~fm) ~slack_objects:0 ()
    with
    | Error e -> Alcotest.fail e
    | Ok enc ->
      let sem = Sem.create enc info in
      let inst = Qvtr.Encode.check_instance enc in
      (* the violation is only in the fm -> cf directions *)
      let towards target =
        Relog.Eval.holds inst (Sem.directional_consistency sem ~target:(I.make target))
      in
      Alcotest.(check bool) "fm direction holds" true (towards "fm");
      Alcotest.(check bool) "cf1 direction violated" false (towards "cf1");
      Alcotest.(check bool) "cf2 direction violated" false (towards "cf2"))

let suite =
  [
    Alcotest.test_case "paper counterexample (E2)" `Quick test_paper_counterexample;
    Alcotest.test_case "one-sided counterexample (E2)" `Quick test_one_sided_counterexample;
    Alcotest.test_case "extended = oracle, exhaustively (E3)" `Slow
      test_extended_matches_oracle_exhaustively;
    Alcotest.test_case "conservativity (E4)" `Slow test_conservativity_exhaustively;
    Alcotest.test_case "standard incomparable to intended (E2)" `Slow test_standard_incomparable;
    Alcotest.test_case "narrowing equivalence" `Slow test_narrowing_equivalence;
    Alcotest.test_case "k = 3" `Quick test_k3;
    Alcotest.test_case "where-call inlining (2.3)" `Quick test_where_call_inlining;
    Alcotest.test_case "when-call precondition (2.3)" `Quick test_when_call;
    Alcotest.test_case "directional consistency split" `Quick test_directional_consistency_split;
  ]
