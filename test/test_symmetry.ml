(* Tests for the bounds-level symmetry analysis (Relog.Symmetry):
   orbit soundness (every detected orbit consists of bounds
   automorphisms), lex-leader SBP completeness on a fully symmetric
   space, and end-to-end invariance of the repair engine — the menu
   and the least-change distances never change when SBPs are on, only
   the search effort does. *)

module I = Mdl.Ident
module R = Relog.Rel
module TS = R.Tupleset
module A = Relog.Ast
module B = Relog.Bounds
module F = Relog.Finder
module Sym = Relog.Symmetry
module Fm = Featuremodel.Fm
module G = Featuremodel.Gen
module Eng = Echo.Engine

let universe n = R.Universe.make (List.init n (fun i -> I.make (Printf.sprintf "a%d" i)))

(* ----------------------------------------------------------------- *)
(* Orbit detection                                                     *)

let test_orbits_deterministic () =
  (* S ⊆ univ(4) with a2 pinned into the lower bound: a2 is
     distinguishable, the other three atoms form one orbit *)
  let u = universe 4 in
  let b =
    B.bound (B.make u) (I.make "S") ~lower:(TS.of_list [ [| 2 |] ])
      ~upper:(TS.univ u)
  in
  let orbits = Sym.orbits b in
  let nontrivial = List.filter (fun o -> List.length o > 1) orbits in
  Alcotest.(check (list (list int))) "one orbit of the three free atoms"
    [ [ 0; 1; 3 ] ] nontrivial

let test_orbits_fixed_atoms_pinned () =
  let u = universe 4 in
  let b = B.bound (B.make u) (I.make "S") ~lower:TS.empty ~upper:(TS.univ u) in
  let fixed = I.Set.singleton (I.make "a1") in
  let orbits = Sym.orbits ~fixed b in
  List.iter
    (fun o -> if List.mem 1 o then Alcotest.(check int) "fixed atom alone" 1 (List.length o))
    orbits;
  Alcotest.(check bool) "the rest still permute" true
    (List.exists (fun o -> List.length o = 3) orbits)

let test_orbits_respect_constraints () =
  (* without respect, all atoms of the unconstrained S permute; a
     respect tupleset naming a2 splits it off *)
  let u = universe 3 in
  let b = B.bound (B.make u) (I.make "S") ~lower:TS.empty ~upper:(TS.univ u) in
  Alcotest.(check bool) "all three permute" true
    (List.exists (fun o -> List.length o = 3) (Sym.orbits b));
  let orbits = Sym.orbits ~respect:[ TS.of_list [ [| 2 |] ] ] b in
  List.iter
    (fun o ->
      if List.mem 2 o then Alcotest.(check int) "respected atom alone" 1 (List.length o))
    orbits

(* Random bounds over a small universe: a few relations of arity 1-2
   with random lower ⊆ upper tuplesets. *)
let random_bounds rng n =
  let u = universe n in
  let n_rels = 1 + Random.State.int rng 3 in
  let b = ref (B.make u) in
  for r = 0 to n_rels - 1 do
    let arity = 1 + Random.State.int rng 2 in
    let all =
      if arity = 1 then TS.univ u else TS.product (TS.univ u) (TS.univ u)
    in
    let pick p ts =
      TS.fold (fun t acc -> if Random.State.float rng 1.0 < p then t :: acc else acc) ts []
    in
    let upper = TS.of_list (pick 0.7 all) in
    let lower = TS.of_list (pick 0.2 upper) in
    b := B.bound !b (I.make (Printf.sprintf "R%d" r)) ~lower ~upper
  done;
  (u, !b)

let test_orbit_permutations_are_automorphisms =
  QCheck.Test.make ~name:"every orbit permutation is a bounds automorphism"
    ~count:100 QCheck.small_int (fun seed ->
      let rng = Random.State.make [| 17; seed |] in
      let n = 3 + Random.State.int rng 4 in
      let _, b = random_bounds rng n in
      let orbits = Sym.orbits b in
      List.for_all
        (fun orbit ->
          match orbit with
          | [] | [ _ ] -> true
          | atoms ->
            (* adjacent transpositions (the SBP generators) *)
            let rec pairs = function
              | x :: y :: rest ->
                let swap z = if z = x then y else if z = y then x else z in
                Sym.is_automorphism b swap && pairs (y :: rest)
              | _ -> true
            in
            (* plus a full rotation of the orbit: orbits carry the
               whole symmetric group, not just the generators *)
            let arr = Array.of_list atoms in
            let m = Array.length arr in
            let rot x =
              let rec find i = if i = m then x
                else if arr.(i) = x then arr.((i + 1) mod m)
                else find (i + 1)
              in
              find 0
            in
            pairs atoms && Sym.is_automorphism b rot)
        orbits)

(* ----------------------------------------------------------------- *)
(* Lex-leader SBPs at the finder level                                 *)

let test_sbp_canonical_enumeration () =
  (* S ⊆ univ(4), no constraints: 16 instances in 5 isomorphism
     classes (one per cardinality). Chained lex-leader SBPs over the
     single 4-atom orbit are complete for unary relations: exactly one
     canonical instance per class survives. *)
  let u = universe 4 in
  let b = B.bound (B.make u) (I.make "S") ~lower:TS.empty ~upper:(TS.univ u) in
  let plain = F.prepare b [] in
  Alcotest.(check int) "16 instances without SBPs" 16 (F.count plain);
  let fd = F.prepare b [] in
  let n_clauses = F.add_symmetry fd in
  Alcotest.(check bool) "SBP clauses emitted" true (n_clauses > 0);
  Alcotest.(check int) "one survivor per isomorphism class" 5 (F.count fd)

let test_sbp_respects_fixed () =
  (* fixing every atom leaves no orbits: SBPs must be a no-op *)
  let u = universe 4 in
  let b = B.bound (B.make u) (I.make "S") ~lower:TS.empty ~upper:(TS.univ u) in
  let fd = F.prepare b [] in
  let fixed =
    List.fold_left (fun acc a -> I.Set.add a acc) I.Set.empty (R.Universe.atoms u)
  in
  let n = F.add_symmetry ~fixed fd in
  Alcotest.(check int) "no SBP clauses for a fully fixed universe" 0 n;
  Alcotest.(check int) "enumeration unchanged" 16 (F.count fd)

let test_sbp_formula_atoms_fixed () =
  (* a formula naming a1 pins it: instances {a1} and e.g. {a0} are no
     longer isomorphic, and satisfiability of atom-specific formulas
     is preserved under SBPs *)
  let u = universe 3 in
  let b = B.bound (B.make u) (I.make "S") ~lower:TS.empty ~upper:(TS.univ u) in
  let f = A.in_ (A.atom "a1") (A.rel "S") in
  let fd = F.prepare b [ f ] in
  ignore (F.add_symmetry fd);
  (match F.solve fd with
  | F.Sat inst ->
    Alcotest.(check bool) "a1 in S" true
      (TS.mem [| 1 |] (Relog.Instance.get inst (I.make "S")))
  | F.Unsat -> Alcotest.fail "must stay satisfiable under SBPs");
  (* a1 fixed, a0/a2 permute: classes are {a1}+0,1,2 of the others *)
  Alcotest.(check int) "3 classes with a1 pinned in" 3 (F.count fd)

let test_sbp_preserves_satisfiability =
  QCheck.Test.make ~name:"SBPs never change satisfiability" ~count:80
    QCheck.small_int (fun seed ->
      let rng = Random.State.make [| 43; seed |] in
      let n = 3 + Random.State.int rng 3 in
      let _, b = random_bounds rng n in
      let pool =
        [
          A.Some_ (A.rel "R0");
          A.Lone (A.rel "R0");
          A.No (A.Inter (A.rel "R0", A.Iden));
          A.in_ (A.atom "a0") (A.Join (A.rel "R0", A.Univ));
          A.forall [ ("x", A.Univ) ] (A.Lone (A.dot (A.var "x") (A.rel "R0")));
        ]
      in
      let formulas =
        List.filteri (fun i _ -> Random.State.bool rng || i = 0) pool
      in
      match F.prepare b formulas with
      | exception Relog.Translate.Unsupported _ -> true
      | plain ->
        let fd = F.prepare b formulas in
        ignore (F.add_symmetry fd);
        let sat_plain = F.solve plain <> F.Unsat in
        let sat_sbp = F.solve fd <> F.Unsat in
        sat_plain = sat_sbp)

(* ----------------------------------------------------------------- *)
(* End-to-end: the repair engine under SBPs                            *)

let metamodels = Fm.metamodels

let distance_of = function
  | Ok (Eng.Enforced r) -> Some r.Eng.relational_distance
  | Ok Eng.Already_consistent -> Some 0
  | Ok Eng.Cannot_restore -> None
  | Error e -> Alcotest.fail e

let test_sbp_preserves_least_change =
  (* random perturbed states: the minimal relational distance (the
     least-change metric both backends minimize) reported with and
     without SBPs is identical, and so is feasibility. The edit
     distance of the single returned witness is NOT compared: several
     equally-minimal repairs may exist and [enforce] returns whichever
     the solver finds first — [run_all] is the canonical menu. *)
  QCheck.Test.make ~name:"SBPs never change the least-change distance" ~count:25
    QCheck.small_int (fun seed ->
      let trans = Fm.transformation ~k:2 in
      let rng = G.rng (7000 + seed) in
      let cfs, fm = G.consistent_state rng ~k:2 ~n_features:3 in
      match G.random_perturbation rng (cfs, fm) with
      | None -> true
      | Some p ->
        let cfs, fm = G.apply_perturbation (cfs, fm) p in
        let run sbp targets =
          distance_of
            (Eng.enforce ~sbp trans ~metamodels ~models:(Fm.bind ~cfs ~fm)
               ~targets:(Echo.Target.of_list targets))
        in
        List.for_all
          (fun targets -> run true targets = run false targets)
          [ [ "cf2" ]; [ "cf1"; "cf2" ]; [ "fm"; "cf2" ] ])

(* A deliberately symmetric workload: an empty configuration repaired
   against mandatory features, with more slack objects than needed —
   the created objects can land on any of the slack atoms, and which
   feature lands on which atom is a pure symmetry. Without SBPs the
   legacy chain only orders slack *usage*, so all assignments of
   features to the used atoms survive as distinct menu entries. *)
let symmetric_workload ?(slack = 4) ?(features = 3) ?split_after ~sbp ~jobs () =
  let trans = Fm.transformation ~k:1 in
  let cfs = [ Fm.configuration ~name:"cf1" [] ] in
  let fm =
    Fm.feature_model ~name:"fm"
      (List.init features (fun i -> (Printf.sprintf "F%d" i, true)))
  in
  Eng.enforce_all ~sbp ~jobs ?split_after ~limit:32 ~slack_objects:slack trans
    ~metamodels
    ~models:(Fm.bind ~cfs ~fm)
    ~targets:(Echo.Target.single "cf1")

(* Set-semantic menu fingerprint: the sorted distinct distance pairs.
   SBPs may shrink the menu (isomorphic variants collapse) but never
   change which distances are reachable. *)
let fingerprint outcomes =
  List.sort_uniq compare
    (List.filter_map
       (function
         | Eng.Enforced r -> Some (r.Eng.relational_distance, r.Eng.edit_distance)
         | _ -> None)
       outcomes)

let dedup_discards = Obs.Metrics.counter "echo.repair.dedup_discards"

let test_menu_isomorphic_and_search_drops () =
  (* satellite property c: with SBPs on the menu collapses to one
     canonical repair per isomorphism class (6 = 3! variants without),
     the reachable distances are unchanged, the search does strictly
     fewer solves, and dedup never discards MORE than without SBPs *)
  let run sbp =
    let before = Obs.Metrics.counter_value dedup_discards in
    let solves0 = (Sat.Solver.global_stats ()).Sat.Solver.solves in
    match symmetric_workload ~sbp ~jobs:1 () with
    | Error e -> Alcotest.fail e
    | Ok outcomes ->
      ( fingerprint outcomes,
        List.length outcomes,
        Obs.Metrics.counter_value dedup_discards - before,
        (Sat.Solver.global_stats ()).Sat.Solver.solves - solves0 )
  in
  let fp_on, menu_on, discards_on, solves_on = run true in
  let fp_off, menu_off, discards_off, solves_off = run false in
  Alcotest.(check (list (pair int int)))
    "same repair menu modulo isomorphism" fp_off fp_on;
  Alcotest.(check bool)
    (Printf.sprintf "isomorphic variants collapse (%d on vs %d off)" menu_on
       menu_off)
    true (menu_on < menu_off);
  Alcotest.(check bool)
    (Printf.sprintf "fewer solves with SBPs on (%d on vs %d off)" solves_on
       solves_off)
    true (solves_on < solves_off);
  Alcotest.(check bool)
    (Printf.sprintf "dedup discards never grow (%d on vs %d off)" discards_on
       discards_off)
    true
    (discards_on <= discards_off)

(* Pretend the box has n cores so the parallel schedule is genuinely
   concurrent even on 1-core CI runners (same idiom as
   test_parallel.ml). *)
let with_workers n f =
  let prev = Sys.getenv_opt "MDQVTR_WORKERS" in
  Unix.putenv "MDQVTR_WORKERS" (string_of_int n);
  Fun.protect
    ~finally:(fun () ->
      Unix.putenv "MDQVTR_WORKERS" (Option.value prev ~default:""))
    f

let test_jobs_invariance_under_sbp () =
  (* Repair.run_all is documented jobs-invariant; that must survive
     SBPs (the guard assumption rides along into cloned probes and
     sharded cubes). split_after:0 forces aggressive cube splitting,
     the schedule most likely to expose a divergence. *)
  with_workers 4 @@ fun () ->
  let outcome_key = function
    | Eng.Enforced r ->
      `E (r.Eng.relational_distance, r.Eng.edit_distance,
          List.map
            (fun (p, m) -> (I.name p, Format.asprintf "%a" Mdl.Model.pp m))
            r.Eng.repaired)
    | Eng.Already_consistent -> `C
    | Eng.Cannot_restore -> `N
  in
  let run jobs =
    let work sbp =
      match symmetric_workload ~sbp ~jobs ~split_after:0.0 () with
      | Error e -> Alcotest.fail e
      | Ok outcomes -> List.map outcome_key outcomes
    in
    (work true, work false)
  in
  Alcotest.(check bool) "jobs=1 and jobs=4 menus identical" true (run 1 = run 4)

let suite =
  [
    Alcotest.test_case "orbits: deterministic split" `Quick test_orbits_deterministic;
    Alcotest.test_case "orbits: fixed atoms pinned" `Quick test_orbits_fixed_atoms_pinned;
    Alcotest.test_case "orbits: respect constraints" `Quick test_orbits_respect_constraints;
    QCheck_alcotest.to_alcotest test_orbit_permutations_are_automorphisms;
    Alcotest.test_case "SBP canonical enumeration" `Quick test_sbp_canonical_enumeration;
    Alcotest.test_case "SBP no-op when fully fixed" `Quick test_sbp_respects_fixed;
    Alcotest.test_case "SBP fixes formula atoms" `Quick test_sbp_formula_atoms_fixed;
    QCheck_alcotest.to_alcotest test_sbp_preserves_satisfiability;
    QCheck_alcotest.to_alcotest test_sbp_preserves_least_change;
    Alcotest.test_case "menu isomorphic, search drops" `Quick
      test_menu_isomorphic_and_search_drops;
    Alcotest.test_case "jobs invariance under SBPs" `Quick
      test_jobs_invariance_under_sbp;
  ]
