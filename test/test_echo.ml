(* Tests for the enforcement engine (paper §3): transformation shapes,
   least-change minimality (cross-checked against exhaustive search),
   backend agreement, weighted aggregation, and Cannot_restore. *)

module F = Featuremodel.Fm
module G = Featuremodel.Gen
module Eng = Echo.Engine
module I = Mdl.Ident

let metamodels = F.metamodels

let enforce ?backend ?model_weights trans cfs fm targets =
  Eng.enforce ?backend ?model_weights trans ~metamodels ~models:(F.bind ~cfs ~fm)
    ~targets:(Echo.Target.of_list targets)

let test_target_validation () =
  let params = [ I.make "cf1"; I.make "fm" ] in
  Alcotest.(check bool) "ok" true
    (Result.is_ok (Echo.Target.validate ~params (Echo.Target.single "cf1")));
  Alcotest.(check bool) "empty rejected" true
    (Result.is_error (Echo.Target.validate ~params (Echo.Target.of_list [])));
  Alcotest.(check bool) "unknown rejected" true
    (Result.is_error (Echo.Target.validate ~params (Echo.Target.single "zz")));
  let ab = Echo.Target.all_but ~params "cf1" in
  Alcotest.(check int) "all_but" 1 (I.Set.cardinal ab);
  Alcotest.(check bool) "all_but excludes" false (I.Set.mem (I.make "cf1") ab)

let test_already_consistent () =
  let trans = F.transformation ~k:2 in
  let cfs = [ F.configuration ~name:"cf1" [ "A" ]; F.configuration ~name:"cf2" [ "A" ] ] in
  let fm = F.feature_model ~name:"fm" [ ("A", true) ] in
  match enforce trans cfs fm [ "fm" ] with
  | Ok Eng.Already_consistent -> ()
  | Ok o -> Alcotest.failf "expected Already_consistent, got %s" (Format.asprintf "%a" Eng.pp_outcome o)
  | Error e -> Alcotest.fail e

let test_repair_restores_consistency () =
  let trans = F.transformation ~k:2 in
  List.iter
    (fun (s : Featuremodel.Scenarios.t) ->
      List.iter
        (fun targets ->
          match
            enforce trans s.Featuremodel.Scenarios.cfs s.Featuremodel.Scenarios.fm targets
          with
          | Ok (Eng.Enforced r) ->
            let report =
              Qvtr.Check.run_exn trans ~metamodels ~models:r.Eng.repaired
            in
            if not report.Qvtr.Check.consistent then
              Alcotest.failf "%s / %s: repaired models inconsistent"
                s.Featuremodel.Scenarios.s_name (String.concat "," targets)
          | Ok o ->
            Alcotest.failf "%s / %s: expected repair, got %s"
              s.Featuremodel.Scenarios.s_name (String.concat "," targets)
              (Format.asprintf "%a" Eng.pp_outcome o)
          | Error e -> Alcotest.fail e)
        s.Featuremodel.Scenarios.restorable)
    Featuremodel.Scenarios.all

let test_cannot_restore () =
  let trans = F.transformation ~k:2 in
  List.iter
    (fun (s : Featuremodel.Scenarios.t) ->
      List.iter
        (fun targets ->
          match
            enforce trans s.Featuremodel.Scenarios.cfs s.Featuremodel.Scenarios.fm targets
          with
          | Ok Eng.Cannot_restore -> ()
          | Ok o ->
            Alcotest.failf "%s / %s: expected Cannot_restore, got %s"
              s.Featuremodel.Scenarios.s_name (String.concat "," targets)
              (Format.asprintf "%a" Eng.pp_outcome o)
          | Error e -> Alcotest.fail e)
        s.Featuremodel.Scenarios.not_restorable)
    Featuremodel.Scenarios.all

let test_backends_agree_on_optimum () =
  let trans = F.transformation ~k:2 in
  List.iter
    (fun (s : Featuremodel.Scenarios.t) ->
      List.iter
        (fun targets ->
          let run backend =
            match
              enforce ~backend trans s.Featuremodel.Scenarios.cfs
                s.Featuremodel.Scenarios.fm targets
            with
            | Ok (Eng.Enforced r) -> Some r.Eng.relational_distance
            | Ok Eng.Cannot_restore -> None
            | Ok Eng.Already_consistent -> Some 0
            | Error e -> Alcotest.fail e
          in
          let it = run Eng.Iterative and mx = run Eng.Maxsat in
          if it <> mx then
            Alcotest.failf "%s / %s: iterative %s vs maxsat %s"
              s.Featuremodel.Scenarios.s_name (String.concat "," targets)
              (match it with Some d -> string_of_int d | None -> "-")
              (match mx with Some d -> string_of_int d | None -> "-"))
        (s.Featuremodel.Scenarios.restorable @ s.Featuremodel.Scenarios.not_restorable))
    Featuremodel.Scenarios.all

(* Exhaustive minimality oracle for single-target CF repairs over a
   bounded name pool: enumerate all configurations over the pool and
   find the minimal edit distance among consistent ones. *)
let minimal_cf_repair_distance cfs fm ~cf_index ~pool =
  let candidates = G.all_subsets pool in
  let best = ref None in
  List.iter
    (fun selection ->
      let cf' = F.configuration ~name:(Printf.sprintf "cf%d" (cf_index + 1)) selection in
      let cfs' = List.mapi (fun i c -> if i = cf_index then cf' else c) cfs in
      if F.consistent ~cfs:cfs' ~fm then begin
        (* relational distance of a CF change: 2 per feature added or
           removed (extent tuple + name tuple) *)
        let module SS = Set.Make (String) in
        let before = SS.of_list (F.cf_features (List.nth cfs cf_index)) in
        let after = SS.of_list selection in
        let d = 2 * SS.cardinal (SS.union (SS.diff before after) (SS.diff after before)) in
        match !best with
        | None -> best := Some d
        | Some b -> if d < b then best := Some d
      end)
    candidates;
  !best

let test_minimality_vs_exhaustive () =
  let trans = F.transformation ~k:2 in
  let pool = G.feature_names 3 in
  let rng = G.rng 7 in
  let tried = ref 0 in
  (* random inconsistent states; repair cf2 and compare against the
     exhaustive optimum *)
  for _ = 1 to 12 do
    let cfs, fm = G.consistent_state rng ~k:2 ~n_features:3 in
    match G.random_perturbation rng (cfs, fm) with
    | None -> ()
    | Some p ->
      let cfs, fm = G.apply_perturbation (cfs, fm) p in
      if not (F.consistent ~cfs ~fm) then begin
        let oracle = minimal_cf_repair_distance cfs fm ~cf_index:1 ~pool:("X1" :: pool) in
        let got =
          match enforce trans cfs fm [ "cf2" ] with
          | Ok (Eng.Enforced r) -> Some r.Eng.relational_distance
          | Ok Eng.Cannot_restore -> None
          | Ok Eng.Already_consistent -> Some 0
          | Error e -> Alcotest.fail e
        in
        incr tried;
        (* the engine may use values outside the pool; oracle None
           means the engine must also fail (or need fresh features the
           oracle pool lacks) *)
        match (oracle, got) with
        | Some o, Some g ->
          if g <> o then
            Alcotest.failf "minimality mismatch: engine %d vs oracle %d (state %s / %s)"
              g o
              (String.concat "+" (List.map (fun c -> String.concat "," (F.cf_features c)) cfs))
              (String.concat ","
                 (List.map (fun (n, m) -> if m then n ^ "!" else n) (F.fm_features fm)))
        | None, None -> ()
        | None, Some _ | Some _, None ->
          (* pool mismatch is possible only when the perturbation
             introduced a fresh feature name (X1 covered); flag it *)
          Alcotest.failf "oracle/engine feasibility mismatch"
      end
  done;
  Alcotest.(check bool) "exercised at least one state" true (!tried > 0)

let test_weighted_repair_changes_optimum () =
  (* renamed-feature scenario with fm prioritised: the optimum avoids
     touching fm when it is expensive (see examples/coevolution) *)
  let trans = F.transformation ~k:2 in
  let cfs =
    [ F.configuration ~name:"cf1" [ "A2" ]; F.configuration ~name:"cf2" [ "A" ] ]
  in
  let fm = F.feature_model ~name:"fm" [ ("A", true) ] in
  let unweighted =
    match enforce trans cfs fm [ "fm"; "cf2" ] with
    | Ok (Eng.Enforced r) -> r.Eng.relational_distance
    | _ -> Alcotest.fail "expected repair"
  in
  let weighted =
    match
      enforce ~model_weights:[ (I.make "fm", 10) ] trans cfs fm [ "fm"; "cf2" ]
    with
    | Ok (Eng.Enforced r) -> r.Eng.relational_distance
    | _ -> Alcotest.fail "expected repair"
  in
  Alcotest.(check bool) "weighting increases the weighted optimum" true
    (weighted > unweighted)

let test_object_creation_via_slack () =
  (* repairing an empty configuration against a mandatory feature
     requires creating objects *)
  let trans = F.transformation ~k:1 in
  let cfs = [ F.configuration ~name:"cf1" [] ] in
  let fm = F.feature_model ~name:"fm" [ ("A", true); ("B", true) ] in
  match enforce trans cfs fm [ "cf1" ] with
  | Ok (Eng.Enforced r) ->
    let cf = List.assoc (I.make "cf1") r.Eng.repaired in
    Alcotest.(check (list string)) "both features created" [ "A"; "B" ] (F.cf_features cf)
  | Ok o -> Alcotest.failf "expected repair, got %s" (Format.asprintf "%a" Eng.pp_outcome o)
  | Error e -> Alcotest.fail e

let test_slack_exhaustion () =
  (* with slack 1, creating two objects is impossible *)
  let trans = F.transformation ~k:1 in
  let cfs = [ F.configuration ~name:"cf1" [] ] in
  let fm = F.feature_model ~name:"fm" [ ("A", true); ("B", true) ] in
  match
    Eng.enforce ~slack_objects:1 trans ~metamodels ~models:(F.bind ~cfs ~fm)
      ~targets:(Echo.Target.single "cf1")
  with
  | Ok Eng.Cannot_restore -> ()
  | Ok o -> Alcotest.failf "expected Cannot_restore, got %s" (Format.asprintf "%a" Eng.pp_outcome o)
  | Error e -> Alcotest.fail e

let test_repaired_conform () =
  let trans = F.transformation ~k:2 in
  let s = Featuremodel.Scenarios.new_mandatory_feature in
  match enforce trans s.Featuremodel.Scenarios.cfs s.Featuremodel.Scenarios.fm [ "cf1"; "cf2" ] with
  | Ok (Eng.Enforced r) ->
    List.iter
      (fun (p, m) ->
        if not (Mdl.Conformance.conforms m) then
          Alcotest.failf "repaired %s does not conform" (I.name p))
      r.Eng.repaired
  | _ -> Alcotest.fail "expected repair"

let suite =
  [
    Alcotest.test_case "target validation" `Quick test_target_validation;
    Alcotest.test_case "already consistent" `Quick test_already_consistent;
    Alcotest.test_case "repairs restore consistency (E6)" `Slow test_repair_restores_consistency;
    Alcotest.test_case "cannot-restore cases (E6)" `Quick test_cannot_restore;
    Alcotest.test_case "backends agree (E7)" `Slow test_backends_agree_on_optimum;
    Alcotest.test_case "minimality vs exhaustive (E7)" `Slow test_minimality_vs_exhaustive;
    Alcotest.test_case "weighted repair" `Quick test_weighted_repair_changes_optimum;
    Alcotest.test_case "object creation via slack" `Quick test_object_creation_via_slack;
    Alcotest.test_case "slack exhaustion" `Quick test_slack_exhaustion;
    Alcotest.test_case "repaired models conform" `Quick test_repaired_conform;
  ]

let test_enforce_all_agrees_with_enforce () =
  (* the enumerated repairs are at exactly the single-repair optimum *)
  let trans = F.transformation ~k:2 in
  List.iter
    (fun (s : Featuremodel.Scenarios.t) ->
      List.iter
        (fun targets ->
          let models =
            F.bind ~cfs:s.Featuremodel.Scenarios.cfs ~fm:s.Featuremodel.Scenarios.fm
          in
          let single =
            match
              Eng.enforce trans ~metamodels ~models
                ~targets:(Echo.Target.of_list targets)
            with
            | Ok (Eng.Enforced r) -> Some r.Eng.relational_distance
            | _ -> None
          in
          match
            Eng.enforce_all trans ~metamodels ~models
              ~targets:(Echo.Target.of_list targets)
          with
          | Error e -> Alcotest.fail e
          | Ok outcomes ->
            let ds =
              List.filter_map
                (function Eng.Enforced r -> Some r.Eng.relational_distance | _ -> None)
                outcomes
            in
            (match (single, ds) with
            | Some d, _ :: _ ->
              if not (List.for_all (fun d' -> d' = d) ds) then
                Alcotest.failf "%s/%s: enumeration not at the optimum"
                  s.Featuremodel.Scenarios.s_name (String.concat "," targets)
            | None, [] -> ()
            | _ -> Alcotest.fail "enforce and enforce_all disagree on feasibility"))
        s.Featuremodel.Scenarios.restorable)
    Featuremodel.Scenarios.all

let test_k3_shapes () =
  (* three configurations: the paper's ->Fi_FMxCF^(k-1) with k = 3 *)
  let trans = F.transformation ~k:3 in
  let cfs =
    [
      F.configuration ~name:"cf1" [ "A"; "B" ];
      F.configuration ~name:"cf2" [ "A" ];
      F.configuration ~name:"cf3" [ "A" ];
    ]
  in
  (* B optional; cf1 renamed A's sibling? keep simple: fm lacks B *)
  let fm = F.feature_model ~name:"fm" [ ("A", true) ] in
  let models = F.bind ~cfs ~fm in
  (* repair everything except cf1 (cf1 authoritative): fm gains B *)
  (match
     Eng.enforce trans ~metamodels ~models
       ~targets:(Echo.Target.all_but ~params:(List.map fst models) "cf1")
   with
  | Ok (Eng.Enforced r) ->
    let fm' = List.assoc (I.make "fm") r.Eng.repaired in
    Alcotest.(check bool) "fm gained B" true
      (List.mem_assoc "B" (F.fm_features fm'));
    let rep = Qvtr.Check.run_exn trans ~metamodels ~models:r.Eng.repaired in
    Alcotest.(check bool) "consistent" true rep.Qvtr.Check.consistent
  | Ok o -> Alcotest.failf "expected repair: %s" (Format.asprintf "%a" Eng.pp_outcome o)
  | Error e -> Alcotest.fail e);
  (* single-target cf2 cannot fix the missing-B problem (fm frozen) *)
  match Eng.enforce trans ~metamodels ~models ~targets:(Echo.Target.single "cf2") with
  | Ok Eng.Cannot_restore -> ()
  | Ok o -> Alcotest.failf "expected Cannot_restore: %s" (Format.asprintf "%a" Eng.pp_outcome o)
  | Error e -> Alcotest.fail e

let suite =
  suite
  @ [
      Alcotest.test_case "enforce_all at the optimum" `Slow
        test_enforce_all_agrees_with_enforce;
      Alcotest.test_case "k = 3 shapes" `Quick test_k3_shapes;
    ]
