(* Tests for the weighted partial MaxSAT solver, including a
   brute-force cross-check on random weighted instances. *)

module M = Sat.Maxsat
module L = Sat.Lit

let test_no_softs () =
  let m = M.create () in
  let a = M.new_var m in
  M.add_hard m [ L.pos a ];
  Alcotest.(check bool) "optimum 0" true (M.solve m = M.Optimum 0)

let test_hard_unsat () =
  let m = M.create () in
  let a = M.new_var m in
  M.add_hard m [ L.pos a ];
  M.add_hard m [ L.neg_of a ];
  M.add_soft m ~weight:1 [ L.pos a ];
  Alcotest.(check bool) "hard unsat" true (M.solve m = M.Hard_unsat)

let test_weighted_choice () =
  (* p and q incompatible; dropping p costs 1, dropping q costs 2 *)
  let m = M.create () in
  let p = M.new_var m and q = M.new_var m in
  M.add_hard m [ L.neg_of p; L.neg_of q ];
  M.add_soft m ~weight:1 [ L.pos p ];
  M.add_soft m ~weight:2 [ L.pos q ];
  (match M.solve m with
  | M.Optimum c -> Alcotest.(check int) "optimum 1" 1 c
  | M.Hard_unsat -> Alcotest.fail "unexpected hard unsat");
  Alcotest.(check bool) "kept the heavier soft" true (M.value m q);
  Alcotest.(check bool) "dropped the lighter soft" false (M.value m p)

let test_all_softs_satisfiable () =
  let m = M.create () in
  let vars = Array.init 5 (fun _ -> M.new_var m) in
  Array.iter (fun v -> M.add_soft m ~weight:3 [ L.pos v ]) vars;
  Alcotest.(check bool) "optimum 0" true (M.solve m = M.Optimum 0);
  Array.iter (fun v -> Alcotest.(check bool) "all true" true (M.value m v)) vars

let test_mutual_exclusion_chain () =
  (* at most one of 4 vars may hold (pairwise hard), all wanted softly:
     optimum = 3 *)
  let m = M.create () in
  let vars = Array.init 4 (fun _ -> M.new_var m) in
  for i = 0 to 3 do
    for j = i + 1 to 3 do
      M.add_hard m [ L.neg_of vars.(i); L.neg_of vars.(j) ]
    done
  done;
  Array.iter (fun v -> M.add_soft m ~weight:1 [ L.pos v ]) vars;
  Alcotest.(check bool) "optimum 3" true (M.solve m = M.Optimum 3)

let test_invalid_weight () =
  let m = M.create () in
  let a = M.new_var m in
  match M.add_soft m ~weight:0 [ L.pos a ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "zero weight must raise"

(* brute-force optimum for small weighted instances *)
let brute_optimum nv hard soft =
  let best = ref None in
  let assign = Array.make nv false in
  let sat_clause c =
    List.exists
      (fun l -> if L.sign l then assign.(L.var l) else not assign.(L.var l))
      c
  in
  let rec go v =
    if v = nv then begin
      if List.for_all sat_clause hard then begin
        let cost =
          List.fold_left
            (fun acc (w, c) -> if sat_clause c then acc else acc + w)
            0 soft
        in
        match !best with
        | None -> best := Some cost
        | Some b -> if cost < b then best := Some cost
      end
    end
    else begin
      assign.(v) <- true;
      go (v + 1);
      assign.(v) <- false;
      go (v + 1)
    end
  in
  go 0;
  !best

let prop_random_weighted =
  QCheck.Test.make ~name:"maxsat optimum agrees with brute force" ~count:150
    QCheck.small_int (fun seed ->
      let rng = Random.State.make [| seed |] in
      let nv = 4 + Random.State.int rng 3 in
      let rand_clause len =
        List.init len (fun _ ->
            L.make (Random.State.int rng nv) (Random.State.bool rng))
      in
      let hard = List.init (Random.State.int rng 6) (fun _ -> rand_clause 2) in
      let soft =
        List.init
          (1 + Random.State.int rng 6)
          (fun _ -> (1 + Random.State.int rng 3, rand_clause 1))
      in
      let m = M.create () in
      for _ = 1 to nv do
        ignore (M.new_var m)
      done;
      List.iter (M.add_hard m) hard;
      List.iter (fun (w, c) -> M.add_soft m ~weight:w c) soft;
      match (M.solve m, brute_optimum nv hard soft) with
      | M.Hard_unsat, None -> true
      | M.Optimum c, Some b -> c = b
      | M.Optimum _, None | M.Hard_unsat, Some _ -> false)

let test_hard_count_stable () =
  (* hard_count must not absorb the totalizer clauses built by solve:
     before the fix it was [nb_clauses - n_soft], which inflated after
     the first solve *)
  let m = M.create () in
  let p = M.new_var m and q = M.new_var m in
  M.add_hard m [ L.neg_of p; L.neg_of q ];
  M.add_soft m ~weight:1 [ L.pos p ];
  M.add_soft m ~weight:2 [ L.pos q ];
  let before = M.hard_count m in
  Alcotest.(check int) "one hard clause" 1 before;
  ignore (M.solve m);
  Alcotest.(check int) "stable after solve" before (M.hard_count m);
  ignore (M.solve m);
  Alcotest.(check int) "stable after resolve" before (M.hard_count m)

let test_clause_counts () =
  let m = M.create () in
  let p = M.new_var m and q = M.new_var m in
  M.add_hard m [ L.neg_of p; L.neg_of q ];
  M.add_soft m ~weight:1 [ L.pos p ];
  M.add_soft m ~weight:1 [ L.pos q ];
  let c0 = M.clause_counts m in
  Alcotest.(check int) "hard before solve" 1 c0.M.hard;
  Alcotest.(check int) "soft before solve" 2 c0.M.soft;
  Alcotest.(check int) "no aux before solve" 0 c0.M.aux;
  ignore (M.solve m);
  let c1 = M.clause_counts m in
  Alcotest.(check int) "hard unchanged" 1 c1.M.hard;
  Alcotest.(check int) "soft unchanged" 2 c1.M.soft;
  Alcotest.(check bool) "totalizer clauses counted" true (c1.M.aux > 0);
  Alcotest.(check bool) "totalizer vars counted" true (c1.M.aux_vars > 0);
  (* the split covers the whole database *)
  Alcotest.(check int) "split is exhaustive"
    (Sat.Solver.nb_clauses (M.solver m))
    (c1.M.hard + c1.M.soft + c1.M.aux)

let suite =
  [
    Alcotest.test_case "no softs" `Quick test_no_softs;
    Alcotest.test_case "hard unsat" `Quick test_hard_unsat;
    Alcotest.test_case "hard count stable" `Quick test_hard_count_stable;
    Alcotest.test_case "clause counts" `Quick test_clause_counts;
    Alcotest.test_case "weighted choice" `Quick test_weighted_choice;
    Alcotest.test_case "all softs satisfiable" `Quick test_all_softs_satisfiable;
    Alcotest.test_case "mutual exclusion" `Quick test_mutual_exclusion_chain;
    Alcotest.test_case "invalid weight" `Quick test_invalid_weight;
    QCheck_alcotest.to_alcotest prop_random_weighted;
  ]
