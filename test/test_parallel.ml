(* Tests for the multicore layer: the domain pool (futures, inline
   jobs = 1 mode, cancellation), solver cloning and interruption, and
   jobs-invariance of the parallel enforcement paths — the same
   relational distance and the same repair set at jobs = 1 and
   jobs = N (N from MDQVTR_JOBS, default 4). *)

module P = Parallel.Pool
module S = Sat.Solver
module L = Sat.Lit
module F = Featuremodel.Fm
module Sc = Featuremodel.Scenarios
module Eng = Echo.Engine

(* CI runs the suite at several MDQVTR_JOBS values; default exercises
   a genuinely parallel schedule. *)
let parallel_jobs =
  match Sys.getenv_opt "MDQVTR_JOBS" with
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some n when n >= 1 -> n
    | _ -> 4)
  | None -> 4

(* ------------------------------------------------------------------ *)
(* pool                                                                *)

let test_inline_pool () =
  P.with_pool ~jobs:1 (fun pool ->
      Alcotest.(check int) "jobs" 1 (P.jobs pool);
      let order = ref [] in
      let f =
        P.submit pool (fun _ ->
            order := 1 :: !order;
            41)
      in
      order := 2 :: !order;
      Alcotest.(check int) "result" 41 (P.await f);
      (* jobs = 1 runs the task inline, during submit *)
      Alcotest.(check (list int)) "ran at submit time" [ 2; 1 ] !order)

let test_submit_await () =
  P.with_pool ~jobs:2 (fun pool ->
      let futs = List.init 20 (fun i -> P.submit pool (fun _ -> i * i)) in
      List.iteri
        (fun i f -> Alcotest.(check int) "square" (i * i) (P.await f))
        futs)

let test_map_list_error () =
  P.with_pool ~jobs:2 (fun pool ->
      match
        P.map_list pool (fun _ x -> if x = 3 then failwith "boom" else x)
          [ 1; 2; 3; 4 ]
      with
      | _ -> Alcotest.fail "expected the task failure to re-raise"
      | exception Failure m -> Alcotest.(check string) "first error" "boom" m)

let test_cancel_queued_task () =
  P.with_pool ~jobs:2 (fun pool ->
      (* occupy both workers so the third task stays queued *)
      let gate = Atomic.make false in
      let blocker _ =
        while not (Atomic.get gate) do
          Domain.cpu_relax ()
        done
      in
      let b1 = P.submit pool blocker in
      let b2 = P.submit pool blocker in
      let f = P.submit pool (fun _ -> 42) in
      P.cancel f;
      Atomic.set gate true;
      P.await b1;
      P.await b2;
      match P.result f with
      | Error P.Cancelled -> ()
      | Ok _ -> Alcotest.fail "a task cancelled before starting must not run"
      | Error e -> raise e)

let test_on_cancel_hook () =
  P.with_pool ~jobs:2 (fun pool ->
      let started = Atomic.make false in
      let observed = Atomic.make false in
      let hook_runs = Atomic.make 0 in
      let f =
        P.submit pool (fun tok ->
            P.on_cancel tok (fun () -> Atomic.incr hook_runs);
            Atomic.set started true;
            while not (P.cancelled tok) do
              Domain.cpu_relax ()
            done;
            Atomic.set observed true;
            raise P.Cancelled)
      in
      (* make sure the task is running before cancelling it, otherwise
         it is dropped without executing at all *)
      while not (Atomic.get started) do
        Domain.cpu_relax ()
      done;
      P.cancel f;
      P.cancel f (* idempotent *);
      (match P.result f with
      | Error P.Cancelled -> ()
      | Ok _ -> Alcotest.fail "task should report cancellation"
      | Error e -> raise e);
      Alcotest.(check bool) "task observed its token" true (Atomic.get observed);
      Alcotest.(check int) "hook ran exactly once" 1 (Atomic.get hook_runs))

(* ------------------------------------------------------------------ *)
(* solver cloning                                                      *)

let random_cnf rng nv nc =
  let s = S.create () in
  let vars = Array.init nv (fun _ -> S.new_var s) in
  let clauses =
    List.init nc (fun _ ->
        let width = 2 + Random.State.int rng 2 in
        List.init width (fun _ ->
            let v = vars.(Random.State.int rng nv) in
            if Random.State.bool rng then L.pos v else L.neg_of v))
  in
  List.iter (S.add_clause s) clauses;
  (s, clauses)

let satisfies value clauses =
  List.for_all (List.exists (fun l -> value (L.var l) = L.sign l)) clauses

let test_clone_equivalence () =
  let rng = Random.State.make [| 0xC10E |] in
  for _ = 1 to 50 do
    let nv = 4 + Random.State.int rng 8 in
    let s, clauses = random_cnf rng nv (8 + Random.State.int rng 30) in
    (* solve the original first so the clone inherits learnt clauses,
       activities and saved phases *)
    let r0 = S.solve s in
    let c = S.clone s in
    Alcotest.(check bool) "clone verdict agrees" true (S.solve c = r0);
    if r0 = S.Sat then begin
      Alcotest.(check bool) "original model satisfies the CNF" true
        (satisfies (S.value s) clauses);
      Alcotest.(check bool) "clone model satisfies the CNF" true
        (satisfies (S.value c) clauses)
    end;
    (* assumption verdicts are semantic: original and clone agree on
       each single-literal assumption *)
    for v = 0 to min 3 (nv - 1) do
      Alcotest.(check bool) "assumption verdict agrees" true
        (S.solve ~assumptions:[ L.pos v ] c = S.solve ~assumptions:[ L.pos v ] s)
    done
  done

(* duplicated from below to keep the clone tests self-contained *)
let pigeonhole_cnf n m =
  let s = S.create () in
  let v = Array.init n (fun _ -> Array.init m (fun _ -> S.new_var s)) in
  for i = 0 to n - 1 do
    S.add_clause s (List.init m (fun j -> L.pos v.(i).(j)))
  done;
  for j = 0 to m - 1 do
    for i = 0 to n - 1 do
      for k = i + 1 to n - 1 do
        S.add_clause s [ L.neg_of v.(i).(j); L.neg_of v.(k).(j) ]
      done
    done
  done;
  s

let test_clone_after_reduce () =
  (* Clones share the learnt clauses' literal arrays with the parent,
     and reduce_db marks clauses removed in-place; a clone taken after
     reductions must still be semantically equivalent. php(7,6)
     generates thousands of conflicts, so a learnt cap of 5 guarantees
     the reduce path actually runs (asserted — otherwise this test
     silently degrades to test_clone_equivalence). *)
  let s = pigeonhole_cnf 7 6 in
  S.set_learnt_cap s 5;
  Alcotest.(check bool) "php(7,6) unsat" true (S.solve s = S.Unsat);
  Alcotest.(check bool) "reduce_db exercised" true ((S.stats s).S.reduces > 0);
  let c = S.clone s in
  Alcotest.(check bool) "clone verdict agrees" true (S.solve c = S.Unsat);
  (* SAT-side coverage: random CNFs solved under the same tiny cap;
     models and assumption answers must survive whatever reductions
     (and clause sharing) happened along the way *)
  let rng = Random.State.make [| 0x5EED |] in
  for _ = 1 to 20 do
    let nv = 12 + Random.State.int rng 6 in
    let s, clauses = random_cnf rng nv (40 + Random.State.int rng 40) in
    S.set_learnt_cap s 5;
    let r0 = S.solve s in
    let c = S.clone s in
    Alcotest.(check bool) "clone verdict agrees" true (S.solve c = r0);
    if r0 = S.Sat then
      Alcotest.(check bool) "clone model satisfies the CNF" true
        (satisfies (S.value c) clauses);
    for v = 0 to min 3 (nv - 1) do
      Alcotest.(check bool) "assumption verdict agrees" true
        (S.solve ~assumptions:[ L.neg_of v ] c
        = S.solve ~assumptions:[ L.neg_of v ] s)
    done;
    (* keep solving the original: its later reductions must not
       corrupt the already-taken clone either way *)
    Alcotest.(check bool) "original verdict stable" true (S.solve s = r0)
  done

let test_clone_independent () =
  let s = S.create () in
  let v = Array.init 2 (fun _ -> S.new_var s) in
  S.add_clause s [ L.pos v.(0); L.pos v.(1) ];
  Alcotest.(check bool) "sat" true (S.solve s = S.Sat);
  let c = S.clone s in
  (* drive the clone unsat; the original must be unaffected *)
  S.add_clause c [ L.neg_of v.(0) ];
  S.add_clause c [ L.neg_of v.(1) ];
  Alcotest.(check bool) "clone unsat" true (S.solve c = S.Unsat);
  Alcotest.(check bool) "original still sat" true (S.solve s = S.Sat)

(* ------------------------------------------------------------------ *)
(* interruption                                                        *)

let pigeonhole n m =
  let s = S.create () in
  let v = Array.init n (fun _ -> Array.init m (fun _ -> S.new_var s)) in
  for i = 0 to n - 1 do
    S.add_clause s (List.init m (fun j -> L.pos v.(i).(j)))
  done;
  for j = 0 to m - 1 do
    for i = 0 to n - 1 do
      for k = i + 1 to n - 1 do
        S.add_clause s [ L.neg_of v.(i).(j); L.neg_of v.(k).(j) ]
      done
    done
  done;
  s

let test_interrupt_then_solve () =
  let s = pigeonhole 6 5 in
  S.interrupt s;
  (match S.solve s with
  | exception S.Interrupted -> ()
  | _ -> Alcotest.fail "expected Interrupted");
  (* the flag is consumed: the solver is reusable afterwards *)
  Alcotest.(check bool) "solver reusable after interrupt" true
    (S.solve s = S.Unsat)

let test_interrupt_running_solve () =
  (* php(10,9) takes far longer than the interrupt latency; the test
     passes either way but exercises the mid-solve path in practice *)
  let s = pigeonhole 10 9 in
  P.with_pool ~jobs:2 (fun pool ->
      let f =
        P.submit pool (fun _ ->
            match S.solve s with
            | r -> `Finished r
            | exception S.Interrupted -> `Interrupted)
      in
      Unix.sleepf 0.05;
      S.interrupt s;
      match P.await f with
      | `Interrupted -> ()
      | `Finished S.Unsat -> () (* solved before the interrupt landed *)
      | `Finished S.Sat -> Alcotest.fail "php(10,9) cannot be sat")

let test_interrupt_latency () =
  (* interrupt is polled every 64 trail positions inside propagate,
     not just at decision boundaries, so a running solve must return
     promptly. php(11,10) keeps one core busy for many seconds; the
     bound below is ~1000x the poll interval — generous enough for a
     loaded CI box, tight enough to catch a lost poll (which would run
     to completion). *)
  let s = pigeonhole 11 10 in
  P.with_pool ~jobs:2 (fun pool ->
      let f =
        P.submit pool (fun _ ->
            match S.solve s with
            | r -> `Finished r
            | exception S.Interrupted -> `Interrupted)
      in
      Unix.sleepf 0.05;
      let t0 = Unix.gettimeofday () in
      S.interrupt s;
      let outcome = P.await f in
      let latency = Unix.gettimeofday () -. t0 in
      (match outcome with
      | `Interrupted | `Finished S.Unsat -> ()
      | `Finished S.Sat -> Alcotest.fail "php(11,10) cannot be sat");
      Alcotest.(check bool)
        (Printf.sprintf "interrupt latency %.3fs under bound" latency)
        true (latency < 1.0))

(* ------------------------------------------------------------------ *)
(* jobs-invariance of enforcement                                      *)

(* The repair layer sizes its speculation and sharding by the real
   core count; pretend the box has [n] cores so the parallel schedules
   under test are genuinely concurrent even on 1-core CI runners. *)
let with_workers n f =
  let prev = Sys.getenv_opt "MDQVTR_WORKERS" in
  Unix.putenv "MDQVTR_WORKERS" (string_of_int n);
  Fun.protect
    ~finally:(fun () ->
      Unix.putenv "MDQVTR_WORKERS" (Option.value prev ~default:""))
    f

let enforce ?backend ~jobs trans (s : Sc.t) targets =
  Eng.enforce ?backend ~jobs trans ~metamodels:F.metamodels
    ~models:(F.bind ~cfs:s.Sc.cfs ~fm:s.Sc.fm)
    ~targets:(Echo.Target.of_list targets)

let distance name = function
  | Ok (Eng.Enforced r) -> Some r.Eng.relational_distance
  | Ok Eng.Already_consistent -> Some 0
  | Ok Eng.Cannot_restore -> None
  | Error e -> Alcotest.failf "%s: %s" name e

let test_enforce_jobs_invariant () =
  with_workers 3 @@ fun () ->
  let trans = F.transformation ~k:2 in
  List.iter
    (fun (s : Sc.t) ->
      List.iter
        (fun targets ->
          let name =
            Printf.sprintf "%s -> {%s}" s.Sc.s_name (String.concat "," targets)
          in
          let d1 = distance name (enforce ~jobs:1 trans s targets) in
          let dn = distance name (enforce ~jobs:parallel_jobs trans s targets) in
          Alcotest.(check (option int)) name d1 dn)
        (s.Sc.restorable @ s.Sc.not_restorable))
    Sc.all

let outcome_key = function
  | Eng.Enforced r ->
    String.concat "\n"
      (List.map
         (fun (p, m) -> Mdl.Ident.name p ^ ":" ^ Mdl.Serialize.model_to_string m)
         r.Eng.repaired)
  | Eng.Already_consistent -> "<consistent>"
  | Eng.Cannot_restore -> "<cannot-restore>"

let test_enforce_all_jobs_invariant () =
  with_workers 3 @@ fun () ->
  let trans = F.transformation ~k:2 in
  List.iter
    (fun (s : Sc.t) ->
      List.iter
        (fun targets ->
          let name =
            Printf.sprintf "%s -> {%s}" s.Sc.s_name (String.concat "," targets)
          in
          let run jobs =
            match
              Eng.enforce_all ~jobs trans ~metamodels:F.metamodels
                ~models:(F.bind ~cfs:s.Sc.cfs ~fm:s.Sc.fm)
                ~targets:(Echo.Target.of_list targets)
            with
            | Ok outcomes -> List.map outcome_key outcomes
            | Error e -> Alcotest.failf "%s: %s" name e
          in
          (* complete enumeration in canonical order: the full repair
             set is identical whatever the worker schedule *)
          Alcotest.(check (list string)) name (run 1) (run parallel_jobs))
        s.Sc.restorable)
    Sc.all

let test_enforce_all_adaptive_shards () =
  (* Force the adaptive sharding machinery through its hot paths: a
     zero time budget makes every cube split-eligible, and the
     simulated 3-core box gives it real worker domains (and real
     starvation signals) even on the 1-core CI runner. The repair
     menu must still be canonical. *)
  with_workers 3 @@ fun () ->
  let trans = F.transformation ~k:2 in
  List.iter
    (fun (s : Sc.t) ->
      List.iter
        (fun targets ->
          let name =
            Printf.sprintf "%s -> {%s} (adaptive)" s.Sc.s_name
              (String.concat "," targets)
          in
          let run jobs =
            match
              Eng.enforce_all ~jobs ~split_after:0.0 trans
                ~metamodels:F.metamodels
                ~models:(F.bind ~cfs:s.Sc.cfs ~fm:s.Sc.fm)
                ~targets:(Echo.Target.of_list targets)
            with
            | Ok outcomes -> List.map outcome_key outcomes
            | Error e -> Alcotest.failf "%s: %s" name e
          in
          Alcotest.(check (list string)) name (run 1) (run parallel_jobs))
        s.Sc.restorable)
    Sc.all

let test_portfolio_wins_counted () =
  (* The BENCH_2..4 mystery: both portfolio win counters were zero
     because no caller ever raced (jobs defaulted to 1, which degrades
     Portfolio to the ladder). Assert the accounting works when a race
     does run: every race increments [portfolio_races], and a race
     that repairs successfully credits exactly one lane. *)
  let races = Obs.Metrics.counter "echo.engine.portfolio_races" in
  let it_wins = Obs.Metrics.counter "echo.engine.portfolio_iterative_wins" in
  let mx_wins = Obs.Metrics.counter "echo.engine.portfolio_maxsat_wins" in
  let snap () =
    ( Obs.Metrics.counter_value races,
      Obs.Metrics.counter_value it_wins + Obs.Metrics.counter_value mx_wins )
  in
  let races0, wins0 = snap () in
  let trans = F.transformation ~k:2 in
  let repaired = ref 0 in
  List.iter
    (fun (s : Sc.t) ->
      List.iter
        (fun targets ->
          match enforce ~backend:Eng.Portfolio ~jobs:2 trans s targets with
          | Ok (Eng.Enforced _) -> incr repaired
          | _ -> ())
        s.Sc.restorable)
    Sc.all;
  let races1, wins1 = snap () in
  Alcotest.(check bool) "some portfolio race actually repaired" true
    (!repaired > 0);
  Alcotest.(check bool) "every repair came from a counted race" true
    (races1 - races0 >= !repaired);
  Alcotest.(check int) "every successful race credited one winning lane"
    !repaired (wins1 - wins0)

let test_portfolio_agrees () =
  let trans = F.transformation ~k:2 in
  List.iter
    (fun (s : Sc.t) ->
      List.iter
        (fun targets ->
          let name =
            Printf.sprintf "%s -> {%s}" s.Sc.s_name (String.concat "," targets)
          in
          let d1 = distance name (enforce ~jobs:1 trans s targets) in
          let dp =
            distance name (enforce ~backend:Eng.Portfolio ~jobs:2 trans s targets)
          in
          Alcotest.(check (option int)) name d1 dp)
        (s.Sc.restorable @ s.Sc.not_restorable))
    Sc.all

let suite =
  [
    Alcotest.test_case "inline pool (jobs = 1)" `Quick test_inline_pool;
    Alcotest.test_case "submit and await" `Quick test_submit_await;
    Alcotest.test_case "map_list re-raises" `Quick test_map_list_error;
    Alcotest.test_case "cancel a queued task" `Quick test_cancel_queued_task;
    Alcotest.test_case "on_cancel hook" `Quick test_on_cancel_hook;
    Alcotest.test_case "clone equivalence (random CNFs)" `Slow
      test_clone_equivalence;
    Alcotest.test_case "clone equivalence after reduce_db" `Slow
      test_clone_after_reduce;
    Alcotest.test_case "clone independence" `Quick test_clone_independent;
    Alcotest.test_case "interrupt then solve" `Quick test_interrupt_then_solve;
    Alcotest.test_case "interrupt a running solve" `Quick
      test_interrupt_running_solve;
    Alcotest.test_case "interrupt latency is bounded" `Slow
      test_interrupt_latency;
    Alcotest.test_case "enforce distance is jobs-invariant" `Slow
      test_enforce_jobs_invariant;
    Alcotest.test_case "enforce_all repair set is jobs-invariant" `Slow
      test_enforce_all_jobs_invariant;
    Alcotest.test_case "enforce_all canonical under adaptive sharding" `Slow
      test_enforce_all_adaptive_shards;
    Alcotest.test_case "portfolio wins are counted" `Slow
      test_portfolio_wins_counted;
    Alcotest.test_case "portfolio agrees with iterative" `Slow
      test_portfolio_agrees;
  ]
