(* Tests for the instrumentation layer: per-repair telemetry roll-ups,
   cross-backend parity on the reported optimum, and monotonicity of
   the process-global solver counters. *)

module F = Featuremodel.Fm
module Sc = Featuremodel.Scenarios
module Eng = Echo.Engine
module S = Sat.Solver

let metamodels = F.metamodels

let enforce ?backend (s : Sc.t) targets =
  Eng.enforce ?backend (F.transformation ~k:2) ~metamodels
    ~models:(F.bind ~cfs:s.Sc.cfs ~fm:s.Sc.fm)
    ~targets:(Echo.Target.of_list targets)

let repair_stats ?backend s targets =
  match enforce ?backend s targets with
  | Ok (Eng.Enforced r) -> r
  | Ok o ->
    Alcotest.failf "expected a repair, got %s"
      (Format.asprintf "%a" Eng.pp_outcome o)
  | Error e -> Alcotest.fail e

let test_iterative_stats () =
  let r = repair_stats Sc.new_mandatory_feature [ "cf1"; "cf2" ] in
  let st = r.Eng.stats in
  Alcotest.(check string) "backend" "iterative" st.Echo.Telemetry.backend;
  Alcotest.(check bool) "solver called" true
    (st.Echo.Telemetry.solver_calls > 0);
  Alcotest.(check bool) "translation vars" true
    (st.Echo.Telemetry.translation.Relog.Translate.vars > 0);
  Alcotest.(check bool) "translation clauses" true
    (st.Echo.Telemetry.translation.Relog.Translate.clauses > 0);
  Alcotest.(check bool) "relations materialized" true
    (st.Echo.Telemetry.translation.Relog.Translate.relations > 0);
  Alcotest.(check bool) "distance levels recorded" true
    (st.Echo.Telemetry.distance_levels <> []);
  (* the per-level iteration counts partition the total iterations *)
  Alcotest.(check int) "levels sum to iterations" r.Eng.iterations
    (List.fold_left
       (fun acc (_, n) -> acc + n)
       0 st.Echo.Telemetry.distance_levels);
  (* the search reached the reported optimum *)
  Alcotest.(check bool) "optimum level present" true
    (List.mem_assoc r.Eng.relational_distance st.Echo.Telemetry.distance_levels);
  Alcotest.(check bool) "cardinality inputs" true
    (st.Echo.Telemetry.cardinality_inputs > 0);
  Alcotest.(check bool) "solve time sane" true
    (st.Echo.Telemetry.solve_time_cpu >= 0.
    && st.Echo.Telemetry.solve_time_cpu <= st.Echo.Telemetry.total_time +. 1e-9);
  (* serial repair: summed effort and elapsed solving time coincide *)
  Alcotest.(check bool) "wall equals cpu when serial" true
    (st.Echo.Telemetry.solve_time_wall = st.Echo.Telemetry.solve_time_cpu);
  Alcotest.(check bool) "translate time sane" true
    (st.Echo.Telemetry.translation.Relog.Translate.translate_time >= 0.)

let test_maxsat_stats () =
  let r = repair_stats ~backend:Eng.Maxsat Sc.new_mandatory_feature
      [ "cf1"; "cf2" ]
  in
  let st = r.Eng.stats in
  Alcotest.(check string) "backend" "maxsat" st.Echo.Telemetry.backend;
  Alcotest.(check bool) "solver called" true
    (st.Echo.Telemetry.solver_calls > 0);
  Alcotest.(check bool) "solver counters flowed" true
    (st.Echo.Telemetry.solver.S.solves > 0);
  Alcotest.(check bool) "change literals counted" true
    (st.Echo.Telemetry.cardinality_inputs > 0);
  Alcotest.(check bool) "total time recorded" true
    (st.Echo.Telemetry.total_time >= 0.)

let test_backend_parity () =
  (* Iterative and Maxsat agree on the relational distance on every
     restorable direction of every scenario (experiment E7 as a test) *)
  List.iter
    (fun (s : Sc.t) ->
      List.iter
        (fun targets ->
          let it = repair_stats ~backend:Eng.Iterative s targets in
          let mx = repair_stats ~backend:Eng.Maxsat s targets in
          Alcotest.(check int)
            (Printf.sprintf "%s / %s" s.Sc.s_name (String.concat "," targets))
            it.Eng.relational_distance mx.Eng.relational_distance)
        s.Sc.restorable)
    Sc.all

let test_global_counters_monotone () =
  let before = S.global_stats () in
  let _ = repair_stats Sc.new_mandatory_feature [ "fm" ] in
  let after = S.global_stats () in
  Alcotest.(check bool) "solves grew" true (after.S.solves > before.S.solves);
  Alcotest.(check bool) "decisions monotone" true
    (after.S.decisions >= before.S.decisions);
  Alcotest.(check bool) "propagations monotone" true
    (after.S.propagations >= before.S.propagations);
  Alcotest.(check bool) "conflicts monotone" true
    (after.S.conflicts >= before.S.conflicts);
  Alcotest.(check bool) "time monotone" true
    (after.S.solve_time >= before.S.solve_time)

let suite =
  [
    Alcotest.test_case "iterative roll-up" `Quick test_iterative_stats;
    Alcotest.test_case "maxsat roll-up" `Quick test_maxsat_stats;
    Alcotest.test_case "backend parity on distance" `Quick test_backend_parity;
    Alcotest.test_case "global counters monotone" `Quick
      test_global_counters_monotone;
  ]
