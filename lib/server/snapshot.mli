(** Durable session snapshots — the eviction/resurrection format.

    A snapshot is one canonical JSON object:

    {v
    {"format":"mdqvtr-snapshot/1",
     "fingerprint":"<md5 hex of the payload text>",
     "payload":{"transformation":...,"metamodels":...,"models":...,
                "targets":[...],"standard":...,"slack":...,
                "headroom":...,"values":[...]}}
    v}

    The payload is a {!Protocol.open_spec} whose [o_models] are the
    session's {e current} (post-edit) models re-serialized with
    {!Mdl.Serialize}, plus the session's accumulated value universe
    ({!Incr.Session.value_universe}, encoded with
    {!Mdl.Serialize.value_of_string}'s inverse). Reviving re-opens the
    session over those models with the values as [extra_values], so
    the resurrected session searches {e exactly} the space the evicted
    one did: identical verdicts, menus and distances — the property
    the test suite checks.

    [of_string] rejects an unknown [format] version and a fingerprint
    that does not match the payload (bit-rot, manual edits) with
    errors naming what was expected. *)

type t = {
  spec : Protocol.open_spec;  (** with current models substituted *)
  values : Mdl.Value.t list;  (** the session's value universe *)
  fingerprint : string;  (** md5 hex over the canonical payload *)
}

val format_version : string
(** ["mdqvtr-snapshot/1"]. *)

val of_session :
  spec:Protocol.open_spec -> Incr.Session.t -> t
(** Capture a live session. [spec] is the session's original open
    spec; its [o_models] are replaced by the session's current models
    and [values] by its value universe. *)

val to_string : t -> string
val of_string : string -> (t, string) result

val save : dir:string -> name:string -> t -> (string, string) result
(** Write atomically (temp file + rename) as [dir/<sanitized name>.snap],
    creating [dir] if needed; returns the path. *)

val load : string -> (t, string) result
(** Read and validate a snapshot file. *)

val hydrate :
  ?extra_values:Mdl.Value.t list ->
  ?symmetry:bool ->
  Protocol.open_spec ->
  (Incr.Session.t * Mdl.Metamodel.t list, string) result
(** Parse an open spec's texts and open an {!Incr.Session} over them
    — the one code path behind both the [open] verb and snapshot
    revival (which passes the snapshot's [values] as
    [extra_values]). [symmetry] is forwarded to
    {!Incr.Session.open_session} — the server's [--no-sbp] sets it
    false. Empty [o_targets] selects every parameter. *)

val revive :
  ?symmetry:bool -> t -> (Incr.Session.t * Mdl.Metamodel.t list, string) result
(** [hydrate ~extra_values:t.values ?symmetry t.spec]. *)
