(** Socket front end for {!Engine}: newline-framed JSONL over a Unix
    domain socket or loopback TCP, plus an optional read-only HTTP
    admin plane for operational telemetry.

    One JSONL connection carries any number of interleaved sessions;
    frames are {!Protocol} requests, one per line, answered with one
    response line each. Responses to a single session come back in
    request order; responses across sessions (and to [stats]) may
    interleave, which is why every frame carries the client's [id]. A
    frame that fails strict parsing is answered immediately with
    [{"id":<recovered id or -1>,"ok":false,"error":...}] — the
    connection stays up, the [server.protocol_errors] counter is
    bumped, and the error message carries this connection's running
    tally of malformed frames.

    The admin plane ([?admin] port, loopback only) speaks minimal
    HTTP/1.0, GET only, one request per connection:
    - [GET /metrics] — the whole {!Obs.Metrics} registry in Prometheus
      text exposition format ([text/plain; version=0.0.4]);
    - [GET /healthz] — [200 ok] while the loop is serving;
    - [GET /sessions] — {!Engine.sessions_json} as JSON.

    Replies are written by whichever pool worker finished the request,
    serialized per connection with a write lock; the accept/read loop
    itself never blocks on engine work. The [server.connections] gauge
    tracks open connections across both planes. *)

type addr =
  | Unix_sock of string  (** path; unlinked and re-bound on start *)
  | Tcp of int  (** loopback only — the server is not authenticated *)

val serve :
  ?ready:(unit -> unit) ->
  ?admin:int ->
  engine:Engine.t ->
  addr ->
  (unit, string) result
(** Bind, listen and run the accept/read loop forever (the [qvtr
    serve] process exits by signal). [ready] fires once the socket(s)
    are listening — the bench and the CI smoke test use it to know
    when to connect. [admin] additionally binds the HTTP admin plane
    on that loopback TCP port. [Error] covers bind/listen failures;
    per-connection I/O errors just drop that connection. *)

(** {2 Exposed for tests} *)

val feed :
  engine:Engine.t ->
  proto_errors:int ref ->
  send:(string -> unit) ->
  string ->
  unit
(** Process one JSONL frame exactly as a live connection would:
    blank lines are ignored, malformed frames bump
    [server.errors]/[server.protocol_errors] and the per-connection
    [proto_errors] tally and get an error reply via [send], valid
    frames are submitted to the engine with replies routed to
    [send]. *)

val admin_response : engine:Engine.t -> string -> string
(** [admin_response ~engine request_line] is the full HTTP/1.0
    response (status line, headers, body) for one admin-plane request
    line such as ["GET /metrics HTTP/1.0"]. *)
