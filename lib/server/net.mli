(** Socket front end for {!Engine}: newline-framed JSONL over a Unix
    domain socket or loopback TCP.

    One connection carries any number of interleaved sessions; frames
    are {!Protocol} requests, one per line, answered with one response
    line each. Responses to a single session come back in request
    order; responses across sessions (and to [stats]) may interleave,
    which is why every frame carries the client's [id]. A frame that
    fails strict parsing is answered immediately with
    [{"id":<recovered id or -1>,"ok":false,"error":...}] — the
    connection stays up.

    Replies are written by whichever pool worker finished the request,
    serialized per connection with a write lock; the accept/read loop
    itself never blocks on engine work. *)

type addr =
  | Unix_sock of string  (** path; unlinked and re-bound on start *)
  | Tcp of int  (** loopback only — the server is not authenticated *)

val serve :
  ?ready:(unit -> unit) -> engine:Engine.t -> addr -> (unit, string) result
(** Bind, listen and run the accept/read loop forever (the [qvtr
    serve] process exits by signal). [ready] fires once the socket is
    listening — the bench and the CI smoke test use it to know when
    to connect. [Error] covers bind/listen failures; per-connection
    I/O errors just drop that connection. *)
