module Json = Obs.Json

type open_spec = {
  o_transformation : string;
  o_metamodels : string;
  o_models : string;
  o_targets : string list;
  o_standard : bool;
  o_slack : int;
  o_headroom : int;
}

type request =
  | Open of open_spec
  | Apply_edits of { models : string }
  | Recheck of { blame : bool }
  | Rerepair of { limit : int }
  | Commit of { choice : int }
  | Snapshot
  | Close
  | Stats

type req = {
  q_id : int;
  q_session : string;
  q_req : request;
}

type verdict = {
  w_relation : string;
  w_sources : string list;
  w_target : string;
  w_holds : bool;
  w_blame : (string * string list) list;
}

type menu_entry = {
  m_relational_distance : int;
  m_edit_distance : int;
  m_models : (string * string) list;
}

type payload =
  | Opened of { revived : bool }
  | Applied of { edits : int }
  | Checked of {
      consistent : bool;
      verdicts : verdict list;
      stats : Incr.Session.step_stats;
    }
  | Repaired of {
      outcome : string;
      menu : menu_entry list;
      stats : Incr.Session.step_stats;
    }
  | Committed
  | Snapshotted of { path : string; fingerprint : string }
  | Closed
  | Stats_snapshot of Json.t

type resp = {
  s_id : int;
  s_result : (payload, string) result;
}

let verb_of_request = function
  | Open _ -> "open"
  | Apply_edits _ -> "apply_edits"
  | Recheck _ -> "recheck"
  | Rerepair _ -> "rerepair"
  | Commit _ -> "commit"
  | Snapshot -> "snapshot"
  | Close -> "close"
  | Stats -> "stats"

(* ------------------------------------------------------------------ *)
(* Encoding                                                            *)

let request_to_json { q_id; q_session; q_req } =
  let base = [ ("id", Json.Int q_id); ("verb", Json.String (verb_of_request q_req)) ] in
  let session =
    match q_req with Stats -> [] | _ -> [ ("session", Json.String q_session) ]
  in
  let fields =
    match q_req with
    | Open o ->
      [
        ("transformation", Json.String o.o_transformation);
        ("metamodels", Json.String o.o_metamodels);
        ("models", Json.String o.o_models);
        ("targets", Json.List (List.map (fun t -> Json.String t) o.o_targets));
        ("standard", Json.Bool o.o_standard);
        ("slack", Json.Int o.o_slack);
        ("headroom", Json.Int o.o_headroom);
      ]
    | Apply_edits { models } -> [ ("models", Json.String models) ]
    | Recheck { blame } -> [ ("blame", Json.Bool blame) ]
    | Rerepair { limit } -> [ ("limit", Json.Int limit) ]
    | Commit { choice } -> [ ("choice", Json.Int choice) ]
    | Snapshot | Close | Stats -> []
  in
  Json.Obj (base @ session @ fields)

let request_to_string r = Json.to_string (request_to_json r)

let step_stats_to_json (s : Incr.Session.step_stats) =
  Json.Obj
    [
      ("wall_time_s", Json.Float s.wall);
      ("solver_calls", Json.Int s.solver_calls);
      ("conflicts", Json.Int s.conflicts);
      ("propagations", Json.Int s.propagations);
      ("decisions", Json.Int s.decisions);
      ("translated", Json.Bool s.translated);
      ("translate_s", Json.Float s.translate_s);
    ]

let verdict_to_json w =
  Json.Obj
    [
      ("relation", Json.String w.w_relation);
      ("sources", Json.List (List.map (fun s -> Json.String s) w.w_sources));
      ("target", Json.String w.w_target);
      ("holds", Json.Bool w.w_holds);
      ( "blame",
        Json.List
          (List.map
             (fun (rel, atoms) ->
               Json.Obj
                 [
                   ("relation", Json.String rel);
                   ("atoms", Json.List (List.map (fun a -> Json.String a) atoms));
                 ])
             w.w_blame) );
    ]

let menu_entry_to_json m =
  Json.Obj
    [
      ("relational_distance", Json.Int m.m_relational_distance);
      ("edit_distance", Json.Int m.m_edit_distance);
      ( "models",
        Json.Obj (List.map (fun (p, text) -> (p, Json.String text)) m.m_models) );
    ]

let payload_fields = function
  | Opened { revived } -> [ ("revived", Json.Bool revived) ]
  | Applied { edits } -> [ ("edits", Json.Int edits) ]
  | Checked { consistent; verdicts; stats } ->
    [
      ("consistent", Json.Bool consistent);
      ("verdicts", Json.List (List.map verdict_to_json verdicts));
      ("stats", step_stats_to_json stats);
    ]
  | Repaired { outcome; menu; stats } ->
    [
      ("outcome", Json.String outcome);
      ("menu", Json.List (List.map menu_entry_to_json menu));
      ("stats", step_stats_to_json stats);
    ]
  | Committed -> []
  | Snapshotted { path; fingerprint } ->
    [ ("path", Json.String path); ("fingerprint", Json.String fingerprint) ]
  | Closed -> []
  | Stats_snapshot j -> [ ("stats", j) ]

let response_to_json ~verb { s_id; s_result } =
  let base = [ ("id", Json.Int s_id); ("verb", Json.String verb) ] in
  match s_result with
  | Ok p -> Json.Obj (base @ (("ok", Json.Bool true) :: payload_fields p))
  | Error e -> Json.Obj (base @ [ ("ok", Json.Bool false); ("error", Json.String e) ])

let response_to_string ~verb r = Json.to_string (response_to_json ~verb r)

(* ------------------------------------------------------------------ *)
(* Decoding                                                            *)

let ( let* ) = Result.bind

let field_string j k =
  match Json.to_string_opt (Json.member k j) with
  | Some s -> Ok s
  | None -> Error (Printf.sprintf "field %S: expected a string" k)

let field_string_default j k d =
  match Json.member k j with
  | Json.Null -> Ok d
  | v -> (
    match Json.to_string_opt v with
    | Some s -> Ok s
    | None -> Error (Printf.sprintf "field %S: expected a string" k))

let field_int_default j k d =
  match Json.member k j with
  | Json.Null -> Ok d
  | v -> (
    match Json.to_int_opt v with
    | Some n -> Ok n
    | None -> Error (Printf.sprintf "field %S: expected an integer" k))

let field_bool_default j k d =
  match Json.member k j with
  | Json.Null -> Ok d
  | v -> (
    match Json.to_bool_opt v with
    | Some b -> Ok b
    | None -> Error (Printf.sprintf "field %S: expected a boolean" k))

let field_string_list_default j k d =
  match Json.member k j with
  | Json.Null -> Ok d
  | Json.List xs ->
    List.fold_left
      (fun acc x ->
        let* acc = acc in
        match Json.to_string_opt x with
        | Some s -> Ok (s :: acc)
        | None -> Error (Printf.sprintf "field %S: expected strings" k))
      (Ok []) xs
    |> Result.map List.rev
  | _ -> Error (Printf.sprintf "field %S: expected a list of strings" k)

let request_of_json j =
  match j with
  | Json.Obj _ ->
    let* id =
      match Json.to_int_opt (Json.member "id" j) with
      | Some n -> Ok n
      | None -> Error "field \"id\": expected an integer"
    in
    let* verb = field_string j "verb" in
    let* session =
      if verb = "stats" then field_string_default j "session" ""
      else
        match Json.to_string_opt (Json.member "session" j) with
        | Some s when s <> "" -> Ok s
        | Some _ -> Error "field \"session\": must be non-empty"
        | None -> Error "field \"session\": expected a string"
    in
    let* request =
      match verb with
      | "open" ->
        let* o_transformation = field_string j "transformation" in
        let* o_metamodels = field_string j "metamodels" in
        let* o_models = field_string j "models" in
        let* o_targets = field_string_list_default j "targets" [] in
        let* o_standard = field_bool_default j "standard" false in
        let* o_slack = field_int_default j "slack" 2 in
        let* o_headroom = field_int_default j "headroom" 6 in
        Ok
          (Open
             {
               o_transformation;
               o_metamodels;
               o_models;
               o_targets;
               o_standard;
               o_slack;
               o_headroom;
             })
      | "apply_edits" ->
        let* models = field_string j "models" in
        Ok (Apply_edits { models })
      | "recheck" ->
        let* blame = field_bool_default j "blame" false in
        Ok (Recheck { blame })
      | "rerepair" ->
        let* limit = field_int_default j "limit" 16 in
        Ok (Rerepair { limit })
      | "commit" ->
        let* choice = field_int_default j "choice" 0 in
        Ok (Commit { choice })
      | "snapshot" -> Ok Snapshot
      | "close" -> Ok Close
      | "stats" -> Ok Stats
      | v -> Error (Printf.sprintf "unknown verb %S" v)
    in
    Ok { q_id = id; q_session = session; q_req = request }
  | _ -> Error "request frame: expected a JSON object"

let parse_request line =
  match Json.of_string line with
  | Error e -> Error (Printf.sprintf "request frame: %s" e)
  | Ok j -> request_of_json j

let step_stats_of_json j : (Incr.Session.step_stats, string) result =
  let num k =
    match Json.member k j with
    | Json.Float f -> Ok f
    | Json.Int n -> Ok (float_of_int n)
    | _ -> Error (Printf.sprintf "stats field %S: expected a number" k)
  in
  let int k =
    match Json.to_int_opt (Json.member k j) with
    | Some n -> Ok n
    | None -> Error (Printf.sprintf "stats field %S: expected an integer" k)
  in
  let* wall = num "wall_time_s" in
  let* solver_calls = int "solver_calls" in
  let* conflicts = int "conflicts" in
  let* propagations = int "propagations" in
  let* decisions = int "decisions" in
  let* translated = field_bool_default j "translated" false in
  let* translate_s = num "translate_s" in
  Ok
    {
      Incr.Session.wall;
      solver_calls;
      conflicts;
      propagations;
      decisions;
      translated;
      translate_s;
    }

let verdict_of_json j =
  let* w_relation = field_string j "relation" in
  let* w_sources = field_string_list_default j "sources" [] in
  let* w_target = field_string j "target" in
  let* w_holds = field_bool_default j "holds" false in
  let* w_blame =
    List.fold_left
      (fun acc b ->
        let* acc = acc in
        let* rel = field_string b "relation" in
        let* atoms = field_string_list_default b "atoms" [] in
        Ok ((rel, atoms) :: acc))
      (Ok [])
      (Json.to_list (Json.member "blame" j))
    |> Result.map List.rev
  in
  Ok { w_relation; w_sources; w_target; w_holds; w_blame }

let menu_entry_of_json j =
  let* m_relational_distance = field_int_default j "relational_distance" 0 in
  let* m_edit_distance = field_int_default j "edit_distance" 0 in
  let* m_models =
    match Json.member "models" j with
    | Json.Obj fields ->
      List.fold_left
        (fun acc (p, v) ->
          let* acc = acc in
          match Json.to_string_opt v with
          | Some text -> Ok ((p, text) :: acc)
          | None -> Error "menu entry: model text must be a string")
        (Ok []) fields
      |> Result.map List.rev
    | _ -> Error "menu entry: field \"models\": expected an object"
  in
  Ok { m_relational_distance; m_edit_distance; m_models }

let collect f xs =
  List.fold_left
    (fun acc x ->
      let* acc = acc in
      let* y = f x in
      Ok (y :: acc))
    (Ok []) xs
  |> Result.map List.rev

let response_of_json j =
  match j with
  | Json.Obj _ ->
    let* id =
      match Json.to_int_opt (Json.member "id" j) with
      | Some n -> Ok n
      | None -> Error "field \"id\": expected an integer"
    in
    let* ok =
      match Json.to_bool_opt (Json.member "ok" j) with
      | Some b -> Ok b
      | None -> Error "field \"ok\": expected a boolean"
    in
    if not ok then
      let* e = field_string j "error" in
      Ok { s_id = id; s_result = Error e }
    else
      let* verb = field_string j "verb" in
      let* payload =
        match verb with
        | "open" ->
          let* revived = field_bool_default j "revived" false in
          Ok (Opened { revived })
        | "apply_edits" ->
          let* edits = field_int_default j "edits" 0 in
          Ok (Applied { edits })
        | "recheck" ->
          let* consistent = field_bool_default j "consistent" false in
          let* verdicts =
            collect verdict_of_json (Json.to_list (Json.member "verdicts" j))
          in
          let* stats = step_stats_of_json (Json.member "stats" j) in
          Ok (Checked { consistent; verdicts; stats })
        | "rerepair" ->
          let* outcome = field_string j "outcome" in
          let* menu =
            collect menu_entry_of_json (Json.to_list (Json.member "menu" j))
          in
          let* stats = step_stats_of_json (Json.member "stats" j) in
          Ok (Repaired { outcome; menu; stats })
        | "commit" -> Ok Committed
        | "snapshot" ->
          let* path = field_string j "path" in
          let* fingerprint = field_string j "fingerprint" in
          Ok (Snapshotted { path; fingerprint })
        | "close" -> Ok Closed
        | "stats" -> Ok (Stats_snapshot (Json.member "stats" j))
        | v -> Error (Printf.sprintf "unknown verb %S in response" v)
      in
      Ok { s_id = id; s_result = Ok payload }
  | _ -> Error "response frame: expected a JSON object"

let parse_response line =
  match Json.of_string line with
  | Error e -> Error (Printf.sprintf "response frame: %s" e)
  | Ok j -> response_of_json j
