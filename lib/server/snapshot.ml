module Json = Obs.Json

type t = {
  spec : Protocol.open_spec;
  values : Mdl.Value.t list;
  fingerprint : string;
}

let format_version = "mdqvtr-snapshot/1"

let ( let* ) = Result.bind

(* ------------------------------------------------------------------ *)
(* Opening a session from an open_spec — shared by the open verb and
   revival, so both interpret the texts identically.                   *)

let hydrate ?(extra_values = []) ?symmetry (spec : Protocol.open_spec) =
  let* trans = Qvtr.Parser.parse ~file:"<open:transformation>" spec.o_transformation in
  let* mms = Mdl.Serialize.parse_metamodels spec.o_metamodels in
  let* models = Mdl.Serialize.parse_models mms spec.o_models in
  let metamodels = List.map (fun mm -> (Mdl.Metamodel.name mm, mm)) mms in
  let bound = List.map (fun m -> (Mdl.Model.name m, m)) models in
  let targets =
    match spec.o_targets with
    | [] ->
      Mdl.Ident.Set.of_list
        (List.map (fun p -> p.Qvtr.Ast.par_name) trans.Qvtr.Ast.t_params)
    | ts -> Echo.Target.of_list ts
  in
  let mode =
    if spec.o_standard then Qvtr.Semantics.Standard else Qvtr.Semantics.Extended
  in
  let* sess =
    Incr.Session.open_session ~mode ~slack_budget:spec.o_slack
      ~headroom:spec.o_headroom ~extra_values ?symmetry
      ~transformation:trans ~metamodels ~models:bound ~targets ()
  in
  Ok (sess, mms)

(* ------------------------------------------------------------------ *)
(* Capture                                                             *)

let payload_json { spec; values; _ } =
  Json.Obj
    [
      ("transformation", Json.String spec.Protocol.o_transformation);
      ("metamodels", Json.String spec.Protocol.o_metamodels);
      ("models", Json.String spec.Protocol.o_models);
      ( "targets",
        Json.List (List.map (fun t -> Json.String t) spec.Protocol.o_targets) );
      ("standard", Json.Bool spec.Protocol.o_standard);
      ("slack", Json.Int spec.Protocol.o_slack);
      ("headroom", Json.Int spec.Protocol.o_headroom);
      ( "values",
        Json.List
          (List.map
             (fun v -> Json.String (Mdl.Serialize.value_to_string v))
             values) );
    ]

let fingerprint_of t =
  Digest.to_hex (Digest.string (Json.to_string (payload_json t)))

let of_session ~(spec : Protocol.open_spec) sess =
  let models_text =
    Incr.Session.models sess
    |> List.map (fun (_, m) -> Mdl.Serialize.model_to_string m)
    |> String.concat "\n"
  in
  let spec = { spec with Protocol.o_models = models_text } in
  let values = Incr.Session.value_universe sess in
  let t = { spec; values; fingerprint = "" } in
  { t with fingerprint = fingerprint_of t }

let to_string t =
  Json.to_string
    (Json.Obj
       [
         ("format", Json.String format_version);
         ("fingerprint", Json.String (fingerprint_of t));
         ("payload", payload_json t);
       ])

let of_string text =
  let* j =
    match Json.of_string text with
    | Ok j -> Ok j
    | Error e -> Error (Printf.sprintf "snapshot: %s" e)
  in
  let* () =
    match Json.to_string_opt (Json.member "format" j) with
    | Some v when v = format_version -> Ok ()
    | Some v ->
      Error
        (Printf.sprintf "snapshot: format %S not supported (expected %S)" v
           format_version)
    | None -> Error "snapshot: missing \"format\" field"
  in
  let* claimed =
    match Json.to_string_opt (Json.member "fingerprint" j) with
    | Some f -> Ok f
    | None -> Error "snapshot: missing \"fingerprint\" field"
  in
  let payload = Json.member "payload" j in
  let actual = Digest.to_hex (Digest.string (Json.to_string payload)) in
  let* () =
    if String.equal claimed actual then Ok ()
    else
      Error
        (Printf.sprintf
           "snapshot: fingerprint mismatch (file claims %s, payload hashes to \
            %s) — the snapshot is corrupt or was edited"
           claimed actual)
  in
  let str k =
    match Json.to_string_opt (Json.member k payload) with
    | Some s -> Ok s
    | None -> Error (Printf.sprintf "snapshot: payload field %S missing" k)
  in
  let* o_transformation = str "transformation" in
  let* o_metamodels = str "metamodels" in
  let* o_models = str "models" in
  let o_targets =
    Json.to_list (Json.member "targets" payload)
    |> List.filter_map Json.to_string_opt
  in
  let o_standard =
    Option.value ~default:false
      (Json.to_bool_opt (Json.member "standard" payload))
  in
  let o_slack =
    Option.value ~default:2 (Json.to_int_opt (Json.member "slack" payload))
  in
  let o_headroom =
    Option.value ~default:6 (Json.to_int_opt (Json.member "headroom" payload))
  in
  let* values =
    List.fold_left
      (fun acc v ->
        let* acc = acc in
        match Json.to_string_opt v with
        | None -> Error "snapshot: \"values\" entries must be strings"
        | Some s ->
          let* value = Mdl.Serialize.value_of_string s in
          Ok (value :: acc))
      (Ok [])
      (Json.to_list (Json.member "values" payload))
    |> Result.map List.rev
  in
  Ok
    {
      spec =
        {
          Protocol.o_transformation;
          o_metamodels;
          o_models;
          o_targets;
          o_standard;
          o_slack;
          o_headroom;
        };
      values;
      fingerprint = claimed;
    }

(* ------------------------------------------------------------------ *)
(* Files                                                               *)

let sanitize name =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_' | '.' -> c
      | _ -> '_')
    name

let save ~dir ~name t =
  try
    if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
    let path = Filename.concat dir (sanitize name ^ ".snap") in
    let tmp = path ^ ".tmp" in
    let oc = open_out_bin tmp in
    output_string oc (to_string t);
    output_char oc '\n';
    close_out oc;
    Sys.rename tmp path;
    Ok path
  with
  | Unix.Unix_error (e, _, arg) ->
    Error (Printf.sprintf "snapshot: %s: %s" arg (Unix.error_message e))
  | Sys_error e -> Error (Printf.sprintf "snapshot: %s" e)

let load path =
  match
    let ic = open_in_bin path in
    let len = in_channel_length ic in
    let s = really_input_string ic len in
    close_in ic;
    s
  with
  | s -> of_string (String.trim s)
  | exception Sys_error e -> Error (Printf.sprintf "snapshot: %s" e)

let revive ?symmetry t = hydrate ~extra_values:t.values ?symmetry t.spec
