module Json = Obs.Json
module Metrics = Obs.Metrics
module P = Protocol
module Session = Incr.Session
module Ident = Mdl.Ident

(* ------------------------------------------------------------------ *)
(* Instrumentation                                                     *)

let m_requests = Metrics.counter "server.requests"
let m_errors = Metrics.counter "server.errors"
let m_opened = Metrics.counter "server.sessions_opened"
let m_evicted = Metrics.counter "server.sessions_evicted"
let m_revived = Metrics.counter "server.sessions_revived"
let m_closed = Metrics.counter "server.sessions_closed"
let m_coalesced = Metrics.counter "server.edits_coalesced"
let m_slow = Metrics.counter "server.slow_requests"
let g_live = Metrics.gauge "server.sessions_live"
let g_cold = Metrics.gauge "server.sessions_cold"
let g_depth = Metrics.gauge "server.queue_depth"
let g_depth_max = Metrics.gauge "server.queue_depth_max"
let g_age_max = Metrics.gauge "server.queue_age_max_s"
let h_warm = Metrics.histogram "server.recheck.warm_s"
let h_scratch = Metrics.histogram "server.recheck.scratch_s"
let h_latency verb = Metrics.histogram ("server.latency." ^ verb ^ "_s")

(* The end-to-end latency above splits into two per-verb halves:
   enqueue -> dequeue (how long the frame sat behind its session's
   earlier work — the congestion signal ROADMAP 1c needs) and
   dequeue -> reply (the work itself). *)
let h_queue_wait verb = Metrics.histogram ("server.queue_wait." ^ verb ^ "_s")
let h_service verb = Metrics.histogram ("server.service." ^ verb ^ "_s")

(* ------------------------------------------------------------------ *)
(* State                                                               *)

type live = {
  l_spec : P.open_spec;
  l_sess : Session.t;
  l_mms : Mdl.Metamodel.t list;
  mutable l_menu : Session.repair list;  (** last rerepair's menu *)
}

type entry_state =
  | Empty  (** open accepted, not yet processed (or failed) *)
  | Live of live
  | Cold of string  (** evicted; snapshot path *)

type pending_req = {
  p_req : P.req;
  p_enq : float;  (** enqueue wall time, for the latency histograms *)
  mutable p_deq : float;  (** dequeue wall time; [p_enq] until popped *)
  p_reply : P.resp -> unit;
}

type entry = {
  e_name : string;
  mutable e_state : entry_state;
  e_queue : pending_req Queue.t;
  mutable e_busy : bool;  (** a turn for this entry is scheduled/running *)
  mutable e_stamp : int;  (** LRU clock value of the last touch *)
}

type t = {
  pool : Parallel.Pool.t;
  mu : Mutex.t;  (** guards [tbl], queues, flags, [tick], [pending] *)
  tbl : (string, entry) Hashtbl.t;
  max_live : int;
  dir : string;
  mutable tick : int;
  mutable pending : int;  (** submitted, not yet replied *)
  done_cv : Condition.t;
  slow_s : float;  (** replies slower than this bump [server.slow_requests] *)
  reqlog : Reqlog.t;  (** every reply funnels through here, counted *)
  served : int Atomic.t;  (** frames answered (== reqlog count) *)
  symmetry : bool;  (** slack-symmetry chains on session repairs *)
}

let create ?(jobs = 1) ?(max_live = 64) ?(snapshot_dir = "./qvtr-sessions")
    ?slow_ms ?reqlog ?(symmetry = true) () =
  {
    pool = Parallel.Pool.create ~jobs;
    mu = Mutex.create ();
    tbl = Hashtbl.create 16;
    max_live = max 1 max_live;
    dir = snapshot_dir;
    tick = 0;
    pending = 0;
    done_cv = Condition.create ();
    slow_s =
      (match slow_ms with Some ms -> ms /. 1000. | None -> infinity);
    reqlog = (match reqlog with Some r -> r | None -> Reqlog.create ());
    served = Atomic.make 0;
    symmetry;
  }

let jobs t = Parallel.Pool.jobs t.pool

(* mu held. Besides the totals, track the worst single session: the
   deepest queue and the oldest still-queued head frame. A runaway
   client shows up here long before it dominates the totals. *)
let refresh_gauges t =
  let live = ref 0 and cold = ref 0 and depth = ref 0 in
  let depth_max = ref 0 and age_max = ref 0. in
  let now = Unix.gettimeofday () in
  Hashtbl.iter
    (fun _ e ->
      (match e.e_state with
      | Live _ -> incr live
      | Cold _ -> incr cold
      | Empty -> ());
      let d = Queue.length e.e_queue in
      depth := !depth + d;
      if d > !depth_max then depth_max := d;
      match Queue.peek_opt e.e_queue with
      | Some head ->
        let age = now -. head.p_enq in
        if age > !age_max then age_max := age
      | None -> ())
    t.tbl;
  Metrics.set_gauge g_live (float_of_int !live);
  Metrics.set_gauge g_cold (float_of_int !cold);
  Metrics.set_gauge g_depth (float_of_int !depth);
  Metrics.set_gauge g_depth_max (float_of_int !depth_max);
  Metrics.set_gauge g_age_max !age_max

(* mu held *)
let touch t e =
  t.tick <- t.tick + 1;
  e.e_stamp <- t.tick

(* mu held. Evict least-recently-used idle sessions until the live
   count is back under the cap. Busy entries and entries with queued
   work are never candidates (their state is owned by their turn); if
   everything is busy we run over cap until someone idles. *)
let rec evict_if_needed t =
  let live =
    Hashtbl.fold
      (fun _ e n -> match e.e_state with Live _ -> n + 1 | _ -> n)
      t.tbl 0
  in
  if live > t.max_live then begin
    let candidate =
      Hashtbl.fold
        (fun _ e acc ->
          match e.e_state with
          | Live _ when (not e.e_busy) && Queue.is_empty e.e_queue -> (
            match acc with
            | Some best when best.e_stamp <= e.e_stamp -> acc
            | _ -> Some e)
          | _ -> acc)
        t.tbl None
    in
    match candidate with
    | None -> ()
    | Some e -> (
      match e.e_state with
      | Live l -> (
        let snap = Snapshot.of_session ~spec:l.l_spec l.l_sess in
        match Snapshot.save ~dir:t.dir ~name:e.e_name snap with
        | Ok path ->
          e.e_state <- Cold path;
          Metrics.incr m_evicted;
          evict_if_needed t
        | Error _ -> ())
      | _ -> ())
  end

let stats_json t =
  Mutex.lock t.mu;
  refresh_gauges t;
  Mutex.unlock t.mu;
  Json.Obj
    [
      ("sessions_live", Json.Int (int_of_float (Metrics.gauge_value g_live)));
      ("sessions_cold", Json.Int (int_of_float (Metrics.gauge_value g_cold)));
      ("queue_depth", Json.Int (int_of_float (Metrics.gauge_value g_depth)));
      ("metrics", Metrics.to_json ());
    ]

(* Per-session view for the admin plane's [/sessions]: who is live,
   who is evicted, and whose queue is backing up — the runaway-client
   lens that aggregate gauges can't provide. *)
let sessions_json t =
  Mutex.lock t.mu;
  refresh_gauges t;
  let now = Unix.gettimeofday () in
  let rows =
    Hashtbl.fold
      (fun name e acc ->
        let state =
          match e.e_state with
          | Live _ -> "live"
          | Cold _ -> "cold"
          | Empty -> "opening"
        in
        let age =
          match Queue.peek_opt e.e_queue with
          | Some head -> now -. head.p_enq
          | None -> 0.
        in
        Json.Obj
          [
            ("session", Json.String name);
            ("state", Json.String state);
            ("queue_depth", Json.Int (Queue.length e.e_queue));
            ("queue_age_s", Json.Float age);
            ("busy", Json.Bool e.e_busy);
            ("lru_stamp", Json.Int e.e_stamp);
          ]
        :: acc)
      t.tbl []
  in
  Mutex.unlock t.mu;
  let rows =
    List.sort
      (fun a b ->
        compare
          (Json.to_string_opt (Json.member "session" a))
          (Json.to_string_opt (Json.member "session" b)))
      rows
  in
  Json.Obj [ ("sessions", Json.List rows) ]

let frames_served t = Atomic.get t.served
let request_log t = t.reqlog

(* ------------------------------------------------------------------ *)
(* Replies                                                             *)

(* Every reply — queued or answered inline at submit time — funnels
   through here exactly once, so [served] and the request log agree
   with the frame count by construction (E11 asserts reqlog records ==
   frames served). Timing split: [enq -> deq] is queue wait, [deq ->
   reply] is service; inline replies never queued, so their [deq] is
   their [enq] and the wait is zero. *)
let finish t ~(req : P.req) ~enq ~deq reply result =
  let verb = P.verb_of_request req.q_req in
  let now = Unix.gettimeofday () in
  let queue_wait = Float.max 0. (deq -. enq) in
  let service = Float.max 0. (now -. deq) in
  let total = Float.max 0. (now -. enq) in
  Metrics.observe (h_latency verb) total;
  Metrics.observe (h_queue_wait verb) queue_wait;
  Metrics.observe (h_service verb) service;
  let slow = total >= t.slow_s in
  if slow then Metrics.incr m_slow;
  (match result with Error _ -> Metrics.incr m_errors | Ok _ -> ());
  Reqlog.log t.reqlog ~ts:(Unix.gettimeofday ()) ~id:req.q_id
    ~session:req.q_session ~verb ~queue_wait_s:queue_wait ~service_s:service
    ~outcome:(match result with Ok _ -> "ok" | Error _ -> "error")
    ~slow;
  ignore (Atomic.fetch_and_add t.served 1);
  reply { P.s_id = req.q_id; s_result = result }

(* A reply answered synchronously at submit time (stats, addressing
   errors): no queue, no [pending] involvement. *)
let reply_inline t reply (req : P.req) enq result =
  finish t ~req ~enq ~deq:enq reply result

(* A reply for a queued request: same accounting plus [pending]. *)
let answer t pr result =
  finish t ~req:pr.p_req ~enq:pr.p_enq ~deq:pr.p_deq pr.p_reply result;
  Mutex.lock t.mu;
  t.pending <- t.pending - 1;
  if t.pending = 0 then Condition.broadcast t.done_cv;
  Mutex.unlock t.mu

(* ------------------------------------------------------------------ *)
(* Payload builders                                                    *)

let verdict_of (v : Session.verdict) =
  {
    P.w_relation = Ident.name v.Session.v_relation;
    w_sources = List.map Ident.name v.Session.v_direction.Qvtr.Ast.dep_sources;
    w_target = Ident.name v.Session.v_direction.Qvtr.Ast.dep_target;
    w_holds = v.Session.v_holds;
    w_blame =
      List.map
        (fun (f : Session.fact) ->
          ( Ident.name f.Session.f_rel,
            List.map Ident.name (Array.to_list f.Session.f_atoms) ))
        v.Session.v_blame;
  }

let menu_entry_of targets (r : Session.repair) =
  {
    P.m_relational_distance = r.Session.r_relational_distance;
    m_edit_distance = r.Session.r_edit_distance;
    m_models =
      List.filter_map
        (fun (p, m) ->
          if Ident.Set.mem p targets then
            Some (Ident.name p, Mdl.Serialize.model_to_string m)
          else None)
        r.Session.r_models;
  }

(* ------------------------------------------------------------------ *)
(* Turn execution (on a pool worker, or inline at jobs = 1)            *)

(* Revive a cold entry in place. Runs inside the entry's turn (so
   [e_state] is ours to mutate); only the state flip and the eviction
   sweep need the lock. *)
let ensure_live t e =
  match e.e_state with
  | Live l -> Ok l
  | Empty -> Error (Printf.sprintf "session %S is not open" e.e_name)
  | Cold path -> (
    let revived =
      Result.bind (Snapshot.load path) (fun snap ->
          Result.map
            (fun (sess, mms) -> (snap, sess, mms))
            (Snapshot.revive ~symmetry:t.symmetry snap))
    in
    match revived with
    | Error err -> Error (Printf.sprintf "revive %S: %s" e.e_name err)
    | Ok (snap, sess, mms) ->
      let l =
        { l_spec = snap.Snapshot.spec; l_sess = sess; l_mms = mms; l_menu = [] }
      in
      Mutex.lock t.mu;
      e.e_state <- Live l;
      Metrics.incr m_revived;
      evict_if_needed t;
      Mutex.unlock t.mu;
      Ok l)

let handle_open t e pr (spec : P.open_spec) =
  match e.e_state with
  | Live _ | Cold _ ->
    answer t pr (Error (Printf.sprintf "session %S already open" e.e_name))
  | Empty -> (
    match Snapshot.hydrate ~symmetry:t.symmetry spec with
    | Error err ->
      (* leave no husk behind: the name can be re-opened *)
      Mutex.lock t.mu;
      Hashtbl.remove t.tbl e.e_name;
      refresh_gauges t;
      Mutex.unlock t.mu;
      answer t pr (Error err)
    | Ok (sess, mms) ->
      Mutex.lock t.mu;
      e.e_state <- Live { l_spec = spec; l_sess = sess; l_mms = mms; l_menu = [] };
      Metrics.incr m_opened;
      evict_if_needed t;
      refresh_gauges t;
      Mutex.unlock t.mu;
      answer t pr (Ok (P.Opened { revived = false })))

let handle_close t e pr =
  (match e.e_state with
  | Live _ -> Metrics.incr m_closed
  | Cold _ | Empty -> ());
  Mutex.lock t.mu;
  Hashtbl.remove t.tbl e.e_name;
  e.e_state <- Empty;
  refresh_gauges t;
  Mutex.unlock t.mu;
  answer t pr (Ok P.Closed);
  (* requests pipelined behind the close bounce with a clear error *)
  Mutex.lock t.mu;
  let rec drain_q () =
    match Queue.take_opt e.e_queue with
    | None -> ()
    | Some stale ->
      Mutex.unlock t.mu;
      answer t stale (Error (Printf.sprintf "session %S closed" e.e_name));
      Mutex.lock t.mu;
      drain_q ()
  in
  drain_q ();
  refresh_gauges t;
  Mutex.unlock t.mu

let observe_recheck (stats : Session.step_stats) =
  Metrics.observe
    (if stats.Session.translated then h_scratch else h_warm)
    stats.Session.wall

let handle_simple t e pr =
  match ensure_live t e with
  | Error err -> answer t pr (Error err)
  | Ok l -> (
    match pr.p_req.P.q_req with
    | P.Recheck { blame } -> (
      match Session.recheck ~blame l.l_sess with
      | Error err -> answer t pr (Error err)
      | Ok report ->
        observe_recheck report.Session.check_stats;
        answer t pr
          (Ok
             (P.Checked
                {
                  consistent = report.Session.consistent;
                  verdicts = List.map verdict_of report.Session.verdicts;
                  stats = report.Session.check_stats;
                })))
    | P.Rerepair { limit } -> (
      match Session.rerepair ~limit l.l_sess with
      | Error err -> answer t pr (Error err)
      | Ok report ->
        let outcome, repairs =
          match report.Session.outcome with
          | Session.Already_consistent -> ("already_consistent", [])
          | Session.Cannot_restore -> ("cannot_restore", [])
          | Session.Repaired rs -> ("repaired", rs)
        in
        l.l_menu <- repairs;
        let targets = Session.targets l.l_sess in
        answer t pr
          (Ok
             (P.Repaired
                {
                  outcome;
                  menu = List.map (menu_entry_of targets) repairs;
                  stats = report.Session.repair_stats;
                })))
    | P.Commit { choice } -> (
      match List.nth_opt l.l_menu choice with
      | None ->
        answer t pr
          (Error
             (Printf.sprintf
                "commit: no repair %d in the last menu (%d entries; run \
                 rerepair first)"
                choice (List.length l.l_menu)))
      | Some repair -> (
        match Session.commit l.l_sess repair with
        | Error err -> answer t pr (Error err)
        | Ok () ->
          l.l_menu <- [];
          answer t pr (Ok P.Committed)))
    | P.Snapshot -> (
      let snap = Snapshot.of_session ~spec:l.l_spec l.l_sess in
      match Snapshot.save ~dir:t.dir ~name:e.e_name snap with
      | Error err -> answer t pr (Error err)
      | Ok path ->
        answer t pr
          (Ok
             (P.Snapshotted
                { path; fingerprint = snap.Snapshot.fingerprint })))
    | P.Open _ | P.Apply_edits _ | P.Close | P.Stats ->
      (* routed elsewhere *)
      answer t pr (Error "internal: verb misrouted"))

(* A burst of consecutive apply_edits frames, coalesced into one
   session batch. Each frame's models are validated and diffed against
   the state as projected by the frames before it; frames that fail to
   parse are answered individually and drop out of the batch. *)
let handle_edits t e prs =
  match ensure_live t e with
  | Error err -> List.iter (fun pr -> answer t pr (Error err)) prs
  | Ok l ->
    let projected = ref (Session.models l.l_sess) in
    (* per-parameter scripts, concatenated in arrival order: applying
       the merged script to the pre-batch model replays the frames
       sequentially (Edit.apply_script folds left) *)
    let merged : (Ident.t * Mdl.Edit.t list) list ref = ref [] in
    let parsed =
      List.map
        (fun pr ->
          let text =
            match pr.p_req.P.q_req with
            | P.Apply_edits { models } -> models
            | _ -> assert false
          in
          match Mdl.Serialize.parse_models l.l_mms text with
          | Error err -> (pr, Error (Printf.sprintf "apply_edits: %s" err))
          | Ok ms -> (
            let unknown =
              List.find_opt
                (fun m ->
                  not (List.mem_assoc (Mdl.Model.name m) !projected))
                ms
            in
            match unknown with
            | Some m ->
              ( pr,
                Error
                  (Printf.sprintf "apply_edits: unknown parameter %s"
                     (Ident.name (Mdl.Model.name m))) )
            | None ->
              let edits = ref 0 in
              List.iter
                (fun m ->
                  let p = Mdl.Model.name m in
                  let before = List.assoc p !projected in
                  let script = Mdl.Diff.script before m in
                  edits := !edits + List.length script;
                  projected :=
                    List.map
                      (fun (q, old) ->
                        if Ident.equal q p then (q, m) else (q, old))
                      !projected;
                  if script <> [] then
                    merged :=
                      if List.mem_assoc p !merged then
                        List.map
                          (fun (q, sc) ->
                            if Ident.equal q p then (q, sc @ script)
                            else (q, sc))
                          !merged
                      else !merged @ [ (p, script) ])
                ms;
              (pr, Ok !edits)))
        prs
    in
    (match List.length prs with
    | n when n > 1 -> Metrics.add m_coalesced (n - 1)
    | _ -> ());
    let apply_result =
      match !merged with
      | [] -> Ok ()
      | batch -> Session.apply_edits l.l_sess batch
    in
    List.iter
      (fun (pr, r) ->
        match (r, apply_result) with
        | Error err, _ -> answer t pr (Error err)
        | Ok _, Error err ->
          answer t pr (Error (Printf.sprintf "apply_edits: %s" err))
        | Ok edits, Ok () -> answer t pr (Ok (P.Applied { edits })))
      parsed

(* mu held: pop this turn's work — one request, or every consecutive
   leading apply_edits frame (the coalescing window). *)
let pop_batch e =
  let deq = Unix.gettimeofday () in
  let popped =
    match Queue.peek_opt e.e_queue with
    | None -> []
    | Some { p_req = { P.q_req = P.Apply_edits _; _ }; _ } ->
      let rec take acc =
        match Queue.peek_opt e.e_queue with
        | Some { p_req = { P.q_req = P.Apply_edits _; _ }; _ } ->
          take (Queue.pop e.e_queue :: acc)
        | _ -> List.rev acc
      in
      take []
    | Some _ -> [ Queue.pop e.e_queue ]
  in
  List.iter (fun pr -> pr.p_deq <- deq) popped;
  popped

let run_turn t e =
  Mutex.lock t.mu;
  let batch = pop_batch e in
  touch t e;
  refresh_gauges t;
  Mutex.unlock t.mu;
  match batch with
  | [] -> ()
  | [ pr ] -> (
    let verb = P.verb_of_request pr.p_req.P.q_req in
    Obs.Trace.with_span ~name:("server." ^ verb) @@ fun () ->
    match pr.p_req.P.q_req with
    | P.Open spec -> handle_open t e pr spec
    | P.Close -> handle_close t e pr
    | P.Apply_edits _ -> handle_edits t e [ pr ]
    | _ -> handle_simple t e pr)
  | prs ->
    Obs.Trace.with_span ~name:"server.apply_edits" @@ fun () ->
    handle_edits t e prs

(* One turn, then hand the session back to the pool's queue tail so
   other sessions interleave. At jobs = 1 the pool runs tasks inline
   at submit time, so rescheduling through it would recurse — loop
   here instead. *)
let rec run_turns t e =
  run_turn t e;
  Mutex.lock t.mu;
  let more = not (Queue.is_empty e.e_queue) in
  if not more then begin
    e.e_busy <- false;
    (* an entry going idle may be the candidate an over-cap sweep was
       missing (its reply races the idle flip) — re-run the sweep *)
    evict_if_needed t;
    refresh_gauges t
  end;
  Mutex.unlock t.mu;
  if more then begin
    if Parallel.Pool.jobs t.pool = 1 then run_turns t e
    else ignore (Parallel.Pool.submit t.pool (fun _tok -> run_turns t e))
  end

let schedule t e = ignore (Parallel.Pool.submit t.pool (fun _tok -> run_turns t e))

(* ------------------------------------------------------------------ *)
(* Submission                                                          *)

let submit t (req : P.req) reply =
  Metrics.incr m_requests;
  let enq = Unix.gettimeofday () in
  match req.q_req with
  | P.Stats ->
    reply_inline t reply req enq (Ok (P.Stats_snapshot (stats_json t)))
  | _ -> (
    Mutex.lock t.mu;
    let resolved =
      match (Hashtbl.find_opt t.tbl req.q_session, req.q_req) with
      | None, P.Open _ ->
        let e =
          {
            e_name = req.q_session;
            e_state = Empty;
            e_queue = Queue.create ();
            e_busy = false;
            e_stamp = 0;
          }
        in
        Hashtbl.replace t.tbl req.q_session e;
        Ok e
      | None, _ -> Error (Printf.sprintf "unknown session %S" req.q_session)
      | Some _, P.Open _ ->
        Error (Printf.sprintf "session %S already open" req.q_session)
      | Some e, _ -> Ok e
    in
    match resolved with
    | Error msg ->
      Mutex.unlock t.mu;
      reply_inline t reply req enq (Error msg)
    | Ok e ->
      t.pending <- t.pending + 1;
      touch t e;
      Queue.push
        { p_req = req; p_enq = enq; p_deq = enq; p_reply = reply }
        e.e_queue;
      refresh_gauges t;
      let start = not e.e_busy in
      if start then e.e_busy <- true;
      Mutex.unlock t.mu;
      if start then schedule t e)

let call t req =
  let mu = Mutex.create () in
  let cv = Condition.create () in
  let slot = ref None in
  submit t req (fun resp ->
      Mutex.lock mu;
      slot := Some resp;
      Condition.signal cv;
      Mutex.unlock mu);
  Mutex.lock mu;
  while !slot = None do
    Condition.wait cv mu
  done;
  Mutex.unlock mu;
  Option.get !slot

let drain t =
  Mutex.lock t.mu;
  while t.pending > 0 do
    Condition.wait t.done_cv t.mu
  done;
  Mutex.unlock t.mu

let shutdown t =
  drain t;
  Parallel.Pool.shutdown t.pool
