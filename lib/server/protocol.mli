(** The `qvtr serve` wire protocol: framed JSONL requests/responses.

    One request per line, one response per line, both canonical
    {!Obs.Json} objects. Every request carries a client-chosen [id]
    echoed in its response (responses to one session come back in
    request order; responses across sessions interleave freely), and —
    except for [stats] — a [session] string naming the tenant it
    addresses. The verbs mirror {!Incr.Session} one-to-one:

    {v
    {"id":1,"verb":"open","session":"s1","transformation":"...",
     "metamodels":"...","models":"...","targets":["cf1"],
     "standard":false,"slack":2,"headroom":6}
    {"id":2,"verb":"apply_edits","session":"s1","models":"model cf1 ..."}
    {"id":3,"verb":"recheck","session":"s1","blame":false}
    {"id":4,"verb":"rerepair","session":"s1","limit":16}
    {"id":5,"verb":"commit","session":"s1","choice":0}
    {"id":6,"verb":"snapshot","session":"s1"}
    {"id":7,"verb":"close","session":"s1"}
    {"id":8,"verb":"stats"}
    v}

    [apply_edits] carries a {e model snapshot}, not an edit list: one
    or more model blocks in {!Mdl.Serialize} concrete syntax, which the
    server diffs against the session's current state (parameters not
    restated are unchanged) — exactly the replay-block semantics of
    {!Incr.Replay}, so an editor can send "what the models look like
    now" after every save.

    This module is the codec only; {!Engine} interprets requests and
    {!Net} frames them over a socket. The [qvtr session] CLI drives
    {!Engine} through these same request values, so CLI and wire
    semantics cannot drift. *)

type open_spec = {
  o_transformation : string;  (** QVT-R concrete syntax *)
  o_metamodels : string;  (** [metamodel] blocks, {!Mdl.Serialize} *)
  o_models : string;  (** [model] blocks, one per parameter *)
  o_targets : string list;  (** repairable parameters; [[]] = all *)
  o_standard : bool;  (** OMG standard checking semantics *)
  o_slack : int;  (** {!Incr.Session.open_session} [slack_budget] *)
  o_headroom : int;
}

type request =
  | Open of open_spec
  | Apply_edits of { models : string }
  | Recheck of { blame : bool }
  | Rerepair of { limit : int }
  | Commit of { choice : int }  (** index into the last rerepair menu *)
  | Snapshot  (** force a durable snapshot; the session stays live *)
  | Close
  | Stats

type req = {
  q_id : int;
  q_session : string;  (** [""] for {!Stats} *)
  q_req : request;
}

type verdict = {
  w_relation : string;
  w_sources : string list;
  w_target : string;
  w_holds : bool;
  w_blame : (string * string list) list;  (** fact relation, atom tuple *)
}

type menu_entry = {
  m_relational_distance : int;
  m_edit_distance : int;
  m_models : (string * string) list;
      (** target parameter -> repaired model, serialized *)
}

type payload =
  | Opened of { revived : bool }
      (** [revived]: the session was resurrected from a snapshot
          rather than freshly opened (never on [open] itself; see
          {!Engine}) *)
  | Applied of { edits : int }  (** edit operations in the diff *)
  | Checked of {
      consistent : bool;
      verdicts : verdict list;
      stats : Incr.Session.step_stats;
    }
  | Repaired of {
      outcome : string;
          (** ["repaired"], ["already_consistent"] or
              ["cannot_restore"] *)
      menu : menu_entry list;
      stats : Incr.Session.step_stats;
    }
  | Committed
  | Snapshotted of { path : string; fingerprint : string }
  | Closed
  | Stats_snapshot of Obs.Json.t

type resp = {
  s_id : int;
  s_result : (payload, string) result;
}

val verb_of_request : request -> string

val request_to_json : req -> Obs.Json.t
val request_to_string : req -> string

val request_of_json : Obs.Json.t -> (req, string) result
val parse_request : string -> (req, string) result
(** Strict parse of one frame line. Unknown verbs, missing mandatory
    fields and type mismatches are reported with the offending field;
    the [id] is recovered whenever the frame is an object with an
    integer [id], so the server can still address its error reply. *)

val step_stats_to_json : Incr.Session.step_stats -> Obs.Json.t

val response_to_json : verb:string -> resp -> Obs.Json.t
val response_to_string : verb:string -> resp -> string
(** [verb] tags the response object (["verb"] field) so clients can
    dispatch without correlating ids themselves. *)

val response_of_json : Obs.Json.t -> (resp, string) result
val parse_response : string -> (resp, string) result
