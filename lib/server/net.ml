module Json = Obs.Json
module P = Protocol

type addr =
  | Unix_sock of string
  | Tcp of int

type conn = {
  fd : Unix.file_descr;
  buf : Buffer.t;  (** bytes read, not yet framed into lines *)
  wmu : Mutex.t;  (** serializes reply writes from pool workers *)
  mutable alive : bool;
}

let write_all fd s =
  let b = Bytes.of_string s in
  let n = Bytes.length b in
  let off = ref 0 in
  while !off < n do
    off := !off + Unix.write fd b !off (n - !off)
  done

(* Replies race with connection teardown (client gone, worker still
   finishing); a failed write just marks the connection dead. *)
let send conn line =
  Mutex.lock conn.wmu;
  (try if conn.alive then write_all conn.fd (line ^ "\n")
   with Unix.Unix_error _ | Sys_error _ -> conn.alive <- false);
  Mutex.unlock conn.wmu

(* Best-effort id recovery from an unparseable frame, so the error
   reply can still be correlated. *)
let recover_id line =
  match Json.of_string line with
  | Ok j -> Option.value ~default:(-1) (Json.to_int_opt (Json.member "id" j))
  | Error _ -> -1

let m_errors = Obs.Metrics.counter "server.errors"

let handle_line ~engine conn line =
  if String.trim line <> "" then
    match P.parse_request line with
    | Error err ->
      Obs.Metrics.incr m_errors;
      send conn
        (P.response_to_string ~verb:"error"
           { P.s_id = recover_id line; s_result = Error err })
    | Ok req ->
      let verb = P.verb_of_request req.P.q_req in
      Engine.submit engine req (fun resp ->
          send conn (P.response_to_string ~verb resp))

(* Split off every complete line in the connection buffer. *)
let drain_lines ~engine conn =
  let data = Buffer.contents conn.buf in
  match String.rindex_opt data '\n' with
  | None -> ()
  | Some last ->
    Buffer.clear conn.buf;
    Buffer.add_string conn.buf
      (String.sub data (last + 1) (String.length data - last - 1));
    String.sub data 0 last |> String.split_on_char '\n'
    |> List.iter (handle_line ~engine conn)

let serve ?(ready = fun () -> ()) ~engine addr =
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  match
    match addr with
    | Unix_sock path ->
      (try Unix.unlink path with Unix.Unix_error _ -> ());
      let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.bind sock (Unix.ADDR_UNIX path);
      sock
    | Tcp port ->
      let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.setsockopt sock Unix.SO_REUSEADDR true;
      Unix.bind sock (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
      sock
  with
  | exception Unix.Unix_error (e, _, arg) ->
    Error (Printf.sprintf "serve: %s: %s" arg (Unix.error_message e))
  | sock ->
    Unix.listen sock 64;
    ready ();
    let conns = ref [] in
    let chunk = Bytes.create 65536 in
    let rec loop () =
      conns := List.filter (fun c -> c.alive) !conns;
      let fds = sock :: List.map (fun c -> c.fd) !conns in
      let readable, _, _ =
        try
          let r, w, x = Unix.select fds [] [] (-1.0) in
          (r, w, x)
        with Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
      in
      List.iter
        (fun fd ->
          if fd = sock then begin
            match Unix.accept sock with
            | client, _ ->
              conns :=
                {
                  fd = client;
                  buf = Buffer.create 4096;
                  wmu = Mutex.create ();
                  alive = true;
                }
                :: !conns
            | exception Unix.Unix_error _ -> ()
          end
          else
            match List.find_opt (fun c -> c.fd = fd) !conns with
            | None -> ()
            | Some conn -> (
              match Unix.read conn.fd chunk 0 (Bytes.length chunk) with
              | 0 ->
                Mutex.lock conn.wmu;
                conn.alive <- false;
                (try Unix.close conn.fd with Unix.Unix_error _ -> ());
                Mutex.unlock conn.wmu
              | n ->
                Buffer.add_subbytes conn.buf chunk 0 n;
                drain_lines ~engine conn
              | exception Unix.Unix_error _ ->
                Mutex.lock conn.wmu;
                conn.alive <- false;
                (try Unix.close conn.fd with Unix.Unix_error _ -> ());
                Mutex.unlock conn.wmu))
        readable;
      loop ()
    in
    loop ()
