module Json = Obs.Json
module P = Protocol

type addr =
  | Unix_sock of string
  | Tcp of int

(* The JSONL plane mutates sessions; the admin plane is read-only
   HTTP/1.0 (one request, one response, close) for scrapers. *)
type kind =
  | Jsonl
  | Admin

type conn = {
  fd : Unix.file_descr;
  kind : kind;
  buf : Buffer.t;  (** bytes read, not yet framed into lines *)
  wmu : Mutex.t;  (** serializes reply writes from pool workers *)
  proto_errors : int ref;  (** malformed frames on this connection *)
  mutable alive : bool;
}

let write_all fd s =
  let b = Bytes.of_string s in
  let n = Bytes.length b in
  let off = ref 0 in
  while !off < n do
    off := !off + Unix.write fd b !off (n - !off)
  done

(* Replies race with connection teardown (client gone, worker still
   finishing); a failed write just marks the connection dead. *)
let send conn line =
  Mutex.lock conn.wmu;
  (try if conn.alive then write_all conn.fd (line ^ "\n")
   with Unix.Unix_error _ | Sys_error _ -> conn.alive <- false);
  Mutex.unlock conn.wmu

(* Best-effort id recovery from an unparseable frame, so the error
   reply can still be correlated. *)
let recover_id line =
  match Json.of_string line with
  | Ok j -> Option.value ~default:(-1) (Json.to_int_opt (Json.member "id" j))
  | Error _ -> -1

let m_errors = Obs.Metrics.counter "server.errors"
let m_proto = Obs.Metrics.counter "server.protocol_errors"
let g_conns = Obs.Metrics.gauge "server.connections"

(* One JSONL frame. Split out (and exported) so tests can drive the
   framing/error path without a socket. Frames that fail strict
   parsing never reach the engine: they are counted globally
   ([server.protocol_errors]), tallied per connection, and answered
   with an error that carries the tally — a client that keeps sending
   garbage can see its own error budget grow. *)
let feed ~engine ~proto_errors ~send line =
  if String.trim line <> "" then
    match P.parse_request line with
    | Error err ->
      Obs.Metrics.incr m_errors;
      Obs.Metrics.incr m_proto;
      incr proto_errors;
      let err =
        Printf.sprintf "%s (protocol error %d on this connection)" err
          !proto_errors
      in
      send
        (P.response_to_string ~verb:"error"
           { P.s_id = recover_id line; s_result = Error err })
    | Ok req ->
      let verb = P.verb_of_request req.P.q_req in
      Engine.submit engine req (fun resp ->
          send (P.response_to_string ~verb resp))

let handle_line ~engine conn line =
  feed ~engine ~proto_errors:conn.proto_errors ~send:(send conn) line

(* Split off every complete line in the connection buffer. *)
let drain_lines ~engine conn =
  let data = Buffer.contents conn.buf in
  match String.rindex_opt data '\n' with
  | None -> ()
  | Some last ->
    Buffer.clear conn.buf;
    Buffer.add_string conn.buf
      (String.sub data (last + 1) (String.length data - last - 1));
    String.sub data 0 last |> String.split_on_char '\n'
    |> List.iter (handle_line ~engine conn)

(* ------------------------------------------------------------------ *)
(* Admin plane: minimal HTTP/1.0, GET only, one response then close.  *)

let http_response ~status ~content_type body =
  Printf.sprintf
    "HTTP/1.0 %s\r\nContent-Type: %s\r\nContent-Length: %d\r\nConnection: \
     close\r\n\r\n%s"
    status content_type (String.length body) body

(* [request_line] is the first line of the HTTP request, e.g.
   "GET /metrics HTTP/1.0". Exported for tests. *)
let admin_response ~engine request_line =
  match String.split_on_char ' ' (String.trim request_line) with
  | meth :: _ when meth <> "GET" ->
    http_response ~status:"405 Method Not Allowed" ~content_type:"text/plain"
      "admin plane is read-only: GET /metrics, /healthz, /sessions\n"
  | [ "GET"; target ] | [ "GET"; target; _ ] -> (
    match target with
    | "/metrics" ->
      (* refresh engine gauges so a scrape between requests still sees
         current depths; the registry render itself is lock-free *)
      ignore (Engine.stats_json engine);
      http_response ~status:"200 OK"
        ~content_type:"text/plain; version=0.0.4"
        (Obs.Metrics.to_prometheus ())
    | "/healthz" ->
      http_response ~status:"200 OK" ~content_type:"text/plain" "ok\n"
    | "/sessions" ->
      http_response ~status:"200 OK" ~content_type:"application/json"
        (Json.to_string (Engine.sessions_json engine) ^ "\n")
    | _ ->
      http_response ~status:"404 Not Found" ~content_type:"text/plain"
        "unknown admin path: try /metrics, /healthz, /sessions\n")
  | _ ->
    http_response ~status:"400 Bad Request" ~content_type:"text/plain"
      "malformed request line\n"

(* An admin connection is done as soon as we have the request line;
   HTTP/1.0 clients send headers after it but we never need them. *)
let admin_step ~engine conn =
  let data = Buffer.contents conn.buf in
  match String.index_opt data '\n' with
  | None -> ()
  | Some eol ->
    let line = String.sub data 0 eol in
    Mutex.lock conn.wmu;
    (try if conn.alive then write_all conn.fd (admin_response ~engine line)
     with Unix.Unix_error _ | Sys_error _ -> ());
    conn.alive <- false;
    (try Unix.close conn.fd with Unix.Unix_error _ -> ());
    Mutex.unlock conn.wmu

(* ------------------------------------------------------------------ *)

let bind_tcp port =
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt sock Unix.SO_REUSEADDR true;
  Unix.bind sock (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  sock

let serve ?(ready = fun () -> ()) ?admin ~engine addr =
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  match
    let main =
      match addr with
      | Unix_sock path ->
        (try Unix.unlink path with Unix.Unix_error _ -> ());
        let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        Unix.bind sock (Unix.ADDR_UNIX path);
        sock
      | Tcp port -> bind_tcp port
    in
    let admin_sock = Option.map bind_tcp admin in
    (main, admin_sock)
  with
  | exception Unix.Unix_error (e, _, arg) ->
    Error (Printf.sprintf "serve: %s: %s" arg (Unix.error_message e))
  | sock, admin_sock ->
    Unix.listen sock 64;
    Option.iter (fun s -> Unix.listen s 64) admin_sock;
    ready ();
    let conns = ref [] in
    let chunk = Bytes.create 65536 in
    let accept_into kind lsock =
      match Unix.accept lsock with
      | client, _ ->
        conns :=
          {
            fd = client;
            kind;
            buf = Buffer.create 4096;
            wmu = Mutex.create ();
            proto_errors = ref 0;
            alive = true;
          }
          :: !conns
      | exception Unix.Unix_error _ -> ()
    in
    let close_conn conn =
      Mutex.lock conn.wmu;
      conn.alive <- false;
      (try Unix.close conn.fd with Unix.Unix_error _ -> ());
      Mutex.unlock conn.wmu
    in
    let rec loop () =
      conns := List.filter (fun c -> c.alive) !conns;
      Obs.Metrics.set_gauge g_conns (float_of_int (List.length !conns));
      let listeners =
        sock :: (match admin_sock with Some s -> [ s ] | None -> [])
      in
      let fds = listeners @ List.map (fun c -> c.fd) !conns in
      let readable, _, _ =
        try
          let r, w, x = Unix.select fds [] [] (-1.0) in
          (r, w, x)
        with Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
      in
      List.iter
        (fun fd ->
          if fd = sock then accept_into Jsonl sock
          else if admin_sock = Some fd then accept_into Admin fd
          else
            match List.find_opt (fun c -> c.fd = fd) !conns with
            | None -> ()
            | Some conn -> (
              match Unix.read conn.fd chunk 0 (Bytes.length chunk) with
              | 0 -> close_conn conn
              | n -> (
                Buffer.add_subbytes conn.buf chunk 0 n;
                match conn.kind with
                | Jsonl -> drain_lines ~engine conn
                | Admin -> admin_step ~engine conn)
              | exception Unix.Unix_error _ -> close_conn conn))
        readable;
      loop ()
    in
    loop ()
