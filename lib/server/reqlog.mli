(** Structured JSONL request log: one record per protocol frame the
    engine answers, written at reply time so the record carries the
    full measured timing split.

    Record schema (one JSON object per line):
    {v
    {"ts": <unix epoch seconds of the reply>,
     "id": <request id from the frame>,
     "session": <session name>,
     "verb": "open" | "recheck" | ... | "stats",
     "queue_wait_s": <enqueue -> dequeue>,
     "service_s": <dequeue -> reply>,
     "outcome": "ok" | "error",
     "slow": true | false}
    v}

    A log without a path is a pure counter sink: the engine still
    funnels every reply through it, so [count] == frames served holds
    (and is asserted by E11) whether or not records hit disk. Writes
    are serialized by an internal mutex — pool workers reply
    concurrently. *)

type t

val create : ?path:string -> unit -> t
(** [create ~path ()] opens (appends to) a JSONL file; without [path]
    the log only counts. @raise Sys_error if the path is unwritable. *)

val log :
  t ->
  ts:float ->
  id:int ->
  session:string ->
  verb:string ->
  queue_wait_s:float ->
  service_s:float ->
  outcome:string ->
  slow:bool ->
  unit

val count : t -> int
(** Records logged so far (== protocol frames answered by the engine
    this log is attached to). *)

val path : t -> string option
val close : t -> unit
(** Flush and close the file, if any. Further [log] calls still
    count but no longer write. *)
