(** The multi-session request engine behind [qvtr serve].

    The engine owns a table of named sessions, each an
    {!Incr.Session.t} plus a FIFO of pending requests, and schedules
    their work on a {!Parallel.Pool}:

    - {b one in-flight request per session} — requests to one session
      are answered strictly in arrival order, so a client that sends
      [apply_edits] then [recheck] always sees the recheck of its own
      edit;
    - {b fair across sessions} — each turn processes one request (or
      one coalesced edit burst) and then re-enqueues the session at
      the back of the pool queue, so a chatty session cannot starve
      the others;
    - {b edit coalescing} — consecutive [apply_edits] frames queued on
      one session collapse into a single {!Incr.Session.apply_edits}
      batch (each frame still gets its own reply); an editor that
      saves five times between rechecks pays one re-pin, not five;
    - {b LRU eviction} — at most [max_live] sessions keep their
      solver state in memory. Opening or reviving one more evicts the
      least-recently-used idle session to a durable {!Snapshot} in
      [snapshot_dir]; the next request addressed to an evicted
      session transparently revives it (same verdicts, menus and
      distances — {!Snapshot}'s round-trip guarantee).

    Instrumentation: per-verb latency histograms
    ([server.latency.<verb>_s], enqueue to reply), split into
    [server.queue_wait.<verb>_s] (enqueue to dequeue — how long the
    frame sat behind its session's earlier work) and
    [server.service.<verb>_s] (dequeue to reply — the work itself);
    [server.recheck.warm_s]/[server.recheck.scratch_s] (split on
    whether the recheck had to translate), counters
    [server.requests], [server.errors], [server.slow_requests]
    (replies whose end-to-end latency crossed [slow_ms]),
    [server.sessions_opened], [server.sessions_evicted],
    [server.sessions_revived], [server.sessions_closed],
    [server.edits_coalesced], and gauges [server.sessions_live],
    [server.sessions_cold], [server.queue_depth],
    [server.queue_depth_max] / [server.queue_age_max_s] (the worst
    single session's backlog — the runaway-client signal). Every verb
    runs under an [server.<verb>] {!Obs.Trace} span, and every reply
    is appended to a {!Reqlog} (counting even when no file is
    attached), so reqlog records == frames served always holds. *)

type t

val create :
  ?jobs:int ->
  ?max_live:int ->
  ?snapshot_dir:string ->
  ?slow_ms:float ->
  ?reqlog:Reqlog.t ->
  ?symmetry:bool ->
  unit ->
  t
(** [jobs] (default 1) sizes the worker pool — with 1, requests run
    inline at {!submit} time (deterministic; what the [qvtr session]
    CLI uses). [max_live] (default 64) caps in-memory sessions.
    [snapshot_dir] (default ["./qvtr-sessions"]) receives eviction
    snapshots; it is created on first use. [slow_ms] (default: never)
    sets the end-to-end latency above which a reply bumps
    [server.slow_requests] and is flagged [slow] in the request log.
    [reqlog] (default: a counter-only log) receives one record per
    reply. [symmetry] (default true) is forwarded to every session
    open and revival — the [qvtr serve --no-sbp] escape hatch that
    drops the guarded slack-symmetry chains from repair solves. *)

val jobs : t -> int

val submit : t -> Protocol.req -> (Protocol.resp -> unit) -> unit
(** Enqueue a request; the reply callback runs exactly once, on a
    pool worker ([jobs >= 2]) or inline before [submit] returns
    ([jobs = 1]). Callbacks must be thread-safe and non-blocking
    ({!Net} serializes socket writes under a per-connection lock).
    [stats] and addressing errors (unknown session, re-opening a live
    name) are answered immediately on the submitting thread. *)

val call : t -> Protocol.req -> Protocol.resp
(** Synchronous {!submit}. Must not be called from a task running on
    the engine's own pool (it would wait on itself); external threads
    and the CLI only. *)

val drain : t -> unit
(** Block until every submitted request has been replied to. *)

val stats_json : t -> Obs.Json.t
(** The [stats] verb's payload: live/cold session counts, queue
    depth, and the full {!Obs.Metrics} snapshot. *)

val sessions_json : t -> Obs.Json.t
(** The admin plane's [/sessions] payload:
    [{"sessions": [{"session", "state", "queue_depth", "queue_age_s",
    "busy", "lru_stamp"}, ...]}], sorted by session name. [state] is
    ["live"], ["cold"] (evicted to snapshot) or ["opening"] (open
    accepted, not yet hydrated). *)

val frames_served : t -> int
(** Total protocol frames answered (every reply path counts exactly
    once — equals {!Reqlog.count} of the engine's request log). *)

val request_log : t -> Reqlog.t
(** The engine's request log (the one passed to {!create}, or the
    internal counter-only log). *)

val shutdown : t -> unit
(** {!drain}, then stop the pool. Live sessions are {e not}
    snapshotted — [close]/[snapshot] are the durability verbs. *)
