module Json = Obs.Json

type t = {
  mu : Mutex.t;
  r_path : string option;
  mutable oc : out_channel option;
  mutable n : int;
}

let create ?path () =
  let oc =
    Option.map
      (fun p -> open_out_gen [ Open_append; Open_creat ] 0o644 p)
      path
  in
  { mu = Mutex.create (); r_path = path; oc; n = 0 }

let log t ~ts ~id ~session ~verb ~queue_wait_s ~service_s ~outcome ~slow =
  let line =
    Json.to_string
      (Json.Obj
         [
           ("ts", Json.Float ts);
           ("id", Json.Int id);
           ("session", Json.String session);
           ("verb", Json.String verb);
           ("queue_wait_s", Json.Float queue_wait_s);
           ("service_s", Json.Float service_s);
           ("outcome", Json.String outcome);
           ("slow", Json.Bool slow);
         ])
  in
  Mutex.lock t.mu;
  t.n <- t.n + 1;
  (match t.oc with
  | Some oc -> (
    try
      output_string oc line;
      output_char oc '\n';
      flush oc
    with Sys_error _ -> ())
  | None -> ());
  Mutex.unlock t.mu

let count t =
  Mutex.lock t.mu;
  let n = t.n in
  Mutex.unlock t.mu;
  n

let path t = t.r_path

let close t =
  Mutex.lock t.mu;
  (match t.oc with
  | Some oc ->
    (try close_out oc with Sys_error _ -> ());
    t.oc <- None
  | None -> ());
  Mutex.unlock t.mu
