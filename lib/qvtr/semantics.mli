(** The QVT-R checking semantics, standard and extended (paper §2).

    For a relation [R] with domains over models [M₁..Mₙ] and a
    checking dependency [S -> T], the directional check [R_{S->T}] is

    {v ∀ xs | ψ ∧ ⋀_{j∈S} πⱼ  ⇒  ∃ ys | π_T ∧ φ v}

    where [ψ]/[φ] are the when/where predicates, [πᵢ] the domain
    patterns, [xs] the variables of the source side and [ys] the
    remaining variables of the target side (§2.2). Domains outside
    [S ∪ {T}] are ignored — precisely the extra expressive power the
    paper adds over the standard semantics, which always universally
    quantifies over all other domains.

    The standard semantics (§2) is recovered by compiling with
    [`Standard], which forces the full dependency set
    [⋃ᵢ (dom R ∖ Mᵢ -> Mᵢ)] — the paper's conservativity remark
    makes this exactly the OMG semantics.

    Relation invocations in [when]/[where] are inlined with hygienic
    renaming, in the projected direction (§2.3); [where]-calls keep
    the caller's target, [when]-calls (and where-calls to relations
    with no target-side domain) check the callee's own directional
    conjunction at the bound roots. Inlining depth is bounded by
    [unroll]; beyond it a call compiles to [False], an
    under-approximation (only relevant when recursion was explicitly
    allowed at type-check time). *)

type mode =
  | Extended  (** honour [dependencies] blocks (paper §2.2) *)
  | Standard  (** ignore them: OMG standard semantics *)

type t

exception Compile_error of string
(** Raised on inputs the type checker should have rejected (used
    directly only when callers skip {!Typecheck}). *)

val create :
  ?mode:mode -> ?unroll:int -> ?narrow:bool -> Encode.t -> Typecheck.info -> t
(** [unroll] defaults to 8. [narrow] (default true) restricts the
    quantifier domain of a value variable matched by an attribute
    pattern [x.a = v] to the slot [x.a] instead of the whole value
    type — semantics-preserving (outside the slot the pattern equation
    is false anyway) and the key to polynomial-degree reduction in
    grounding; disable for the ablation benchmark. *)

val direction_formula :
  t -> Ast.relation -> Ast.dependency -> Relog.Ast.formula
(** The directional check [R_d] as a closed relational formula. *)

val relation_formulas : t -> Ast.relation -> (Ast.dependency * Relog.Ast.formula) list
(** One formula per effective dependency of the relation (under
    [Standard] mode the effective set is always the full one). *)

val top_formulas : t -> (Ast.relation * Ast.dependency * Relog.Ast.formula) list
(** Directional checks of all top relations. *)

val consistency_formula : t -> Relog.Ast.formula
(** The conjunction of all top directional checks — "the models are
    consistent". *)

val match_formula : t -> Ast.relation -> Relog.Ast.formula
(** The {e match} predicate of a relation: its domain root variables
    are free; all other variables are existentially quantified over
    patterns, [when] and [where]. Evaluating it under a binding of the
    roots tells whether those objects are related — the basis of QVT's
    trace (relation-instance) extraction, see {!Check.traces}. *)

val directional_consistency : t -> target:Mdl.Ident.t -> Relog.Ast.formula
(** Conjunction of only those top directional checks whose dependency
    target is [target] (used by the repair engine: when repairing
    model [T] one must enforce every check that constrains [T]). *)
