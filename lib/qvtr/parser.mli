(** Parser for the QVT-R concrete syntax, including the paper's
    proposed [dependencies] block. Grammar sketch:

    {v
    transformation T(p1 : MM1, ..., pn : MMn) {
      [top] relation R {
        v : String;  w : Class@p1;            // shared variables
        [checkonly|enforce] domain p1 x : C { f = expr, r = y : D {...} };
        ...
        [when  { pred; ... }]
        [where { pred; ... }]
        [dependencies { p1 p2 -> p3; ... }]    // paper §2.2 extension
      }
      ...
    }
    v}

    Expressions: literals ("s", 42, true, #lit), variables, [C@p]
    (allInstances), navigation [e.f], set operators [++] (union),
    [**] (intersection), [--] (difference). Predicates: [=], [<>],
    [in], [empty e], [nonempty e], [not], [and], [or], [implies],
    relation calls [R(x, y, z)], parentheses.

    The parser stamps declaration-level AST nodes with {!Loc.t} source
    spans (file taken from [?file]); diagnostics produced over a
    parsed AST can therefore point at the offending construct. *)

val parse : ?file:string -> string -> (Ast.transformation, string) result
(** Parse a single transformation. Error messages carry
    ["[file:] line L, col C"] positions. *)

val parse_located :
  ?file:string -> string -> (Ast.transformation, Loc.t * string) result
(** Like {!parse} but with the error position as a structured
    {!Loc.t} (for caret rendering and machine-readable output). *)

val parse_exn : string -> Ast.transformation

val to_string : Ast.transformation -> string
(** Render back to concrete syntax ({!Ast.pp_transformation}); the
    output re-parses to an AST equal up to {!Ast.strip_locs}. *)
