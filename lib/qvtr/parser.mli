(** Parser for the QVT-R concrete syntax, including the paper's
    proposed [dependencies] block. Grammar sketch:

    {v
    transformation T(p1 : MM1, ..., pn : MMn) {
      [top] relation R {
        v : String;  w : Class@p1;            // shared variables
        [checkonly|enforce] domain p1 x : C { f = expr, r = y : D {...} };
        ...
        [when  { pred; ... }]
        [where { pred; ... }]
        [dependencies { p1 p2 -> p3; ... }]    // paper §2.2 extension
      }
      ...
    }
    v}

    Expressions: literals ("s", 42, true, #lit), variables, [C@p]
    (allInstances), navigation [e.f], set operators [++] (union),
    [**] (intersection), [--] (difference). Predicates: [=], [<>],
    [in], [empty e], [nonempty e], [not], [and], [or], [implies],
    relation calls [R(x, y, z)], parentheses. *)

val parse : string -> (Ast.transformation, string) result
(** Parse a single transformation. Error messages carry positions. *)

val parse_exn : string -> Ast.transformation

val to_string : Ast.transformation -> string
(** Render back to concrete syntax ({!Ast.pp_transformation}); the
    output re-parses to an equal AST. *)
