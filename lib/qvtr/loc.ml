type t = {
  file : string;
  line : int;
  col : int;
  end_line : int;
  end_col : int;
}

let none = { file = ""; line = 0; col = 0; end_line = 0; end_col = 0 }

let is_none l = l.line = 0

let make ?(file = "") ~line ~col ?end_line ?end_col () =
  let end_line = Option.value ~default:line end_line in
  let end_col = Option.value ~default:col end_col in
  { file; line; col; end_line; end_col }

let merge a b =
  if is_none a then b
  else if is_none b then a
  else
    let file = if a.file <> "" then a.file else b.file in
    let line, col =
      if (a.line, a.col) <= (b.line, b.col) then (a.line, a.col)
      else (b.line, b.col)
    in
    let end_line, end_col =
      if (a.end_line, a.end_col) >= (b.end_line, b.end_col) then
        (a.end_line, a.end_col)
      else (b.end_line, b.end_col)
    in
    { file; line; col; end_line; end_col }

let pp ppf l =
  if is_none l then Format.pp_print_string ppf "<unknown>"
  else if l.file = "" then Format.fprintf ppf "%d:%d" l.line l.col
  else Format.fprintf ppf "%s:%d:%d" l.file l.line l.col

let to_string l = Format.asprintf "%a" pp l

(* The 1-based [n]-th line of [src], without its newline. *)
let nth_line src n =
  if n < 1 then None
  else begin
    let len = String.length src in
    let rec start_of k pos =
      if k = 1 then Some pos
      else
        match String.index_from_opt src pos '\n' with
        | Some nl when nl + 1 <= len -> start_of (k - 1) (nl + 1)
        | _ -> None
    in
    match start_of n 0 with
    | None -> None
    | Some s when s >= len -> if s = len && n >= 1 then Some "" else None
    | Some s ->
      let e =
        match String.index_from_opt src s '\n' with
        | Some nl -> nl
        | None -> len
      in
      Some (String.sub src s (e - s))
  end

let excerpt ~src l =
  if is_none l then None
  else
    match nth_line src l.line with
    | None -> None
    | Some line_text ->
      let width =
        if l.end_line = l.line && l.end_col > l.col then l.end_col - l.col
        else 1
      in
      let gutter = Printf.sprintf "%4d | " l.line in
      let pad = String.make (String.length gutter - 2) ' ' in
      (* Tabs in the source line would desynchronise the caret; expand
         them to single spaces in both the excerpt and the caret line. *)
      let line_text = String.map (fun c -> if c = '\t' then ' ' else c) line_text in
      let caret_indent = String.make (max 0 (l.col - 1)) ' ' in
      Some
        (Printf.sprintf "%s%s\n%s| %s%s" gutter line_text pad caret_indent
           (String.make (max 1 width) '^'))
