module Ident = Mdl.Ident
module RAst = Relog.Ast

type mode =
  | Extended
  | Standard

type t = {
  enc : Encode.t;
  info : Typecheck.info;
  mode : mode;
  unroll : int;
  narrow : bool;
  mutable gensym : int;
}

let create ?(mode = Extended) ?(unroll = 8) ?(narrow = true) enc info =
  { enc; info; mode; unroll; narrow; gensym = 0 }

exception Compile_error of string

let error fmt = Format.kasprintf (fun s -> raise (Compile_error s)) fmt

let effective_deps t (r : Ast.relation) =
  match t.mode with
  | Extended -> Dependency.effective r
  | Standard ->
    Dependency.standard (List.map (fun (d : Ast.domain) -> d.Ast.d_model) r.Ast.r_domains)

(* A variable mapping handles hygienic renaming of inlined callees:
   callee variables are either renamed with a fresh prefix or
   substituted by the caller's argument variables. *)
type vmap = Ident.t -> Ident.t

let id_vmap : vmap = fun v -> v

(* ------------------------------------------------------------------ *)
(* Expressions                                                         *)

let rec compile_oexpr t (env : Typecheck.tyenv) (vmap : vmap) (e : Ast.oexpr) :
    RAst.expr =
  match e with
  | Ast.O_var v -> RAst.Var (vmap v)
  | Ast.O_str s -> Encode.value_atom t.enc (Mdl.Value.Str s)
  | Ast.O_int i -> Encode.value_atom t.enc (Mdl.Value.Int i)
  | Ast.O_bool b -> Encode.value_atom t.enc (Mdl.Value.Bool b)
  | Ast.O_enum l -> Encode.value_atom t.enc (Mdl.Value.Enum l)
  | Ast.O_all (p, c) -> Encode.extent_expr t.enc ~param:p ~cls:c
  | Ast.O_nav (e0, f) -> (
    match Typecheck.infer_in t.info env e0 with
    | Ok (Ast.T_class (p, _)) ->
      RAst.Join (compile_oexpr t env vmap e0, Encode.feature_rel t.enc ~param:p ~feature:f)
    | Ok _ -> error "navigation .%s on non-object expression" (Ident.name f)
    | Error msg -> error "%s" msg)
  | Ast.O_union (a, b) ->
    RAst.Union (compile_oexpr t env vmap a, compile_oexpr t env vmap b)
  | Ast.O_inter (a, b) ->
    RAst.Inter (compile_oexpr t env vmap a, compile_oexpr t env vmap b)
  | Ast.O_diff (a, b) ->
    RAst.Diff (compile_oexpr t env vmap a, compile_oexpr t env vmap b)

(* ------------------------------------------------------------------ *)
(* Patterns                                                            *)

(* Compile a domain template into (variable declarations, constraint,
   narrowings). The declarations pair each bound object variable
   (through vmap) with its extent expression; the constraint is the
   conjunction of the property equations.

   Narrowings record, for each declared (value) variable [v] matched
   by an attribute pattern [x.a = v], the slot expression [x.a]. A
   quantifier for [v] may then range over [x.a] instead of the whole
   type: if [v ∉ x.a] the pattern equation is false anyway, so the
   restriction preserves the semantics while shrinking the grounding
   from |type| to |slot| — this is the natural reading of the
   standard's "for all elements such that πᵢ holds". *)
let compile_template t env vmap ~param (tpl : Ast.template) :
    (Ident.t * RAst.expr) list * RAst.formula * (Ident.t * RAst.expr) list =
  let decls = ref [] and constraints = ref [] and narrowings = ref [] in
  let rec go (tpl : Ast.template) =
    let x = RAst.Var (vmap tpl.Ast.t_var) in
    decls :=
      (vmap tpl.Ast.t_var, Encode.extent_expr t.enc ~param ~cls:tpl.Ast.t_class)
      :: !decls;
    List.iter
      (fun (prop : Ast.property) ->
        let slot =
          RAst.Join (x, Encode.feature_rel t.enc ~param ~feature:prop.Ast.p_feature)
        in
        let mm = Typecheck.metamodel_of_param t.info param in
        let attr =
          Mdl.Metamodel.find_attribute mm tpl.Ast.t_class prop.Ast.p_feature
        in
        match prop.Ast.p_value with
        | Ast.PV_expr e -> (
          let e' = compile_oexpr t env vmap e in
          match attr with
          | Some a ->
            (* Single-valued attribute patterns equate the whole slot
               (the paper's examples); multi-valued attribute patterns
               — like reference patterns — are membership constraints. *)
            let single = a.Mdl.Metamodel.attr_mult.Mdl.Metamodel.upper = Some 1 in
            if single then constraints := RAst.Equal (slot, e') :: !constraints
            else constraints := RAst.Subset (e', slot) :: !constraints;
            (match e with
            | Ast.O_var v -> (
              match Ident.Map.find_opt v env with
              | Some (Ast.T_class _) | None -> ()
              | Some _ -> narrowings := (v, slot) :: !narrowings)
            | _ -> ())
          | None -> constraints := RAst.Subset (e', slot) :: !constraints)
        | Ast.PV_template nested ->
          constraints := RAst.Subset (RAst.Var (vmap nested.Ast.t_var), slot) :: !constraints;
          go nested)
      tpl.Ast.t_props
  in
  go tpl;
  (List.rev !decls, RAst.conj (List.rev !constraints), List.rev !narrowings)

(* ------------------------------------------------------------------ *)
(* Directional compilation                                             *)

(* Variables of a clause list (for the xs/ys split). *)
let preds_vars clauses =
  List.fold_left
    (fun acc (c : Ast.clause) -> Ident.Set.union acc (Ast.pred_vars c.Ast.c_pred))
    Ident.Set.empty clauses

let template_var_set tpl =
  List.fold_left
    (fun acc (v, _) -> Ident.Set.add v acc)
    Ident.Set.empty (Ast.template_vars tpl)

(* Every variable syntactically present in a template's property
   expressions (value variables and referenced object variables). *)
let rec template_used_vars (tpl : Ast.template) acc =
  List.fold_left
    (fun acc (prop : Ast.property) ->
      match prop.Ast.p_value with
      | Ast.PV_expr e -> Ident.Set.union acc (Ast.oexpr_vars e)
      | Ast.PV_template nested -> template_used_vars nested acc)
    acc tpl.Ast.t_props

(* Type-based declaration for a leftover variable (one not bound by a
   source/target pattern in this direction). *)
let type_decl t env vmap v =
  match Ident.Map.find_opt v env with
  | Some ty -> (vmap v, Encode.type_expr t.enc ty)
  | None -> error "variable %s has no declared type" (Ident.name v)

let rec compile_pred t env vmap ~(direction : Ast.dependency) ~depth
    (p : Ast.pred) : RAst.formula =
  let cexp = compile_oexpr t env vmap in
  match p with
  | Ast.P_true -> RAst.True
  | Ast.P_eq (a, b) -> RAst.Equal (cexp a, cexp b)
  | Ast.P_neq (a, b) -> RAst.not_ (RAst.Equal (cexp a, cexp b))
  | Ast.P_in (a, b) -> RAst.Subset (cexp a, cexp b)
  | Ast.P_lt (a, b) -> RAst.Subset (RAst.Product (cexp a, cexp b), Encode.lt_rel)
  | Ast.P_le (a, b) ->
    (* a <= b over singletons: a < b or a = b *)
    RAst.disj
      [
        RAst.Subset (RAst.Product (cexp a, cexp b), Encode.lt_rel);
        RAst.Equal (cexp a, cexp b);
      ]
  | Ast.P_empty a -> RAst.No (cexp a)
  | Ast.P_nonempty a -> RAst.Some_ (cexp a)
  | Ast.P_not q -> RAst.not_ (compile_pred t env vmap ~direction ~depth q)
  | Ast.P_and (a, b) ->
    RAst.conj
      [ compile_pred t env vmap ~direction ~depth a;
        compile_pred t env vmap ~direction ~depth b ]
  | Ast.P_or (a, b) ->
    RAst.disj
      [ compile_pred t env vmap ~direction ~depth a;
        compile_pred t env vmap ~direction ~depth b ]
  | Ast.P_implies (a, b) ->
    RAst.implies
      (compile_pred t env vmap ~direction ~depth a)
      (compile_pred t env vmap ~direction ~depth b)
  | Ast.P_call (callee, args) -> compile_call t vmap ~direction ~depth callee args

and compile_call t vmap ~direction ~depth callee args =
  if depth <= 0 then RAst.False
  else begin
    let trans = Encode.transformation t.enc in
    let s =
      match Ast.find_relation trans callee with
      | Some s -> s
      | None -> error "call to unknown relation %s" (Ident.name callee)
    in
    let dom_s = List.map (fun (d : Ast.domain) -> d.Ast.d_model) s.Ast.r_domains in
    (* Hygienic renaming for the callee's variables, with the roots
       substituted by the caller's (already-mapped) argument
       variables. *)
    t.gensym <- t.gensym + 1;
    let prefix = Printf.sprintf "%s'%d'" (Ident.name callee) t.gensym in
    let n_doms = List.length s.Ast.r_domains in
    let rec split n = function
      | xs when n = 0 -> ([], xs)
      | x :: xs ->
        let a, b = split (n - 1) xs in
        (x :: a, b)
      | [] -> ([], [])
    in
    let dom_args, prim_args = split n_doms args in
    let roots =
      List.map2
        (fun (d : Ast.domain) arg -> (d.Ast.d_template.Ast.t_var, vmap arg))
        s.Ast.r_domains dom_args
      @ List.map2
          (fun (vd : Ast.vardecl) arg -> (vd.Ast.v_name, vmap arg))
          s.Ast.r_prims prim_args
    in
    let callee_vmap v =
      match List.find_opt (fun (r, _) -> Ident.equal r v) roots with
      | Some (_, arg) -> arg
      | None -> Ident.make (prefix ^ Ident.name v)
    in
    let root_set =
      List.fold_left (fun acc (r, _) -> Ident.Set.add r acc) Ident.Set.empty roots
    in
    let in_s m = List.exists (Ident.equal m) dom_s in
    if in_s direction.Ast.dep_target then begin
      (* Projected direction (§2.3). *)
      let projected =
        {
          Ast.dep_sources = List.filter in_s direction.Ast.dep_sources;
          dep_target = direction.Ast.dep_target;
          dep_loc = Loc.none;
        }
      in
      compile_direction t s projected ~vmap:callee_vmap ~bound_roots:root_set
        ~depth:(depth - 1)
    end
    else begin
      (* No target-side domain: check the callee's own directional
         conjunction at the bound roots (all of its models are caller
         sources; type checking guarantees it). *)
      let deps = effective_deps t s in
      RAst.conj
        (List.map
           (fun d ->
             compile_direction t s d ~vmap:callee_vmap ~bound_roots:root_set
               ~depth:(depth - 1))
           deps)
    end
  end

(* The heart of the paper: R_{S->T} =
     ∀ xs | ψ ∧ ⋀_{j∈S} πⱼ  ⇒  ∃ ys | π_T ∧ φ
   [bound_roots] are variables already fixed by an enclosing call —
   they are excluded from the quantifier lists but their extent
   membership is conjoined into the corresponding pattern side. *)
and compile_direction t (r : Ast.relation) (direction : Ast.dependency)
    ~(vmap : vmap) ~(bound_roots : Ident.Set.t) ~depth : RAst.formula =
  let env = Typecheck.tyenv t.info r.Ast.r_name in
  let in_sources m = List.exists (Ident.equal m) direction.Ast.dep_sources in
  let source_domains =
    List.filter (fun (d : Ast.domain) -> in_sources d.Ast.d_model) r.Ast.r_domains
  in
  let target_domain =
    match
      List.find_opt
        (fun (d : Ast.domain) -> Ident.equal d.Ast.d_model direction.Ast.dep_target)
        r.Ast.r_domains
    with
    | Some d -> d
    | None ->
      error "relation %s has no domain over %s" (Ident.name r.Ast.r_name)
        (Ident.name direction.Ast.dep_target)
  in
  (* Compile a domain pattern, turning bound roots' declarations into
     membership constraints. *)
  let compile_domain (d : Ast.domain) =
    let decls, constr, narrowings =
      compile_template t env vmap ~param:d.Ast.d_model d.Ast.d_template
    in
    let bound_names = Ident.Set.map vmap bound_roots in
    let free_decls, bound_decls =
      List.partition (fun (v, _) -> not (Ident.Set.mem v bound_names)) decls
    in
    let membership =
      List.map (fun (v, ext) -> RAst.Subset (RAst.Var v, ext)) bound_decls
    in
    (free_decls, RAst.conj (membership @ [ constr ]), narrowings)
  in
  let src = List.map compile_domain source_domains in
  let src_decls = List.concat_map (fun (d, _, _) -> d) src in
  let src_constr = RAst.conj (List.map (fun (_, c, _) -> c) src) in
  let src_narrowings = List.concat_map (fun (_, _, n) -> n) src in
  let tgt_decls, tgt_constr, tgt_narrowings = compile_domain target_domain in
  let psi =
    RAst.conj
      (List.map (compile_pred t env vmap ~direction ~depth) (Ast.preds r.Ast.r_when))
  in
  let phi =
    RAst.conj
      (List.map (compile_pred t env vmap ~direction ~depth) (Ast.preds r.Ast.r_where))
  in
  (* xs: variables of ψ and the source patterns; ys: variables of the
     target pattern and φ not already in xs. Leftover variables (used
     but bound by neither side's pattern) are declared by type. *)
  let pattern_vars domains =
    List.fold_left
      (fun acc (d : Ast.domain) ->
        Ident.Set.union acc (template_var_set d.Ast.d_template))
      Ident.Set.empty domains
  in
  let xs_vars =
    Ident.Set.union (pattern_vars source_domains) (preds_vars r.Ast.r_when)
  in
  (* Value variables referenced by the source patterns also belong to
     xs. *)
  let xs_vars =
    List.fold_left
      (fun acc (d : Ast.domain) -> template_used_vars d.Ast.d_template acc)
      xs_vars source_domains
  in
  let xs_vars = Ident.Set.diff xs_vars bound_roots in
  let tgt_pattern_vars = template_var_set target_domain.Ast.d_template in
  let tgt_used =
    Ident.Set.union
      (template_used_vars target_domain.Ast.d_template Ident.Set.empty)
      (preds_vars r.Ast.r_where)
  in
  let ys_vars =
    Ident.Set.diff (Ident.Set.union tgt_pattern_vars tgt_used)
      (Ident.Set.union xs_vars bound_roots)
  in
  (* Declarations. Object variables keep their pattern extents and are
     declared first; value variables follow, narrowed to the slot
     expression that matches them when possible (the narrowing depends
     on the earlier object variables — quantifier domains may refer to
     previously bound variables). Everything else falls back to its
     declared type. *)
  let build_decls pattern_decls narrowings vars =
    let obj_decls =
      List.filter (fun (v, _) -> Ident.Set.exists (fun w -> Ident.equal (vmap w) v) vars)
        pattern_decls
    in
    let is_obj v =
      List.exists (fun (v', _) -> Ident.equal v' (vmap v)) pattern_decls
    in
    let value_decls =
      Ident.Set.elements vars
      |> List.filter (fun v -> not (is_obj v))
      |> List.map (fun v ->
             match
               if t.narrow then
                 List.find_opt (fun (w, _) -> Ident.equal w v) narrowings
               else None
             with
             | Some (_, slot) -> (vmap v, slot)
             | None -> type_decl t env vmap v)
    in
    obj_decls @ value_decls
  in
  let xs_decls = build_decls src_decls src_narrowings xs_vars in
  let ys_decls = build_decls tgt_decls tgt_narrowings ys_vars in
  let body =
    RAst.implies
      (RAst.conj [ psi; src_constr ])
      (match ys_decls with
      | [] -> RAst.conj [ tgt_constr; phi ]
      | ys -> RAst.Exists (ys, RAst.conj [ tgt_constr; phi ]))
  in
  match xs_decls with
  | [] -> body
  | xs -> RAst.Forall (xs, body)

(* ------------------------------------------------------------------ *)
(* Public API                                                          *)

(* The match predicate: roots free, everything else existential. A
   pseudo-direction whose target is outside the relation's domains
   makes relation calls compile as "callee holds at these roots". *)
let match_formula t (r : Ast.relation) =
  let env = Typecheck.tyenv t.info r.Ast.r_name in
  let vmap = id_vmap in
  let pseudo =
    {
      Ast.dep_sources = List.map (fun (d : Ast.domain) -> d.Ast.d_model) r.Ast.r_domains;
      dep_target = Ident.make "$trace";
      dep_loc = Loc.none;
    }
  in
  let compiled =
    List.map
      (fun (d : Ast.domain) ->
        compile_template t env vmap ~param:d.Ast.d_model d.Ast.d_template)
      r.Ast.r_domains
  in
  let decls = List.concat_map (fun (d, _, _) -> d) compiled in
  let constr = RAst.conj (List.map (fun (_, c, _) -> c) compiled) in
  let narrowings = List.concat_map (fun (_, _, n) -> n) compiled in
  let preds =
    List.map
      (compile_pred t env vmap ~direction:pseudo ~depth:t.unroll)
      (Ast.preds (r.Ast.r_when @ r.Ast.r_where))
  in
  let roots =
    List.fold_left
      (fun acc (d : Ast.domain) -> Ident.Set.add d.Ast.d_template.Ast.t_var acc)
      Ident.Set.empty r.Ast.r_domains
  in
  let used =
    List.fold_left
      (fun acc (d : Ast.domain) ->
        Ident.Set.union
          (Ident.Set.union acc (template_var_set d.Ast.d_template))
          (template_used_vars d.Ast.d_template Ident.Set.empty))
      (Ident.Set.union (preds_vars r.Ast.r_when) (preds_vars r.Ast.r_where))
      r.Ast.r_domains
  in
  let quantified = Ident.Set.diff used roots in
  let obj_decls =
    List.filter (fun (v, _) -> Ident.Set.mem v quantified) decls
  in
  let is_obj v = List.exists (fun (v', _) -> Ident.equal v' v) decls in
  let value_decls =
    Ident.Set.elements quantified
    |> List.filter (fun v -> not (is_obj v))
    |> List.map (fun v ->
           match
             if t.narrow then
               List.find_opt (fun (w, _) -> Ident.equal w v) narrowings
             else None
           with
           | Some (_, slot) -> (v, slot)
           | None -> type_decl t env vmap v)
  in
  let body = RAst.conj (constr :: preds) in
  let quantified_decls = obj_decls @ value_decls in
  Relog.Simplify.formula
    (match quantified_decls with
    | [] -> body
    | qs -> RAst.Exists (qs, body))

let direction_formula t r dep =
  compile_direction t r dep ~vmap:id_vmap ~bound_roots:Ident.Set.empty ~depth:t.unroll
  |> Relog.Simplify.formula

let relation_formulas t r =
  List.map (fun d -> (d, direction_formula t r d)) (effective_deps t r)

let top_formulas t =
  let trans = Encode.transformation t.enc in
  List.concat_map
    (fun (r : Ast.relation) ->
      if r.Ast.r_top then
        List.map (fun (d, f) -> (r, d, f)) (relation_formulas t r)
      else [])
    trans.Ast.t_relations

let consistency_formula t =
  RAst.conj (List.map (fun (_, _, f) -> f) (top_formulas t))

let directional_consistency t ~target =
  RAst.conj
    (List.filter_map
       (fun (_, (d : Ast.dependency), f) ->
         if Ident.equal d.Ast.dep_target target then Some f else None)
       (top_formulas t))
