module Ident = Mdl.Ident
module MM = Mdl.Metamodel

type tyenv = Ast.var_type Ident.Map.t

type info = {
  i_trans : Ast.transformation;
  i_mms : MM.t Ident.Map.t;  (* param -> metamodel *)
  i_tyenvs : tyenv Ident.Map.t;  (* relation -> env *)
}

let tyenv info r =
  match Ident.Map.find_opt r info.i_tyenvs with
  | Some env -> env
  | None -> raise Not_found

let metamodel_of_param info p = Ident.Map.find p info.i_mms
let transformation info = info.i_trans

type error = {
  err_relation : Ident.t option;
  err_msg : string;
  err_loc : Loc.t;
  err_code : string;
}

let code_type = "E002"
let code_dependency = "E003"
let code_recursion = "E004"
let code_direction = "E005"

let pp_error ppf e =
  if not (Loc.is_none e.err_loc) then Format.fprintf ppf "%a: " Loc.pp e.err_loc;
  (match e.err_relation with
  | Some r -> Format.fprintf ppf "relation %a: " Ident.pp r
  | None -> ());
  Format.fprintf ppf "%s" e.err_msg

(* ------------------------------------------------------------------ *)
(* Type algebra                                                        *)

let pp_ty ppf = function
  | Ast.T_string -> Format.pp_print_string ppf "String"
  | Ast.T_int -> Format.pp_print_string ppf "Integer"
  | Ast.T_bool -> Format.pp_print_string ppf "Boolean"
  | Ast.T_enum e -> Ident.pp ppf e
  | Ast.T_class (p, c) -> Format.fprintf ppf "%a@@%a" Ident.pp c Ident.pp p

let ty_to_string ty = Format.asprintf "%a" pp_ty ty

(* [compatible mm a b]: can values of [a] and [b] be compared /
   unioned?  Classes must live in the same model parameter and be
   related by inheritance; the join is the more general class. *)
let compatible mms a b =
  match (a, b) with
  | Ast.T_string, Ast.T_string -> Some Ast.T_string
  | Ast.T_int, Ast.T_int -> Some Ast.T_int
  | Ast.T_bool, Ast.T_bool -> Some Ast.T_bool
  | Ast.T_enum x, Ast.T_enum y when Ident.equal x y -> Some (Ast.T_enum x)
  | Ast.T_class (p, c), Ast.T_class (q, d) when Ident.equal p q -> (
    match Ident.Map.find_opt p mms with
    | None -> None
    | Some mm ->
      if MM.is_subclass mm ~sub:c ~super:d then Some (Ast.T_class (p, d))
      else if MM.is_subclass mm ~sub:d ~super:c then Some (Ast.T_class (p, c))
      else None)
  | _ -> None

let prim_of_attr_type (t : MM.prim) =
  match t with
  | MM.P_string -> Ast.T_string
  | MM.P_int -> Ast.T_int
  | MM.P_bool -> Ast.T_bool
  | MM.P_enum e -> Ast.T_enum e

(* ------------------------------------------------------------------ *)
(* Expression inference                                                *)

let rec infer mms (env : tyenv) (e : Ast.oexpr) : (Ast.var_type, string) result =
  let ( let* ) = Result.bind in
  match e with
  | Ast.O_var v -> (
    match Ident.Map.find_opt v env with
    | Some ty -> Ok ty
    | None -> Error (Printf.sprintf "unbound variable %s" (Ident.name v)))
  | Ast.O_str _ -> Ok Ast.T_string
  | Ast.O_int _ -> Ok Ast.T_int
  | Ast.O_bool _ -> Ok Ast.T_bool
  | Ast.O_enum lit -> (
    (* Find the (unique) enum declaring this literal. *)
    let owners =
      Ident.Map.fold
        (fun _ mm acc ->
          List.fold_left
            (fun acc (en : MM.enum) ->
              if List.exists (Ident.equal lit) en.MM.enum_literals then
                Ident.Set.add en.MM.enum_name acc
              else acc)
            acc (MM.enums mm))
        mms Ident.Set.empty
    in
    match Ident.Set.elements owners with
    | [ e ] -> Ok (Ast.T_enum e)
    | [] -> Error (Printf.sprintf "unknown enum literal %s" (Ident.name lit))
    | _ -> Error (Printf.sprintf "ambiguous enum literal %s" (Ident.name lit)))
  | Ast.O_all (p, c) -> (
    match Ident.Map.find_opt p mms with
    | None -> Error (Printf.sprintf "unknown model parameter %s" (Ident.name p))
    | Some mm ->
      if MM.find_class mm c = None then
        Error
          (Printf.sprintf "unknown class %s in metamodel of %s" (Ident.name c)
             (Ident.name p))
      else Ok (Ast.T_class (p, c)))
  | Ast.O_nav (e, f) -> (
    let* ty = infer mms env e in
    match ty with
    | Ast.T_class (p, c) -> (
      let mm = Ident.Map.find p mms in
      match MM.find_attribute mm c f with
      | Some a -> Ok (prim_of_attr_type a.MM.attr_type)
      | None -> (
        match MM.find_reference mm c f with
        | Some r -> Ok (Ast.T_class (p, r.MM.ref_target))
        | None ->
          Error
            (Printf.sprintf "class %s has no feature %s" (Ident.name c)
               (Ident.name f))))
    | other ->
      Error
        (Printf.sprintf "navigation .%s on non-object type %s" (Ident.name f)
           (ty_to_string other)))
  | Ast.O_union (a, b) | Ast.O_inter (a, b) | Ast.O_diff (a, b) -> (
    let* ta = infer mms env a in
    let* tb = infer mms env b in
    match compatible mms ta tb with
    | Some ty -> Ok ty
    | None ->
      Error
        (Printf.sprintf "set operation over incompatible types %s and %s"
           (ty_to_string ta) (ty_to_string tb)))

(* ------------------------------------------------------------------ *)
(* Environment construction                                            *)

let rec bind_template p mm (env : tyenv ref) (tpl : Ast.template)
    (add_err : ?loc:Loc.t -> string -> unit) =
  (match MM.find_class mm tpl.Ast.t_class with
  | None ->
    add_err ~loc:tpl.Ast.t_loc
      (Printf.sprintf "unknown class %s in metamodel of %s" (Ident.name tpl.Ast.t_class)
         (Ident.name p))
  | Some _ -> ());
  (match Ident.Map.find_opt tpl.Ast.t_var !env with
  | Some _ ->
    add_err ~loc:tpl.Ast.t_loc
      (Printf.sprintf "variable %s bound twice" (Ident.name tpl.Ast.t_var))
  | None -> env := Ident.Map.add tpl.Ast.t_var (Ast.T_class (p, tpl.Ast.t_class)) !env);
  List.iter
    (fun (prop : Ast.property) ->
      match prop.Ast.p_value with
      | Ast.PV_expr _ -> ()
      | Ast.PV_template nested -> bind_template p mm env nested add_err)
    tpl.Ast.t_props

(* ------------------------------------------------------------------ *)
(* Pattern / predicate checking                                        *)

let check_template mms env p mm (tpl : Ast.template)
    (add_err : ?loc:Loc.t -> string -> unit) =
  let rec go (tpl : Ast.template) =
    match MM.find_class mm tpl.Ast.t_class with
    | None -> ()  (* already reported *)
    | Some _ ->
      List.iter
        (fun (prop : Ast.property) ->
          let f = prop.Ast.p_feature in
          let add_err msg = add_err ~loc:prop.Ast.p_loc msg in
          let attr = MM.find_attribute mm tpl.Ast.t_class f in
          let refr = MM.find_reference mm tpl.Ast.t_class f in
          match (attr, refr, prop.Ast.p_value) with
          | None, None, _ ->
            add_err
              (Printf.sprintf "class %s has no feature %s" (Ident.name tpl.Ast.t_class)
                 (Ident.name f))
          | Some a, _, Ast.PV_expr e -> (
            match infer mms env e with
            | Error msg -> add_err msg
            | Ok ty -> (
              let want = prim_of_attr_type a.MM.attr_type in
              match compatible mms ty want with
              | Some _ -> ()
              | None ->
                add_err
                  (Printf.sprintf "attribute %s expects %s, pattern gives %s"
                     (Ident.name f) (ty_to_string want) (ty_to_string ty))))
          | Some _, _, Ast.PV_template _ ->
            add_err
              (Printf.sprintf "attribute %s cannot match an object template"
                 (Ident.name f))
          | None, Some r, Ast.PV_expr e -> (
            match infer mms env e with
            | Error msg -> add_err msg
            | Ok ty -> (
              match compatible mms ty (Ast.T_class (p, r.MM.ref_target)) with
              | Some _ -> ()
              | None ->
                add_err
                  (Printf.sprintf "reference %s expects %s, pattern gives %s"
                     (Ident.name f)
                     (Ident.name r.MM.ref_target)
                     (ty_to_string ty))))
          | None, Some r, Ast.PV_template nested ->
            (match compatible mms
                     (Ast.T_class (p, nested.Ast.t_class))
                     (Ast.T_class (p, r.MM.ref_target))
             with
            | Some _ -> ()
            | None ->
              add_err
                (Printf.sprintf "nested template class %s does not conform to %s"
                   (Ident.name nested.Ast.t_class)
                   (Ident.name r.MM.ref_target)));
            go nested)
        tpl.Ast.t_props
  in
  go tpl

let rec check_pred mms env (trans : Ast.transformation) (pred : Ast.pred) add_err =
  let chk e = match infer mms env e with Error m -> add_err m; None | Ok t -> Some t in
  match pred with
  | Ast.P_true -> ()
  | Ast.P_eq (a, b) | Ast.P_neq (a, b) | Ast.P_in (a, b) -> (
    match (chk a, chk b) with
    | Some ta, Some tb ->
      if compatible mms ta tb = None then
        add_err
          (Printf.sprintf "comparison between incompatible types %s and %s"
             (ty_to_string ta) (ty_to_string tb))
    | _ -> ())
  | Ast.P_lt (a, b) | Ast.P_le (a, b) -> (
    match (chk a, chk b) with
    | Some Ast.T_int, Some Ast.T_int -> ()
    | Some ta, Some tb ->
      add_err
        (Printf.sprintf "integer comparison between %s and %s" (ty_to_string ta)
           (ty_to_string tb))
    | _ -> ())
  | Ast.P_empty a | Ast.P_nonempty a -> ignore (chk a)
  | Ast.P_not p -> check_pred mms env trans p add_err
  | Ast.P_and (a, b) | Ast.P_or (a, b) | Ast.P_implies (a, b) ->
    check_pred mms env trans a add_err;
    check_pred mms env trans b add_err
  | Ast.P_call (callee, args) -> (
    match Ast.find_relation trans callee with
    | None -> add_err (Printf.sprintf "call to unknown relation %s" (Ident.name callee))
    | Some s ->
      let domains = s.Ast.r_domains in
      let prims = s.Ast.r_prims in
      let expected = List.length domains + List.length prims in
      if List.length args <> expected then
        add_err
          (Printf.sprintf "call to %s expects %d arguments, got %d" (Ident.name callee)
             expected (List.length args))
      else begin
        (* positional: model-domain roots first, then primitive domains *)
        let rec split n = function
          | xs when n = 0 -> ([], xs)
          | x :: xs ->
            let a, b = split (n - 1) xs in
            (x :: a, b)
          | [] -> ([], [])
        in
        let dom_args, prim_args = split (List.length domains) args in
        let check_arg arg want =
          match Ident.Map.find_opt arg env with
          | None -> add_err (Printf.sprintf "unbound variable %s" (Ident.name arg))
          | Some ty -> (
            match compatible mms ty want with
            | Some _ -> ()
            | None ->
              add_err
                (Printf.sprintf "argument %s of call to %s: expected %s, got %s"
                   (Ident.name arg) (Ident.name callee) (ty_to_string want)
                   (ty_to_string ty)))
        in
        List.iter2
          (fun arg (d : Ast.domain) ->
            check_arg arg (Ast.T_class (d.Ast.d_model, d.Ast.d_template.Ast.t_class)))
          dom_args domains;
        List.iter2
          (fun arg (vd : Ast.vardecl) -> check_arg arg vd.Ast.v_type)
          prim_args prims
      end)

(* ------------------------------------------------------------------ *)
(* Call-direction compatibility (paper §2.3)                           *)

let direction_errors (trans : Ast.transformation)
    (add_err : ?loc:Loc.t -> string -> unit) =
  let dom_of (r : Ast.relation) = List.map (fun d -> d.Ast.d_model) r.Ast.r_domains in
  List.iter
    (fun (r : Ast.relation) ->
      let deps_r = Dependency.effective r in
      let callees_of clauses =
        List.concat_map
          (fun (c : Ast.clause) ->
            List.map (fun name -> (name, c.Ast.c_loc)) (Ast.pred_calls c.Ast.c_pred))
          clauses
      in
      let check_where_call (callee, loc) =
        let add_err msg = add_err ~loc msg in
        match Ast.find_relation trans callee with
        | None -> ()  (* reported elsewhere *)
        | Some s ->
          let dom_s = dom_of s in
          let deps_s = Dependency.effective s in
          List.iter
            (fun (d : Ast.dependency) ->
              if List.exists (Ident.equal d.Ast.dep_target) dom_s then begin
                let sources' =
                  List.filter
                    (fun m -> List.exists (Ident.equal m) dom_s)
                    d.Ast.dep_sources
                in
                let projected =
                  {
                    Ast.dep_sources = sources';
                    dep_target = d.Ast.dep_target;
                    dep_loc = Loc.none;
                  }
                in
                if not (Dependency.entails deps_s projected) then
                  add_err
                    (Printf.sprintf
                       "where-call to %s cannot run in direction %s: callee \
                        dependencies do not entail %s"
                       (Ident.name callee)
                       (Format.asprintf "%a" Ast.pp_dependency d)
                       (Format.asprintf "%a" Ast.pp_dependency projected))
              end
              else if
                (* The callee constrains none of its domains towards the
                   caller's target; it must then be entirely a source-side
                   relation for this direction. *)
                not
                  (List.for_all
                     (fun m -> List.exists (Ident.equal m) d.Ast.dep_sources)
                     dom_s)
              then
                add_err
                  (Printf.sprintf
                     "where-call to %s in direction %s: callee has no %s domain and \
                      reads non-source models"
                     (Ident.name callee)
                     (Format.asprintf "%a" Ast.pp_dependency d)
                     (Ident.name d.Ast.dep_target)))
            deps_r
      in
      let check_when_call (callee, loc) =
        let add_err msg = add_err ~loc msg in
        match Ast.find_relation trans callee with
        | None -> ()
        | Some s ->
          let dom_s = dom_of s in
          List.iter
            (fun (d : Ast.dependency) ->
              if
                not
                  (List.for_all
                     (fun m -> List.exists (Ident.equal m) d.Ast.dep_sources)
                     dom_s)
              then
                add_err
                  (Printf.sprintf
                     "when-call to %s in direction %s reads models outside the \
                      source set"
                     (Ident.name callee)
                     (Format.asprintf "%a" Ast.pp_dependency d)))
            deps_r
      in
      List.iter check_where_call (callees_of r.Ast.r_where);
      List.iter check_when_call (callees_of r.Ast.r_when))
    trans.Ast.t_relations

(* Call-graph cycle detection. *)
let recursion_errors (trans : Ast.transformation)
    (add_err : ?loc:Loc.t -> string -> unit) =
  let calls_of (r : Ast.relation) =
    List.fold_left
      (fun acc (c : Ast.clause) ->
        List.fold_left
          (fun acc name -> Ident.Set.add name acc)
          acc
          (Ast.pred_calls c.Ast.c_pred))
      Ident.Set.empty
      (r.Ast.r_when @ r.Ast.r_where)
  in
  let graph =
    List.fold_left
      (fun acc (r : Ast.relation) -> Ident.Map.add r.Ast.r_name (calls_of r) acc)
      Ident.Map.empty trans.Ast.t_relations
  in
  let rec reaches target seen r =
    match Ident.Map.find_opt r graph with
    | None -> false
    | Some callees ->
      Ident.Set.exists
        (fun c ->
          Ident.equal c target
          || ((not (Ident.Set.mem c seen)) && reaches target (Ident.Set.add c seen) c))
        callees
  in
  List.iter
    (fun (r : Ast.relation) ->
      if reaches r.Ast.r_name Ident.Set.empty r.Ast.r_name then
        add_err ~loc:r.Ast.r_loc
          (Printf.sprintf "relation %s is recursively invoked (unsupported; see \
                           Semantics unrolling)"
             (Ident.name r.Ast.r_name)))
    trans.Ast.t_relations

(* ------------------------------------------------------------------ *)
(* Main                                                                *)

let check ?(allow_recursion = false) (trans : Ast.transformation) ~metamodels =
  let errors = ref [] in
  let add_err_for rel ?(loc = Loc.none) ?(code = code_type) msg =
    errors :=
      { err_relation = rel; err_msg = msg; err_loc = loc; err_code = code }
      :: !errors
  in
  (* Parameters. *)
  let mms =
    List.fold_left
      (fun acc (p : Ast.param) ->
        match
          List.find_opt (fun (n, _) -> Ident.equal n p.Ast.par_mm) metamodels
        with
        | Some (_, mm) -> Ident.Map.add p.Ast.par_name mm acc
        | None ->
          add_err_for None ~loc:p.Ast.par_loc
            (Printf.sprintf "parameter %s: unknown metamodel %s"
               (Ident.name p.Ast.par_name)
               (Ident.name p.Ast.par_mm));
          acc)
      Ident.Map.empty trans.Ast.t_params
  in
  (* Duplicate parameter / relation names. [named]: (name, loc) pairs;
     the error lands on the second and later occurrences. *)
  let dup what named =
    let seen = Hashtbl.create 8 in
    List.iter
      (fun (name, loc) ->
        if Hashtbl.mem seen (Ident.name name) then
          add_err_for None ~loc
            (Printf.sprintf "duplicate %s %s" what (Ident.name name))
        else Hashtbl.add seen (Ident.name name) ())
      named
  in
  dup "model parameter"
    (List.map (fun (p : Ast.param) -> (p.Ast.par_name, p.Ast.par_loc)) trans.Ast.t_params);
  dup "relation"
    (List.map (fun (r : Ast.relation) -> (r.Ast.r_name, r.Ast.r_loc)) trans.Ast.t_relations);
  (* Per-relation environment + checks. *)
  let tyenvs =
    List.fold_left
      (fun acc (r : Ast.relation) ->
        let add_err ?(loc = Loc.none) msg =
          let loc = if Loc.is_none loc then r.Ast.r_loc else loc in
          add_err_for (Some r.Ast.r_name) ~loc msg
        in
        (* Domains name distinct declared parameters. *)
        let domain_models = List.map (fun (d : Ast.domain) -> d.Ast.d_model) r.Ast.r_domains in
        dup "domain"
          (List.map (fun (d : Ast.domain) -> (d.Ast.d_model, d.Ast.d_loc)) r.Ast.r_domains);
        List.iter
          (fun (d : Ast.domain) ->
            if Ast.find_param trans d.Ast.d_model = None then
              add_err ~loc:d.Ast.d_loc
                (Printf.sprintf "domain over unknown parameter %s"
                   (Ident.name d.Ast.d_model)))
          r.Ast.r_domains;
        if List.length r.Ast.r_domains < 1 then
          add_err "a relation needs at least one model domain"
        else if List.length r.Ast.r_domains + List.length r.Ast.r_prims < 2 then
          add_err "a relation needs at least two domains";
        (* Environment: declared vars, then template vars. *)
        let env = ref Ident.Map.empty in
        List.iter
          (fun (vd : Ast.vardecl) ->
            if Ident.Map.mem vd.Ast.v_name !env then
              add_err ~loc:vd.Ast.v_loc
                (Printf.sprintf "variable %s declared twice" (Ident.name vd.Ast.v_name))
            else env := Ident.Map.add vd.Ast.v_name vd.Ast.v_type !env)
          (r.Ast.r_vars @ r.Ast.r_prims);
        if r.Ast.r_top && r.Ast.r_prims <> [] then
          add_err "a top relation cannot declare primitive domains";
        List.iter
          (fun (d : Ast.domain) ->
            match Ident.Map.find_opt d.Ast.d_model mms with
            | None -> ()
            | Some mm -> bind_template d.Ast.d_model mm env d.Ast.d_template add_err)
          r.Ast.r_domains;
        (* Check patterns and predicates. *)
        List.iter
          (fun (d : Ast.domain) ->
            match Ident.Map.find_opt d.Ast.d_model mms with
            | None -> ()
            | Some mm -> check_template mms !env d.Ast.d_model mm d.Ast.d_template add_err)
          r.Ast.r_domains;
        List.iter
          (fun (c : Ast.clause) ->
            check_pred mms !env trans c.Ast.c_pred (fun msg ->
                add_err ~loc:c.Ast.c_loc msg))
          (r.Ast.r_when @ r.Ast.r_where);
        (* Dependencies. *)
        (match Dependency.validate ~domains:domain_models r.Ast.r_deps with
        | Ok () -> ()
        | Error errs ->
          List.iter
            (fun ((d : Ast.dependency), msg) ->
              add_err_for (Some r.Ast.r_name) ~loc:d.Ast.dep_loc
                ~code:code_dependency msg)
            errs);
        Ident.Map.add r.Ast.r_name !env acc)
      Ident.Map.empty trans.Ast.t_relations
  in
  direction_errors trans (fun ?(loc = Loc.none) msg ->
      add_err_for None ~loc ~code:code_direction msg);
  if not allow_recursion then
    recursion_errors trans (fun ?(loc = Loc.none) msg ->
        add_err_for None ~loc ~code:code_recursion msg);
  match !errors with
  | [] -> Ok { i_trans = trans; i_mms = mms; i_tyenvs = tyenvs }
  | errs -> Error (List.rev errs)

let infer_oexpr info rel e =
  match Ident.Map.find_opt rel info.i_tyenvs with
  | None -> Error (Printf.sprintf "unknown relation %s" (Ident.name rel))
  | Some env -> infer info.i_mms env e

let infer_in info env e = infer info.i_mms env e
