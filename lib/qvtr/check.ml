module Ident = Mdl.Ident

type verdict = {
  v_relation : Ident.t;
  v_direction : Ast.dependency;
  v_holds : bool;
  v_witness : (Ident.t * Ident.t) list;
}

type report = {
  consistent : bool;
  verdicts : verdict list;
  elapsed : float;
}

let pp_report ppf r =
  Format.fprintf ppf "@[<v>consistent: %b" r.consistent;
  List.iter
    (fun v ->
      Format.fprintf ppf "@,%a [%a]: %s" Ident.pp v.v_relation Ast.pp_dependency
        v.v_direction
        (if v.v_holds then "holds" else "VIOLATED");
      if (not v.v_holds) && v.v_witness <> [] then
        Format.fprintf ppf " at %s"
          (String.concat ", "
             (List.map
                (fun (var, atom) ->
                  Printf.sprintf "%s = %s" (Ident.name var) (Ident.name atom))
                v.v_witness)))
    r.verdicts;
  Format.fprintf ppf "@]"

let run ?mode trans ~metamodels ~models =
  let started = Sat.Telemetry.now () in
  match
    Obs.Trace.with_span ~name:"typecheck" (fun () ->
        Typecheck.check trans ~metamodels)
  with
  | Error errs ->
    Error
      (String.concat "; "
         (List.map (fun e -> Format.asprintf "%a" Typecheck.pp_error e) errs))
  | Ok info -> (
    match
      Obs.Trace.with_span ~name:"encode" (fun () ->
          Encode.create ~transformation:trans ~metamodels ~models
            ~slack_objects:0 ())
    with
    | Error msg -> Error msg
    | Ok enc -> (
      try
        let sem = Semantics.create ?mode enc info in
        let inst = Encode.check_instance enc in
        let verdicts =
          Obs.Trace.with_span ~name:"check.eval" (fun () ->
          List.map
            (fun (r, d, f) ->
              match Relog.Eval.counterexample inst f with
              | None ->
                {
                  v_relation = r.Ast.r_name;
                  v_direction = d;
                  v_holds = true;
                  v_witness = [];
                }
              | Some witness ->
                {
                  v_relation = r.Ast.r_name;
                  v_direction = d;
                  v_holds = false;
                  v_witness = witness;
                })
            (Semantics.top_formulas sem))
        in
        Ok
          {
            consistent = List.for_all (fun v -> v.v_holds) verdicts;
            verdicts;
            elapsed = Sat.Telemetry.now () -. started;
          }
      with
      | Semantics.Compile_error msg -> Error msg
      | Relog.Eval.Eval_error msg -> Error msg))

let run_exn ?mode trans ~metamodels ~models =
  match run ?mode trans ~metamodels ~models with
  | Ok r -> r
  | Error msg -> invalid_arg ("Check.run_exn: " ^ msg)

(* ------------------------------------------------------------------ *)
(* Traces                                                              *)

type trace = {
  tr_relation : Ident.t;
  tr_roots : (Ident.t * Ident.t) list;
}

let pp_trace ppf t =
  Format.fprintf ppf "%a(%s)" Ident.pp t.tr_relation
    (String.concat ", "
       (List.map
          (fun (v, atom) -> Printf.sprintf "%s=%s" (Ident.name v) (Ident.name atom))
          t.tr_roots))

let traces ?mode trans ~metamodels ~models =
  match Typecheck.check trans ~metamodels with
  | Error errs ->
    Error
      (String.concat "; "
         (List.map (fun e -> Format.asprintf "%a" Typecheck.pp_error e) errs))
  | Ok info -> (
    match
      Encode.create ~transformation:trans ~metamodels ~models ~slack_objects:0 ()
    with
    | Error msg -> Error msg
    | Ok enc -> (
      try
        let sem = Semantics.create ?mode enc info in
        let inst = Encode.check_instance enc in
        let universe = Encode.universe enc in
        let result =
          List.concat_map
            (fun (r : Ast.relation) ->
              if not r.Ast.r_top then []
              else begin
                let f = Semantics.match_formula sem r in
                (* Enumerate the product of the root extents. *)
                let roots =
                  List.map
                    (fun (d : Ast.domain) ->
                      let extent =
                        Relog.Eval.expr inst Relog.Eval.empty_env
                          (Encode.extent_expr enc ~param:d.Ast.d_model
                             ~cls:d.Ast.d_template.Ast.t_class)
                      in
                      ( d.Ast.d_template.Ast.t_var,
                        Relog.Rel.Tupleset.fold (fun t acc -> t.(0) :: acc) extent []
                      ))
                    r.Ast.r_domains
                in
                let rec product bound = function
                  | [] ->
                    let env =
                      List.fold_left
                        (fun env (v, idx) -> Mdl.Ident.Map.add v idx env)
                        Relog.Eval.empty_env bound
                    in
                    if Relog.Eval.formula inst env f then
                      [
                        {
                          tr_relation = r.Ast.r_name;
                          tr_roots =
                            List.rev_map
                              (fun (v, idx) -> (v, Relog.Rel.Universe.atom universe idx))
                              bound;
                        };
                      ]
                    else []
                  | (v, idxs) :: rest ->
                    List.concat_map (fun idx -> product ((v, idx) :: bound) rest) idxs
                in
                product [] roots
              end)
            trans.Ast.t_relations
        in
        Ok result
      with
      | Semantics.Compile_error msg -> Error msg
      | Relog.Eval.Eval_error msg -> Error msg))
