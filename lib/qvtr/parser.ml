module Ident = Mdl.Ident

let here lx = Lexer.span lx

let expect_punct lx p =
  match Lexer.token lx with
  | Lexer.Punct q when q = p -> Lexer.next lx
  | _ -> Lexer.error lx "expected '%s'" p

let accept_punct lx p =
  match Lexer.token lx with
  | Lexer.Punct q when q = p ->
    Lexer.next lx;
    true
  | _ -> false

let expect_kw lx kw =
  match Lexer.token lx with
  | Lexer.Ident id when id = kw -> Lexer.next lx
  | _ -> Lexer.error lx "expected keyword '%s'" kw

let accept_kw lx kw =
  match Lexer.token lx with
  | Lexer.Ident id when id = kw ->
    Lexer.next lx;
    true
  | _ -> false

let expect_ident lx =
  match Lexer.token lx with
  | Lexer.Ident id ->
    Lexer.next lx;
    id
  | _ -> Lexer.error lx "expected identifier"

let peek_ident lx =
  match Lexer.token lx with Lexer.Ident id -> Some id | _ -> None

(* ------------------------------------------------------------------ *)
(* Expressions                                                         *)

(* primary := literal | #lit | ident [@ model] | ( expr )
   postfix := primary { . ident }
   expr    := postfix { (++|**|--) postfix }                        *)
let rec parse_oexpr lx : Ast.oexpr =
  let lhs = parse_postfix lx in
  parse_binops lx lhs

and parse_binops lx lhs =
  match Lexer.token lx with
  | Lexer.Punct "++" ->
    Lexer.next lx;
    parse_binops lx (Ast.O_union (lhs, parse_postfix lx))
  | Lexer.Punct "**" ->
    Lexer.next lx;
    parse_binops lx (Ast.O_inter (lhs, parse_postfix lx))
  | Lexer.Punct "--" ->
    Lexer.next lx;
    parse_binops lx (Ast.O_diff (lhs, parse_postfix lx))
  | _ -> lhs

and parse_postfix lx =
  let e = ref (parse_primary lx) in
  while accept_punct lx "." do
    let f = expect_ident lx in
    e := Ast.O_nav (!e, Ident.make f)
  done;
  !e

and parse_primary lx =
  match Lexer.token lx with
  | Lexer.String s ->
    Lexer.next lx;
    Ast.O_str s
  | Lexer.Int i ->
    Lexer.next lx;
    Ast.O_int i
  | Lexer.Punct "#" ->
    Lexer.next lx;
    Ast.O_enum (Ident.make (expect_ident lx))
  | Lexer.Punct "(" ->
    Lexer.next lx;
    let e = parse_oexpr lx in
    expect_punct lx ")";
    e
  | Lexer.Ident "true" ->
    Lexer.next lx;
    Ast.O_bool true
  | Lexer.Ident "false" ->
    Lexer.next lx;
    Ast.O_bool false
  | Lexer.Ident id ->
    Lexer.next lx;
    if accept_punct lx "@" then
      let model = expect_ident lx in
      Ast.O_all (Ident.make model, Ident.make id)
    else Ast.O_var (Ident.make id)
  | _ -> Lexer.error lx "expected an expression"

(* ------------------------------------------------------------------ *)
(* Predicates                                                          *)

(* pred    := orpred [implies pred]
   orpred  := andpred { or andpred }
   andpred := atom { and atom }
   atom    := not atom | empty e | nonempty e | ( pred )
            | Name(args) | e (=|<>|in) e                            *)
let rec parse_pred lx : Ast.pred =
  let lhs = parse_or lx in
  if accept_kw lx "implies" then Ast.P_implies (lhs, parse_pred lx) else lhs

and parse_or lx =
  let lhs = ref (parse_and lx) in
  while accept_kw lx "or" do
    lhs := Ast.P_or (!lhs, parse_and lx)
  done;
  !lhs

and parse_and lx =
  let lhs = ref (parse_atom lx) in
  while accept_kw lx "and" do
    lhs := Ast.P_and (!lhs, parse_atom lx)
  done;
  !lhs

and parse_atom lx =
  match Lexer.token lx with
  | Lexer.Ident "not" ->
    Lexer.next lx;
    Ast.P_not (parse_atom lx)
  | Lexer.Ident "empty" ->
    Lexer.next lx;
    Ast.P_empty (parse_oexpr lx)
  | Lexer.Ident "nonempty" ->
    Lexer.next lx;
    Ast.P_nonempty (parse_oexpr lx)
  | Lexer.Ident "true" when not (is_comparison_ahead lx) ->
    Lexer.next lx;
    Ast.P_true
  | Lexer.Punct "(" ->
    (* Ambiguity: '(' may open a parenthesised predicate or a
       parenthesised expression that is the left side of a comparison
       ("(a ++ b) = c"). Try the predicate reading first and backtrack
       to the comparison reading on failure. *)
    let save = Lexer.snapshot lx in
    (try
       Lexer.next lx;
       let p = parse_pred lx in
       expect_punct lx ")";
       p
     with Lexer.Error _ ->
       Lexer.restore lx save;
       parse_comparison lx)
  | Lexer.Ident name when is_call_ahead lx ->
    Lexer.next lx;
    expect_punct lx "(";
    let rec args acc =
      let a = expect_ident lx in
      if accept_punct lx "," then args (Ident.make a :: acc)
      else begin
        expect_punct lx ")";
        List.rev (Ident.make a :: acc)
      end
    in
    Ast.P_call (Ident.make name, args [])
  | _ -> parse_comparison lx

and parse_comparison lx =
    let a = parse_oexpr lx in
    (match Lexer.token lx with
    | Lexer.Punct "=" ->
      Lexer.next lx;
      Ast.P_eq (a, parse_oexpr lx)
    | Lexer.Punct "<>" ->
      Lexer.next lx;
      Ast.P_neq (a, parse_oexpr lx)
    | Lexer.Ident "in" ->
      Lexer.next lx;
      Ast.P_in (a, parse_oexpr lx)
    | Lexer.Punct "<" ->
      Lexer.next lx;
      Ast.P_lt (a, parse_oexpr lx)
    | Lexer.Punct "<=" ->
      Lexer.next lx;
      Ast.P_le (a, parse_oexpr lx)
    | Lexer.Punct ">" ->
      Lexer.next lx;
      let b = parse_oexpr lx in
      Ast.P_lt (b, a)
    | Lexer.Punct ">=" ->
      Lexer.next lx;
      let b = parse_oexpr lx in
      Ast.P_le (b, a)
    | _ -> Lexer.error lx "expected a comparison ('=', '<>', 'in', '<', ...)")

(* One-token lookahead helpers on the raw source: a relation call is
   Ident '(' with capitalized... we cannot re-peek beyond the current
   token with this lexer, so clone it. *)
and is_call_ahead lx =
  match Lexer.token lx with
  | Lexer.Ident _ ->
    let save = Lexer.snapshot lx in
    Lexer.next lx;
    let is_call = Lexer.token lx = Lexer.Punct "(" in
    Lexer.restore lx save;
    is_call
  | _ -> false

and is_comparison_ahead lx =
  let save = Lexer.snapshot lx in
  Lexer.next lx;
  let ahead =
    match Lexer.token lx with
    | Lexer.Punct ("=" | "<>" | "." | "++" | "**" | "--" | "<" | "<=" | ">" | ">=") ->
      true
    | Lexer.Ident "in" -> true
    | _ -> false
  in
  Lexer.restore lx save;
  ahead

(* ------------------------------------------------------------------ *)
(* Templates and domains                                               *)

let rec parse_template lx : Ast.template =
  let loc = here lx in
  let v = expect_ident lx in
  expect_punct lx ":";
  let cls = expect_ident lx in
  expect_punct lx "{";
  let props = ref [] in
  if not (accept_punct lx "}") then begin
    let rec go () =
      let p_loc = here lx in
      let f = expect_ident lx in
      expect_punct lx "=";
      (* Lookahead: ident ':' starts a nested template. *)
      let is_template =
        match Lexer.token lx with
        | Lexer.Ident _ ->
          let save = Lexer.snapshot lx in
          Lexer.next lx;
          let r = Lexer.token lx = Lexer.Punct ":" in
          Lexer.restore lx save;
          r
        | _ -> false
      in
      let value =
        if is_template then Ast.PV_template (parse_template lx)
        else Ast.PV_expr (parse_oexpr lx)
      in
      props :=
        { Ast.p_feature = Ident.make f; p_value = value; p_loc } :: !props;
      if accept_punct lx "," then go () else expect_punct lx "}"
    in
    go ()
  end;
  {
    Ast.t_var = Ident.make v;
    t_class = Ident.make cls;
    t_props = List.rev !props;
    t_loc = loc;
  }

let parse_domain lx ~enforceable ~loc =
  expect_kw lx "domain";
  let model = expect_ident lx in
  let tpl = parse_template lx in
  expect_punct lx ";";
  {
    Ast.d_model = Ident.make model;
    d_template = tpl;
    d_enforceable = enforceable;
    d_loc = loc;
  }

(* ------------------------------------------------------------------ *)
(* Variable declarations                                               *)

let parse_var_type lx : Ast.var_type =
  let id = expect_ident lx in
  if accept_punct lx "@" then
    let model = expect_ident lx in
    Ast.T_class (Ident.make model, Ident.make id)
  else
    match id with
    | "String" -> Ast.T_string
    | "Integer" -> Ast.T_int
    | "Boolean" -> Ast.T_bool
    | other -> Ast.T_enum (Ident.make other)

(* ------------------------------------------------------------------ *)
(* Relations and transformations                                       *)

let parse_pred_block lx =
  expect_punct lx "{";
  let preds = ref [] in
  if not (accept_punct lx "}") then begin
    let rec go () =
      let loc = here lx in
      let p = parse_pred lx in
      preds := { Ast.c_pred = p; c_loc = loc } :: !preds;
      if accept_punct lx ";" then begin
        if accept_punct lx "}" then () else go ()
      end
      else expect_punct lx "}"
    in
    go ()
  end;
  List.rev !preds

let parse_dependencies lx =
  expect_punct lx "{";
  let deps = ref [] in
  if not (accept_punct lx "}") then begin
    let rec go () =
      let loc = here lx in
      let rec sources acc =
        let s = expect_ident lx in
        if accept_punct lx "->" then List.rev (s :: acc) else sources (s :: acc)
      in
      let srcs = sources [] in
      let target = expect_ident lx in
      deps :=
        {
          Ast.dep_sources = List.map Ident.make srcs;
          dep_target = Ident.make target;
          dep_loc = loc;
        }
        :: !deps;
      if accept_punct lx ";" then begin
        if accept_punct lx "}" then () else go ()
      end
      else expect_punct lx "}"
    in
    go ()
  end;
  List.rev !deps

let parse_relation lx ~top ~loc =
  expect_kw lx "relation";
  let name = expect_ident lx in
  expect_punct lx "{";
  let vars = ref [] and domains = ref [] and prims = ref [] in
  let when_ = ref [] and where = ref [] and deps = ref [] in
  let rec body () =
    let member_loc = here lx in
    match Lexer.token lx with
    | Lexer.Punct "}" -> Lexer.next lx
    | Lexer.Ident "checkonly" ->
      Lexer.next lx;
      domains := parse_domain lx ~enforceable:false ~loc:member_loc :: !domains;
      body ()
    | Lexer.Ident "enforce" ->
      Lexer.next lx;
      domains := parse_domain lx ~enforceable:true ~loc:member_loc :: !domains;
      body ()
    | Lexer.Ident "primitive" ->
      Lexer.next lx;
      expect_kw lx "domain";
      let v_loc = here lx in
      let v = expect_ident lx in
      expect_punct lx ":";
      let ty = parse_var_type lx in
      expect_punct lx ";";
      prims := { Ast.v_name = Ident.make v; v_type = ty; v_loc } :: !prims;
      body ()
    | Lexer.Ident "domain" ->
      domains := parse_domain lx ~enforceable:true ~loc:member_loc :: !domains;
      body ()
    | Lexer.Ident "when" ->
      Lexer.next lx;
      when_ := parse_pred_block lx;
      body ()
    | Lexer.Ident "where" ->
      Lexer.next lx;
      where := parse_pred_block lx;
      body ()
    | Lexer.Ident "dependencies" ->
      Lexer.next lx;
      deps := parse_dependencies lx;
      body ()
    | Lexer.Ident _ ->
      (* variable declaration: v : Type ; *)
      let v = expect_ident lx in
      expect_punct lx ":";
      let ty = parse_var_type lx in
      expect_punct lx ";";
      vars := { Ast.v_name = Ident.make v; v_type = ty; v_loc = member_loc } :: !vars;
      body ()
    | _ -> Lexer.error lx "expected a relation member or '}'"
  in
  body ();
  {
    Ast.r_name = Ident.make name;
    r_top = top;
    r_vars = List.rev !vars;
    r_prims = List.rev !prims;
    r_domains = List.rev !domains;
    r_when = !when_;
    r_where = !where;
    r_deps = !deps;
    r_loc = loc;
  }

let parse_transformation lx =
  let t_loc = here lx in
  expect_kw lx "transformation";
  let name = expect_ident lx in
  expect_punct lx "(";
  let rec params acc =
    let par_loc = here lx in
    let p = expect_ident lx in
    expect_punct lx ":";
    let mm = expect_ident lx in
    let acc =
      { Ast.par_name = Ident.make p; par_mm = Ident.make mm; par_loc } :: acc
    in
    if accept_punct lx "," then params acc
    else begin
      expect_punct lx ")";
      List.rev acc
    end
  in
  let params = params [] in
  expect_punct lx "{";
  let relations = ref [] in
  let rec decls () =
    let loc = here lx in
    if accept_kw lx "top" then begin
      relations := parse_relation lx ~top:true ~loc :: !relations;
      decls ()
    end
    else if peek_ident lx = Some "relation" then begin
      relations := parse_relation lx ~top:false ~loc :: !relations;
      decls ()
    end
    else expect_punct lx "}"
  in
  decls ();
  {
    Ast.t_name = Ident.make name;
    t_params = params;
    t_relations = List.rev !relations;
    t_loc;
  }

let parse_located ?file src =
  try
    let lx = Lexer.make ?file src in
    let t = parse_transformation lx in
    (match Lexer.token lx with
    | Lexer.Eof -> ()
    | _ -> Lexer.error lx "trailing input");
    Ok t
  with Lexer.Error { loc; msg } -> Error (loc, msg)

let parse ?file src =
  match parse_located ?file src with
  | Ok t -> Ok t
  | Error (loc, msg) -> Error (Lexer.render_error ~loc ~msg)

let parse_exn src =
  match parse src with
  | Ok t -> t
  | Error msg -> invalid_arg ("Parser.parse_exn: " ^ msg)

let to_string t = Format.asprintf "%a" Ast.pp_transformation t
