(** Checking dependencies and their entailment (paper §2.2–2.3).

    A dependency [S -> T] is a definite Horn clause over the model
    parameters of a relation: body [S], head [T]. A relation's
    semantics is the conjunction of its directional checks, one per
    dependency; a call of relation [R'] in direction [d] type-checks
    when [R'] 's dependency set entails [d] ({!entails}) — decidable in
    linear time by unit propagation, as the paper notes.

    The derived-dependency laws of §2.2 are provided as combinators:
    {!entails_multi} realises
    [{M1->M2, M1->M3} |- M1 -> M2 M3] (conjunctive heads) and union
    bodies are already captured by plain entailment
    ([{M1->M3, M2->M3} |- M1|M2 -> M3] holds because each disjunct is
    entailed separately). *)

type t = Ast.dependency

val make : sources:string list -> target:string -> t
(** Programmatic constructor; the location is {!Loc.none}. *)

val standard : Mdl.Ident.t list -> t list
(** The full dependency set [⋃ᵢ (dom R \ Mᵢ -> Mᵢ)], which by the
    paper's conservativity remark reproduces the standard QVT-R
    checking semantics. *)

val effective : Ast.relation -> t list
(** The relation's dependency set: its [dependencies] block when
    non-empty, else {!standard} over its domains' models. *)

val validate :
  domains:Mdl.Ident.t list -> t list -> (unit, (t * string) list) result
(** Each dependency must mention only the relation's model parameters,
    have a non-empty source set, not include its target among its
    sources, and not repeat an earlier dependency of the block (source
    sets compare as sets, so [a b -> c] duplicates [b a -> c]). All
    offending dependencies are reported, each paired with its message,
    in declaration order. *)

val entails : t list -> t -> bool
(** [entails deps (S -> T)]: starting from the facts [S] and closing
    under [deps] (unit propagation), is [T] derivable? Runs in time
    linear in the total size of [deps]. *)

val entails_multi : t list -> sources:Mdl.Ident.t list -> targets:Mdl.Ident.t list -> bool
(** Conjunctive-head entailment: every target derivable from the
    sources. [entails_multi deps ~sources:[M1] ~targets:[M2; M3]]
    is the paper's [{...} |- M1 -> M2 M3]. *)

val closure : t list -> sources:Mdl.Ident.t list -> Mdl.Ident.Set.t
(** All model parameters derivable from the sources (including the
    sources themselves). *)

val pp : Format.formatter -> t -> unit
