(** Encoding of models and metamodels into bounded relational logic.

    Mirrors Echo's embedding of EMF models in Alloy:

    - every object of model parameter [p] becomes an atom [p#i];
    - every primitive value becomes a shared value atom;
    - each class [C] of [p] yields a unary relation [p$cls$C] holding
      its {e exact} extent (subclass inclusion is expressed by union
      expressions, see {!extent_expr});
    - each feature [f] yields a binary relation [p$ft$f] relating
      objects to attribute values or reference targets.

    For [checkonly] the encoding is a concrete {!Relog.Instance}; for
    enforcement it is a {!Relog.Bounds}: frozen models are bound
    exactly, target models range over their current tuples plus
    everything constructible from the universe — including [slack]
    fresh object atoms per model, which is how the bounded search can
    {e create} objects (Echo's incremental scope extension).

    Bounded-universe caveat (as in Alloy): attribute values available
    to a repair are the values occurring in the models, literals in
    the transformation text, plus caller-supplied [extra_values]. *)

type t

val create :
  transformation:Ast.transformation ->
  metamodels:(Mdl.Ident.t * Mdl.Metamodel.t) list ->
  models:(Mdl.Ident.t * Mdl.Model.t) list ->
  ?extra_values:Mdl.Value.t list ->
  ?slack_objects:int ->
  ?base:Mdl.Ident.t list ->
  unit ->
  (t, string) result
(** [metamodels] maps metamodel names to metamodels; [models] maps
    every transformation parameter to a model of its declared
    metamodel. [slack_objects] (default 2) is the number of fresh
    object atoms added per target model. [base] is a previous
    encoding's atom sequence (see {!Relog.Rel.Universe.atoms}): the
    new universe starts with [base] verbatim — atoms the new encoding
    does not need become inert padding — and appends only genuinely
    new atoms, so the two universes are prefix-compatible
    ({!Relog.Bounds.universe_compatible}) and index-keyed translation
    state survives a re-encode. Fails on: missing/mistyped parameter
    bindings, or a metamodel whose same-named features have
    incompatible declarations (the encoding keys feature relations by
    name). *)

val transformation : t -> Ast.transformation
val universe : t -> Relog.Rel.Universe.t
val model_of_param : t -> Mdl.Ident.t -> Mdl.Model.t
val metamodel_of_param : t -> Mdl.Ident.t -> Mdl.Metamodel.t
val params : t -> Mdl.Ident.t list

val check_instance : t -> Relog.Instance.t
(** Exact encoding of all bound models (the input to {!Relog.Eval}). *)

val bounds : t -> targets:Mdl.Ident.Set.t -> Relog.Bounds.t
(** Bounds for enforcement: parameters in [targets] are mutable. *)

val structural_formulas :
  ?symmetry:bool -> t -> param:Mdl.Ident.t -> Relog.Ast.formula list
(** Conformance of a mutable model as relational constraints:
    disjoint class extents, feature domains/ranges, slot
    multiplicities, opposite symmetry, containment (unique container,
    no cycles), and — unless [symmetry] is [false] — the slack
    symmetry chain of {!slack_symmetry_formulas}. *)

val slack_symmetry_formulas : t -> param:Mdl.Ident.t -> Relog.Ast.formula list
(** Symmetry breaking over the interchangeable slack atoms, one
    formula per adjacent ordinal pair [(k, k+1)] in order: the
    [(k+1)]-th fresh object may exist only if the [k]-th does.
    Separated from {!structural_formulas} so an incremental session
    can enable exactly the pairs covering its unconsumed window. *)

val decode_model :
  t ->
  ?atom_ids:(Mdl.Ident.t * Mdl.Model.obj_id) list ->
  ?first_fresh:int ->
  Relog.Instance.t ->
  param:Mdl.Ident.t ->
  (Mdl.Model.t, string) result
(** Rebuild a {!Mdl.Model} from a (possibly repaired) instance.
    Existing atoms keep their object ids; slack atoms get fresh ids.
    [atom_ids] pre-assigns ids to atoms (how an incremental session
    keeps the ids it handed out for slack atoms consumed by earlier
    edits); [first_fresh] is the first id given to an unmapped slack
    atom (default: one past the largest id of the bound model). *)

(** {2 Incremental-session support}

    A long-lived session re-states the {e facts} of an edited model as
    solver assumptions over one frozen encoding. These accessors
    expose what it needs: the fact tuples of a model whose objects may
    live on slack atoms, the slack atoms available per parameter, and
    the value universe (whose growth forces a re-encode). *)

val model_facts :
  t ->
  ?atom_of_id:(Mdl.Model.obj_id -> Mdl.Ident.t option) ->
  param:Mdl.Ident.t ->
  Mdl.Model.t ->
  (Mdl.Ident.t * Relog.Rel.Tuple.t) list
(** [(relation, tuple)] pairs encoding [model] exactly — the tuples
    that are {e true} of it; relations of the parameter not listed
    hold no tuple. Like the internal exact encoding, except objects
    need not be objects of the originally bound model: ids unknown to
    the encoding are resolved through [atom_of_id] (typically to a
    consumed slack atom). Raises [Invalid_argument] on an id neither
    bound nor resolved, or a value outside the universe. *)

val slack_atom_names : t -> Mdl.Ident.t -> Mdl.Ident.t list
(** Fresh object atoms of a parameter, in symmetry-chain order (the
    [k+1]-th may be populated only if the [k]-th is). *)

val has_value : t -> Mdl.Value.t -> bool
(** Whether a value has an atom in the universe. An edit introducing a
    value outside it cannot be expressed over this encoding. *)

val values : t -> Mdl.Value.t list
(** All values with atoms in the universe (sorted). Feeding these back
    as [extra_values] of a later {!create} reproduces the same value
    universe plus whatever the new models add. *)

val atom_index : t -> Mdl.Ident.t -> int
(** Universe index of an atom name. Raises [Invalid_argument] on
    unknown atoms. *)

(** {2 Expression building blocks for the semantics compiler} *)

val extent_expr : t -> param:Mdl.Ident.t -> cls:Mdl.Ident.t -> Relog.Ast.expr
(** Union of the exact extents of all concrete subclasses. *)

val feature_rel : t -> param:Mdl.Ident.t -> feature:Mdl.Ident.t -> Relog.Ast.expr

val type_expr : t -> Ast.var_type -> Relog.Ast.expr
(** The unary relation of values/objects inhabiting a variable type. *)

val lt_rel : Relog.Ast.expr
(** The constant strict-order relation over the integer atoms of the
    universe (used to compile [<] / [<=]). *)

val value_atom : t -> Mdl.Value.t -> Relog.Ast.expr
(** Singleton expression for a literal. Raises [Invalid_argument] if
    the value is outside the universe (it never is for literals the
    transformation mentions). *)

val obj_atom_name : Mdl.Ident.t -> Mdl.Model.obj_id -> Mdl.Ident.t
(** The atom naming scheme, exposed for tests: [p#i]. *)
