(** The [checkonly] engine: evaluate a transformation's consistency
    on concrete models.

    Each top relation contributes one directional check per effective
    dependency; the models are consistent when all checks hold. This
    evaluates the compiled formulas directly ({!Relog.Eval}) — no
    solver involved. *)

type verdict = {
  v_relation : Mdl.Ident.t;
  v_direction : Ast.dependency;
  v_holds : bool;
  v_witness : (Mdl.Ident.t * Mdl.Ident.t) list;
      (** for violated checks: a binding of the universally quantified
          variables to atoms exhibiting the failure (Echo-style
          inconsistency reporting); empty when the check holds or the
          failure is unquantified *)
}

type report = {
  consistent : bool;
  verdicts : verdict list;
  elapsed : float;
      (** wall seconds for the whole check: type checking, encoding,
          semantics compilation and evaluation *)
}

val pp_report : Format.formatter -> report -> unit

val run :
  ?mode:Semantics.mode ->
  Ast.transformation ->
  metamodels:(Mdl.Ident.t * Mdl.Metamodel.t) list ->
  models:(Mdl.Ident.t * Mdl.Model.t) list ->
  (report, string) result
(** Type-checks, encodes, compiles and evaluates. [Error] carries the
    first type/encoding error rendered as text. *)

val run_exn :
  ?mode:Semantics.mode ->
  Ast.transformation ->
  metamodels:(Mdl.Ident.t * Mdl.Metamodel.t) list ->
  models:(Mdl.Ident.t * Mdl.Model.t) list ->
  report

(** {2 Traces}

    QVT-R's trace (relation-instance) concept: which tuples of objects
    a relation actually matches on the given models. Echo displays
    these as inter-model links. *)

type trace = {
  tr_relation : Mdl.Ident.t;
  tr_roots : (Mdl.Ident.t * Mdl.Ident.t) list;
      (** one (root variable, atom) pair per domain, in domain order *)
}

val pp_trace : Format.formatter -> trace -> unit

val traces :
  ?mode:Semantics.mode ->
  Ast.transformation ->
  metamodels:(Mdl.Ident.t * Mdl.Metamodel.t) list ->
  models:(Mdl.Ident.t * Mdl.Model.t) list ->
  (trace list, string) result
(** All matches of all top relations: bindings of the domain roots for
    which the patterns, [when] and [where] hold. *)
