module Ident = Mdl.Ident
module Value = Mdl.Value
module MM = Mdl.Metamodel
module Model = Mdl.Model
module TS = Relog.Rel.Tupleset
module RAst = Relog.Ast

type t = {
  trans : Ast.transformation;
  (* param -> (model, metamodel) *)
  binding : (Model.t * MM.t) Ident.Map.t;
  universe : Relog.Rel.Universe.t;
  (* object atoms: param -> obj id -> atom index; and the reverse *)
  obj_index : int Ident.Map.t;  (* atom -> universe index, all atoms *)
  atom_kind : kind Ident.Map.t;
  value_index : Ident.t Value.Map.t;  (* value -> atom name *)
  slack : Ident.t list Ident.Map.t;  (* param -> slack atom names *)
}

and kind =
  | K_obj of Ident.t * Model.obj_id  (* param, id *)
  | K_slack of Ident.t * int  (* param, slack ordinal *)
  | K_value of Value.t

let obj_atom_name p i = Ident.make (Printf.sprintf "%s#%d" (Ident.name p) i)
let slack_atom_name p k = Ident.make (Printf.sprintf "%s#s%d" (Ident.name p) k)

let value_atom_name (v : Value.t) =
  Ident.make
    (match v with
    | Value.Str s -> "s~" ^ s
    | Value.Int i -> "i~" ^ string_of_int i
    | Value.Bool b -> "b~" ^ string_of_bool b
    | Value.Enum e -> "e~" ^ Ident.name e)

(* Relation naming. *)
let cls_rel_name p c = Ident.make (Printf.sprintf "%s$cls$%s" (Ident.name p) (Ident.name c))
let ft_rel_name p f = Ident.make (Printf.sprintf "%s$ft$%s" (Ident.name p) (Ident.name f))
let val_string = Ident.make "val$string"
let val_int = Ident.make "val$int"
let val_bool = Ident.make "val$bool"
let val_enum e = Ident.make ("val$enum$" ^ Ident.name e)
let val_lt = Ident.make "val$lt"

(* ------------------------------------------------------------------ *)
(* Literal collection                                                  *)

let rec oexpr_values (e : Ast.oexpr) acc =
  match e with
  | Ast.O_str s -> Value.Set.add (Value.Str s) acc
  | Ast.O_int i -> Value.Set.add (Value.Int i) acc
  | Ast.O_bool b -> Value.Set.add (Value.Bool b) acc
  | Ast.O_enum l -> Value.Set.add (Value.Enum l) acc
  | Ast.O_var _ | Ast.O_all _ -> acc
  | Ast.O_nav (e, _) -> oexpr_values e acc
  | Ast.O_union (a, b) | Ast.O_inter (a, b) | Ast.O_diff (a, b) ->
    oexpr_values a (oexpr_values b acc)

let rec pred_values (p : Ast.pred) acc =
  match p with
  | Ast.P_true | Ast.P_call _ -> acc
  | Ast.P_eq (a, b) | Ast.P_neq (a, b) | Ast.P_in (a, b) | Ast.P_lt (a, b)
  | Ast.P_le (a, b) ->
    oexpr_values a (oexpr_values b acc)
  | Ast.P_empty a | Ast.P_nonempty a -> oexpr_values a acc
  | Ast.P_not p -> pred_values p acc
  | Ast.P_and (a, b) | Ast.P_or (a, b) | Ast.P_implies (a, b) ->
    pred_values a (pred_values b acc)

let rec template_values (tpl : Ast.template) acc =
  List.fold_left
    (fun acc (prop : Ast.property) ->
      match prop.Ast.p_value with
      | Ast.PV_expr e -> oexpr_values e acc
      | Ast.PV_template t -> template_values t acc)
    acc tpl.Ast.t_props

let transformation_values (trans : Ast.transformation) =
  List.fold_left
    (fun acc (r : Ast.relation) ->
      let acc =
        List.fold_left
          (fun acc (d : Ast.domain) -> template_values d.Ast.d_template acc)
          acc r.Ast.r_domains
      in
      let acc =
        List.fold_left
          (fun acc (c : Ast.clause) -> pred_values c.Ast.c_pred acc)
          acc r.Ast.r_when
      in
      List.fold_left
        (fun acc (c : Ast.clause) -> pred_values c.Ast.c_pred acc)
        acc r.Ast.r_where)
    Value.Set.empty trans.Ast.t_relations

(* ------------------------------------------------------------------ *)
(* Feature compatibility: relations are keyed by feature name within a
   model, so same-named features of one metamodel must agree. *)

type feature_kind =
  | F_attr of MM.prim
  | F_ref

let feature_table mm =
  let tbl : (Ident.t, feature_kind) Hashtbl.t = Hashtbl.create 16 in
  let conflict = ref None in
  List.iter
    (fun (c : MM.cls) ->
      List.iter
        (fun (a : MM.attribute) ->
          match Hashtbl.find_opt tbl a.MM.attr_name with
          | None -> Hashtbl.add tbl a.MM.attr_name (F_attr a.MM.attr_type)
          | Some (F_attr t) when t = a.MM.attr_type -> ()
          | Some _ ->
            conflict :=
              Some
                (Printf.sprintf "feature %s declared incompatibly in metamodel %s"
                   (Ident.name a.MM.attr_name)
                   (Ident.name (MM.name mm))))
        c.MM.cls_attrs;
      List.iter
        (fun (r : MM.reference) ->
          match Hashtbl.find_opt tbl r.MM.ref_name with
          | None -> Hashtbl.add tbl r.MM.ref_name F_ref
          | Some F_ref -> ()
          | Some (F_attr _) ->
            conflict :=
              Some
                (Printf.sprintf "feature %s declared incompatibly in metamodel %s"
                   (Ident.name r.MM.ref_name)
                   (Ident.name (MM.name mm))))
        c.MM.cls_refs)
    (MM.classes mm);
  match !conflict with Some msg -> Error msg | None -> Ok tbl

(* ------------------------------------------------------------------ *)
(* Creation                                                            *)

let default_slack = 2

let create ~transformation:trans ~metamodels ~models ?(extra_values = [])
    ?(slack_objects = default_slack) ?(base = []) () =
  let ( let* ) = Result.bind in
  (* Resolve the parameter binding. *)
  let* binding =
    List.fold_left
      (fun acc ({ Ast.par_name = p; par_mm = mm_name; par_loc = _ } : Ast.param) ->
        let* acc = acc in
        match List.find_opt (fun (pm, _) -> Ident.equal pm p) models with
        | None -> Error (Printf.sprintf "no model bound to parameter %s" (Ident.name p))
        | Some (_, model) -> (
          match
            List.find_opt (fun (n, _) -> Ident.equal n mm_name) metamodels
          with
          | None ->
            Error (Printf.sprintf "unknown metamodel %s" (Ident.name mm_name))
          | Some (_, mm) ->
            if not (Ident.equal (MM.name (Model.metamodel model)) mm_name) then
              Error
                (Printf.sprintf "model for %s conforms to %s, expected %s"
                   (Ident.name p)
                   (Ident.name (MM.name (Model.metamodel model)))
                   (Ident.name mm_name))
            else Ok (Ident.Map.add p (model, mm) acc)))
      (Ok Ident.Map.empty) trans.Ast.t_params
  in
  (* Validate feature tables. *)
  let* () =
    Ident.Map.fold
      (fun _ (_, mm) acc ->
        let* () = acc in
        let* _ = feature_table mm in
        Ok ())
      binding (Ok ())
  in
  (* Value universe. *)
  let values =
    Ident.Map.fold
      (fun _ (model, _) acc -> Value.Set.union acc (Model.all_values model))
      binding Value.Set.empty
  in
  let values = Value.Set.union values (transformation_values trans) in
  let values =
    List.fold_left (fun acc v -> Value.Set.add v acc) values extra_values
  in
  let values = Value.Set.add (Value.Bool true) (Value.Set.add (Value.Bool false) values) in
  let values =
    Ident.Map.fold
      (fun _ (_, mm) acc ->
        List.fold_left
          (fun acc (e : MM.enum) ->
            List.fold_left
              (fun acc lit -> Value.Set.add (Value.Enum lit) acc)
              acc e.MM.enum_literals)
          acc (MM.enums mm))
      binding values
  in
  (* Atoms. *)
  let atoms = ref [] and kinds = ref Ident.Map.empty in
  let add_atom name kind =
    atoms := name :: !atoms;
    kinds := Ident.Map.add name kind !kinds
  in
  Ident.Map.iter
    (fun p (model, _) ->
      List.iter (fun id -> add_atom (obj_atom_name p id) (K_obj (p, id))) (Model.objects model))
    binding;
  let slack =
    Ident.Map.mapi
      (fun p _ ->
        List.init slack_objects (fun k ->
            let a = slack_atom_name p k in
            add_atom a (K_slack (p, k));
            a))
      binding
  in
  let value_index =
    Value.Set.fold
      (fun v acc ->
        let a = value_atom_name v in
        add_atom a (K_value v);
        Value.Map.add v a acc)
      values Value.Map.empty
  in
  (* Prefix-compatible universes: [base] (a previous encoding's atom
     sequence) comes first, position for position, then whatever this
     encoding wants that [base] lacks. Every surviving atom keeps its
     index, so index-keyed translation state (primary variables, memo
     entries) stays valid across re-encodes. Base atoms this encoding
     does not want — deleted objects — stay in the universe as inert
     padding: they are in no bound and get no [atom_kind], so
     {!atom_index} rejects them and no fact can be stated on them. *)
  let wanted = List.rev !atoms in
  let atom_list =
    match base with
    | [] -> wanted
    | base ->
      let in_base =
        List.fold_left (fun s a -> Ident.Set.add a s) Ident.Set.empty base
      in
      base @ List.filter (fun a -> not (Ident.Set.mem a in_base)) wanted
  in
  let universe = Relog.Rel.Universe.make atom_list in
  let obj_index =
    List.fold_left
      (fun acc a -> Ident.Map.add a (Relog.Rel.Universe.index universe a) acc)
      Ident.Map.empty atom_list
  in
  Ok
    {
      trans;
      binding;
      universe;
      obj_index;
      atom_kind = !kinds;
      value_index;
      slack;
    }

let transformation t = t.trans
let universe t = t.universe

let lookup_param t p =
  match Ident.Map.find_opt p t.binding with
  | Some b -> b
  | None -> invalid_arg (Printf.sprintf "Encode: unknown parameter %s" (Ident.name p))

let model_of_param t p = fst (lookup_param t p)
let metamodel_of_param t p = snd (lookup_param t p)
let params t = List.map (fun (p : Ast.param) -> p.Ast.par_name) t.trans.Ast.t_params

let slack_atom_names t p =
  Option.value ~default:[] (Ident.Map.find_opt p t.slack)

let has_value t v = Value.Map.mem v t.value_index

let values t = List.map fst (Value.Map.bindings t.value_index)

(* Dead base atoms (in the universe only as index padding) have no
   kind and are rejected: stating a fact on one, or treating one as a
   known object, would be silently meaningless — it is in no bound. *)
let atom_idx t name =
  match Ident.Map.find_opt name t.obj_index with
  | Some i when Ident.Map.mem name t.atom_kind -> i
  | Some _ | None ->
    invalid_arg (Printf.sprintf "Encode: unknown atom %s" (Ident.name name))

let atom_index = atom_idx

let value_idx t v =
  match Value.Map.find_opt v t.value_index with
  | Some a -> atom_idx t a
  | None ->
    invalid_arg
      (Printf.sprintf "Encode: value %s outside the universe" (Value.to_string v))

(* ------------------------------------------------------------------ *)
(* Exact encoding of models                                            *)

let tuples_with t p model ~obj =
  (* (relation name, tuple) pairs for one model, object atoms resolved
     through [obj]. *)
  let cls_tuples =
    Model.fold_objects
      (fun id cls acc ->
        let r = cls_rel_name p cls in
        (r, [| obj id |]) :: acc)
      model []
  in
  let attr_tuples =
    Model.fold_attr_slots
      (fun id a vs acc ->
        let r = ft_rel_name p a in
        List.fold_left (fun acc v -> (r, [| obj id; value_idx t v |]) :: acc) acc vs)
      model []
  in
  let ref_tuples =
    Model.fold_ref_edges
      (fun src rf dst acc -> (ft_rel_name p rf, [| obj src; obj dst |]) :: acc)
      model []
  in
  cls_tuples @ attr_tuples @ ref_tuples

let model_tuples t p model =
  tuples_with t p model ~obj:(fun i -> atom_idx t (obj_atom_name p i))

let model_facts t ?atom_of_id ~param model =
  let p = param in
  let obj i =
    let a = obj_atom_name p i in
    if Ident.Map.mem a t.atom_kind then atom_idx t a
    else
      match Option.bind atom_of_id (fun f -> f i) with
      | Some a -> atom_idx t a
      | None ->
        invalid_arg
          (Printf.sprintf "Encode.model_facts: no atom for object #%d of %s" i
             (Ident.name p))
  in
  tuples_with t p model ~obj

(* Relation names that must exist (possibly empty) for a model: every
   class and feature of its metamodel. *)
let declared_rels t p =
  let mm = metamodel_of_param t p in
  let cls_rels = List.map (fun (c : MM.cls) -> cls_rel_name p c.MM.cls_name) (MM.classes mm) in
  let ft_rels =
    List.concat_map
      (fun (c : MM.cls) ->
        List.map (fun (a : MM.attribute) -> ft_rel_name p a.MM.attr_name) c.MM.cls_attrs
        @ List.map (fun (r : MM.reference) -> ft_rel_name p r.MM.ref_name) c.MM.cls_refs)
      (MM.classes mm)
  in
  List.sort_uniq Ident.compare (cls_rels @ ft_rels)

let value_relations t =
  let by_pred pred =
    Value.Map.fold
      (fun v a acc -> if pred v then TS.union acc (TS.singleton [| atom_idx t a |]) else acc)
      t.value_index TS.empty
  in
  let strings = by_pred (function Value.Str _ -> true | _ -> false) in
  let ints = by_pred (function Value.Int _ -> true | _ -> false) in
  let bools = by_pred (function Value.Bool _ -> true | _ -> false) in
  let enums =
    (* one relation per enum of any bound metamodel *)
    Ident.Map.fold
      (fun _ (_, mm) acc ->
        List.fold_left
          (fun acc (e : MM.enum) ->
            let ts =
              List.fold_left
                (fun ts lit ->
                  TS.union ts (TS.singleton [| value_idx t (Value.Enum lit) |]))
                TS.empty e.MM.enum_literals
            in
            (val_enum e.MM.enum_name, ts) :: acc)
          acc (MM.enums mm))
      t.binding []
  in
  (* strict order over the integer atoms of the (bounded) universe *)
  let int_pairs =
    Value.Map.fold
      (fun v a acc ->
        match v with
        | Value.Int x ->
          Value.Map.fold
            (fun w b acc ->
              match w with
              | Value.Int y when x < y ->
                TS.union acc (TS.singleton [| atom_idx t a; atom_idx t b |])
              | _ -> acc)
            t.value_index acc
        | _ -> acc)
      t.value_index TS.empty
  in
  [ (val_string, strings); (val_int, ints); (val_bool, bools); (val_lt, int_pairs) ]
  @ enums

let group_tuples pairs =
  List.fold_left
    (fun acc (r, tuple) ->
      let cur = Option.value ~default:TS.empty (Ident.Map.find_opt r acc) in
      Ident.Map.add r (TS.union cur (TS.singleton tuple)) acc)
    Ident.Map.empty pairs

let check_instance t =
  let inst = Relog.Instance.make t.universe in
  let inst =
    List.fold_left
      (fun inst (r, ts) -> Relog.Instance.set inst r ts)
      inst (value_relations t)
  in
  Ident.Map.fold
    (fun p (model, _) inst ->
      let grouped = group_tuples (model_tuples t p model) in
      (* Declared-but-empty relations must still be present. *)
      let inst =
        List.fold_left
          (fun inst r ->
            if Relog.Instance.mem inst r then inst else Relog.Instance.set inst r TS.empty)
          (Ident.Map.fold (fun r ts inst -> Relog.Instance.set inst r ts) grouped inst)
          (declared_rels t p)
      in
      inst)
    t.binding inst

(* ------------------------------------------------------------------ *)
(* Bounds for enforcement                                              *)

let all_obj_atoms t p =
  let model = model_of_param t p in
  let existing = List.map (fun i -> obj_atom_name p i) (Model.objects model) in
  let slack = Option.value ~default:[] (Ident.Map.find_opt p t.slack) in
  List.map (fun a -> [| atom_idx t a |]) (existing @ slack)

let type_tupleset t p (kind : feature_kind) =
  (* Upper bound of the second column of a feature relation. *)
  match kind with
  | F_ref ->
    TS.of_list (all_obj_atoms t p)
  | F_attr prim ->
    let pred (v : Value.t) =
      match (prim, v) with
      | MM.P_string, Value.Str _ -> true
      | MM.P_int, Value.Int _ -> true
      | MM.P_bool, Value.Bool _ -> true
      | MM.P_enum e, Value.Enum lit ->
        Ident.Map.exists
          (fun _ (_, mm) -> MM.has_enum_literal mm e lit)
          t.binding
      | (MM.P_string | MM.P_int | MM.P_bool | MM.P_enum _), _ -> false
    in
    Value.Map.fold
      (fun v a acc -> if pred v then TS.union acc (TS.singleton [| atom_idx t a |]) else acc)
      t.value_index TS.empty

let bounds t ~targets =
  let b = Relog.Bounds.make t.universe in
  (* Constant value relations. *)
  let b =
    List.fold_left
      (fun b (r, ts) -> Relog.Bounds.exact b r ts)
      b (value_relations t)
  in
  Ident.Map.fold
    (fun p (model, mm) b ->
      let grouped = group_tuples (model_tuples t p model) in
      let get r = Option.value ~default:TS.empty (Ident.Map.find_opt r grouped) in
      if not (Ident.Set.mem p targets) then
        (* Frozen: exact bounds, including declared-empty relations. *)
        List.fold_left (fun b r -> Relog.Bounds.exact b r (get r)) b (declared_rels t p)
      else begin
        let objs = TS.of_list (all_obj_atoms t p) in
        let ftbl = match feature_table mm with Ok x -> x | Error e -> invalid_arg e in
        List.fold_left
          (fun b (c : MM.cls) ->
            let b =
              if c.MM.cls_abstract then b
              else
                Relog.Bounds.bound b (cls_rel_name p c.MM.cls_name) ~lower:TS.empty
                  ~upper:objs
            in
            b)
          b (MM.classes mm)
        |> fun b ->
        (* Feature relations: collect feature names over the whole
           metamodel. *)
        let fts =
          Hashtbl.fold (fun f kind acc -> (f, kind) :: acc) ftbl []
          |> List.sort (fun (a, _) (b, _) -> Ident.compare_name a b)
        in
        List.fold_left
          (fun b (f, kind) ->
            let range = type_tupleset t p kind in
            Relog.Bounds.bound b (ft_rel_name p f) ~lower:TS.empty
              ~upper:(TS.product objs range))
          b fts
      end)
    t.binding b

(* ------------------------------------------------------------------ *)
(* Expressions                                                         *)

let extent_expr t ~param ~cls =
  let mm = metamodel_of_param t param in
  let concrete = MM.concrete_subclasses mm cls in
  let exprs =
    Ident.Set.fold
      (fun c acc -> RAst.Rel (cls_rel_name param c) :: acc)
      concrete []
  in
  match exprs with
  | [] -> RAst.None_
  | [ e ] -> e
  | e :: rest -> List.fold_left (fun acc e -> RAst.Union (acc, e)) e rest

let feature_rel _t ~param ~feature = RAst.Rel (ft_rel_name param feature)

let type_expr t (ty : Ast.var_type) =
  match ty with
  | Ast.T_string -> RAst.Rel val_string
  | Ast.T_int -> RAst.Rel val_int
  | Ast.T_bool -> RAst.Rel val_bool
  | Ast.T_enum e -> RAst.Rel (val_enum e)
  | Ast.T_class (p, c) -> extent_expr t ~param:p ~cls:c

let lt_rel = RAst.Rel val_lt

let value_atom t v =
  match Value.Map.find_opt v t.value_index with
  | Some a -> RAst.Atom a
  | None ->
    invalid_arg
      (Printf.sprintf "Encode.value_atom: %s outside the universe" (Value.to_string v))

(* ------------------------------------------------------------------ *)
(* Structural (conformance) formulas for mutable models                *)

let extents_union t p =
  let mm = metamodel_of_param t p in
  let concrete =
    List.filter (fun (c : MM.cls) -> not c.MM.cls_abstract) (MM.classes mm)
  in
  let exts = List.map (fun (c : MM.cls) -> RAst.Rel (cls_rel_name p c.MM.cls_name)) concrete in
  match exts with
  | [] -> RAst.None_
  | e :: rest -> List.fold_left (fun acc e -> RAst.Union (acc, e)) e rest

(* Symmetry breaking over the interchangeable slack atoms: the
   (k+1)-th fresh object may exist only if the k-th does. Prunes
   isomorphic repairs without excluding any model shape. Exposed as
   one formula per adjacent pair (in ordinal order) so an incremental
   session can enable only the pairs over its still-fresh window —
   atoms already consumed by edits are ordinary objects and must be
   deletable independently. *)
let slack_symmetry_formulas t ~param =
  let p = param in
  let union_exts = extents_union t p in
  let slack_atoms = Option.value ~default:[] (Ident.Map.find_opt p t.slack) in
  let rec slack_chain = function
    | a :: (b :: _ as rest) ->
      RAst.implies
        (RAst.Subset (RAst.Atom b, union_exts))
        (RAst.Subset (RAst.Atom a, union_exts))
      :: slack_chain rest
    | [ _ ] | [] -> []
  in
  slack_chain slack_atoms

let mult_formula (m : MM.mult) (e : RAst.expr) : RAst.formula list =
  let lower =
    match m.MM.lower with
    | 0 -> []
    | 1 -> [ RAst.Some_ e ]
    | _ ->
      (* Bounds above 1 are not expressible without counting; the
         decoder re-checks conformance, so approximate with Some. *)
      [ RAst.Some_ e ]
  in
  let upper =
    match m.MM.upper with
    | Some 0 -> [ RAst.No e ]
    | Some 1 -> [ RAst.Lone e ]
    | Some _ | None -> []
  in
  lower @ upper

let structural_formulas ?(symmetry = true) t ~param =
  let mm = metamodel_of_param t param in
  let p = param in
  let x = Ident.make "$x" in
  let concrete =
    List.filter (fun (c : MM.cls) -> not c.MM.cls_abstract) (MM.classes mm)
  in
  let exts = List.map (fun (c : MM.cls) -> RAst.Rel (cls_rel_name p c.MM.cls_name)) concrete in
  let union_exts =
    match exts with
    | [] -> RAst.None_
    | e :: rest -> List.fold_left (fun acc e -> RAst.Union (acc, e)) e rest
  in
  (* 1. Disjoint class extents. *)
  let rec disjoint = function
    | [] | [ _ ] -> []
    | e :: rest ->
      List.map (fun e' -> RAst.No (RAst.Inter (e, e'))) rest @ disjoint rest
  in
  let disjointness = disjoint exts in
  (* 2. Feature domains, ranges, multiplicities. *)
  let feature_constraints =
    List.concat_map
      (fun (c : MM.cls) ->
        if c.MM.cls_abstract then []
        else begin
          let ext = RAst.Rel (cls_rel_name p c.MM.cls_name) in
          let attrs = MM.all_attributes mm c.MM.cls_name in
          let refs = MM.all_references mm c.MM.cls_name in
          let per_attr (a : MM.attribute) =
            let fr = RAst.Rel (ft_rel_name p a.MM.attr_name) in
            let slot = RAst.Join (RAst.Var x, fr) in
            let ty =
              match a.MM.attr_type with
              | MM.P_string -> RAst.Rel val_string
              | MM.P_int -> RAst.Rel val_int
              | MM.P_bool -> RAst.Rel val_bool
              | MM.P_enum e -> RAst.Rel (val_enum e)
            in
            let body =
              RAst.Subset (slot, ty) :: mult_formula a.MM.attr_mult slot
            in
            [ RAst.Forall ([ (x, ext) ], RAst.And body) ]
          in
          let per_ref (r : MM.reference) =
            let fr = RAst.Rel (ft_rel_name p r.MM.ref_name) in
            let slot = RAst.Join (RAst.Var x, fr) in
            let target = extent_expr t ~param:p ~cls:r.MM.ref_target in
            let body = RAst.Subset (slot, target) :: mult_formula r.MM.ref_mult slot in
            [ RAst.Forall ([ (x, ext) ], RAst.And body) ]
          in
          List.concat_map per_attr attrs @ List.concat_map per_ref refs
        end)
      (MM.classes mm)
  in
  (* 3. Feature relations live on existing objects only (no slots on
     atoms outside every extent). *)
  let ftbl = match feature_table mm with Ok x -> x | Error e -> invalid_arg e in
  let domain_constraints =
    Hashtbl.fold
      (fun f _kind acc ->
        let fr = RAst.Rel (ft_rel_name p f) in
        (* domain of fr within union of extents of classes having f *)
        let owners =
          List.filter
            (fun (c : MM.cls) ->
              (not c.MM.cls_abstract)
              && (MM.find_attribute mm c.MM.cls_name f <> None
                 || MM.find_reference mm c.MM.cls_name f <> None))
            (MM.classes mm)
        in
        let owner_ext =
          match owners with
          | [] -> RAst.None_
          | c :: rest ->
            List.fold_left
              (fun acc (c : MM.cls) -> RAst.Union (acc, RAst.Rel (cls_rel_name p c.MM.cls_name)))
              (RAst.Rel (cls_rel_name p c.MM.cls_name))
              rest
        in
        RAst.Subset (RAst.Join (fr, RAst.Univ), owner_ext) :: acc)
      ftbl []
  in
  (* 4. Key (ID) attributes: injective within each class extent. *)
  let y = Ident.make "$y" in
  let key_constraints =
    List.concat_map
      (fun (c : MM.cls) ->
        if c.MM.cls_abstract then []
        else
          let ext = RAst.Rel (cls_rel_name p c.MM.cls_name) in
          MM.all_attributes mm c.MM.cls_name
          |> List.filter_map (fun (a : MM.attribute) ->
                 if not a.MM.attr_key then None
                 else
                   let fr = RAst.Rel (ft_rel_name p a.MM.attr_name) in
                   Some
                     (RAst.Forall
                        ( [ (x, ext); (y, ext) ],
                          RAst.implies
                            (RAst.Equal
                               (RAst.Join (RAst.Var x, fr), RAst.Join (RAst.Var y, fr)))
                            (RAst.Equal (RAst.Var x, RAst.Var y)) )))
      )
      (MM.classes mm)
  in
  (* 5. Opposites and containment. *)
  let opposite_constraints =
    List.concat_map
      (fun (c : MM.cls) ->
        List.filter_map
          (fun (r : MM.reference) ->
            match r.MM.ref_opposite with
            | None -> None
            | Some opp ->
              Some
                (RAst.Equal
                   ( RAst.Rel (ft_rel_name p r.MM.ref_name),
                     RAst.Transpose (RAst.Rel (ft_rel_name p opp)) )))
          c.MM.cls_refs)
      (MM.classes mm)
  in
  let containment_refs =
    List.concat_map
      (fun (c : MM.cls) ->
        List.filter (fun (r : MM.reference) -> r.MM.ref_containment) c.MM.cls_refs)
      (MM.classes mm)
  in
  let containment_constraints =
    match containment_refs with
    | [] -> []
    | r :: rest ->
      let contains =
        List.fold_left
          (fun acc (r : MM.reference) -> RAst.Union (acc, RAst.Rel (ft_rel_name p r.MM.ref_name)))
          (RAst.Rel (ft_rel_name p r.MM.ref_name))
          rest
      in
      [
        (* unique container *)
        RAst.Forall
          ([ (x, union_exts) ], RAst.Lone (RAst.Join (contains, RAst.Var x)));
        (* no containment cycles *)
        RAst.No (RAst.Inter (RAst.Closure contains, RAst.Iden));
      ]
  in
  (* 6. Symmetry breaking over the interchangeable slack atoms (see
     {!slack_symmetry_formulas}). *)
  let symmetry_constraints =
    if symmetry then slack_symmetry_formulas t ~param else []
  in
  disjointness @ feature_constraints @ domain_constraints @ key_constraints
  @ opposite_constraints @ containment_constraints @ symmetry_constraints

(* ------------------------------------------------------------------ *)
(* Decoding                                                            *)

let decode_model t ?(atom_ids = []) ?first_fresh inst ~param =
  let p = param in
  let model0 = model_of_param t p in
  let mm = metamodel_of_param t p in
  let max_id = List.fold_left max (-1) (Model.objects model0) in
  (* atom index -> chosen object id *)
  let fresh =
    ref (match first_fresh with Some f -> f - 1 | None -> max_id)
  in
  let atom_obj_id : (int, Model.obj_id) Hashtbl.t = Hashtbl.create 16 in
  List.iter (fun (a, id) -> Hashtbl.replace atom_obj_id (atom_idx t a) id) atom_ids;
  let id_of_atom_idx idx =
    match Hashtbl.find_opt atom_obj_id idx with
    | Some id -> id
    | None ->
      let name = Relog.Rel.Universe.atom t.universe idx in
      let id =
        match Ident.Map.find_opt name t.atom_kind with
        | Some (K_obj (_, id)) -> id
        | Some (K_slack _) ->
          incr fresh;
          !fresh
        | Some (K_value _) | None -> invalid_arg "decode: non-object atom in extent"
      in
      Hashtbl.replace atom_obj_id idx id;
      id
  in
  try
    (* Objects: read class extents. *)
    let model = Model.empty ~name:(Ident.name (Model.name model0)) mm in
    let model = ref model in
    let assigned : (Model.obj_id, Ident.t) Hashtbl.t = Hashtbl.create 16 in
    List.iter
      (fun (c : MM.cls) ->
        if not c.MM.cls_abstract then begin
          let ext = Relog.Instance.get inst (cls_rel_name p c.MM.cls_name) in
          TS.fold
            (fun tuple () ->
              let id = id_of_atom_idx tuple.(0) in
              (match Hashtbl.find_opt assigned id with
              | Some other when not (Ident.equal other c.MM.cls_name) ->
                invalid_arg
                  (Printf.sprintf "decode: object #%d in two class extents" id)
              | Some _ -> ()
              | None ->
                Hashtbl.add assigned id c.MM.cls_name;
                model := Model.add_object_with_id !model ~id ~cls:c.MM.cls_name))
            ext ()
        end)
      (MM.classes mm);
    (* Features. *)
    let ftbl = match feature_table mm with Ok x -> x | Error e -> invalid_arg e in
    Hashtbl.iter
      (fun f kind ->
        let rel = Relog.Instance.get inst (ft_rel_name p f) in
        TS.fold
          (fun tuple () ->
            let src = id_of_atom_idx tuple.(0) in
            if Model.mem !model src then begin
              match kind with
              | F_ref ->
                let dst = id_of_atom_idx tuple.(1) in
                if Model.mem !model dst then
                  model := Model.add_ref !model ~src ~ref_:f ~dst
              | F_attr _ ->
                let a = Relog.Rel.Universe.atom t.universe tuple.(1) in
                (match Ident.Map.find_opt a t.atom_kind with
                | Some (K_value v) ->
                  let cur = Model.get_attr !model src f in
                  model := Model.set_attr !model src f (cur @ [ v ])
                | _ -> invalid_arg "decode: non-value atom in attribute slot")
            end)
          rel ())
      ftbl;
    Ok !model
  with
  | Invalid_argument msg -> Error msg
  | Model.Type_error msg -> Error msg
