(** Source locations for QVT-R syntax and diagnostics.

    A location is a [file:line:col] span (1-based lines and columns,
    end exclusive on the column). The lexer stamps every token with
    one; the parser threads them into the AST so that type errors and
    {!Lint}-style diagnostics can point at the offending construct.
    ASTs built programmatically use {!none}. *)

type t = {
  file : string;  (** [""] when the source has no associated file *)
  line : int;  (** 1-based; [0] in {!none} *)
  col : int;  (** 1-based *)
  end_line : int;
  end_col : int;  (** exclusive: one past the last character *)
}

val none : t
(** The absent location (programmatic ASTs, synthesized nodes). *)

val is_none : t -> bool

val make :
  ?file:string -> line:int -> col:int -> ?end_line:int -> ?end_col:int ->
  unit -> t
(** Omitted end positions default to the start (a point span). *)

val merge : t -> t -> t
(** Smallest span covering both; {!none} is the identity. *)

val pp : Format.formatter -> t -> unit
(** ["file:line:col"], or ["line:col"] without a file, or
    ["<unknown>"] for {!none}. *)

val to_string : t -> string

val excerpt : src:string -> t -> string option
(** A two-line terminal rendering of the located source: the offending
    line with a gutter, and a caret line underlining the span. [None]
    when the location is {!none} or out of range for [src]. *)
