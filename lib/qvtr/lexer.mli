(** Lexer for the QVT-R concrete syntax (shared by {!Parser}).

    Tokens cover the textual fragment of QVT-R the paper uses plus the
    [dependencies] extension: identifiers, string/integer literals,
    [#lit] enum literals, punctuation and multi-character operators
    ([->], [<>], [++], [**], [--], [@]). Line comments start with
    [//], block comments are [/* ... */].

    Every token carries a {!Loc.t} span ({!span}); unterminated
    strings and block comments are reported at their opening
    character, not at end of input. *)

type token =
  | Ident of string
  | String of string
  | Int of int
  | Punct of string
  | Eof

type t

exception Error of { loc : Loc.t; msg : string }
(** Lexical (and, via {!error}, syntactic) failure at [loc]. *)

val render_error : loc:Loc.t -> msg:string -> string
(** ["line L, col C: message"], prefixed by the file name when the
    lexer was given one. *)

val make : ?file:string -> string -> t
(** [file] is only used to stamp locations. *)

val token : t -> token
(** Current token. *)

val next : t -> unit
(** Advance. *)

val position : t -> int * int
(** (line, column) of the current token. *)

val span : t -> Loc.t
(** Full span of the current token. *)

val file : t -> string

val error : t -> ('a, Format.formatter, unit, 'b) format4 -> 'a
(** Raise {!Error} at the current token. *)

type snapshot

val snapshot : t -> snapshot
(** Capture the lexer state for bounded lookahead. *)

val restore : t -> snapshot -> unit
