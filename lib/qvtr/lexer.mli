(** Lexer for the QVT-R concrete syntax (shared by {!Parser}).

    Tokens cover the textual fragment of QVT-R the paper uses plus the
    [dependencies] extension: identifiers, string/integer literals,
    [#lit] enum literals, punctuation and multi-character operators
    ([->], [<>], [++], [**], [--], [@]). Line comments start with
    [//], block comments are [/* ... */]. *)

type token =
  | Ident of string
  | String of string
  | Int of int
  | Punct of string
  | Eof

type t

exception Error of string
(** Carries "line L, col C: message". *)

val make : string -> t
val token : t -> token
(** Current token. *)

val next : t -> unit
(** Advance. *)

val position : t -> int * int
(** (line, column) of the current token. *)

val error : t -> ('a, Format.formatter, unit, 'b) format4 -> 'a
(** Raise {!Error} at the current position. *)

type snapshot

val snapshot : t -> snapshot
(** Capture the lexer state for bounded lookahead. *)

val restore : t -> snapshot -> unit
