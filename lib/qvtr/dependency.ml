module Ident = Mdl.Ident

type t = Ast.dependency

let make ~sources ~target =
  {
    Ast.dep_sources = List.map Ident.make sources;
    dep_target = Ident.make target;
    dep_loc = Loc.none;
  }

let standard domains =
  List.map
    (fun target ->
      {
        Ast.dep_sources =
          List.filter (fun m -> not (Ident.equal m target)) domains;
        dep_target = target;
        dep_loc = Loc.none;
      })
    domains

let effective (r : Ast.relation) =
  match r.Ast.r_deps with
  | [] -> standard (List.map (fun d -> d.Ast.d_model) r.Ast.r_domains)
  | deps -> deps

(* Canonical form for duplicate detection: source sets are unordered,
   so [a b -> c] and [b a -> c] (and [a a b -> c]) are the same clause. *)
let canon (d : Ast.dependency) =
  (List.sort_uniq Ident.compare d.Ast.dep_sources, d.Ast.dep_target)

let validate ~domains deps =
  let known m = List.exists (Ident.equal m) domains in
  let seen = Hashtbl.create 8 in
  let errs =
    List.concat_map
      (fun ({ Ast.dep_sources; dep_target; dep_loc = _ } as d) ->
        let describe fmt =
          Printf.ksprintf (fun msg -> [ (d, msg) ]) fmt
        in
        let structural =
          if dep_sources = [] then
            describe "dependency for %s has an empty source set"
              (Ident.name dep_target)
          else if not (known dep_target) then
            describe "dependency target %s is not a domain"
              (Ident.name dep_target)
          else if List.exists (fun s -> not (known s)) dep_sources then
            describe "dependency for %s mentions a non-domain source"
              (Ident.name dep_target)
          else if List.exists (Ident.equal dep_target) dep_sources then
            describe "dependency target %s appears among its sources"
              (Ident.name dep_target)
          else []
        in
        let duplicate =
          let key = canon d in
          if Hashtbl.mem seen key then
            describe "duplicate dependency %s"
              (Format.asprintf "%a" Ast.pp_dependency d)
          else begin
            Hashtbl.add seen key ();
            []
          end
        in
        structural @ duplicate)
      deps
  in
  match errs with [] -> Ok () | errs -> Error errs

(* Unit propagation over definite Horn clauses, linear in the total
   clause size: each clause keeps a counter of not-yet-derived body
   atoms and is indexed by each body atom; deriving an atom decrements
   the counters of the clauses watching it. *)
let closure deps ~sources =
  let bodies =
    List.map (fun d -> List.sort_uniq Ident.compare d.Ast.dep_sources) deps
  in
  let remaining = Array.of_list (List.map List.length bodies) in
  let watching : (Ident.t, int list) Hashtbl.t = Hashtbl.create 16 in
  List.iteri
    (fun i body ->
      List.iter
        (fun s ->
          let cur = Option.value ~default:[] (Hashtbl.find_opt watching s) in
          Hashtbl.replace watching s (i :: cur))
        body)
    bodies;
  let heads = Array.of_list (List.map (fun d -> d.Ast.dep_target) deps) in
  let derived : (Ident.t, unit) Hashtbl.t = Hashtbl.create 64 in
  let queue = Queue.create () in
  let derive m =
    if not (Hashtbl.mem derived m) then begin
      Hashtbl.add derived m ();
      Queue.add m queue
    end
  in
  List.iter derive sources;
  Array.iteri (fun i r -> if r = 0 then derive heads.(i)) remaining;
  while not (Queue.is_empty queue) do
    let m = Queue.pop queue in
    List.iter
      (fun i ->
        remaining.(i) <- remaining.(i) - 1;
        if remaining.(i) = 0 then derive heads.(i))
      (Option.value ~default:[] (Hashtbl.find_opt watching m))
  done;
  Hashtbl.fold (fun m () acc -> Ident.Set.add m acc) derived Ident.Set.empty

let entails deps (d : t) =
  (* Inlined closure that stops as soon as the goal is derived,
     keeping the check linear and typically sub-linear. *)
  let bodies =
    List.map (fun dp -> List.sort_uniq Ident.compare dp.Ast.dep_sources) deps
  in
  let remaining = Array.of_list (List.map List.length bodies) in
  let watching : (Ident.t, int list) Hashtbl.t = Hashtbl.create 64 in
  List.iteri
    (fun i body ->
      List.iter
        (fun s ->
          let cur = Option.value ~default:[] (Hashtbl.find_opt watching s) in
          Hashtbl.replace watching s (i :: cur))
        body)
    bodies;
  let heads = Array.of_list (List.map (fun dp -> dp.Ast.dep_target) deps) in
  let goal = d.Ast.dep_target in
  let derived : (Ident.t, unit) Hashtbl.t = Hashtbl.create 64 in
  let queue = Queue.create () in
  let found = ref false in
  let derive m =
    if Ident.equal m goal then found := true;
    if not (Hashtbl.mem derived m) then begin
      Hashtbl.add derived m ();
      Queue.add m queue
    end
  in
  List.iter derive d.Ast.dep_sources;
  Array.iteri (fun i r -> if r = 0 then derive heads.(i)) remaining;
  while (not !found) && not (Queue.is_empty queue) do
    let m = Queue.pop queue in
    List.iter
      (fun i ->
        remaining.(i) <- remaining.(i) - 1;
        if remaining.(i) = 0 then derive heads.(i))
      (Option.value ~default:[] (Hashtbl.find_opt watching m))
  done;
  !found

let entails_multi deps ~sources ~targets =
  let derivable = closure deps ~sources in
  List.for_all (fun t -> Ident.Set.mem t derivable) targets

let pp = Ast.pp_dependency
