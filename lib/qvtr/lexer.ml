type token =
  | Ident of string
  | String of string
  | Int of int
  | Punct of string
  | Eof

type t = {
  src : string;
  file : string;
  mutable pos : int;
  mutable line : int;
  mutable col : int;
  mutable tok : token;
  mutable tok_line : int;
  mutable tok_col : int;
  mutable tok_end_line : int;
  mutable tok_end_col : int;
}

exception Error of { loc : Loc.t; msg : string }

let render_error ~loc ~msg =
  if Loc.is_none loc then msg
  else if loc.Loc.file = "" then
    Printf.sprintf "line %d, col %d: %s" loc.Loc.line loc.Loc.col msg
  else
    Printf.sprintf "%s: line %d, col %d: %s" loc.Loc.file loc.Loc.line
      loc.Loc.col msg

let span lx =
  Loc.make ~file:lx.file ~line:lx.tok_line ~col:lx.tok_col
    ~end_line:lx.tok_end_line ~end_col:lx.tok_end_col ()

let error_at lx ~line ~col fmt =
  Format.kasprintf
    (fun s ->
      raise (Error { loc = Loc.make ~file:lx.file ~line ~col (); msg = s }))
    fmt

let error lx fmt =
  Format.kasprintf (fun s -> raise (Error { loc = span lx; msg = s })) fmt

let is_ident_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

let peek lx = if lx.pos < String.length lx.src then Some lx.src.[lx.pos] else None

let peek2 lx =
  if lx.pos + 1 < String.length lx.src then Some lx.src.[lx.pos + 1] else None

let advance lx =
  (match peek lx with
  | Some '\n' ->
    lx.line <- lx.line + 1;
    lx.col <- 1
  | Some _ -> lx.col <- lx.col + 1
  | None -> ());
  lx.pos <- lx.pos + 1

let rec skip_ws lx =
  match peek lx with
  | Some (' ' | '\t' | '\r' | '\n') ->
    advance lx;
    skip_ws lx
  | Some '/' when peek2 lx = Some '/' ->
    while peek lx <> None && peek lx <> Some '\n' do
      advance lx
    done;
    skip_ws lx
  | Some '/' when peek2 lx = Some '*' ->
    (* Report an unterminated block comment at its opening '/*', not
       wherever the previous token happened to be. *)
    let open_line = lx.line and open_col = lx.col in
    advance lx;
    advance lx;
    let rec go () =
      match (peek lx, peek2 lx) with
      | Some '*', Some '/' ->
        advance lx;
        advance lx
      | None, _ ->
        error_at lx ~line:open_line ~col:open_col "unterminated comment"
      | _ ->
        advance lx;
        go ()
    in
    go ();
    skip_ws lx
  | Some _ | None -> ()

let two_char_ops = [ "->"; "<>"; "++"; "**"; "--"; "<="; ">=" ]

let next lx =
  skip_ws lx;
  lx.tok_line <- lx.line;
  lx.tok_col <- lx.col;
  (match peek lx with
  | None -> lx.tok <- Eof
  | Some c when is_ident_start c ->
    let start = lx.pos in
    while (match peek lx with Some c -> is_ident_char c | None -> false) do
      advance lx
    done;
    lx.tok <- Ident (String.sub lx.src start (lx.pos - start))
  | Some c when is_digit c ->
    let start = lx.pos in
    while (match peek lx with Some c -> is_digit c | None -> false) do
      advance lx
    done;
    lx.tok <- Int (int_of_string (String.sub lx.src start (lx.pos - start)))
  | Some '-' when (match peek2 lx with Some c -> is_digit c | None -> false) ->
    advance lx;
    let start = lx.pos in
    while (match peek lx with Some c -> is_digit c | None -> false) do
      advance lx
    done;
    lx.tok <- Int (-int_of_string (String.sub lx.src start (lx.pos - start)))
  | Some '"' ->
    (* The token position is the opening quote; unterminated-string
       errors point there rather than at EOF. *)
    advance lx;
    let buf = Buffer.create 16 in
    let rec go () =
      match peek lx with
      | None -> error lx "unterminated string literal"
      | Some '"' -> advance lx
      | Some '\\' ->
        advance lx;
        (match peek lx with
        | Some 'n' -> Buffer.add_char buf '\n'
        | Some 't' -> Buffer.add_char buf '\t'
        | Some c -> Buffer.add_char buf c
        | None -> error lx "unterminated escape");
        advance lx;
        go ()
      | Some c ->
        Buffer.add_char buf c;
        advance lx;
        go ()
    in
    go ();
    lx.tok <- String (Buffer.contents buf)
  | Some c ->
    let two =
      match peek2 lx with
      | Some c2 ->
        let s = Printf.sprintf "%c%c" c c2 in
        if List.mem s two_char_ops then Some s else None
      | None -> None
    in
    (match two with
    | Some op ->
      advance lx;
      advance lx;
      lx.tok <- Punct op
    | None ->
      advance lx;
      lx.tok <- Punct (String.make 1 c)));
  lx.tok_end_line <- lx.line;
  lx.tok_end_col <- lx.col

let make ?(file = "") src =
  let lx =
    {
      src;
      file;
      pos = 0;
      line = 1;
      col = 1;
      tok = Eof;
      tok_line = 1;
      tok_col = 1;
      tok_end_line = 1;
      tok_end_col = 1;
    }
  in
  next lx;
  lx

let token lx = lx.tok
let position lx = (lx.tok_line, lx.tok_col)
let file lx = lx.file

type snapshot = {
  s_pos : int;
  s_line : int;
  s_col : int;
  s_tok : token;
  s_tok_line : int;
  s_tok_col : int;
  s_tok_end_line : int;
  s_tok_end_col : int;
}

let snapshot lx =
  {
    s_pos = lx.pos;
    s_line = lx.line;
    s_col = lx.col;
    s_tok = lx.tok;
    s_tok_line = lx.tok_line;
    s_tok_col = lx.tok_col;
    s_tok_end_line = lx.tok_end_line;
    s_tok_end_col = lx.tok_end_col;
  }

let restore lx s =
  lx.pos <- s.s_pos;
  lx.line <- s.s_line;
  lx.col <- s.s_col;
  lx.tok <- s.s_tok;
  lx.tok_line <- s.s_tok_line;
  lx.tok_col <- s.s_tok_col;
  lx.tok_end_line <- s.s_tok_end_line;
  lx.tok_end_col <- s.s_tok_end_col
