(** Abstract syntax of QVT-R transformations, restricted to the
    relational fragment the paper works with, plus the paper's
    extension: per-relation {e checking dependencies}.

    A transformation declares typed model parameters and a set of
    relations; each relation has one domain pattern per model
    parameter it constrains, optional [when]/[where] predicates, and —
    our extension — an optional [dependencies { S -> T; ... }] block
    (paper §2.2). An empty block means the standard QVT-R semantics
    (every model checked against all the others), which by the paper's
    conservativity remark equals attaching the full dependency set.

    Declaration-level nodes (parameters, variable declarations,
    domains, templates, properties, clauses, dependencies, relations)
    carry {!Loc.t} source spans, stamped by {!Parser} and defaulting to
    {!Loc.none} in programmatic ASTs; {!strip_locs} erases them for
    structural comparison. *)

type var_type =
  | T_string
  | T_int
  | T_bool
  | T_enum of Mdl.Ident.t
  | T_class of Mdl.Ident.t * Mdl.Ident.t  (** (model parameter, class) *)

(** OCL-lite expressions. Expressions denote sets of values/objects;
    literals and variables are singletons, navigation is set-valued. *)
type oexpr =
  | O_var of Mdl.Ident.t
  | O_str of string
  | O_int of int
  | O_bool of bool
  | O_enum of Mdl.Ident.t  (** enum literal *)
  | O_nav of oexpr * Mdl.Ident.t  (** [e.f]: attribute or reference navigation *)
  | O_all of Mdl.Ident.t * Mdl.Ident.t
      (** [Class@model]: all instances of the class in a model
          parameter (OCL [allInstances]) *)
  | O_union of oexpr * oexpr
  | O_inter of oexpr * oexpr
  | O_diff of oexpr * oexpr

(** Predicates for [when] / [where] clauses. *)
type pred =
  | P_true
  | P_eq of oexpr * oexpr  (** set equality (on singletons: value equality) *)
  | P_neq of oexpr * oexpr
  | P_in of oexpr * oexpr  (** inclusion *)
  | P_lt of oexpr * oexpr
      (** integer comparison — both sides singleton integers; bounded
          to the integer atoms of the universe *)
  | P_le of oexpr * oexpr
  | P_empty of oexpr
  | P_nonempty of oexpr
  | P_not of pred
  | P_and of pred * pred
  | P_or of pred * pred
  | P_implies of pred * pred
  | P_call of Mdl.Ident.t * Mdl.Ident.t list
      (** relation invocation: callee name, argument variables (one per
          callee domain, positional) *)

(** A located [when]/[where] conjunct. *)
type clause = {
  c_pred : pred;
  c_loc : Loc.t;
}

(** A property constraint inside an object template. *)
type property = {
  p_feature : Mdl.Ident.t;
  p_value : pvalue;
  p_loc : Loc.t;
}

and pvalue =
  | PV_expr of oexpr
      (** [feature = e] — for attributes: slot equals the (singleton)
          value; for references: the object [e] is among the targets *)
  | PV_template of template  (** [feature = obj (...)] — nested pattern *)

and template = {
  t_var : Mdl.Ident.t;
  t_class : Mdl.Ident.t;
  t_props : property list;
  t_loc : Loc.t;
}

type domain = {
  d_model : Mdl.Ident.t;  (** model parameter this domain constrains *)
  d_template : template;
  d_enforceable : bool;  (** [enforce] vs [checkonly] marker (informational) *)
  d_loc : Loc.t;
}

(** A checking dependency [S -> T] (paper §2.2): the model conforming
    to [T] depends on the models in [S]. *)
type dependency = {
  dep_sources : Mdl.Ident.t list;
  dep_target : Mdl.Ident.t;
  dep_loc : Loc.t;
}

(** A declared (or primitive-domain) variable. *)
type vardecl = {
  v_name : Mdl.Ident.t;
  v_type : var_type;
  v_loc : Loc.t;
}

type relation = {
  r_name : Mdl.Ident.t;
  r_top : bool;
  r_vars : vardecl list;  (** declared shared variables *)
  r_prims : vardecl list;
      (** primitive domains (QVT-R spec): value parameters supplied by
          callers after the model-domain root arguments; non-top
          relations only *)
  r_domains : domain list;
  r_when : clause list;  (** conjunction; [] = true *)
  r_where : clause list;
  r_deps : dependency list;  (** [] = standard semantics *)
  r_loc : Loc.t;
}

(** A transformation model parameter [name : Metamodel]. *)
type param = {
  par_name : Mdl.Ident.t;
  par_mm : Mdl.Ident.t;  (** metamodel name *)
  par_loc : Loc.t;
}

type transformation = {
  t_name : Mdl.Ident.t;
  t_params : param list;
  t_relations : relation list;
  t_loc : Loc.t;
}

val clause : ?loc:Loc.t -> pred -> clause
val clauses : pred list -> clause list
(** Wrap bare predicates with {!Loc.none} (programmatic ASTs). *)

val preds : clause list -> pred list
(** Forget locations. *)

val find_relation : transformation -> Mdl.Ident.t -> relation option
val find_param : transformation -> Mdl.Ident.t -> param option

val domain_for : relation -> Mdl.Ident.t -> domain option
(** The relation's domain over a given model parameter. *)

val template_vars : template -> (Mdl.Ident.t * Mdl.Ident.t) list
(** All object variables bound by a template (root and nested), with
    their classes, in binding order. *)

val template_templates : template -> template list
(** The template and all nested templates, outermost first. *)

val pred_vars : pred -> Mdl.Ident.Set.t
(** Variables mentioned by a predicate. *)

val oexpr_vars : oexpr -> Mdl.Ident.Set.t

val pred_calls : pred -> Mdl.Ident.t list
(** Names of relations invoked in a predicate, in syntactic order. *)

val strip_locs : transformation -> transformation
(** Replace every location by {!Loc.none}; use before structural
    comparison of a parsed AST against a programmatic or re-parsed
    one. *)

val pp_oexpr : Format.formatter -> oexpr -> unit
val pp_pred : Format.formatter -> pred -> unit
val pp_dependency : Format.formatter -> dependency -> unit
val pp_relation : Format.formatter -> relation -> unit
val pp_transformation : Format.formatter -> transformation -> unit
