(** Static checking of QVT-R transformations.

    Beyond conventional well-formedness (domains resolve to declared
    parameters, patterns are well-typed against the metamodels,
    variables are declared before use), this implements the paper's
    §2.3 contribution: {e call-direction compatibility}. A relation
    [R] with dependency set [D] may invoke a relation [S] (dependency
    set [D']) in a [where] clause only if, for every dependency
    [Src -> Tgt] of [R], the projection onto [S]'s domains is entailed
    by [D'] — checked with {!Dependency.entails}, i.e. in linear time,
    Horn clauses being what they are. [when]-calls may only read
    source models. Recursive invocation is rejected (the semantics
    compiler inlines calls; see {!Semantics} for bounded unrolling). *)

type tyenv = Ast.var_type Mdl.Ident.Map.t
(** Variable typing for one relation: declared variables plus all
    template-bound object variables. *)

type info
(** Result of a successful check. *)

val tyenv : info -> Mdl.Ident.t -> tyenv
(** Typing environment of a relation (by name).
    @raise Not_found for unknown relations. *)

val metamodel_of_param : info -> Mdl.Ident.t -> Mdl.Metamodel.t

val transformation : info -> Ast.transformation
(** The transformation the info was checked against. *)

type error = {
  err_relation : Mdl.Ident.t option;  (** relation at fault, if any *)
  err_msg : string;
  err_loc : Loc.t;
      (** source anchor ({!Loc.none} for programmatic ASTs) *)
  err_code : string;
      (** stable diagnostic code: ["E002"] type/name error, ["E003"]
          invalid dependency, ["E004"] recursive invocation, ["E005"]
          direction-incompatible call (see {!Lint} for the full
          taxonomy) *)
}

val pp_error : Format.formatter -> error -> unit
(** ["[file:line:col: ][relation R: ]message"]. *)

val check :
  ?allow_recursion:bool ->
  Ast.transformation ->
  metamodels:(Mdl.Ident.t * Mdl.Metamodel.t) list ->
  (info, error list) result
(** All detected errors are reported, not just the first. *)

val infer_oexpr :
  info -> Mdl.Ident.t -> Ast.oexpr -> (Ast.var_type, string) result
(** Type of an expression within a relation's environment (by relation
    name). Used by the semantics compiler to resolve navigations. *)

val infer_in : info -> tyenv -> Ast.oexpr -> (Ast.var_type, string) result
(** Like {!infer_oexpr} but with an explicit environment (used when
    compiling inlined relation calls). *)
