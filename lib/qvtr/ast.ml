module Ident = Mdl.Ident

type var_type =
  | T_string
  | T_int
  | T_bool
  | T_enum of Ident.t
  | T_class of Ident.t * Ident.t

type oexpr =
  | O_var of Ident.t
  | O_str of string
  | O_int of int
  | O_bool of bool
  | O_enum of Ident.t
  | O_nav of oexpr * Ident.t
  | O_all of Ident.t * Ident.t
  | O_union of oexpr * oexpr
  | O_inter of oexpr * oexpr
  | O_diff of oexpr * oexpr

type pred =
  | P_true
  | P_eq of oexpr * oexpr
  | P_neq of oexpr * oexpr
  | P_in of oexpr * oexpr
  | P_lt of oexpr * oexpr
  | P_le of oexpr * oexpr
  | P_empty of oexpr
  | P_nonempty of oexpr
  | P_not of pred
  | P_and of pred * pred
  | P_or of pred * pred
  | P_implies of pred * pred
  | P_call of Ident.t * Ident.t list

type clause = {
  c_pred : pred;
  c_loc : Loc.t;
}

type property = {
  p_feature : Ident.t;
  p_value : pvalue;
  p_loc : Loc.t;
}

and pvalue =
  | PV_expr of oexpr
  | PV_template of template

and template = {
  t_var : Ident.t;
  t_class : Ident.t;
  t_props : property list;
  t_loc : Loc.t;
}

type domain = {
  d_model : Ident.t;
  d_template : template;
  d_enforceable : bool;
  d_loc : Loc.t;
}

type dependency = {
  dep_sources : Ident.t list;
  dep_target : Ident.t;
  dep_loc : Loc.t;
}

type vardecl = {
  v_name : Ident.t;
  v_type : var_type;
  v_loc : Loc.t;
}

type relation = {
  r_name : Ident.t;
  r_top : bool;
  r_vars : vardecl list;
  r_prims : vardecl list;
  r_domains : domain list;
  r_when : clause list;
  r_where : clause list;
  r_deps : dependency list;
  r_loc : Loc.t;
}

type param = {
  par_name : Ident.t;
  par_mm : Ident.t;
  par_loc : Loc.t;
}

type transformation = {
  t_name : Ident.t;
  t_params : param list;
  t_relations : relation list;
  t_loc : Loc.t;
}

let clause ?(loc = Loc.none) p = { c_pred = p; c_loc = loc }
let clauses ps = List.map (fun p -> clause p) ps
let preds cs = List.map (fun c -> c.c_pred) cs

let find_relation t name =
  List.find_opt (fun r -> Ident.equal r.r_name name) t.t_relations

let find_param t name =
  List.find_opt (fun p -> Ident.equal p.par_name name) t.t_params

let domain_for r model =
  List.find_opt (fun d -> Ident.equal d.d_model model) r.r_domains

let rec template_vars_acc tpl acc =
  let acc = (tpl.t_var, tpl.t_class) :: acc in
  List.fold_left
    (fun acc prop ->
      match prop.p_value with
      | PV_expr _ -> acc
      | PV_template t -> template_vars_acc t acc)
    acc tpl.t_props

let template_vars tpl = List.rev (template_vars_acc tpl [])

let rec template_templates_acc tpl acc =
  List.fold_left
    (fun acc prop ->
      match prop.p_value with
      | PV_expr _ -> acc
      | PV_template t -> template_templates_acc t acc)
    (tpl :: acc) tpl.t_props

let template_templates tpl = List.rev (template_templates_acc tpl [])

let rec oexpr_vars_acc e acc =
  match e with
  | O_var v -> Ident.Set.add v acc
  | O_str _ | O_int _ | O_bool _ | O_enum _ | O_all _ -> acc
  | O_nav (e, _) -> oexpr_vars_acc e acc
  | O_union (a, b) | O_inter (a, b) | O_diff (a, b) ->
    oexpr_vars_acc a (oexpr_vars_acc b acc)

let oexpr_vars e = oexpr_vars_acc e Ident.Set.empty

let rec pred_vars_acc p acc =
  match p with
  | P_true -> acc
  | P_eq (a, b) | P_neq (a, b) | P_in (a, b) | P_lt (a, b) | P_le (a, b) ->
    oexpr_vars_acc a (oexpr_vars_acc b acc)
  | P_empty a | P_nonempty a -> oexpr_vars_acc a acc
  | P_not p -> pred_vars_acc p acc
  | P_and (a, b) | P_or (a, b) | P_implies (a, b) ->
    pred_vars_acc a (pred_vars_acc b acc)
  | P_call (_, args) -> List.fold_left (fun acc v -> Ident.Set.add v acc) acc args

let pred_vars p = pred_vars_acc p Ident.Set.empty

let rec pred_calls_acc p acc =
  match p with
  | P_call (name, _) -> name :: acc
  | P_not q -> pred_calls_acc q acc
  | P_and (a, b) | P_or (a, b) | P_implies (a, b) ->
    pred_calls_acc a (pred_calls_acc b acc)
  | P_true | P_eq _ | P_neq _ | P_in _ | P_lt _ | P_le _ | P_empty _
  | P_nonempty _ -> acc

let pred_calls p = List.rev (pred_calls_acc p [])

(* ------------------------------------------------------------------ *)
(* Location erasure (round-trip tests, programmatic equality)          *)

let rec strip_template tpl =
  {
    tpl with
    t_loc = Loc.none;
    t_props =
      List.map
        (fun p ->
          {
            p with
            p_loc = Loc.none;
            p_value =
              (match p.p_value with
              | PV_expr _ as e -> e
              | PV_template t -> PV_template (strip_template t));
          })
        tpl.t_props;
  }

let strip_relation r =
  {
    r with
    r_loc = Loc.none;
    r_vars = List.map (fun v -> { v with v_loc = Loc.none }) r.r_vars;
    r_prims = List.map (fun v -> { v with v_loc = Loc.none }) r.r_prims;
    r_domains =
      List.map
        (fun d -> { d with d_loc = Loc.none; d_template = strip_template d.d_template })
        r.r_domains;
    r_when = List.map (fun c -> { c with c_loc = Loc.none }) r.r_when;
    r_where = List.map (fun c -> { c with c_loc = Loc.none }) r.r_where;
    r_deps = List.map (fun d -> { d with dep_loc = Loc.none }) r.r_deps;
  }

let strip_locs t =
  {
    t with
    t_loc = Loc.none;
    t_params = List.map (fun p -> { p with par_loc = Loc.none }) t.t_params;
    t_relations = List.map strip_relation t.t_relations;
  }

(* ------------------------------------------------------------------ *)
(* Printing (concrete syntax; parses back)                             *)

let rec pp_oexpr ppf = function
  | O_var v -> Ident.pp ppf v
  | O_str s -> Format.fprintf ppf "%S" s
  | O_int i -> Format.pp_print_int ppf i
  | O_bool b -> Format.pp_print_bool ppf b
  | O_enum e -> Format.fprintf ppf "#%a" Ident.pp e
  | O_nav (e, f) -> Format.fprintf ppf "%a.%a" pp_oexpr e Ident.pp f
  | O_all (m, c) -> Format.fprintf ppf "%a@@%a" Ident.pp c Ident.pp m
  | O_union (a, b) -> Format.fprintf ppf "(%a ++ %a)" pp_oexpr a pp_oexpr b
  | O_inter (a, b) -> Format.fprintf ppf "(%a ** %a)" pp_oexpr a pp_oexpr b
  | O_diff (a, b) -> Format.fprintf ppf "(%a -- %a)" pp_oexpr a pp_oexpr b

let rec pp_pred ppf = function
  | P_true -> Format.pp_print_string ppf "true"
  | P_eq (a, b) -> Format.fprintf ppf "%a = %a" pp_oexpr a pp_oexpr b
  | P_neq (a, b) -> Format.fprintf ppf "%a <> %a" pp_oexpr a pp_oexpr b
  | P_in (a, b) -> Format.fprintf ppf "%a in %a" pp_oexpr a pp_oexpr b
  | P_lt (a, b) -> Format.fprintf ppf "%a < %a" pp_oexpr a pp_oexpr b
  | P_le (a, b) -> Format.fprintf ppf "%a <= %a" pp_oexpr a pp_oexpr b
  | P_empty a -> Format.fprintf ppf "empty %a" pp_oexpr a
  | P_nonempty a -> Format.fprintf ppf "nonempty %a" pp_oexpr a
  | P_not p -> Format.fprintf ppf "not (%a)" pp_pred p
  | P_and (a, b) -> Format.fprintf ppf "(%a and %a)" pp_pred a pp_pred b
  | P_or (a, b) -> Format.fprintf ppf "(%a or %a)" pp_pred a pp_pred b
  | P_implies (a, b) -> Format.fprintf ppf "(%a implies %a)" pp_pred a pp_pred b
  | P_call (r, args) ->
    Format.fprintf ppf "%a(%s)" Ident.pp r
      (String.concat ", " (List.map Ident.name args))

let pp_var_type ppf = function
  | T_string -> Format.pp_print_string ppf "String"
  | T_int -> Format.pp_print_string ppf "Integer"
  | T_bool -> Format.pp_print_string ppf "Boolean"
  | T_enum e -> Ident.pp ppf e
  | T_class (m, c) -> Format.fprintf ppf "%a@@%a" Ident.pp c Ident.pp m

let rec pp_template ppf tpl =
  Format.fprintf ppf "%a : %a {" Ident.pp tpl.t_var Ident.pp tpl.t_class;
  List.iteri
    (fun i prop ->
      if i > 0 then Format.pp_print_string ppf ",";
      Format.fprintf ppf " %a = " Ident.pp prop.p_feature;
      match prop.p_value with
      | PV_expr e -> pp_oexpr ppf e
      | PV_template t -> pp_template ppf t)
    tpl.t_props;
  Format.pp_print_string ppf " }"

let pp_dependency ppf d =
  Format.fprintf ppf "%s -> %a"
    (String.concat " " (List.map Ident.name d.dep_sources))
    Ident.pp d.dep_target

let pp_relation ppf r =
  Format.fprintf ppf "@[<v 2>%srelation %a {" (if r.r_top then "top " else "")
    Ident.pp r.r_name;
  List.iter
    (fun vd ->
      Format.fprintf ppf "@,%a : %a;" Ident.pp vd.v_name pp_var_type vd.v_type)
    r.r_vars;
  List.iter
    (fun vd ->
      Format.fprintf ppf "@,primitive domain %a : %a;" Ident.pp vd.v_name
        pp_var_type vd.v_type)
    r.r_prims;
  List.iter
    (fun d ->
      Format.fprintf ppf "@,%sdomain %a %a;"
        (if d.d_enforceable then "" else "checkonly ")
        Ident.pp d.d_model pp_template d.d_template)
    r.r_domains;
  let pp_block kw = function
    | [] -> ()
    | cs ->
      Format.fprintf ppf "@,%s {" kw;
      List.iteri
        (fun i c ->
          if i > 0 then Format.pp_print_string ppf ";";
          Format.fprintf ppf " %a" pp_pred c.c_pred)
        cs;
      Format.pp_print_string ppf " }"
  in
  pp_block "when" r.r_when;
  pp_block "where" r.r_where;
  (match r.r_deps with
  | [] -> ()
  | deps ->
    Format.fprintf ppf "@,dependencies {";
    List.iter (fun d -> Format.fprintf ppf " %a;" pp_dependency d) deps;
    Format.pp_print_string ppf " }");
  Format.fprintf ppf "@]@,}"

let pp_transformation ppf t =
  Format.fprintf ppf "@[<v 2>transformation %a(%s) {" Ident.pp t.t_name
    (String.concat ", "
       (List.map
          (fun p ->
            Printf.sprintf "%s : %s" (Ident.name p.par_name) (Ident.name p.par_mm))
          t.t_params));
  List.iter (fun r -> Format.fprintf ppf "@,%a" pp_relation r) t.t_relations;
  Format.fprintf ppf "@]@,}"
