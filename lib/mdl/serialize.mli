(** Textual serialization of metamodels and models.

    A small, line-oriented concrete syntax (the output of
    {!Metamodel.pp} and {!Model.pp} parses back):

    {v
    metamodel FM {
      enum Color { red, green }
      class Feature {
        attr name : string;
        attr mandatory : bool;
        ref children : Feature [0..*] containment;
      }
      abstract class Named extends Feature { }
    }

    model fm : FM {
      obj f1 : Feature {
        name = "A";
        mandatory = true;
        children -> f2, f3;
      }
    }
    v}

    Object labels ([f1] above) are arbitrary identifiers scoped to one
    model; they are mapped to fresh ids in declaration order. The
    printer writes labels [oN] where [N] is the object id, so a
    print/parse round-trip preserves ids. This format is what the CLI
    and the example programs read and write. *)

val metamodel_to_string : Metamodel.t -> string
val model_to_string : Model.t -> string

val parse_metamodel : string -> (Metamodel.t, string) result
(** Parse a single [metamodel] declaration. Errors carry
    line/column information. *)

val parse_metamodels : string -> (Metamodel.t list, string) result
(** Parse a file containing several [metamodel] declarations. *)

val parse_model : Metamodel.t -> string -> (Model.t, string) result
(** Parse a single [model] declaration against the given metamodel
    (whose name must match the model's declared metamodel). *)

val parse_models : Metamodel.t list -> string -> (Model.t list, string) result
(** Parse a file containing several model declarations, resolving each
    against the metamodel with the matching name. *)

val value_to_string : Value.t -> string
(** {!Value.to_string}: strings as quoted literals, ints/bools bare,
    enum literals as bare identifiers. *)

val value_of_string : string -> (Value.t, string) result
(** Inverse of {!value_to_string} — the codec the durable session
    snapshots use to persist a session's accumulated value universe.
    A bare identifier that is not [true]/[false] parses as an enum
    literal. *)
