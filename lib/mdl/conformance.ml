type violation =
  | Attr_multiplicity of {
      obj : Model.obj_id;
      attr : Ident.t;
      found : int;
      mult : Metamodel.mult;
    }
  | Ref_multiplicity of {
      obj : Model.obj_id;
      ref_ : Ident.t;
      found : int;
      mult : Metamodel.mult;
    }
  | Multiple_containers of { obj : Model.obj_id; containers : Model.obj_id list }
  | Containment_cycle of { obj : Model.obj_id }
  | Opposite_mismatch of {
      src : Model.obj_id;
      ref_ : Ident.t;
      dst : Model.obj_id;
      opposite : Ident.t;
    }
  | Key_violation of {
      cls : Ident.t;
      attr : Ident.t;
      objs : Model.obj_id list;
    }

let pp_violation ppf = function
  | Attr_multiplicity { obj; attr; found; mult } ->
    Format.fprintf ppf "object #%d: attribute %a has %d values, expected %a" obj
      Ident.pp attr found Metamodel.pp_mult mult
  | Ref_multiplicity { obj; ref_; found; mult } ->
    Format.fprintf ppf "object #%d: reference %a has %d targets, expected %a" obj
      Ident.pp ref_ found Metamodel.pp_mult mult
  | Multiple_containers { obj; containers } ->
    Format.fprintf ppf "object #%d contained by several objects: %s" obj
      (String.concat ", " (List.map string_of_int containers))
  | Containment_cycle { obj } ->
    Format.fprintf ppf "object #%d transitively contains itself" obj
  | Opposite_mismatch { src; ref_; dst; opposite } ->
    Format.fprintf ppf "edge #%d -%a-> #%d lacks opposite edge #%d -%a-> #%d" src
      Ident.pp ref_ dst dst Ident.pp opposite src
  | Key_violation { cls; attr; objs } ->
    Format.fprintf ppf "key attribute %a.%a duplicated across objects: %s" Ident.pp
      cls Ident.pp attr
      (String.concat ", " (List.map string_of_int objs))

let check_slots m acc =
  let mm = Model.metamodel m in
  List.fold_left
    (fun acc id ->
      let cls = Model.class_of m id in
      let acc =
        List.fold_left
          (fun acc (a : Metamodel.attribute) ->
            let n = List.length (Model.get_attr m id a.attr_name) in
            if Metamodel.mult_admits a.attr_mult n then acc
            else
              Attr_multiplicity { obj = id; attr = a.attr_name; found = n; mult = a.attr_mult }
              :: acc)
          acc
          (Metamodel.all_attributes mm cls)
      in
      List.fold_left
        (fun acc (r : Metamodel.reference) ->
          let n = List.length (Model.get_refs m id r.ref_name) in
          if Metamodel.mult_admits r.ref_mult n then acc
          else
            Ref_multiplicity { obj = id; ref_ = r.ref_name; found = n; mult = r.ref_mult }
            :: acc)
        acc
        (Metamodel.all_references mm cls))
    acc (Model.objects m)

(* Containment edges of the model: (container, contained). *)
let containment_edges m =
  let mm = Model.metamodel m in
  List.concat_map
    (fun id ->
      let cls = Model.class_of m id in
      Metamodel.all_references mm cls
      |> List.concat_map (fun (r : Metamodel.reference) ->
             if r.ref_containment then
               List.map (fun dst -> (id, dst)) (Model.get_refs m id r.ref_name)
             else []))
    (Model.objects m)

let check_containment m acc =
  let edges = containment_edges m in
  (* Each object has at most one container. *)
  let tbl : (Model.obj_id, Model.obj_id list) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun (c, o) ->
      let cur = Option.value ~default:[] (Hashtbl.find_opt tbl o) in
      Hashtbl.replace tbl o (c :: cur))
    edges;
  let acc =
    Hashtbl.fold
      (fun o cs acc ->
        match cs with
        | [] | [ _ ] -> acc
        | _ -> Multiple_containers { obj = o; containers = List.rev cs } :: acc)
      tbl acc
  in
  (* No containment cycles: DFS from each object following container
     links upward. *)
  let container o =
    match Hashtbl.find_opt tbl o with Some (c :: _) -> Some c | Some [] | None -> None
  in
  List.fold_left
    (fun acc o ->
      let rec climb seen cur =
        match container cur with
        | None -> false
        | Some c -> c = o || (not (List.mem c seen)) && climb (c :: seen) c
      in
      if climb [ o ] o then Containment_cycle { obj = o } :: acc else acc)
    acc (Model.objects m)

let check_opposites m acc =
  let mm = Model.metamodel m in
  List.fold_left
    (fun acc src ->
      let cls = Model.class_of m src in
      List.fold_left
        (fun acc (r : Metamodel.reference) ->
          match r.ref_opposite with
          | None -> acc
          | Some opp ->
            List.fold_left
              (fun acc dst ->
                if Model.has_ref m ~src:dst ~ref_:opp ~dst:src then acc
                else
                  Opposite_mismatch { src; ref_ = r.ref_name; dst; opposite = opp }
                  :: acc)
              acc
              (Model.get_refs m src r.ref_name))
        acc
        (Metamodel.all_references mm cls))
    acc (Model.objects m)

(* Key (ID) attributes: unique within the extent of the declaring
   class, per concrete class. *)
let check_keys m acc =
  let mm = Model.metamodel m in
  List.fold_left
    (fun acc (c : Metamodel.cls) ->
      if c.cls_abstract then acc
      else
        List.fold_left
          (fun acc (a : Metamodel.attribute) ->
            if not a.attr_key then acc
            else begin
              let by_value : (Value.t, Model.obj_id list) Hashtbl.t =
                Hashtbl.create 16
              in
              List.iter
                (fun id ->
                  match Model.get_attr m id a.attr_name with
                  | [ v ] ->
                    let cur = Option.value ~default:[] (Hashtbl.find_opt by_value v) in
                    Hashtbl.replace by_value v (id :: cur)
                  | [] | _ :: _ -> ())
                (Model.class_extent m c.cls_name);
              Hashtbl.fold
                (fun _ ids acc ->
                  match ids with
                  | [] | [ _ ] -> acc
                  | ids ->
                    Key_violation
                      { cls = c.cls_name; attr = a.attr_name; objs = List.sort compare ids }
                    :: acc)
                by_value acc
            end)
          acc
          (Metamodel.all_attributes mm c.cls_name))
    acc (Metamodel.classes mm)

let violation_key = function
  | Attr_multiplicity { obj; attr; _ } -> (obj, Ident.name attr, 0, 0)
  | Ref_multiplicity { obj; ref_; _ } -> (obj, Ident.name ref_, 1, 0)
  | Multiple_containers { obj; _ } -> (obj, "", 2, 0)
  | Containment_cycle { obj } -> (obj, "", 3, 0)
  | Opposite_mismatch { src; ref_; dst; _ } -> (src, Ident.name ref_, 4, dst)
  | Key_violation { objs; attr; _ } -> (
    match objs with
    | o :: _ -> (o, Ident.name attr, 5, 0)
    | [] -> (0, Ident.name attr, 5, 0))

let check m =
  [] |> check_slots m |> check_containment m |> check_opposites m |> check_keys m
  |> List.sort (fun a b -> compare (violation_key a) (violation_key b))

let conforms m = check m = []

let pp_report ppf = function
  | [] -> Format.fprintf ppf "model conforms"
  | vs ->
    Format.fprintf ppf "@[<v>%d violation(s):" (List.length vs);
    List.iter (fun v -> Format.fprintf ppf "@,- %a" pp_violation v) vs;
    Format.fprintf ppf "@]"
