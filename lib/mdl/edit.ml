type t =
  | Add_object of { id : Model.obj_id; cls : Ident.t }
  | Delete_object of { id : Model.obj_id }
  | Set_attr of {
      id : Model.obj_id;
      attr : Ident.t;
      before : Value.t list;
      after : Value.t list;
    }
  | Add_ref of { src : Model.obj_id; ref_ : Ident.t; dst : Model.obj_id }
  | Del_ref of { src : Model.obj_id; ref_ : Ident.t; dst : Model.obj_id }

let pp_values ppf vs =
  match vs with
  | [] -> Format.pp_print_string ppf "unset"
  | vs ->
    Format.pp_print_string ppf (String.concat ", " (List.map Value.to_string vs))

let pp ppf = function
  | Add_object { id; cls } -> Format.fprintf ppf "+obj #%d : %a" id Ident.pp cls
  | Delete_object { id } -> Format.fprintf ppf "-obj #%d" id
  | Set_attr { id; attr; before; after } ->
    Format.fprintf ppf "#%d.%a : %a := %a" id Ident.pp attr pp_values before pp_values
      after
  | Add_ref { src; ref_; dst } ->
    Format.fprintf ppf "+edge #%d -%a-> #%d" src Ident.pp ref_ dst
  | Del_ref { src; ref_; dst } ->
    Format.fprintf ppf "-edge #%d -%a-> #%d" src Ident.pp ref_ dst

let apply m edit =
  try
    match edit with
    | Add_object { id; cls } -> Ok (Model.add_object_with_id m ~id ~cls)
    | Delete_object { id } -> Ok (Model.delete_object m id)
    | Set_attr { id; attr; after; before = _ } -> Ok (Model.set_attr m id attr after)
    | Add_ref { src; ref_; dst } -> Ok (Model.add_ref m ~src ~ref_ ~dst)
    | Del_ref { src; ref_; dst } -> Ok (Model.del_ref m ~src ~ref_ ~dst)
  with Model.Type_error msg -> Error msg

let apply_script m edits =
  List.fold_left
    (fun acc e -> Result.bind acc (fun m -> apply m e))
    (Ok m) edits

let invert = function
  | Add_object { id; _ } -> Delete_object { id }
  | Delete_object { id } ->
    (* Cannot restore the class without more information; Diff never
       produces bare inversions of deletions — it emits the slot edits
       first. The class is irrelevant for distance computations, so a
       placeholder is acceptable here. *)
    Add_object { id; cls = Ident.make "?" }
  | Set_attr { id; attr; before; after } -> Set_attr { id; attr; before = after; after = before }
  | Add_ref { src; ref_; dst } -> Del_ref { src; ref_; dst }
  | Del_ref { src; ref_; dst } -> Add_ref { src; ref_; dst }

let invert_script edits = List.rev_map invert edits
