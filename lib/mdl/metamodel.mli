(** Ecore-lite metamodels.

    A metamodel declares enums and classes; classes carry typed
    attributes and references to other classes, support multiple
    inheritance and abstractness, and references carry multiplicities,
    optional containment and optional opposites. This is the fragment
    of EMF/Ecore that QVT-R domain patterns range over. *)

(** Primitive attribute types. *)
type prim =
  | P_string
  | P_int
  | P_bool
  | P_enum of Ident.t  (** by enum name *)

(** Multiplicity bounds; [upper = None] means unbounded ([*]). *)
type mult = {
  lower : int;
  upper : int option;
}

val mult_one : mult
(** Exactly one: [1..1]. *)

val mult_opt : mult
(** At most one: [0..1]. *)

val mult_many : mult
(** Any number: [0..*]. *)

val mult_some : mult
(** At least one: [1..*]. *)

val mult_admits : mult -> int -> bool
(** [mult_admits m n] holds when a slot of multiplicity [m] may hold
    exactly [n] values. *)

val pp_mult : Format.formatter -> mult -> unit

type attribute = {
  attr_name : Ident.t;
  attr_type : prim;
  attr_mult : mult;  (** single-valued attributes use {!mult_one} *)
  attr_key : bool;
      (** EMF-style ID attribute: values are unique within the class
          extent (enforced by {!Conformance} and by the enforcement
          engine's structural constraints) *)
}

type reference = {
  ref_name : Ident.t;
  ref_target : Ident.t;  (** target class name *)
  ref_mult : mult;
  ref_containment : bool;
  ref_opposite : Ident.t option;
      (** name of the opposite reference on the target class *)
}

type cls = {
  cls_name : Ident.t;
  cls_abstract : bool;
  cls_supers : Ident.t list;  (** direct superclasses *)
  cls_attrs : attribute list;  (** locally declared *)
  cls_refs : reference list;  (** locally declared *)
}

type enum = {
  enum_name : Ident.t;
  enum_literals : Ident.t list;
}

type t
(** A validated metamodel. Construction via {!make} checks internal
    well-formedness. *)

val make : name:string -> ?enums:enum list -> cls list -> (t, string) result
(** [make ~name ~enums classes] validates and builds a metamodel.
    Validation rejects: duplicate class/enum names, unresolvable
    superclasses / reference targets / enum types, inheritance cycles,
    duplicate feature names along the inheritance chain, ill-formed
    multiplicities ([lower < 0] or [upper < lower]), dangling or
    asymmetric opposites, and enums without literals. *)

val make_exn : name:string -> ?enums:enum list -> cls list -> t
(** Like {!make}, raising [Invalid_argument] on validation failure. *)

val name : t -> Ident.t
val classes : t -> cls list
val enums : t -> enum list

val find_class : t -> Ident.t -> cls option
val find_class_exn : t -> Ident.t -> cls
val find_enum : t -> Ident.t -> enum option
val has_enum_literal : t -> Ident.t -> Ident.t -> bool
(** [has_enum_literal mm enum lit]. *)

val superclasses : t -> Ident.t -> Ident.Set.t
(** Transitive superclasses, not including the class itself. *)

val subclasses : t -> Ident.t -> Ident.Set.t
(** Transitive subclasses, not including the class itself. *)

val is_subclass : t -> sub:Ident.t -> super:Ident.t -> bool
(** Reflexive-transitive subclassing test. *)

val concrete_subclasses : t -> Ident.t -> Ident.Set.t
(** All non-abstract classes conforming to the given class, including
    itself when concrete. *)

val all_attributes : t -> Ident.t -> attribute list
(** Local and inherited attributes, superclass-first order. *)

val all_references : t -> Ident.t -> reference list
(** Local and inherited references, superclass-first order. *)

val find_attribute : t -> Ident.t -> Ident.t -> attribute option
(** [find_attribute mm cls a] resolves [a] along the inheritance chain. *)

val find_reference : t -> Ident.t -> Ident.t -> reference option

(** Convenience builders for declaring metamodels in OCaml. *)

val attr : ?mult:mult -> ?key:bool -> string -> prim -> attribute
val ref_ :
  ?mult:mult -> ?containment:bool -> ?opposite:string -> string ->
  target:string -> reference
val cls :
  ?abstract:bool -> ?supers:string list -> ?attrs:attribute list ->
  ?refs:reference list -> string -> cls
val enum_decl : string -> string list -> enum

val pp : Format.formatter -> t -> unit
(** Pretty-prints in the concrete syntax accepted by {!Serialize}. *)

val equal : t -> t -> bool
(** Structural equality (names and declarations). *)
