type t =
  | Str of string
  | Int of int
  | Bool of bool
  | Enum of Ident.t

let equal a b =
  match a, b with
  | Str x, Str y -> String.equal x y
  | Int x, Int y -> Int.equal x y
  | Bool x, Bool y -> Bool.equal x y
  | Enum x, Enum y -> Ident.equal x y
  | (Str _ | Int _ | Bool _ | Enum _), _ -> false

let rank = function Str _ -> 0 | Int _ -> 1 | Bool _ -> 2 | Enum _ -> 3

let compare a b =
  match a, b with
  | Str x, Str y -> String.compare x y
  | Int x, Int y -> Int.compare x y
  | Bool x, Bool y -> Bool.compare x y
  | Enum x, Enum y -> Ident.compare x y
  | _, _ -> Int.compare (rank a) (rank b)

let hash = function
  | Str s -> Hashtbl.hash (0, s)
  | Int i -> Hashtbl.hash (1, i)
  | Bool b -> Hashtbl.hash (2, b)
  | Enum e -> Hashtbl.hash (3, Ident.hash e)

let pp ppf = function
  | Str s -> Format.fprintf ppf "%S" s
  | Int i -> Format.pp_print_int ppf i
  | Bool b -> Format.pp_print_bool ppf b
  | Enum e -> Ident.pp ppf e

let to_string v = Format.asprintf "%a" pp v
let str s = Str s
let int i = Int i
let bool b = Bool b
let enum s = Enum (Ident.make s)

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Set = Set.Make (Ord)
module Map = Map.Make (Ord)
