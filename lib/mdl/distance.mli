(** Model distance metrics Δ (paper §3).

    The enforcement semantics of the paper is parametric on a distance
    [Δ_M : M × M → ℕ] per metamodel; repairs minimize the distance to
    the original. We provide the graph-edit distance induced by
    {!Diff} (the metric Echo uses), with configurable per-edit weights,
    plus the summed aggregation over tuples of models used for the
    multi-target transformations of §3. *)

type weights = {
  w_add_object : int;
  w_delete_object : int;
  w_set_attr : int;
  w_add_ref : int;
  w_del_ref : int;
}

val uniform : weights
(** Every edit costs 1 — the metric used throughout the paper's
    discussion and in EXPERIMENTS.md. *)

val weight : weights -> Edit.t -> int

val script_cost : weights -> Edit.t list -> int

val delta : ?weights:weights -> Model.t -> Model.t -> int
(** [delta a b] is the weighted size of [Diff.script a b]. With
    {!uniform} weights this is a metric on models sharing an id space:
    zero iff equal, symmetric, triangle inequality. *)

val delta_tuple : ?weights:weights -> Model.t list -> Model.t list -> int
(** Summed aggregation over equal-length tuples:
    [Δ(⟨a₁..aₙ⟩,⟨b₁..bₙ⟩) = Σ Δ(aᵢ,bᵢ)] — the paper's
    [Δ_CFᵏ]. Raises [Invalid_argument] on length mismatch. *)

val delta_weighted_tuple :
  ?weights:weights -> int list -> Model.t list -> Model.t list -> int
(** Per-position weighted sum [Σ wᵢ·Δ(aᵢ,bᵢ)] — the prioritisation
    the paper leaves as future work (e.g. preferring configuration
    changes over feature-model changes). *)
