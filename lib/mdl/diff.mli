(** Model differencing.

    Computes a structured diff (and from it an edit script) turning
    one model into another, assuming the two share the metamodel and
    an id space (the "same" object has the same id in both — the
    situation after an enforcement run, whose decoder preserves ids). *)

type object_diff = {
  od_id : Model.obj_id;
  od_cls : Ident.t;
  od_attrs : (Ident.t * Value.t list * Value.t list) list;
      (** attribute, value list before, value list after *)
  od_ref_dels : (Ident.t * Model.obj_id) list;  (** reference, target *)
  od_ref_adds : (Ident.t * Model.obj_id) list;
}
(** Slot-level changes of one object. For an object only in [a]
    ([removed]) the after-sides are empty; for an object only in [b]
    ([added]) the before-sides are. *)

type t = {
  removed : object_diff list;  (** in [a] only (full old contents) *)
  added : object_diff list;  (** in [b] only (full new contents) *)
  changed : object_diff list;  (** in both, with differing slots *)
}
(** An object present in both models under a different class is
    treated as deleted and re-created: it appears in both [removed]
    and [added]. *)

val diff : Model.t -> Model.t -> t
(** [diff a b] is the structured difference from [a] to [b]. Raises
    [Invalid_argument] when metamodels differ. *)

val is_empty : t -> bool

val to_edits : t -> Edit.t list
(** Linearize a diff into an applicable edit script: removed objects
    are emptied then deleted, added objects created, stable objects'
    slots edited, added objects populated — in that order, so every
    cross-reference resolves when its edit applies. *)

val script : Model.t -> Model.t -> Edit.t list
(** [to_edits (diff a b)]: an edit script s.t.
    [Edit.apply_script a (script a b)] equals [b] (up to reference
    order). Raises [Invalid_argument] when metamodels differ. *)

val pp_script : Format.formatter -> Edit.t list -> unit
