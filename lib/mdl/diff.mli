(** Model differencing.

    Computes an edit script turning one model into another, assuming
    the two share the metamodel and an id space (the "same" object has
    the same id in both — the situation after an enforcement run,
    whose decoder preserves ids). The script is canonical: objects
    present in both contribute slot-level edits; objects only in [b]
    are created then populated; objects only in [a] are emptied then
    deleted. *)

val script : Model.t -> Model.t -> Edit.t list
(** [script a b] is an edit script s.t.
    [Edit.apply_script a (script a b)] equals [b] (up to reference
    order). Raises [Invalid_argument] when metamodels differ. *)

val pp_script : Format.formatter -> Edit.t list -> unit
