(** Primitive attribute values.

    Models carry typed attribute slots; the value universe is the
    closed set of primitives below. Enum values are tagged with their
    literal identifier (the owning enum is known from the metamodel). *)

type t =
  | Str of string
  | Int of int
  | Bool of bool
  | Enum of Ident.t  (** an enum literal *)

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int
val pp : Format.formatter -> t -> unit

val to_string : t -> string
(** Rendering used by the serializer: strings are quoted, other values
    printed bare. *)

(** Convenience constructors. *)

val str : string -> t
val int : int -> t
val bool : bool -> t
val enum : string -> t

module Set : Set.S with type elt = t
module Map : Map.S with type key = t
