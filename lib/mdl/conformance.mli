(** Conformance checking: does a model satisfy its metamodel?

    {!Model} already enforces structural typing on every update; this
    module checks the remaining instance-level constraints — slot
    multiplicities, containment shape — and reports all violations at
    once, with human-readable diagnostics. The enforcement engine runs
    this after decoding a repaired model, and tests use it as the
    ground-truth notion of "valid instance". *)

type violation =
  | Attr_multiplicity of {
      obj : Model.obj_id;
      attr : Ident.t;
      found : int;
      mult : Metamodel.mult;
    }
      (** An attribute slot holds a number of values outside its
          declared multiplicity. *)
  | Ref_multiplicity of {
      obj : Model.obj_id;
      ref_ : Ident.t;
      found : int;
      mult : Metamodel.mult;
    }
  | Multiple_containers of { obj : Model.obj_id; containers : Model.obj_id list }
      (** An object reachable through more than one containment edge. *)
  | Containment_cycle of { obj : Model.obj_id }
      (** An object that (transitively) contains itself. *)
  | Opposite_mismatch of {
      src : Model.obj_id;
      ref_ : Ident.t;
      dst : Model.obj_id;
      opposite : Ident.t;
    }
      (** Edge [src -ref-> dst] present but the declared opposite edge
          [dst -opposite-> src] is missing. *)
  | Key_violation of {
      cls : Ident.t;
      attr : Ident.t;
      objs : Model.obj_id list;
    }
      (** Two or more instances of a class share the value of a key
          (ID) attribute. *)

val pp_violation : Format.formatter -> violation -> unit

val check : Model.t -> violation list
(** All violations, in deterministic order (by object id, then
    feature name). The empty list means the model conforms. *)

val conforms : Model.t -> bool
(** [conforms m = (check m = [])]. *)

val pp_report : Format.formatter -> violation list -> unit
