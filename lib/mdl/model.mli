(** Instance models (typed object graphs).

    A model is a finite set of objects, each an instance of a class of
    a fixed metamodel, with attribute slots holding primitive values
    and reference slots holding ordered lists of object identifiers.

    Models are immutable persistent values: every update returns a new
    model sharing structure with the old one. This is what makes the
    enforcement engine's search over candidate repairs cheap.

    Well-formedness enforced here is purely structural (slots only for
    declared features, values type-compatible); multiplicities and the
    deeper conformance rules are checked by {!Conformance}. *)

type obj_id = int
(** Object identifiers, unique within a model. Identifiers are stable
    across updates — deleting an object never renumbers others — so
    the same id in two versions of a model denotes "the same" object,
    which is what the distance metric Δ relies on. *)

type t

val empty : name:string -> Metamodel.t -> t
(** An empty model conforming to the given metamodel. *)

val name : t -> Ident.t
val metamodel : t -> Metamodel.t

val set_name : t -> string -> t
(** Rename the model (used when instantiating one model as several
    QVT-R domains). *)

exception Type_error of string
(** Raised by updates that violate the metamodel's structure: unknown
    class/feature, abstract class instantiation, or value of the wrong
    primitive type. *)

val add_object : t -> cls:Ident.t -> t * obj_id
(** [add_object m ~cls] creates a fresh object of class [cls]
    (attributes unset, references empty).
    @raise Type_error if [cls] is unknown or abstract. *)

val add_object_with_id : t -> id:obj_id -> cls:Ident.t -> t
(** Create an object with a caller-chosen (unused, non-negative) id.
    Used by the repair decoder to keep atom/object correspondence.
    @raise Type_error if the id is taken or negative, or class invalid. *)

val delete_object : t -> obj_id -> t
(** Remove the object and every reference edge pointing at it.
    @raise Type_error if the object does not exist. *)

val mem : t -> obj_id -> bool
val class_of : t -> obj_id -> Ident.t
(** @raise Type_error on unknown ids. *)

val objects : t -> obj_id list
(** All object ids in increasing order. *)

val size : t -> int
(** Number of objects. *)

val class_extent : t -> Ident.t -> obj_id list
(** Objects whose class is exactly the given class. *)

val instances_of : t -> Ident.t -> obj_id list
(** Objects whose class conforms to (is a subclass of) the given
    class — the extent QVT-R domain patterns quantify over. *)

val set_attr : t -> obj_id -> Ident.t -> Value.t list -> t
(** Replace an attribute slot. Single-valued attributes take a
    singleton list; the empty list unsets the slot.
    @raise Type_error on unknown object/attribute or ill-typed value. *)

val set_attr1 : t -> obj_id -> Ident.t -> Value.t -> t
(** [set_attr1 m o a v] = [set_attr m o a [v]]. *)

val get_attr : t -> obj_id -> Ident.t -> Value.t list
(** The attribute slot, [[]] when unset.
    @raise Type_error on unknown object or attribute. *)

val get_attr1 : t -> obj_id -> Ident.t -> Value.t option
(** First value of the slot, if any. *)

val add_ref : t -> src:obj_id -> ref_:Ident.t -> dst:obj_id -> t
(** Append [dst] to the reference slot (no-op if the edge exists).
    @raise Type_error on unknown endpoints/reference or a target whose
    class does not conform to the reference's target class. *)

val del_ref : t -> src:obj_id -> ref_:Ident.t -> dst:obj_id -> t
(** Remove the edge if present.
    @raise Type_error on unknown endpoints or reference. *)

val get_refs : t -> obj_id -> Ident.t -> obj_id list
(** Targets of the reference slot, in insertion order.
    @raise Type_error on unknown object or reference. *)

val has_ref : t -> src:obj_id -> ref_:Ident.t -> dst:obj_id -> bool

val fold_objects : (obj_id -> Ident.t -> 'a -> 'a) -> t -> 'a -> 'a
(** Fold over (id, class) pairs in increasing id order. *)

val fold_attr_slots : (obj_id -> Ident.t -> Value.t list -> 'a -> 'a) -> t -> 'a -> 'a
(** Fold over every set attribute slot. *)

val fold_ref_edges : (obj_id -> Ident.t -> obj_id -> 'a -> 'a) -> t -> 'a -> 'a
(** Fold over every reference edge (src, ref, dst). *)

val all_values : t -> Value.Set.t
(** Every primitive value occurring in some attribute slot. *)

val equal : t -> t -> bool
(** Slot-level equality up to reference-list order (reference slots
    compare as sets). Object identity matters: models with isomorphic
    but differently-numbered objects are unequal. *)

val pp : Format.formatter -> t -> unit
(** Pretty-prints in the concrete syntax accepted by {!Serialize}. *)
