let same_value_list a b = List.equal Value.equal a b

let sorted l = List.sort_uniq Int.compare l

(* Slot-level edits needed to turn [a]'s view of object [id] into
   [b]'s. The object exists in both models with the same class.
   Edges of [a] pointing at [reclassed] objects are treated as absent:
   the script deletes and re-creates those targets, which implicitly
   severs such edges, so they must be re-added even when both models
   contain them. *)
let slot_edits a b ~reclassed id =
  let mm = Model.metamodel a in
  let cls = Model.class_of a id in
  let attr_edits =
    Metamodel.all_attributes mm cls
    |> List.concat_map (fun (at : Metamodel.attribute) ->
           let va = Model.get_attr a id at.attr_name in
           let vb = Model.get_attr b id at.attr_name in
           if same_value_list va vb then []
           else [ Edit.Set_attr { id; attr = at.attr_name; before = va; after = vb } ])
  in
  let ref_edits =
    Metamodel.all_references mm cls
    |> List.concat_map (fun (rf : Metamodel.reference) ->
           let ra =
             sorted (Model.get_refs a id rf.ref_name)
             |> List.filter (fun d -> not (List.mem d reclassed))
           in
           let rb = sorted (Model.get_refs b id rf.ref_name) in
           let dels =
             List.filter (fun d -> not (List.mem d rb)) ra
             |> List.map (fun dst -> Edit.Del_ref { src = id; ref_ = rf.ref_name; dst })
           in
           let adds =
             List.filter (fun d -> not (List.mem d ra)) rb
             |> List.map (fun dst -> Edit.Add_ref { src = id; ref_ = rf.ref_name; dst })
           in
           dels @ adds)
  in
  attr_edits @ ref_edits

(* Edits populating a fresh object [id] to match its slots in [b]. *)
let populate_edits b id =
  let mm = Model.metamodel b in
  let cls = Model.class_of b id in
  let attrs =
    Metamodel.all_attributes mm cls
    |> List.concat_map (fun (at : Metamodel.attribute) ->
           match Model.get_attr b id at.attr_name with
           | [] -> []
           | vs -> [ Edit.Set_attr { id; attr = at.attr_name; before = []; after = vs } ])
  in
  let refs =
    Metamodel.all_references mm cls
    |> List.concat_map (fun (rf : Metamodel.reference) ->
           Model.get_refs b id rf.ref_name
           |> List.map (fun dst -> Edit.Add_ref { src = id; ref_ = rf.ref_name; dst }))
  in
  (attrs, refs)

(* Edits emptying object [id]'s slots in [a] (prior to deletion). *)
let empty_edits a id =
  let mm = Model.metamodel a in
  let cls = Model.class_of a id in
  let attrs =
    Metamodel.all_attributes mm cls
    |> List.concat_map (fun (at : Metamodel.attribute) ->
           match Model.get_attr a id at.attr_name with
           | [] -> []
           | vs -> [ Edit.Set_attr { id; attr = at.attr_name; before = vs; after = [] } ])
  in
  let refs =
    Metamodel.all_references mm cls
    |> List.concat_map (fun (rf : Metamodel.reference) ->
           Model.get_refs a id rf.ref_name
           |> List.map (fun dst -> Edit.Del_ref { src = id; ref_ = rf.ref_name; dst }))
  in
  attrs @ refs

let script a b =
  if not (Metamodel.equal (Model.metamodel a) (Model.metamodel b)) then
    invalid_arg "Diff.script: models have different metamodels";
  let in_a = Model.objects a and in_b = Model.objects b in
  let only_a = List.filter (fun id -> not (Model.mem b id)) in_a in
  let only_b = List.filter (fun id -> not (Model.mem a id)) in_b in
  let common = List.filter (fun id -> Model.mem b id) in_a in
  (* An id present in both but with a different class is treated as a
     delete + create. *)
  let reclassed, stable =
    List.partition
      (fun id -> not (Ident.equal (Model.class_of a id) (Model.class_of b id)))
      common
  in
  let deletions =
    List.concat_map
      (fun id -> empty_edits a id @ [ Edit.Delete_object { id } ])
      (only_a @ reclassed)
  in
  let creations =
    List.map (fun id -> Edit.Add_object { id; cls = Model.class_of b id }) (only_b @ reclassed)
  in
  let stable_edits =
    List.concat_map (fun id -> slot_edits a b ~reclassed id) stable
  in
  (* Populate after all creations so cross references resolve; likewise
     deletions happen after the edge removals they require. Order:
     empty+delete old, create new, slot edits, populate new. *)
  let populate =
    List.concat_map
      (fun id ->
        let attrs, refs = populate_edits b id in
        attrs @ refs)
      (only_b @ reclassed)
  in
  deletions @ creations @ stable_edits @ populate

let pp_script ppf edits =
  Format.fprintf ppf "@[<v>";
  List.iteri
    (fun i e ->
      if i > 0 then Format.pp_print_cut ppf ();
      Edit.pp ppf e)
    edits;
  Format.fprintf ppf "@]"
