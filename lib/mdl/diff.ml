let same_value_list a b = List.equal Value.equal a b

let sorted l = List.sort_uniq Int.compare l

(* ------------------------------------------------------------------ *)
(* The structured diff                                                  *)

type object_diff = {
  od_id : Model.obj_id;
  od_cls : Ident.t;
  od_attrs : (Ident.t * Value.t list * Value.t list) list;
  od_ref_dels : (Ident.t * Model.obj_id) list;
  od_ref_adds : (Ident.t * Model.obj_id) list;
}

type t = {
  removed : object_diff list;
  added : object_diff list;
  changed : object_diff list;
}

let is_empty d = d.removed = [] && d.added = [] && d.changed = []

(* Slot-level changes turning [a]'s view of object [id] into [b]'s.
   The object exists in both models with the same class. Edges of [a]
   pointing at [reclassed] objects are treated as absent: the edit
   script deletes and re-creates those targets, which implicitly
   severs such edges, so they must be re-added even when both models
   contain them. *)
let slot_diff a b ~reclassed id =
  let mm = Model.metamodel a in
  let cls = Model.class_of a id in
  let attrs =
    Metamodel.all_attributes mm cls
    |> List.concat_map (fun (at : Metamodel.attribute) ->
           let va = Model.get_attr a id at.attr_name in
           let vb = Model.get_attr b id at.attr_name in
           if same_value_list va vb then [] else [ (at.attr_name, va, vb) ])
  in
  let dels, adds =
    Metamodel.all_references mm cls
    |> List.fold_left
         (fun (dels, adds) (rf : Metamodel.reference) ->
           let ra =
             sorted (Model.get_refs a id rf.ref_name)
             |> List.filter (fun d -> not (List.mem d reclassed))
           in
           let rb = sorted (Model.get_refs b id rf.ref_name) in
           let d =
             List.filter (fun d -> not (List.mem d rb)) ra
             |> List.map (fun dst -> (rf.ref_name, dst))
           in
           let a =
             List.filter (fun d -> not (List.mem d ra)) rb
             |> List.map (fun dst -> (rf.ref_name, dst))
           in
           (dels @ d, adds @ a))
         ([], [])
  in
  { od_id = id; od_cls = cls; od_attrs = attrs; od_ref_dels = dels; od_ref_adds = adds }

(* The full slot contents of object [id] in [m], as an [object_diff]
   against empty slots: [removed] entries read it as before-content,
   [added] entries as after-content (see [flip]). *)
let slot_contents m id ~as_before =
  let mm = Model.metamodel m in
  let cls = Model.class_of m id in
  let attrs =
    Metamodel.all_attributes mm cls
    |> List.concat_map (fun (at : Metamodel.attribute) ->
           match Model.get_attr m id at.attr_name with
           | [] -> []
           | vs -> if as_before then [ (at.attr_name, vs, []) ] else [ (at.attr_name, [], vs) ])
  in
  let edges =
    Metamodel.all_references mm cls
    |> List.concat_map (fun (rf : Metamodel.reference) ->
           Model.get_refs m id rf.ref_name |> List.map (fun dst -> (rf.ref_name, dst)))
  in
  {
    od_id = id;
    od_cls = cls;
    od_attrs = attrs;
    od_ref_dels = (if as_before then edges else []);
    od_ref_adds = (if as_before then [] else edges);
  }

let diff a b =
  if not (Metamodel.equal (Model.metamodel a) (Model.metamodel b)) then
    invalid_arg "Diff.diff: models have different metamodels";
  let in_a = Model.objects a and in_b = Model.objects b in
  let only_a = List.filter (fun id -> not (Model.mem b id)) in_a in
  let only_b = List.filter (fun id -> not (Model.mem a id)) in_b in
  let common = List.filter (fun id -> Model.mem b id) in_a in
  (* An id present in both but with a different class is treated as a
     delete + create: it contributes to both [removed] and [added]. *)
  let reclassed, stable =
    List.partition
      (fun id -> not (Ident.equal (Model.class_of a id) (Model.class_of b id)))
      common
  in
  {
    removed = List.map (slot_contents a ~as_before:true) (only_a @ reclassed);
    added = List.map (slot_contents b ~as_before:false) (only_b @ reclassed);
    changed =
      List.filter_map
        (fun id ->
          let od = slot_diff a b ~reclassed id in
          if od.od_attrs = [] && od.od_ref_dels = [] && od.od_ref_adds = [] then None
          else Some od)
        stable;
  }

(* ------------------------------------------------------------------ *)
(* Edit-script output                                                   *)

let slot_edits od =
  List.map
    (fun (attr, before, after) -> Edit.Set_attr { id = od.od_id; attr; before; after })
    od.od_attrs
  @ List.map
      (fun (ref_, dst) -> Edit.Del_ref { src = od.od_id; ref_; dst })
      od.od_ref_dels
  @ List.map
      (fun (ref_, dst) -> Edit.Add_ref { src = od.od_id; ref_; dst })
      od.od_ref_adds

let to_edits d =
  (* Order: empty + delete old objects first, then create new ones,
     then slot edits on stable objects, then populate the new objects —
     so every cross reference resolves when its edit applies. *)
  let deletions =
    List.concat_map
      (fun od -> slot_edits od @ [ Edit.Delete_object { id = od.od_id } ])
      d.removed
  in
  let creations =
    List.map (fun od -> Edit.Add_object { id = od.od_id; cls = od.od_cls }) d.added
  in
  let stable_edits = List.concat_map slot_edits d.changed in
  let populate = List.concat_map slot_edits d.added in
  deletions @ creations @ stable_edits @ populate

let script a b = to_edits (diff a b)

let pp_script ppf edits =
  Format.fprintf ppf "@[<v>";
  List.iteri
    (fun i e ->
      if i > 0 then Format.pp_print_cut ppf ();
      Edit.pp ppf e)
    edits;
  Format.fprintf ppf "@]"
