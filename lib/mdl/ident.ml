type t = { tag : int; str : string }

let table : (string, t) Hashtbl.t = Hashtbl.create 512
let counter = ref 0

(* Interning must be domain-safe: the transformation server parses
   metamodels and decodes repaired models on pool worker domains, and
   a racy double-insert would mint two tags for one string — breaking
   [equal], which compares tags only. The table is touched exclusively
   under this lock; uncontended Mutex ops are tens of nanoseconds,
   invisible next to the parsing that surrounds every [make]. *)
let mu = Mutex.create ()

let make str =
  Mutex.lock mu;
  let id =
    match Hashtbl.find_opt table str with
    | Some id -> id
    | None ->
      let id = { tag = !counter; str } in
      incr counter;
      Hashtbl.add table str id;
      id
  in
  Mutex.unlock mu;
  id

let name id = id.str
let equal a b = a.tag = b.tag
let compare a b = Int.compare a.tag b.tag
let compare_name a b = String.compare a.str b.str
let hash id = id.tag
let pp ppf id = Format.pp_print_string ppf id.str

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Map = Map.Make (Ord)
module Set = Set.Make (Ord)
