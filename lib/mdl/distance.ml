type weights = {
  w_add_object : int;
  w_delete_object : int;
  w_set_attr : int;
  w_add_ref : int;
  w_del_ref : int;
}

let uniform =
  { w_add_object = 1; w_delete_object = 1; w_set_attr = 1; w_add_ref = 1; w_del_ref = 1 }

let weight w = function
  | Edit.Add_object _ -> w.w_add_object
  | Edit.Delete_object _ -> w.w_delete_object
  | Edit.Set_attr _ -> w.w_set_attr
  | Edit.Add_ref _ -> w.w_add_ref
  | Edit.Del_ref _ -> w.w_del_ref

let script_cost w edits = List.fold_left (fun acc e -> acc + weight w e) 0 edits

let delta ?(weights = uniform) a b = script_cost weights (Diff.script a b)

let delta_tuple ?(weights = uniform) xs ys =
  if List.length xs <> List.length ys then
    invalid_arg "Distance.delta_tuple: tuple length mismatch";
  List.fold_left2 (fun acc a b -> acc + delta ~weights a b) 0 xs ys

let delta_weighted_tuple ?(weights = uniform) ws xs ys =
  if List.length xs <> List.length ys || List.length ws <> List.length xs then
    invalid_arg "Distance.delta_weighted_tuple: length mismatch";
  List.fold_left2
    (fun acc (w, a) b -> acc + (w * delta ~weights a b))
    0 (List.combine ws xs) ys
