(** Interned identifiers.

    Identifiers name every metamodel-level entity (classes, attributes,
    references, enum literals) and every model. They are hash-consed so
    that equality and comparison are O(1) integer operations, which
    matters in the inner loops of the relational translation. *)

type t
(** An interned identifier. Two idents built from the same string are
    physically equal. *)

val make : string -> t
(** [make s] interns [s] and returns its identifier. Domain-safe: the
    interning table is lock-protected, so parsing and model decoding
    may run concurrently on pool worker domains (the transformation
    server does both). *)

val name : t -> string
(** [name id] is the string [id] was built from. *)

val equal : t -> t -> bool
(** O(1) equality on the interning tag. *)

val compare : t -> t -> int
(** Total order on interning tags. The order is deterministic within a
    process run (it reflects interning order), not lexicographic; use
    {!compare_name} for display-stable ordering. *)

val compare_name : t -> t -> int
(** Lexicographic order on the underlying strings. *)

val hash : t -> int

val pp : Format.formatter -> t -> unit

module Map : Map.S with type key = t
module Set : Set.S with type elt = t
