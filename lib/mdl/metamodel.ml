type prim =
  | P_string
  | P_int
  | P_bool
  | P_enum of Ident.t

type mult = {
  lower : int;
  upper : int option;
}

let mult_one = { lower = 1; upper = Some 1 }
let mult_opt = { lower = 0; upper = Some 1 }
let mult_many = { lower = 0; upper = None }
let mult_some = { lower = 1; upper = None }

let mult_admits m n =
  n >= m.lower && (match m.upper with None -> true | Some u -> n <= u)

let pp_mult ppf m =
  match m.upper with
  | None -> Format.fprintf ppf "[%d..*]" m.lower
  | Some u -> Format.fprintf ppf "[%d..%d]" m.lower u

type attribute = {
  attr_name : Ident.t;
  attr_type : prim;
  attr_mult : mult;
  attr_key : bool;
}

type reference = {
  ref_name : Ident.t;
  ref_target : Ident.t;
  ref_mult : mult;
  ref_containment : bool;
  ref_opposite : Ident.t option;
}

type cls = {
  cls_name : Ident.t;
  cls_abstract : bool;
  cls_supers : Ident.t list;
  cls_attrs : attribute list;
  cls_refs : reference list;
}

type enum = {
  enum_name : Ident.t;
  enum_literals : Ident.t list;
}

type t = {
  mm_name : Ident.t;
  mm_classes : cls list;
  mm_enums : enum list;
  by_class : cls Ident.Map.t;
  by_enum : enum Ident.Map.t;
  supers_tc : Ident.Set.t Ident.Map.t;  (* transitive, without self *)
  subs_tc : Ident.Set.t Ident.Map.t;
}

let name mm = mm.mm_name
let classes mm = mm.mm_classes
let enums mm = mm.mm_enums
let find_class mm c = Ident.Map.find_opt c mm.by_class

let find_class_exn mm c =
  match find_class mm c with
  | Some cl -> cl
  | None ->
    invalid_arg
      (Printf.sprintf "Metamodel.find_class_exn: no class %s in %s"
         (Ident.name c) (Ident.name mm.mm_name))

let find_enum mm e = Ident.Map.find_opt e mm.by_enum

let has_enum_literal mm e lit =
  match find_enum mm e with
  | None -> false
  | Some en -> List.exists (Ident.equal lit) en.enum_literals

let superclasses mm c =
  match Ident.Map.find_opt c mm.supers_tc with
  | Some s -> s
  | None -> Ident.Set.empty

let subclasses mm c =
  match Ident.Map.find_opt c mm.subs_tc with
  | Some s -> s
  | None -> Ident.Set.empty

let is_subclass mm ~sub ~super =
  Ident.equal sub super || Ident.Set.mem super (superclasses mm sub)

let concrete_subclasses mm c =
  let candidates = Ident.Set.add c (subclasses mm c) in
  Ident.Set.filter
    (fun c' ->
      match find_class mm c' with
      | Some cl -> not cl.cls_abstract
      | None -> false)
    candidates

(* Linearization: superclass features first, then local, depth-first on
   the declared super order, deduplicated by feature name (a feature
   redeclared lower in the chain shadows the inherited one). *)
let chain mm c =
  let visited = ref Ident.Set.empty in
  let rec go c acc =
    if Ident.Set.mem c !visited then acc
    else begin
      visited := Ident.Set.add c !visited;
      match find_class mm c with
      | None -> acc
      | Some cl -> cl :: List.fold_left (fun acc s -> go s acc) acc cl.cls_supers
    end
  in
  (* [go] accumulates supers before self in reverse; reverse at the end
     so superclasses come first. *)
  List.rev (go c [])

let dedup_by_name key features =
  let seen = Hashtbl.create 8 in
  (* Later (more specific) declarations win; iterate in reverse so the
     last occurrence is kept, then restore order. *)
  List.rev features
  |> List.filter (fun f ->
         let n = key f in
         if Hashtbl.mem seen n then false
         else begin
           Hashtbl.add seen n ();
           true
         end)
  |> List.rev

let all_attributes mm c =
  chain mm c
  |> List.concat_map (fun cl -> cl.cls_attrs)
  |> dedup_by_name (fun a -> a.attr_name)

let all_references mm c =
  chain mm c
  |> List.concat_map (fun cl -> cl.cls_refs)
  |> dedup_by_name (fun r -> r.ref_name)

let find_attribute mm c a =
  List.find_opt (fun at -> Ident.equal at.attr_name a) (all_attributes mm c)

let find_reference mm c r =
  List.find_opt (fun rf -> Ident.equal rf.ref_name r) (all_references mm c)

(* ------------------------------------------------------------------ *)
(* Validation                                                          *)

let ( let* ) = Result.bind

let rec check_all f = function
  | [] -> Ok ()
  | x :: xs ->
    let* () = f x in
    check_all f xs

let err fmt = Format.kasprintf (fun s -> Error s) fmt

let check_unique what names =
  let sorted = List.sort Ident.compare names in
  let rec go = function
    | a :: (b :: _ as rest) ->
      if Ident.equal a b then err "duplicate %s name %a" what Ident.pp a
      else go rest
    | [ _ ] | [] -> Ok ()
  in
  go sorted

let check_mult what m =
  if m.lower < 0 then err "%s: negative lower bound" what
  else
    match m.upper with
    | Some u when u < m.lower -> err "%s: upper bound below lower bound" what
    | Some _ | None -> Ok ()

let validate mm =
  let class_names = List.map (fun c -> c.cls_name) mm.mm_classes in
  let enum_names = List.map (fun e -> e.enum_name) mm.mm_enums in
  let* () = check_unique "class" class_names in
  let* () = check_unique "enum" enum_names in
  let* () =
    check_all
      (fun e ->
        if e.enum_literals = [] then err "enum %a has no literals" Ident.pp e.enum_name
        else check_unique "enum literal" e.enum_literals)
      mm.mm_enums
  in
  let* () =
    check_all
      (fun c ->
        let* () =
          check_all
            (fun s ->
              if Ident.Map.mem s mm.by_class then Ok ()
              else err "class %a: unknown superclass %a" Ident.pp c.cls_name Ident.pp s)
            c.cls_supers
        in
        let* () =
          check_all
            (fun a ->
              let* () =
                check_mult
                  (Printf.sprintf "attribute %s.%s" (Ident.name c.cls_name)
                     (Ident.name a.attr_name))
                  a.attr_mult
              in
              match a.attr_type with
              | P_enum e when not (Ident.Map.mem e mm.by_enum) ->
                err "attribute %a.%a: unknown enum %a" Ident.pp c.cls_name Ident.pp
                  a.attr_name Ident.pp e
              | P_enum _ | P_string | P_int | P_bool -> Ok ())
            c.cls_attrs
        in
        check_all
          (fun r ->
            let* () =
              check_mult
                (Printf.sprintf "reference %s.%s" (Ident.name c.cls_name)
                   (Ident.name r.ref_name))
                r.ref_mult
            in
            if not (Ident.Map.mem r.ref_target mm.by_class) then
              err "reference %a.%a: unknown target class %a" Ident.pp c.cls_name
                Ident.pp r.ref_name Ident.pp r.ref_target
            else Ok ())
          c.cls_refs)
      mm.mm_classes
  in
  (* Inheritance acyclicity: a class must not be its own transitive
     superclass. The transitive closure below is computed with a cycle
     guard, so detect cycles directly here. *)
  let* () =
    check_all
      (fun c ->
        let rec reaches target seen c =
          if Ident.Set.mem c seen then false
          else
            match Ident.Map.find_opt c mm.by_class with
            | None -> false
            | Some cl ->
              List.exists
                (fun s -> Ident.equal s target || reaches target (Ident.Set.add c seen) s)
                cl.cls_supers
        in
        if reaches c.cls_name Ident.Set.empty c.cls_name then
          err "inheritance cycle through class %a" Ident.pp c.cls_name
        else Ok ())
      mm.mm_classes
  in
  (* Feature-name clashes along the chain are allowed only as an exact
     shadowing redeclaration; we simply forbid declaring the same name
     twice locally. *)
  let* () =
    check_all
      (fun c ->
        check_unique
          (Printf.sprintf "feature of class %s" (Ident.name c.cls_name))
          (List.map (fun a -> a.attr_name) c.cls_attrs
          @ List.map (fun r -> r.ref_name) c.cls_refs))
      mm.mm_classes
  in
  (* Opposites must exist on the target class and point back. *)
  check_all
    (fun c ->
      check_all
        (fun r ->
          match r.ref_opposite with
          | None -> Ok ()
          | Some opp -> (
            let target = Ident.Map.find r.ref_target mm.by_class in
            match
              List.find_opt (fun r' -> Ident.equal r'.ref_name opp) target.cls_refs
            with
            | None ->
              err "reference %a.%a: opposite %a not found on %a" Ident.pp c.cls_name
                Ident.pp r.ref_name Ident.pp opp Ident.pp r.ref_target
            | Some r' ->
              if
                r'.ref_opposite = Some r.ref_name
                && Ident.equal r'.ref_target c.cls_name
              then Ok ()
              else
                err "reference %a.%a: opposite %a.%a does not point back" Ident.pp
                  c.cls_name Ident.pp r.ref_name Ident.pp r.ref_target Ident.pp opp))
        c.cls_refs)
    mm.mm_classes

let transitive_closure classes by_class =
  (* supers_tc: class -> all transitive superclasses (assumes acyclic). *)
  let memo = Hashtbl.create 32 in
  let rec supers_of c =
    match Hashtbl.find_opt memo c with
    | Some s -> s
    | None ->
      Hashtbl.add memo c Ident.Set.empty;
      (* cycle guard *)
      let s =
        match Ident.Map.find_opt c by_class with
        | None -> Ident.Set.empty
        | Some cl ->
          List.fold_left
            (fun acc s -> Ident.Set.add s (Ident.Set.union acc (supers_of s)))
            Ident.Set.empty cl.cls_supers
      in
      Hashtbl.replace memo c s;
      s
  in
  let supers_tc =
    List.fold_left
      (fun m c -> Ident.Map.add c.cls_name (supers_of c.cls_name) m)
      Ident.Map.empty classes
  in
  let subs_tc =
    List.fold_left
      (fun m c ->
        Ident.Set.fold
          (fun super m ->
            let cur =
              match Ident.Map.find_opt super m with
              | Some s -> s
              | None -> Ident.Set.empty
            in
            Ident.Map.add super (Ident.Set.add c.cls_name cur) m)
          (supers_of c.cls_name) m)
      Ident.Map.empty classes
  in
  (supers_tc, subs_tc)

let make ~name ?(enums = []) classes =
  let by_class =
    List.fold_left (fun m c -> Ident.Map.add c.cls_name c m) Ident.Map.empty classes
  in
  let by_enum =
    List.fold_left (fun m e -> Ident.Map.add e.enum_name e m) Ident.Map.empty enums
  in
  let mm =
    {
      mm_name = Ident.make name;
      mm_classes = classes;
      mm_enums = enums;
      by_class;
      by_enum;
      supers_tc = Ident.Map.empty;
      subs_tc = Ident.Map.empty;
    }
  in
  match validate mm with
  | Error _ as e -> e
  | Ok () ->
    let supers_tc, subs_tc = transitive_closure classes by_class in
    Ok { mm with supers_tc; subs_tc }

let make_exn ~name ?enums classes =
  match make ~name ?enums classes with
  | Ok mm -> mm
  | Error msg -> invalid_arg ("Metamodel.make_exn: " ^ msg)

(* ------------------------------------------------------------------ *)
(* Builders                                                            *)

let attr ?(mult = mult_one) ?(key = false) name typ =
  { attr_name = Ident.make name; attr_type = typ; attr_mult = mult; attr_key = key }

let ref_ ?(mult = mult_many) ?(containment = false) ?opposite name ~target =
  {
    ref_name = Ident.make name;
    ref_target = Ident.make target;
    ref_mult = mult;
    ref_containment = containment;
    ref_opposite = Option.map Ident.make opposite;
  }

let cls ?(abstract = false) ?(supers = []) ?(attrs = []) ?(refs = []) name =
  {
    cls_name = Ident.make name;
    cls_abstract = abstract;
    cls_supers = List.map Ident.make supers;
    cls_attrs = attrs;
    cls_refs = refs;
  }

let enum_decl name literals =
  { enum_name = Ident.make name; enum_literals = List.map Ident.make literals }

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)

let pp_prim ppf = function
  | P_string -> Format.pp_print_string ppf "string"
  | P_int -> Format.pp_print_string ppf "int"
  | P_bool -> Format.pp_print_string ppf "bool"
  | P_enum e -> Ident.pp ppf e

let pp_attribute ppf a =
  Format.fprintf ppf "attr %a : %a" Ident.pp a.attr_name pp_prim a.attr_type;
  if a.attr_mult <> mult_one then Format.fprintf ppf " %a" pp_mult a.attr_mult;
  if a.attr_key then Format.pp_print_string ppf " key"

let pp_reference ppf r =
  Format.fprintf ppf "ref %a : %a %a" Ident.pp r.ref_name Ident.pp r.ref_target pp_mult
    r.ref_mult;
  if r.ref_containment then Format.pp_print_string ppf " containment";
  Option.iter (fun o -> Format.fprintf ppf " opposite %a" Ident.pp o) r.ref_opposite

let pp_cls ppf c =
  Format.fprintf ppf "@[<v 2>%sclass %a%s {"
    (if c.cls_abstract then "abstract " else "")
    Ident.pp c.cls_name
    (match c.cls_supers with
    | [] -> ""
    | ss -> " extends " ^ String.concat ", " (List.map Ident.name ss));
  List.iter (fun a -> Format.fprintf ppf "@,%a;" pp_attribute a) c.cls_attrs;
  List.iter (fun r -> Format.fprintf ppf "@,%a;" pp_reference r) c.cls_refs;
  Format.fprintf ppf "@]@,}"

let pp_enum ppf e =
  Format.fprintf ppf "enum %a { %s }" Ident.pp e.enum_name
    (String.concat ", " (List.map Ident.name e.enum_literals))

let pp ppf mm =
  Format.fprintf ppf "@[<v 2>metamodel %a {" Ident.pp mm.mm_name;
  List.iter (fun e -> Format.fprintf ppf "@,%a" pp_enum e) mm.mm_enums;
  List.iter (fun c -> Format.fprintf ppf "@,%a" pp_cls c) mm.mm_classes;
  Format.fprintf ppf "@]@,}"

let equal a b =
  Ident.equal a.mm_name b.mm_name
  && a.mm_classes = b.mm_classes && a.mm_enums = b.mm_enums
