module IntMap = Map.Make (Int)

type obj_id = int

type obj = {
  o_class : Ident.t;
  o_attrs : Value.t list Ident.Map.t;
  o_refs : obj_id list Ident.Map.t;
}

type t = {
  m_name : Ident.t;
  m_mm : Metamodel.t;
  m_objs : obj IntMap.t;
  m_next : obj_id;
}

exception Type_error of string

let type_error fmt = Format.kasprintf (fun s -> raise (Type_error s)) fmt

let empty ~name mm =
  { m_name = Ident.make name; m_mm = mm; m_objs = IntMap.empty; m_next = 0 }

let name m = m.m_name
let metamodel m = m.m_mm
let set_name m n = { m with m_name = Ident.make n }

let find_obj m id =
  match IntMap.find_opt id m.m_objs with
  | Some o -> o
  | None -> type_error "model %a: no object #%d" Ident.pp m.m_name id

let check_instantiable m cls =
  match Metamodel.find_class m.m_mm cls with
  | None -> type_error "model %a: unknown class %a" Ident.pp m.m_name Ident.pp cls
  | Some c when c.Metamodel.cls_abstract ->
    type_error "model %a: class %a is abstract" Ident.pp m.m_name Ident.pp cls
  | Some _ -> ()

let fresh_obj cls =
  { o_class = cls; o_attrs = Ident.Map.empty; o_refs = Ident.Map.empty }

let add_object m ~cls =
  check_instantiable m cls;
  let id = m.m_next in
  ({ m with m_objs = IntMap.add id (fresh_obj cls) m.m_objs; m_next = id + 1 }, id)

let add_object_with_id m ~id ~cls =
  check_instantiable m cls;
  if id < 0 then type_error "model %a: negative object id %d" Ident.pp m.m_name id;
  if IntMap.mem id m.m_objs then
    type_error "model %a: object id #%d already in use" Ident.pp m.m_name id;
  {
    m with
    m_objs = IntMap.add id (fresh_obj cls) m.m_objs;
    m_next = max m.m_next (id + 1);
  }

let delete_object m id =
  let _ = find_obj m id in
  let objs = IntMap.remove id m.m_objs in
  let objs =
    IntMap.map
      (fun o ->
        { o with o_refs = Ident.Map.map (List.filter (fun d -> d <> id)) o.o_refs })
      objs
  in
  { m with m_objs = objs }

let mem m id = IntMap.mem id m.m_objs
let class_of m id = (find_obj m id).o_class
let objects m = IntMap.fold (fun id _ acc -> id :: acc) m.m_objs [] |> List.rev
let size m = IntMap.cardinal m.m_objs

let class_extent m cls =
  IntMap.fold
    (fun id o acc -> if Ident.equal o.o_class cls then id :: acc else acc)
    m.m_objs []
  |> List.rev

let instances_of m cls =
  IntMap.fold
    (fun id o acc ->
      if Metamodel.is_subclass m.m_mm ~sub:o.o_class ~super:cls then id :: acc else acc)
    m.m_objs []
  |> List.rev

let check_value m (a : Metamodel.attribute) v =
  let ok =
    match a.Metamodel.attr_type, v with
    | Metamodel.P_string, Value.Str _ -> true
    | Metamodel.P_int, Value.Int _ -> true
    | Metamodel.P_bool, Value.Bool _ -> true
    | Metamodel.P_enum e, Value.Enum lit -> Metamodel.has_enum_literal m.m_mm e lit
    | (Metamodel.P_string | Metamodel.P_int | Metamodel.P_bool | Metamodel.P_enum _), _
      -> false
  in
  if not ok then
    type_error "model %a: value %a ill-typed for attribute %a" Ident.pp m.m_name
      Value.pp v Ident.pp a.Metamodel.attr_name

let resolve_attr m id a =
  let o = find_obj m id in
  match Metamodel.find_attribute m.m_mm o.o_class a with
  | Some at -> (o, at)
  | None ->
    type_error "model %a: class %a has no attribute %a" Ident.pp m.m_name Ident.pp
      o.o_class Ident.pp a

let resolve_ref m id r =
  let o = find_obj m id in
  match Metamodel.find_reference m.m_mm o.o_class r with
  | Some rf -> (o, rf)
  | None ->
    type_error "model %a: class %a has no reference %a" Ident.pp m.m_name Ident.pp
      o.o_class Ident.pp r

let set_attr m id a vs =
  let o, at = resolve_attr m id a in
  List.iter (check_value m at) vs;
  let o =
    if vs = [] then { o with o_attrs = Ident.Map.remove a o.o_attrs }
    else { o with o_attrs = Ident.Map.add a vs o.o_attrs }
  in
  { m with m_objs = IntMap.add id o m.m_objs }

let set_attr1 m id a v = set_attr m id a [ v ]

let get_attr m id a =
  let o, _ = resolve_attr m id a in
  match Ident.Map.find_opt a o.o_attrs with Some vs -> vs | None -> []

let get_attr1 m id a =
  match get_attr m id a with [] -> None | v :: _ -> Some v

let add_ref m ~src ~ref_ ~dst =
  let o, rf = resolve_ref m src ref_ in
  let dcls = class_of m dst in
  if not (Metamodel.is_subclass m.m_mm ~sub:dcls ~super:rf.Metamodel.ref_target) then
    type_error "model %a: #%d : %a does not conform to target %a of reference %a"
      Ident.pp m.m_name dst Ident.pp dcls Ident.pp rf.Metamodel.ref_target Ident.pp
      ref_;
  let cur = match Ident.Map.find_opt ref_ o.o_refs with Some l -> l | None -> [] in
  if List.mem dst cur then m
  else
    let o = { o with o_refs = Ident.Map.add ref_ (cur @ [ dst ]) o.o_refs } in
    { m with m_objs = IntMap.add src o m.m_objs }

let del_ref m ~src ~ref_ ~dst =
  let o, _ = resolve_ref m src ref_ in
  let cur = match Ident.Map.find_opt ref_ o.o_refs with Some l -> l | None -> [] in
  let cur = List.filter (fun d -> d <> dst) cur in
  let o =
    if cur = [] then { o with o_refs = Ident.Map.remove ref_ o.o_refs }
    else { o with o_refs = Ident.Map.add ref_ cur o.o_refs }
  in
  { m with m_objs = IntMap.add src o m.m_objs }

let get_refs m id r =
  let o, _ = resolve_ref m id r in
  match Ident.Map.find_opt r o.o_refs with Some l -> l | None -> []

let has_ref m ~src ~ref_ ~dst = List.mem dst (get_refs m src ref_)

let fold_objects f m acc =
  IntMap.fold (fun id o acc -> f id o.o_class acc) m.m_objs acc

let fold_attr_slots f m acc =
  IntMap.fold
    (fun id o acc -> Ident.Map.fold (fun a vs acc -> f id a vs acc) o.o_attrs acc)
    m.m_objs acc

let fold_ref_edges f m acc =
  IntMap.fold
    (fun id o acc ->
      Ident.Map.fold
        (fun r dsts acc -> List.fold_left (fun acc d -> f id r d acc) acc dsts)
        o.o_refs acc)
    m.m_objs acc

let all_values m =
  fold_attr_slots
    (fun _ _ vs acc -> List.fold_left (fun acc v -> Value.Set.add v acc) acc vs)
    m Value.Set.empty

let sorted_ints l = List.sort_uniq Int.compare l

let equal_obj a b =
  Ident.equal a.o_class b.o_class
  && Ident.Map.equal (List.equal Value.equal) a.o_attrs b.o_attrs
  && Ident.Map.equal
       (fun x y -> sorted_ints x = sorted_ints y)
       (Ident.Map.filter (fun _ l -> l <> []) a.o_refs)
       (Ident.Map.filter (fun _ l -> l <> []) b.o_refs)

let equal a b =
  Ident.equal a.m_name b.m_name
  && Ident.equal (Metamodel.name a.m_mm) (Metamodel.name b.m_mm)
  && IntMap.equal equal_obj a.m_objs b.m_objs

let pp ppf m =
  Format.fprintf ppf "@[<v 2>model %a : %a {" Ident.pp m.m_name Ident.pp
    (Metamodel.name m.m_mm);
  IntMap.iter
    (fun id o ->
      Format.fprintf ppf "@,@[<v 2>obj o%d : %a {" id Ident.pp o.o_class;
      Ident.Map.iter
        (fun a vs ->
          Format.fprintf ppf "@,%a = %s;" Ident.pp a
            (String.concat ", " (List.map Value.to_string vs)))
        o.o_attrs;
      Ident.Map.iter
        (fun r dsts ->
          if dsts <> [] then
            Format.fprintf ppf "@,%a -> %s;" Ident.pp r
              (String.concat ", " (List.map (fun d -> "o" ^ string_of_int d) dsts)))
        o.o_refs;
      Format.fprintf ppf "@]@,}")
    m.m_objs;
  Format.fprintf ppf "@]@,}"
