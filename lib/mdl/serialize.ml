(* ------------------------------------------------------------------ *)
(* Lexer                                                               *)

type token =
  | Tident of string
  | Tstring of string
  | Tint of int
  | Tpunct of string  (* { } [ ] ( ) ; , : = -> .. * extends etc. handled as idents/puncts *)
  | Teof

type lexer = {
  src : string;
  mutable pos : int;
  mutable line : int;
  mutable col : int;
  mutable tok : token;
  mutable tok_line : int;
  mutable tok_col : int;
}

exception Parse_error of string

let error lx fmt =
  Format.kasprintf
    (fun s ->
      raise
        (Parse_error (Printf.sprintf "line %d, col %d: %s" lx.tok_line lx.tok_col s)))
    fmt

let is_ident_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' || c = '$'

let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

let peek_char lx = if lx.pos < String.length lx.src then Some lx.src.[lx.pos] else None

let advance_char lx =
  (match peek_char lx with
  | Some '\n' ->
    lx.line <- lx.line + 1;
    lx.col <- 1
  | Some _ -> lx.col <- lx.col + 1
  | None -> ());
  lx.pos <- lx.pos + 1

let rec skip_ws lx =
  match peek_char lx with
  | Some (' ' | '\t' | '\r' | '\n') ->
    advance_char lx;
    skip_ws lx
  | Some '/' when lx.pos + 1 < String.length lx.src && lx.src.[lx.pos + 1] = '/' ->
    while peek_char lx <> None && peek_char lx <> Some '\n' do
      advance_char lx
    done;
    skip_ws lx
  | Some _ | None -> ()

let lex_next lx =
  skip_ws lx;
  lx.tok_line <- lx.line;
  lx.tok_col <- lx.col;
  match peek_char lx with
  | None -> lx.tok <- Teof
  | Some c when is_ident_start c ->
    let start = lx.pos in
    while (match peek_char lx with Some c -> is_ident_char c | None -> false) do
      advance_char lx
    done;
    lx.tok <- Tident (String.sub lx.src start (lx.pos - start))
  | Some c when is_digit c ->
    let start = lx.pos in
    while (match peek_char lx with Some c -> is_digit c | None -> false) do
      advance_char lx
    done;
    lx.tok <- Tint (int_of_string (String.sub lx.src start (lx.pos - start)))
  | Some '-' when lx.pos + 1 < String.length lx.src && lx.src.[lx.pos + 1] = '>' ->
    advance_char lx;
    advance_char lx;
    lx.tok <- Tpunct "->"
  | Some '-' when lx.pos + 1 < String.length lx.src && is_digit lx.src.[lx.pos + 1] ->
    advance_char lx;
    let start = lx.pos in
    while (match peek_char lx with Some c -> is_digit c | None -> false) do
      advance_char lx
    done;
    lx.tok <- Tint (-int_of_string (String.sub lx.src start (lx.pos - start)))
  | Some '.' when lx.pos + 1 < String.length lx.src && lx.src.[lx.pos + 1] = '.' ->
    advance_char lx;
    advance_char lx;
    lx.tok <- Tpunct ".."
  | Some '"' ->
    advance_char lx;
    let buf = Buffer.create 16 in
    let rec go () =
      match peek_char lx with
      | None -> error lx "unterminated string literal"
      | Some '"' -> advance_char lx
      | Some '\\' ->
        advance_char lx;
        (match peek_char lx with
        | Some 'n' -> Buffer.add_char buf '\n'
        | Some 't' -> Buffer.add_char buf '\t'
        | Some c -> Buffer.add_char buf c
        | None -> error lx "unterminated escape");
        advance_char lx;
        go ()
      | Some c ->
        Buffer.add_char buf c;
        advance_char lx;
        go ()
    in
    go ();
    lx.tok <- Tstring (Buffer.contents buf)
  | Some c ->
    advance_char lx;
    lx.tok <- Tpunct (String.make 1 c)

let make_lexer src =
  let lx = { src; pos = 0; line = 1; col = 1; tok = Teof; tok_line = 1; tok_col = 1 } in
  lex_next lx;
  lx

let expect_punct lx p =
  match lx.tok with
  | Tpunct q when q = p -> lex_next lx
  | _ -> error lx "expected '%s'" p

let expect_kw lx kw =
  match lx.tok with
  | Tident id when id = kw -> lex_next lx
  | _ -> error lx "expected keyword '%s'" kw

let accept_punct lx p =
  match lx.tok with
  | Tpunct q when q = p ->
    lex_next lx;
    true
  | _ -> false

let accept_kw lx kw =
  match lx.tok with
  | Tident id when id = kw ->
    lex_next lx;
    true
  | _ -> false

let expect_ident lx =
  match lx.tok with
  | Tident id ->
    lex_next lx;
    id
  | _ -> error lx "expected identifier"

let expect_int lx =
  match lx.tok with
  | Tint n ->
    lex_next lx;
    n
  | _ -> error lx "expected integer"

(* ------------------------------------------------------------------ *)
(* Metamodel parsing                                                   *)

let parse_mult lx =
  if accept_punct lx "[" then begin
    let lower = expect_int lx in
    expect_punct lx "..";
    let upper =
      match lx.tok with
      | Tpunct "*" ->
        lex_next lx;
        None
      | Tint n ->
        lex_next lx;
        Some n
      | _ -> error lx "expected upper bound or '*'"
    in
    expect_punct lx "]";
    Some { Metamodel.lower; upper }
  end
  else None

let parse_prim name =
  match name with
  | "string" -> Metamodel.P_string
  | "int" -> Metamodel.P_int
  | "bool" -> Metamodel.P_bool
  | other -> Metamodel.P_enum (Ident.make other)

let parse_attribute lx =
  (* after 'attr' *)
  let name = expect_ident lx in
  expect_punct lx ":";
  let typ = parse_prim (expect_ident lx) in
  let mult = Option.value ~default:Metamodel.mult_one (parse_mult lx) in
  let key = accept_kw lx "key" in
  expect_punct lx ";";
  {
    Metamodel.attr_name = Ident.make name;
    attr_type = typ;
    attr_mult = mult;
    attr_key = key;
  }

let parse_reference lx =
  (* after 'ref' *)
  let name = expect_ident lx in
  expect_punct lx ":";
  let target = expect_ident lx in
  let mult = Option.value ~default:Metamodel.mult_many (parse_mult lx) in
  let containment = accept_kw lx "containment" in
  let opposite = if accept_kw lx "opposite" then Some (expect_ident lx) else None in
  expect_punct lx ";";
  {
    Metamodel.ref_name = Ident.make name;
    ref_target = Ident.make target;
    ref_mult = mult;
    ref_containment = containment;
    ref_opposite = Option.map Ident.make opposite;
  }

let parse_class lx ~abstract =
  (* after 'class' *)
  let name = expect_ident lx in
  let supers =
    if accept_kw lx "extends" then begin
      let rec go acc =
        let s = expect_ident lx in
        if accept_punct lx "," then go (s :: acc) else List.rev (s :: acc)
      in
      go []
    end
    else []
  in
  expect_punct lx "{";
  let attrs = ref [] and refs = ref [] in
  let rec members () =
    if accept_kw lx "attr" then begin
      attrs := parse_attribute lx :: !attrs;
      members ()
    end
    else if accept_kw lx "ref" then begin
      refs := parse_reference lx :: !refs;
      members ()
    end
    else expect_punct lx "}"
  in
  members ();
  {
    Metamodel.cls_name = Ident.make name;
    cls_abstract = abstract;
    cls_supers = List.map Ident.make supers;
    cls_attrs = List.rev !attrs;
    cls_refs = List.rev !refs;
  }

let parse_enum lx =
  (* after 'enum' *)
  let name = expect_ident lx in
  expect_punct lx "{";
  let rec go acc =
    let lit = expect_ident lx in
    if accept_punct lx "," then go (lit :: acc)
    else begin
      expect_punct lx "}";
      List.rev (lit :: acc)
    end
  in
  let literals = go [] in
  { Metamodel.enum_name = Ident.make name; enum_literals = List.map Ident.make literals }

let parse_metamodel_decl lx =
  expect_kw lx "metamodel";
  let name = expect_ident lx in
  expect_punct lx "{";
  let classes = ref [] and enums = ref [] in
  let rec decls () =
    if accept_kw lx "enum" then begin
      enums := parse_enum lx :: !enums;
      decls ()
    end
    else if accept_kw lx "class" then begin
      classes := parse_class lx ~abstract:false :: !classes;
      decls ()
    end
    else if accept_kw lx "abstract" then begin
      expect_kw lx "class";
      classes := parse_class lx ~abstract:true :: !classes;
      decls ()
    end
    else expect_punct lx "}"
  in
  decls ();
  match Metamodel.make ~name ~enums:(List.rev !enums) (List.rev !classes) with
  | Ok mm -> mm
  | Error msg -> error lx "invalid metamodel %s: %s" name msg

(* ------------------------------------------------------------------ *)
(* Model parsing                                                       *)

type pending_obj = {
  po_label : string;
  po_cls : string;
  po_attrs : (string * Value.t list) list;
  po_refs : (string * string list) list;  (* labels *)
}

let parse_value lx mm ~(cls : string) ~(attr : string) =
  match lx.tok with
  | Tstring s ->
    lex_next lx;
    Value.Str s
  | Tint n ->
    lex_next lx;
    Value.Int n
  | Tident "true" ->
    lex_next lx;
    Value.Bool true
  | Tident "false" ->
    lex_next lx;
    Value.Bool false
  | Tident lit -> (
    lex_next lx;
    (* Bare identifier: an enum literal. Validate against the declared
       attribute type so typos fail here with position information. *)
    match Metamodel.find_attribute mm (Ident.make cls) (Ident.make attr) with
    | Some { Metamodel.attr_type = Metamodel.P_enum e; _ }
      when Metamodel.has_enum_literal mm e (Ident.make lit) ->
      Value.Enum (Ident.make lit)
    | Some _ | None -> error lx "value %s not valid for attribute %s.%s" lit cls attr)
  | _ -> error lx "expected a value"

let parse_obj lx mm =
  (* after 'obj' *)
  let label = expect_ident lx in
  expect_punct lx ":";
  let cls = expect_ident lx in
  expect_punct lx "{";
  let attrs = ref [] and refs = ref [] in
  let rec slots () =
    match lx.tok with
    | Tpunct "}" ->
      lex_next lx;
      ()
    | Tident feature ->
      lex_next lx;
      if accept_punct lx "=" then begin
        let rec vals acc =
          let v = parse_value lx mm ~cls ~attr:feature in
          if accept_punct lx "," then vals (v :: acc) else List.rev (v :: acc)
        in
        let vs = vals [] in
        expect_punct lx ";";
        attrs := (feature, vs) :: !attrs
      end
      else begin
        expect_punct lx "->";
        let rec targets acc =
          let t = expect_ident lx in
          if accept_punct lx "," then targets (t :: acc) else List.rev (t :: acc)
        in
        let ts = targets [] in
        expect_punct lx ";";
        refs := (feature, ts) :: !refs
      end;
      slots ()
    | _ -> error lx "expected a slot or '}'"
  in
  slots ();
  { po_label = label; po_cls = cls; po_attrs = List.rev !attrs; po_refs = List.rev !refs }

let parse_model_decl lx (metamodels : Metamodel.t list) =
  expect_kw lx "model";
  let name = expect_ident lx in
  expect_punct lx ":";
  let mm_name = expect_ident lx in
  let mm =
    match
      List.find_opt
        (fun mm -> Ident.equal (Metamodel.name mm) (Ident.make mm_name))
        metamodels
    with
    | Some mm -> mm
    | None -> error lx "unknown metamodel %s" mm_name
  in
  expect_punct lx "{";
  let objs = ref [] in
  let rec decls () =
    if accept_kw lx "obj" then begin
      objs := parse_obj lx mm :: !objs;
      decls ()
    end
    else expect_punct lx "}"
  in
  decls ();
  let objs = List.rev !objs in
  (* First pass: create objects.  Labels of the form oN request id N
     (printer round-trip); otherwise ids are assigned in order. *)
  let requested_id label =
    if String.length label >= 2 && label.[0] = 'o' then
      int_of_string_opt (String.sub label 1 (String.length label - 1))
    else None
  in
  let model = ref (Model.empty ~name mm) in
  let env = Hashtbl.create 16 in
  List.iter
    (fun po ->
      if Hashtbl.mem env po.po_label then
        error lx "duplicate object label %s" po.po_label;
      let cls = Ident.make po.po_cls in
      try
        let id =
          match requested_id po.po_label with
          | Some id when not (Model.mem !model id) ->
            model := Model.add_object_with_id !model ~id ~cls;
            id
          | Some _ | None ->
            let m, id = Model.add_object !model ~cls in
            model := m;
            id
        in
        Hashtbl.add env po.po_label id
      with Model.Type_error msg -> error lx "%s" msg)
    objs;
  (* Second pass: slots. *)
  List.iter
    (fun po ->
      let id = Hashtbl.find env po.po_label in
      try
        List.iter
          (fun (a, vs) -> model := Model.set_attr !model id (Ident.make a) vs)
          po.po_attrs;
        List.iter
          (fun (r, targets) ->
            List.iter
              (fun tlabel ->
                match Hashtbl.find_opt env tlabel with
                | Some dst ->
                  model := Model.add_ref !model ~src:id ~ref_:(Ident.make r) ~dst
                | None -> error lx "unknown object label %s" tlabel)
              targets)
          po.po_refs
      with Model.Type_error msg -> error lx "%s" msg)
    objs;
  !model

(* ------------------------------------------------------------------ *)
(* Public API                                                          *)

let metamodel_to_string mm = Format.asprintf "%a" Metamodel.pp mm
let model_to_string m = Format.asprintf "%a" Model.pp m

let wrap f =
  try Ok (f ()) with
  | Parse_error msg -> Error msg
  | Model.Type_error msg -> Error msg

let parse_metamodel src =
  wrap (fun () ->
      let lx = make_lexer src in
      let mm = parse_metamodel_decl lx in
      (match lx.tok with Teof -> () | _ -> error lx "trailing input");
      mm)

let parse_metamodels src =
  wrap (fun () ->
      let lx = make_lexer src in
      let rec go acc =
        match lx.tok with
        | Teof -> List.rev acc
        | _ -> go (parse_metamodel_decl lx :: acc)
      in
      go [])

let parse_model mm src =
  wrap (fun () ->
      let lx = make_lexer src in
      let m = parse_model_decl lx [ mm ] in
      (match lx.tok with Teof -> () | _ -> error lx "trailing input");
      m)

let parse_models metamodels src =
  wrap (fun () ->
      let lx = make_lexer src in
      let rec go acc =
        match lx.tok with
        | Teof -> List.rev acc
        | _ -> go (parse_model_decl lx metamodels :: acc)
      in
      go [])

(* Primitive values round-trip through Value.to_string: strings as
   OCaml literals (%S), ints and bools bare, enum literals as bare
   identifiers. The inverse is what the session-snapshot format uses
   to persist a session's accumulated value universe. *)
let value_to_string = Value.to_string

let value_of_string s =
  let s = String.trim s in
  if s = "" then Error "empty value"
  else if s.[0] = '"' then
    match Scanf.sscanf s "%S%n" (fun str n -> (str, n)) with
    | str, n when n = String.length s -> Ok (Value.Str str)
    | _ -> Error (Printf.sprintf "trailing input after string literal: %s" s)
    | exception (Scanf.Scan_failure _ | Failure _ | End_of_file) ->
      Error (Printf.sprintf "malformed string literal: %s" s)
  else if s = "true" then Ok (Value.Bool true)
  else if s = "false" then Ok (Value.Bool false)
  else
    match int_of_string_opt s with
    | Some n -> Ok (Value.Int n)
    | None ->
      let ident_char i c =
        (c >= 'a' && c <= 'z')
        || (c >= 'A' && c <= 'Z')
        || c = '_'
        || (i > 0 && ((c >= '0' && c <= '9') || c = '$'))
      in
      let ok = ref (s.[0] < '0' || s.[0] > '9') in
      String.iteri (fun i c -> if not (ident_char i c) then ok := false) s;
      if !ok then Ok (Value.Enum (Ident.make s))
      else Error (Printf.sprintf "malformed value: %s" s)
