(** Atomic edit operations on models.

    Edits are the currency of the distance metric Δ (paper §3): a
    repair's cost is the weighted size of the edit script between the
    original and the repaired model. They are also used by workload
    generators to perturb consistent states into inconsistent ones. *)

type t =
  | Add_object of { id : Model.obj_id; cls : Ident.t }
  | Delete_object of { id : Model.obj_id }
  | Set_attr of {
      id : Model.obj_id;
      attr : Ident.t;
      before : Value.t list;
      after : Value.t list;
    }
  | Add_ref of { src : Model.obj_id; ref_ : Ident.t; dst : Model.obj_id }
  | Del_ref of { src : Model.obj_id; ref_ : Ident.t; dst : Model.obj_id }

val pp : Format.formatter -> t -> unit

val apply : Model.t -> t -> (Model.t, string) result
(** Apply one edit; [Error] on edits that do not fit the model (e.g.
    deleting a missing object). [Set_attr]'s [before] field is not
    required to match the current slot — it exists so scripts are
    invertible. *)

val apply_script : Model.t -> t list -> (Model.t, string) result
(** Apply edits left to right, stopping at the first failure. *)

val invert : t -> t
(** The edit undoing this one. [invert (Add_object ...)] is a bare
    [Delete_object]; inverting a script of an object deletion that had
    populated slots requires the full script produced by {!Diff}. *)

val invert_script : t list -> t list
(** Inverse script (reversed order, each edit inverted). *)
