exception Cancelled

type token = {
  flag : bool Atomic.t;
  tmu : Mutex.t;
  mutable hooks : (unit -> unit) list;
  mutable fired : bool;
}

let make_token () =
  { flag = Atomic.make false; tmu = Mutex.create (); hooks = []; fired = false }

let cancelled tok = Atomic.get tok.flag

let run_hooks tok =
  let hooks =
    Mutex.lock tok.tmu;
    if tok.fired then (
      Mutex.unlock tok.tmu;
      [])
    else begin
      tok.fired <- true;
      let hs = tok.hooks in
      tok.hooks <- [];
      Mutex.unlock tok.tmu;
      hs
    end
  in
  List.iter (fun h -> try h () with _ -> ()) hooks

let cancel_token tok =
  Atomic.set tok.flag true;
  run_hooks tok

let on_cancel tok hook =
  Mutex.lock tok.tmu;
  if tok.fired then (
    Mutex.unlock tok.tmu;
    (try hook () with _ -> ()))
  else begin
    tok.hooks <- hook :: tok.hooks;
    Mutex.unlock tok.tmu
  end

type 'a state = Pending | Done of 'a | Failed of exn

type 'a future = {
  fmu : Mutex.t;
  fcond : Condition.t;
  mutable st : 'a state;
  ftok : token;
}

let resolve fut st =
  Mutex.lock fut.fmu;
  (match fut.st with
  | Pending -> fut.st <- st
  | Done _ | Failed _ -> ());
  Condition.broadcast fut.fcond;
  Mutex.unlock fut.fmu

let result fut =
  Mutex.lock fut.fmu;
  let rec wait () =
    match fut.st with
    | Pending ->
      Condition.wait fut.fcond fut.fmu;
      wait ()
    | Done v -> Ok v
    | Failed e -> Error e
  in
  let r = wait () in
  Mutex.unlock fut.fmu;
  r

let await fut = match result fut with Ok v -> v | Error e -> raise e

let cancel fut = cancel_token fut.ftok

(* Each task carries the trace context of its submitter so spans opened
   inside the task attach to the submitting span even though they run
   (and render) on the worker's own domain track. *)
type task = Task : (token -> 'a) * 'a future * Obs.Trace.context -> task

type t = {
  njobs : int;
  mu : Mutex.t;
  nonempty : Condition.t;
  queue : task Queue.t;
  mutable closed : bool;
  mutable domains : unit Domain.t list;
}

let default_jobs () = Domain.recommended_domain_count ()
let jobs t = t.njobs

(* Worker domains mark themselves so the layers above can detect a
   nested parallel region: an enforcement call issued from inside a
   pool task (a portfolio lane, a ladder probe) must not fan out again
   — the extra domains would only oversubscribe the cores the outer
   region already owns, and nested blocking waits on the same global
   pool can stall behind their own parent. *)
let worker_flag = Domain.DLS.new_key (fun () -> false)
let in_worker () = Domain.DLS.get worker_flag

let run_task (Task (fn, fut, ctx)) =
  if cancelled fut.ftok then resolve fut (Failed Cancelled)
  else
    match Obs.Trace.with_context ctx (fun () -> fn fut.ftok) with
    | v -> resolve fut (Done v)
    | exception e -> resolve fut (Failed e)

let worker t =
  let rec loop () =
    Mutex.lock t.mu;
    let rec next () =
      if not (Queue.is_empty t.queue) then Some (Queue.pop t.queue)
      else if t.closed then None
      else begin
        Condition.wait t.nonempty t.mu;
        next ()
      end
    in
    let task = next () in
    Mutex.unlock t.mu;
    match task with
    | Some task ->
      run_task task;
      loop ()
    | None -> ()
  in
  loop ()

let create ~jobs =
  if jobs < 1 then invalid_arg "Pool.create: jobs must be >= 1";
  let t =
    {
      njobs = jobs;
      mu = Mutex.create ();
      nonempty = Condition.create ();
      queue = Queue.create ();
      closed = false;
      domains = [];
    }
  in
  if jobs > 1 then
    t.domains <-
      List.init jobs (fun _ ->
          Domain.spawn (fun () ->
              Domain.DLS.set worker_flag true;
              worker t));
  t

let submit t fn =
  let fut =
    { fmu = Mutex.create (); fcond = Condition.create (); st = Pending; ftok = make_token () }
  in
  let ctx = Obs.Trace.current () in
  if t.njobs = 1 then begin
    if t.closed then invalid_arg "Pool.submit: pool is shut down";
    run_task (Task (fn, fut, ctx))
  end
  else begin
    Mutex.lock t.mu;
    if t.closed then begin
      Mutex.unlock t.mu;
      invalid_arg "Pool.submit: pool is shut down"
    end;
    Queue.push (Task (fn, fut, ctx)) t.queue;
    Condition.signal t.nonempty;
    Mutex.unlock t.mu
  end;
  fut

let map_list t fn xs =
  let futs = List.map (fun x -> submit t (fun tok -> fn tok x)) xs in
  let results = List.map result futs in
  List.map (function Ok v -> v | Error e -> raise e) results

let shutdown t =
  Mutex.lock t.mu;
  let ds = t.domains in
  t.closed <- true;
  t.domains <- [];
  Condition.broadcast t.nonempty;
  Mutex.unlock t.mu;
  List.iter Domain.join ds

let with_pool ~jobs fn =
  let t = create ~jobs in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> fn t)

(* Process-global pool, grown on demand and reused across enforcement
   calls so repeated [Repair.run ~jobs] invocations don't each pay a
   domain spawn. Guarded by a mutex: concurrent growers are rare and
   cheap to serialise. *)
let global_mu = Mutex.create ()
let global_pool = ref None
let exit_hooked = ref false

let global ~jobs =
  if jobs < 1 then invalid_arg "Pool.global: jobs must be >= 1";
  Mutex.lock global_mu;
  let pool =
    match !global_pool with
    | Some p when p.njobs >= jobs -> p
    | prev ->
      (match prev with Some p -> shutdown p | None -> ());
      let p = create ~jobs in
      global_pool := Some p;
      if not !exit_hooked then begin
        exit_hooked := true;
        at_exit (fun () ->
            Mutex.lock global_mu;
            let p = !global_pool in
            global_pool := None;
            Mutex.unlock global_mu;
            match p with Some p -> shutdown p | None -> ())
      end;
      p
  in
  Mutex.unlock global_mu;
  pool
