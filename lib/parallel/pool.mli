(** A dependency-free domain pool: worker domains pulling thunks from a
    shared queue, with futures and cooperative cancellation.

    The pool is the multicore substrate of the enforcement engine
    ({!Echo.Repair} speculative distance probing, {!Echo.Engine}
    backend portfolio) but carries no knowledge of any layer above it;
    any subsystem can submit work.

    Cancellation is cooperative: cancelling a future flips its token
    and runs the callbacks registered with {!on_cancel} (e.g.
    [Sat.Solver.interrupt] on the solver a task is driving). A task
    that never checks its token simply runs to completion and the
    cancelled future still resolves. *)

type t
(** A pool of worker domains. *)

type token
(** Per-task cancellation token, passed to every submitted task. *)

type 'a future
(** Handle on a submitted task's eventual result. *)

exception Cancelled
(** Raised by {!await} when the task was cancelled before (or instead
    of) producing a result. *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()] — the hardware parallelism
    available to a pool. This is also the job count [--jobs 0]/auto
    resolves to in the CLI. *)

val in_worker : unit -> bool
(** [true] iff the calling domain is a pool worker (any pool). Layers
    that fan out ({!Echo.Repair}, {!Echo.Engine}) consult this to
    degrade nested parallel regions to their serial path instead of
    oversubscribing cores already owned by the enclosing region —
    e.g. an [enforce ~jobs:4] issued from inside a portfolio lane
    runs its ladder serially. Tasks run inline by a [jobs = 1] pool
    execute on the submitting domain and are not marked. *)

val create : jobs:int -> t
(** A pool with exactly [jobs] worker domains ([jobs >= 1]).
    With [jobs = 1] no domain is spawned: tasks run inline at
    {!submit} time on the calling domain (deterministic, zero
    overhead), which keeps [jobs = 1] paths identical to serial
    code. Raises [Invalid_argument] on [jobs < 1]. *)

val jobs : t -> int
(** Worker count the pool was created with. *)

val global : jobs:int -> t
(** A process-global pool with at least [jobs] workers, created (or
    grown, replacing the previous idle pool) on demand and reused
    across calls — callers that enforce repeatedly must not pay a
    domain spawn per call. The returned pool must not be
    {!shutdown} by the caller; it is drained at process exit. *)

val submit : t -> (token -> 'a) -> 'a future
(** Enqueue a task. The task receives its cancellation token and
    should poll {!cancelled} (or register {!on_cancel} hooks) at
    natural preemption points. Raises [Invalid_argument] on a pool
    that has been shut down.

    The submitter's {!Obs.Trace.current} context is captured here and
    installed around the task ({!Obs.Trace.with_context}), so spans the
    task opens attach to the submitting span while rendering on the
    worker domain's own trace track. *)

val await : 'a future -> 'a
(** Block until the task resolves; re-raises the task's exception
    ({!Cancelled} if it was cancelled before completing). *)

val result : 'a future -> ('a, exn) result
(** Like {!await} without re-raising. *)

val cancel : 'a future -> unit
(** Flip the future's token and run its {!on_cancel} hooks. The task
    itself decides when to stop; a task that has not started yet is
    dropped ({!await} raises {!Cancelled}). Idempotent. *)

val cancelled : token -> bool
(** Poll a token (cheap — one atomic load). *)

val on_cancel : token -> (unit -> unit) -> unit
(** Register a hook run exactly once when the token is cancelled
    (immediately, if it already is). Hooks must be fast, non-blocking
    and exception-free: they run on the cancelling domain. *)

val map_list : t -> (token -> 'a -> 'b) -> 'a list -> 'b list
(** Submit one task per element, await them all in order. If any task
    raised, every task is still awaited (no work leaks into the
    background), then the first exception (in list order) is
    re-raised. *)

val shutdown : t -> unit
(** Drain the queue, stop and join the workers. Idempotent. Only for
    pools obtained from {!create}; the {!global} pool shuts down at
    exit. *)

val with_pool : jobs:int -> (t -> 'a) -> 'a
(** [create], run, [shutdown] (also on exception). *)
