(* Negation normal form with algebraic simplification, memoized per
   hash-consed node: the work runs once per distinct (node, polarity)
   pair of a store, not once per occurrence. The Ast-level entry
   points wrap a throwaway store; long-lived translation contexts
   (Translate.t) call the hc-level entry points against their own
   store so repeated lowerings of shared subtrees are free. *)

module H = Hc

let is_empty (e : H.expr) = e.H.e_view = H.None_

let rec hc_expr st (e : H.expr) : H.expr =
  match Hashtbl.find_opt (H.simp_expr_memo st) e.H.e_id with
  | Some r -> r
  | None ->
    let r = hc_expr_view st e in
    Hashtbl.replace (H.simp_expr_memo st) e.H.e_id r;
    r

and hc_expr_view st (e : H.expr) : H.expr =
  match e.H.e_view with
  | H.Rel _ | H.Var _ | H.Atom _ | H.Univ | H.Iden | H.None_ -> e
  | H.Union (a, b) ->
    let a' = hc_expr st a and b' = hc_expr st b in
    if is_empty a' then b'
    else if is_empty b' then a'
    else if a' == b' then a'
    else H.union st a' b'
  | H.Inter (a, b) ->
    let a' = hc_expr st a and b' = hc_expr st b in
    if is_empty a' || is_empty b' then H.none st
    else if a' == b' then a'
    else H.inter st a' b'
  | H.Diff (a, b) ->
    let a' = hc_expr st a and b' = hc_expr st b in
    if is_empty a' then H.none st
    else if is_empty b' then a'
    else if a' == b' then H.none st
    else H.diff st a' b'
  | H.Join (a, b) ->
    let a' = hc_expr st a and b' = hc_expr st b in
    if is_empty a' || is_empty b' then H.none st else H.join st a' b'
  | H.Product (a, b) ->
    let a' = hc_expr st a and b' = hc_expr st b in
    if is_empty a' || is_empty b' then H.none st else H.product st a' b'
  | H.Transpose a -> (
    let a' = hc_expr st a in
    match a'.H.e_view with
    | H.None_ -> H.none st
    | H.Transpose a'' -> a''
    | H.Iden -> H.iden st
    | _ -> H.transpose st a')
  | H.Closure a ->
    let a' = hc_expr st a in
    if is_empty a' then H.none st else H.closure st a'
  | H.RClosure a -> H.rclosure st (hc_expr st a)

(* [go pos f]: simplified NNF of [f] under polarity [pos]. *)
let bool_f st b = if b then H.true_ st else H.false_ st
let atom_f st pos a = if pos then a else H.not_ st a

let rec go st pos (f : H.formula) : H.formula =
  match Hashtbl.find_opt (H.simp_formula_memo st) (f.H.f_id, pos) with
  | Some r -> r
  | None ->
    let r = go_view st pos f in
    Hashtbl.replace (H.simp_formula_memo st) (f.H.f_id, pos) r;
    r

and go_view st pos (f : H.formula) : H.formula =
  match f.H.f_view with
  | H.True -> bool_f st pos
  | H.False -> bool_f st (not pos)
  | H.Not g -> go st (not pos) g
  | H.And fs ->
    let fs' = List.map (go st pos) fs in
    if pos then H.conj st fs' else H.disj st fs'
  | H.Or fs ->
    let fs' = List.map (go st pos) fs in
    if pos then H.disj st fs' else H.conj st fs'
  | H.Implies (a, b) ->
    if pos then H.disj st [ go st false a; go st true b ]
    else H.conj st [ go st true a; go st false b ]
  | H.Iff (a, b) ->
    (* (a ∧ b) ∨ (¬a ∧ ¬b), negated: (a ∧ ¬b) ∨ (¬a ∧ b) *)
    if pos then
      H.disj st
        [
          H.conj st [ go st true a; go st true b ];
          H.conj st [ go st false a; go st false b ];
        ]
    else
      H.disj st
        [
          H.conj st [ go st true a; go st false b ];
          H.conj st [ go st false a; go st true b ];
        ]
  | H.Forall (decls, body) -> quantifier st ~universal:pos pos decls body
  | H.Exists (decls, body) -> quantifier st ~universal:(not pos) pos decls body
  | H.Subset (a, b) -> atom_f st pos (H.subset st (hc_expr st a) (hc_expr st b))
  | H.Equal (a, b) ->
    let a' = hc_expr st a and b' = hc_expr st b in
    if a' == b' then bool_f st pos else atom_f st pos (H.equal st a' b')
  | H.Some_ a -> (
    let a' = hc_expr st a in
    match a'.H.e_view with
    | H.None_ -> bool_f st (not pos)
    | H.Univ | H.Iden | H.Atom _ | H.Var _ -> bool_f st pos
    | _ -> atom_f st pos (H.some st a'))
  | H.No a -> (
    let a' = hc_expr st a in
    match a'.H.e_view with
    | H.None_ -> bool_f st pos
    | H.Atom _ | H.Var _ -> bool_f st (not pos)
    | _ -> atom_f st pos (H.no st a'))
  | H.Lone a -> (
    let a' = hc_expr st a in
    match a'.H.e_view with
    | H.None_ | H.Atom _ | H.Var _ -> bool_f st pos
    | _ -> atom_f st pos (H.lone st a'))
  | H.One a -> (
    let a' = hc_expr st a in
    match a'.H.e_view with
    | H.Atom _ | H.Var _ -> bool_f st pos
    | H.None_ -> bool_f st (not pos)
    | _ -> atom_f st pos (H.one st a'))

and quantifier st ~universal pos decls body =
  (* Simplify domains; a syntactically empty domain decides the
     quantifier. Note [pos] has already been folded into the
     constructor choice: [universal] tells which quantifier we are
     emitting, and [body] must be simplified under [pos]. *)
  let decls' = List.map (fun (v, d) -> (v, hc_expr st d)) decls in
  if List.exists (fun (_, d) -> is_empty d) decls' then bool_f st universal
  else
    let body' = go st pos body in
    match body'.H.f_view with
    | H.True ->
      (* ∃ xs | true is not trivially true — the domains must be
         non-empty. Keep the quantifier with the trivial body. *)
      if universal then H.true_ st else H.exists st decls' (H.true_ st)
    | H.False ->
      (* ∀ xs | false is "all domains empty"; keep the quantifier. *)
      if universal then H.forall st decls' (H.false_ st) else H.false_ st
    | _ -> if universal then H.forall st decls' body' else H.exists st decls' body'

let hc_formula st f = go st true f

(* Ast-level entry points: a throwaway store per call keeps the
   historical interface (and output) while sharing work across
   repeated subtrees within the one formula. *)
let formula f =
  let st = H.store () in
  H.to_ast (hc_formula st (H.of_ast st f))

let expr e =
  let st = H.store () in
  H.expr_to_ast (hc_expr st (H.expr_of_ast st e))

let rec size (f : Ast.formula) =
  match f with
  | Ast.True | Ast.False | Ast.Subset _ | Ast.Equal _ | Ast.Some_ _ | Ast.No _
  | Ast.Lone _ | Ast.One _ -> 1
  | Ast.Not g -> 1 + size g
  | Ast.And fs | Ast.Or fs -> List.fold_left (fun acc g -> acc + size g) 1 fs
  | Ast.Implies (a, b) | Ast.Iff (a, b) -> 1 + size a + size b
  | Ast.Forall (_, g) | Ast.Exists (_, g) -> 1 + size g
