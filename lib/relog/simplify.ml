(* Negation normal form with algebraic simplification. *)

let is_empty_expr (e : Ast.expr) = e = Ast.None_

let rec expr (e : Ast.expr) : Ast.expr =
  match e with
  | Ast.Rel _ | Ast.Var _ | Ast.Atom _ | Ast.Univ | Ast.Iden | Ast.None_ -> e
  | Ast.Union (a, b) -> (
    match (expr a, expr b) with
    | Ast.None_, b' -> b'
    | a', Ast.None_ -> a'
    | a', b' -> if a' = b' then a' else Ast.Union (a', b'))
  | Ast.Inter (a, b) -> (
    match (expr a, expr b) with
    | Ast.None_, _ | _, Ast.None_ -> Ast.None_
    | a', b' -> if a' = b' then a' else Ast.Inter (a', b'))
  | Ast.Diff (a, b) -> (
    match (expr a, expr b) with
    | Ast.None_, _ -> Ast.None_
    | a', Ast.None_ -> a'
    | a', b' -> if a' = b' then Ast.None_ else Ast.Diff (a', b'))
  | Ast.Join (a, b) -> (
    match (expr a, expr b) with
    | Ast.None_, _ | _, Ast.None_ -> Ast.None_
    | a', b' -> Ast.Join (a', b'))
  | Ast.Product (a, b) -> (
    match (expr a, expr b) with
    | Ast.None_, _ | _, Ast.None_ -> Ast.None_
    | a', b' -> Ast.Product (a', b'))
  | Ast.Transpose a -> (
    match expr a with
    | Ast.None_ -> Ast.None_
    | Ast.Transpose a' -> a'
    | Ast.Iden -> Ast.Iden
    | a' -> Ast.Transpose a')
  | Ast.Closure a -> (
    match expr a with
    | Ast.None_ -> Ast.None_
    | a' -> Ast.Closure a')
  | Ast.RClosure a -> Ast.RClosure (expr a)

(* [go pos f]: simplified NNF of [f] under polarity [pos]. *)
let rec go pos (f : Ast.formula) : Ast.formula =
  match f with
  | Ast.True -> if pos then Ast.True else Ast.False
  | Ast.False -> if pos then Ast.False else Ast.True
  | Ast.Not g -> go (not pos) g
  | Ast.And fs ->
    let fs' = List.map (go pos) fs in
    if pos then Ast.conj fs' else Ast.disj fs'
  | Ast.Or fs ->
    let fs' = List.map (go pos) fs in
    if pos then Ast.disj fs' else Ast.conj fs'
  | Ast.Implies (a, b) ->
    if pos then Ast.disj [ go false a; go true b ]
    else Ast.conj [ go true a; go false b ]
  | Ast.Iff (a, b) ->
    (* (a ∧ b) ∨ (¬a ∧ ¬b), negated: (a ∧ ¬b) ∨ (¬a ∧ b) *)
    if pos then
      Ast.disj
        [ Ast.conj [ go true a; go true b ]; Ast.conj [ go false a; go false b ] ]
    else
      Ast.disj
        [ Ast.conj [ go true a; go false b ]; Ast.conj [ go false a; go true b ] ]
  | Ast.Forall (decls, body) -> quantifier ~universal:pos pos decls body
  | Ast.Exists (decls, body) -> quantifier ~universal:(not pos) pos decls body
  | Ast.Subset (a, b) -> atom pos (Ast.Subset (expr a, expr b))
  | Ast.Equal (a, b) ->
    let a' = expr a and b' = expr b in
    if a' = b' then go pos Ast.True else atom pos (Ast.Equal (a', b'))
  | Ast.Some_ a -> (
    match expr a with
    | Ast.None_ -> go pos Ast.False
    | Ast.Univ | Ast.Iden | Ast.Atom _ | Ast.Var _ -> go pos Ast.True
    | a' -> atom pos (Ast.Some_ a'))
  | Ast.No a -> (
    match expr a with
    | Ast.None_ -> go pos Ast.True
    | Ast.Atom _ | Ast.Var _ -> go pos Ast.False
    | a' -> atom pos (Ast.No a'))
  | Ast.Lone a -> (
    match expr a with
    | Ast.None_ | Ast.Atom _ | Ast.Var _ -> go pos Ast.True
    | a' -> atom pos (Ast.Lone a'))
  | Ast.One a -> (
    match expr a with
    | Ast.Atom _ | Ast.Var _ -> go pos Ast.True
    | Ast.None_ -> go pos Ast.False
    | a' -> atom pos (Ast.One a'))

and atom pos a = if pos then a else Ast.Not a

and quantifier ~universal pos decls body =
  (* Simplify domains; a syntactically empty domain decides the
     quantifier. Note [pos] has already been folded into the
     constructor choice: [universal] tells which quantifier we are
     emitting, and [body] must be simplified under [pos]. *)
  let decls' = List.map (fun (v, d) -> (v, expr d)) decls in
  if List.exists (fun (_, d) -> is_empty_expr d) decls' then
    if universal then Ast.True else Ast.False
  else
    let body' = go pos body in
    match body' with
    | Ast.True -> if universal then Ast.True else Ast.Exists (decls', nonempty_witness decls')
    | Ast.False -> if universal then forall_vacuous decls' else Ast.False
    | _ -> if universal then Ast.Forall (decls', body') else Ast.Exists (decls', body')

(* ∃ xs | true is not trivially true — the domains must be non-empty.
   Keep the quantifier but with the trivial body. *)
and nonempty_witness _decls = Ast.True

(* ∀ xs | false is "all domains empty"; keep the quantifier. *)
and forall_vacuous decls = Ast.Forall (decls, Ast.False)

let formula f = go true f

let rec size (f : Ast.formula) =
  match f with
  | Ast.True | Ast.False | Ast.Subset _ | Ast.Equal _ | Ast.Some_ _ | Ast.No _
  | Ast.Lone _ | Ast.One _ -> 1
  | Ast.Not g -> 1 + size g
  | Ast.And fs | Ast.Or fs -> List.fold_left (fun acc g -> acc + size g) 1 fs
  | Ast.Implies (a, b) | Ast.Iff (a, b) -> 1 + size a + size b
  | Ast.Forall (_, g) | Ast.Exists (_, g) -> 1 + size g
