(** Relational expressions and first-order formulas — the logic the
    QVT-R checking semantics compiles into (the role of Alloy's core
    language in Echo).

    Expressions denote relations (sets of equal-arity tuples) over a
    universe of atoms; formulas are first-order with quantifiers
    ranging over unary expressions. Free relation names are resolved
    against an instance (for evaluation) or against bounds (for model
    finding). *)

type expr =
  | Rel of Mdl.Ident.t  (** free relation, by name *)
  | Var of Mdl.Ident.t  (** bound variable: a singleton unary relation *)
  | Atom of Mdl.Ident.t  (** constant singleton unary relation *)
  | Univ  (** every atom (unary) *)
  | Iden  (** identity (binary) *)
  | None_  (** the empty unary relation *)
  | Union of expr * expr
  | Inter of expr * expr
  | Diff of expr * expr
  | Join of expr * expr  (** relational dot-join *)
  | Product of expr * expr
  | Transpose of expr  (** binary only *)
  | Closure of expr  (** transitive closure, binary only *)
  | RClosure of expr  (** reflexive-transitive closure *)

type formula =
  | True
  | False
  | Subset of expr * expr
  | Equal of expr * expr
  | Some_ of expr  (** non-empty *)
  | No of expr  (** empty *)
  | Lone of expr  (** at most one tuple *)
  | One of expr  (** exactly one tuple *)
  | Not of formula
  | And of formula list
  | Or of formula list
  | Implies of formula * formula
  | Iff of formula * formula
  | Forall of (Mdl.Ident.t * expr) list * formula
      (** [Forall [(x, d); ...] f]: each variable ranges over the unary
          expression [d]; later domains may mention earlier variables. *)
  | Exists of (Mdl.Ident.t * expr) list * formula

(** Convenience constructors with light simplification. *)

val rel : string -> expr
val var : string -> expr
val atom : string -> expr
val join : expr -> expr -> expr
val dot : expr -> expr -> expr
(** [dot x r] = [join x r] — OCL-style navigation [x.r]. *)

val conj : formula list -> formula
val disj : formula list -> formula
val implies : formula -> formula -> formula
val not_ : formula -> formula
val in_ : expr -> expr -> formula
(** Membership/subset. *)

val eq : expr -> expr -> formula
val forall : (string * expr) list -> formula -> formula
val exists : (string * expr) list -> formula -> formula

val expr_arity : (Mdl.Ident.t -> int option) -> expr -> (int, string) result
(** Arity-check an expression given the arity of free relations;
    [Error] describes the first ill-formed subterm (arity mismatch in
    set operations, transpose/closure of non-binary, join of
    nullaries). Variables and atoms are unary. *)

val free_rels : formula -> Mdl.Ident.Set.t
(** Free relation names of a formula. *)

val free_atoms : formula -> Mdl.Ident.Set.t
(** Atom constants mentioned by a formula. The symmetry pass must fix
    these: a formula naming an atom distinguishes it from the rest of
    its orbit, so permuting it is not a model automorphism. *)

val free_vars_expr : expr -> Mdl.Ident.Set.t
val free_vars : formula -> Mdl.Ident.Set.t
(** Variables not bound by a quantifier. *)

val pp_expr : Format.formatter -> expr -> unit
val pp : Format.formatter -> formula -> unit
