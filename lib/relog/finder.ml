(* Active symmetry-breaking state: the caller's extra fixed atoms and
   respected tuplesets (so a rebind can re-run the analysis), plus the
   guard literal the current SBP clauses hang off. *)
type sbp_state = {
  mutable sbp_guard : Sat.Lit.t;
  sbp_fixed : Mdl.Ident.Set.t;
  sbp_respect : Rel.Tupleset.t list;
}

type t = {
  trans : Translate.t;
  mutable last : (Sat.Lit.var * bool) list option;
      (* primary assignment of the last model, for blocking *)
  mutable last_assumed : Sat.Lit.t list;
      (* assumptions of the last solve, for assumption-aware blocking *)
  mutable fixed_atoms : Mdl.Ident.Set.t;
      (* atoms named by any formula seen by this finder: never permutable *)
  mutable sbp : sbp_state option;
  (* telemetry *)
  solve_span : Sat.Telemetry.span;
  mutable n_sat : int;
  mutable n_unsat : int;
  mutable n_blocked : int;
}

let make trans =
  {
    trans;
    last = None;
    last_assumed = [];
    fixed_atoms = Mdl.Ident.Set.empty;
    sbp = None;
    solve_span = Sat.Telemetry.span ();
    n_sat = 0;
    n_unsat = 0;
    n_blocked = 0;
  }

let solver t = Translate.solver t.trans

(* (Re-)run the symmetry analysis on the current bounds and assert the
   lex-leader predicates under a fresh guard literal. Clauses from any
   earlier emission stay in the solver but are inert once their guard
   stops being assumed. Returns the number of clauses emitted. *)
let emit_sbp t st =
  let fixed = Mdl.Ident.Set.union t.fixed_atoms st.sbp_fixed in
  let orbs =
    Symmetry.orbits ~fixed ~respect:st.sbp_respect (Translate.bounds t.trans)
  in
  let g = Sat.Lit.pos (Sat.Solver.new_var (solver t)) in
  st.sbp_guard <- g;
  Symmetry.break ~guard:g t.trans orbs

(* Every formula routed through the finder contributes its named atoms
   to the fixed set. If SBPs are already asserted and the formula
   names an atom they were allowed to permute, they are stale — the
   formula can now distinguish atoms within an orbit — so re-emit
   under a fresh guard. *)
let note_formula t f =
  let atoms = Ast.free_atoms f in
  if not (Mdl.Ident.Set.subset atoms t.fixed_atoms) then begin
    t.fixed_atoms <- Mdl.Ident.Set.union t.fixed_atoms atoms;
    Option.iter (fun st -> ignore (emit_sbp t st)) t.sbp
  end

let prepare bnds formulas =
  let trans = Translate.create bnds in
  List.iter (Translate.materialize trans) (Bounds.relations bnds);
  List.iter (Translate.assert_formula trans) formulas;
  let t = make trans in
  List.iter (note_formula t) formulas;
  t

let prepare_guarded bnds formulas =
  let trans = Translate.create bnds in
  List.iter (Translate.materialize trans) (Bounds.relations bnds);
  let guards = List.map (Translate.formula_lit trans) formulas in
  let t = make trans in
  List.iter (note_formula t) formulas;
  (t, guards)

let create bnds =
  let trans = Translate.create bnds in
  List.iter (Translate.materialize trans) (Bounds.relations bnds);
  make trans

let guard t f =
  note_formula t f;
  Translate.formula_lit t.trans f

let assert_formula t f =
  note_formula t f;
  Translate.assert_formula t.trans f

let add_symmetry ?(fixed = Mdl.Ident.Set.empty) ?(respect = []) t =
  let st =
    { sbp_guard = Sat.Lit.pos 0; sbp_fixed = fixed; sbp_respect = respect }
  in
  let n = emit_sbp t st in
  t.sbp <- Some st;
  n

let sbp_assumptions t =
  match t.sbp with None -> [] | Some st -> [ st.sbp_guard ]

let rebind t bnds =
  let changed = Translate.rebind t.trans bnds in
  List.iter (Translate.materialize t.trans) (Bounds.relations bnds);
  t.last <- None;
  t.last_assumed <- [];
  (* Changed bounds change the orbits; stale SBPs are retired by
     abandoning their guard and re-emitted for the new bounds. *)
  if changed > 0 then Option.iter (fun st -> ignore (emit_sbp t st)) t.sbp;
  changed

let translation t = t.trans
let clone_solver t = Sat.Solver.clone (solver t)
let interrupt t = Sat.Solver.interrupt (solver t)
let decode_with t value_of = Translate.decode_with t.trans value_of

type outcome =
  | Sat of Instance.t
  | Unsat

let solve ?(assumptions = []) t =
  (* The SBP guard goes first: a stable assumption prefix across
     solves preserves the solver's trail-reuse fast path. *)
  let assumptions = sbp_assumptions t @ assumptions in
  t.last_assumed <- assumptions;
  match
    Sat.Telemetry.timed t.solve_span (fun () ->
        Sat.Solver.solve ~assumptions (solver t))
  with
  | Sat.Solver.Unsat ->
    t.last <- None;
    t.n_unsat <- t.n_unsat + 1;
    Unsat
  | Sat.Solver.Sat ->
    let assignment =
      Translate.fold_primaries t.trans
        (fun _ _ v acc -> (v, Sat.Solver.value (solver t) v) :: acc)
        []
    in
    t.last <- Some assignment;
    t.n_sat <- t.n_sat + 1;
    Sat (Translate.decode t.trans)

let new_scope t = Sat.Lit.pos (Sat.Solver.new_var (solver t))

(* Blocking after [solve ~assumptions] needs care with primaries the
   assumptions pinned. The plain block repeats their (negated) values,
   which bakes the assumption context into the clause: sound, because
   the clause is inert (trivially satisfied) under any assumption set
   that differs on a pinned primary — but the clause then blocks
   nothing outside its birth context either, and each one permanently
   drags the whole context along. Simply dropping the pinned literals
   instead would be unsound: the remaining clause would exclude the
   unpinned part of the instance under {e every} future assumption
   set, not just the one it was found under.

   A [~scope] literal resolves this: the clause mentions only the
   primaries the solver actually chose — assumption literals are never
   baked into the block — plus [¬scope], so the block is active
   exactly in solves that assume [scope]. Callers enumerate under an
   assumption context by pairing it with one scope literal; switching
   contexts (and scopes) retracts every block of the old context, so
   enumerations under different assumption sets stay independent. *)
let block ?scope t =
  match t.last with
  | None -> ()
  | Some assignment ->
    let clause =
      match scope with
      | None ->
        List.map
          (fun (v, value) -> if value then Sat.Lit.neg_of v else Sat.Lit.pos v)
          assignment
      | Some g ->
        let assumed = Hashtbl.create 16 in
        List.iter
          (fun l -> Hashtbl.replace assumed (Sat.Lit.var l) ())
          t.last_assumed;
        Sat.Lit.neg g
        :: List.filter_map
             (fun (v, value) ->
               if Hashtbl.mem assumed v then None
               else Some (if value then Sat.Lit.neg_of v else Sat.Lit.pos v))
             assignment
    in
    Sat.Solver.add_clause (solver t) clause;
    t.n_blocked <- t.n_blocked + 1;
    t.last <- None

let enumerate ?limit t =
  let rec go acc n =
    match limit with
    | Some l when n >= l -> List.rev acc
    | _ -> (
      match solve t with
      | Unsat -> List.rev acc
      | Sat inst ->
        block t;
        go (inst :: acc) (n + 1))
  in
  go [] 0

let count ?limit t = List.length (enumerate ?limit t)

type stats = {
  translation : Translate.stats;
  solver : Sat.Solver.stats;
  solves : int;
  sat : int;
  unsat : int;
  blocked : int;
  solve_time : float;
}

let stats t =
  {
    translation = Translate.stats t.trans;
    solver = Sat.Solver.stats (solver t);
    solves = t.n_sat + t.n_unsat;
    sat = t.n_sat;
    unsat = t.n_unsat;
    blocked = t.n_blocked;
    solve_time = Sat.Telemetry.seconds t.solve_span;
  }
