type t = {
  trans : Translate.t;
  mutable last : (Sat.Lit.var * bool) list option;
      (* primary assignment of the last model, for blocking *)
}

let prepare bnds formulas =
  let trans = Translate.create bnds in
  List.iter (Translate.materialize trans) (Bounds.relations bnds);
  List.iter (Translate.assert_formula trans) formulas;
  { trans; last = None }

let translation t = t.trans
let solver t = Translate.solver t.trans

type outcome =
  | Sat of Instance.t
  | Unsat

let solve ?(assumptions = []) t =
  match Sat.Solver.solve ~assumptions (solver t) with
  | Sat.Solver.Unsat ->
    t.last <- None;
    Unsat
  | Sat.Solver.Sat ->
    let assignment =
      Translate.fold_primaries t.trans
        (fun _ _ v acc -> (v, Sat.Solver.value (solver t) v) :: acc)
        []
    in
    t.last <- Some assignment;
    Sat (Translate.decode t.trans)

let block t =
  match t.last with
  | None -> ()
  | Some assignment ->
    let clause =
      List.map
        (fun (v, value) -> if value then Sat.Lit.neg_of v else Sat.Lit.pos v)
        assignment
    in
    Sat.Solver.add_clause (solver t) clause;
    t.last <- None

let enumerate ?limit t =
  let rec go acc n =
    match limit with
    | Some l when n >= l -> List.rev acc
    | _ -> (
      match solve t with
      | Unsat -> List.rev acc
      | Sat inst ->
        block t;
        go (inst :: acc) (n + 1))
  in
  go [] 0

let count ?limit t = List.length (enumerate ?limit t)
