module Ident = Mdl.Ident

module Universe = struct
  type t = {
    atoms : Ident.t array;
    index : int Ident.Map.t;
  }

  let make atoms =
    let arr = Array.of_list atoms in
    let index, _ =
      Array.fold_left
        (fun (m, i) a ->
          if Ident.Map.mem a m then
            invalid_arg
              (Printf.sprintf "Universe.make: duplicate atom %s" (Ident.name a));
          (Ident.Map.add a i m, i + 1))
        (Ident.Map.empty, 0) arr
    in
    { atoms = arr; index }

  let size u = Array.length u.atoms
  let atom u i = u.atoms.(i)
  let index u a =
    match Ident.Map.find_opt a u.index with
    | Some i -> i
    | None -> raise Not_found

  let mem u a = Ident.Map.mem a u.index
  let atoms u = Array.to_list u.atoms
end

module Tuple = struct
  type t = int array

  let arity = Array.length

  let compare (a : t) (b : t) =
    let la = Array.length a and lb = Array.length b in
    if la <> lb then Int.compare la lb
    else
      let rec go i =
        if i = la then 0
        else
          let c = Int.compare a.(i) b.(i) in
          if c <> 0 then c else go (i + 1)
      in
      go 0

  let concat = Array.append

  let pp u ppf t =
    Format.fprintf ppf "(%s)"
      (String.concat ", "
         (Array.to_list (Array.map (fun i -> Ident.name (Universe.atom u i)) t)))
end

module TS = Set.Make (struct
  type t = Tuple.t

  let compare = Tuple.compare
end)

module Tupleset = struct
  type t = TS.t

  let empty = TS.empty
  let is_empty = TS.is_empty

  let arity ts = if TS.is_empty ts then None else Some (Tuple.arity (TS.min_elt ts))

  let check_arity ts =
    match arity ts with
    | None -> ()
    | Some a ->
      if TS.exists (fun t -> Tuple.arity t <> a) ts then
        invalid_arg "Tupleset: mixed arities"

  let of_list tuples =
    let ts = TS.of_list tuples in
    check_arity ts;
    ts

  let to_list = TS.elements
  let singleton t = TS.singleton t
  let mem = TS.mem
  let cardinal = TS.cardinal
  let subset = TS.subset
  let equal = TS.equal
  let fold = TS.fold
  let filter = TS.filter

  let binop_check a b =
    match (arity a, arity b) with
    | Some x, Some y when x <> y -> invalid_arg "Tupleset: arity mismatch"
    | _ -> ()

  let union a b =
    binop_check a b;
    TS.union a b

  let inter a b =
    binop_check a b;
    TS.inter a b

  let diff a b =
    binop_check a b;
    TS.diff a b

  let product a b =
    TS.fold
      (fun ta acc -> TS.fold (fun tb acc -> TS.add (Tuple.concat ta tb) acc) b acc)
      a TS.empty

  let join a b =
    (match (arity a, arity b) with
    | Some x, _ when x = 0 -> invalid_arg "Tupleset.join: nullary operand"
    | _, Some y when y = 0 -> invalid_arg "Tupleset.join: nullary operand"
    | _ -> ());
    (* Index b by first column. *)
    let by_first = Hashtbl.create 64 in
    TS.iter
      (fun tb ->
        let key = tb.(0) in
        let rest = Array.sub tb 1 (Array.length tb - 1) in
        let cur = Option.value ~default:[] (Hashtbl.find_opt by_first key) in
        Hashtbl.replace by_first key (rest :: cur))
      b;
    TS.fold
      (fun ta acc ->
        let la = Array.length ta in
        let key = ta.(la - 1) in
        let prefix = Array.sub ta 0 (la - 1) in
        match Hashtbl.find_opt by_first key with
        | None -> acc
        | Some rests ->
          List.fold_left
            (fun acc rest -> TS.add (Tuple.concat prefix rest) acc)
            acc rests)
      a TS.empty

  let transpose ts =
    (match arity ts with
    | Some 2 | None -> ()
    | Some _ -> invalid_arg "Tupleset.transpose: not binary");
    TS.fold (fun t acc -> TS.add [| t.(1); t.(0) |] acc) ts TS.empty

  let closure ts =
    (match arity ts with
    | Some 2 | None -> ()
    | Some _ -> invalid_arg "Tupleset.closure: not binary");
    let rec fix cur =
      let next = union cur (join cur ts) in
      if TS.equal next cur then cur else fix next
    in
    fix ts

  let iden u =
    let n = Universe.size u in
    let rec go i acc = if i = n then acc else go (i + 1) (TS.add [| i; i |] acc) in
    go 0 TS.empty

  let reflexive_closure u ts = union (closure ts) (iden u)

  let univ u =
    let n = Universe.size u in
    let rec go i acc = if i = n then acc else go (i + 1) (TS.add [| i |] acc) in
    go 0 TS.empty

  let pp u ppf ts =
    Format.fprintf ppf "{%s}"
      (String.concat "; "
         (List.map (fun t -> Format.asprintf "%a" (Tuple.pp u) t) (TS.elements ts)))
end
