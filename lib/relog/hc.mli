(** Hash-consed relational formulas and expressions.

    A {!store} interns every distinct expression/formula node exactly
    once, so structurally equal subtrees share one node with one
    integer id — physical equality coincides with structural equality
    within a store, and node ids key the per-node memo tables of
    {!Simplify} and {!Translate}. Each node carries precomputed
    analyses the memoization layers need: free variables (for
    environment projection), mentioned relations (for delta
    invalidation after a {!Translate.rebind}) and a universe-dependence
    flag ([Univ]/[Iden]/[Closure]/[RClosure] anywhere below — the
    nodes whose lowering depends on the universe size, not only on
    atom indices).

    Import ([of_ast]) and export ([to_ast]) are exact 1:1 view
    mappings: [to_ast (of_ast st f) = f] structurally, and both are
    linear in the DAG size (export memoizes shared nodes into shared
    OCaml values). *)

type store

val store : unit -> store
(** A fresh, empty intern table. Stores grow monotonically; one
    long-lived store per long-lived {!Translate.t} is the intended
    shape, a throwaway store per call is fine for one-shot use. *)

type expr = private {
  e_id : int;  (** unique within the store *)
  e_view : expr_view;
  e_free_vars : Mdl.Ident.Set.t;
  e_rels : Mdl.Ident.Set.t;  (** relation names mentioned below *)
  e_univ : bool;  (** lowering depends on the universe size *)
}

and expr_view =
  | Rel of Mdl.Ident.t
  | Var of Mdl.Ident.t
  | Atom of Mdl.Ident.t
  | Univ
  | Iden
  | None_
  | Union of expr * expr
  | Inter of expr * expr
  | Diff of expr * expr
  | Join of expr * expr
  | Product of expr * expr
  | Transpose of expr
  | Closure of expr
  | RClosure of expr

type formula = private {
  f_id : int;
  f_view : formula_view;
  f_free_vars : Mdl.Ident.Set.t;
  f_rels : Mdl.Ident.Set.t;
  f_univ : bool;
}

and formula_view =
  | True
  | False
  | Subset of expr * expr
  | Equal of expr * expr
  | Some_ of expr
  | No of expr
  | Lone of expr
  | One of expr
  | Not of formula
  | And of formula list
  | Or of formula list
  | Implies of formula * formula
  | Iff of formula * formula
  | Forall of (Mdl.Ident.t * expr) list * formula
  | Exists of (Mdl.Ident.t * expr) list * formula

(** {2 Import / export} *)

val of_ast : store -> Ast.formula -> formula
val expr_of_ast : store -> Ast.expr -> expr
val to_ast : formula -> Ast.formula
val expr_to_ast : expr -> Ast.expr

(** {2 Interning constructors}

    Each returns the unique node of the store with that view. The
    [conj]/[disj]/[implies_]/[not_] smart constructors mirror
    {!Ast.conj} etc. (flattening, unit/absorbing elements). *)

val rel : store -> Mdl.Ident.t -> expr
val var : store -> Mdl.Ident.t -> expr
val atom : store -> Mdl.Ident.t -> expr
val univ : store -> expr
val iden : store -> expr
val none : store -> expr
val union : store -> expr -> expr -> expr
val inter : store -> expr -> expr -> expr
val diff : store -> expr -> expr -> expr
val join : store -> expr -> expr -> expr
val product : store -> expr -> expr -> expr
val transpose : store -> expr -> expr
val closure : store -> expr -> expr
val rclosure : store -> expr -> expr

val true_ : store -> formula
val false_ : store -> formula
val subset : store -> expr -> expr -> formula
val equal : store -> expr -> expr -> formula
val some : store -> expr -> formula
val no : store -> expr -> formula
val lone : store -> expr -> formula
val one : store -> expr -> formula
val not_ : store -> formula -> formula
val conj : store -> formula list -> formula
val disj : store -> formula list -> formula
val implies_ : store -> formula -> formula -> formula
val iff_ : store -> formula -> formula -> formula
val forall : store -> (Mdl.Ident.t * expr) list -> formula -> formula
val exists : store -> (Mdl.Ident.t * expr) list -> formula -> formula

(** {2 Simplification memo slots}

    Hosted here so the tables live and die with the intern tables
    whose ids key them (see {!Simplify}). *)

val simp_formula_memo : store -> (int * bool, formula) Hashtbl.t
val simp_expr_memo : store -> (int, expr) Hashtbl.t

val nodes : store -> int
(** Interned node count (exprs + formulas), for stats and tests. *)
