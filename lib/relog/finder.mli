(** The bounded relational model finder (Kodkod/Alloy-Analyzer
    substitute).

    Wraps {!Translate} with a solve/enumerate interface: find an
    instance within the bounds satisfying the asserted formulas, add
    blocking clauses to enumerate further instances, and solve under
    cardinality assumptions (how the Echo-style repair engine runs its
    increasing-distance iteration on one shared encoding). *)

type t

val prepare : Bounds.t -> Ast.formula list -> t
(** Translate and assert the conjunction of the formulas. All bound
    relations are materialized, so {!Translate.decode} covers them.
    Raises {!Translate.Unsupported} on ill-formed input. *)

val prepare_guarded : Bounds.t -> Ast.formula list -> t * Sat.Lit.t list
(** Like {!prepare}, but instead of asserting the formulas each one is
    translated to a {e guard literal} equivalent to it (one returned
    per formula, in order) and nothing is asserted. Solving with a
    subset of the guards as assumptions is solving under exactly those
    formulas; {!Sat.Solver.unsat_core} then names the guards (and any
    other assumptions) participating in an inconsistency. This is the
    entry point of the incremental-session subsystem, which pins model
    facts and checked formulas purely through assumptions so the same
    translation and solver serve every edit state. *)

val create : Bounds.t -> t
(** A finder over the bounds with nothing asserted yet: all bound
    relations are materialized, formulas arrive later through
    {!guard} / {!assert_formula}. The entry point for long-lived
    delta-retranslating sessions. *)

val guard : t -> Ast.formula -> Sat.Lit.t
(** Translate one formula to its guard literal (see
    {!prepare_guarded}) on the already-created finder. Thanks to the
    memoized lowering, guarding a formula already seen — even across
    {!rebind}s that did not touch its relations — costs a memo
    lookup and returns the same literal. *)

val assert_formula : t -> Ast.formula -> unit
(** Translate and assert one formula on the already-created finder. *)

val add_symmetry :
  ?fixed:Mdl.Ident.Set.t -> ?respect:Rel.Tupleset.t list -> t -> int
(** Run the {!Symmetry} analysis on the current bounds and assert
    lex-leader symmetry-breaking predicates under a guard literal that
    {!solve} thereafter assumes automatically. The fixed set is the
    union of [fixed] with every atom named by a formula previously
    routed through this finder (and the guard is refreshed if a later
    formula names a previously-permutable atom, or if {!rebind}
    changes any bounds — stale predicates are retired by abandoning
    their guard). [respect] tuplesets constrain the analysis exactly
    as in {!Symmetry.orbits}; the repair engine passes the original
    instance's target relations so the least-change distance is
    orbit-invariant. Returns the number of SBP clauses asserted. *)

val sbp_assumptions : t -> Sat.Lit.t list
(** The active SBP guard, as an assumption list ([[]] when
    {!add_symmetry} was never called). {!solve} prepends it
    automatically; callers solving a {!clone_solver} directly must
    pass it themselves. *)

val rebind : t -> Bounds.t -> int
(** {!Translate.rebind} plus re-materialization of every relation
    bound in the new bounds; forgets the last model (its primary
    assignment may mix universes). Returns the number of relations
    whose bounds actually changed. Previously returned guard literals
    remain usable: a guard whose formula mentions no changed relation
    is untouched, and re-guarding a formula that was invalidated
    rebuilds the identical circuit over the persistent primary
    variables, so the Tseitin cache resolves it to the same literal
    without new clauses. *)

val translation : t -> Translate.t
val solver : t -> Sat.Solver.t

val clone_solver : t -> Sat.Solver.t
(** {!Sat.Solver.clone} of the backend solver: an independent solver
    over the same encoding (same variable numbering, so the
    translation's primary-variable maps decode its models). Worker
    domains each take a clone and solve concurrently; the translation
    itself is only read after {!prepare}, which is safe. *)

val interrupt : t -> unit
(** {!Sat.Solver.interrupt} on the backend solver (not on clones). *)

val decode_with : t -> (Sat.Lit.var -> bool) -> Instance.t
(** Decode an instance from an explicit model valuation — typically
    [Sat.Solver.value clone] for a clone obtained from
    {!clone_solver}. Read-only on the finder, safe from any domain. *)

type outcome =
  | Sat of Instance.t
  | Unsat

val solve : ?assumptions:Sat.Lit.t list -> t -> outcome

val new_scope : t -> Sat.Lit.t
(** A fresh positive literal for use as a {!block} scope. *)

val block : ?scope:Sat.Lit.t -> t -> unit
(** Add a blocking clause excluding the last found instance's primary
    assignment. Repeated [solve]/[block] enumerates all instances.

    Without [scope] the clause covers the full primary assignment —
    including primaries pinned by the last solve's assumptions, whose
    literals make the clause inert under any assumption set differing
    on a pinned primary (enumerations under different assumption sets
    are independent, at the cost of baking the context into every
    clause).

    With [~scope:g] the clause omits every primary assumed in the last
    solve — assumption literals are never part of the block — and
    carries [¬g] instead: the block applies only to solves that assume
    [g]. Use one scope literal (see {!new_scope}) per assumption
    context; dropping [g] from the assumptions retracts the context's
    blocks wholesale, which is how a long-lived guarded session
    enumerates repairs per edit state without poisoning later
    states. *)

val enumerate : ?limit:int -> t -> Instance.t list
(** All satisfying instances (up to [limit], default unlimited).
    Mutates the finder by blocking each found instance. *)

val count : ?limit:int -> t -> int
(** Number of satisfying instances, counted by enumeration. *)

type stats = {
  translation : Translate.stats;  (** size/time of the encoding *)
  solver : Sat.Solver.stats;  (** search counters of the backend *)
  solves : int;  (** {!solve} calls through this finder *)
  sat : int;  (** ... of which satisfiable *)
  unsat : int;  (** ... of which unsatisfiable *)
  blocked : int;  (** blocking clauses added via {!block} *)
  solve_time : float;  (** wall seconds inside {!solve} *)
}

val stats : t -> stats
(** Per-finder telemetry: translation size vs. solve effort. *)
