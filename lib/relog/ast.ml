module Ident = Mdl.Ident

type expr =
  | Rel of Ident.t
  | Var of Ident.t
  | Atom of Ident.t
  | Univ
  | Iden
  | None_
  | Union of expr * expr
  | Inter of expr * expr
  | Diff of expr * expr
  | Join of expr * expr
  | Product of expr * expr
  | Transpose of expr
  | Closure of expr
  | RClosure of expr

type formula =
  | True
  | False
  | Subset of expr * expr
  | Equal of expr * expr
  | Some_ of expr
  | No of expr
  | Lone of expr
  | One of expr
  | Not of formula
  | And of formula list
  | Or of formula list
  | Implies of formula * formula
  | Iff of formula * formula
  | Forall of (Ident.t * expr) list * formula
  | Exists of (Ident.t * expr) list * formula

let rel s = Rel (Ident.make s)
let var s = Var (Ident.make s)
let atom s = Atom (Ident.make s)
let join a b = Join (a, b)
let dot x r = Join (x, r)

let conj fs =
  let fs =
    List.concat_map (function And gs -> gs | True -> [] | f -> [ f ]) fs
  in
  if List.exists (fun f -> f = False) fs then False
  else match fs with [] -> True | [ f ] -> f | fs -> And fs

let disj fs =
  let fs = List.concat_map (function Or gs -> gs | False -> [] | f -> [ f ]) fs in
  if List.exists (fun f -> f = True) fs then True
  else match fs with [] -> False | [ f ] -> f | fs -> Or fs

let implies a b =
  match (a, b) with
  | True, b -> b
  | False, _ -> True
  | _, True -> True
  | a, False -> Not a
  | a, b -> Implies (a, b)

let not_ = function
  | True -> False
  | False -> True
  | Not f -> f
  | f -> Not f

let in_ a b = Subset (a, b)
let eq a b = Equal (a, b)

let forall decls f =
  match decls with
  | [] -> f
  | _ -> Forall (List.map (fun (v, d) -> (Ident.make v, d)) decls, f)

let exists decls f =
  match decls with
  | [] -> f
  | _ -> Exists (List.map (fun (v, d) -> (Ident.make v, d)) decls, f)

let ( let* ) = Result.bind

let rec expr_arity lookup e : (int, string) result =
  let err fmt = Format.kasprintf (fun s -> Error s) fmt in
  match e with
  | Rel r -> (
    match lookup r with
    | Some a -> Ok a
    | None -> err "unknown relation %s" (Ident.name r))
  | Var _ | Atom _ | Univ | None_ -> Ok 1
  | Iden -> Ok 2
  | Union (a, b) | Inter (a, b) | Diff (a, b) ->
    let* x = expr_arity lookup a in
    let* y = expr_arity lookup b in
    if x = y then Ok x else err "arity mismatch in set operation (%d vs %d)" x y
  | Join (a, b) ->
    let* x = expr_arity lookup a in
    let* y = expr_arity lookup b in
    if x = 0 || y = 0 then err "join of nullary relation" else Ok (x + y - 2)
  | Product (a, b) ->
    let* x = expr_arity lookup a in
    let* y = expr_arity lookup b in
    Ok (x + y)
  | Transpose a ->
    let* x = expr_arity lookup a in
    if x = 2 then Ok 2 else err "transpose of non-binary relation (arity %d)" x
  | Closure a | RClosure a ->
    let* x = expr_arity lookup a in
    if x = 2 then Ok 2 else err "closure of non-binary relation (arity %d)" x

let rec free_rels_expr e acc =
  match e with
  | Rel r -> Ident.Set.add r acc
  | Var _ | Atom _ | Univ | Iden | None_ -> acc
  | Union (a, b) | Inter (a, b) | Diff (a, b) | Join (a, b) | Product (a, b) ->
    free_rels_expr a (free_rels_expr b acc)
  | Transpose a | Closure a | RClosure a -> free_rels_expr a acc

let rec free_rels_formula f acc =
  match f with
  | True | False -> acc
  | Subset (a, b) | Equal (a, b) -> free_rels_expr a (free_rels_expr b acc)
  | Some_ a | No a | Lone a | One a -> free_rels_expr a acc
  | Not f -> free_rels_formula f acc
  | And fs | Or fs -> List.fold_left (fun acc f -> free_rels_formula f acc) acc fs
  | Implies (a, b) | Iff (a, b) -> free_rels_formula a (free_rels_formula b acc)
  | Forall (decls, f) | Exists (decls, f) ->
    let acc = List.fold_left (fun acc (_, d) -> free_rels_expr d acc) acc decls in
    free_rels_formula f acc

let free_rels f = free_rels_formula f Ident.Set.empty

let rec free_atoms_expr e acc =
  match e with
  | Atom a -> Ident.Set.add a acc
  | Rel _ | Var _ | Univ | Iden | None_ -> acc
  | Union (a, b) | Inter (a, b) | Diff (a, b) | Join (a, b) | Product (a, b) ->
    free_atoms_expr a (free_atoms_expr b acc)
  | Transpose a | Closure a | RClosure a -> free_atoms_expr a acc

let rec free_atoms_formula f acc =
  match f with
  | True | False -> acc
  | Subset (a, b) | Equal (a, b) -> free_atoms_expr a (free_atoms_expr b acc)
  | Some_ a | No a | Lone a | One a -> free_atoms_expr a acc
  | Not f -> free_atoms_formula f acc
  | And fs | Or fs ->
    List.fold_left (fun acc f -> free_atoms_formula f acc) acc fs
  | Implies (a, b) | Iff (a, b) -> free_atoms_formula a (free_atoms_formula b acc)
  | Forall (decls, f) | Exists (decls, f) ->
    let acc =
      List.fold_left (fun acc (_, d) -> free_atoms_expr d acc) acc decls
    in
    free_atoms_formula f acc

let free_atoms f = free_atoms_formula f Ident.Set.empty

let rec fv_expr e acc =
  match e with
  | Var v -> Ident.Set.add v acc
  | Rel _ | Atom _ | Univ | Iden | None_ -> acc
  | Union (a, b) | Inter (a, b) | Diff (a, b) | Join (a, b) | Product (a, b) ->
    fv_expr a (fv_expr b acc)
  | Transpose a | Closure a | RClosure a -> fv_expr a acc

let free_vars_expr e = fv_expr e Ident.Set.empty

let rec fv_formula f acc =
  match f with
  | True | False -> acc
  | Subset (a, b) | Equal (a, b) -> fv_expr a (fv_expr b acc)
  | Some_ a | No a | Lone a | One a -> fv_expr a acc
  | Not f -> fv_formula f acc
  | And fs | Or fs -> List.fold_left (fun acc f -> fv_formula f acc) acc fs
  | Implies (a, b) | Iff (a, b) -> fv_formula a (fv_formula b acc)
  | Forall (decls, f) | Exists (decls, f) ->
    (* Domains may mention earlier variables of the same block. *)
    let bound, acc =
      List.fold_left
        (fun (bound, acc) (v, d) ->
          let acc = Ident.Set.union acc (Ident.Set.diff (free_vars_expr d) bound) in
          (Ident.Set.add v bound, acc))
        (Ident.Set.empty, acc) decls
    in
    Ident.Set.union acc (Ident.Set.diff (fv_formula f Ident.Set.empty) bound)

let free_vars f = fv_formula f Ident.Set.empty

let rec pp_expr ppf = function
  | Rel r -> Ident.pp ppf r
  | Var v -> Format.fprintf ppf "%a" Ident.pp v
  | Atom a -> Format.fprintf ppf "'%a" Ident.pp a
  | Univ -> Format.pp_print_string ppf "univ"
  | Iden -> Format.pp_print_string ppf "iden"
  | None_ -> Format.pp_print_string ppf "none"
  | Union (a, b) -> Format.fprintf ppf "(%a + %a)" pp_expr a pp_expr b
  | Inter (a, b) -> Format.fprintf ppf "(%a & %a)" pp_expr a pp_expr b
  | Diff (a, b) -> Format.fprintf ppf "(%a - %a)" pp_expr a pp_expr b
  | Join (a, b) -> Format.fprintf ppf "%a.%a" pp_expr a pp_expr b
  | Product (a, b) -> Format.fprintf ppf "(%a -> %a)" pp_expr a pp_expr b
  | Transpose a -> Format.fprintf ppf "~%a" pp_expr a
  | Closure a -> Format.fprintf ppf "^%a" pp_expr a
  | RClosure a -> Format.fprintf ppf "*%a" pp_expr a

let pp_decls ppf decls =
  Format.pp_print_list
    ~pp_sep:(fun f () -> Format.pp_print_string f ", ")
    (fun f (v, d) -> Format.fprintf f "%a : %a" Ident.pp v pp_expr d)
    ppf decls

let rec pp ppf = function
  | True -> Format.pp_print_string ppf "true"
  | False -> Format.pp_print_string ppf "false"
  | Subset (a, b) -> Format.fprintf ppf "%a in %a" pp_expr a pp_expr b
  | Equal (a, b) -> Format.fprintf ppf "%a = %a" pp_expr a pp_expr b
  | Some_ a -> Format.fprintf ppf "some %a" pp_expr a
  | No a -> Format.fprintf ppf "no %a" pp_expr a
  | Lone a -> Format.fprintf ppf "lone %a" pp_expr a
  | One a -> Format.fprintf ppf "one %a" pp_expr a
  | Not f -> Format.fprintf ppf "!(%a)" pp f
  | And fs ->
    Format.fprintf ppf "(%a)"
      (Format.pp_print_list
         ~pp_sep:(fun f () -> Format.pp_print_string f " && ")
         pp)
      fs
  | Or fs ->
    Format.fprintf ppf "(%a)"
      (Format.pp_print_list
         ~pp_sep:(fun f () -> Format.pp_print_string f " || ")
         pp)
      fs
  | Implies (a, b) -> Format.fprintf ppf "(%a => %a)" pp a pp b
  | Iff (a, b) -> Format.fprintf ppf "(%a <=> %a)" pp a pp b
  | Forall (decls, f) -> Format.fprintf ppf "(all %a | %a)" pp_decls decls pp f
  | Exists (decls, f) -> Format.fprintf ppf "(some %a | %a)" pp_decls decls pp f
