module Ident = Mdl.Ident
module TS = Rel.Tupleset

type t = {
  universe : Rel.Universe.t;
  map : (TS.t * TS.t) Ident.Map.t;
}

let make universe = { universe; map = Ident.Map.empty }
let universe b = b.universe

let check_pair r ~lower ~upper =
  if not (TS.subset lower upper) then
    invalid_arg
      (Printf.sprintf "Bounds: lower bound of %s not within upper bound"
         (Ident.name r));
  match (TS.arity lower, TS.arity upper) with
  | Some a, Some b when a <> b ->
    invalid_arg (Printf.sprintf "Bounds: arity mismatch for %s" (Ident.name r))
  | _ -> ()

let bound b r ~lower ~upper =
  if Ident.Map.mem r b.map then
    invalid_arg (Printf.sprintf "Bounds: relation %s already bound" (Ident.name r));
  check_pair r ~lower ~upper;
  { b with map = Ident.Map.add r (lower, upper) b.map }

let exact b r ts = bound b r ~lower:ts ~upper:ts
let get b r = Ident.Map.find_opt r b.map

let arity b r =
  match get b r with
  | None -> None
  | Some (lower, upper) -> (
    match TS.arity upper with Some a -> Some a | None -> TS.arity lower)

let relations b =
  Ident.Map.bindings b.map |> List.map fst |> List.sort Ident.compare_name

let diff a b =
  Ident.Map.merge
    (fun _ x y ->
      match (x, y) with
      | Some (l1, u1), Some (l2, u2) when TS.equal l1 l2 && TS.equal u1 u2 ->
        None
      | None, None -> None
      | _ -> Some ())
    a.map b.map
  |> Ident.Map.bindings |> List.map fst
  |> List.sort Ident.compare_name

let same_universe a b =
  a.universe == b.universe
  ||
  let na = Rel.Universe.size a.universe and nb = Rel.Universe.size b.universe in
  na = nb
  && (let rec go i =
        i >= na
        || Ident.equal (Rel.Universe.atom a.universe i) (Rel.Universe.atom b.universe i)
           && go (i + 1)
      in
      go 0)

(* Prefix compatibility: the smaller universe is a prefix of the
   larger, so every shared atom keeps its index. Append-only universe
   growth (and revival of an older, shorter universe) both satisfy
   this; translations can then keep their index-keyed state. *)
let universe_compatible a b =
  let ua = a.universe and ub = b.universe in
  ua == ub
  ||
  let na = Rel.Universe.size ua and nb = Rel.Universe.size ub in
  let n = min na nb in
  let rec go i =
    i >= n || (Ident.equal (Rel.Universe.atom ua i) (Rel.Universe.atom ub i) && go (i + 1))
  in
  go 0

let loosen b r ~lower ~upper =
  check_pair r ~lower ~upper;
  { b with map = Ident.Map.add r (lower, upper) b.map }

let pp ppf b =
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun r ->
      let lower, upper = Option.get (get b r) in
      Format.fprintf ppf "%a : [%a, %a]@," Ident.pp r (TS.pp b.universe) lower
        (TS.pp b.universe) upper)
    (relations b);
  Format.fprintf ppf "@]"
