module Ident = Mdl.Ident
module TS = Rel.Tupleset

type t = {
  universe : Rel.Universe.t;
  map : (TS.t * TS.t) Ident.Map.t;
}

let make universe = { universe; map = Ident.Map.empty }
let universe b = b.universe

let check_pair r ~lower ~upper =
  if not (TS.subset lower upper) then
    invalid_arg
      (Printf.sprintf "Bounds: lower bound of %s not within upper bound"
         (Ident.name r));
  match (TS.arity lower, TS.arity upper) with
  | Some a, Some b when a <> b ->
    invalid_arg (Printf.sprintf "Bounds: arity mismatch for %s" (Ident.name r))
  | _ -> ()

let bound b r ~lower ~upper =
  if Ident.Map.mem r b.map then
    invalid_arg (Printf.sprintf "Bounds: relation %s already bound" (Ident.name r));
  check_pair r ~lower ~upper;
  { b with map = Ident.Map.add r (lower, upper) b.map }

let exact b r ts = bound b r ~lower:ts ~upper:ts
let get b r = Ident.Map.find_opt r b.map

let arity b r =
  match get b r with
  | None -> None
  | Some (lower, upper) -> (
    match TS.arity upper with Some a -> Some a | None -> TS.arity lower)

let relations b =
  Ident.Map.bindings b.map |> List.map fst |> List.sort Ident.compare_name

let loosen b r ~lower ~upper =
  check_pair r ~lower ~upper;
  { b with map = Ident.Map.add r (lower, upper) b.map }

let pp ppf b =
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun r ->
      let lower, upper = Option.get (get b r) in
      Format.fprintf ppf "%a : [%a, %a]@," Ident.pp r (TS.pp b.universe) lower
        (TS.pp b.universe) upper)
    (relations b);
  Format.fprintf ppf "@]"
