(* Orbit detection over bounds and lex-leader SBP generation. See the
   interface for the construction; the shapes here stay deliberately
   simple (universes in this stack are tens of atoms, tuplesets
   hundreds of tuples), so the quadratic greedy classing is far from
   any hot path — E12 measures the analysis at well under a
   millisecond. *)

module TS = Rel.Tupleset

type orbit = int list

let m_orbits = Obs.Metrics.counter "relog.symmetry.orbits"
let m_sbp_clauses = Obs.Metrics.counter "relog.symmetry.sbp_clauses"
let m_analysis = Obs.Metrics.histogram "relog.symmetry.analysis_s"

let swap_tuple i j (t : Rel.Tuple.t) : Rel.Tuple.t =
  Array.map (fun a -> if a = i then j else if a = j then i else a) t

let perm_tuple pi (t : Rel.Tuple.t) : Rel.Tuple.t = Array.map pi t

(* All the tuplesets a permutation must preserve: each relation's
   lower and upper bound, plus the caller's respected sets. *)
let constraint_sets ?(respect = []) bnds =
  List.concat_map
    (fun r ->
      match Bounds.get bnds r with
      | Some (lo, up) -> [ lo; up ]
      | None -> [])
    (Bounds.relations bnds)
  @ respect

exception Not_auto

(* Is the transposition (i j) an automorphism of every tupleset?
   Tuples not mentioning i or j are their own image, so only the
   mentioning ones are checked. *)
let swap_ok i j tss =
  match
    List.iter
      (fun ts ->
        TS.fold
          (fun t () ->
            if
              Array.exists (fun a -> a = i || a = j) t
              && not (TS.mem (swap_tuple i j t) ts)
            then raise Not_auto)
          ts ())
      tss
  with
  | () -> true
  | exception Not_auto -> false

let is_automorphism ?respect bnds pi =
  List.for_all
    (fun ts -> TS.equal ts (TS.of_list (List.map (perm_tuple pi) (TS.to_list ts))))
    (constraint_sets ?respect bnds)

let orbits ?(fixed = Mdl.Ident.Set.empty) ?respect bnds =
  let t0 = Obs.Clock.now () in
  let u = Bounds.universe bnds in
  let n = Rel.Universe.size u in
  let tss = constraint_sets ?respect bnds in
  let is_fixed i = Mdl.Ident.Set.mem (Rel.Universe.atom u i) fixed in
  (* Greedy representative classing: atom [i] joins the first class
     whose representative [r] satisfies [swap_ok r i]. The check
     against the representative alone is exact — if (r c) and (r d)
     are automorphisms then so is (c d) = (r c)(r d)(r c) — so every
     transposition within a class is an automorphism and the class
     carries the full symmetric group. *)
  let classes = ref [] in
  for i = 0 to n - 1 do
    if not (is_fixed i) then begin
      let rec place = function
        | [] -> classes := (i, ref [ i ]) :: !classes
        | (rep, members) :: rest ->
          if swap_ok rep i tss then members := i :: !members else place rest
      in
      place !classes
    end
  done;
  let orbs =
    List.filter_map
      (fun (_, members) ->
        match List.rev !members with
        | _ :: _ :: _ as o -> Some o
        | _ -> None)
      (List.rev !classes)
  in
  Obs.Metrics.add m_orbits (List.length orbs);
  Obs.Metrics.observe m_analysis (Obs.Clock.since t0);
  orbs

(* The canonical primary-variable order: relation name, then tuple.
   Stable across processes (unlike raw interning order), so SBPs —
   and therefore solver search and the repair menus CI fingerprints —
   do not depend on interning accidents. *)
let primaries trans =
  Translate.fold_primaries trans (fun r t v acc -> (r, t, v) :: acc) []
  |> List.sort (fun (r1, t1, _) (r2, t2, _) ->
         match Mdl.Ident.compare_name r1 r2 with
         | 0 -> Rel.Tuple.compare t1 t2
         | c -> c)

let break ?guard ?max_length trans orbs =
  let solver = Translate.solver trans in
  let prims = primaries trans in
  let n_clauses = ref 0 in
  let add c =
    Sat.Solver.add_clause solver c;
    incr n_clauses
  in
  let guard_prefix = match guard with None -> [] | Some g -> [ Sat.Lit.neg g ] in
  let break_pair a b =
    (* Positions this transposition moves, in canonical order: primary
       (r, t) with swap(t) ≠ t. Since the swap is a bounds
       automorphism, swap(t) is also in upper \ lower, so its primary
       variable exists; a missing image (an unmaterialized relation's
       stray registry entry) truncates the chain, which is sound —
       any prefix of a lex-leader constraint is implied by it. *)
    let positions =
      List.filter_map
        (fun (r, t, v) ->
          let t' = swap_tuple a b t in
          if Rel.Tuple.compare t t' = 0 then None
          else
            match Translate.primary_var trans r t' with
            | Some w -> Some (v, w)
            | None -> None)
        prims
    in
    let positions =
      match max_length with
      | None -> positions
      | Some k -> List.filteri (fun i _ -> i < k) positions
    in
    (* Chained lex-leader encoding of V ≤lex π(V): with e_{k-1} the
       "prefix equal through k-1" variable (absent at k = 0),
         main:  ¬g ∨ ¬e_{k-1} ∨ ¬v_k ∨ w_k
         defn:  e_{k-1} ∧ (v_k ↔ w_k) → e_k   (two clauses)
       The definitional clauses only force e_k true under genuine
       prefix equality, so spurious aux assignments can never cut a
       lex-leader; they carry no guard because with the guard off the
       main clauses are vacuous and the aux chain is inert. *)
    let rec chain prev = function
      | [] -> ()
      | (v, w) :: rest ->
        let prev_prefix =
          match prev with None -> [] | Some e -> [ Sat.Lit.neg_of e ]
        in
        add (guard_prefix @ prev_prefix @ [ Sat.Lit.neg_of v; Sat.Lit.pos w ]);
        (match rest with
        | [] -> ()
        | _ :: _ ->
          let e = Sat.Solver.new_var solver in
          add
            (prev_prefix
            @ [ Sat.Lit.neg_of v; Sat.Lit.neg_of w; Sat.Lit.pos e ]);
          add (prev_prefix @ [ Sat.Lit.pos v; Sat.Lit.pos w; Sat.Lit.pos e ]);
          chain (Some e) rest)
    in
    chain None positions
  in
  List.iter
    (fun orbit ->
      let rec pairs = function
        | a :: (b :: _ as rest) ->
          break_pair a b;
          pairs rest
        | _ -> ()
      in
      pairs orbit)
    orbs;
  Obs.Metrics.add m_sbp_clauses !n_clauses;
  !n_clauses
