(** Direct evaluation of expressions and formulas against a concrete
    instance. This is the fast path for QVT-R [checkonly]: no SAT
    involved, just finite set algebra with environment-carried
    quantifiers. *)

type env = int Mdl.Ident.Map.t
(** Variable bindings: variable name to atom index. *)

val empty_env : env

exception Eval_error of string
(** Unknown variable, arity abuse (e.g. transposing a ternary), or
    atom foreign to the universe. *)

val expr : Instance.t -> env -> Ast.expr -> Rel.Tupleset.t
val formula : Instance.t -> env -> Ast.formula -> bool

val holds : Instance.t -> Ast.formula -> bool
(** [formula] with the empty environment (for sentences). *)

val counterexample :
  Instance.t -> Ast.formula -> (Mdl.Ident.t * Mdl.Ident.t) list option
(** When the sentence is false, a witness of the failure: bindings
    (variable, atom) collected by descending through universal
    quantifiers, conjunctions and implications to a falsified kernel.
    [None] when the sentence holds. The binding list may be empty when
    the failure is not under a quantifier. *)
