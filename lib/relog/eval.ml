module Ident = Mdl.Ident
module TS = Rel.Tupleset

type env = int Ident.Map.t

let empty_env = Ident.Map.empty

exception Eval_error of string

let error fmt = Format.kasprintf (fun s -> raise (Eval_error s)) fmt

let rec expr inst env (e : Ast.expr) =
  match e with
  | Ast.Rel r -> Instance.get inst r
  | Ast.Var v -> (
    match Ident.Map.find_opt v env with
    | Some idx -> TS.singleton [| idx |]
    | None -> error "unbound variable %s" (Ident.name v))
  | Ast.Atom a -> (
    match Rel.Universe.index (Instance.universe inst) a with
    | idx -> TS.singleton [| idx |]
    | exception Not_found -> error "unknown atom %s" (Ident.name a))
  | Ast.Univ -> TS.univ (Instance.universe inst)
  | Ast.Iden -> TS.iden (Instance.universe inst)
  | Ast.None_ -> TS.empty
  | Ast.Union (a, b) -> TS.union (expr inst env a) (expr inst env b)
  | Ast.Inter (a, b) -> TS.inter (expr inst env a) (expr inst env b)
  | Ast.Diff (a, b) -> TS.diff (expr inst env a) (expr inst env b)
  | Ast.Join (a, b) -> TS.join (expr inst env a) (expr inst env b)
  | Ast.Product (a, b) -> TS.product (expr inst env a) (expr inst env b)
  | Ast.Transpose a -> TS.transpose (expr inst env a)
  | Ast.Closure a -> TS.closure (expr inst env a)
  | Ast.RClosure a ->
    TS.reflexive_closure (Instance.universe inst) (expr inst env a)

let rec formula inst env (f : Ast.formula) =
  match f with
  | Ast.True -> true
  | Ast.False -> false
  | Ast.Subset (a, b) -> TS.subset (expr inst env a) (expr inst env b)
  | Ast.Equal (a, b) -> TS.equal (expr inst env a) (expr inst env b)
  | Ast.Some_ a -> not (TS.is_empty (expr inst env a))
  | Ast.No a -> TS.is_empty (expr inst env a)
  | Ast.Lone a -> TS.cardinal (expr inst env a) <= 1
  | Ast.One a -> TS.cardinal (expr inst env a) = 1
  | Ast.Not f -> not (formula inst env f)
  | Ast.And fs -> List.for_all (formula inst env) fs
  | Ast.Or fs -> List.exists (formula inst env) fs
  | Ast.Implies (a, b) -> (not (formula inst env a)) || formula inst env b
  | Ast.Iff (a, b) -> Bool.equal (formula inst env a) (formula inst env b)
  | Ast.Forall (decls, body) -> quantify inst env decls body ~universal:true
  | Ast.Exists (decls, body) -> quantify inst env decls body ~universal:false

and quantify inst env decls body ~universal =
  match decls with
  | [] -> formula inst env body
  | (v, dom) :: rest ->
    let domain = expr inst env dom in
    (match TS.arity domain with
    | Some 1 | None -> ()
    | Some n -> error "quantifier domain for %s has arity %d" (Ident.name v) n);
    let test tuple =
      let env = Ident.Map.add v tuple.(0) env in
      quantify inst env rest body ~universal
    in
    (* short-circuit: stop at the first counterexample / witness *)
    let exception Decided in
    let verdict = ref universal in
    (try
       TS.fold
         (fun t () ->
           let holds = test t in
           if universal && not holds then begin
             verdict := false;
             raise Decided
           end
           else if (not universal) && holds then begin
             verdict := true;
             raise Decided
           end)
         domain ()
     with Decided -> ());
    !verdict

let holds inst f = formula inst empty_env f

(* Descend through ∀ / ∧ / ⇒ to a falsified kernel, recording the
   quantifier bindings on the way. Returns [None] when [f] holds. *)
let counterexample inst f =
  let rec falsify env (f : Ast.formula) : (Ident.t * int) list option =
    match f with
    | Ast.Forall (decls, body) -> falsify_forall env decls body []
    | Ast.And fs ->
      List.fold_left
        (fun acc g -> match acc with Some _ -> acc | None -> falsify env g)
        None fs
    | Ast.Implies (a, b) ->
      if formula inst env a then falsify env b else None
    | f -> if formula inst env f then None else Some []
  and falsify_forall env decls body bound =
    match decls with
    | [] -> Option.map (fun rest -> List.rev bound @ rest) (falsify env body)
    | (v, dom) :: rest ->
      let domain = expr inst env dom in
      TS.fold
        (fun tuple acc ->
          match acc with
          | Some _ -> acc
          | None ->
            let env = Ident.Map.add v tuple.(0) env in
            falsify_forall env rest body ((v, tuple.(0)) :: bound))
        domain None
  in
  match falsify empty_env f with
  | None -> None
  | Some bindings ->
    let u = Instance.universe inst in
    Some (List.map (fun (v, idx) -> (v, Rel.Universe.atom u idx)) bindings)
