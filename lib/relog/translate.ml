module Ident = Mdl.Ident
module TS = Rel.Tupleset
module C = Sat.Circuit

module TupleMap = Map.Make (struct
  type t = Rel.Tuple.t

  let compare = Rel.Tuple.compare
end)

exception Unsupported of string

let error fmt = Format.kasprintf (fun s -> raise (Unsupported s)) fmt

(* A sparse boolean matrix: tuples absent from [cells] are false. *)
type matrix = {
  m_arity : int;
  cells : C.t TupleMap.t;
}

type t = {
  builder : C.builder;
  sat : Sat.Solver.t;
  tseitin : Sat.Tseitin.ctx;
  bnds : Bounds.t;
  (* (relation, tuple) -> primary variable *)
  primaries : (Ident.t * Rel.Tuple.t, Sat.Lit.var) Hashtbl.t;
  (* memoized relation matrices *)
  rel_matrices : (Ident.t, matrix) Hashtbl.t;
  (* telemetry: wall time spent translating, formulas translated *)
  translate_span : Sat.Telemetry.span;
}

let create ?solver bnds =
  let sat = match solver with Some s -> s | None -> Sat.Solver.create () in
  {
    builder = C.builder ();
    sat;
    tseitin = Sat.Tseitin.create sat;
    bnds;
    primaries = Hashtbl.create 256;
    rel_matrices = Hashtbl.create 64;
    translate_span = Sat.Telemetry.span ();
  }

let solver t = t.sat
let bounds t = t.bnds

let matrix_of_rel t r =
  match Hashtbl.find_opt t.rel_matrices r with
  | Some m -> m
  | None ->
    let lower, upper =
      match Bounds.get t.bnds r with
      | Some b -> b
      | None -> error "relation %s has no bounds" (Ident.name r)
    in
    let arity = match TS.arity upper with Some a -> Some a | None -> TS.arity lower in
    let cells =
      TS.fold
        (fun tuple cells ->
          let node =
            if TS.mem tuple lower then C.tru t.builder
            else begin
              let v = Sat.Solver.new_var t.sat in
              Hashtbl.replace t.primaries (r, tuple) v;
              C.input t.builder (Sat.Lit.pos v)
            end
          in
          TupleMap.add tuple node cells)
        upper TupleMap.empty
    in
    let m = { m_arity = Option.value ~default:1 arity; cells } in
    Hashtbl.replace t.rel_matrices r m;
    m

let cell m tuple = TupleMap.find_opt tuple m.cells

(* Merge-with for union. *)
let mat_union t a b =
  if a.m_arity <> b.m_arity && not (TupleMap.is_empty a.cells || TupleMap.is_empty b.cells)
  then error "union arity mismatch";
  let cells =
    TupleMap.union (fun _ x y -> Some (C.or_ t.builder [ x; y ])) a.cells b.cells
  in
  { m_arity = max a.m_arity b.m_arity; cells }

let mat_inter t a b =
  let cells =
    TupleMap.merge
      (fun _ x y ->
        match (x, y) with
        | Some x, Some y ->
          let n = C.and_ t.builder [ x; y ] in
          if C.is_false n then None else Some n
        | _ -> None)
      a.cells b.cells
  in
  { m_arity = a.m_arity; cells }

let mat_diff t a b =
  let cells =
    TupleMap.merge
      (fun _ x y ->
        match (x, y) with
        | Some x, None -> Some x
        | Some x, Some y ->
          let n = C.and_ t.builder [ x; C.not_ t.builder y ] in
          if C.is_false n then None else Some n
        | None, _ -> None)
      a.cells b.cells
  in
  { m_arity = a.m_arity; cells }

let mat_product t a b =
  let cells =
    TupleMap.fold
      (fun ta ea acc ->
        TupleMap.fold
          (fun tb eb acc ->
            let n = C.and_ t.builder [ ea; eb ] in
            if C.is_false n then acc else TupleMap.add (Rel.Tuple.concat ta tb) n acc)
          b.cells acc)
      a.cells TupleMap.empty
  in
  { m_arity = a.m_arity + b.m_arity; cells }

let mat_join t a b =
  if a.m_arity = 0 || b.m_arity = 0 then error "join of nullary relation";
  (* Index b by first column. *)
  let by_first : (int, (Rel.Tuple.t * C.t) list) Hashtbl.t = Hashtbl.create 64 in
  TupleMap.iter
    (fun tb eb ->
      let key = tb.(0) in
      let rest = Array.sub tb 1 (Array.length tb - 1) in
      let cur = Option.value ~default:[] (Hashtbl.find_opt by_first key) in
      Hashtbl.replace by_first key ((rest, eb) :: cur))
    b.cells;
  let disjuncts : C.t list TupleMap.t ref = ref TupleMap.empty in
  TupleMap.iter
    (fun ta ea ->
      let la = Array.length ta in
      let key = ta.(la - 1) in
      let prefix = Array.sub ta 0 (la - 1) in
      match Hashtbl.find_opt by_first key with
      | None -> ()
      | Some matches ->
        List.iter
          (fun (rest, eb) ->
            let n = C.and_ t.builder [ ea; eb ] in
            if not (C.is_false n) then begin
              let tuple = Rel.Tuple.concat prefix rest in
              let cur = Option.value ~default:[] (TupleMap.find_opt tuple !disjuncts) in
              disjuncts := TupleMap.add tuple (n :: cur) !disjuncts
            end)
          matches)
    a.cells;
  let cells =
    TupleMap.fold
      (fun tuple ds acc ->
        let n = C.or_ t.builder ds in
        if C.is_false n then acc else TupleMap.add tuple n acc)
      !disjuncts TupleMap.empty
  in
  { m_arity = a.m_arity + b.m_arity - 2; cells }

let mat_transpose a =
  if a.m_arity <> 2 then error "transpose of non-binary relation";
  {
    a with
    cells =
      TupleMap.fold
        (fun tu e acc -> TupleMap.add [| tu.(1); tu.(0) |] e acc)
        a.cells TupleMap.empty;
  }

(* Transitive closure by iterated squaring: n squarings suffice for
   paths of length <= 2^n >= |universe|. *)
let mat_closure t universe a =
  if a.m_arity <> 2 then error "closure of non-binary relation";
  let n = Rel.Universe.size universe in
  let steps =
    let rec go k pow = if pow >= n then k else go (k + 1) (2 * pow) in
    go 0 1
  in
  let rec iterate m k =
    if k = 0 then m else iterate (mat_union t m (mat_join t m m)) (k - 1)
  in
  iterate a steps

let mat_iden t universe =
  let n = Rel.Universe.size universe in
  let cells = ref TupleMap.empty in
  for i = 0 to n - 1 do
    cells := TupleMap.add [| i; i |] (C.tru t.builder) !cells
  done;
  { m_arity = 2; cells = !cells }

let mat_univ t universe =
  let n = Rel.Universe.size universe in
  let cells = ref TupleMap.empty in
  for i = 0 to n - 1 do
    cells := TupleMap.add [| i |] (C.tru t.builder) !cells
  done;
  { m_arity = 1; cells = !cells }

type env = int Ident.Map.t

let rec expr t (env : env) (e : Ast.expr) : matrix =
  let universe = Bounds.universe t.bnds in
  match e with
  | Ast.Rel r -> matrix_of_rel t r
  | Ast.Var v -> (
    match Ident.Map.find_opt v env with
    | Some idx ->
      { m_arity = 1; cells = TupleMap.singleton [| idx |] (C.tru t.builder) }
    | None -> error "unbound variable %s" (Ident.name v))
  | Ast.Atom a -> (
    match Rel.Universe.index universe a with
    | idx -> { m_arity = 1; cells = TupleMap.singleton [| idx |] (C.tru t.builder) }
    | exception Not_found -> error "unknown atom %s" (Ident.name a))
  | Ast.Univ -> mat_univ t universe
  | Ast.Iden -> mat_iden t universe
  | Ast.None_ -> { m_arity = 1; cells = TupleMap.empty }
  | Ast.Union (a, b) -> mat_union t (expr t env a) (expr t env b)
  | Ast.Inter (a, b) -> mat_inter t (expr t env a) (expr t env b)
  | Ast.Diff (a, b) -> mat_diff t (expr t env a) (expr t env b)
  | Ast.Join (a, b) -> mat_join t (expr t env a) (expr t env b)
  | Ast.Product (a, b) -> mat_product t (expr t env a) (expr t env b)
  | Ast.Transpose a -> mat_transpose (expr t env a)
  | Ast.Closure a -> mat_closure t universe (expr t env a)
  | Ast.RClosure a ->
    mat_union t (mat_closure t universe (expr t env a)) (mat_iden t universe)

let rec formula t (env : env) (f : Ast.formula) : C.t =
  let b = t.builder in
  match f with
  | Ast.True -> C.tru b
  | Ast.False -> C.fls b
  | Ast.Subset (x, y) ->
    let mx = expr t env x and my = expr t env y in
    let conjuncts =
      TupleMap.fold
        (fun tuple ex acc ->
          let ey = Option.value ~default:(C.fls b) (cell my tuple) in
          C.implies b ex ey :: acc)
        mx.cells []
    in
    C.and_ b conjuncts
  | Ast.Equal (x, y) ->
    C.and_ b [ formula t env (Ast.Subset (x, y)); formula t env (Ast.Subset (y, x)) ]
  | Ast.Some_ x ->
    let mx = expr t env x in
    C.or_ b (TupleMap.fold (fun _ e acc -> e :: acc) mx.cells [])
  | Ast.No x -> C.not_ b (formula t env (Ast.Some_ x))
  | Ast.Lone x ->
    let mx = expr t env x in
    let entries = TupleMap.fold (fun _ e acc -> e :: acc) mx.cells [] in
    let rec pairs = function
      | [] -> []
      | e :: rest ->
        List.map (fun e' -> C.not_ b (C.and_ b [ e; e' ])) rest @ pairs rest
    in
    C.and_ b (pairs entries)
  | Ast.One x -> C.and_ b [ formula t env (Ast.Some_ x); formula t env (Ast.Lone x) ]
  | Ast.Not f -> C.not_ b (formula t env f)
  | Ast.And fs -> C.and_ b (List.map (formula t env) fs)
  | Ast.Or fs -> C.or_ b (List.map (formula t env) fs)
  | Ast.Implies (x, y) -> C.implies b (formula t env x) (formula t env y)
  | Ast.Iff (x, y) -> C.iff b (formula t env x) (formula t env y)
  | Ast.Forall (decls, body) -> quantify t env decls body ~universal:true
  | Ast.Exists (decls, body) -> quantify t env decls body ~universal:false

and quantify t env decls body ~universal =
  let b = t.builder in
  match decls with
  | [] -> formula t env body
  | (v, dom) :: rest ->
    let md = expr t env dom in
    if md.m_arity <> 1 && not (TupleMap.is_empty md.cells) then
      error "quantifier domain for %s not unary" (Ident.name v);
    let branches =
      TupleMap.fold
        (fun tuple guard acc ->
          let env = Ident.Map.add v tuple.(0) env in
          let inner = quantify t env rest body ~universal in
          let branch =
            if universal then C.implies b guard inner
            else C.and_ b [ guard; inner ]
          in
          branch :: acc)
        md.cells []
    in
    if universal then C.and_ b branches else C.or_ b branches

(* Per-translation figures accumulate in [translate_span] (reported by
   [stats]); the registry histogram aggregates the same work
   process-wide for [Obs.Metrics.dump]. *)
let h_translate = Obs.Metrics.histogram "relog.translate_s"
let m_relations = Obs.Metrics.counter "relog.relations_materialized"
let m_formulas = Obs.Metrics.counter "relog.formulas_translated"

let timed t f =
  let t0 = Sat.Telemetry.now () in
  Fun.protect
    ~finally:(fun () ->
      let dt = Sat.Telemetry.now () -. t0 in
      Sat.Telemetry.record t.translate_span dt;
      Obs.Metrics.observe h_translate dt)
    f

let assert_formula t f =
  Obs.Metrics.incr m_formulas;
  Obs.Trace.with_span ~name:"translate.formula" (fun () ->
      timed t (fun () ->
          let node = formula t Ident.Map.empty f in
          Sat.Tseitin.assert_true t.tseitin node))

let formula_lit t f =
  Obs.Metrics.incr m_formulas;
  Obs.Trace.with_span ~name:"translate.formula" (fun () ->
      timed t (fun () ->
          let node = formula t Ident.Map.empty f in
          Sat.Tseitin.lit_of t.tseitin node))

let primary_var t r tuple = Hashtbl.find_opt t.primaries (r, tuple)

let materialize t r =
  Obs.Metrics.incr m_relations;
  Obs.Trace.with_span ~name:"translate.materialize"
    ~args:(fun () -> [ ("relation", Obs.Json.String (Ident.name r)) ])
    (fun () -> timed t (fun () -> ignore (matrix_of_rel t r)))

let fold_primaries t f acc =
  Hashtbl.fold (fun (r, tuple) v acc -> f r tuple v acc) t.primaries acc

let decode_with t value_of =
  let inst = Instance.make (Bounds.universe t.bnds) in
  List.fold_left
    (fun inst r ->
      let lower, upper = Option.get (Bounds.get t.bnds r) in
      let value =
        TS.fold
          (fun tuple acc ->
            if TS.mem tuple lower then TS.union acc (TS.singleton tuple)
            else
              match primary_var t r tuple with
              | Some v when value_of v -> TS.union acc (TS.singleton tuple)
              | Some _ | None -> acc)
          upper TS.empty
      in
      Instance.set inst r value)
    inst (Bounds.relations t.bnds)

let decode t = decode_with t (Sat.Solver.value t.sat)

type stats = {
  primary_vars : int;
  vars : int;
  clauses : int;
  relations : int;
  formulas : int;
  translate_time : float;
}

let stats t =
  {
    primary_vars = Hashtbl.length t.primaries;
    vars = Sat.Solver.nb_vars t.sat;
    clauses = Sat.Solver.nb_clauses t.sat;
    relations = Hashtbl.length t.rel_matrices;
    formulas = Sat.Telemetry.events t.translate_span;
    translate_time = Sat.Telemetry.seconds t.translate_span;
  }

let pp_stats ppf st =
  Format.fprintf ppf
    "@[<h>%d vars (%d primary); %d clauses; %d relations materialized; \
     translation %.3f ms@]"
    st.vars st.primary_vars st.clauses st.relations
    (st.translate_time *. 1000.)
