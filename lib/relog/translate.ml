module Ident = Mdl.Ident
module TS = Rel.Tupleset
module C = Sat.Circuit

module TupleMap = Map.Make (struct
  type t = Rel.Tuple.t

  let compare = Rel.Tuple.compare
end)

exception Unsupported of string

let error fmt = Format.kasprintf (fun s -> raise (Unsupported s)) fmt

(* A sparse boolean matrix: tuples absent from [cells] are false. *)
type matrix = {
  m_arity : int;
  cells : C.t TupleMap.t;
}

(* The lowering is memoized per hash-consed node: [e_memo]/[f_memo]
   key on (node id, environment projected onto the node's free
   variables), so a subtree is lowered once per distinct binding of
   the variables it actually mentions — ground subtrees exactly once —
   instead of once per occurrence per quantifier grounding.
   [e_nodes]/[f_nodes] keep the node of every memoized id so [rebind]
   can invalidate exactly the entries whose relations (or universe
   dependence) an edit touched. *)
type t = {
  builder : C.builder;
  sat : Sat.Solver.t;
  tseitin : Sat.Tseitin.ctx;
  store : Hc.store;
  mutable bnds : Bounds.t;
  (* (relation, tuple) -> primary variable. Persistent across
     [rebind]: re-bounding a relation reuses the variable of every
     (relation, tuple) pair it has ever allocated, so re-lowered
     formulas rebuild physically identical circuits and Tseitin adds
     no clauses for unchanged parts. *)
  primaries : (Ident.t * Rel.Tuple.t, Sat.Lit.var) Hashtbl.t;
  (* memoized relation matrices, current bounds only *)
  rel_matrices : (Ident.t, matrix) Hashtbl.t;
  e_memo : (int * int list, matrix) Hashtbl.t;
  f_memo : (int * int list, C.t) Hashtbl.t;
  e_nodes : (int, Hc.expr) Hashtbl.t;
  f_nodes : (int, Hc.formula) Hashtbl.t;
  (* telemetry: wall time spent translating, formulas translated *)
  translate_span : Sat.Telemetry.span;
}

let create ?solver ?store bnds =
  let sat = match solver with Some s -> s | None -> Sat.Solver.create () in
  let store = match store with Some st -> st | None -> Hc.store () in
  {
    builder = C.builder ();
    sat;
    tseitin = Sat.Tseitin.create sat;
    store;
    bnds;
    primaries = Hashtbl.create 256;
    rel_matrices = Hashtbl.create 64;
    e_memo = Hashtbl.create 1024;
    f_memo = Hashtbl.create 1024;
    e_nodes = Hashtbl.create 512;
    f_nodes = Hashtbl.create 512;
    translate_span = Sat.Telemetry.span ();
  }

let solver t = t.sat
let bounds t = t.bnds
let store t = t.store

let matrix_of_rel t r =
  match Hashtbl.find_opt t.rel_matrices r with
  | Some m -> m
  | None ->
    let lower, upper =
      match Bounds.get t.bnds r with
      | Some b -> b
      | None -> error "relation %s has no bounds" (Ident.name r)
    in
    let arity = match TS.arity upper with Some a -> Some a | None -> TS.arity lower in
    let cells =
      TS.fold
        (fun tuple cells ->
          let node =
            if TS.mem tuple lower then C.tru t.builder
            else begin
              let v =
                match Hashtbl.find_opt t.primaries (r, tuple) with
                | Some v -> v
                | None ->
                  let v = Sat.Solver.new_var t.sat in
                  Hashtbl.replace t.primaries (r, tuple) v;
                  v
              in
              C.input t.builder (Sat.Lit.pos v)
            end
          in
          TupleMap.add tuple node cells)
        upper TupleMap.empty
    in
    let m = { m_arity = Option.value ~default:1 arity; cells } in
    Hashtbl.replace t.rel_matrices r m;
    m

let cell m tuple = TupleMap.find_opt tuple m.cells

(* Merge-with for union. *)
let mat_union t a b =
  if a.m_arity <> b.m_arity && not (TupleMap.is_empty a.cells || TupleMap.is_empty b.cells)
  then error "union arity mismatch";
  let cells =
    TupleMap.union (fun _ x y -> Some (C.or_ t.builder [ x; y ])) a.cells b.cells
  in
  { m_arity = max a.m_arity b.m_arity; cells }

let mat_inter t a b =
  let cells =
    TupleMap.merge
      (fun _ x y ->
        match (x, y) with
        | Some x, Some y ->
          let n = C.and_ t.builder [ x; y ] in
          if C.is_false n then None else Some n
        | _ -> None)
      a.cells b.cells
  in
  { m_arity = a.m_arity; cells }

let mat_diff t a b =
  let cells =
    TupleMap.merge
      (fun _ x y ->
        match (x, y) with
        | Some x, None -> Some x
        | Some x, Some y ->
          let n = C.and_ t.builder [ x; C.not_ t.builder y ] in
          if C.is_false n then None else Some n
        | None, _ -> None)
      a.cells b.cells
  in
  { m_arity = a.m_arity; cells }

let mat_product t a b =
  let cells =
    TupleMap.fold
      (fun ta ea acc ->
        TupleMap.fold
          (fun tb eb acc ->
            let n = C.and_ t.builder [ ea; eb ] in
            if C.is_false n then acc else TupleMap.add (Rel.Tuple.concat ta tb) n acc)
          b.cells acc)
      a.cells TupleMap.empty
  in
  { m_arity = a.m_arity + b.m_arity; cells }

let mat_join t a b =
  if a.m_arity = 0 || b.m_arity = 0 then error "join of nullary relation";
  (* Index b by first column. *)
  let by_first : (int, (Rel.Tuple.t * C.t) list) Hashtbl.t = Hashtbl.create 64 in
  TupleMap.iter
    (fun tb eb ->
      let key = tb.(0) in
      let rest = Array.sub tb 1 (Array.length tb - 1) in
      let cur = Option.value ~default:[] (Hashtbl.find_opt by_first key) in
      Hashtbl.replace by_first key ((rest, eb) :: cur))
    b.cells;
  let disjuncts : C.t list TupleMap.t ref = ref TupleMap.empty in
  TupleMap.iter
    (fun ta ea ->
      let la = Array.length ta in
      let key = ta.(la - 1) in
      let prefix = Array.sub ta 0 (la - 1) in
      match Hashtbl.find_opt by_first key with
      | None -> ()
      | Some matches ->
        List.iter
          (fun (rest, eb) ->
            let n = C.and_ t.builder [ ea; eb ] in
            if not (C.is_false n) then begin
              let tuple = Rel.Tuple.concat prefix rest in
              let cur = Option.value ~default:[] (TupleMap.find_opt tuple !disjuncts) in
              disjuncts := TupleMap.add tuple (n :: cur) !disjuncts
            end)
          matches)
    a.cells;
  let cells =
    TupleMap.fold
      (fun tuple ds acc ->
        let n = C.or_ t.builder ds in
        if C.is_false n then acc else TupleMap.add tuple n acc)
      !disjuncts TupleMap.empty
  in
  { m_arity = a.m_arity + b.m_arity - 2; cells }

let mat_transpose a =
  if a.m_arity <> 2 then error "transpose of non-binary relation";
  {
    a with
    cells =
      TupleMap.fold
        (fun tu e acc -> TupleMap.add [| tu.(1); tu.(0) |] e acc)
        a.cells TupleMap.empty;
  }

(* Transitive closure by iterated squaring: n squarings suffice for
   paths of length <= 2^n >= |universe|. *)
let mat_closure t universe a =
  if a.m_arity <> 2 then error "closure of non-binary relation";
  let n = Rel.Universe.size universe in
  let steps =
    let rec go k pow = if pow >= n then k else go (k + 1) (2 * pow) in
    go 0 1
  in
  let rec iterate m k =
    if k = 0 then m else iterate (mat_union t m (mat_join t m m)) (k - 1)
  in
  iterate a steps

let mat_iden t universe =
  let n = Rel.Universe.size universe in
  let cells = ref TupleMap.empty in
  for i = 0 to n - 1 do
    cells := TupleMap.add [| i; i |] (C.tru t.builder) !cells
  done;
  { m_arity = 2; cells = !cells }

let mat_univ t universe =
  let n = Rel.Universe.size universe in
  let cells = ref TupleMap.empty in
  for i = 0 to n - 1 do
    cells := TupleMap.add [| i |] (C.tru t.builder) !cells
  done;
  { m_arity = 1; cells = !cells }

type env = int Ident.Map.t

let m_memo_hits = Obs.Metrics.counter "relog.memo_hits"
let m_memo_misses = Obs.Metrics.counter "relog.memo_misses"
let m_delta = Obs.Metrics.counter "relog.delta_retranslations"

(* Environment restricted to the node's free variables, as an id/value
   alternation ([Ident.Set.fold] runs in increasing element order, so
   the key is canonical). Unbound variables are skipped: lowering
   raises on them before anything is memoized. *)
let project (env : env) fvs =
  Ident.Set.fold
    (fun v acc ->
      match Ident.Map.find_opt v env with
      | Some i -> Ident.hash v :: i :: acc
      | None -> acc)
    fvs []

let rec expr t (env : env) (e : Hc.expr) : matrix =
  let universe = Bounds.universe t.bnds in
  match e.Hc.e_view with
  (* Leaves are cheaper to rebuild than to memo. *)
  | Hc.Rel r -> matrix_of_rel t r
  | Hc.Var v -> (
    match Ident.Map.find_opt v env with
    | Some idx ->
      { m_arity = 1; cells = TupleMap.singleton [| idx |] (C.tru t.builder) }
    | None -> error "unbound variable %s" (Ident.name v))
  | Hc.Atom a -> (
    match Rel.Universe.index universe a with
    | idx -> { m_arity = 1; cells = TupleMap.singleton [| idx |] (C.tru t.builder) }
    | exception Not_found -> error "unknown atom %s" (Ident.name a))
  | Hc.None_ -> { m_arity = 1; cells = TupleMap.empty }
  | _ -> (
    let key = (e.Hc.e_id, project env e.Hc.e_free_vars) in
    match Hashtbl.find_opt t.e_memo key with
    | Some m ->
      Obs.Metrics.incr m_memo_hits;
      m
    | None ->
      Obs.Metrics.incr m_memo_misses;
      let m =
        match e.Hc.e_view with
        | Hc.Rel _ | Hc.Var _ | Hc.Atom _ | Hc.None_ -> assert false
        | Hc.Univ -> mat_univ t universe
        | Hc.Iden -> mat_iden t universe
        | Hc.Union (a, b) -> mat_union t (expr t env a) (expr t env b)
        | Hc.Inter (a, b) -> mat_inter t (expr t env a) (expr t env b)
        | Hc.Diff (a, b) -> mat_diff t (expr t env a) (expr t env b)
        | Hc.Join (a, b) -> mat_join t (expr t env a) (expr t env b)
        | Hc.Product (a, b) -> mat_product t (expr t env a) (expr t env b)
        | Hc.Transpose a -> mat_transpose (expr t env a)
        | Hc.Closure a -> mat_closure t universe (expr t env a)
        | Hc.RClosure a ->
          mat_union t (mat_closure t universe (expr t env a)) (mat_iden t universe)
      in
      Hashtbl.replace t.e_memo key m;
      Hashtbl.replace t.e_nodes e.Hc.e_id e;
      m)

let subset_circuit t mx my =
  let b = t.builder in
  let conjuncts =
    TupleMap.fold
      (fun tuple ex acc ->
        let ey = Option.value ~default:(C.fls b) (cell my tuple) in
        C.implies b ex ey :: acc)
      mx.cells []
  in
  C.and_ b conjuncts

let some_circuit t mx =
  C.or_ t.builder (TupleMap.fold (fun _ e acc -> e :: acc) mx.cells [])

let lone_circuit t mx =
  let b = t.builder in
  let entries = TupleMap.fold (fun _ e acc -> e :: acc) mx.cells [] in
  let rec pairs = function
    | [] -> []
    | e :: rest -> List.map (fun e' -> C.not_ b (C.and_ b [ e; e' ])) rest @ pairs rest
  in
  C.and_ b (pairs entries)

let rec formula t (env : env) (f : Hc.formula) : C.t =
  let b = t.builder in
  match f.Hc.f_view with
  | Hc.True -> C.tru b
  | Hc.False -> C.fls b
  | _ -> (
    let key = (f.Hc.f_id, project env f.Hc.f_free_vars) in
    match Hashtbl.find_opt t.f_memo key with
    | Some n ->
      Obs.Metrics.incr m_memo_hits;
      n
    | None ->
      Obs.Metrics.incr m_memo_misses;
      let n =
        match f.Hc.f_view with
        | Hc.True | Hc.False -> assert false
        | Hc.Subset (x, y) -> subset_circuit t (expr t env x) (expr t env y)
        | Hc.Equal (x, y) ->
          let mx = expr t env x and my = expr t env y in
          C.and_ b [ subset_circuit t mx my; subset_circuit t my mx ]
        | Hc.Some_ x -> some_circuit t (expr t env x)
        | Hc.No x -> C.not_ b (some_circuit t (expr t env x))
        | Hc.Lone x -> lone_circuit t (expr t env x)
        | Hc.One x ->
          let mx = expr t env x in
          C.and_ b [ some_circuit t mx; lone_circuit t mx ]
        | Hc.Not g -> C.not_ b (formula t env g)
        | Hc.And fs -> C.and_ b (List.map (formula t env) fs)
        | Hc.Or fs -> C.or_ b (List.map (formula t env) fs)
        | Hc.Implies (x, y) -> C.implies b (formula t env x) (formula t env y)
        | Hc.Iff (x, y) -> C.iff b (formula t env x) (formula t env y)
        | Hc.Forall (decls, body) -> quantify t env decls body ~universal:true
        | Hc.Exists (decls, body) -> quantify t env decls body ~universal:false
      in
      Hashtbl.replace t.f_memo key n;
      Hashtbl.replace t.f_nodes f.Hc.f_id f;
      n)

and quantify t env decls body ~universal =
  let b = t.builder in
  match decls with
  | [] -> formula t env body
  | (v, dom) :: rest ->
    let md = expr t env dom in
    if md.m_arity <> 1 && not (TupleMap.is_empty md.cells) then
      error "quantifier domain for %s not unary" (Ident.name v);
    let branches =
      TupleMap.fold
        (fun tuple guard acc ->
          let env = Ident.Map.add v tuple.(0) env in
          let inner = quantify t env rest body ~universal in
          let branch =
            if universal then C.implies b guard inner
            else C.and_ b [ guard; inner ]
          in
          branch :: acc)
        md.cells []
    in
    if universal then C.and_ b branches else C.or_ b branches

(* ------------------------------------------------------------------ *)
(* Delta rebinding                                                     *)

(* Re-bound the context. Matrices of changed relations are dropped
   (rebuilt on demand against the new bounds, reusing the persistent
   primary variables for unchanged tuples), and memo entries are
   invalidated exactly when their node mentions a changed relation —
   or depends on the universe, if that changed. Unchanged entries
   survive: this is what makes session retranslation proportional to
   the edit, not the problem.

   Soundness: a memo entry's circuit depends only on (a) the matrices
   of the relations below the node — invalidated when any of them
   changed; (b) the universe indices of atoms below it — stable
   because rebinding requires prefix-compatible universes (else
   everything, including the index-keyed primary registry, is
   cleared); (c) the universe size for Univ/Iden/(R)Closure nodes —
   invalidated via the precomputed [e_univ]/[f_univ] flag. *)
let rebind t bnds' =
  let old = t.bnds in
  if not (Bounds.universe_compatible old bnds') then begin
    (* Unrelated universes: atom indices changed meaning; nothing
       index-keyed survives. *)
    Hashtbl.reset t.rel_matrices;
    Hashtbl.reset t.e_memo;
    Hashtbl.reset t.f_memo;
    Hashtbl.reset t.e_nodes;
    Hashtbl.reset t.f_nodes;
    Hashtbl.reset t.primaries;
    t.bnds <- bnds';
    List.length (Bounds.relations bnds')
  end
  else begin
    let changed = Bounds.diff old bnds' in
    let changed_set = List.fold_left (fun s r -> Ident.Set.add r s) Ident.Set.empty changed in
    let univ_changed = not (Bounds.same_universe old bnds') in
    List.iter (Hashtbl.remove t.rel_matrices) changed;
    let dead rels uses_univ =
      (univ_changed && uses_univ)
      || (not (Ident.Set.is_empty changed_set)
         && Ident.Set.exists (fun r -> Ident.Set.mem r changed_set) rels)
    in
    Hashtbl.filter_map_inplace
      (fun (id, _) m ->
        match Hashtbl.find_opt t.e_nodes id with
        | Some e -> if dead e.Hc.e_rels e.Hc.e_univ then None else Some m
        | None -> None)
      t.e_memo;
    Hashtbl.filter_map_inplace
      (fun (id, _) n ->
        match Hashtbl.find_opt t.f_nodes id with
        | Some f -> if dead f.Hc.f_rels f.Hc.f_univ then None else Some n
        | None -> None)
      t.f_memo;
    t.bnds <- bnds';
    Obs.Metrics.add m_delta (List.length changed);
    List.length changed
  end

(* ------------------------------------------------------------------ *)
(* Entry points                                                        *)

(* Per-translation figures accumulate in [translate_span] (reported by
   [stats]); the registry histogram aggregates the same work
   process-wide for [Obs.Metrics.dump]. *)
let h_translate = Obs.Metrics.histogram "relog.translate_s"
let m_relations = Obs.Metrics.counter "relog.relations_materialized"
let m_formulas = Obs.Metrics.counter "relog.formulas_translated"

let timed t f =
  let t0 = Sat.Telemetry.now () in
  Fun.protect
    ~finally:(fun () ->
      let dt = Sat.Telemetry.now () -. t0 in
      Sat.Telemetry.record t.translate_span dt;
      Obs.Metrics.observe h_translate dt)
    f

(* Import, simplify (both memoized in the store) and lower to a
   circuit. The [translate.lower] span covers circuit construction;
   CNF emission is separate ([translate.cnf]) so traces show where
   the wall went. *)
let lower t f =
  Obs.Trace.with_span ~name:"translate.lower" (fun () ->
      let hf = Simplify.hc_formula t.store (Hc.of_ast t.store f) in
      formula t Ident.Map.empty hf)

let assert_formula t f =
  Obs.Metrics.incr m_formulas;
  Obs.Trace.with_span ~name:"translate.formula" (fun () ->
      timed t (fun () ->
          let node = lower t f in
          Obs.Trace.with_span ~name:"translate.cnf" (fun () ->
              Sat.Tseitin.assert_true t.tseitin node)))

let formula_lit t f =
  Obs.Metrics.incr m_formulas;
  Obs.Trace.with_span ~name:"translate.formula" (fun () ->
      timed t (fun () ->
          let node = lower t f in
          Obs.Trace.with_span ~name:"translate.cnf" (fun () ->
              Sat.Tseitin.lit_of t.tseitin node)))

let primary_var t r tuple = Hashtbl.find_opt t.primaries (r, tuple)

let materialize t r =
  Obs.Metrics.incr m_relations;
  Obs.Trace.with_span ~name:"translate.materialize"
    ~args:(fun () -> [ ("relation", Obs.Json.String (Ident.name r)) ])
    (fun () -> timed t (fun () -> ignore (matrix_of_rel t r)))

(* Live primaries only: the registry persists across [rebind]s, so it
   is filtered down to materialized relations and tuples optional
   under the *current* bounds — the same set a fresh translation
   would register. *)
let fold_primaries t f acc =
  Hashtbl.fold
    (fun (r, tuple) v acc ->
      if not (Hashtbl.mem t.rel_matrices r) then acc
      else
        match Bounds.get t.bnds r with
        | Some (lower, upper) when TS.mem tuple upper && not (TS.mem tuple lower)
          -> f r tuple v acc
        | _ -> acc)
    t.primaries acc

let decode_with t value_of =
  let inst = Instance.make (Bounds.universe t.bnds) in
  List.fold_left
    (fun inst r ->
      let lower, upper = Option.get (Bounds.get t.bnds r) in
      let value =
        TS.fold
          (fun tuple acc ->
            if TS.mem tuple lower then TS.union acc (TS.singleton tuple)
            else
              match primary_var t r tuple with
              | Some v when value_of v -> TS.union acc (TS.singleton tuple)
              | Some _ | None -> acc)
          upper TS.empty
      in
      Instance.set inst r value)
    inst (Bounds.relations t.bnds)

let decode t = decode_with t (Sat.Solver.value t.sat)

type stats = {
  primary_vars : int;
  vars : int;
  clauses : int;
  relations : int;
  formulas : int;
  translate_time : float;
}

let stats t =
  {
    primary_vars = Hashtbl.length t.primaries;
    vars = Sat.Solver.nb_vars t.sat;
    clauses = Sat.Solver.nb_clauses t.sat;
    relations = Hashtbl.length t.rel_matrices;
    formulas = Sat.Telemetry.events t.translate_span;
    translate_time = Sat.Telemetry.seconds t.translate_span;
  }

let pp_stats ppf st =
  Format.fprintf ppf
    "@[<h>%d vars (%d primary); %d clauses; %d relations materialized; \
     translation %.3f ms@]"
    st.vars st.primary_vars st.clauses st.relations
    (st.translate_time *. 1000.)
