(** Formula simplification.

    Rewrites formulas into negation normal form with light algebraic
    simplification. Used to keep compiled QVT-R formulas small before
    evaluation/translation, and convenient for tests and debugging
    (simplified formulas read better). Guarantees:

    - the result is logically equivalent on every instance with a
      non-empty universe whose formulas mention only existing atoms
      (property-tested against the evaluator) — the only situation the
      compiler produces;
    - negations appear only on atomic formulas (NNF) — [Not] never
      wraps a connective or quantifier;
    - no [True]/[False] sub-formulas except as the whole formula;
    - single-element [And]/[Or] are unwrapped, nested ones flattened;
    - quantifiers over syntactically empty domains ([None_]) collapse
      to their truth value. *)

val formula : Ast.formula -> Ast.formula

val expr : Ast.expr -> Ast.expr
(** Light expression simplification: identity elements of union /
    intersection / difference, collapse of [Transpose (Transpose e)],
    and constant-empty propagation through join and product. *)

val size : Ast.formula -> int
(** Node count (for tests and diagnostics). *)

(** {2 Hash-consed entry points}

    Same algorithm, memoized per (node, polarity) in the store's
    tables ({!Hc.simp_formula_memo}): simplification runs once per
    distinct hash-consed node, however many formulas share it.
    {!Translate} simplifies every asserted formula through the
    translation's own store. *)

val hc_formula : Hc.store -> Hc.formula -> Hc.formula
val hc_expr : Hc.store -> Hc.expr -> Hc.expr
