(** Bounds on free relations — the model-finding search space.

    As in Kodkod, each free relation gets a lower bound (tuples it
    must contain) and an upper bound (tuples it may contain). Tuples
    in [upper \ lower] become propositional variables; everything else
    is constant. An exact bound ([lower = upper]) makes the relation a
    constant — how the enforcement engine freezes non-target models. *)

type t

val make : Rel.Universe.t -> t
val universe : t -> Rel.Universe.t

val bound :
  t -> Mdl.Ident.t -> lower:Rel.Tupleset.t -> upper:Rel.Tupleset.t -> t
(** Raises [Invalid_argument] unless [lower ⊆ upper] and arities
    agree (or one side is empty), or if the relation is already
    bound. *)

val exact : t -> Mdl.Ident.t -> Rel.Tupleset.t -> t
(** [exact b r ts] = [bound b r ~lower:ts ~upper:ts]. *)

val get : t -> Mdl.Ident.t -> (Rel.Tupleset.t * Rel.Tupleset.t) option
val arity : t -> Mdl.Ident.t -> int option
(** Declared arity of a bound relation, [None] when unbound or
    bound to the empty relation on both sides. *)

val relations : t -> Mdl.Ident.t list
(** Bound relation names, sorted. *)

val diff : t -> t -> Mdl.Ident.t list
(** Relations whose (lower, upper) pair differs between the two
    bounds — including relations bound on only one side. Sorted by
    name. The delta-retranslation layer ({!Translate.rebind})
    invalidates exactly these relations' matrices and the memo
    entries mentioning them. *)

val same_universe : t -> t -> bool
(** Same atom sequence (by name, position for position). *)

val universe_compatible : t -> t -> bool
(** The shorter universe is a prefix of the longer: every shared atom
    keeps its index, so index-keyed translation state survives a
    rebind between the two. *)

val loosen : t -> Mdl.Ident.t -> lower:Rel.Tupleset.t -> upper:Rel.Tupleset.t -> t
(** Replace an existing bound (used by the repair engine to relax the
    target models' relations). Adds the bound if absent. *)

val pp : Format.formatter -> t -> unit
