module Ident = Mdl.Ident

type expr = {
  e_id : int;
  e_view : expr_view;
  e_free_vars : Ident.Set.t;
  e_rels : Ident.Set.t;
  e_univ : bool;
}

and expr_view =
  | Rel of Ident.t
  | Var of Ident.t
  | Atom of Ident.t
  | Univ
  | Iden
  | None_
  | Union of expr * expr
  | Inter of expr * expr
  | Diff of expr * expr
  | Join of expr * expr
  | Product of expr * expr
  | Transpose of expr
  | Closure of expr
  | RClosure of expr

type formula = {
  f_id : int;
  f_view : formula_view;
  f_free_vars : Ident.Set.t;
  f_rels : Ident.Set.t;
  f_univ : bool;
}

and formula_view =
  | True
  | False
  | Subset of expr * expr
  | Equal of expr * expr
  | Some_ of expr
  | No of expr
  | Lone of expr
  | One of expr
  | Not of formula
  | And of formula list
  | Or of formula list
  | Implies of formula * formula
  | Iff of formula * formula
  | Forall of (Ident.t * expr) list * formula
  | Exists of (Ident.t * expr) list * formula

(* Structural keys over child ids: two nodes get the same key iff
   their views are equal given that children are already interned.
   Ident tags are the intern ids of Mdl.Ident, so they identify the
   ident. *)
type ekey =
  | EK_leaf of int * int  (* constructor code, ident tag (0 if none) *)
  | EK_un of int * int  (* constructor code, child id *)
  | EK_bin of int * int * int

type fkey =
  | FK_const of bool
  | FK_cmp of int * int * int  (* code, expr id, expr id *)
  | FK_mult of int * int  (* code, expr id *)
  | FK_not of int
  | FK_list of int * int list  (* code, formula ids *)
  | FK_bin of int * int * int  (* code, formula id, formula id *)
  | FK_quant of int * (int * int) list * int
      (* code, (var tag, domain id) decls, body id *)

type store = {
  mutable next : int;  (* shared id counter for exprs and formulas *)
  e_tbl : (ekey, expr) Hashtbl.t;
  f_tbl : (fkey, formula) Hashtbl.t;
  sfm : (int * bool, formula) Hashtbl.t;
  sem : (int, expr) Hashtbl.t;
}

let store () =
  {
    next = 0;
    e_tbl = Hashtbl.create 1024;
    f_tbl = Hashtbl.create 1024;
    sfm = Hashtbl.create 256;
    sem = Hashtbl.create 256;
  }

let simp_formula_memo st = st.sfm
let simp_expr_memo st = st.sem
let nodes st = st.next

let fresh_id st =
  let id = st.next in
  st.next <- id + 1;
  id

(* ------------------------------------------------------------------ *)
(* Expressions                                                         *)

let ekey (v : expr_view) : ekey =
  match v with
  | Rel r -> EK_leaf (0, Ident.hash r)
  | Var x -> EK_leaf (1, Ident.hash x)
  | Atom a -> EK_leaf (2, Ident.hash a)
  | Univ -> EK_leaf (3, 0)
  | Iden -> EK_leaf (4, 0)
  | None_ -> EK_leaf (5, 0)
  | Union (a, b) -> EK_bin (6, a.e_id, b.e_id)
  | Inter (a, b) -> EK_bin (7, a.e_id, b.e_id)
  | Diff (a, b) -> EK_bin (8, a.e_id, b.e_id)
  | Join (a, b) -> EK_bin (9, a.e_id, b.e_id)
  | Product (a, b) -> EK_bin (10, a.e_id, b.e_id)
  | Transpose a -> EK_un (11, a.e_id)
  | Closure a -> EK_un (12, a.e_id)
  | RClosure a -> EK_un (13, a.e_id)

let intern_e st (v : expr_view) : expr =
  let key = ekey v in
  match Hashtbl.find_opt st.e_tbl key with
  | Some e -> e
  | None ->
    let fv, rels, uv =
      match v with
      | Rel r -> (Ident.Set.empty, Ident.Set.singleton r, false)
      | Var x -> (Ident.Set.singleton x, Ident.Set.empty, false)
      | Atom _ | None_ -> (Ident.Set.empty, Ident.Set.empty, false)
      | Univ | Iden -> (Ident.Set.empty, Ident.Set.empty, true)
      | Union (a, b) | Inter (a, b) | Diff (a, b) | Join (a, b) | Product (a, b)
        ->
        ( Ident.Set.union a.e_free_vars b.e_free_vars,
          Ident.Set.union a.e_rels b.e_rels,
          a.e_univ || b.e_univ )
      | Transpose a -> (a.e_free_vars, a.e_rels, a.e_univ)
      (* Closure lowering iterates ceil(log2 |universe|) squarings:
         universe-dependent even over universe-independent bodies. *)
      | Closure a | RClosure a -> (a.e_free_vars, a.e_rels, true)
    in
    let e =
      { e_id = fresh_id st; e_view = v; e_free_vars = fv; e_rels = rels; e_univ = uv }
    in
    Hashtbl.add st.e_tbl key e;
    e

let rel st r = intern_e st (Rel r)
let var st x = intern_e st (Var x)
let atom st a = intern_e st (Atom a)
let univ st = intern_e st Univ
let iden st = intern_e st Iden
let none st = intern_e st None_
let union st a b = intern_e st (Union (a, b))
let inter st a b = intern_e st (Inter (a, b))
let diff st a b = intern_e st (Diff (a, b))
let join st a b = intern_e st (Join (a, b))
let product st a b = intern_e st (Product (a, b))
let transpose st a = intern_e st (Transpose a)
let closure st a = intern_e st (Closure a)
let rclosure st a = intern_e st (RClosure a)

(* ------------------------------------------------------------------ *)
(* Formulas                                                            *)

let fkey (v : formula_view) : fkey =
  match v with
  | True -> FK_const true
  | False -> FK_const false
  | Subset (a, b) -> FK_cmp (0, a.e_id, b.e_id)
  | Equal (a, b) -> FK_cmp (1, a.e_id, b.e_id)
  | Some_ a -> FK_mult (0, a.e_id)
  | No a -> FK_mult (1, a.e_id)
  | Lone a -> FK_mult (2, a.e_id)
  | One a -> FK_mult (3, a.e_id)
  | Not f -> FK_not f.f_id
  | And fs -> FK_list (0, List.map (fun f -> f.f_id) fs)
  | Or fs -> FK_list (1, List.map (fun f -> f.f_id) fs)
  | Implies (a, b) -> FK_bin (0, a.f_id, b.f_id)
  | Iff (a, b) -> FK_bin (1, a.f_id, b.f_id)
  | Forall (decls, f) ->
    FK_quant (0, List.map (fun (x, d) -> (Ident.hash x, d.e_id)) decls, f.f_id)
  | Exists (decls, f) ->
    FK_quant (1, List.map (fun (x, d) -> (Ident.hash x, d.e_id)) decls, f.f_id)

(* Free variables of a quantifier mirror Ast.fv_formula: domains may
   mention earlier variables of the same block. *)
let quant_free decls (body : formula) =
  let bound, acc =
    List.fold_left
      (fun (bound, acc) (x, d) ->
        let acc = Ident.Set.union acc (Ident.Set.diff d.e_free_vars bound) in
        (Ident.Set.add x bound, acc))
      (Ident.Set.empty, Ident.Set.empty)
      decls
  in
  Ident.Set.union acc (Ident.Set.diff body.f_free_vars bound)

let intern_f st (v : formula_view) : formula =
  let key = fkey v in
  match Hashtbl.find_opt st.f_tbl key with
  | Some f -> f
  | None ->
    let fv, rels, uv =
      match v with
      | True | False -> (Ident.Set.empty, Ident.Set.empty, false)
      | Subset (a, b) | Equal (a, b) ->
        ( Ident.Set.union a.e_free_vars b.e_free_vars,
          Ident.Set.union a.e_rels b.e_rels,
          a.e_univ || b.e_univ )
      | Some_ a | No a | Lone a | One a -> (a.e_free_vars, a.e_rels, a.e_univ)
      | Not f -> (f.f_free_vars, f.f_rels, f.f_univ)
      | And fs | Or fs ->
        List.fold_left
          (fun (fv, rels, uv) f ->
            ( Ident.Set.union fv f.f_free_vars,
              Ident.Set.union rels f.f_rels,
              uv || f.f_univ ))
          (Ident.Set.empty, Ident.Set.empty, false)
          fs
      | Implies (a, b) | Iff (a, b) ->
        ( Ident.Set.union a.f_free_vars b.f_free_vars,
          Ident.Set.union a.f_rels b.f_rels,
          a.f_univ || b.f_univ )
      | Forall (decls, f) | Exists (decls, f) ->
        ( quant_free decls f,
          List.fold_left
            (fun rels (_, d) -> Ident.Set.union rels d.e_rels)
            f.f_rels decls,
          f.f_univ || List.exists (fun (_, d) -> d.e_univ) decls )
    in
    let f =
      { f_id = fresh_id st; f_view = v; f_free_vars = fv; f_rels = rels; f_univ = uv }
    in
    Hashtbl.add st.f_tbl key f;
    f

let true_ st = intern_f st True
let false_ st = intern_f st False
let subset st a b = intern_f st (Subset (a, b))
let equal st a b = intern_f st (Equal (a, b))
let some st a = intern_f st (Some_ a)
let no st a = intern_f st (No a)
let lone st a = intern_f st (Lone a)
let one st a = intern_f st (One a)
let iff_ st a b = intern_f st (Iff (a, b))
let forall st decls f = match decls with [] -> f | _ -> intern_f st (Forall (decls, f))
let exists st decls f = match decls with [] -> f | _ -> intern_f st (Exists (decls, f))

(* Smart constructors mirroring Ast.conj / Ast.disj / Ast.implies /
   Ast.not_ — hash-consing turns their structural comparisons into id
   comparisons. *)
let conj st fs =
  let fs =
    List.concat_map
      (fun f -> match f.f_view with And gs -> gs | True -> [] | _ -> [ f ])
      fs
  in
  if List.exists (fun f -> f.f_view = False) fs then false_ st
  else match fs with [] -> true_ st | [ f ] -> f | fs -> intern_f st (And fs)

let disj st fs =
  let fs =
    List.concat_map
      (fun f -> match f.f_view with Or gs -> gs | False -> [] | _ -> [ f ])
      fs
  in
  if List.exists (fun f -> f.f_view = True) fs then true_ st
  else match fs with [] -> false_ st | [ f ] -> f | fs -> intern_f st (Or fs)

let not_ st f =
  match f.f_view with
  | True -> false_ st
  | False -> true_ st
  | Not g -> g
  | _ -> intern_f st (Not f)

let implies_ st a b =
  match (a.f_view, b.f_view) with
  | True, _ -> b
  | False, _ -> true_ st
  | _, True -> true_ st
  | _, False -> not_ st a
  | _ -> intern_f st (Implies (a, b))

(* ------------------------------------------------------------------ *)
(* Import / export — exact 1:1 view mappings                           *)

let rec expr_of_ast st (e : Ast.expr) : expr =
  match e with
  | Ast.Rel r -> rel st r
  | Ast.Var x -> var st x
  | Ast.Atom a -> atom st a
  | Ast.Univ -> univ st
  | Ast.Iden -> iden st
  | Ast.None_ -> none st
  | Ast.Union (a, b) -> union st (expr_of_ast st a) (expr_of_ast st b)
  | Ast.Inter (a, b) -> inter st (expr_of_ast st a) (expr_of_ast st b)
  | Ast.Diff (a, b) -> diff st (expr_of_ast st a) (expr_of_ast st b)
  | Ast.Join (a, b) -> join st (expr_of_ast st a) (expr_of_ast st b)
  | Ast.Product (a, b) -> product st (expr_of_ast st a) (expr_of_ast st b)
  | Ast.Transpose a -> transpose st (expr_of_ast st a)
  | Ast.Closure a -> closure st (expr_of_ast st a)
  | Ast.RClosure a -> rclosure st (expr_of_ast st a)

let rec of_ast st (f : Ast.formula) : formula =
  match f with
  | Ast.True -> true_ st
  | Ast.False -> false_ st
  | Ast.Subset (a, b) -> subset st (expr_of_ast st a) (expr_of_ast st b)
  | Ast.Equal (a, b) -> equal st (expr_of_ast st a) (expr_of_ast st b)
  | Ast.Some_ a -> some st (expr_of_ast st a)
  | Ast.No a -> no st (expr_of_ast st a)
  | Ast.Lone a -> lone st (expr_of_ast st a)
  | Ast.One a -> one st (expr_of_ast st a)
  | Ast.Not g -> intern_f st (Not (of_ast st g))
  | Ast.And fs -> intern_f st (And (List.map (of_ast st) fs))
  | Ast.Or fs -> intern_f st (Or (List.map (of_ast st) fs))
  | Ast.Implies (a, b) -> intern_f st (Implies (of_ast st a, of_ast st b))
  | Ast.Iff (a, b) -> iff_ st (of_ast st a) (of_ast st b)
  | Ast.Forall (decls, g) ->
    intern_f st
      (Forall (List.map (fun (x, d) -> (x, expr_of_ast st d)) decls, of_ast st g))
  | Ast.Exists (decls, g) ->
    intern_f st
      (Exists (List.map (fun (x, d) -> (x, expr_of_ast st d)) decls, of_ast st g))

(* Export memoizes shared nodes into shared OCaml values, so it is
   linear in the DAG, not the unfolded tree. The tables are per call:
   exports are rare (tests, pretty-printing paths). *)
let expr_to_ast_memo (memo : (int, Ast.expr) Hashtbl.t) =
  let rec go (e : expr) : Ast.expr =
    match Hashtbl.find_opt memo e.e_id with
    | Some a -> a
    | None ->
      let a =
        match e.e_view with
        | Rel r -> Ast.Rel r
        | Var x -> Ast.Var x
        | Atom a -> Ast.Atom a
        | Univ -> Ast.Univ
        | Iden -> Ast.Iden
        | None_ -> Ast.None_
        | Union (a, b) -> Ast.Union (go a, go b)
        | Inter (a, b) -> Ast.Inter (go a, go b)
        | Diff (a, b) -> Ast.Diff (go a, go b)
        | Join (a, b) -> Ast.Join (go a, go b)
        | Product (a, b) -> Ast.Product (go a, go b)
        | Transpose a -> Ast.Transpose (go a)
        | Closure a -> Ast.Closure (go a)
        | RClosure a -> Ast.RClosure (go a)
      in
      Hashtbl.add memo e.e_id a;
      a
  in
  go

let expr_to_ast e = expr_to_ast_memo (Hashtbl.create 64) e

let to_ast (f : formula) : Ast.formula =
  let ememo = Hashtbl.create 64 in
  let fmemo : (int, Ast.formula) Hashtbl.t = Hashtbl.create 64 in
  let goe = expr_to_ast_memo ememo in
  let rec go (f : formula) : Ast.formula =
    match Hashtbl.find_opt fmemo f.f_id with
    | Some a -> a
    | None ->
      let a =
        match f.f_view with
        | True -> Ast.True
        | False -> Ast.False
        | Subset (a, b) -> Ast.Subset (goe a, goe b)
        | Equal (a, b) -> Ast.Equal (goe a, goe b)
        | Some_ a -> Ast.Some_ (goe a)
        | No a -> Ast.No (goe a)
        | Lone a -> Ast.Lone (goe a)
        | One a -> Ast.One (goe a)
        | Not g -> Ast.Not (go g)
        | And fs -> Ast.And (List.map go fs)
        | Or fs -> Ast.Or (List.map go fs)
        | Implies (a, b) -> Ast.Implies (go a, go b)
        | Iff (a, b) -> Ast.Iff (go a, go b)
        | Forall (decls, g) ->
          Ast.Forall (List.map (fun (x, d) -> (x, goe d)) decls, go g)
        | Exists (decls, g) ->
          Ast.Exists (List.map (fun (x, d) -> (x, goe d)) decls, go g)
      in
      Hashtbl.add fmemo f.f_id a;
      a
  in
  go f
