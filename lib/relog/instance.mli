(** Concrete instances: a universe plus a value for every free
    relation. Produced by the model encoder ({!Qvtr.Encode}) and by
    the model finder's decoder; consumed by the evaluator. *)

type t

val make : Rel.Universe.t -> t
val universe : t -> Rel.Universe.t

val set : t -> Mdl.Ident.t -> Rel.Tupleset.t -> t
val get : t -> Mdl.Ident.t -> Rel.Tupleset.t
(** Unknown relations evaluate to the empty set. *)

val mem : t -> Mdl.Ident.t -> bool
val relations : t -> (Mdl.Ident.t * Rel.Tupleset.t) list
(** Sorted by relation name. *)

val union_all : t -> t -> t
(** Point-wise union of two instances over the same universe (used to
    merge per-model encodings into one multi-model instance). Raises
    [Invalid_argument] when a relation appears in both with different
    values — relation names are expected to be namespaced per model. *)

val pp : Format.formatter -> t -> unit
