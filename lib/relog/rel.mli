(** Atoms, tuples, tuple sets and universes — the ground data of the
    bounded relational logic (the role Kodkod's [Universe],
    [Tuple] and [TupleSet] play under Alloy).

    Atoms are named ({!Mdl.Ident}) and indexed densely within a
    universe; tuples are arrays of atom indices; tuple sets are sorted
    sets of equal-arity tuples. *)

module Universe : sig
  type t

  val make : Mdl.Ident.t list -> t
  (** Universe of the given distinct atoms. Raises [Invalid_argument]
      on duplicates. *)

  val size : t -> int
  val atom : t -> int -> Mdl.Ident.t
  (** Atom at an index. *)

  val index : t -> Mdl.Ident.t -> int
  (** @raise Not_found for foreign atoms. *)

  val mem : t -> Mdl.Ident.t -> bool
  val atoms : t -> Mdl.Ident.t list
end

module Tuple : sig
  type t = int array
  (** Atom indices; immutable by convention. *)

  val arity : t -> int
  val compare : t -> t -> int
  val concat : t -> t -> t
  val pp : Universe.t -> Format.formatter -> t -> unit
end

module Tupleset : sig
  type t
  (** A set of tuples, all of the same arity. The empty set is
      compatible with every arity. *)

  val empty : t
  val is_empty : t -> bool
  val arity : t -> int option
  (** [None] for the empty set. *)

  val of_list : Tuple.t list -> t
  (** Raises [Invalid_argument] on mixed arities. *)

  val to_list : t -> Tuple.t list
  (** In sorted order. *)

  val singleton : Tuple.t -> t
  val mem : Tuple.t -> t -> bool
  val cardinal : t -> int
  val subset : t -> t -> bool
  val equal : t -> t -> bool
  val fold : (Tuple.t -> 'a -> 'a) -> t -> 'a -> 'a
  val filter : (Tuple.t -> bool) -> t -> t

  val union : t -> t -> t
  val inter : t -> t -> t
  val diff : t -> t -> t

  val product : t -> t -> t
  (** Cartesian product: arities add. *)

  val join : t -> t -> t
  (** Relational (dot) join: matches the last column of the left
      operand against the first column of the right; arity
      [a + b - 2]. Raises [Invalid_argument] when either side is
      nullary. *)

  val transpose : t -> t
  (** Binary relations only. *)

  val closure : t -> t
  (** Transitive closure of a binary relation. *)

  val reflexive_closure : Universe.t -> t -> t
  (** Reflexive-transitive closure over the universe's identity. *)

  val iden : Universe.t -> t
  (** The identity binary relation over all atoms. *)

  val univ : Universe.t -> t
  (** The unary relation holding every atom. *)

  val pp : Universe.t -> Format.formatter -> t -> unit
end
