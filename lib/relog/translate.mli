(** Kodkod-style translation of bounded relational problems into
    boolean circuits, memoized over hash-consed formulas.

    Every free relation becomes a sparse boolean matrix over the
    universe: tuples in the lower bound map to the constant true,
    tuples in [upper \ lower] map to fresh SAT variables (the
    {e primary variables}), everything else is false. Relational
    operators become matrix algebra over circuits; quantifiers are
    grounded over the (symbolic) domain matrix; the resulting circuit
    is CNF-encoded through {!Sat.Tseitin}.

    Formulas are first interned into a {!Hc.store} and simplified
    there, then lowered with a per-node memo keyed on (node id,
    environment restricted to the node's free variables). A ground
    subtree shared by 10,000 quantifier groundings is lowered once;
    the circuit layer and Tseitin cache already deduplicate
    downstream, so the whole pipeline is incremental. *)

type t
(** A translation context: circuit builder, SAT solver, hash-consing
    store and the primary-variable registry. *)

(** [create ?solver ?store bounds]: a fresh context. [solver] lets
    callers share a solver with other encodings (e.g. the
    MaxSAT-based repair backend); [store] lets them share hash-consed
    nodes (and simplification memos) across contexts. By default
    fresh ones are created. *)
val create : ?solver:Sat.Solver.t -> ?store:Hc.store -> Bounds.t -> t

val solver : t -> Sat.Solver.t
val bounds : t -> Bounds.t
val store : t -> Hc.store

exception Unsupported of string
(** Raised on ill-formed input: unbound relation names, arity abuse,
    unbound variables, or atoms outside the universe. *)

val assert_formula : t -> Ast.formula -> unit
(** Translate the formula and assert it (conjunctively with previous
    assertions) in the solver. *)

val formula_lit : t -> Ast.formula -> Sat.Lit.t
(** Translate the formula to a literal equivalent to it (for use in
    assumptions), without asserting it. *)

val rebind : t -> Bounds.t -> int
(** [rebind t bounds]: delta-retranslation. Point the context at new
    bounds, invalidating only the relation matrices that actually
    changed ({!Bounds.diff}) and the memo entries whose node mentions
    a changed relation (or depends on the universe, when that grew or
    shrank). Primary variables persist: a (relation, tuple) pair keeps
    its variable across rebinds, so re-lowered formulas rebuild
    physically identical circuits and the Tseitin cache emits no new
    clauses for unchanged parts — previously translated guard
    literals stay valid. Returns the number of relations invalidated.

    Requires {!Bounds.universe_compatible} old/new universes (atom
    indices keep their meaning); otherwise the context resets
    wholesale, which is always sound. *)

val primary_var : t -> Mdl.Ident.t -> Rel.Tuple.t -> Sat.Lit.var option
(** The primary variable deciding this tuple's membership, when the
    tuple lies in [upper \ lower] of the given relation and the
    matrix has been materialized. Matrices for every relation
    mentioned in an asserted formula are materialized; call
    {!materialize} for relations only referenced by the decoder. *)

val materialize : t -> Mdl.Ident.t -> unit
(** Force creation of the relation's matrix (and primary variables). *)

val fold_primaries :
  t -> (Mdl.Ident.t -> Rel.Tuple.t -> Sat.Lit.var -> 'a -> 'a) -> 'a -> 'a
(** Iterate the primary variables live under the current bounds:
    materialized relations, tuples in [upper \ lower]. (The registry
    itself persists across {!rebind}s and may hold more.) *)

val decode : t -> Instance.t
(** Read the model of the last satisfiable [solve] off the solver:
    each bound relation's value is its lower bound plus the optional
    tuples whose primary variable is true. *)

val decode_with : t -> (Sat.Lit.var -> bool) -> Instance.t
(** Like {!decode} with an explicit valuation (e.g. a MaxSAT model
    snapshot). *)

type stats = {
  primary_vars : int;  (** registry size: free tuples ever allocated *)
  vars : int;  (** total SAT variables (primaries + Tseitin + shared) *)
  clauses : int;  (** problem clauses in the underlying solver *)
  relations : int;  (** relation matrices currently materialized *)
  formulas : int;  (** translation entry points run (materialize/assert) *)
  translate_time : float;  (** wall seconds spent translating *)
}

val stats : t -> stats
(** Translation-size and -time telemetry. [vars]/[clauses] read the
    underlying solver, so with a shared solver they cover everything
    encoded into it. *)

val pp_stats : Format.formatter -> stats -> unit
