(** Kodkod-style translation of bounded relational problems into
    boolean circuits.

    Every free relation becomes a sparse boolean matrix over the
    universe: tuples in the lower bound map to the constant true,
    tuples in [upper \ lower] map to fresh SAT variables (the
    {e primary variables}), everything else is false. Relational
    operators become matrix algebra over circuits; quantifiers are
    grounded over the (symbolic) domain matrix; the resulting circuit
    is CNF-encoded through {!Sat.Tseitin}. *)

type t
(** A translation context: circuit builder, SAT solver and the
    primary-variable registry. *)

(** [create ?solver bounds]: a fresh context. [solver] lets callers
    share a solver with other encodings (e.g. the MaxSAT-based repair
    backend); by default a fresh one is created. *)
val create : ?solver:Sat.Solver.t -> Bounds.t -> t
val solver : t -> Sat.Solver.t
val bounds : t -> Bounds.t

exception Unsupported of string
(** Raised on ill-formed input: unbound relation names, arity abuse,
    unbound variables, or atoms outside the universe. *)

val assert_formula : t -> Ast.formula -> unit
(** Translate the formula and assert it (conjunctively with previous
    assertions) in the solver. *)

val formula_lit : t -> Ast.formula -> Sat.Lit.t
(** Translate the formula to a literal equivalent to it (for use in
    assumptions), without asserting it. *)

val primary_var : t -> Mdl.Ident.t -> Rel.Tuple.t -> Sat.Lit.var option
(** The primary variable deciding this tuple's membership, when the
    tuple lies in [upper \ lower] of the given relation and the
    matrix has been materialized. Matrices for every relation
    mentioned in an asserted formula are materialized; call
    {!materialize} for relations only referenced by the decoder. *)

val materialize : t -> Mdl.Ident.t -> unit
(** Force creation of the relation's matrix (and primary variables). *)

val fold_primaries :
  t -> (Mdl.Ident.t -> Rel.Tuple.t -> Sat.Lit.var -> 'a -> 'a) -> 'a -> 'a
(** Iterate the primary-variable registry. *)

val decode : t -> Instance.t
(** Read the model of the last satisfiable [solve] off the solver:
    each bound relation's value is its lower bound plus the optional
    tuples whose primary variable is true. *)

val decode_with : t -> (Sat.Lit.var -> bool) -> Instance.t
(** Like {!decode} with an explicit valuation (e.g. a MaxSAT model
    snapshot). *)

type stats = {
  primary_vars : int;  (** free tuples, i.e. the search space bits *)
  vars : int;  (** total SAT variables (primaries + Tseitin + shared) *)
  clauses : int;  (** problem clauses in the underlying solver *)
  relations : int;  (** relation matrices materialized *)
  formulas : int;  (** translation entry points run (materialize/assert) *)
  translate_time : float;  (** wall seconds spent translating *)
}

val stats : t -> stats
(** Translation-size and -time telemetry. [vars]/[clauses] read the
    underlying solver, so with a shared solver they cover everything
    encoded into it. *)

val pp_stats : Format.formatter -> stats -> unit
