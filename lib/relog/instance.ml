module Ident = Mdl.Ident

type t = {
  universe : Rel.Universe.t;
  rels : Rel.Tupleset.t Ident.Map.t;
}

let make universe = { universe; rels = Ident.Map.empty }
let universe i = i.universe
let set i r ts = { i with rels = Ident.Map.add r ts i.rels }

let get i r =
  match Ident.Map.find_opt r i.rels with
  | Some ts -> ts
  | None -> Rel.Tupleset.empty

let mem i r = Ident.Map.mem r i.rels

let relations i =
  Ident.Map.bindings i.rels
  |> List.sort (fun (a, _) (b, _) -> Ident.compare_name a b)

let union_all a b =
  let rels =
    Ident.Map.union
      (fun r x y ->
        if Rel.Tupleset.equal x y then Some x
        else
          invalid_arg
            (Printf.sprintf "Instance.union_all: relation %s bound twice"
               (Ident.name r)))
      a.rels b.rels
  in
  { universe = a.universe; rels }

let pp ppf i =
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun (r, ts) ->
      Format.fprintf ppf "%a = %a@," Ident.pp r (Rel.Tupleset.pp i.universe) ts)
    (relations i);
  Format.fprintf ppf "@]"
