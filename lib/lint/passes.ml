module Ident = Mdl.Ident
module MM = Mdl.Metamodel
module Ast = Qvtr.Ast
module Dependency = Qvtr.Dependency

let diag = Diagnostic.make

(* ------------------------------------------------------------------ *)
(* Shared shape helpers                                                *)

let relation_calls (r : Ast.relation) =
  List.concat_map
    (fun (c : Ast.clause) -> Ast.pred_calls c.Ast.c_pred)
    (r.Ast.r_when @ r.Ast.r_where)

(* The metamodel bound to a model parameter, resolved through the
   transformation's parameter list. *)
let mm_of_param (t : Ast.transformation) metamodels p =
  match Ast.find_param t p with
  | None -> None
  | Some par ->
    Option.map snd
      (List.find_opt (fun (n, _) -> Ident.equal n par.Ast.par_mm) metamodels)

(* Variables used by a template's property values (not the variables
   it binds). *)
let rec template_used (tpl : Ast.template) acc =
  List.fold_left
    (fun acc (prop : Ast.property) ->
      match prop.Ast.p_value with
      | Ast.PV_expr e -> Ident.Set.union (Ast.oexpr_vars e) acc
      | Ast.PV_template nested -> template_used nested acc)
    acc tpl.Ast.t_props

let clause_vars clauses =
  List.fold_left
    (fun acc (c : Ast.clause) -> Ident.Set.union (Ast.pred_vars c.Ast.c_pred) acc)
    Ident.Set.empty clauses

(* ------------------------------------------------------------------ *)
(* W001: relations unreachable from any top relation                   *)

let unreachable_relations (t : Ast.transformation) =
  let tops =
    List.filter_map
      (fun (r : Ast.relation) -> if r.Ast.r_top then Some r.Ast.r_name else None)
      t.Ast.t_relations
  in
  let rec reach seen = function
    | [] -> seen
    | name :: rest ->
      if Ident.Set.mem name seen then reach seen rest
      else
        let seen = Ident.Set.add name seen in
        let callees =
          match Ast.find_relation t name with
          | None -> []
          | Some r -> relation_calls r
        in
        reach seen (callees @ rest)
  in
  let reachable = reach Ident.Set.empty tops in
  List.filter_map
    (fun (r : Ast.relation) ->
      if (not r.Ast.r_top) && not (Ident.Set.mem r.Ast.r_name reachable) then
        Some
          (diag ~code:"W001" ~loc:r.Ast.r_loc ~relation:r.Ast.r_name
             (Printf.sprintf
                "relation %s is not invoked from any top relation; it never \
                 constrains the models"
                (Ident.name r.Ast.r_name)))
      else None)
    t.Ast.t_relations

(* ------------------------------------------------------------------ *)
(* W002: redundant dependencies (entailed by the rest of the block)    *)

let redundant_dependencies (t : Ast.transformation) =
  List.concat_map
    (fun (r : Ast.relation) ->
      match r.Ast.r_deps with
      | [] | [ _ ] -> []
      | deps ->
        List.mapi (fun i d -> (i, d)) deps
        |> List.filter_map (fun (i, (d : Ast.dependency)) ->
               let rest = List.filteri (fun j _ -> j <> i) deps in
               if Dependency.entails rest d then
                 Some
                   (diag ~code:"W002" ~loc:d.Ast.dep_loc ~relation:r.Ast.r_name
                      (Printf.sprintf
                         "dependency %s is entailed by the other dependencies \
                          of the block"
                         (Format.asprintf "%a" Ast.pp_dependency d)))
               else None))
    t.Ast.t_relations

(* ------------------------------------------------------------------ *)
(* W003: model parameters that are never a dependency target — no top
   relation ever checks towards them, so no run of the tool can
   enforce (or even report on) that model.                             *)

let unenforceable_parameters (t : Ast.transformation) =
  let targets =
    List.fold_left
      (fun acc (r : Ast.relation) ->
        if not r.Ast.r_top then acc
        else
          List.fold_left
            (fun acc (d : Ast.dependency) -> Ident.Set.add d.Ast.dep_target acc)
            acc
            (Dependency.effective r))
      Ident.Set.empty t.Ast.t_relations
  in
  List.filter_map
    (fun (p : Ast.param) ->
      if Ident.Set.mem p.Ast.par_name targets then None
      else
        Some
          (diag ~code:"W003" ~loc:p.Ast.par_loc
             (Printf.sprintf
                "model parameter %s is never the target of a top relation's \
                 dependency; its conformance is never checked"
                (Ident.name p.Ast.par_name))))
    t.Ast.t_params

(* ------------------------------------------------------------------ *)
(* W004 / W005: variable usage                                         *)

(* Per-relation usage census: where does each declared variable occur?
   [in_domains] counts domains whose template (bindings or property
   expressions) mention the variable; [in_clauses] covers when/where. *)
let variable_usage (r : Ast.relation) =
  let domain_uses =
    List.map
      (fun (d : Ast.domain) ->
        let bound =
          List.fold_left
            (fun acc (v, _) -> Ident.Set.add v acc)
            Ident.Set.empty
            (Ast.template_vars d.Ast.d_template)
        in
        Ident.Set.union bound (template_used d.Ast.d_template Ident.Set.empty))
      r.Ast.r_domains
  in
  let clause_use = clause_vars (r.Ast.r_when @ r.Ast.r_where) in
  fun v ->
    let in_domains =
      List.length (List.filter (fun s -> Ident.Set.mem v s) domain_uses)
    in
    let in_clauses = Ident.Set.mem v clause_use in
    (in_domains, in_clauses)

let unused_variables (t : Ast.transformation) =
  List.concat_map
    (fun (r : Ast.relation) ->
      let usage = variable_usage r in
      List.filter_map
        (fun (vd : Ast.vardecl) ->
          let in_domains, in_clauses = usage vd.Ast.v_name in
          if in_domains = 0 && not in_clauses then
            Some
              (diag ~code:"W004" ~loc:vd.Ast.v_loc ~relation:r.Ast.r_name
                 (Printf.sprintf "variable %s is declared but never used"
                    (Ident.name vd.Ast.v_name)))
          else None)
        (r.Ast.r_vars @ r.Ast.r_prims))
    t.Ast.t_relations

let single_domain_variables (t : Ast.transformation) =
  List.concat_map
    (fun (r : Ast.relation) ->
      let usage = variable_usage r in
      List.filter_map
        (fun (vd : Ast.vardecl) ->
          let in_domains, in_clauses = usage vd.Ast.v_name in
          if in_domains = 1 && not in_clauses then
            Some
              (diag ~code:"W005" ~loc:vd.Ast.v_loc ~relation:r.Ast.r_name
                 (Printf.sprintf
                    "variable %s is bound in a single domain and used nowhere \
                     else; it relates nothing across models"
                    (Ident.name vd.Ast.v_name)))
          else None)
        r.Ast.r_vars)
    t.Ast.t_relations

(* ------------------------------------------------------------------ *)
(* W006: shadowing of transformation-level names                       *)

let shadowed_names (t : Ast.transformation) =
  let params =
    List.fold_left
      (fun acc (p : Ast.param) -> Ident.Set.add p.Ast.par_name acc)
      Ident.Set.empty t.Ast.t_params
  in
  let relations =
    List.fold_left
      (fun acc (r : Ast.relation) -> Ident.Set.add r.Ast.r_name acc)
      Ident.Set.empty t.Ast.t_relations
  in
  let describe v =
    if Ident.Set.mem v params then Some "model parameter"
    else if Ident.Set.mem v relations then Some "relation"
    else None
  in
  List.concat_map
    (fun (r : Ast.relation) ->
      let decl_diags =
        List.filter_map
          (fun (vd : Ast.vardecl) ->
            match describe vd.Ast.v_name with
            | Some what ->
              Some
                (diag ~code:"W006" ~loc:vd.Ast.v_loc ~relation:r.Ast.r_name
                   (Printf.sprintf "variable %s shadows the %s of the same name"
                      (Ident.name vd.Ast.v_name) what))
            | None -> None)
          (r.Ast.r_vars @ r.Ast.r_prims)
      in
      let template_diags =
        List.concat_map
          (fun (d : Ast.domain) ->
            List.filter_map
              (fun (tpl : Ast.template) ->
                match describe tpl.Ast.t_var with
                | Some what ->
                  Some
                    (diag ~code:"W006" ~loc:tpl.Ast.t_loc ~relation:r.Ast.r_name
                       (Printf.sprintf
                          "template variable %s shadows the %s of the same name"
                          (Ident.name tpl.Ast.t_var) what))
                | None -> None)
              (Ast.template_templates d.Ast.d_template))
          r.Ast.r_domains
      in
      decl_diags @ template_diags)
    t.Ast.t_relations

(* ------------------------------------------------------------------ *)
(* W007: abstract classes in enforceable target templates              *)

let abstract_enforce_templates (t : Ast.transformation) ~metamodels =
  List.concat_map
    (fun (r : Ast.relation) ->
      let targets =
        List.fold_left
          (fun acc (d : Ast.dependency) -> Ident.Set.add d.Ast.dep_target acc)
          Ident.Set.empty
          (Dependency.effective r)
      in
      List.concat_map
        (fun (d : Ast.domain) ->
          if not (d.Ast.d_enforceable && Ident.Set.mem d.Ast.d_model targets)
          then []
          else
            match mm_of_param t metamodels d.Ast.d_model with
            | None -> []
            | Some mm ->
              List.filter_map
                (fun (tpl : Ast.template) ->
                  match MM.find_class mm tpl.Ast.t_class with
                  | Some cls when cls.MM.cls_abstract ->
                    let concrete =
                      Ident.Set.cardinal
                        (MM.concrete_subclasses mm tpl.Ast.t_class)
                    in
                    Some
                      (diag ~code:"W007" ~loc:tpl.Ast.t_loc
                         ~relation:r.Ast.r_name
                         (Printf.sprintf
                            "template over abstract class %s in enforceable \
                             target domain %s: enforcement cannot instantiate \
                             it directly (%d concrete subclass%s)"
                            (Ident.name tpl.Ast.t_class)
                            (Ident.name d.Ast.d_model)
                            concrete
                            (if concrete = 1 then "" else "es")))
                  | _ -> None)
                (Ast.template_templates d.Ast.d_template))
        r.Ast.r_domains)
    t.Ast.t_relations

(* ------------------------------------------------------------------ *)
(* W008: more template values than the feature multiplicity admits     *)

let multiplicity_conflicts (t : Ast.transformation) ~metamodels =
  let distinct_values props =
    (* Syntactic distinctness: two different literals on a [0..1] slot
       can never both hold; two different variables force an equality
       the author probably did not intend. *)
    List.sort_uniq compare
      (List.map
         (fun (p : Ast.property) ->
           match p.Ast.p_value with
           | Ast.PV_expr e -> Format.asprintf "%a" Ast.pp_oexpr e
           | Ast.PV_template tpl -> Ident.name tpl.Ast.t_var)
         props)
  in
  List.concat_map
    (fun (r : Ast.relation) ->
      List.concat_map
        (fun (d : Ast.domain) ->
          match mm_of_param t metamodels d.Ast.d_model with
          | None -> []
          | Some mm ->
            List.concat_map
              (fun (tpl : Ast.template) ->
                (* group this template's properties by feature *)
                let feats =
                  List.sort_uniq Ident.compare
                    (List.map (fun (p : Ast.property) -> p.Ast.p_feature) tpl.Ast.t_props)
                in
                List.filter_map
                  (fun f ->
                    let props =
                      List.filter
                        (fun (p : Ast.property) -> Ident.equal p.Ast.p_feature f)
                        tpl.Ast.t_props
                    in
                    if List.length props < 2 then None
                    else
                      let upper =
                        match MM.find_reference mm tpl.Ast.t_class f with
                        | Some rf -> rf.MM.ref_mult.MM.upper
                        | None -> (
                          match MM.find_attribute mm tpl.Ast.t_class f with
                          | Some a -> a.MM.attr_mult.MM.upper
                          | None -> None)
                      in
                      match upper with
                      | Some u when List.length (distinct_values props) > u ->
                        let offending = List.nth props 1 in
                        Some
                          (diag ~code:"W008" ~loc:offending.Ast.p_loc
                             ~relation:r.Ast.r_name
                             (Printf.sprintf
                                "feature %s of class %s admits at most %d \
                                 value%s but the template binds %d distinct \
                                 ones"
                                (Ident.name f)
                                (Ident.name tpl.Ast.t_class)
                                u
                                (if u = 1 then "" else "s")
                                (List.length (distinct_values props))))
                      | _ -> None)
                  feats)
              (Ast.template_templates d.Ast.d_template))
        r.Ast.r_domains)
    t.Ast.t_relations

(* ------------------------------------------------------------------ *)
(* W009: directional checks that are constant under example models     *)

(* Specialize a formula to a concrete instance: free relations that
   are empty in the instance become [None_], after which
   {!Relog.Simplify} collapses quantifiers over them and constant
   checks surface as [True]/[False]. Purely syntactic — the formula
   is never evaluated, so mixed arities are harmless. *)
let rec specialize_expr inst (e : Relog.Ast.expr) =
  let go = specialize_expr inst in
  match e with
  | Relog.Ast.Rel r ->
    if Relog.Rel.Tupleset.is_empty (Relog.Instance.get inst r) then
      Relog.Ast.None_
    else e
  | Relog.Ast.Var _ | Relog.Ast.Atom _ | Relog.Ast.Univ | Relog.Ast.Iden
  | Relog.Ast.None_ ->
    e
  | Relog.Ast.Union (a, b) -> Relog.Ast.Union (go a, go b)
  | Relog.Ast.Inter (a, b) -> Relog.Ast.Inter (go a, go b)
  | Relog.Ast.Diff (a, b) -> Relog.Ast.Diff (go a, go b)
  | Relog.Ast.Join (a, b) -> Relog.Ast.Join (go a, go b)
  | Relog.Ast.Product (a, b) -> Relog.Ast.Product (go a, go b)
  | Relog.Ast.Transpose a -> Relog.Ast.Transpose (go a)
  | Relog.Ast.Closure a -> Relog.Ast.Closure (go a)
  | Relog.Ast.RClosure a -> Relog.Ast.RClosure (go a)

let rec specialize_formula inst (f : Relog.Ast.formula) =
  let go = specialize_formula inst in
  let goe = specialize_expr inst in
  match f with
  | Relog.Ast.True | Relog.Ast.False -> f
  | Relog.Ast.Subset (a, b) -> Relog.Ast.Subset (goe a, goe b)
  | Relog.Ast.Equal (a, b) -> Relog.Ast.Equal (goe a, goe b)
  | Relog.Ast.Some_ e -> Relog.Ast.Some_ (goe e)
  | Relog.Ast.No e -> Relog.Ast.No (goe e)
  | Relog.Ast.Lone e -> Relog.Ast.Lone (goe e)
  | Relog.Ast.One e -> Relog.Ast.One (goe e)
  | Relog.Ast.Not f -> Relog.Ast.Not (go f)
  | Relog.Ast.And fs -> Relog.Ast.And (List.map go fs)
  | Relog.Ast.Or fs -> Relog.Ast.Or (List.map go fs)
  | Relog.Ast.Implies (a, b) -> Relog.Ast.Implies (go a, go b)
  | Relog.Ast.Iff (a, b) -> Relog.Ast.Iff (go a, go b)
  | Relog.Ast.Forall (bs, f) ->
    Relog.Ast.Forall (List.map (fun (v, d) -> (v, goe d)) bs, go f)
  | Relog.Ast.Exists (bs, f) ->
    Relog.Ast.Exists (List.map (fun (v, d) -> (v, goe d)) bs, go f)

let constant_checks (t : Ast.transformation) ~metamodels ~models =
  match Qvtr.Typecheck.check t ~metamodels with
  | Error _ -> []  (* typecheck errors are reported separately *)
  | Ok info -> (
    match
      Qvtr.Encode.create ~transformation:t ~metamodels ~models ~slack_objects:0
        ()
    with
    | Error _ -> []
    | Ok enc -> (
      try
        let sem = Qvtr.Semantics.create enc info in
        let inst = Qvtr.Encode.check_instance enc in
        List.filter_map
          (fun ((r : Ast.relation), (d : Ast.dependency), f) ->
            match Relog.Simplify.formula (specialize_formula inst f) with
            | Relog.Ast.True ->
              Some
                (diag ~code:"W009" ~loc:r.Ast.r_loc ~relation:r.Ast.r_name
                   (Printf.sprintf
                      "check %s simplifies to TRUE under the given models: \
                       the relation constrains nothing here"
                      (Format.asprintf "%a" Ast.pp_dependency d)))
            | Relog.Ast.False ->
              Some
                (diag ~code:"W009" ~loc:r.Ast.r_loc ~relation:r.Ast.r_name
                   (Printf.sprintf
                      "check %s simplifies to FALSE under the given models: \
                       it can never be satisfied"
                      (Format.asprintf "%a" Ast.pp_dependency d)))
            | _ -> None)
          (Qvtr.Semantics.top_formulas sem)
      with Qvtr.Semantics.Compile_error _ -> []))

(* ------------------------------------------------------------------ *)
(* Assembly                                                            *)

let analyze ?models (t : Ast.transformation) ~metamodels =
  let static =
    unreachable_relations t
    @ redundant_dependencies t
    @ unenforceable_parameters t
    @ unused_variables t
    @ single_domain_variables t
    @ shadowed_names t
    @ abstract_enforce_templates t ~metamodels
    @ multiplicity_conflicts t ~metamodels
  in
  let bounded =
    match models with
    | Some models -> constant_checks t ~metamodels ~models
    | None -> []
  in
  List.stable_sort Diagnostic.compare_by_pos (static @ bounded)
