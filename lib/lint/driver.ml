type config = {
  werror : bool;
  suppress : string list;
  with_passes : bool;
}

let default_config = { werror = false; suppress = []; with_passes = true }

let of_typecheck_error (e : Qvtr.Typecheck.error) =
  Diagnostic.make ~severity:Diagnostic.Error ~loc:e.Qvtr.Typecheck.err_loc
    ?relation:e.Qvtr.Typecheck.err_relation ~code:e.Qvtr.Typecheck.err_code
    e.Qvtr.Typecheck.err_msg

let of_parse_error (loc, msg) =
  Diagnostic.make ~severity:Diagnostic.Error ~loc ~code:"E001" msg

let apply_config config ds =
  let kept =
    List.filter
      (fun (d : Diagnostic.t) ->
        not (List.mem d.Diagnostic.code config.suppress))
      ds
  in
  if not config.werror then kept
  else
    List.map
      (fun (d : Diagnostic.t) ->
        match d.Diagnostic.severity with
        | Diagnostic.Warning -> { d with Diagnostic.severity = Diagnostic.Error }
        | _ -> d)
      kept

let lint_ast ?(config = default_config) ?models t ~metamodels =
  let diags =
    match Qvtr.Typecheck.check t ~metamodels with
    | Error errs -> List.map of_typecheck_error errs
    | Ok _ ->
      if config.with_passes then Passes.analyze ?models t ~metamodels else []
  in
  apply_config config (List.stable_sort Diagnostic.compare_by_pos diags)

let lint_source ?(config = default_config) ?file ?models src ~metamodels =
  match Qvtr.Parser.parse_located ?file src with
  | Error (loc, msg) -> apply_config config [ of_parse_error (loc, msg) ]
  | Ok t -> lint_ast ~config ?models t ~metamodels

let error_count ds =
  List.length
    (List.filter
       (fun (d : Diagnostic.t) -> d.Diagnostic.severity = Diagnostic.Error)
       ds)

let warning_count ds =
  List.length
    (List.filter
       (fun (d : Diagnostic.t) -> d.Diagnostic.severity = Diagnostic.Warning)
       ds)

let summary ds =
  let e = error_count ds and w = warning_count ds in
  let part n what = Printf.sprintf "%d %s%s" n what (if n = 1 then "" else "s") in
  match (e, w) with
  | 0, 0 -> "no diagnostics"
  | 0, w -> part w "warning"
  | e, 0 -> part e "error"
  | e, w -> part e "error" ^ ", " ^ part w "warning"

let render_all ?src ds =
  String.concat "\n" (List.map (fun d -> Diagnostic.render ?src d) ds)
