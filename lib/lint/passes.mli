(** Static-analysis passes over typed QVT-R transformations.

    Each pass is a pure function from the AST (plus metamodels, plus
    — for the bounded pass — example models) to a list of
    {!Diagnostic.t}. Codes:

    - [W001] relation unreachable from any top relation
    - [W002] dependency entailed by the rest of its block
      ({!Qvtr.Dependency.entails})
    - [W003] model parameter never a dependency target of a top
      relation — nothing ever checks towards it
    - [W004] declared variable never used
    - [W005] variable bound in a single domain and used nowhere else
    - [W006] variable shadows a model parameter or relation name
    - [W007] template over an abstract class in an enforceable target
      domain
    - [W008] a template binds more distinct values to a feature than
      its multiplicity upper bound admits
    - [W009] a top directional check simplifies to a constant under
      the given example models ({!Relog.Simplify}) *)

val unreachable_relations : Qvtr.Ast.transformation -> Diagnostic.t list
val redundant_dependencies : Qvtr.Ast.transformation -> Diagnostic.t list
val unenforceable_parameters : Qvtr.Ast.transformation -> Diagnostic.t list
val unused_variables : Qvtr.Ast.transformation -> Diagnostic.t list
val single_domain_variables : Qvtr.Ast.transformation -> Diagnostic.t list
val shadowed_names : Qvtr.Ast.transformation -> Diagnostic.t list

val abstract_enforce_templates :
  Qvtr.Ast.transformation ->
  metamodels:(Mdl.Ident.t * Mdl.Metamodel.t) list ->
  Diagnostic.t list

val multiplicity_conflicts :
  Qvtr.Ast.transformation ->
  metamodels:(Mdl.Ident.t * Mdl.Metamodel.t) list ->
  Diagnostic.t list

val constant_checks :
  Qvtr.Ast.transformation ->
  metamodels:(Mdl.Ident.t * Mdl.Metamodel.t) list ->
  models:(Mdl.Ident.t * Mdl.Model.t) list ->
  Diagnostic.t list

val analyze :
  ?models:(Mdl.Ident.t * Mdl.Model.t) list ->
  Qvtr.Ast.transformation ->
  metamodels:(Mdl.Ident.t * Mdl.Metamodel.t) list ->
  Diagnostic.t list
(** All passes, sorted by source position. [W009] runs only when
    [models] is given. Assumes the transformation typechecks; run
    {!Qvtr.Typecheck.check} first (the {!Driver} does). *)
