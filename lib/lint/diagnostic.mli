(** Source-located diagnostics with stable codes.

    Every diagnostic the toolchain emits — syntax and type errors
    surfaced through {!Driver}, and the static-analysis warnings of
    {!Passes} — is a value of {!t}: a stable code (["E0xx"] errors,
    ["W0xx"] warnings), a severity, a {!Qvtr.Loc.t} source anchor and
    a human message. Stable codes make diagnostics suppressible
    (--suppress W004), promotable (--werror) and machine-readable
    (--json) without string matching. *)

type severity = Error | Warning | Info

val severity_name : severity -> string

type t = {
  code : string;  (** stable code, e.g. ["W004"] *)
  severity : severity;
  loc : Qvtr.Loc.t;  (** {!Qvtr.Loc.none} when no anchor exists *)
  relation : Mdl.Ident.t option;  (** relation at fault, if any *)
  message : string;
}

val make :
  ?severity:severity ->
  ?loc:Qvtr.Loc.t ->
  ?relation:Mdl.Ident.t ->
  code:string ->
  string ->
  t
(** [severity] defaults to [Warning]; prefer {!default_severity} of
    the code. *)

val registry : (string * severity * string) list
(** All (code, default severity, description) triples the toolchain
    can emit. Tests iterate over this to enforce golden coverage. *)

val default_severity : string -> severity
val describe : string -> string option

val compare_by_pos : t -> t -> int
(** Order by (file, line, col, code) — source order for reports. *)

val pp : Format.formatter -> t -> unit
(** One line: ["file:line:col: severity[CODE]: relation R: message"]. *)

val render : ?src:string -> t -> string
(** {!pp}, followed (when [src] is given and the location is known) by
    a two-line source excerpt with a caret under the offending span. *)

val to_json : t -> Obs.Json.t
val list_to_json : t list -> Obs.Json.t
