(** The lint driver: parse, typecheck and analyze a transformation,
    producing a single position-sorted diagnostic stream.

    Severity mapping: parse errors are [E001]; {!Qvtr.Typecheck}
    errors keep their own codes ([E002]–[E005]); {!Passes} warnings
    are [W0xx]. [config.werror] promotes warnings to errors,
    [config.suppress] drops listed codes entirely, and
    [config.with_passes = false] stops after typechecking. *)

type config = {
  werror : bool;  (** promote warnings to errors *)
  suppress : string list;  (** codes to drop, e.g. [["W004"]] *)
  with_passes : bool;  (** run {!Passes} after a clean typecheck *)
}

val default_config : config
(** [{ werror = false; suppress = []; with_passes = true }] *)

val of_typecheck_error : Qvtr.Typecheck.error -> Diagnostic.t
val of_parse_error : Qvtr.Loc.t * string -> Diagnostic.t

val lint_ast :
  ?config:config ->
  ?models:(Mdl.Ident.t * Mdl.Model.t) list ->
  Qvtr.Ast.transformation ->
  metamodels:(Mdl.Ident.t * Mdl.Metamodel.t) list ->
  Diagnostic.t list
(** Typecheck [t]; on success run the analysis passes (the
    model-bounded [W009] pass only when [models] is given). *)

val lint_source :
  ?config:config ->
  ?file:string ->
  ?models:(Mdl.Ident.t * Mdl.Model.t) list ->
  string ->
  metamodels:(Mdl.Ident.t * Mdl.Metamodel.t) list ->
  Diagnostic.t list
(** {!lint_ast} preceded by {!Qvtr.Parser.parse_located}; a syntax
    error yields a single located [E001]. *)

val error_count : Diagnostic.t list -> int
val warning_count : Diagnostic.t list -> int

val summary : Diagnostic.t list -> string
(** e.g. ["2 errors, 1 warning"] or ["no diagnostics"]. *)

val render_all : ?src:string -> Diagnostic.t list -> string
(** One rendered diagnostic per line; with [src], each carries its
    caret excerpt. *)
