module Ident = Mdl.Ident
module Loc = Qvtr.Loc

type severity = Error | Warning | Info

let severity_name = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"

type t = {
  code : string;
  severity : severity;
  loc : Loc.t;
  relation : Ident.t option;
  message : string;
}

let make ?(severity = Warning) ?(loc = Loc.none) ?relation ~code message =
  { code; severity; loc; relation; message }

(* The stable code registry. Every diagnostic the toolchain can emit
   appears here; tests iterate over it to guarantee golden coverage. *)
let registry =
  [
    ("E001", Error, "syntax error");
    ("E002", Error, "type or name error");
    ("E003", Error, "invalid checking dependency");
    ("E004", Error, "recursive relation invocation");
    ("E005", Error, "direction-incompatible relation call");
    ("W001", Warning, "relation unreachable from any top relation");
    ("W002", Warning, "redundant checking dependency (entailed by the rest)");
    ("W003", Warning, "model parameter is never a dependency target");
    ("W004", Warning, "unused declared variable");
    ("W005", Warning, "variable bound in only one domain");
    ("W006", Warning, "variable shadows a parameter or relation name");
    ("W007", Warning, "abstract class in an enforceable target template");
    ("W008", Warning, "more template values than the feature multiplicity admits");
    ("W009", Warning, "directional check is constant under the given models");
  ]

let default_severity code =
  match List.find_opt (fun (c, _, _) -> c = code) registry with
  | Some (_, sev, _) -> sev
  | None -> Warning

let describe code =
  match List.find_opt (fun (c, _, _) -> c = code) registry with
  | Some (_, _, d) -> Some d
  | None -> None

let compare_by_pos a b =
  let by_file = compare a.loc.Loc.file b.loc.Loc.file in
  if by_file <> 0 then by_file
  else
    let by_line = compare a.loc.Loc.line b.loc.Loc.line in
    if by_line <> 0 then by_line
    else
      let by_col = compare a.loc.Loc.col b.loc.Loc.col in
      if by_col <> 0 then by_col else compare a.code b.code

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)

let pp_oneline ppf d =
  if not (Loc.is_none d.loc) then Format.fprintf ppf "%a: " Loc.pp d.loc;
  Format.fprintf ppf "%s[%s]: " (severity_name d.severity) d.code;
  (match d.relation with
  | Some r -> Format.fprintf ppf "relation %a: " Ident.pp r
  | None -> ());
  Format.pp_print_string ppf d.message

let pp = pp_oneline

let render ?src d =
  let line = Format.asprintf "%a" pp_oneline d in
  match src with
  | Some src when not (Loc.is_none d.loc) -> (
    match Loc.excerpt ~src d.loc with
    | Some excerpt -> line ^ "\n" ^ excerpt
    | None -> line)
  | _ -> line

let to_json d =
  let base =
    [
      ("code", Obs.Json.String d.code);
      ("severity", Obs.Json.String (severity_name d.severity));
      ("message", Obs.Json.String d.message);
    ]
  in
  let loc =
    if Loc.is_none d.loc then []
    else
      [
        ( "loc",
          Obs.Json.Obj
            ([
               ("line", Obs.Json.Int d.loc.Loc.line);
               ("col", Obs.Json.Int d.loc.Loc.col);
             ]
            @ (if d.loc.Loc.file = "" then []
               else [ ("file", Obs.Json.String d.loc.Loc.file) ])) );
      ]
  in
  let rel =
    match d.relation with
    | Some r -> [ ("relation", Obs.Json.String (Ident.name r)) ]
    | None -> []
  in
  Obs.Json.Obj (base @ loc @ rel)

let list_to_json ds = Obs.Json.List (List.map to_json ds)
