type ctx = {
  solver : Solver.t;
  cache : (int, Lit.t) Hashtbl.t;  (* circuit node id -> definition literal *)
  mutable true_lit : Lit.t option;  (* lazily created constant *)
}

let create solver = { solver; cache = Hashtbl.create 256; true_lit = None }
let solver ctx = ctx.solver

let constant_true ctx =
  match ctx.true_lit with
  | Some l -> l
  | None ->
    let v = Solver.new_var ctx.solver in
    let l = Lit.pos v in
    Solver.add_clause ctx.solver [ l ];
    ctx.true_lit <- Some l;
    l

let rec lit_of ctx node =
  match Hashtbl.find_opt ctx.cache (Circuit.id node) with
  | Some l -> l
  | None ->
    let l =
      match Circuit.view node with
      | Circuit.True -> constant_true ctx
      | Circuit.False -> Lit.neg (constant_true ctx)
      | Circuit.Input l -> l
      | Circuit.Not n -> Lit.neg (lit_of ctx n)
      | Circuit.And children ->
        let ls = Array.map (lit_of ctx) children in
        let g = Lit.pos (Solver.new_var ctx.solver) in
        (* g -> c_i *)
        Array.iter (fun c -> Solver.add_clause ctx.solver [ Lit.neg g; c ]) ls;
        (* /\ c_i -> g *)
        Solver.add_clause ctx.solver
          (g :: Array.to_list (Array.map Lit.neg ls));
        g
      | Circuit.Or children ->
        let ls = Array.map (lit_of ctx) children in
        let g = Lit.pos (Solver.new_var ctx.solver) in
        (* c_i -> g *)
        Array.iter (fun c -> Solver.add_clause ctx.solver [ Lit.neg c; g ]) ls;
        (* g -> \/ c_i *)
        Solver.add_clause ctx.solver (Lit.neg g :: Array.to_list ls);
        g
    in
    Hashtbl.replace ctx.cache (Circuit.id node) l;
    l

let rec assert_true ctx node =
  match Circuit.view node with
  | Circuit.True -> ()
  | Circuit.False -> Solver.add_clause ctx.solver []
  | Circuit.Input l -> Solver.add_clause ctx.solver [ l ]
  | Circuit.Not n -> assert_false ctx n
  | Circuit.And children -> Array.iter (assert_true ctx) children
  | Circuit.Or children ->
    Solver.add_clause ctx.solver (Array.to_list (Array.map (lit_of ctx) children))

and assert_false ctx node =
  match Circuit.view node with
  | Circuit.True -> Solver.add_clause ctx.solver []
  | Circuit.False -> ()
  | Circuit.Input l -> Solver.add_clause ctx.solver [ Lit.neg l ]
  | Circuit.Not n -> assert_true ctx n
  | Circuit.Or children -> Array.iter (assert_false ctx) children
  | Circuit.And children ->
    Solver.add_clause ctx.solver
      (Array.to_list (Array.map (fun c -> Lit.neg (lit_of ctx c)) children))
