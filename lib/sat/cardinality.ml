type t = {
  inputs : int;
  outputs : Lit.t array;  (* outputs.(k-1) = o_k; length = min (inputs, cap+1) *)
  cap : int;  (* largest bound the encoding can express *)
  aux_vars : int;  (* solver variables allocated by [build] *)
  aux_clauses : int;  (* solver clauses added by [build] *)
  saved_vars : int;  (* variables avoided w.r.t. the full-width build *)
  saved_clauses : int;
}

(* Merge two sorted unary counters [a] and [b] into [r], adding the
   upper-bound clauses  a_i ∧ b_j → r_{i+j}  (with the i=0 / j=0
   degenerate cases a_i → r_i and b_j → r_j).

   With a width cap [w] (k-bounded totalizer), [r] is truncated to its
   first [w] outputs and every pair summing past the top is dropped:
   counts beyond the cap need not be distinguished, only detected, and
   a smaller kept pair already detects them. Completeness of the
   truncated encoding (by induction over the tree): a node whose
   children force their first fa and fb outputs unit-propagates every
   output up to min(fa+fb, w) — index m < min(fa+fb, w) is hit by a
   row clause (m < fa or m < fb) or by the kept pair (i, j) with
   i + j + 1 = m, i < fa, j < fb. In particular the top output r_{w-1}
   fires whenever fa + fb >= w, so overflowing counts still refute
   every expressible bound. *)
let merge ~width solver a b =
  let na = Array.length a and nb = Array.length b in
  let w = min (na + nb) width in
  let r = Array.init w (fun _ -> Lit.pos (Solver.new_var solver)) in
  for i = 0 to na - 1 do
    Solver.add_clause solver [ Lit.neg a.(i); r.(i) ]
  done;
  for j = 0 to nb - 1 do
    Solver.add_clause solver [ Lit.neg b.(j); r.(j) ]
  done;
  for i = 0 to na - 1 do
    for j = 0 to nb - 1 do
      if i + j + 1 < w then
        Solver.add_clause solver [ Lit.neg a.(i); Lit.neg b.(j); r.(i + j + 1) ]
    done
  done;
  r

let rec totalize ~width solver inputs =
  match Array.length inputs with
  | 0 -> [||]
  | 1 -> inputs
  | n ->
    let mid = n / 2 in
    let left = totalize ~width solver (Array.sub inputs 0 mid) in
    let right = totalize ~width solver (Array.sub inputs mid (n - mid)) in
    merge ~width solver left right

(* Variable/clause cost of the uncapped build, for the savings
   telemetry. Mirrors the [totalize] recursion exactly. *)
let rec full_cost n =
  if n <= 1 then (0, 0)
  else begin
    let mid = n / 2 in
    let va, ca = full_cost mid in
    let vb, cb = full_cost (n - mid) in
    (va + vb + n, ca + cb + n + (mid * (n - mid)))
  end

let build ?cap solver lits =
  let inputs = Array.of_list lits in
  let n = Array.length inputs in
  let cap = match cap with None -> max 0 (n - 1) | Some c -> c in
  if cap < 0 then invalid_arg "Cardinality.build: negative cap";
  let width = min n (cap + 1) in
  let vars0 = Solver.nb_vars solver and clauses0 = Solver.nb_clauses solver in
  let outputs = totalize ~width:(max 1 width) solver inputs in
  let aux_vars = Solver.nb_vars solver - vars0 in
  let aux_clauses = Solver.nb_clauses solver - clauses0 in
  let full_vars, full_clauses = full_cost n in
  {
    inputs = n;
    outputs;
    cap;
    aux_vars;
    aux_clauses;
    saved_vars = max 0 (full_vars - aux_vars);
    saved_clauses = max 0 (full_clauses - aux_clauses);
  }

let count t = t.inputs
let cap t = t.cap
let aux_vars t = t.aux_vars
let aux_clauses t = t.aux_clauses
let saved_vars t = t.saved_vars
let saved_clauses t = t.saved_clauses

let output t k =
  if k < 1 || k > Array.length t.outputs then
    invalid_arg "Cardinality.output: index out of range (truncated at cap + 1)";
  t.outputs.(k - 1)

let at_most t k =
  if k < 0 then invalid_arg "Cardinality.at_most: negative bound";
  if k >= t.inputs then []
  else if k > t.cap then invalid_arg "Cardinality.at_most: bound exceeds build cap"
  else [ Lit.neg t.outputs.(k) ]

let assert_at_most solver t k =
  if k < 0 then invalid_arg "Cardinality.assert_at_most: negative bound";
  if k < t.inputs then begin
    if k > t.cap then invalid_arg "Cardinality.assert_at_most: bound exceeds build cap";
    for j = k to Array.length t.outputs - 1 do
      Solver.add_clause solver [ Lit.neg t.outputs.(j) ]
    done
  end
