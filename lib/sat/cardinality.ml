type t = {
  inputs : int;
  outputs : Lit.t array;  (* outputs.(k-1) = o_k *)
  aux_vars : int;  (* solver variables allocated by [build] *)
  aux_clauses : int;  (* solver clauses added by [build] *)
}

(* Merge two sorted unary counters [a] and [b] into [r], adding the
   upper-bound clauses  a_i ∧ b_j → r_{i+j}  (with the i=0 / j=0
   degenerate cases a_i → r_i and b_j → r_j). *)
let merge solver a b =
  let na = Array.length a and nb = Array.length b in
  let r = Array.init (na + nb) (fun _ -> Lit.pos (Solver.new_var solver)) in
  for i = 0 to na - 1 do
    Solver.add_clause solver [ Lit.neg a.(i); r.(i) ]
  done;
  for j = 0 to nb - 1 do
    Solver.add_clause solver [ Lit.neg b.(j); r.(j) ]
  done;
  for i = 0 to na - 1 do
    for j = 0 to nb - 1 do
      Solver.add_clause solver [ Lit.neg a.(i); Lit.neg b.(j); r.(i + j + 1) ]
    done
  done;
  r

let rec totalize solver inputs =
  match Array.length inputs with
  | 0 -> [||]
  | 1 -> inputs
  | n ->
    let mid = n / 2 in
    let left = totalize solver (Array.sub inputs 0 mid) in
    let right = totalize solver (Array.sub inputs mid (n - mid)) in
    merge solver left right

let build solver lits =
  let inputs = Array.of_list lits in
  let vars0 = Solver.nb_vars solver and clauses0 = Solver.nb_clauses solver in
  let outputs = totalize solver inputs in
  {
    inputs = Array.length inputs;
    outputs;
    aux_vars = Solver.nb_vars solver - vars0;
    aux_clauses = Solver.nb_clauses solver - clauses0;
  }

let count t = t.inputs
let aux_vars t = t.aux_vars
let aux_clauses t = t.aux_clauses

let output t k =
  if k < 1 || k > t.inputs then invalid_arg "Cardinality.output: index out of range";
  t.outputs.(k - 1)

let at_most t k =
  if k < 0 then invalid_arg "Cardinality.at_most: negative bound";
  if k >= t.inputs then [] else [ Lit.neg t.outputs.(k) ]

let assert_at_most solver t k =
  if k < 0 then invalid_arg "Cardinality.assert_at_most: negative bound";
  for j = k to t.inputs - 1 do
    Solver.add_clause solver [ Lit.neg t.outputs.(j) ]
  done
