type t = {
  solver : Solver.t;
  mutable relax : (Lit.t * int) list;  (* relaxation literal, weight *)
  mutable n_soft : int;
  mutable model : bool array;  (* snapshot of the best model found *)
  (* Clause accounting. [Solver.nb_clauses] counts every clause in the
     database, including the relaxed soft clauses and the totalizer
     clauses added during [solve]; these explicit counters keep the
     hard/soft/auxiliary split exact across repeated solves. *)
  mutable soft_clauses : int;  (* database clauses added by [add_soft] *)
  mutable aux_clauses : int;  (* totalizer clauses added by [solve] *)
  mutable aux_vars : int;  (* totalizer variables added by [solve] *)
  mutable saved_vars : int;  (* avoided by the k-bounded truncation *)
  mutable saved_clauses : int;
}

let create () =
  {
    solver = Solver.create ();
    relax = [];
    n_soft = 0;
    model = [||];
    soft_clauses = 0;
    aux_clauses = 0;
    aux_vars = 0;
    saved_vars = 0;
    saved_clauses = 0;
  }

let of_solver solver =
  {
    solver;
    relax = [];
    n_soft = 0;
    model = [||];
    soft_clauses = 0;
    aux_clauses = 0;
    aux_vars = 0;
    saved_vars = 0;
    saved_clauses = 0;
  }

let solver t = t.solver
let new_var t = Solver.new_var t.solver
let add_hard t lits = Solver.add_clause t.solver lits

let add_soft t ~weight lits =
  if weight <= 0 then invalid_arg "Maxsat.add_soft: weight must be positive";
  let r = Lit.pos (Solver.new_var t.solver) in
  let clauses0 = Solver.nb_clauses t.solver in
  Solver.add_clause t.solver (r :: lits);
  t.soft_clauses <- t.soft_clauses + (Solver.nb_clauses t.solver - clauses0);
  t.relax <- (r, weight) :: t.relax;
  t.n_soft <- t.n_soft + 1

type outcome =
  | Optimum of int
  | Hard_unsat

let snapshot t =
  t.model <-
    Array.init (Solver.nb_vars t.solver) (fun v -> Solver.value t.solver v)

(* Cost of the snapshot: total weight of true relaxation literals.
   This upper-bounds the true cost (the solver may set a relaxation
   variable even when its clause is satisfied), which is all the
   downward search needs. *)
let snapshot_cost t =
  List.fold_left
    (fun acc (r, w) -> if t.model.(Lit.var r) then acc + w else acc)
    0 t.relax

let solve t =
  match Solver.solve t.solver with
  | Solver.Unsat -> Hard_unsat
  | Solver.Sat ->
    snapshot t;
    let cost0 = snapshot_cost t in
    if t.relax = [] || cost0 = 0 then Optimum 0
    else begin
      (* Weighted inputs expand into [weight] copies, so totalizer
         outputs count total weight. The descent only ever probes
         bounds below the initial cost, so the totalizer can be
         k-bounded there — a large saving when the first model is
         already near-optimal. *)
      let inputs =
        List.concat_map (fun (r, w) -> List.init w (fun _ -> r)) t.relax
      in
      let card = Cardinality.build ~cap:(cost0 - 1) t.solver inputs in
      t.aux_clauses <- t.aux_clauses + Cardinality.aux_clauses card;
      t.aux_vars <- t.aux_vars + Cardinality.aux_vars card;
      t.saved_vars <- t.saved_vars + Cardinality.saved_vars card;
      t.saved_clauses <- t.saved_clauses + Cardinality.saved_clauses card;
      (* SAT-driven descent from the initial model's cost: each SAT
         tightens the bound, the final UNSAT proves optimality. *)
      let rec descend best =
        if best = 0 then Optimum 0
        else
          match
            Solver.solve ~assumptions:(Cardinality.at_most card (best - 1)) t.solver
          with
          | Solver.Unsat -> Optimum best
          | Solver.Sat ->
            snapshot t;
            let cost = snapshot_cost t in
            descend (min cost (best - 1))
      in
      descend cost0
    end

let value t v = v < Array.length t.model && t.model.(v)
let soft_count t = t.n_soft
let hard_count t = Solver.nb_clauses t.solver - t.soft_clauses - t.aux_clauses

type clause_counts = {
  hard : int;
  soft : int;
  aux : int;
  aux_vars : int;
  saved_vars : int;
  saved_clauses : int;
}

let clause_counts t =
  {
    hard = hard_count t;
    soft = t.soft_clauses;
    aux = t.aux_clauses;
    aux_vars = t.aux_vars;
    saved_vars = t.saved_vars;
    saved_clauses = t.saved_clauses;
  }
