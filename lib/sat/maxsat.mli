(** Weighted partial MaxSAT.

    Finds an assignment satisfying all hard clauses while minimizing
    the total weight of falsified soft clauses. This is the optimizing
    backend the paper's §3 refers to via the PMax-SAT extension of
    Echo (Cunha, Macedo & Guimarães, FASE'14): "keep this tuple as it
    was" becomes a soft clause, so the optimum is a least-change
    repair.

    Algorithm: each soft clause gets a relaxation variable; relaxation
    variables enter a totalizer (duplicated [weight] times), and the
    solver searches upward from cost 0 using solver assumptions —
    mirroring Echo's "increasing distance" iteration — until the first
    satisfiable bound, which is the optimum. *)

type t

val create : unit -> t

val of_solver : Solver.t -> t
(** Wrap an existing solver (whose clauses become hard clauses). *)

val solver : t -> Solver.t

val new_var : t -> Lit.var

val add_hard : t -> Lit.t list -> unit
val add_soft : t -> weight:int -> Lit.t list -> unit
(** [weight] must be positive. *)

type outcome =
  | Optimum of int  (** minimal total weight of falsified soft clauses *)
  | Hard_unsat

val solve : t -> outcome
(** Solving is one-shot per instance mutation: further clauses may be
    added afterwards and [solve] called again (a fresh totalizer is
    built each time). *)

val value : t -> Lit.var -> bool
(** Model access after [Optimum]. *)

val soft_count : t -> int
(** Number of soft constraints added with {!add_soft}. *)

val hard_count : t -> int
(** Hard clauses currently in the solver database: everything that is
    neither a relaxed soft clause nor a totalizer clause added during
    {!solve}. Stable across solves — the auxiliary cardinality
    clauses are accounted separately (see {!clause_counts}). *)

type clause_counts = {
  hard : int;  (** hard clauses (consistency + structure + blocking) *)
  soft : int;  (** relaxed soft clauses in the database *)
  aux : int;  (** totalizer clauses added by {!solve} *)
  aux_vars : int;  (** totalizer variables added by {!solve} *)
  saved_vars : int;
      (** totalizer variables avoided by k-bounding at the initial
          model's cost *)
  saved_clauses : int;  (** totalizer clauses avoided likewise *)
}

val clause_counts : t -> clause_counts
(** The exact hard/soft/auxiliary split of the clause database. *)
