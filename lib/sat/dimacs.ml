let to_string ~nvars clauses =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "p cnf %d %d\n" nvars (List.length clauses));
  List.iter
    (fun clause ->
      List.iter (fun l -> Buffer.add_string buf (string_of_int (Lit.to_int l) ^ " ")) clause;
      Buffer.add_string buf "0\n")
    clauses;
  Buffer.contents buf

let parse src =
  let lines = String.split_on_char '\n' src in
  let nvars = ref 0 in
  let declared = ref None in  (* (vars, clauses) from the [p cnf] header *)
  let max_var = ref 0 in  (* highest 1-based variable used in the body *)
  let clauses = ref [] in
  let n_clauses = ref 0 in
  let current = ref [] in
  let error = ref None in
  let fail fmt = Printf.ksprintf (fun s -> error := Some s) fmt in
  let handle_token tok =
    match int_of_string_opt tok with
    | None -> fail "bad token %S" tok
    | Some 0 ->
      clauses := List.rev !current :: !clauses;
      incr n_clauses;
      current := []
    | Some n ->
      if abs n > !max_var then max_var := abs n;
      current := Lit.of_int n :: !current
  in
  List.iter
    (fun line ->
      if !error = None then
        let line = String.trim line in
        if line = "" || line.[0] = 'c' then ()
        else if line.[0] = 'p' then begin
          (* Any line starting with 'p' is a problem line — including a
             bare "p", which must not fall through to the token loop. *)
          match String.split_on_char ' ' line |> List.filter (fun s -> s <> "") with
          | [ "p"; "cnf"; v; c ] -> (
            if !declared <> None then fail "duplicate p header %S" line
            else
              match (int_of_string_opt v, int_of_string_opt c) with
              | Some v, Some c when v >= 0 && c >= 0 ->
                nvars := v;
                declared := Some (v, c)
              | Some _, Some _ ->
                fail "bad p header %S: negative variable or clause count" line
              | _ -> fail "bad p header %S: counts must be integers" line)
          | _ -> fail "bad p header %S: expected \"p cnf <vars> <clauses>\"" line
        end
        else
          String.split_on_char ' ' line
          |> List.filter (fun s -> s <> "")
          |> List.iter handle_token)
    lines;
  (match (!error, !current) with
  | None, _ :: _ ->
    fail "unterminated clause at end of input (missing terminating 0)"
  | _ -> ());
  (match (!error, !declared) with
  | None, Some (v, c) ->
    if !n_clauses <> c then
      fail "header declares %d clauses but the body has %d" c !n_clauses
    else if !max_var > v then
      fail "clause uses variable %d but the header declares only %d" !max_var v
  | _ -> ());
  match !error with
  | Some e -> Error e
  | None ->
    if !max_var > !nvars then nvars := !max_var;
    Ok (!nvars, List.rev !clauses)

let load_into solver src =
  match parse src with
  | Error _ as e -> e
  | Ok (nvars, clauses) ->
    let needed =
      List.fold_left
        (fun acc c -> List.fold_left (fun acc l -> max acc (Lit.var l + 1)) acc c)
        nvars clauses
    in
    while Solver.nb_vars solver < needed do
      ignore (Solver.new_var solver)
    done;
    List.iter (Solver.add_clause solver) clauses;
    Ok ()
