let to_string ~nvars clauses =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "p cnf %d %d\n" nvars (List.length clauses));
  List.iter
    (fun clause ->
      List.iter (fun l -> Buffer.add_string buf (string_of_int (Lit.to_int l) ^ " ")) clause;
      Buffer.add_string buf "0\n")
    clauses;
  Buffer.contents buf

let parse src =
  let lines = String.split_on_char '\n' src in
  let nvars = ref 0 in
  let clauses = ref [] in
  let current = ref [] in
  let error = ref None in
  let handle_token tok =
    match int_of_string_opt tok with
    | None -> error := Some (Printf.sprintf "bad token %S" tok)
    | Some 0 ->
      clauses := List.rev !current :: !clauses;
      current := []
    | Some n -> current := Lit.of_int n :: !current
  in
  List.iter
    (fun line ->
      if !error = None then
        let line = String.trim line in
        if line = "" || line.[0] = 'c' then ()
        else if String.length line > 1 && line.[0] = 'p' then begin
          match String.split_on_char ' ' line |> List.filter (fun s -> s <> "") with
          | [ "p"; "cnf"; v; _ ] -> (
            match int_of_string_opt v with
            | Some v -> nvars := v
            | None -> error := Some "bad p header")
          | _ -> error := Some "bad p header"
        end
        else
          String.split_on_char ' ' line
          |> List.filter (fun s -> s <> "")
          |> List.iter handle_token)
    lines;
  match !error with
  | Some e -> Error e
  | None ->
    if !current <> [] then clauses := List.rev !current :: !clauses;
    Ok (!nvars, List.rev !clauses)

let load_into solver src =
  match parse src with
  | Error _ as e -> e
  | Ok (nvars, clauses) ->
    let needed =
      List.fold_left
        (fun acc c -> List.fold_left (fun acc l -> max acc (Lit.var l + 1)) acc c)
        nvars clauses
    in
    while Solver.nb_vars solver < needed do
      ignore (Solver.new_var solver)
    done;
    List.iter (Solver.add_clause solver) clauses;
    Ok ()
