(** Totalizer cardinality constraints.

    Builds, for input literals [x₁..xₙ], output literals [o₁..oₙ]
    such that the clauses force [oₖ] whenever at least [k] inputs are
    true (the upper-bound direction of the totalizer of Bailleux &
    Boufkhad). Asserting [¬oₖ₊₁] — directly or as a solver
    assumption — then caps the count at [k].

    The enforcement engine uses this twice: the iterative Echo-style
    repair asserts increasing bounds as assumptions over one shared
    encoding, and the MaxSAT solver bounds relaxation variables the
    same way. *)

type t

val build : ?cap:int -> Solver.t -> Lit.t list -> t
(** Encode the totalizer tree for these inputs. O(n log n) auxiliary
    variables and O(n²) clauses.

    [?cap] builds the k-bounded variant: callers that will never ask
    for a bound above [cap] (e.g. a repair search with a distance
    cap) get every unary counter truncated at [cap + 1] outputs —
    counts beyond the cap are detected but not distinguished — which
    drops aux variables and merge clauses; the savings are reported
    by {!saved_vars}/{!saved_clauses}. Bounds above [cap] are then
    rejected by {!at_most}/{!assert_at_most}/{!output}. *)

val count : t -> int
(** Number of inputs [n]. *)

val cap : t -> int
(** Largest bound the encoding can express ([n - 1] when built
    without [?cap]). *)

val aux_vars : t -> int
(** Auxiliary solver variables allocated by {!build} for this
    totalizer (circuit-size telemetry). *)

val aux_clauses : t -> int
(** Solver clauses added by {!build} for this totalizer. *)

val saved_vars : t -> int
(** Auxiliary variables the [?cap] truncation avoided relative to the
    full-width build (0 when built uncapped). *)

val saved_clauses : t -> int
(** Merge clauses the [?cap] truncation avoided. *)

val output : t -> int -> Lit.t
(** [output t k] (1-based, [1 <= k <= count t]) is [oₖ]: true when at
    least [k] inputs are true. *)

val at_most : t -> int -> Lit.t list
(** Assumption literals capping the true-input count at [k]:
    [[¬oₖ₊₁]], or [[]] when [k >= count t]. Raises
    [Invalid_argument] on negative [k]. *)

val assert_at_most : Solver.t -> t -> int -> unit
(** Permanently cap the count (adds unit clauses [¬oⱼ] for
    [j > k]). *)
