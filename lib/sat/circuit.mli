(** Hash-consed boolean circuits.

    The relational translation ({!Relog.Translate}) produces boolean
    formulas with massive sharing (the same sub-matrix entry appears in
    many composite expressions). Circuits are hash-consed so shared
    subterms are built — and later CNF-encoded — exactly once.

    Constructors perform light simplification: constant folding,
    flattening of nested [And]/[Or], unit absorption and
    double-negation elimination. *)

type t
(** A circuit node. Nodes from the same {!builder} with equal structure
    are physically equal. *)

type view =
  | True
  | False
  | Input of Lit.t
  | Not of t
  | And of t array
  | Or of t array

type builder
(** The hash-consing context. *)

val builder : unit -> builder

val view : t -> view
val id : t -> int
(** Unique id within a builder; usable as a hash key. *)

val tru : builder -> t
val fls : builder -> t
val input : builder -> Lit.t -> t
val not_ : builder -> t -> t
val and_ : builder -> t list -> t
val or_ : builder -> t list -> t
val implies : builder -> t -> t -> t
val iff : builder -> t -> t -> t
val xor : builder -> t -> t -> t
val ite : builder -> t -> t -> t -> t

val is_true : t -> bool
val is_false : t -> bool

val size : t -> int
(** Number of distinct nodes reachable from this node. *)

val pp : Format.formatter -> t -> unit
