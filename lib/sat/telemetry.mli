(** Wall-clock plumbing for the instrumentation layer.

    Every phase of the stack (translation, solving, repair) measures
    itself with these helpers so that {!Solver.stats},
    {!Relog.Translate.stats} and the Echo roll-up all report wall
    time on the same clock. *)

val now : unit -> float
(** Wall-clock seconds (epoch-based, monotonic enough for spans). *)

val time : (unit -> 'a) -> 'a * float
(** [time f] runs [f] and returns its result with the elapsed wall
    time in seconds. *)

type span
(** An accumulator of timed events: total seconds and event count. *)

val span : unit -> span
val record : span -> float -> unit
val timed : span -> (unit -> 'a) -> 'a
val seconds : span -> float
val events : span -> int
