(** Wall-clock plumbing for the instrumentation layer.

    Every phase of the stack (translation, solving, repair) measures
    itself with these helpers so that {!Solver.stats},
    {!Relog.Translate.stats} and the Echo roll-up all report wall
    time on the same clock. *)

val now : unit -> float
(** Monotonic seconds (shim over {!Obs.Clock.now}); differences are
    immune to wall-clock adjustment. The origin is unspecified — use
    only for durations, never as an epoch timestamp. *)

val time : (unit -> 'a) -> 'a * float
(** [time f] runs [f] and returns its result with the elapsed wall
    time in seconds. *)

type span
(** An accumulator of timed events: total seconds and event count.
    Domain-safe: the counters are atomics, so worker domains may
    record into one shared span concurrently. *)

val span : unit -> span
val record : span -> float -> unit

val timed : span -> (unit -> 'a) -> 'a
(** Runs [f], recording its wall time — also when [f] raises (an
    interrupted solve must not lose the time it burned). *)

val seconds : span -> float
val events : span -> int

val add_float : float Atomic.t -> float -> unit
(** Lock-free [cell <- cell + dt] via a CAS loop; shared by every
    float accumulator in the stack that domains update concurrently. *)
